package insq_test

import (
	"sort"
	"strings"
	"testing"

	insq "repro"
)

// TestPublicAPIPlane exercises the exported Euclidean surface end to end:
// workload → index → query → simulation → rendering.
func TestPublicAPIPlane(t *testing.T) {
	bounds := insq.NewRect(insq.Pt(0, 0), insq.Pt(1000, 1000))
	pts := insq.UniformPoints(300, bounds, 1)
	ix, ids, err := insq.BuildPlaneIndex(bounds, pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 300 || ix.Len() != 300 {
		t.Fatalf("index holds %d objects, want 300", ix.Len())
	}
	q, err := insq.NewPlaneQuery(ix, 5, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	traj := insq.RandomWaypoint(bounds, 200, 3, 2)
	rep, err := insq.RunPlane(q, traj, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steps != 200 || rep.Counters.Recomputations == 0 {
		t.Fatalf("unexpected report: %+v", rep)
	}
	doc, err := insq.RenderPlaneFrame(ix, q, traj[len(traj)-1], insq.PlaneFrameOptions{ShowCircles: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(doc, "<svg") {
		t.Error("frame is not an SVG document")
	}
}

// TestPublicAPINetwork exercises the exported road-network surface.
func TestPublicAPINetwork(t *testing.T) {
	bounds := insq.NewRect(insq.Pt(0, 0), insq.Pt(1000, 1000))
	g, err := insq.GridNetwork(10, 10, bounds, 0.2, 0.3, 3)
	if err != nil {
		t.Fatal(err)
	}
	sites := make([]int, 0, 25)
	for v := 0; v < g.NumVertices(); v += 4 {
		sites = append(sites, v)
	}
	d, err := insq.BuildNetworkVoronoi(g, sites)
	if err != nil {
		t.Fatal(err)
	}
	q, err := insq.NewNetworkQuery(d, 4, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	route, err := insq.RandomWalkRoute(g, 1, 2000, 4)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := insq.RunNetwork(q, route, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steps == 0 {
		t.Fatal("no steps simulated")
	}
	doc := insq.RenderNetworkFrame(d, q, insq.VertexPosition(0), insq.NetworkFrameOptions{})
	if !strings.HasPrefix(doc, "<svg") {
		t.Error("frame is not an SVG document")
	}
}

// TestBaselinesAgreeWithINS runs all plane processors over one trajectory
// and checks they report the same kNN distance profile at the end.
func TestBaselinesAgreeWithINS(t *testing.T) {
	bounds := insq.NewRect(insq.Pt(0, 0), insq.Pt(1000, 1000))
	ix, _, err := insq.BuildPlaneIndex(bounds, insq.UniformPoints(400, bounds, 5))
	if err != nil {
		t.Fatal(err)
	}
	ins, err := insq.NewPlaneQuery(ix, 5, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := insq.NewNaivePlane(ix, 5)
	if err != nil {
		t.Fatal(err)
	}
	vstar, err := insq.NewVStarPlane(ix, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	cell, err := insq.NewOrderKCellPlane(ix, 5, true)
	if err != nil {
		t.Fatal(err)
	}
	traj := insq.RandomWaypoint(bounds, 300, 3, 6)
	procs := []insq.PlaneProcessor{ins, naive, vstar, cell}
	for _, pos := range traj {
		var ref []float64
		for i, p := range procs {
			knn, err := p.Update(pos)
			if err != nil {
				t.Fatal(err)
			}
			ds := make([]float64, len(knn))
			for j, id := range knn {
				ds[j] = pos.Dist2(ix.Point(id))
			}
			sort.Float64s(ds)
			if i == 0 {
				ref = ds
				continue
			}
			for j := range ds {
				if diff := ds[j] - ref[j]; diff > 1e-9*(ref[j]+1) || diff < -1e-9*(ref[j]+1) {
					t.Fatalf("%s disagrees with %s at %v", p.Name(), procs[0].Name(), pos)
				}
			}
		}
	}
}
