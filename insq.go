package insq

import (
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/netvor"
	"repro/internal/roadnet"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/svg"
	"repro/internal/trajectory"
	"repro/internal/voronoi"
	"repro/internal/vortree"
	"repro/internal/workload"
)

// Geometry primitives.
type (
	// Point is a location in the 2D Euclidean plane.
	Point = geom.Point
	// Rect is an axis-aligned rectangle (the data space).
	Rect = geom.Rect
	// Polygon is a vertex loop; Voronoi cells are convex CCW polygons.
	Polygon = geom.Polygon
)

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// NewRect returns the rectangle spanning two corner points in any order.
func NewRect(a, b Point) Rect { return geom.NewRect(a, b) }

// Indexes and diagrams.
type (
	// PlaneIndex is the VoR-tree over the data objects: an R-tree plus the
	// order-1 Voronoi diagram, kept in sync under updates.
	PlaneIndex = vortree.Index
	// VoronoiDiagram is the dynamic order-1 Voronoi diagram.
	VoronoiDiagram = voronoi.Diagram
	// RoadNetwork is a planar undirected weighted graph with 2D embedding.
	RoadNetwork = roadnet.Graph
	// NetworkPosition is a location on a road network (edge + fraction).
	NetworkPosition = roadnet.Position
	// NetworkRoute is a vertex path sampled at constant speed.
	NetworkRoute = roadnet.Route
	// NetworkVoronoi is the network Voronoi diagram of the data objects.
	NetworkVoronoi = netvor.Diagram
)

// DefaultFanout is the default VoR-tree node fanout.
const DefaultFanout = 16

// BuildPlaneIndex constructs a VoR-tree over the data objects; returned
// ids parallel pts. Exact duplicates collapse to one object.
func BuildPlaneIndex(bounds Rect, pts []Point) (*PlaneIndex, []int, error) {
	return vortree.Build(bounds, DefaultFanout, pts)
}

// BuildNetworkVoronoi computes the network Voronoi diagram of data objects
// located at the given network vertices.
func BuildNetworkVoronoi(g *RoadNetwork, siteVertices []int) (*NetworkVoronoi, error) {
	return netvor.Build(g, siteVertices)
}

// Query processors.
type (
	// PlaneQuery is the INS moving kNN query in 2D Euclidean space.
	PlaneQuery = core.PlaneQuery
	// NetworkQuery is the INS moving kNN query in road networks.
	NetworkQuery = core.NetworkQuery
	// Metrics holds the cost counters every processor accumulates.
	Metrics = metrics.Counters
)

// NewPlaneQuery creates an INS MkNN query with parameter k and prefetch
// ratio rho (>= 1; the demo uses 1.6).
func NewPlaneQuery(ix *PlaneIndex, k int, rho float64) (*PlaneQuery, error) {
	return core.NewPlaneQuery(ix, k, rho)
}

// NewNetworkQuery creates an INS MkNN query on a road network.
func NewNetworkQuery(d *NetworkVoronoi, k int, rho float64) (*NetworkQuery, error) {
	return core.NewNetworkQuery(d, k, rho)
}

// Baseline processors (the methods the paper compares against).
type (
	// NaivePlane recomputes the kNN set at every timestamp.
	NaivePlane = baseline.NaivePlane
	// OrderKCellPlane uses the strict order-k Voronoi cell safe region.
	OrderKCellPlane = baseline.OrderKCellPlane
	// VStarPlane approximates the V*-Diagram processor.
	VStarPlane = baseline.VStarPlane
	// NaiveNetwork recomputes the network kNN at every timestamp.
	NaiveNetwork = baseline.NaiveNetwork
	// FullNetworkINS is INS without the Theorem-2 subnetwork restriction.
	FullNetworkINS = baseline.FullNetworkINS
)

// NewNaivePlane returns the per-timestamp recomputation baseline.
func NewNaivePlane(ix *PlaneIndex, k int) (*NaivePlane, error) {
	return baseline.NewNaivePlane(ix, k)
}

// NewOrderKCellPlane returns the order-k Voronoi cell baseline; see the
// baseline package for the useINSCandidates knob.
func NewOrderKCellPlane(ix *PlaneIndex, k int, useINSCandidates bool) (*OrderKCellPlane, error) {
	return baseline.NewOrderKCellPlane(ix, k, useINSCandidates)
}

// NewVStarPlane returns the V*-Diagram baseline with x auxiliary objects.
func NewVStarPlane(ix *PlaneIndex, k, x int) (*VStarPlane, error) {
	return baseline.NewVStarPlane(ix, k, x)
}

// NewNaiveNetwork returns the per-timestamp network recomputation baseline.
func NewNaiveNetwork(d *NetworkVoronoi, k int) (*NaiveNetwork, error) {
	return baseline.NewNaiveNetwork(d, k)
}

// NewFullNetworkINS returns the Theorem-2 ablation processor.
func NewFullNetworkINS(d *NetworkVoronoi, k int, rho float64) (*FullNetworkINS, error) {
	return baseline.NewFullNetworkINS(d, k, rho)
}

// PrecomputedOrderKPlane is the order-k diagram precomputation baseline
// (reference [2] of the paper).
type PrecomputedOrderKPlane = baseline.PrecomputedOrderKPlane

// NewPrecomputedOrderKPlane enumerates the full order-k Voronoi diagram up
// front and answers updates by point location. Construction cost grows
// rapidly with k — the blow-up the paper argues makes this impractical.
func NewPrecomputedOrderKPlane(ix *PlaneIndex, k int) (*PrecomputedOrderKPlane, error) {
	return baseline.NewPrecomputedOrderKPlane(ix, k)
}

// Workload and trajectory generation.

// UniformPoints draws n points uniformly from bounds (deterministic in seed).
func UniformPoints(n int, bounds Rect, seed int64) []Point {
	return workload.Uniform(n, bounds, seed)
}

// ClusteredPoints draws n points from a Gaussian-cluster mixture.
func ClusteredPoints(n, clusters int, sigma float64, bounds Rect, seed int64) ([]Point, error) {
	return workload.Clustered(n, clusters, sigma, bounds, seed)
}

// GridPoints places ~n points on a jittered lattice.
func GridPoints(n int, bounds Rect, jitter float64, seed int64) []Point {
	return workload.Grid(n, bounds, jitter, seed)
}

// RandomWaypoint generates a random-waypoint trajectory of the given number
// of steps, moving stepLen per timestamp.
func RandomWaypoint(bounds Rect, steps int, stepLen float64, seed int64) []Point {
	return trajectory.RandomWaypoint(bounds, steps, stepLen, seed)
}

// LineTrajectory samples a straight movement from a to b in steps steps.
func LineTrajectory(a, b Point, steps int) ([]Point, error) {
	return trajectory.Line(a, b, steps)
}

// WaypointTrajectory samples a tour through waypoints at stepLen per step.
func WaypointTrajectory(pts []Point, stepLen float64) ([]Point, error) {
	return trajectory.Waypoints(pts, stepLen)
}

// GridNetwork generates a rows×cols grid road network; see roadnet for the
// jitter and detour knobs.
func GridNetwork(rows, cols int, bounds Rect, jitter, detour float64, seed int64) (*RoadNetwork, error) {
	return roadnet.GridNetwork(rows, cols, bounds, jitter, detour, seed)
}

// RandomPlanarNetwork generates a connected planar network from a Delaunay
// triangulation of random vertices.
func RandomPlanarNetwork(n int, bounds Rect, keep, detour float64, seed int64) (*RoadNetwork, error) {
	return roadnet.RandomPlanarNetwork(n, bounds, keep, detour, seed)
}

// RandomWalkRoute generates a network route of roughly the given length.
func RandomWalkRoute(g *RoadNetwork, start int, length float64, seed int64) (*NetworkRoute, error) {
	return roadnet.RandomWalkRoute(g, start, length, seed)
}

// VertexPosition returns the network position exactly at vertex v.
func VertexPosition(v int) NetworkPosition { return roadnet.VertexPosition(v) }

// Simulation driving.
type (
	// PlaneProcessor is any Euclidean moving kNN processor.
	PlaneProcessor = sim.PlaneProcessor
	// NetworkProcessor is any road-network moving kNN processor.
	NetworkProcessor = sim.NetworkProcessor
	// Report summarizes one simulation run.
	Report = sim.Report
)

// RunPlane drives a plane processor along a trajectory.
func RunPlane(p PlaneProcessor, traj []Point, observe func(step int, pos Point, knn []int)) (Report, error) {
	return sim.RunPlane(p, traj, observe)
}

// RunNetwork drives a network processor along a route at stepLen spacing.
func RunNetwork(p NetworkProcessor, route *NetworkRoute, stepLen float64, observe func(step int, pos NetworkPosition, knn []int)) (Report, error) {
	return sim.RunNetwork(p, route, stepLen, observe)
}

// FleetQuery is one moving query in a concurrent fleet simulation;
// queries sharing an index must share a shard.
type FleetQuery = sim.FleetQuery

// RunPlaneFleet simulates many moving queries concurrently (one MkNN
// query per LBS client), parallelizing across shards.
func RunPlaneFleet(queries []FleetQuery, workers int) ([]Report, error) {
	return sim.RunPlaneFleet(queries, workers)
}

// Serving engine (the online counterpart of the fleet simulation).
type (
	// Engine is the concurrent MkNN serving engine: session-sharded
	// workers reading shared, immutable, epoch-versioned index snapshots
	// (memory is O(objects) regardless of shard count); safe for
	// concurrent use.
	Engine = engine.Engine
	// EngineConfig parameterizes NewEngine.
	EngineConfig = engine.Config
	// SessionID identifies a live query session.
	SessionID = engine.SessionID
	// LocationUpdate is one session's new position within a batch.
	LocationUpdate = engine.LocationUpdate
	// NetworkLocationUpdate is one network session's new position.
	NetworkLocationUpdate = engine.NetworkLocationUpdate
	// UpdateResult is the per-session outcome of a batched update.
	UpdateResult = engine.UpdateResult
	// EngineStats is an aggregated engine serving snapshot.
	EngineStats = engine.Stats
	// SessionState is a point-in-time kNN snapshot of one live session.
	SessionState = engine.SessionState
	// LatencySummary condenses a latency histogram to reporting quantiles.
	LatencySummary = metrics.LatencySummary
)

// Continuous-query push streaming (Engine.Stream): incremental kNN result
// deltas delivered to subscribers instead of polled via UpdateBatch.
type (
	// StreamBroker fans per-session result events out to subscribers with
	// bounded, coalescing queues; reach it via Engine.Stream().
	StreamBroker = stream.Broker
	// StreamSubscriber is one consumer's bounded event queue.
	StreamSubscriber = stream.Subscriber
	// StreamEvent is one push notification: the session's current kNN set
	// plus the membership delta against the previously published result.
	StreamEvent = stream.Event
	// StreamStats makes the broker's coalesce/drop policy observable.
	StreamStats = stream.Stats
)

// Engine errors, re-exported for errors.Is checks through the facade.
var (
	ErrEngineClosed   = engine.ErrClosed
	ErrUnknownSession = engine.ErrUnknownSession
	ErrUnknownObject  = engine.ErrUnknownObject
	ErrOutOfBounds    = engine.ErrOutOfBounds
	ErrNoPlaneIndex   = engine.ErrNoPlaneIndex
	ErrNoNetwork      = engine.ErrNoNetwork
)

// NewEngine starts a concurrent MkNN serving engine; see engine.Config for
// the sharding and dataset knobs. Callers must Close it.
func NewEngine(cfg EngineConfig) (*Engine, error) { return engine.New(cfg) }

// Rendering (the demonstration frames).
type (
	// PlaneFrameOptions selects what a 2D demonstration frame shows.
	PlaneFrameOptions = svg.PlaneFrameOptions
	// NetworkFrameOptions selects what a network frame shows.
	NetworkFrameOptions = svg.NetworkFrameOptions
)

// RenderPlaneFrame renders one timestamp of the 2D-plane demonstration as
// an SVG document.
func RenderPlaneFrame(ix *PlaneIndex, q *PlaneQuery, pos Point, opts PlaneFrameOptions) (string, error) {
	return svg.PlaneFrame(ix, q, pos, opts)
}

// RenderNetworkFrame renders one timestamp of the road-network
// demonstration as an SVG document.
func RenderNetworkFrame(d *NetworkVoronoi, q *NetworkQuery, pos NetworkPosition, opts NetworkFrameOptions) string {
	return svg.NetworkFrame(d, q, pos, opts)
}
