package voronoi

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

func TestCellSwapsMatchMIS(t *testing.T) {
	d, _ := buildRandom(t, 80, 40)
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 20; i++ {
		q := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		knn := d.KNN(q, 3)
		ins, err := d.INS(knn)
		if err != nil {
			t.Fatal(err)
		}
		swaps, err := d.CellSwaps(knn, ins)
		if err != nil {
			t.Fatal(err)
		}
		mis, err := d.MIS(knn, ins)
		if err != nil {
			t.Fatal(err)
		}
		ins2 := make(map[int]bool)
		for _, s := range swaps {
			if !contains(knn, s.Out) {
				t.Fatalf("swap out %d not a kNN member", s.Out)
			}
			if contains(knn, s.In) {
				t.Fatalf("swap in %d is a kNN member", s.In)
			}
			ins2[s.In] = true
		}
		// The In side of the swaps is exactly the MIS.
		if len(ins2) != len(mis) {
			t.Fatalf("swap-ins %v != MIS %v", ins2, mis)
		}
		for _, m := range mis {
			if !ins2[m] {
				t.Fatalf("MIS member %d missing from swaps", m)
			}
		}
	}
}

func TestEnumerateOrderKPartitionsBounds(t *testing.T) {
	for _, k := range []int{1, 2, 3} {
		d, _ := buildRandom(t, 30, 50+int64(k))
		regions, err := d.EnumerateOrderK(k)
		if err != nil {
			t.Fatal(err)
		}
		if len(regions) == 0 {
			t.Fatalf("k=%d: no regions", k)
		}
		var total float64
		for _, r := range regions {
			if len(r.Sites) != k {
				t.Fatalf("region with %d sites, want %d", len(r.Sites), k)
			}
			a := r.Cell.Area()
			if a <= 0 {
				t.Fatalf("region %v has area %g", r.Sites, a)
			}
			total += a
		}
		if want := testBounds.Area(); math.Abs(total-want) > 1e-6*want {
			t.Fatalf("k=%d: regions cover %g of %g — not a partition", k, total, want)
		}
	}
}

func TestEnumerateOrderKSetsAreCorrect(t *testing.T) {
	d, _ := buildRandom(t, 40, 60)
	regions, err := d.EnumerateOrderK(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range regions {
		// The kNN set at the centroid of each region must equal the
		// region's site set (centroids of convex cells are interior).
		c := r.Cell.Centroid()
		if !r.Cell.Contains(c) {
			continue // degenerate sliver: skip the check
		}
		got := d.KNN(c, 2)
		sort.Ints(got)
		if !equalInts(got, r.Sites) {
			t.Fatalf("region %v: centroid kNN is %v", r.Sites, got)
		}
	}
}

func TestEnumerateOrderKDistinctSets(t *testing.T) {
	d, _ := buildRandom(t, 25, 70)
	regions, err := d.EnumerateOrderK(3)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, r := range regions {
		key := setKey(r.Sites)
		if seen[key] {
			t.Fatalf("duplicate region for set %v", r.Sites)
		}
		seen[key] = true
	}
}

func TestEnumerateOrderKCountGrowsWithK(t *testing.T) {
	d, _ := buildRandom(t, 50, 80)
	prev := 0
	for _, k := range []int{1, 2, 4} {
		regions, err := d.EnumerateOrderK(k)
		if err != nil {
			t.Fatal(err)
		}
		if len(regions) <= prev {
			t.Fatalf("k=%d produced %d cells, not more than %d — expected growth", k, len(regions), prev)
		}
		prev = len(regions)
	}
}

func TestEnumerateOrderKErrors(t *testing.T) {
	d, _ := buildRandom(t, 5, 90)
	if _, err := d.EnumerateOrderK(0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := d.EnumerateOrderK(6); err == nil {
		t.Error("k>n accepted")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
