package voronoi

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

var testBounds = geom.NewRect(geom.Pt(0, 0), geom.Pt(1000, 1000))

func randomPoints(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
	}
	return pts
}

func buildRandom(t testing.TB, n int, seed int64) (*Diagram, []int) {
	t.Helper()
	d, ids, err := Build(testBounds, randomPoints(n, seed))
	if err != nil {
		t.Fatal(err)
	}
	return d, ids
}

// bruteKNN is the ground-truth kNN by linear scan.
func bruteKNN(d *Diagram, q geom.Point, k int) []int {
	ids := d.IDs()
	sort.Slice(ids, func(i, j int) bool {
		di, dj := q.Dist2(d.Site(ids[i])), q.Dist2(d.Site(ids[j]))
		if di != dj {
			return di < dj
		}
		return ids[i] < ids[j]
	})
	if k > len(ids) {
		k = len(ids)
	}
	return ids[:k]
}

func sameIDSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	as, bs := append([]int(nil), a...), append([]int(nil), b...)
	sort.Ints(as)
	sort.Ints(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func TestNearestMatchesBruteForce(t *testing.T) {
	d, _ := buildRandom(t, 300, 1)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		q := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		got := d.Nearest(q)
		want := bruteKNN(d, q, 1)[0]
		if got != want {
			gd, wd := q.Dist(d.Site(got)), q.Dist(d.Site(want))
			if math.Abs(gd-wd) > 1e-9 {
				t.Fatalf("Nearest(%v) = %d (d=%g), want %d (d=%g)", q, got, gd, want, wd)
			}
		}
	}
}

func TestKNNMatchesBruteForce(t *testing.T) {
	d, _ := buildRandom(t, 400, 3)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		q := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		for _, k := range []int{1, 3, 8, 17} {
			got := d.KNN(q, k)
			want := bruteKNN(d, q, k)
			if !sameIDSet(got, want) {
				t.Fatalf("KNN(%v, %d) = %v, want %v", q, k, got, want)
			}
			// KNN promises ascending distance order.
			for j := 1; j < len(got); j++ {
				if q.Dist2(d.Site(got[j])) < q.Dist2(d.Site(got[j-1])) {
					t.Fatalf("KNN result not sorted by distance: %v", got)
				}
			}
		}
	}
}

func TestKNNEdgeCases(t *testing.T) {
	d := NewDiagram(testBounds)
	if got := d.KNN(geom.Pt(1, 1), 3); got != nil {
		t.Errorf("KNN on empty diagram = %v, want nil", got)
	}
	if _, err := d.Insert(geom.Pt(5, 5)); err != nil {
		t.Fatal(err)
	}
	if got := d.KNN(geom.Pt(1, 1), 0); got != nil {
		t.Errorf("KNN with k=0 = %v, want nil", got)
	}
	got := d.KNN(geom.Pt(1, 1), 10)
	if len(got) != 1 {
		t.Errorf("KNN with k > n returned %d ids, want 1", len(got))
	}
}

func TestCellContainsOwnRegion(t *testing.T) {
	d, _ := buildRandom(t, 150, 5)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 200; i++ {
		q := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		nearest := d.Nearest(q)
		cell, err := d.Cell(nearest)
		if err != nil {
			t.Fatal(err)
		}
		if !cell.Contains(q) {
			t.Fatalf("cell of nearest site %d does not contain query %v", nearest, q)
		}
	}
}

func TestCellsPartitionBounds(t *testing.T) {
	d, ids := buildRandom(t, 120, 7)
	var total float64
	for _, id := range ids {
		cell, err := d.Cell(id)
		if err != nil {
			t.Fatal(err)
		}
		a := cell.Area()
		if a <= 0 {
			t.Fatalf("cell %d has area %g", id, a)
		}
		total += a
	}
	if want := testBounds.Area(); math.Abs(total-want) > 1e-6*want {
		t.Fatalf("cells cover %g, bounds area %g", total, want)
	}
}

func TestINSContainsAllKNNNeighbors(t *testing.T) {
	d, _ := buildRandom(t, 200, 8)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		q := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		knn := d.KNN(q, 5)
		ins, err := d.INS(knn)
		if err != nil {
			t.Fatal(err)
		}
		inKNN := make(map[int]bool)
		for _, id := range knn {
			inKNN[id] = true
		}
		insSet := make(map[int]bool)
		for _, id := range ins {
			if inKNN[id] {
				t.Fatalf("INS %v overlaps kNN %v", ins, knn)
			}
			insSet[id] = true
		}
		for _, id := range knn {
			nb, err := d.Neighbors(id)
			if err != nil {
				t.Fatal(err)
			}
			for _, u := range nb {
				if !inKNN[u] && !insSet[u] {
					t.Fatalf("neighbor %d of kNN member %d missing from INS", u, id)
				}
			}
		}
	}
}

func TestOrderKCellContainsQuery(t *testing.T) {
	d, _ := buildRandom(t, 250, 10)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 60; i++ {
		q := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		knn := d.KNN(q, 4)
		ins, err := d.INS(knn)
		if err != nil {
			t.Fatal(err)
		}
		cell, err := d.OrderKCell(knn, ins)
		if err != nil {
			t.Fatal(err)
		}
		if !cell.Contains(q) {
			t.Fatalf("order-k cell of kNN(%v) does not contain q", q)
		}
	}
}

// TestOrderKCellSafeRegion samples points inside and outside the order-k
// cell and checks the defining property: inside, the kNN set is unchanged;
// crossing outside changes it.
func TestOrderKCellSafeRegion(t *testing.T) {
	d, _ := buildRandom(t, 250, 12)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 40; i++ {
		q := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		knn := d.KNN(q, 5)
		ins, err := d.INS(knn)
		if err != nil {
			t.Fatal(err)
		}
		cell, err := d.OrderKCell(knn, ins)
		if err != nil {
			t.Fatal(err)
		}
		if len(cell) < 3 {
			t.Fatalf("degenerate order-k cell for q=%v", q)
		}
		c := cell.Centroid()
		// Interior samples: convex combinations of the centroid and
		// vertices, pulled inward.
		for _, v := range cell {
			in := geom.Lerp(c, v, 0.9*rng.Float64())
			if !sameIDSet(d.KNN(in, 5), knn) {
				if cell.Contains(in) {
					t.Fatalf("point %v inside cell has different kNN", in)
				}
			}
		}
		// Exterior samples: push past each edge midpoint.
		for j, v := range cell {
			w := cell[(j+1)%len(cell)]
			mid := geom.Mid(v, w)
			out := geom.Lerp(c, mid, 1.05)
			if !testBounds.Contains(out) || cell.Contains(out) {
				continue
			}
			if sameIDSet(bruteKNN(d, out, 5), knn) {
				// Only a true violation if decisively outside (numerical
				// slack at the edge is fine).
				d2 := geom.Segment{A: v, B: w}.DistPoint(out)
				if d2 > 1e-6 {
					t.Fatalf("point %v outside cell keeps the same kNN", out)
				}
			}
		}
	}
}

// TestOrderKCellINSEqualsExact verifies the consequence of Theorem 1: the
// cell computed against the INS candidates equals the cell computed against
// every outside site.
func TestOrderKCellINSEqualsExact(t *testing.T) {
	d, _ := buildRandom(t, 150, 14)
	rng := rand.New(rand.NewSource(15))
	for i := 0; i < 40; i++ {
		q := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		for _, k := range []int{1, 3, 6} {
			knn := d.KNN(q, k)
			ins, err := d.INS(knn)
			if err != nil {
				t.Fatal(err)
			}
			viaINS, err := d.OrderKCell(knn, ins)
			if err != nil {
				t.Fatal(err)
			}
			exact, err := d.OrderKCellExact(knn)
			if err != nil {
				t.Fatal(err)
			}
			ai, ae := viaINS.Area(), exact.Area()
			if math.Abs(ai-ae) > 1e-6*(ae+1e-9) {
				t.Fatalf("k=%d: INS cell area %g != exact cell area %g", k, ai, ae)
			}
		}
	}
}

// TestMISMinimality checks both directions of Definition 2 on random
// inputs: dropping a MIS member strictly grows the constrained cell
// (so every member is necessary), while dropping a non-member leaves it
// unchanged (so nothing else is needed).
func TestMISMinimality(t *testing.T) {
	d, _ := buildRandom(t, 120, 16)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 25; i++ {
		q := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		knn := d.KNN(q, 3)
		ins, err := d.INS(knn)
		if err != nil {
			t.Fatal(err)
		}
		mis, err := d.MIS(knn, ins)
		if err != nil {
			t.Fatal(err)
		}
		if len(mis) == 0 {
			t.Fatalf("empty MIS for interior query %v", q)
		}
		insSet := make(map[int]bool)
		for _, id := range ins {
			insSet[id] = true
		}
		for _, id := range mis {
			if !insSet[id] {
				t.Fatalf("MIS member %d not in INS %v (violates Theorem 1)", id, ins)
			}
		}
		base, err := d.OrderKCell(knn, ins)
		if err != nil {
			t.Fatal(err)
		}
		baseArea := base.Area()
		without := func(xs []int, drop int) []int {
			out := make([]int, 0, len(xs)-1)
			for _, x := range xs {
				if x != drop {
					out = append(out, x)
				}
			}
			return out
		}
		for _, m := range mis {
			cell, err := d.OrderKCell(knn, without(ins, m))
			if err != nil {
				t.Fatal(err)
			}
			if cell.Area() <= baseArea*(1+1e-9) {
				t.Fatalf("dropping MIS member %d did not grow the cell", m)
			}
		}
		for _, x := range ins {
			if contains(mis, x) {
				continue
			}
			cell, err := d.OrderKCell(knn, without(ins, x))
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(cell.Area()-baseArea) > 1e-6*(baseArea+1e-9) {
				t.Fatalf("dropping non-MIS member %d changed the cell area (%g vs %g)",
					x, cell.Area(), baseArea)
			}
		}
	}
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func TestDynamicInsertRemoveKeepsKNNCorrect(t *testing.T) {
	d, ids := buildRandom(t, 200, 18)
	rng := rand.New(rand.NewSource(19))
	live := append([]int(nil), ids...)
	for step := 0; step < 100; step++ {
		if rng.Intn(2) == 0 && len(live) > 20 {
			i := rng.Intn(len(live))
			if err := d.Remove(live[i]); err != nil {
				t.Fatal(err)
			}
			live = append(live[:i], live[i+1:]...)
		} else {
			id, err := d.Insert(geom.Pt(rng.Float64()*1000, rng.Float64()*1000))
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, id)
		}
		q := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		if got, want := d.KNN(q, 5), bruteKNN(d, q, 5); !sameIDSet(got, want) {
			t.Fatalf("step %d: KNN = %v, want %v", step, got, want)
		}
	}
}

func TestOrderKCellErrors(t *testing.T) {
	d, ids := buildRandom(t, 20, 20)
	if err := d.Remove(ids[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := d.OrderKCell([]int{ids[0]}, []int{ids[1]}); err == nil {
		t.Error("expected error for dead kNN member")
	}
	if _, err := d.OrderKCell([]int{ids[1]}, []int{ids[0]}); err == nil {
		t.Error("expected error for dead candidate")
	}
}

func BenchmarkKNN(b *testing.B) {
	d, _ := buildRandom(b, 10000, 30)
	rng := rand.New(rand.NewSource(31))
	qs := make([]geom.Point, 256)
	for i := range qs {
		qs[i] = geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.KNN(qs[i%len(qs)], 8)
	}
}

func BenchmarkINS(b *testing.B) {
	d, _ := buildRandom(b, 10000, 32)
	knn := d.KNN(geom.Pt(500, 500), 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.INS(knn); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOrderKCell(b *testing.B) {
	d, _ := buildRandom(b, 10000, 33)
	knn := d.KNN(geom.Pt(500, 500), 8)
	ins, err := d.INS(knn)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.OrderKCell(knn, ins); err != nil {
			b.Fatal(err)
		}
	}
}
