package voronoi

import (
	"fmt"
	"sort"

	"repro/internal/geom"
)

// INS returns the influential neighbor set I(O') of Definition 4: the union
// of the order-1 Voronoi neighbor sets of the sites in knn, minus knn
// itself. The result is sorted by id.
func (d *Diagram) INS(knn []int) ([]int, error) {
	var sc INSScratch
	return d.AppendINS(knn, nil, &sc)
}

// INSScratch is reusable working memory for AppendINS; the zero value is
// ready to use. It must not be shared across goroutines.
type INSScratch struct {
	ring  NeighborScratch
	nb    []int
	inKNN map[int]bool
	seen  map[int]bool
}

// AppendINS is INS appending onto dst with caller-supplied scratch — the
// allocation-free form used by the serving hot path. dst may be nil.
func (d *Diagram) AppendINS(knn []int, dst []int, sc *INSScratch) ([]int, error) {
	if sc.inKNN == nil {
		sc.inKNN = make(map[int]bool, len(knn))
		sc.seen = make(map[int]bool)
	} else {
		clear(sc.inKNN)
		clear(sc.seen)
	}
	for _, id := range knn {
		sc.inKNN[id] = true
	}
	start := len(dst)
	for _, id := range knn {
		nb, err := d.tri.AppendNeighbors(id, sc.nb[:0], &sc.ring)
		sc.nb = nb[:0]
		if err != nil {
			return dst[:start], fmt.Errorf("voronoi: INS of %v: %w", knn, err)
		}
		for _, u := range nb {
			if !sc.inKNN[u] && !sc.seen[u] {
				sc.seen[u] = true
				dst = append(dst, u)
			}
		}
	}
	sort.Ints(dst[start:])
	return dst, nil
}

// taggedEdge records which bisector produced a polygon edge during tagged
// clipping: the pair (knnID, otherID), or tag == -1 for a bounding-box edge.
type taggedEdge struct {
	knnID, otherID int
}

var boundaryEdge = taggedEdge{-1, -1}

// taggedPolygon is a convex polygon where edge i runs from vertex i to
// vertex i+1 and carries the tag of the half-plane that generated it.
type taggedPolygon struct {
	v    []geom.Point
	tags []taggedEdge
}

func newTaggedRect(r geom.Rect) taggedPolygon {
	poly := geom.RectPolygon(r)
	tags := make([]taggedEdge, len(poly))
	for i := range tags {
		tags[i] = boundaryEdge
	}
	return taggedPolygon{v: poly, tags: tags}
}

// clip intersects the polygon with half-plane h; every edge created by the
// clip line is tagged with tag. Same Sutherland–Hodgman structure as
// geom.Polygon.ClipHalfPlane, with tag bookkeeping.
func (tp taggedPolygon) clip(h geom.HalfPlane, tag taggedEdge) taggedPolygon {
	n := len(tp.v)
	if n == 0 {
		return tp
	}
	val := func(p geom.Point) float64 { return h.N.Dot(p) - h.C }
	var outV []geom.Point
	var outT []taggedEdge
	for i := 0; i < n; i++ {
		cur, nxt := tp.v[i], tp.v[(i+1)%n]
		curVal, nxtVal := val(cur), val(nxt)
		edgeTag := tp.tags[i]
		if curVal <= 0 { // cur inside
			outV = append(outV, cur)
			if nxtVal > 0 { // leaving: cut edge keeps its tag, then new edge
				t := curVal / (curVal - nxtVal)
				outV = append(outV, geom.Lerp(cur, nxt, t))
				outT = append(outT, edgeTag, tag)
			} else {
				outT = append(outT, edgeTag)
			}
		} else if nxtVal <= 0 { // entering
			t := curVal / (curVal - nxtVal)
			outV = append(outV, geom.Lerp(cur, nxt, t))
			outT = append(outT, edgeTag)
		}
	}
	return taggedPolygon{v: outV, tags: outT}
}

// dedup removes zero-length edges, merging their tags away. A clip line
// through an existing vertex yields such edges; the surviving edge keeps
// the earlier tag, which is correct because coincident bisectors define
// the same geometric edge.
func (tp taggedPolygon) dedup() taggedPolygon {
	const eps = 1e-18
	n := len(tp.v)
	var outV []geom.Point
	var outT []taggedEdge
	for i := 0; i < n; i++ {
		if tp.v[i].Dist2(tp.v[(i+1)%n]) < eps {
			continue
		}
		outV = append(outV, tp.v[i])
		outT = append(outT, tp.tags[i])
	}
	// A zero-length edge removal can leave the loop shifted: re-anchor by
	// dropping a trailing vertex identical to the head.
	for len(outV) > 1 && outV[0].Dist2(outV[len(outV)-1]) < eps {
		outV = outV[:len(outV)-1]
		outT = outT[:len(outT)-1]
	}
	return taggedPolygon{v: outV, tags: outT}
}

// OrderKCell computes the order-k Voronoi cell V^k(O') of the kNN set knn,
// restricted to the given candidate outsiders: the set of points closer to
// every site in knn than to any site in candidates, clipped to the diagram
// bounds. When candidates ⊇ MIS(knn) — in particular when candidates is
// the INS of knn, by Theorem 1 — the result is exactly the order-k cell.
//
// The returned polygon is convex and counter-clockwise; it is empty only if
// knn is not the kNN set of any in-bounds location.
func (d *Diagram) OrderKCell(knn, candidates []int) (geom.Polygon, error) {
	tp, err := d.taggedOrderKCell(knn, candidates)
	if err != nil {
		return nil, err
	}
	return geom.Polygon(tp.v), nil
}

// OrderKCellExact computes V^k(O') against every live site outside knn.
// It is O(k·n) and exists as ground truth for tests and for the
// order-k-cell safe region baseline at small n.
func (d *Diagram) OrderKCellExact(knn []int) (geom.Polygon, error) {
	inKNN := make(map[int]bool, len(knn))
	for _, id := range knn {
		inKNN[id] = true
	}
	var cands []int
	for _, id := range d.IDs() {
		if !inKNN[id] {
			cands = append(cands, id)
		}
	}
	return d.OrderKCell(knn, cands)
}

func (d *Diagram) taggedOrderKCell(knn, candidates []int) (taggedPolygon, error) {
	tp := newTaggedRect(d.bounds)
	for _, o := range knn {
		if !d.Contains(o) {
			return taggedPolygon{}, fmt.Errorf("voronoi: order-k cell: site %d not live", o)
		}
		po := d.Site(o)
		for _, x := range candidates {
			if !d.Contains(x) {
				return taggedPolygon{}, fmt.Errorf("voronoi: order-k cell: candidate %d not live", x)
			}
			tp = tp.clip(geom.BisectorHalfPlane(po, d.Site(x)), taggedEdge{o, x})
			if len(tp.v) == 0 {
				return tp, nil
			}
		}
	}
	return tp.dedup(), nil
}

// MIS computes the minimal influential set MIS(O') of Definition 2: the
// union of the kNN sets of the order-k Voronoi cells adjacent to V^k(O'),
// minus O'. Equivalently — and this is how it is computed — it is the set
// of outside sites whose bisector with some kNN member supports an edge of
// V^k(O'): crossing that edge swaps exactly that pair.
//
// candidates must be a superset of the true MIS; passing the INS (Theorem 1)
// is always sound. Edges lying on the diagram bounds are not Voronoi edges
// and contribute nothing.
func (d *Diagram) MIS(knn, candidates []int) ([]int, error) {
	tp, err := d.taggedOrderKCell(knn, candidates)
	if err != nil {
		return nil, err
	}
	seen := make(map[int]bool)
	var out []int
	for _, tag := range tp.tags {
		if tag == boundaryEdge || seen[tag.otherID] {
			continue
		}
		seen[tag.otherID] = true
		out = append(out, tag.otherID)
	}
	sort.Ints(out)
	return out, nil
}
