package voronoi

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/geom"
)

// Swap describes one adjacency of an order-k Voronoi cell: crossing the
// cell edge supported by the bisector of (Out, In) replaces Out with In in
// the kNN set.
type Swap struct {
	Out, In int
}

// CellSwaps returns the swaps across the edges of the order-k Voronoi cell
// of knn, computed against the given candidate set (pass the INS; by
// Theorem 1 it always suffices). Each swap corresponds to one neighboring
// order-k cell in the sense of Definition 2; the In objects over all swaps
// are exactly the MIS.
func (d *Diagram) CellSwaps(knn, candidates []int) ([]Swap, error) {
	tp, err := d.taggedOrderKCell(knn, candidates)
	if err != nil {
		return nil, err
	}
	seen := make(map[Swap]bool)
	var out []Swap
	for _, tag := range tp.tags {
		if tag == boundaryEdge {
			continue
		}
		s := Swap{Out: tag.knnID, In: tag.otherID}
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Out != out[j].Out {
			return out[i].Out < out[j].Out
		}
		return out[i].In < out[j].In
	})
	return out, nil
}

// Region is one cell of the order-k Voronoi diagram: the k sites whose
// kNN region it is (sorted) and the cell polygon clipped to the diagram
// bounds.
type Region struct {
	Sites []int
	Cell  geom.Polygon
}

// EnumerateOrderK materializes every order-k Voronoi cell intersecting the
// diagram bounds, by breadth-first traversal of the cell adjacency graph:
// starting from the kNN set of an interior point, each cell's swaps
// (Definition 2 adjacencies) yield its neighboring cells. This is the
// precomputation that reference [2] of the paper performs and that the
// paper argues is impractical — the number of cells grows rapidly with k,
// which experiment E12 measures with exactly this function.
//
// It returns an error if k is out of range. Cells with empty clipped
// polygons (entirely outside bounds) are not returned.
func (d *Diagram) EnumerateOrderK(k int) ([]Region, error) {
	n := d.Len()
	if k < 1 || k > n {
		return nil, fmt.Errorf("voronoi: enumerate order-%d of %d sites", k, n)
	}
	if n == 0 {
		return nil, fmt.Errorf("voronoi: empty diagram")
	}
	// Seed: the kNN set at the bounds center (always a nonempty cell).
	seed := d.KNN(d.bounds.Center(), k)
	sort.Ints(seed)

	var regions []Region
	visited := map[string]bool{setKey(seed): true}
	queue := [][]int{seed}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		ins, err := d.INS(cur)
		if err != nil {
			return nil, err
		}
		cell, err := d.OrderKCell(cur, ins)
		if err != nil {
			return nil, err
		}
		if len(cell) < 3 {
			continue // clipped away: outside bounds
		}
		regions = append(regions, Region{Sites: append([]int(nil), cur...), Cell: cell})
		swaps, err := d.CellSwaps(cur, ins)
		if err != nil {
			return nil, err
		}
		for _, s := range swaps {
			next := swapSet(cur, s)
			key := setKey(next)
			if !visited[key] {
				visited[key] = true
				queue = append(queue, next)
			}
		}
	}
	return regions, nil
}

// swapSet returns the sorted set cur with s applied.
func swapSet(cur []int, s Swap) []int {
	out := make([]int, 0, len(cur))
	for _, id := range cur {
		if id != s.Out {
			out = append(out, id)
		}
	}
	out = append(out, s.In)
	sort.Ints(out)
	return out
}

// setKey canonicalizes a sorted id set as a map key.
func setKey(ids []int) string {
	var b strings.Builder
	for i, id := range ids {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(id))
	}
	return b.String()
}
