// Package voronoi materializes the order-1 Voronoi diagram of a point set
// (as the dual of a Delaunay triangulation) and provides the higher-order
// constructions the INS algorithm rests on: Voronoi neighbor sets
// (Definition 3 of the paper), the influential neighbor set I(O')
// (Definition 4), the order-k Voronoi cell of a kNN set (the strict safe
// region), and the minimal influential set MIS(O') (Definition 2).
//
// The diagram is dynamic: sites can be inserted and removed, which the
// query layer uses to handle data-object updates during a moving query.
package voronoi

import (
	"container/heap"
	"fmt"

	"repro/internal/delaunay"
	"repro/internal/geom"
)

// Diagram is a dynamic order-1 Voronoi diagram over a set of sites.
type Diagram struct {
	tri    *delaunay.Triangulation
	bounds geom.Rect
}

// NewDiagram returns an empty diagram accepting sites inside bounds. Cells
// are clipped to bounds when materialized as polygons; neighbor relations
// are those of the unbounded diagram.
func NewDiagram(bounds geom.Rect) *Diagram {
	return &Diagram{tri: delaunay.New(bounds), bounds: bounds}
}

// Build constructs a diagram of the given sites. Exact duplicates collapse
// onto one site. The returned ids parallel pts.
func Build(bounds geom.Rect, pts []geom.Point) (*Diagram, []int, error) {
	d := NewDiagram(bounds)
	ids, err := d.tri.InsertAll(pts)
	if err != nil {
		return nil, nil, fmt.Errorf("voronoi: build: %w", err)
	}
	return d, ids, nil
}

// Bounds returns the clipping rectangle of the diagram.
func (d *Diagram) Bounds() geom.Rect { return d.bounds }

// Clone returns a deep copy of the diagram sharing no mutable state with
// the original; site ids are preserved. It is the fallback publication
// path; the snapshot store normally uses Branch.
func (d *Diagram) Clone() *Diagram {
	return &Diagram{tri: d.tri.Clone(), bounds: d.bounds}
}

// Branch returns a new mutable version of the diagram in O(n/pageSize),
// sharing all untouched triangulation pages with the receiver, which is
// frozen: its reads stay valid forever, its mutations return an error. The
// index snapshot store publishes one branch per data-update epoch.
func (d *Diagram) Branch() *Diagram {
	return &Diagram{tri: d.tri.Branch(), bounds: d.bounds}
}

// Len returns the number of live sites.
func (d *Diagram) Len() int { return d.tri.Len() }

// IDs returns the ids of all live sites.
func (d *Diagram) IDs() []int { return d.tri.VertexIDs() }

// Site returns the coordinates of site id.
func (d *Diagram) Site(id int) geom.Point { return d.tri.Point(id) }

// Contains reports whether site id is live.
func (d *Diagram) Contains(id int) bool { return d.tri.Contains(id) }

// Insert adds a site and returns its id.
func (d *Diagram) Insert(p geom.Point) (int, error) { return d.tri.Insert(p) }

// PadSite burns one site id without adding a site, exactly as if the site
// had been inserted and removed. Restore paths use it to reproduce the id
// sequence of a checkpointed diagram whose history contains removals.
func (d *Diagram) PadSite() (int, error) { return d.tri.PadVertex() }

// IDUpperBound returns the id the next Insert will assign; removed sites
// keep their ids burned, so it can exceed Len.
func (d *Diagram) IDUpperBound() int { return d.tri.IDUpperBound() }

// Remove deletes a site.
func (d *Diagram) Remove(id int) error { return d.tri.Remove(id) }

// Neighbors returns the Voronoi neighbor set N_O(p_id) of Definition 3:
// the sites whose order-1 Voronoi cells share an edge with site id's cell.
func (d *Diagram) Neighbors(id int) ([]int, error) { return d.tri.Neighbors(id) }

// NeighborScratch is reusable buffer memory for AppendNeighbors; the zero
// value is ready to use. It must not be shared across goroutines.
type NeighborScratch = delaunay.RingScratch

// AppendNeighbors is Neighbors appending onto dst with caller-supplied
// scratch — the allocation-free form used by the serving hot path.
func (d *Diagram) AppendNeighbors(id int, dst []int, sc *NeighborScratch) ([]int, error) {
	return d.tri.AppendNeighbors(id, dst, sc)
}

// Nearest returns the id of the site nearest to p, or -1 if the diagram is
// empty.
func (d *Diagram) Nearest(p geom.Point) int { return d.tri.Nearest(p) }

// Cell materializes the order-1 Voronoi cell of site id clipped to the
// diagram bounds, as a counter-clockwise convex polygon. The cell of a
// site is fully determined by its Voronoi neighbors:
// V(p) = bounds ∩ ⋂_{u ∈ N(p)} {x : d(x,p) ≤ d(x,u)}.
func (d *Diagram) Cell(id int) (geom.Polygon, error) {
	nb, err := d.Neighbors(id)
	if err != nil {
		return nil, err
	}
	p := d.Site(id)
	hs := make([]geom.HalfPlane, 0, len(nb))
	for _, u := range nb {
		hs = append(hs, geom.BisectorHalfPlane(p, d.Site(u)))
	}
	return geom.IntersectHalfPlanes(d.bounds, hs), nil
}

// KNN returns the k nearest sites to q in ascending distance order, using
// best-first expansion over the Voronoi adjacency graph seeded at the
// nearest site. Ties are broken by id for determinism. Fewer than k ids
// are returned when the diagram is smaller than k.
func (d *Diagram) KNN(q geom.Point, k int) []int {
	if k <= 0 || d.Len() == 0 {
		return nil
	}
	start := d.Nearest(q)
	if start < 0 {
		return nil
	}
	pq := &distHeap{}
	heap.Init(pq)
	seen := map[int]bool{start: true}
	heap.Push(pq, distItem{id: start, d2: q.Dist2(d.Site(start))})
	out := make([]int, 0, k)
	for pq.Len() > 0 && len(out) < k {
		it := heap.Pop(pq).(distItem)
		out = append(out, it.id)
		nb, err := d.Neighbors(it.id)
		if err != nil {
			continue // site raced away; cannot happen single-threaded
		}
		for _, u := range nb {
			if !seen[u] {
				seen[u] = true
				heap.Push(pq, distItem{id: u, d2: q.Dist2(d.Site(u))})
			}
		}
	}
	return out
}

// distItem and distHeap implement the best-first frontier for KNN.
type distItem struct {
	id int
	d2 float64
}

type distHeap []distItem

func (h distHeap) Len() int { return len(h) }
func (h distHeap) Less(i, j int) bool {
	if h[i].d2 != h[j].d2 {
		return h[i].d2 < h[j].d2
	}
	return h[i].id < h[j].id
}
func (h distHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x any)   { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
