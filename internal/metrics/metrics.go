// Package metrics defines the cost counters the experiments report. The
// paper's efficiency argument is about three quantities: how often the
// result must be recomputed (communication between query client and
// processor), how much data each recomputation ships, and how much work
// each per-timestamp validation costs. Counters make those comparable
// across processors without depending on wall-clock noise.
package metrics

import "fmt"

// Counters accumulates query-processing costs. The zero value is ready to
// use.
type Counters struct {
	Timestamps      int // location updates processed
	Validations     int // per-timestamp validity checks performed
	Invalidations   int // validations that found the kNN set stale
	Recomputations  int // full server-side recomputations (communication events)
	ObjectsShipped  int // data objects sent client-ward by recomputations
	DistanceCalcs   int // point-to-point distance evaluations
	DijkstraRuns    int // shortest-path searches (road network mode)
	EdgeRelaxations int // Dijkstra edge relaxations (road network mode)
	NodeVisits      int // index nodes touched (stand-in for page I/O)
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.Timestamps += other.Timestamps
	c.Validations += other.Validations
	c.Invalidations += other.Invalidations
	c.Recomputations += other.Recomputations
	c.ObjectsShipped += other.ObjectsShipped
	c.DistanceCalcs += other.DistanceCalcs
	c.DijkstraRuns += other.DijkstraRuns
	c.EdgeRelaxations += other.EdgeRelaxations
	c.NodeVisits += other.NodeVisits
}

// Reset zeroes all counters.
func (c *Counters) Reset() { *c = Counters{} }

// PerTimestamp returns r scaled to a per-timestamp average; zero timestamps
// yields zeros.
func (c Counters) PerTimestamp() PerStep {
	if c.Timestamps == 0 {
		return PerStep{}
	}
	n := float64(c.Timestamps)
	return PerStep{
		Recomputations: float64(c.Recomputations) / n,
		ObjectsShipped: float64(c.ObjectsShipped) / n,
		DistanceCalcs:  float64(c.DistanceCalcs) / n,
		EdgeRelax:      float64(c.EdgeRelaxations) / n,
		NodeVisits:     float64(c.NodeVisits) / n,
	}
}

// PerStep is Counters averaged over timestamps.
type PerStep struct {
	Recomputations float64
	ObjectsShipped float64
	DistanceCalcs  float64
	EdgeRelax      float64
	NodeVisits     float64
}

// String implements fmt.Stringer with the fields the experiment tables use.
func (c Counters) String() string {
	return fmt.Sprintf(
		"steps=%d validations=%d invalidations=%d recomputations=%d shipped=%d distcalcs=%d dijkstra=%d relax=%d nodevisits=%d",
		c.Timestamps, c.Validations, c.Invalidations, c.Recomputations,
		c.ObjectsShipped, c.DistanceCalcs, c.DijkstraRuns, c.EdgeRelaxations, c.NodeVisits)
}
