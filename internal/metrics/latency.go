package metrics

import (
	"fmt"
	"math/bits"
	"time"
)

// histSubBits is the number of mantissa bits per octave: each power-of-two
// range of nanoseconds is split into 2^histSubBits sub-buckets, bounding the
// relative quantile error at 1/2^histSubBits (~12.5%).
const histSubBits = 3

// histBuckets covers the full uint64 nanosecond range at histSubBits
// resolution; 64 octaves x 8 sub-buckets is a comfortable upper bound.
const histBuckets = 64 << histSubBits

// Histogram is a log-scale latency histogram with bounded relative error,
// built for the serving engine's per-update latency stats: recording is one
// array increment (no allocation), merging is element-wise addition, and
// quantiles are read by walking the buckets. The zero value is ready to
// use. It is not safe for concurrent use; the engine keeps one per shard
// and merges copies when reporting.
type Histogram struct {
	counts [histBuckets]uint64
	count  uint64
	sum    uint64 // total nanoseconds
	max    uint64 // largest recorded value, nanoseconds
}

// bucketIndex maps a nanosecond value to its bucket. Values below
// 2^histSubBits get exact unit buckets; larger values share an octave
// bucket with at most 2^-histSubBits relative width.
func bucketIndex(ns uint64) int {
	if ns < 1<<histSubBits {
		return int(ns)
	}
	exp := bits.Len64(ns) - 1 - histSubBits
	return exp<<histSubBits + int(ns>>exp)
}

// bucketValue returns the representative (midpoint) nanosecond value of
// bucket idx, the inverse of bucketIndex up to the bucket width.
func bucketValue(idx int) uint64 {
	if idx < 1<<histSubBits {
		return uint64(idx)
	}
	exp := idx>>histSubBits - 1
	lo := uint64(1<<histSubBits+idx&(1<<histSubBits-1)) << exp
	return lo + 1<<exp/2
}

// HistogramBuckets is the bucket count of the shared log-scale layout.
// internal/obs builds its lock-free (atomic-bucket) histograms on the same
// bucketing, so engine-side and exporter-side quantiles agree exactly.
const HistogramBuckets = histBuckets

// BucketIndex is the exported bucketing function: it maps a nanosecond
// value to its bucket index in the shared layout.
func BucketIndex(ns uint64) int { return bucketIndex(ns) }

// BucketUpperNS returns the inclusive upper bound (in nanoseconds) of
// bucket idx — the Prometheus `le` edge of the bucket. Upper bounds are
// strictly increasing in idx, which is what makes a cumulative bucket walk
// over the layout monotone.
func BucketUpperNS(idx int) uint64 {
	if idx < 1<<histSubBits {
		return uint64(idx)
	}
	exp := idx>>histSubBits - 1
	lo := uint64(1<<histSubBits+idx&(1<<histSubBits-1)) << exp
	return lo + 1<<exp - 1
}

// Record adds one observation. Negative durations are recorded as zero.
func (h *Histogram) Record(d time.Duration) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	h.counts[bucketIndex(ns)]++
	h.count++
	h.sum += ns
	if ns > h.max {
		h.max = ns
	}
}

// Merge accumulates other into h.
func (h *Histogram) Merge(other *Histogram) {
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.count += other.count
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the average recorded duration, zero when empty.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / h.count)
}

// Max returns the largest recorded duration.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max) }

// Quantile returns the q-quantile (q in [0, 1]) of the recorded durations,
// accurate to the bucket width (~12.5% relative). Zero when empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q*float64(h.count-1)) + 1 // 1-based rank of the target observation
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			v := bucketValue(i)
			if v > h.max {
				v = h.max // the top bucket midpoint can overshoot the true maximum
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.max)
}

// Summary condenses the histogram into the fields reports use.
func (h *Histogram) Summary() LatencySummary {
	return LatencySummary{
		Count: h.count,
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}

// LatencySummary is a Histogram condensed to the usual reporting quantiles.
type LatencySummary struct {
	Count               uint64
	Mean, P50, P95, P99 time.Duration
	Max                 time.Duration
}

// String implements fmt.Stringer as one report row.
func (s LatencySummary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		s.Count, s.Mean, s.P50, s.P95, s.P99, s.Max)
}
