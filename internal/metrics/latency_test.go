package metrics

import (
	"math/rand"
	"testing"
	"time"
)

func TestBucketRoundTrip(t *testing.T) {
	// bucketIndex must be monotone and bucketValue must land inside the
	// bucket's range with bounded relative error.
	prev := -1
	for _, ns := range []uint64{0, 1, 2, 7, 8, 9, 15, 16, 17, 100, 1000, 1e6, 1e9, 1 << 40} {
		idx := bucketIndex(ns)
		if idx < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", ns, idx, prev)
		}
		prev = idx
		v := bucketValue(idx)
		if ns > 0 {
			rel := float64(v)/float64(ns) - 1
			if rel < -0.2 || rel > 0.2 {
				t.Errorf("bucketValue(%d)=%d for ns=%d: relative error %.2f", idx, v, ns, rel)
			}
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Error("empty histogram not zero")
	}
	// 1..1000 microseconds uniformly: p50 ~ 500us, p99 ~ 990us.
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	checks := []struct {
		q    float64
		want time.Duration
	}{{0.5, 500 * time.Microsecond}, {0.95, 950 * time.Microsecond}, {0.99, 990 * time.Microsecond}}
	for _, c := range checks {
		got := h.Quantile(c.q)
		lo, hi := c.want*8/10, c.want*12/10
		if got < lo || got > hi {
			t.Errorf("q%.2f = %v, want within [%v, %v]", c.q, got, lo, hi)
		}
	}
	if h.Max() != time.Millisecond {
		t.Errorf("max = %v", h.Max())
	}
	if m := h.Mean(); m < 400*time.Microsecond || m > 600*time.Microsecond {
		t.Errorf("mean = %v", m)
	}
	if h.Quantile(1) > h.Max() {
		t.Errorf("q100 %v exceeds max %v", h.Quantile(1), h.Max())
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, whole Histogram
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		d := time.Duration(rng.Intn(1e6))
		whole.Record(d)
		if i%2 == 0 {
			a.Record(d)
		} else {
			b.Record(d)
		}
	}
	a.Merge(&b)
	if a.Count() != whole.Count() || a.Mean() != whole.Mean() || a.Max() != whole.Max() {
		t.Errorf("merge mismatch: %v vs %v", a.Summary(), whole.Summary())
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Errorf("q%.2f: merged %v, whole %v", q, a.Quantile(q), whole.Quantile(q))
		}
	}
}

func TestHistogramRecordNegative(t *testing.T) {
	var h Histogram
	h.Record(-time.Second)
	if h.Count() != 1 || h.Max() != 0 {
		t.Errorf("negative record: count=%d max=%v", h.Count(), h.Max())
	}
}

func TestHistogramZeroValueQuantiles(t *testing.T) {
	// Observations of zero duration land in the exact-unit bucket 0 and
	// every quantile of an all-zero histogram must be zero, not the first
	// octave's midpoint.
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Record(0)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("all-zero histogram q%.2f = %v, want 0", q, got)
		}
	}
	if h.Mean() != 0 || h.Max() != 0 {
		t.Errorf("all-zero histogram mean=%v max=%v", h.Mean(), h.Max())
	}
}

func TestHistogramSingleSampleMax(t *testing.T) {
	// With one sample every quantile is that sample, clamped to the true
	// max — the bucket midpoint must never overshoot it.
	var h Histogram
	h.Record(123456 * time.Nanosecond)
	for _, q := range []float64{0, 0.5, 0.95, 1} {
		got := h.Quantile(q)
		if got > h.Max() {
			t.Errorf("q%.2f = %v exceeds max %v", q, got, h.Max())
		}
		if got < h.Max()*8/10 {
			t.Errorf("q%.2f = %v far below the single sample %v", q, got, h.Max())
		}
	}
}

func TestHistogramTopOctaveValues(t *testing.T) {
	// Values near the top of the uint64 nanosecond range must stay inside
	// the bucket table (no out-of-range index) and keep quantiles sane.
	var h Histogram
	huge := []uint64{1 << 62, 1<<63 - 1, 1 << 63, ^uint64(0) >> 1}
	for _, ns := range huge {
		if idx := BucketIndex(ns); idx < 0 || idx >= HistogramBuckets {
			t.Fatalf("BucketIndex(%d) = %d out of [0, %d)", ns, idx, HistogramBuckets)
		}
		h.Record(time.Duration(ns))
	}
	if h.Count() != uint64(len(huge)) {
		t.Fatalf("count = %d", h.Count())
	}
	if q := h.Quantile(0.5); q <= 0 || q > h.Max() {
		t.Errorf("top-octave q50 = %v (max %v)", q, h.Max())
	}
}

func TestBucketUpperNS(t *testing.T) {
	// Upper bounds must be strictly increasing over every reachable bucket
	// (the last reachable index is BucketIndex of the largest value; the
	// table's tail past it is padding) and every value must fall into a
	// bucket whose upper bound is >= the value (le semantics).
	top := BucketIndex(^uint64(0))
	if top >= HistogramBuckets {
		t.Fatalf("top bucket %d outside the table (%d)", top, HistogramBuckets)
	}
	var prev uint64
	for idx := 1; idx <= top; idx++ {
		up := BucketUpperNS(idx)
		if up <= prev {
			t.Fatalf("BucketUpperNS not strictly increasing at %d: %d then %d", idx, prev, up)
		}
		prev = up
	}
	if got := BucketUpperNS(top); got != ^uint64(0) {
		t.Errorf("top bucket upper bound = %d, want the full range", got)
	}
	for _, ns := range []uint64{0, 1, 7, 8, 9, 100, 12345, 1e6, 1e9, 1 << 40} {
		idx := BucketIndex(ns)
		if up := BucketUpperNS(idx); up < ns {
			t.Errorf("value %d maps to bucket %d with upper bound %d < value", ns, idx, up)
		}
		if idx > 0 {
			if lo := BucketUpperNS(idx - 1); lo >= ns {
				t.Errorf("value %d maps to bucket %d but previous upper bound %d >= value", ns, idx, lo)
			}
		}
	}
}

func TestLatencySummaryString(t *testing.T) {
	var h Histogram
	h.Record(time.Millisecond)
	if s := h.Summary().String(); s == "" {
		t.Error("empty summary string")
	}
}
