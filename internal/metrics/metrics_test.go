package metrics

import (
	"strings"
	"testing"
)

func TestAddAndReset(t *testing.T) {
	a := Counters{Timestamps: 2, Validations: 1, Recomputations: 3, ObjectsShipped: 10}
	b := Counters{Timestamps: 5, Invalidations: 2, DistanceCalcs: 7, EdgeRelaxations: 9}
	a.Add(b)
	if a.Timestamps != 7 || a.Invalidations != 2 || a.Recomputations != 3 ||
		a.DistanceCalcs != 7 || a.EdgeRelaxations != 9 || a.ObjectsShipped != 10 {
		t.Errorf("Add produced %+v", a)
	}
	a.Reset()
	if a != (Counters{}) {
		t.Errorf("Reset left %+v", a)
	}
}

func TestPerTimestamp(t *testing.T) {
	c := Counters{Timestamps: 4, Recomputations: 2, ObjectsShipped: 8, DistanceCalcs: 40}
	per := c.PerTimestamp()
	if per.Recomputations != 0.5 || per.ObjectsShipped != 2 || per.DistanceCalcs != 10 {
		t.Errorf("PerTimestamp = %+v", per)
	}
	if (Counters{}).PerTimestamp() != (PerStep{}) {
		t.Error("zero-timestamp PerTimestamp should be zero")
	}
}

func TestString(t *testing.T) {
	c := Counters{Timestamps: 3, Recomputations: 1}
	s := c.String()
	for _, want := range []string{"steps=3", "recomputations=1"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
