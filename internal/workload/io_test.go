package workload

import (
	"strings"
	"testing"

	"repro/internal/geom"
)

func TestPointsRoundTrip(t *testing.T) {
	pts := Uniform(200, testBounds, 9)
	var sb strings.Builder
	if err := WritePoints(&sb, pts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPoints(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pts) {
		t.Fatalf("round trip lost points: %d vs %d", len(got), len(pts))
	}
	for i := range pts {
		if !got[i].Eq(pts[i]) {
			t.Fatalf("point %d changed: %v vs %v", i, got[i], pts[i])
		}
	}
}

func TestReadPointsCommentsAndErrors(t *testing.T) {
	got, err := ReadPoints(strings.NewReader("# header\n\n1,2\n 3 , 4 \n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !got[1].Eq(geom.Pt(3, 4)) {
		t.Fatalf("parsed %v", got)
	}
	for _, bad := range []string{"1\n", "1,2,3\n", "a,2\n", "1,b\n"} {
		if _, err := ReadPoints(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}
