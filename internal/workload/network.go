package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/roadnet"
)

// Network generates the canonical synthetic road network the serving
// stack uses: a grid×grid jittered street grid inside bounds with random
// detour factors, deterministic in seed. insqd and loadgen both build it
// from the same (grid, bounds, seed) knobs, so a loadgen run can address
// the exact vertices a remote insqd serves — the network counterpart of
// the shared Uniform object set.
func Network(grid int, bounds geom.Rect, seed int64) (*roadnet.Graph, error) {
	if grid < 2 {
		return nil, fmt.Errorf("workload: network grid %d, must be >= 2", grid)
	}
	return roadnet.GridNetwork(grid, grid, bounds, 0.2, 0.3, seed)
}

// NetworkSites picks n distinct vertices of g as the initial data-object
// sites, deterministic in seed.
func NetworkSites(g *roadnet.Graph, n int, seed int64) ([]int, error) {
	if n < 1 || n > g.NumVertices() {
		return nil, fmt.Errorf("workload: %d sites out of range [1, %d]", n, g.NumVertices())
	}
	rng := rand.New(rand.NewSource(seed))
	return rng.Perm(g.NumVertices())[:n], nil
}
