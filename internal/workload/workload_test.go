package workload

import (
	"testing"

	"repro/internal/geom"
)

var testBounds = geom.NewRect(geom.Pt(0, 0), geom.Pt(1000, 1000))

func TestUniform(t *testing.T) {
	pts := Uniform(500, testBounds, 1)
	if len(pts) != 500 {
		t.Fatalf("got %d points, want 500", len(pts))
	}
	for _, p := range pts {
		if !testBounds.Contains(p) {
			t.Fatalf("point %v out of bounds", p)
		}
	}
	// Determinism.
	again := Uniform(500, testBounds, 1)
	for i := range pts {
		if !pts[i].Eq(again[i]) {
			t.Fatal("Uniform not deterministic")
		}
	}
	other := Uniform(500, testBounds, 2)
	same := 0
	for i := range pts {
		if pts[i].Eq(other[i]) {
			same++
		}
	}
	if same == 500 {
		t.Fatal("different seeds produced identical data")
	}
}

func TestClustered(t *testing.T) {
	pts, err := Clustered(400, 5, 30, testBounds, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 400 {
		t.Fatalf("got %d points, want 400", len(pts))
	}
	for _, p := range pts {
		if !testBounds.Contains(p) {
			t.Fatalf("point %v out of bounds", p)
		}
	}
	if _, err := Clustered(10, 0, 30, testBounds, 1); err == nil {
		t.Error("expected error for nClusters=0")
	}
	if _, err := Clustered(10, 3, 0, testBounds, 1); err == nil {
		t.Error("expected error for sigma=0")
	}
}

func TestGrid(t *testing.T) {
	pts := Grid(100, testBounds, 0, 1)
	if len(pts) != 100 {
		t.Fatalf("got %d points, want 100", len(pts))
	}
	for _, p := range pts {
		if !testBounds.Contains(p) {
			t.Fatalf("point %v out of bounds", p)
		}
	}
	jittered := Grid(100, testBounds, 0.3, 2)
	if len(jittered) != 100 {
		t.Fatalf("jittered grid: got %d points", len(jittered))
	}
}
