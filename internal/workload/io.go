package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/geom"
)

// WritePoints writes points as "x,y" CSV lines, the format cmd/insgen
// emits and LoadPoints reads back — the demo's "underlying map" can thus
// be any user-provided point file.
func WritePoints(w io.Writer, pts []geom.Point) error {
	bw := bufio.NewWriter(w)
	for _, p := range pts {
		if _, err := fmt.Fprintf(bw, "%g,%g\n", p.X, p.Y); err != nil {
			return fmt.Errorf("workload: write points: %w", err)
		}
	}
	return bw.Flush()
}

// ReadPoints parses "x,y" CSV lines. Blank lines and lines starting with
// '#' are skipped; malformed lines report their line number.
func ReadPoints(r io.Reader) ([]geom.Point, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var pts []geom.Point
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) != 2 {
			return nil, fmt.Errorf("workload: line %d: want \"x,y\", got %q", line, text)
		}
		x, err := strconv.ParseFloat(strings.TrimSpace(fields[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: %w", line, err)
		}
		y, err := strconv.ParseFloat(strings.TrimSpace(fields[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: %w", line, err)
		}
		pts = append(pts, geom.Pt(x, y))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: read points: %w", err)
	}
	return pts, nil
}
