// Package workload generates the synthetic datasets the experiments run
// on: uniform, Gaussian-cluster and grid point sets in a rectangular data
// space, mirroring the point-set knobs the INSQ demonstration exposes
// ("number of data objects to generate"). All generators are deterministic
// in their seed.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
)

// Uniform returns n points drawn independently and uniformly from bounds.
func Uniform(n int, bounds geom.Rect, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(
			bounds.Min.X+rng.Float64()*bounds.Width(),
			bounds.Min.Y+rng.Float64()*bounds.Height(),
		)
	}
	return pts
}

// Clustered returns n points from a mixture of nClusters isotropic
// Gaussians with the given standard deviation, truncated to bounds. It
// models city-like object densities (POIs concentrate around centers).
func Clustered(n, nClusters int, sigma float64, bounds geom.Rect, seed int64) ([]geom.Point, error) {
	if nClusters < 1 {
		return nil, fmt.Errorf("workload: nClusters = %d, must be >= 1", nClusters)
	}
	if sigma <= 0 {
		return nil, fmt.Errorf("workload: sigma = %g, must be > 0", sigma)
	}
	rng := rand.New(rand.NewSource(seed))
	centers := Uniform(nClusters, bounds.Inset(bounds.Width()*0.05), seed+1)
	pts := make([]geom.Point, 0, n)
	for len(pts) < n {
		c := centers[rng.Intn(len(centers))]
		p := geom.Pt(c.X+rng.NormFloat64()*sigma, c.Y+rng.NormFloat64()*sigma)
		if bounds.Contains(p) {
			pts = append(pts, p)
		}
	}
	return pts, nil
}

// Grid returns approximately n points on a regular √n×√n lattice inside
// bounds with optional jitter (fraction of the cell size). Grids stress
// the degenerate-geometry paths: massive collinearity and cocircularity.
func Grid(n int, bounds geom.Rect, jitter float64, seed int64) []geom.Point {
	side := int(math.Ceil(math.Sqrt(float64(n))))
	if side < 2 {
		side = 2
	}
	rng := rand.New(rand.NewSource(seed))
	dx := bounds.Width() / float64(side-1)
	dy := bounds.Height() / float64(side-1)
	pts := make([]geom.Point, 0, n)
	for r := 0; r < side && len(pts) < n; r++ {
		for c := 0; c < side && len(pts) < n; c++ {
			p := geom.Pt(
				bounds.Min.X+float64(c)*dx+(rng.Float64()*2-1)*jitter*dx,
				bounds.Min.Y+float64(r)*dy+(rng.Float64()*2-1)*jitter*dy,
			)
			p.X = math.Min(math.Max(p.X, bounds.Min.X), bounds.Max.X)
			p.Y = math.Min(math.Max(p.Y, bounds.Min.Y), bounds.Max.Y)
			pts = append(pts, p)
		}
	}
	return pts
}
