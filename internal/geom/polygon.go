package geom

import "math"

// HalfPlane is the set of points p satisfying N·p <= C, i.e. the closed
// region on one side of the line N·p = C. The INS layer uses half-planes to
// build (order-k) Voronoi cells as intersections of perpendicular-bisector
// half-planes.
type HalfPlane struct {
	N Point   // outward line normal
	C float64 // offset: the half-plane is {p : N·p <= C}
}

// Contains reports whether p satisfies the half-plane inequality, with a
// small relative tolerance so that points numerically on the boundary are
// considered inside.
func (h HalfPlane) Contains(p Point) bool {
	v := h.N.Dot(p) - h.C
	tol := 1e-9 * (math.Abs(h.N.Dot(p)) + math.Abs(h.C) + 1)
	return v <= tol
}

// BisectorHalfPlane returns the half-plane of points at least as close to
// a as to b: {p : d(p,a) <= d(p,b)}. It is the building block of Voronoi
// cells: V(a) = ∩_{b≠a} BisectorHalfPlane(a, b).
func BisectorHalfPlane(a, b Point) HalfPlane {
	// d(p,a)^2 <= d(p,b)^2  ⇔  2(b-a)·p <= |b|^2 - |a|^2.
	n := b.Sub(a).Scale(2)
	c := b.Dot(b) - a.Dot(a)
	return HalfPlane{N: n, C: c}
}

// Polygon is a simple polygon stored as a vertex loop. The Voronoi layer
// produces convex, counter-clockwise polygons; the operations below assume
// convexity where documented.
type Polygon []Point

// RectPolygon returns r's boundary as a counter-clockwise polygon.
func RectPolygon(r Rect) Polygon {
	return Polygon{
		{r.Min.X, r.Min.Y},
		{r.Max.X, r.Min.Y},
		{r.Max.X, r.Max.Y},
		{r.Min.X, r.Max.Y},
	}
}

// ClipHalfPlane returns the part of the convex polygon inside the
// half-plane, using one Sutherland–Hodgman pass. The result is empty when
// the polygon lies entirely outside.
func (poly Polygon) ClipHalfPlane(h HalfPlane) Polygon {
	if len(poly) == 0 {
		return nil
	}
	out := make(Polygon, 0, len(poly)+2)
	val := func(p Point) float64 { return h.N.Dot(p) - h.C }
	prev := poly[len(poly)-1]
	prevVal := val(prev)
	for _, cur := range poly {
		curVal := val(cur)
		if prevVal <= 0 { // prev inside
			out = append(out, prev)
			if curVal > 0 { // leaving
				out = append(out, intersectAt(prev, cur, prevVal, curVal))
			}
		} else if curVal <= 0 { // entering
			out = append(out, intersectAt(prev, cur, prevVal, curVal))
		}
		prev, prevVal = cur, curVal
	}
	return out
}

// intersectAt returns the point on segment (a,b) where the half-plane value
// interpolates to zero. va and vb are the values at a and b and must have
// opposite signs.
func intersectAt(a, b Point, va, vb float64) Point {
	t := va / (va - vb)
	return Lerp(a, b, t)
}

// Contains reports whether p lies inside or on the boundary of the convex
// counter-clockwise polygon.
func (poly Polygon) Contains(p Point) bool {
	if len(poly) < 3 {
		return false
	}
	for i, a := range poly {
		b := poly[(i+1)%len(poly)]
		if Orient(a, b, p) == Clockwise {
			return false
		}
	}
	return true
}

// Area returns the signed area of the polygon (positive when
// counter-clockwise).
func (poly Polygon) Area() float64 {
	var s float64
	for i, a := range poly {
		b := poly[(i+1)%len(poly)]
		s += a.Cross(b)
	}
	return s / 2
}

// Centroid returns the area centroid of the polygon. For degenerate
// (zero-area) polygons it falls back to the vertex average.
func (poly Polygon) Centroid() Point {
	a := poly.Area()
	if math.Abs(a) < 1e-300 {
		var c Point
		for _, p := range poly {
			c = c.Add(p)
		}
		if len(poly) > 0 {
			c = c.Scale(1 / float64(len(poly)))
		}
		return c
	}
	var cx, cy float64
	for i, p := range poly {
		q := poly[(i+1)%len(poly)]
		cross := p.Cross(q)
		cx += (p.X + q.X) * cross
		cy += (p.Y + q.Y) * cross
	}
	return Point{cx / (6 * a), cy / (6 * a)}
}

// Bounds returns the bounding rectangle of the polygon. It panics on an
// empty polygon.
func (poly Polygon) Bounds() Rect { return RectOf(poly...) }

// Dedup returns the polygon with consecutive (near-)duplicate vertices
// removed. Clipping can produce coincident vertices when a clip line passes
// exactly through an existing vertex.
func (poly Polygon) Dedup() Polygon {
	if len(poly) == 0 {
		return poly
	}
	out := make(Polygon, 0, len(poly))
	const eps = 1e-12
	for _, p := range poly {
		if len(out) > 0 && out[len(out)-1].Dist2(p) < eps {
			continue
		}
		out = append(out, p)
	}
	for len(out) > 1 && out[0].Dist2(out[len(out)-1]) < eps {
		out = out[:len(out)-1]
	}
	return out
}

// IntersectHalfPlanes intersects the bounding rectangle with every
// half-plane in hs and returns the resulting convex polygon (possibly
// empty). This is how Voronoi cells and order-k Voronoi cells are
// materialized.
func IntersectHalfPlanes(bounds Rect, hs []HalfPlane) Polygon {
	poly := RectPolygon(bounds)
	for _, h := range hs {
		poly = poly.ClipHalfPlane(h)
		if len(poly) == 0 {
			return nil
		}
	}
	return poly.Dedup()
}
