package geom

import (
	"math"
	"math/rand"
	"testing"
)

// TestClipMonotoneArea checks that clipping never grows a polygon and that
// clipping by a half-plane containing the polygon is the identity.
func TestClipMonotoneArea(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	square := RectPolygon(NewRect(Pt(0, 0), Pt(100, 100)))
	for i := 0; i < 200; i++ {
		a := Pt(rng.Float64()*100, rng.Float64()*100)
		b := Pt(rng.Float64()*100, rng.Float64()*100)
		if a.Eq(b) {
			continue
		}
		h := BisectorHalfPlane(a, b)
		clipped := square.ClipHalfPlane(h)
		if got, limit := clipped.Area(), square.Area(); got > limit+1e-9 {
			t.Fatalf("clip grew area: %g > %g", got, limit)
		}
		// Clipping twice by the same half-plane is idempotent.
		again := clipped.ClipHalfPlane(h)
		if math.Abs(again.Area()-clipped.Area()) > 1e-9*(clipped.Area()+1) {
			t.Fatalf("clip not idempotent: %g vs %g", again.Area(), clipped.Area())
		}
	}
}

// TestClipComplementary checks that a half-plane and its complement split
// the polygon's area exactly.
func TestClipComplementary(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	square := RectPolygon(NewRect(Pt(0, 0), Pt(100, 100)))
	for i := 0; i < 200; i++ {
		a := Pt(rng.Float64()*100, rng.Float64()*100)
		b := Pt(rng.Float64()*100, rng.Float64()*100)
		if a.Eq(b) {
			continue
		}
		h := BisectorHalfPlane(a, b)
		comp := HalfPlane{N: h.N.Scale(-1), C: -h.C}
		a1 := square.ClipHalfPlane(h).Area()
		a2 := square.ClipHalfPlane(comp).Area()
		if math.Abs(a1+a2-square.Area()) > 1e-6*square.Area() {
			t.Fatalf("complementary clips cover %g of %g", a1+a2, square.Area())
		}
	}
}
