// Package geom provides the 2D computational-geometry substrate used by the
// Voronoi, Delaunay and INS layers: points, vectors, segments, rectangles,
// robust orientation / in-circle predicates, circumcenters and convex
// polygon clipping.
//
// All coordinates are float64. The predicates use a floating-point filter
// with a certified error bound and fall back to exact big.Rat arithmetic
// only when the filter cannot decide, so they are both fast on
// general-position inputs and correct on (near-)degenerate ones.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the 2D Euclidean plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{x, y} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%g, %g)", p.X, p.Y) }

// Add returns p + q treated as vectors.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q treated as vectors.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns the vector p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dot returns the dot product of p and q treated as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z component of the cross product p × q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p treated as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Dist2 returns the squared Euclidean distance between p and q. It is
// cheaper than Dist and preserves ordering, so the kNN machinery uses it
// for comparisons throughout.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Eq reports whether p and q are exactly equal.
func (p Point) Eq(q Point) bool { return p.X == q.X && p.Y == q.Y }

// Lerp returns the point p + t*(q-p).
func Lerp(p, q Point, t float64) Point {
	return Point{p.X + t*(q.X-p.X), p.Y + t*(q.Y-p.Y)}
}

// Mid returns the midpoint of p and q.
func Mid(p, q Point) Point { return Point{(p.X + q.X) / 2, (p.Y + q.Y) / 2} }

// Segment is a closed line segment between two endpoints.
type Segment struct {
	A, B Point
}

// Len returns the length of the segment.
func (s Segment) Len() float64 { return s.A.Dist(s.B) }

// At returns the point A + t*(B-A); t in [0,1] spans the segment.
func (s Segment) At(t float64) Point { return Lerp(s.A, s.B, t) }

// DistPoint returns the distance from p to the closest point of the segment.
func (s Segment) DistPoint(p Point) float64 {
	d := s.B.Sub(s.A)
	l2 := d.Dot(d)
	if l2 == 0 {
		return p.Dist(s.A)
	}
	t := p.Sub(s.A).Dot(d) / l2
	switch {
	case t <= 0:
		return p.Dist(s.A)
	case t >= 1:
		return p.Dist(s.B)
	}
	return p.Dist(s.A.Add(d.Scale(t)))
}

// Rect is an axis-aligned rectangle with Min at the lower-left corner and
// Max at the upper-right corner. A Rect with Min==Max is a single point.
type Rect struct {
	Min, Max Point
}

// NewRect returns the rectangle spanning the two corner points in any order.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Point{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// RectOf returns the minimal bounding rectangle of the given points.
// It panics if pts is empty.
func RectOf(pts ...Point) Rect {
	if len(pts) == 0 {
		panic("geom: RectOf of empty point set")
	}
	r := Rect{pts[0], pts[0]}
	for _, p := range pts[1:] {
		r = r.ExpandPoint(p)
	}
	return r
}

// Contains reports whether p lies inside or on the boundary of r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// ContainsRect reports whether s lies entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	return r.Contains(s.Min) && r.Contains(s.Max)
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// Expand returns the minimal rectangle containing both r and s.
func (r Rect) Expand(s Rect) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// ExpandPoint returns the minimal rectangle containing r and p.
func (r Rect) ExpandPoint(p Point) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, p.X), math.Min(r.Min.Y, p.Y)},
		Max: Point{math.Max(r.Max.X, p.X), math.Max(r.Max.Y, p.Y)},
	}
}

// Inset returns r shrunk by d on every side (grown when d is negative).
func (r Rect) Inset(d float64) Rect {
	return Rect{Point{r.Min.X + d, r.Min.Y + d}, Point{r.Max.X - d, r.Max.Y - d}}
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Perimeter returns half the perimeter of r (the usual R*-tree margin
// metric; callers that need the full perimeter can double it).
func (r Rect) Perimeter() float64 { return r.Width() + r.Height() }

// Center returns the center point of r.
func (r Rect) Center() Point { return Mid(r.Min, r.Max) }

// Dist2Point returns the squared distance from p to the nearest point of r
// (zero when p is inside r). This is the MINDIST metric used by best-first
// R-tree traversal.
func (r Rect) Dist2Point(p Point) float64 {
	dx := math.Max(0, math.Max(r.Min.X-p.X, p.X-r.Max.X))
	dy := math.Max(0, math.Max(r.Min.Y-p.Y, p.Y-r.Max.Y))
	return dx*dx + dy*dy
}

// EnlargementArea returns how much r's area grows if expanded to cover s.
func (r Rect) EnlargementArea(s Rect) float64 {
	return r.Expand(s).Area() - r.Area()
}
