package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p, q := Pt(1, 2), Pt(3, 5)
	if got := p.Add(q); !got.Eq(Pt(4, 7)) {
		t.Errorf("Add = %v, want (4, 7)", got)
	}
	if got := q.Sub(p); !got.Eq(Pt(2, 3)) {
		t.Errorf("Sub = %v, want (2, 3)", got)
	}
	if got := p.Scale(2); !got.Eq(Pt(2, 4)) {
		t.Errorf("Scale = %v, want (2, 4)", got)
	}
	if got := p.Dot(q); got != 13 {
		t.Errorf("Dot = %g, want 13", got)
	}
	if got := p.Cross(q); got != -1 {
		t.Errorf("Cross = %g, want -1", got)
	}
}

func TestDistAgreesWithDist2(t *testing.T) {
	err := quick.Check(func(ax, ay, bx, by float64) bool {
		a, b := Pt(clampCoord(ax), clampCoord(ay)), Pt(clampCoord(bx), clampCoord(by))
		d, d2 := a.Dist(b), a.Dist2(b)
		return math.Abs(d*d-d2) <= 1e-9*(d2+1)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

// clampCoord maps arbitrary quick-generated floats into a sane coordinate
// range so products cannot overflow.
func clampCoord(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 1e6)
}

func TestSegmentDistPoint(t *testing.T) {
	s := Segment{Pt(0, 0), Pt(10, 0)}
	cases := []struct {
		p    Point
		want float64
	}{
		{Pt(5, 3), 3},
		{Pt(-4, 3), 5},  // beyond A
		{Pt(13, -4), 5}, // beyond B
		{Pt(0, 0), 0},
		{Pt(10, 0), 0},
		{Pt(7, 0), 0},
	}
	for _, c := range cases {
		if got := s.DistPoint(c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("DistPoint(%v) = %g, want %g", c.p, got, c.want)
		}
	}
	deg := Segment{Pt(2, 2), Pt(2, 2)}
	if got := deg.DistPoint(Pt(5, 6)); math.Abs(got-5) > 1e-12 {
		t.Errorf("degenerate DistPoint = %g, want 5", got)
	}
}

func TestSegmentAtLen(t *testing.T) {
	s := Segment{Pt(0, 0), Pt(4, 3)}
	if got := s.Len(); got != 5 {
		t.Errorf("Len = %g, want 5", got)
	}
	if got := s.At(0.5); !got.Eq(Pt(2, 1.5)) {
		t.Errorf("At(0.5) = %v, want (2, 1.5)", got)
	}
}

func TestRectBasics(t *testing.T) {
	r := NewRect(Pt(4, 6), Pt(0, 2))
	if !r.Min.Eq(Pt(0, 2)) || !r.Max.Eq(Pt(4, 6)) {
		t.Fatalf("NewRect normalized to %v", r)
	}
	if r.Width() != 4 || r.Height() != 4 || r.Area() != 16 || r.Perimeter() != 8 {
		t.Errorf("dimensions wrong: w=%g h=%g a=%g p=%g", r.Width(), r.Height(), r.Area(), r.Perimeter())
	}
	if !r.Contains(Pt(2, 4)) || !r.Contains(Pt(0, 2)) || r.Contains(Pt(5, 4)) {
		t.Error("Contains misclassifies")
	}
	if !r.Center().Eq(Pt(2, 4)) {
		t.Errorf("Center = %v", r.Center())
	}
}

func TestRectIntersectsExpand(t *testing.T) {
	a := NewRect(Pt(0, 0), Pt(2, 2))
	b := NewRect(Pt(1, 1), Pt(3, 3))
	c := NewRect(Pt(5, 5), Pt(6, 6))
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("a and b should intersect")
	}
	if a.Intersects(c) {
		t.Error("a and c should not intersect")
	}
	// Touching rectangles intersect (closed sets).
	d := NewRect(Pt(2, 0), Pt(4, 2))
	if !a.Intersects(d) {
		t.Error("touching rectangles should intersect")
	}
	e := a.Expand(c)
	if !e.ContainsRect(a) || !e.ContainsRect(c) {
		t.Error("Expand does not contain inputs")
	}
	if got := a.EnlargementArea(b); math.Abs(got-5) > 1e-12 {
		t.Errorf("EnlargementArea = %g, want 5", got)
	}
}

func TestRectDist2Point(t *testing.T) {
	r := NewRect(Pt(0, 0), Pt(2, 2))
	cases := []struct {
		p    Point
		want float64
	}{
		{Pt(1, 1), 0},
		{Pt(2, 2), 0},
		{Pt(3, 1), 1},
		{Pt(1, -2), 4},
		{Pt(5, 6), 9 + 16},
	}
	for _, c := range cases {
		if got := r.Dist2Point(c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Dist2Point(%v) = %g, want %g", c.p, got, c.want)
		}
	}
}

func TestRectOf(t *testing.T) {
	r := RectOf(Pt(1, 5), Pt(-2, 3), Pt(4, -1))
	want := Rect{Pt(-2, -1), Pt(4, 5)}
	if r != want {
		t.Errorf("RectOf = %v, want %v", r, want)
	}
	defer func() {
		if recover() == nil {
			t.Error("RectOf() of no points should panic")
		}
	}()
	RectOf()
}

func TestOrientBasic(t *testing.T) {
	a, b := Pt(0, 0), Pt(1, 0)
	if got := Orient(a, b, Pt(0.5, 1)); got != CounterClockwise {
		t.Errorf("left point: got %v", got)
	}
	if got := Orient(a, b, Pt(0.5, -1)); got != Clockwise {
		t.Errorf("right point: got %v", got)
	}
	if got := Orient(a, b, Pt(2, 0)); got != Collinear {
		t.Errorf("collinear point: got %v", got)
	}
}

func TestOrientAntisymmetry(t *testing.T) {
	err := quick.Check(func(ax, ay, bx, by, cx, cy float64) bool {
		a := Pt(clampCoord(ax), clampCoord(ay))
		b := Pt(clampCoord(bx), clampCoord(by))
		c := Pt(clampCoord(cx), clampCoord(cy))
		return Orient(a, b, c) == -Orient(b, a, c) &&
			Orient(a, b, c) == Orient(b, c, a) // cyclic invariance
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestOrientNearDegenerate(t *testing.T) {
	// Points almost exactly on the line y = x; the floating-point filter
	// must hand these to the exact path and still give consistent answers.
	a, b := Pt(0, 0), Pt(1e17, 1e17)
	on := Pt(0.5e17, 0.5e17)
	if got := Orient(a, b, on); got != Collinear {
		t.Errorf("exactly-on-line point: got %v, want Collinear", got)
	}
	// Perturb the x coordinate by one ulp in each direction.
	up := Pt(math.Nextafter(on.X, math.Inf(1)), on.Y)
	down := Pt(math.Nextafter(on.X, math.Inf(-1)), on.Y)
	if got := Orient(a, b, up); got != Clockwise {
		t.Errorf("one ulp right of line: got %v, want Clockwise", got)
	}
	if got := Orient(a, b, down); got != CounterClockwise {
		t.Errorf("one ulp left of line: got %v, want CounterClockwise", got)
	}
}

func TestInCircleBasic(t *testing.T) {
	// Unit circle through (1,0), (0,1), (-1,0) (counter-clockwise).
	a, b, c := Pt(1, 0), Pt(0, 1), Pt(-1, 0)
	if got := InCircle(a, b, c, Pt(0, 0)); got != 1 {
		t.Errorf("center: got %d, want 1 (inside)", got)
	}
	if got := InCircle(a, b, c, Pt(2, 0)); got != -1 {
		t.Errorf("far point: got %d, want -1 (outside)", got)
	}
	if got := InCircle(a, b, c, Pt(0, -1)); got != 0 {
		t.Errorf("on-circle point: got %d, want 0", got)
	}
}

func TestInCircleMatchesDistanceToCircumcenter(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		a := Pt(rng.Float64()*100, rng.Float64()*100)
		b := Pt(rng.Float64()*100, rng.Float64()*100)
		c := Pt(rng.Float64()*100, rng.Float64()*100)
		if Orient(a, b, c) != CounterClockwise {
			b, c = c, b
		}
		if Orient(a, b, c) != CounterClockwise {
			continue // collinear draw
		}
		d := Pt(rng.Float64()*100, rng.Float64()*100)
		cc, ok := Circumcenter(a, b, c)
		if !ok {
			continue
		}
		r2 := cc.Dist2(a)
		dd := cc.Dist2(d)
		if math.Abs(dd-r2) < 1e-6*r2 {
			continue // too close to the circle to compare against floats
		}
		want := -1
		if dd < r2 {
			want = 1
		}
		if got := InCircle(a, b, c, d); got != want {
			t.Fatalf("InCircle(%v,%v,%v,%v) = %d, want %d", a, b, c, d, got, want)
		}
	}
}

func TestCircumcenterEquidistant(t *testing.T) {
	err := quick.Check(func(ax, ay, bx, by, cx, cy float64) bool {
		a := Pt(clampCoord(ax), clampCoord(ay))
		b := Pt(clampCoord(bx), clampCoord(by))
		c := Pt(clampCoord(cx), clampCoord(cy))
		cc, ok := Circumcenter(a, b, c)
		if !ok {
			return true // collinear: nothing to verify
		}
		da, db, dc := cc.Dist(a), cc.Dist(b), cc.Dist(c)
		scale := da + 1
		return math.Abs(da-db) < 1e-6*scale && math.Abs(da-dc) < 1e-6*scale
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestCircumcenterCollinear(t *testing.T) {
	if _, ok := Circumcenter(Pt(0, 0), Pt(1, 1), Pt(2, 2)); ok {
		t.Error("collinear points should have no circumcenter")
	}
	if r2 := Circumradius2(Pt(0, 0), Pt(1, 1), Pt(2, 2)); !math.IsInf(r2, 1) {
		t.Errorf("collinear circumradius = %g, want +Inf", r2)
	}
}

func TestBisectorHalfPlane(t *testing.T) {
	a, b := Pt(0, 0), Pt(4, 0)
	h := BisectorHalfPlane(a, b)
	if !h.Contains(Pt(1, 5)) {
		t.Error("point nearer a should be inside")
	}
	if h.Contains(Pt(3, 5)) {
		t.Error("point nearer b should be outside")
	}
	if !h.Contains(Pt(2, -7)) {
		t.Error("equidistant point should be inside (closed half-plane)")
	}
}

func TestBisectorHalfPlaneProperty(t *testing.T) {
	err := quick.Check(func(ax, ay, bx, by, px, py float64) bool {
		a := Pt(clampCoord(ax), clampCoord(ay))
		b := Pt(clampCoord(bx), clampCoord(by))
		p := Pt(clampCoord(px), clampCoord(py))
		if a.Eq(b) {
			return true
		}
		h := BisectorHalfPlane(a, b)
		da, db := p.Dist2(a), p.Dist2(b)
		if math.Abs(da-db) < 1e-6*(da+db+1) {
			return true // boundary: tolerance-dependent
		}
		return h.Contains(p) == (da < db)
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Error(err)
	}
}

func TestClipHalfPlane(t *testing.T) {
	square := RectPolygon(NewRect(Pt(0, 0), Pt(2, 2)))
	// Keep the left half: x <= 1.
	left := square.ClipHalfPlane(HalfPlane{N: Pt(1, 0), C: 1})
	if got := left.Area(); math.Abs(got-2) > 1e-9 {
		t.Errorf("left-half area = %g, want 2", got)
	}
	// Clip away everything.
	empty := square.ClipHalfPlane(HalfPlane{N: Pt(1, 0), C: -1})
	if len(empty) != 0 {
		t.Errorf("expected empty polygon, got %v", empty)
	}
	// Clip that keeps everything.
	all := square.ClipHalfPlane(HalfPlane{N: Pt(1, 0), C: 10})
	if got := all.Area(); math.Abs(got-4) > 1e-9 {
		t.Errorf("full area = %g, want 4", got)
	}
}

func TestIntersectHalfPlanesVoronoiCell(t *testing.T) {
	// The Voronoi cell of the center of a 3x3 grid is the unit square
	// centered on it.
	bounds := NewRect(Pt(-10, -10), Pt(10, 10))
	center := Pt(0, 0)
	var hs []HalfPlane
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			if dx == 0 && dy == 0 {
				continue
			}
			hs = append(hs, BisectorHalfPlane(center, Pt(float64(dx), float64(dy))))
		}
	}
	cell := IntersectHalfPlanes(bounds, hs)
	if got := cell.Area(); math.Abs(got-1) > 1e-9 {
		t.Errorf("center cell area = %g, want 1", got)
	}
	if !cell.Contains(Pt(0.2, -0.2)) {
		t.Error("cell should contain nearby point")
	}
	if cell.Contains(Pt(0.9, 0)) {
		t.Error("cell should not contain point nearer to (1,0)")
	}
}

func TestPolygonAreaCentroid(t *testing.T) {
	tri := Polygon{Pt(0, 0), Pt(3, 0), Pt(0, 3)}
	if got := tri.Area(); math.Abs(got-4.5) > 1e-12 {
		t.Errorf("triangle area = %g, want 4.5", got)
	}
	c := tri.Centroid()
	if math.Abs(c.X-1) > 1e-12 || math.Abs(c.Y-1) > 1e-12 {
		t.Errorf("triangle centroid = %v, want (1,1)", c)
	}
	cw := Polygon{Pt(0, 0), Pt(0, 3), Pt(3, 0)}
	if got := cw.Area(); math.Abs(got+4.5) > 1e-12 {
		t.Errorf("clockwise area = %g, want -4.5", got)
	}
}

func TestPolygonContains(t *testing.T) {
	sq := RectPolygon(NewRect(Pt(0, 0), Pt(4, 4)))
	if !sq.Contains(Pt(2, 2)) || !sq.Contains(Pt(0, 2)) {
		t.Error("interior/boundary points misclassified")
	}
	if sq.Contains(Pt(5, 2)) || sq.Contains(Pt(-0.001, 2)) {
		t.Error("exterior points misclassified")
	}
	if (Polygon{Pt(0, 0), Pt(1, 1)}).Contains(Pt(0.5, 0.5)) {
		t.Error("degenerate polygon should contain nothing")
	}
}

func TestPolygonDedup(t *testing.T) {
	p := Polygon{Pt(0, 0), Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(1, 1), Pt(0, 1), Pt(0, 0)}
	d := p.Dedup()
	if len(d) != 4 {
		t.Errorf("Dedup kept %d vertices, want 4: %v", len(d), d)
	}
}

func TestLerpMid(t *testing.T) {
	if got := Lerp(Pt(0, 0), Pt(10, 20), 0.25); !got.Eq(Pt(2.5, 5)) {
		t.Errorf("Lerp = %v", got)
	}
	if got := Mid(Pt(-2, 4), Pt(6, 0)); !got.Eq(Pt(2, 2)) {
		t.Errorf("Mid = %v", got)
	}
}
