package geom

import (
	"math"
	"math/big"
)

// Orientation classifies the turn direction of an ordered point triple.
type Orientation int

// Possible results of Orient.
const (
	Clockwise        Orientation = -1
	Collinear        Orientation = 0
	CounterClockwise Orientation = 1
)

// orientErrBound is the relative rounding-error bound for the 2x2
// determinant used by Orient. Following Shewchuk's analysis, the float64
// evaluation of (b-a)×(c-a) is exact up to (3+16ε)ε times the sum of the
// absolute values of the two products; we use a slightly looser constant
// which is still a certified filter.
var orientErrBound = (3.0 + 16.0*ulpHalf) * ulpHalf

const ulpHalf = 1.1102230246251565e-16 // 2^-53, half a unit in the last place

// Orient returns the orientation of the triple (a, b, c): CounterClockwise
// when c lies to the left of the directed line a->b, Clockwise when it lies
// to the right, and Collinear when the three points are exactly collinear.
// The result is exact: a floating-point filter decides the common case and
// big.Rat arithmetic resolves near-degenerate inputs.
func Orient(a, b, c Point) Orientation {
	detLeft := (b.X - a.X) * (c.Y - a.Y)
	detRight := (b.Y - a.Y) * (c.X - a.X)
	det := detLeft - detRight

	var detSum float64
	switch {
	case detLeft > 0:
		if detRight <= 0 {
			return sign(det)
		}
		detSum = detLeft + detRight
	case detLeft < 0:
		if detRight >= 0 {
			return sign(det)
		}
		detSum = -detLeft - detRight
	default:
		return sign(-detRight)
	}

	if math.Abs(det) > orientErrBound*detSum {
		return sign(det)
	}
	return orientExact(a, b, c)
}

func sign(v float64) Orientation {
	switch {
	case v > 0:
		return CounterClockwise
	case v < 0:
		return Clockwise
	}
	return Collinear
}

func orientExact(a, b, c Point) Orientation {
	ax, ay := new(big.Rat).SetFloat64(a.X), new(big.Rat).SetFloat64(a.Y)
	bx, by := new(big.Rat).SetFloat64(b.X), new(big.Rat).SetFloat64(b.Y)
	cx, cy := new(big.Rat).SetFloat64(c.X), new(big.Rat).SetFloat64(c.Y)
	// (bx-ax)*(cy-ay) - (by-ay)*(cx-ax)
	l := new(big.Rat).Mul(new(big.Rat).Sub(bx, ax), new(big.Rat).Sub(cy, ay))
	r := new(big.Rat).Mul(new(big.Rat).Sub(by, ay), new(big.Rat).Sub(cx, ax))
	return Orientation(l.Cmp(r))
}

// inCircleErrBound is the certified filter bound for InCircle, again
// following the structure of Shewchuk's bounds with a loose constant.
var inCircleErrBound = (10.0 + 96.0*ulpHalf) * ulpHalf

// InCircle reports whether point d lies strictly inside the circle through
// a, b and c, which must be in counter-clockwise order. It returns +1 when
// d is inside, -1 when outside, and 0 when d lies exactly on the circle.
// Like Orient it uses a floating-point filter with an exact fallback.
func InCircle(a, b, c, d Point) int {
	adx, ady := a.X-d.X, a.Y-d.Y
	bdx, bdy := b.X-d.X, b.Y-d.Y
	cdx, cdy := c.X-d.X, c.Y-d.Y

	bdxcdy := bdx * cdy
	cdxbdy := cdx * bdy
	alift := adx*adx + ady*ady

	cdxady := cdx * ady
	adxcdy := adx * cdy
	blift := bdx*bdx + bdy*bdy

	adxbdy := adx * bdy
	bdxady := bdx * ady
	clift := cdx*cdx + cdy*cdy

	det := alift*(bdxcdy-cdxbdy) + blift*(cdxady-adxcdy) + clift*(adxbdy-bdxady)

	permanent := (math.Abs(bdxcdy)+math.Abs(cdxbdy))*alift +
		(math.Abs(cdxady)+math.Abs(adxcdy))*blift +
		(math.Abs(adxbdy)+math.Abs(bdxady))*clift
	if math.Abs(det) > inCircleErrBound*permanent {
		switch {
		case det > 0:
			return 1
		case det < 0:
			return -1
		}
		return 0
	}
	return inCircleExact(a, b, c, d)
}

func inCircleExact(a, b, c, d Point) int {
	rat := func(f float64) *big.Rat { return new(big.Rat).SetFloat64(f) }
	adx := new(big.Rat).Sub(rat(a.X), rat(d.X))
	ady := new(big.Rat).Sub(rat(a.Y), rat(d.Y))
	bdx := new(big.Rat).Sub(rat(b.X), rat(d.X))
	bdy := new(big.Rat).Sub(rat(b.Y), rat(d.Y))
	cdx := new(big.Rat).Sub(rat(c.X), rat(d.X))
	cdy := new(big.Rat).Sub(rat(c.Y), rat(d.Y))

	lift := func(x, y *big.Rat) *big.Rat {
		return new(big.Rat).Add(new(big.Rat).Mul(x, x), new(big.Rat).Mul(y, y))
	}
	det2 := func(p, q, r, s *big.Rat) *big.Rat { // p*s - q*r
		return new(big.Rat).Sub(new(big.Rat).Mul(p, s), new(big.Rat).Mul(q, r))
	}

	det := new(big.Rat)
	det.Add(det, new(big.Rat).Mul(lift(adx, ady), det2(bdx, cdx, bdy, cdy)))
	det.Sub(det, new(big.Rat).Mul(lift(bdx, bdy), det2(adx, cdx, ady, cdy)))
	det.Add(det, new(big.Rat).Mul(lift(cdx, cdy), det2(adx, bdx, ady, bdy)))
	return det.Sign()
}

// Circumcenter returns the center of the circle through a, b and c. The
// second return value is false when the points are (near-)collinear and no
// finite circumcenter exists.
func Circumcenter(a, b, c Point) (Point, bool) {
	bx, by := b.X-a.X, b.Y-a.Y
	cx, cy := c.X-a.X, c.Y-a.Y
	d := 2 * (bx*cy - by*cx)
	if d == 0 || math.IsInf(d, 0) || math.IsNaN(d) {
		return Point{}, false
	}
	bl := bx*bx + by*by
	cl := cx*cx + cy*cy
	ux := (cy*bl - by*cl) / d
	uy := (bx*cl - cx*bl) / d
	if math.IsNaN(ux) || math.IsNaN(uy) || math.IsInf(ux, 0) || math.IsInf(uy, 0) {
		return Point{}, false
	}
	return Point{a.X + ux, a.Y + uy}, true
}

// Circumradius2 returns the squared circumradius of the triangle abc, or
// +Inf when the points are collinear.
func Circumradius2(a, b, c Point) float64 {
	cc, ok := Circumcenter(a, b, c)
	if !ok {
		return math.Inf(1)
	}
	return cc.Dist2(a)
}
