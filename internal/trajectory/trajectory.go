// Package trajectory generates movement paths for the query object in 2D
// Euclidean space: random-waypoint walks, straight lines, and explicit
// waypoint tours sampled at constant speed. Road-network trajectories live
// in package roadnet (Route), since they must follow the graph.
package trajectory

import (
	"fmt"
	"math/rand"

	"repro/internal/geom"
)

// RandomWaypoint returns steps positions produced by the random-waypoint
// mobility model: pick a uniform target in bounds, move toward it at
// stepLen per timestamp, repeat. Deterministic in seed.
func RandomWaypoint(bounds geom.Rect, steps int, stepLen float64, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	randPt := func() geom.Point {
		return geom.Pt(
			bounds.Min.X+rng.Float64()*bounds.Width(),
			bounds.Min.Y+rng.Float64()*bounds.Height(),
		)
	}
	pos := randPt()
	target := randPt()
	out := make([]geom.Point, 0, steps)
	for len(out) < steps {
		d := target.Sub(pos)
		n := d.Norm()
		if n < stepLen {
			target = randPt()
			continue
		}
		pos = pos.Add(d.Scale(stepLen / n))
		out = append(out, pos)
	}
	return out
}

// Line returns steps positions moving from a to b at constant speed,
// reaching b exactly at the final step. It needs at least two steps.
func Line(a, b geom.Point, steps int) ([]geom.Point, error) {
	if steps < 2 {
		return nil, fmt.Errorf("trajectory: Line needs >= 2 steps, got %d", steps)
	}
	out := make([]geom.Point, steps)
	for i := range out {
		out[i] = geom.Lerp(a, b, float64(i)/float64(steps-1))
	}
	return out, nil
}

// Waypoints samples a tour through the given waypoints at stepLen per
// timestamp. The final waypoint may be overshot by less than one step.
func Waypoints(pts []geom.Point, stepLen float64) ([]geom.Point, error) {
	if len(pts) < 2 {
		return nil, fmt.Errorf("trajectory: Waypoints needs >= 2 points, got %d", len(pts))
	}
	if stepLen <= 0 {
		return nil, fmt.Errorf("trajectory: stepLen = %g, must be > 0", stepLen)
	}
	var out []geom.Point
	pos := pts[0]
	out = append(out, pos)
	for _, target := range pts[1:] {
		for {
			d := target.Sub(pos)
			n := d.Norm()
			if n <= stepLen {
				pos = target
				out = append(out, pos)
				break
			}
			pos = pos.Add(d.Scale(stepLen / n))
			out = append(out, pos)
		}
	}
	return out, nil
}
