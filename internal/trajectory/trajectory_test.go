package trajectory

import (
	"math"
	"testing"

	"repro/internal/geom"
)

var testBounds = geom.NewRect(geom.Pt(0, 0), geom.Pt(1000, 1000))

func TestRandomWaypoint(t *testing.T) {
	traj := RandomWaypoint(testBounds, 500, 3, 1)
	if len(traj) != 500 {
		t.Fatalf("got %d steps, want 500", len(traj))
	}
	for i, p := range traj {
		if !testBounds.Contains(p) {
			t.Fatalf("step %d at %v out of bounds", i, p)
		}
		if i > 0 {
			d := traj[i-1].Dist(p)
			if math.Abs(d-3) > 1e-9 {
				t.Fatalf("step %d moved %g, want 3", i, d)
			}
		}
	}
	again := RandomWaypoint(testBounds, 500, 3, 1)
	for i := range traj {
		if !traj[i].Eq(again[i]) {
			t.Fatal("RandomWaypoint not deterministic")
		}
	}
}

func TestLine(t *testing.T) {
	traj, err := Line(geom.Pt(0, 0), geom.Pt(10, 0), 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(traj) != 11 {
		t.Fatalf("got %d steps, want 11", len(traj))
	}
	if !traj[0].Eq(geom.Pt(0, 0)) || !traj[10].Eq(geom.Pt(10, 0)) {
		t.Fatalf("endpoints %v..%v", traj[0], traj[10])
	}
	if !traj[5].Eq(geom.Pt(5, 0)) {
		t.Fatalf("midpoint %v", traj[5])
	}
	if _, err := Line(geom.Pt(0, 0), geom.Pt(1, 1), 1); err == nil {
		t.Error("expected error for steps < 2")
	}
}

func TestWaypoints(t *testing.T) {
	traj, err := Waypoints([]geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 10, Y: 5}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	last := traj[len(traj)-1]
	if !last.Eq(geom.Pt(10, 5)) {
		t.Fatalf("tour ends at %v, want (10,5)", last)
	}
	for i := 1; i < len(traj); i++ {
		if d := traj[i-1].Dist(traj[i]); d > 1+1e-9 {
			t.Fatalf("step %d jumped %g > stepLen", i, d)
		}
	}
	if _, err := Waypoints([]geom.Point{{X: 0, Y: 0}}, 1); err == nil {
		t.Error("expected error for single waypoint")
	}
	if _, err := Waypoints([]geom.Point{{X: 0, Y: 0}, {X: 1, Y: 1}}, 0); err == nil {
		t.Error("expected error for stepLen=0")
	}
}
