package obs

import (
	"log/slog"
	"time"
)

// Thresholds configures when an operation is slow enough to log. A zero
// threshold disables that op's logging (the counter still exists).
type Thresholds struct {
	Batch   time.Duration // one shard batch, mailbox-dequeue to reply
	Fsync   time.Duration // one WAL fsync or always-policy commit wait
	Publish time.Duration // one epoch publication in index.Store.Apply
}

// slow-op counter indices.
const (
	slowBatch = iota
	slowFsync
	slowPublish
	slowStreamOverflow
	slowShed
	slowExpired
	numSlowOps
)

var slowOpNames = [numSlowOps]string{"batch", "fsync", "publish", "stream_overflow", "shed", "expired"}

// SlowLog emits structured warnings (via log/slog) for operations that
// exceed their thresholds, carrying the request trace ID when the slow
// operation happened on a request path. It also counts every slow op in
// insq_slow_ops_total{op=...} so dashboards can alert without scraping
// logs. A nil *SlowLog no-ops.
type SlowLog struct {
	lg *slog.Logger
	th Thresholds
	n  [numSlowOps]*Counter
}

// NewSlowLog builds a slow-op log writing to lg. lg must be non-nil.
func NewSlowLog(lg *slog.Logger, th Thresholds) *SlowLog {
	return &SlowLog{lg: lg, th: th}
}

// bindCounters registers the slow-op counters on reg; called by
// NewPipeline so that a SlowLog shared with a registry exports counts.
func (s *SlowLog) bindCounters(reg *Registry) {
	if s == nil || reg == nil {
		return
	}
	for i := 0; i < numSlowOps; i++ {
		s.n[i] = reg.Counter("insq_slow_ops_total",
			"Operations that exceeded their slow-op threshold.",
			Label{Name: "op", Value: slowOpNames[i]})
	}
}

// Batch logs a slow shard batch.
func (s *SlowLog) Batch(trace string, shard, entries int, d time.Duration) {
	if s == nil || s.th.Batch <= 0 || d < s.th.Batch {
		return
	}
	s.n[slowBatch].Inc()
	s.lg.Warn("slow_op", "op", "batch", "trace", trace,
		"shard", shard, "entries", entries, "dur", d)
}

// Fsync logs a slow WAL fsync. trace is empty for background fsyncs.
func (s *SlowLog) Fsync(trace string, d time.Duration) {
	if s == nil || s.th.Fsync <= 0 || d < s.th.Fsync {
		return
	}
	s.n[slowFsync].Inc()
	s.lg.Warn("slow_op", "op", "fsync", "trace", trace, "dur", d)
}

// Publish logs a slow epoch publication.
func (s *SlowLog) Publish(trace string, epoch uint64, muts int, d time.Duration) {
	if s == nil || s.th.Publish <= 0 || d < s.th.Publish {
		return
	}
	s.n[slowPublish].Inc()
	s.lg.Warn("slow_op", "op", "publish", "trace", trace,
		"epoch", epoch, "mutations", muts, "dur", d)
}

// StreamOverflow logs a subscriber queue overflow. Unconditional: an
// evicted event is always worth a line (and a counter tick).
func (s *SlowLog) StreamOverflow(session uint64, depth int) {
	if s == nil {
		return
	}
	s.n[slowStreamOverflow].Inc()
	s.lg.Warn("slow_op", "op", "stream_overflow",
		"session", session, "depth", depth)
}

// Shed logs a batch rejected by admission control because a target shard
// mailbox sat at its high watermark. Unconditional, like StreamOverflow:
// shed load is always worth a line.
func (s *SlowLog) Shed(trace string, shard, entries, depth int) {
	if s == nil {
		return
	}
	s.n[slowShed].Inc()
	s.lg.Warn("slow_op", "op", "shed", "trace", trace,
		"shard", shard, "entries", entries, "queue_depth", depth)
}

// Expired logs a batch whose request deadline passed while it sat in a
// shard mailbox; the shard dropped it instead of executing it late.
// Unconditional.
func (s *SlowLog) Expired(trace string, shard, entries int, waited time.Duration) {
	if s == nil {
		return
	}
	s.n[slowExpired].Inc()
	s.lg.Warn("slow_op", "op", "expired", "trace", trace,
		"shard", shard, "entries", entries, "waited", waited)
}
