package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value pair attached to a metric sample.
type Label struct {
	Name, Value string
}

// kind is the Prometheus metric type of a family.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// sample is one registered series: a concrete atomic handle or a read
// callback, plus its rendered label suffix.
type sample struct {
	labels    string // rendered {k="v",...} suffix, "" when unlabeled
	counter   *Counter
	gauge     *Gauge
	hist      *Histogram
	counterFn func() float64
	gaugeFn   func() float64
}

// family groups all samples sharing one metric name.
type family struct {
	name    string
	help    string
	kind    kind
	order   []string           // label suffixes in registration order
	samples map[string]*sample // by label suffix
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. Registration takes a mutex; reads and writes of the
// registered handles are lock-free atomics, so the hot path never
// contends with scrapes. Registering the same (name, labels) twice
// returns the existing handle (or replaces the callback), which keeps
// re-instantiating a subsystem in one process idempotent.
type Registry struct {
	mu       sync.Mutex
	order    []string // family names in registration order
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter is a monotonically increasing metric. A nil *Counter is a
// no-op, so unregistered instrumentation sites cost one branch.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta uint64) {
	if c == nil {
		return
	}
	c.v.Add(delta)
}

// Value returns the current count, zero on a nil counter.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value. A nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value, zero on a nil gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// lookup finds or creates the family and sample slot for one series.
// Callers hold r.mu. Panics on a kind mismatch: two subsystems fighting
// over one metric name with different types is a programming error that
// must not surface as silently corrupt exposition.
func (r *Registry) lookup(name, help string, k kind, labels []Label) *sample {
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k, samples: make(map[string]*sample)}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, k))
	}
	suffix := renderLabels(labels)
	s := f.samples[suffix]
	if s == nil {
		s = &sample{labels: suffix}
		f.samples[suffix] = s
		f.order = append(f.order, suffix)
	}
	return s
}

// Counter registers (or finds) a counter series. nil-receiver safe: a
// nil registry returns a nil handle, and nil handles no-op.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookup(name, help, kindCounter, labels)
	if s.counter == nil && s.counterFn == nil {
		s.counter = new(Counter)
	}
	return s.counter
}

// CounterFunc registers a counter series read from fn at scrape time —
// for subsystems that already keep their own atomic counters. fn must be
// safe to call concurrently and must not call back into the registry.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookup(name, help, kindCounter, labels)
	s.counter, s.counterFn = nil, fn
}

// Gauge registers (or finds) a settable gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookup(name, help, kindGauge, labels)
	if s.gauge == nil && s.gaugeFn == nil {
		s.gauge = new(Gauge)
	}
	return s.gauge
}

// GaugeFunc registers a gauge series read from fn at scrape time. Same
// contract as CounterFunc.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookup(name, help, kindGauge, labels)
	s.gauge, s.gaugeFn = nil, fn
}

// Histogram registers (or finds) a lock-free histogram series.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookup(name, help, kindHistogram, labels)
	if s.hist == nil {
		s.hist = new(Histogram)
	}
	return s.hist
}

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4), families in registration order, each preceded
// by its # HELP and # TYPE lines. The registry lock is held for the whole
// write; scrape callbacks therefore must not re-enter the registry.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	for _, name := range r.order {
		f := r.families[name]
		b.Reset()
		b.WriteString("# HELP ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		writeEscapedHelp(&b, f.help)
		b.WriteString("\n# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.kind.String())
		b.WriteByte('\n')
		for _, suffix := range f.order {
			s := f.samples[suffix]
			switch f.kind {
			case kindHistogram:
				s.hist.write(&b, f.name, suffix)
			default:
				b.WriteString(f.name)
				b.WriteString(suffix)
				b.WriteByte(' ')
				b.WriteString(formatFloat(s.value()))
				b.WriteByte('\n')
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// value reads one scalar sample.
func (s *sample) value() float64 {
	switch {
	case s.counterFn != nil:
		return s.counterFn()
	case s.gaugeFn != nil:
		return s.gaugeFn()
	case s.counter != nil:
		return float64(s.counter.Value())
	case s.gauge != nil:
		return float64(s.gauge.Value())
	}
	return 0
}

// renderLabels renders a sorted {k="v",...} suffix with Prometheus label
// value escaping. Empty labels render to "".
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		writeEscapedLabel(&b, l.Value)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// labelSuffixWith splices an extra label (histogram `le`) into a rendered
// suffix, keeping the base labels' order.
func labelSuffixWith(suffix, name, value string) string {
	var b strings.Builder
	if suffix == "" {
		b.WriteByte('{')
	} else {
		b.WriteString(suffix[:len(suffix)-1])
		b.WriteByte(',')
	}
	b.WriteString(name)
	b.WriteString(`="`)
	writeEscapedLabel(&b, value)
	b.WriteString(`"}`)
	return b.String()
}

// writeEscapedLabel escapes a label value per the exposition format:
// backslash, double-quote and newline.
func writeEscapedLabel(b *strings.Builder, v string) {
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
}

// writeEscapedHelp escapes a help string: backslash and newline only.
func writeEscapedHelp(b *strings.Builder, v string) {
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
}

// formatFloat renders a sample value the short way ('g', shortest).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
