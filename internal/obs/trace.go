package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"strconv"
	"sync/atomic"
)

// Trace IDs tie a slow-op log line back to the request that caused it:
// insqd mints one per request, returns it in the X-Trace-Id header, and
// threads it through context into the engine, store and WAL. An ID is a
// random per-process prefix plus an atomic sequence number — unique,
// grep-friendly, and allocation-cheap (no per-request entropy read).

var (
	tracePrefix string
	traceSeq    atomic.Uint64
)

func init() {
	var b [6]byte
	if _, err := rand.Read(b[:]); err == nil {
		tracePrefix = hex.EncodeToString(b[:])
	} else {
		tracePrefix = "000000000000"
	}
}

// NewTraceID returns a fresh trace ID, e.g. "3fa9c1d20b44-17".
func NewTraceID() string {
	return tracePrefix + "-" + strconv.FormatUint(traceSeq.Add(1), 10)
}

type traceKey struct{}

// WithTraceID returns ctx carrying the trace ID.
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceID returns the trace ID carried by ctx, "" when absent.
func TraceID(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}
