package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// Build returns the server's build identity: the module version (or
// "unknown" outside module builds), the Go toolchain version, and the
// VCS revision when the binary was built from a checkout.
func Build() (version, goVersion, revision string) {
	version, goVersion = "unknown", runtime.Version()
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return version, goVersion, revision
	}
	if v := info.Main.Version; v != "" && v != "(devel)" {
		version = v
	}
	for _, s := range info.Settings {
		if s.Key == "vcs.revision" {
			revision = s.Value
		}
	}
	return version, goVersion, revision
}

// runtimeSampler memoizes runtime.ReadMemStats so one scrape of the
// several Go runtime gauges does one stats read, not one per gauge.
type runtimeSampler struct {
	mu sync.Mutex
	at time.Time
	ms runtime.MemStats
}

func (rs *runtimeSampler) stats() *runtime.MemStats {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if now := time.Now(); now.Sub(rs.at) > 500*time.Millisecond {
		runtime.ReadMemStats(&rs.ms)
		rs.at = now
	}
	return &rs.ms
}

// RegisterRuntimeMetrics registers process-level gauges: uptime, build
// info, goroutine count, heap bytes, and GC totals. Safe to call more
// than once on the same registry (registration is idempotent).
func RegisterRuntimeMetrics(reg *Registry) {
	if reg == nil {
		return
	}
	start := time.Now()
	reg.GaugeFunc("insq_uptime_seconds",
		"Seconds since the process registered its metrics.",
		func() float64 { return time.Since(start).Seconds() })
	version, goVersion, revision := Build()
	reg.Gauge("insq_build_info",
		"Build identity; the value is constant 1.",
		Label{Name: "version", Value: version},
		Label{Name: "goversion", Value: goVersion},
		Label{Name: "revision", Value: revision}).Set(1)
	reg.GaugeFunc("insq_go_goroutines",
		"Live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	rs := &runtimeSampler{}
	reg.GaugeFunc("insq_go_heap_alloc_bytes",
		"Heap bytes allocated and in use.",
		func() float64 { return float64(rs.stats().HeapAlloc) })
	reg.CounterFunc("insq_go_gc_pause_seconds_total",
		"Cumulative GC stop-the-world pause time.",
		func() float64 { return float64(rs.stats().PauseTotalNs) / 1e9 })
	reg.CounterFunc("insq_go_gcs_total",
		"Completed GC cycles.",
		func() float64 { return float64(rs.stats().NumGC) })
}
