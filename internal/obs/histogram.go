package obs

import (
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Histogram is the lock-free counterpart of metrics.Histogram: the same
// log-scale bucket layout (shared via metrics.BucketIndex, so quantiles
// agree with the engine's per-shard histograms), but every bucket is an
// atomic — Observe is three uncontended atomic adds and is safe from any
// goroutine. A nil *Histogram no-ops.
type Histogram struct {
	counts [metrics.HistogramBuckets]atomic.Uint64
	count  atomic.Uint64
	sumNS  atomic.Uint64
}

// Observe records one duration. Negative durations count as zero.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	h.counts[metrics.BucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sumNS.Add(ns)
}

// Count returns the number of observations, zero on a nil histogram.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// write renders the series in exposition format: cumulative non-empty
// buckets with `le` edges in seconds, a mandatory +Inf bucket, then _sum
// and _count. Buckets the workload never touched are elided — with 512
// layout buckets per stage that is the difference between a ~2KB and a
// ~40KB scrape.
func (h *Histogram) write(b *strings.Builder, name, suffix string) {
	var cum uint64
	for i := 0; i < metrics.HistogramBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		b.WriteString(name)
		b.WriteString("_bucket")
		le := float64(metrics.BucketUpperNS(i)) / 1e9
		b.WriteString(labelSuffixWith(suffix, "le", strconv.FormatFloat(le, 'g', -1, 64)))
		b.WriteByte(' ')
		b.WriteString(strconv.FormatUint(cum, 10))
		b.WriteByte('\n')
	}
	count := h.count.Load()
	b.WriteString(name)
	b.WriteString("_bucket")
	b.WriteString(labelSuffixWith(suffix, "le", "+Inf"))
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(count, 10))
	b.WriteByte('\n')
	b.WriteString(name)
	b.WriteString("_sum")
	b.WriteString(suffix)
	b.WriteByte(' ')
	b.WriteString(formatFloat(float64(h.sumNS.Load()) / 1e9))
	b.WriteByte('\n')
	b.WriteString(name)
	b.WriteString("_count")
	b.WriteString(suffix)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(count, 10))
	b.WriteByte('\n')
}
