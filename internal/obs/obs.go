// Package obs is the serving stack's observability layer: a dependency-
// free, allocation-free metrics registry (atomic counters, gauges and
// lock-free log-scale histograms sharing internal/metrics' bucketing)
// with a Prometheus text-format exporter, per-stage pipeline timing, and
// a structured slow-op log over log/slog with per-request trace IDs.
//
// Everything is built around one invariant: observability off must cost
// nothing. All instrumentation handles are nil-safe — a nil *Pipeline,
// *Counter, *Gauge, *Histogram or *SlowLog turns every method into a
// single nil-check branch, no clock reads, no atomics, no allocation.
// Subsystems take a *Pipeline in their config; passing nil compiles the
// whole layer to a no-op. The OBS benchmark (internal/experiments)
// measures serving throughput in both modes and benchguard gates the
// difference.
//
// Stage taxonomy. One location update (or data mutation) flows through
// the write pipeline as: HTTP decode -> shard mailbox (queue wait) ->
// batch apply -> WAL append (+ fsync under the always policy) -> epoch
// publish -> session sweep -> stream push. Each stage has a histogram in
// the single family insq_stage_duration_seconds{stage="..."}, so a p95
// regression can be attributed to one layer without re-benchmarking each
// in isolation.
package obs

import (
	"time"
)

// Stage identifies one write-pipeline stage.
type Stage uint8

// The pipeline stages, in flow order.
const (
	// StageDecode is the HTTP request body decode (cmd/insqd).
	StageDecode Stage = iota
	// StageQueue is a batch's wait in the shard mailbox, from engine
	// fan-out to worker dequeue.
	StageQueue
	// StageApply is one session's kNN update against its pinned snapshot.
	StageApply
	// StageWALAppend is the whole durability append of one batch: encode,
	// buffer, and — under the always policy — the group-commit fsync wait.
	StageWALAppend
	// StageFsync is one raw WAL segment flush+fsync.
	StageFsync
	// StagePublish is one epoch publication inside index.Store.Apply
	// (copy-on-write branch + mutations + snapshot swap), net of the
	// durability append measured separately as StageWALAppend.
	StagePublish
	// StageSweep is one shard sweep: re-pinning every session after an
	// epoch notification, including eager recomputes of watched sessions.
	StageSweep
	// StagePush is one stream broker fan-out of a published event.
	StagePush

	numStages
)

// String returns the stage's label value in the exported metric family.
func (s Stage) String() string {
	switch s {
	case StageDecode:
		return "decode"
	case StageQueue:
		return "queue"
	case StageApply:
		return "apply"
	case StageWALAppend:
		return "wal_append"
	case StageFsync:
		return "fsync"
	case StagePublish:
		return "publish"
	case StageSweep:
		return "sweep"
	case StagePush:
		return "push"
	}
	return "unknown"
}

// Pipeline bundles what the instrumented subsystems need: the per-stage
// histograms, the slow-op log, and the registry for subsystem gauges.
// A nil *Pipeline is the compiled-to-noop mode; every method nil-checks.
type Pipeline struct {
	reg    *Registry
	slow   *SlowLog
	stages [numStages]*Histogram
}

// NewPipeline registers the per-stage histogram family on reg and binds
// the slow-op log (which may be nil). reg may be nil, in which case only
// the slow-op log is live.
func NewPipeline(reg *Registry, slow *SlowLog) *Pipeline {
	p := &Pipeline{reg: reg, slow: slow}
	for st := Stage(0); st < numStages; st++ {
		p.stages[st] = reg.Histogram("insq_stage_duration_seconds",
			"Wall time inside each write-pipeline stage.",
			Label{Name: "stage", Value: st.String()})
	}
	slow.bindCounters(reg)
	return p
}

// Enabled reports whether the pipeline is live. Subsystems use it to gate
// the clock reads around instrumented sections, keeping the nil pipeline
// free of even time.Now calls.
func (p *Pipeline) Enabled() bool { return p != nil }

// Registry returns the pipeline's registry (nil on a nil pipeline), where
// subsystems register their gauges.
func (p *Pipeline) Registry() *Registry {
	if p == nil {
		return nil
	}
	return p.reg
}

// Observe records one stage duration. No-op on a nil pipeline.
func (p *Pipeline) Observe(st Stage, d time.Duration) {
	if p == nil {
		return
	}
	p.stages[st].Observe(d)
}

// StageCount returns the number of observations of one stage — the OBS
// benchmark's sanity probe that instrumentation actually fired.
func (p *Pipeline) StageCount(st Stage) uint64 {
	if p == nil {
		return 0
	}
	return p.stages[st].Count()
}

// SlowBatch logs a shard batch that exceeded the batch threshold.
func (p *Pipeline) SlowBatch(trace string, shard, entries int, d time.Duration) {
	if p == nil {
		return
	}
	p.slow.Batch(trace, shard, entries, d)
}

// SlowFsync logs a WAL fsync (or always-policy group-commit wait) that
// exceeded the fsync threshold. trace is empty for background fsyncs.
func (p *Pipeline) SlowFsync(trace string, d time.Duration) {
	if p == nil {
		return
	}
	p.slow.Fsync(trace, d)
}

// SlowPublish logs an epoch publication that exceeded the publish
// threshold.
func (p *Pipeline) SlowPublish(trace string, epoch uint64, muts int, d time.Duration) {
	if p == nil {
		return
	}
	p.slow.Publish(trace, epoch, muts, d)
}

// StreamOverflow logs a subscriber queue overflow (a pending event was
// evicted). session is the evicted event's session id.
func (p *Pipeline) StreamOverflow(session uint64, depth int) {
	if p == nil {
		return
	}
	p.slow.StreamOverflow(session, depth)
}

// Shed logs a batch rejected by admission control (a target shard
// mailbox at its high watermark).
func (p *Pipeline) Shed(trace string, shard, entries, depth int) {
	if p == nil {
		return
	}
	p.slow.Shed(trace, shard, entries, depth)
}

// Expired logs a deadline-expired batch a shard dropped without
// executing it.
func (p *Pipeline) Expired(trace string, shard, entries int, waited time.Duration) {
	if p == nil {
		return
	}
	p.slow.Expired(trace, shard, entries, waited)
}
