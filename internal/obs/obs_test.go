package obs

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	// Every handle must be callable through nil: nil pipeline, nil
	// registry, nil slow log, nil counter/gauge/histogram.
	var p *Pipeline
	if p.Enabled() {
		t.Error("nil pipeline reports enabled")
	}
	if p.Registry() != nil {
		t.Error("nil pipeline registry not nil")
	}
	p.Observe(StageApply, time.Millisecond)
	p.SlowBatch("t", 1, 2, time.Second)
	p.SlowFsync("t", time.Second)
	p.SlowPublish("t", 1, 2, time.Second)
	p.StreamOverflow(7, 8)
	if p.StageCount(StageApply) != 0 {
		t.Error("nil pipeline counted a stage")
	}

	var r *Registry
	r.Counter("x", "h").Inc()
	r.Gauge("x", "h").Set(1)
	r.Histogram("x", "h").Observe(time.Second)
	r.CounterFunc("x", "h", func() float64 { return 1 })
	r.GaugeFunc("x", "h", func() float64 { return 1 })
	if err := r.WritePrometheus(io.Discard); err != nil {
		t.Fatal(err)
	}
	RegisterRuntimeMetrics(r)

	var s *SlowLog
	s.Batch("t", 1, 2, time.Second)
	s.Fsync("t", time.Second)
	s.Publish("t", 1, 2, time.Second)
	s.StreamOverflow(1, 2)
	s.bindCounters(nil)

	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter holds a value")
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Error("nil gauge holds a value")
	}
	var h *Histogram
	h.Observe(time.Second)
	if h.Count() != 0 {
		t.Error("nil histogram counted")
	}
}

func TestCounterGaugeValues(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("insq_test_total", "h")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d", c.Value())
	}
	// Re-registering the same series returns the same handle.
	if c2 := reg.Counter("insq_test_total", "h"); c2 != c {
		t.Error("re-registration returned a new counter")
	}
	g := reg.Gauge("insq_test_gauge", "h")
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Errorf("gauge = %d", g.Value())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("insq_conflict", "h")
	defer func() {
		if recover() == nil {
			t.Error("no panic on kind mismatch")
		}
	}()
	reg.Gauge("insq_conflict", "h")
}

// lintPrometheus does a minimal format check over exposition output:
// every sample name has preceding # HELP and # TYPE lines, no duplicate
// TYPE lines per family, and histogram cumulative buckets are monotone
// with a final +Inf equal to _count.
func lintPrometheus(t *testing.T, out string) {
	t.Helper()
	typed := map[string]string{}
	helped := map[string]bool{}
	type histState struct {
		prevLe  float64
		prevCum uint64
		infSeen bool
		inf     uint64
		count   uint64
	}
	hists := map[string]*histState{}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if line == "" {
			t.Fatalf("blank line in exposition")
		}
		if strings.HasPrefix(line, "# HELP ") {
			helped[strings.Fields(line)[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if typed[f[2]] != "" {
				t.Fatalf("duplicate TYPE for %s", f[2])
			}
			typed[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment line: %q", line)
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		series, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("bad sample value in %q: %v", line, err)
		}
		name := series
		var labels string
		if i := strings.IndexByte(series, '{'); i >= 0 {
			name, labels = series[:i], series[i:]
			if !strings.HasSuffix(labels, "}") {
				t.Fatalf("unterminated labels: %q", line)
			}
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if trimmed := strings.TrimSuffix(name, suf); trimmed != name && typed[trimmed] == "histogram" {
				base = trimmed
			}
		}
		if typed[base] == "" || !helped[base] {
			t.Fatalf("sample %q before its HELP/TYPE lines", line)
		}
		if typed[base] != "histogram" {
			continue
		}
		// histogram key = base + labels sans le.
		key := base + stripLe(labels)
		hs := hists[key]
		if hs == nil {
			hs = &histState{}
			hists[key] = hs
		}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			le := leValue(t, labels)
			cum := uint64(val)
			if le == -1 { // +Inf
				hs.infSeen, hs.inf = true, cum
			} else {
				if hs.infSeen {
					t.Fatalf("bucket after +Inf in %s", key)
				}
				if le <= hs.prevLe && hs.prevCum != 0 {
					t.Fatalf("non-increasing le in %s: %v after %v", key, le, hs.prevLe)
				}
				if cum < hs.prevCum {
					t.Fatalf("non-monotone cumulative count in %s", key)
				}
				hs.prevLe, hs.prevCum = le, cum
			}
		case strings.HasSuffix(name, "_count"):
			hs.count = uint64(val)
		}
	}
	for key, hs := range hists {
		if !hs.infSeen {
			t.Errorf("histogram %s missing +Inf bucket", key)
		}
		if hs.inf != hs.count {
			t.Errorf("histogram %s: +Inf %d != _count %d", key, hs.inf, hs.count)
		}
		if hs.prevCum > hs.inf {
			t.Errorf("histogram %s: last bucket %d exceeds +Inf %d", key, hs.prevCum, hs.inf)
		}
	}
}

func stripLe(labels string) string {
	if labels == "" {
		return ""
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	var kept []string
	for _, part := range strings.Split(inner, ",") {
		if !strings.HasPrefix(part, `le="`) {
			kept = append(kept, part)
		}
	}
	if len(kept) == 0 {
		return ""
	}
	return "{" + strings.Join(kept, ",") + "}"
}

func leValue(t *testing.T, labels string) float64 {
	t.Helper()
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	for _, part := range strings.Split(inner, ",") {
		if v, ok := strings.CutPrefix(part, `le="`); ok {
			v = strings.TrimSuffix(v, `"`)
			if v == "+Inf" {
				return -1
			}
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				t.Fatalf("bad le %q: %v", v, err)
			}
			return f
		}
	}
	t.Fatalf("bucket sample without le: %q", labels)
	return 0
}

func TestWritePrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	slow := NewSlowLog(slog.New(slog.NewTextHandler(io.Discard, nil)), Thresholds{})
	p := NewPipeline(reg, slow)
	RegisterRuntimeMetrics(reg)
	reg.Counter("insq_example_total", "An example.", Label{Name: "kind", Value: "a"}).Add(3)
	reg.Gauge("insq_example_gauge", "Another.").Set(-2)
	for i := 0; i < 100; i++ {
		p.Observe(StageApply, time.Duration(i)*time.Microsecond)
		p.Observe(StageQueue, time.Duration(i)*time.Millisecond)
	}
	p.Observe(StageFsync, 0)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lintPrometheus(t, out)

	for _, want := range []string{
		"# TYPE insq_stage_duration_seconds histogram",
		`insq_stage_duration_seconds_bucket{stage="apply",le="+Inf"} 100`,
		`insq_stage_duration_seconds_count{stage="queue"} 100`,
		"# TYPE insq_slow_ops_total counter",
		`insq_slow_ops_total{op="fsync"} 0`,
		`insq_example_total{kind="a"} 3`,
		"insq_example_gauge -2",
		"# TYPE insq_uptime_seconds gauge",
		"insq_build_info{",
		"insq_go_goroutines",
		"insq_go_heap_alloc_bytes",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if p.StageCount(StageApply) != 100 {
		t.Errorf("StageCount(apply) = %d", p.StageCount(StageApply))
	}
}

func TestLabelAndHelpEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("insq_escape_total", "line1\nline2 with \\slash",
		Label{Name: "v", Value: "a\"b\\c\nd"}).Inc()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `# HELP insq_escape_total line1\nline2 with \\slash`) {
		t.Errorf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `insq_escape_total{v="a\"b\\c\nd"} 1`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
}

func TestSlowLogThresholdsAndTraces(t *testing.T) {
	var buf bytes.Buffer
	lg := slog.New(slog.NewTextHandler(&buf, nil))
	reg := NewRegistry()
	slow := NewSlowLog(lg, Thresholds{Batch: time.Millisecond, Fsync: time.Millisecond, Publish: 0})
	p := NewPipeline(reg, slow)

	p.SlowBatch("trace-1", 3, 64, 2*time.Millisecond) // over threshold
	p.SlowBatch("trace-2", 3, 64, 500*time.Microsecond)
	p.SlowFsync("trace-3", 5*time.Millisecond)
	p.SlowPublish("trace-4", 9, 1, time.Hour) // publish threshold off
	p.StreamOverflow(42, 256)

	out := buf.String()
	if !strings.Contains(out, "op=batch") || !strings.Contains(out, "trace=trace-1") {
		t.Errorf("slow batch not logged:\n%s", out)
	}
	if strings.Contains(out, "trace-2") {
		t.Errorf("under-threshold batch logged:\n%s", out)
	}
	if !strings.Contains(out, "op=fsync") || !strings.Contains(out, "trace=trace-3") {
		t.Errorf("slow fsync not logged:\n%s", out)
	}
	if strings.Contains(out, "op=publish") {
		t.Errorf("disabled publish threshold logged:\n%s", out)
	}
	if !strings.Contains(out, "op=stream_overflow") || !strings.Contains(out, "session=42") {
		t.Errorf("stream overflow not logged:\n%s", out)
	}

	var expo bytes.Buffer
	if err := reg.WritePrometheus(&expo); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`insq_slow_ops_total{op="batch"} 1`,
		`insq_slow_ops_total{op="fsync"} 1`,
		`insq_slow_ops_total{op="publish"} 0`,
		`insq_slow_ops_total{op="stream_overflow"} 1`,
	} {
		if !strings.Contains(expo.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestTraceIDs(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if a == b || a == "" {
		t.Errorf("trace IDs not unique: %q %q", a, b)
	}
	ctx := WithTraceID(context.Background(), a)
	if got := TraceID(ctx); got != a {
		t.Errorf("TraceID = %q, want %q", got, a)
	}
	if TraceID(context.Background()) != "" {
		t.Error("background context carries a trace")
	}
	if TraceID(nil) != "" { //nolint:staticcheck // nil ctx tolerance is the contract
		t.Error("nil context carries a trace")
	}
}

func TestBuildInfo(t *testing.T) {
	version, goVersion, _ := Build()
	if version == "" || !strings.HasPrefix(goVersion, "go") {
		t.Errorf("Build() = %q %q", version, goVersion)
	}
}

func TestConcurrentObserve(t *testing.T) {
	// Exercised with -race in CI: concurrent observes and a scrape.
	reg := NewRegistry()
	p := NewPipeline(reg, nil)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				p.Observe(StageApply, time.Duration(i))
			}
		}()
	}
	for i := 0; i < 8; i++ {
		if err := reg.WritePrometheus(io.Discard); err != nil {
			t.Fatal(err)
		}
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if p.StageCount(StageApply) != 4000 {
		t.Errorf("count = %d", p.StageCount(StageApply))
	}
}
