package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/trajectory"
	"repro/internal/vortree"
	"repro/internal/workload"
)

func TestRunPlaneFleet(t *testing.T) {
	const shards = 4
	const perShard = 5
	var queries []FleetQuery
	for s := 0; s < shards; s++ {
		ix, _, err := vortree.Build(testBounds, 16, workload.Uniform(300, testBounds, int64(s)))
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < perShard; j++ {
			q, err := core.NewPlaneQuery(ix, 4, 1.6)
			if err != nil {
				t.Fatal(err)
			}
			queries = append(queries, FleetQuery{
				Proc:  q,
				Traj:  trajectory.RandomWaypoint(testBounds, 150, 3, int64(s*100+j)),
				Shard: s,
			})
		}
	}
	reports, err := RunPlaneFleet(queries, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != shards*perShard {
		t.Fatalf("got %d reports", len(reports))
	}
	for i, rep := range reports {
		if rep.Steps != 150 {
			t.Errorf("query %d ran %d steps", i, rep.Steps)
		}
		if rep.Counters.Recomputations == 0 {
			t.Errorf("query %d never recomputed", i)
		}
	}
}

func TestRunPlaneFleetValidation(t *testing.T) {
	if _, err := RunPlaneFleet([]FleetQuery{{Proc: nil}}, 2); err == nil {
		t.Error("nil processor accepted")
	}
	// workers < 1 is clamped, empty fleet is fine.
	reports, err := RunPlaneFleet(nil, 0)
	if err != nil || len(reports) != 0 {
		t.Errorf("empty fleet: %v, %d reports", err, len(reports))
	}
}

func TestRunPlaneFleetPropagatesErrors(t *testing.T) {
	ix := vortree.New(testBounds, 16)
	q, err := core.NewPlaneQuery(ix, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunPlaneFleet([]FleetQuery{{
		Proc: q,
		Traj: trajectory.RandomWaypoint(testBounds, 5, 1, 1),
	}}, 2)
	if err == nil {
		t.Error("expected error from empty index")
	}
}
