// Package sim drives moving kNN processors along trajectories and collects
// comparable cost reports. It is the engine behind the demonstration CLI
// (cmd/insq), the experiment harness (cmd/bench) and the benchmark suite:
// every experiment is "run these processors over this trajectory on this
// dataset and report the counters".
package sim

import (
	"fmt"
	"time"

	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/roadnet"
)

// PlaneProcessor is a moving kNN processor over 2D Euclidean space.
// core.PlaneQuery and the plane baselines implement it.
type PlaneProcessor interface {
	// Update feeds the query object's position at one timestamp and
	// returns the current kNN set.
	Update(p geom.Point) ([]int, error)
	// Metrics exposes the processor's accumulated cost counters.
	Metrics() *metrics.Counters
	// Name identifies the processor in reports.
	Name() string
}

// NetworkProcessor is a moving kNN processor over a road network.
// core.NetworkQuery and the network baselines implement it.
type NetworkProcessor interface {
	Update(pos roadnet.Position) ([]int, error)
	Metrics() *metrics.Counters
	Name() string
}

// Report summarizes one simulation run.
type Report struct {
	Name     string
	Steps    int
	Duration time.Duration
	Counters metrics.Counters
}

// PerStepMicros returns the average processing time per timestamp in
// microseconds.
func (r Report) PerStepMicros() float64 {
	if r.Steps == 0 {
		return 0
	}
	return float64(r.Duration.Microseconds()) / float64(r.Steps)
}

// String renders the report as one table row.
func (r Report) String() string {
	return fmt.Sprintf("%-26s steps=%-6d us/step=%-10.2f recomp=%-6d shipped=%-8d dist=%-10d relax=%-10d",
		r.Name, r.Steps, r.PerStepMicros(), r.Counters.Recomputations,
		r.Counters.ObjectsShipped, r.Counters.DistanceCalcs, r.Counters.EdgeRelaxations)
}

// StepFunc observes one simulation step; knn is the processor's current
// result (shared slice: copy before retaining).
type StepFunc func(step int, pos geom.Point, knn []int)

// RunPlane drives a plane processor along a trajectory. The optional
// observer is invoked after every step.
func RunPlane(p PlaneProcessor, traj []geom.Point, observe StepFunc) (Report, error) {
	before := *p.Metrics()
	start := time.Now()
	for i, pos := range traj {
		knn, err := p.Update(pos)
		if err != nil {
			return Report{}, fmt.Errorf("sim: %s step %d: %w", p.Name(), i, err)
		}
		if observe != nil {
			observe(i, pos, knn)
		}
	}
	dur := time.Since(start)
	after := *p.Metrics()
	return Report{Name: p.Name(), Steps: len(traj), Duration: dur, Counters: diff(before, after)}, nil
}

// NetStepFunc observes one network simulation step.
type NetStepFunc func(step int, pos roadnet.Position, knn []int)

// RunNetwork drives a network processor along a route, sampling a position
// every stepLen of network distance.
func RunNetwork(p NetworkProcessor, route *roadnet.Route, stepLen float64, observe NetStepFunc) (Report, error) {
	if stepLen <= 0 {
		return Report{}, fmt.Errorf("sim: stepLen = %g, must be > 0", stepLen)
	}
	before := *p.Metrics()
	start := time.Now()
	step := 0
	for d := 0.0; d <= route.Length(); d += stepLen {
		pos := route.PositionAt(d)
		knn, err := p.Update(pos)
		if err != nil {
			return Report{}, fmt.Errorf("sim: %s step %d: %w", p.Name(), step, err)
		}
		if observe != nil {
			observe(step, pos, knn)
		}
		step++
	}
	dur := time.Since(start)
	after := *p.Metrics()
	return Report{Name: p.Name(), Steps: step, Duration: dur, Counters: diff(before, after)}, nil
}

// diff returns after minus before, so reports are scoped to one run even
// when a processor is reused.
func diff(before, after metrics.Counters) metrics.Counters {
	return metrics.Counters{
		Timestamps:      after.Timestamps - before.Timestamps,
		Validations:     after.Validations - before.Validations,
		Invalidations:   after.Invalidations - before.Invalidations,
		Recomputations:  after.Recomputations - before.Recomputations,
		ObjectsShipped:  after.ObjectsShipped - before.ObjectsShipped,
		DistanceCalcs:   after.DistanceCalcs - before.DistanceCalcs,
		DijkstraRuns:    after.DijkstraRuns - before.DijkstraRuns,
		EdgeRelaxations: after.EdgeRelaxations - before.EdgeRelaxations,
		NodeVisits:      after.NodeVisits - before.NodeVisits,
	}
}
