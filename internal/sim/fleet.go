package sim

import (
	"fmt"
	"sync"

	"repro/internal/geom"
)

// FleetQuery is one moving query in a fleet simulation: a processor, its
// trajectory, and the shard it belongs to. The index structures behind a
// processor are not safe for concurrent use (even reads refresh internal
// location hints), so queries sharing an index must share a shard; the
// fleet runner guarantees queries in one shard never run concurrently.
type FleetQuery struct {
	Proc  PlaneProcessor
	Traj  []geom.Point
	Shard int
}

// RunPlaneFleet simulates many moving queries concurrently — the
// load-shape of an LBS server maintaining one MkNN query per client. Each
// shard's queries run sequentially on one goroutine; up to workers shards
// run in parallel. It returns one report per query, in input order, or
// the first error encountered.
func RunPlaneFleet(queries []FleetQuery, workers int) ([]Report, error) {
	if workers < 1 {
		workers = 1
	}
	shards := make(map[int][]int) // shard -> query indices
	for i, q := range queries {
		if q.Proc == nil {
			return nil, fmt.Errorf("sim: fleet query %d has no processor", i)
		}
		shards[q.Shard] = append(shards[q.Shard], i)
	}

	reports := make([]Report, len(queries))
	errs := make([]error, len(queries))
	shardCh := make(chan []int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idxs := range shardCh {
				for _, i := range idxs {
					rep, err := RunPlane(queries[i].Proc, queries[i].Traj, nil)
					reports[i] = rep
					errs[i] = err
				}
			}
		}()
	}
	for _, idxs := range shards {
		shardCh <- idxs
	}
	close(shardCh)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return reports, err
		}
	}
	return reports, nil
}
