package sim

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/trajectory"
	"repro/internal/vortree"
	"repro/internal/workload"
)

// TestRunPlaneFleetManyShardsRace stresses the fleet runner's concurrency
// contract under the race detector: many shards run in parallel while
// queries sharing an index stay confined to one shard, and multiple fleet
// runs execute concurrently against disjoint fleets.
func TestRunPlaneFleetManyShardsRace(t *testing.T) {
	const (
		fleets   = 3
		shards   = 12
		perShard = 8
		steps    = 40
	)
	buildFleet := func(seed int64) []FleetQuery {
		var queries []FleetQuery
		for s := 0; s < shards; s++ {
			ix, _, err := vortree.Build(testBounds, 16, workload.Uniform(200, testBounds, seed+int64(s)))
			if err != nil {
				t.Fatal(err)
			}
			for j := 0; j < perShard; j++ {
				q, err := core.NewPlaneQuery(ix, 3, 1.6)
				if err != nil {
					t.Fatal(err)
				}
				queries = append(queries, FleetQuery{
					Proc:  q,
					Traj:  trajectory.RandomWaypoint(testBounds, steps, 4, seed+int64(s*100+j)),
					Shard: s,
				})
			}
		}
		return queries
	}

	var wg sync.WaitGroup
	for f := 0; f < fleets; f++ {
		fleet := buildFleet(int64(1000 * (f + 1)))
		wg.Add(1)
		go func(f int, fleet []FleetQuery) {
			defer wg.Done()
			reports, err := RunPlaneFleet(fleet, 8)
			if err != nil {
				t.Errorf("fleet %d: %v", f, err)
				return
			}
			for i, rep := range reports {
				if rep.Steps != steps {
					t.Errorf("fleet %d query %d: %d steps", f, i, rep.Steps)
				}
			}
		}(f, fleet)
	}
	wg.Wait()
}
