package sim

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/netvor"
	"repro/internal/roadnet"
	"repro/internal/trajectory"
	"repro/internal/vortree"
	"repro/internal/workload"
)

var testBounds = geom.NewRect(geom.Pt(0, 0), geom.Pt(1000, 1000))

// The core and baseline processors must satisfy the simulator contracts.
var (
	_ PlaneProcessor   = (*core.PlaneQuery)(nil)
	_ PlaneProcessor   = (*baseline.NaivePlane)(nil)
	_ PlaneProcessor   = (*baseline.OrderKCellPlane)(nil)
	_ PlaneProcessor   = (*baseline.VStarPlane)(nil)
	_ NetworkProcessor = (*core.NetworkQuery)(nil)
	_ NetworkProcessor = (*baseline.NaiveNetwork)(nil)
	_ NetworkProcessor = (*baseline.FullNetworkINS)(nil)
)

func TestRunPlane(t *testing.T) {
	ix, _, err := vortree.Build(testBounds, 16, workload.Uniform(500, testBounds, 1))
	if err != nil {
		t.Fatal(err)
	}
	q, err := core.NewPlaneQuery(ix, 5, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	traj := trajectory.RandomWaypoint(testBounds, 200, 3, 2)
	calls := 0
	rep, err := RunPlane(q, traj, func(step int, pos geom.Point, knn []int) {
		if len(knn) != 5 {
			t.Fatalf("step %d: %d results", step, len(knn))
		}
		calls++
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 200 || rep.Steps != 200 {
		t.Fatalf("observer calls %d, steps %d; want 200", calls, rep.Steps)
	}
	if rep.Counters.Timestamps != 200 {
		t.Fatalf("counters not scoped: %+v", rep.Counters)
	}
	if rep.Name != "ins" {
		t.Errorf("Name = %q", rep.Name)
	}
	if !strings.Contains(rep.String(), "ins") {
		t.Errorf("String() = %q", rep.String())
	}
	if rep.PerStepMicros() < 0 {
		t.Error("negative per-step time")
	}
}

func TestRunPlaneScopesReusedProcessor(t *testing.T) {
	ix, _, err := vortree.Build(testBounds, 16, workload.Uniform(200, testBounds, 3))
	if err != nil {
		t.Fatal(err)
	}
	q, err := baseline.NewNaivePlane(ix, 3)
	if err != nil {
		t.Fatal(err)
	}
	traj := trajectory.RandomWaypoint(testBounds, 100, 3, 4)
	if _, err := RunPlane(q, traj, nil); err != nil {
		t.Fatal(err)
	}
	rep2, err := RunPlane(q, traj, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Counters.Recomputations != 100 {
		t.Fatalf("second run counted %d recomputations, want 100", rep2.Counters.Recomputations)
	}
}

func TestRunNetwork(t *testing.T) {
	g, err := roadnet.GridNetwork(10, 10, testBounds, 0.2, 0.3, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	sites := rng.Perm(g.NumVertices())[:20]
	d, err := netvor.Build(g, sites)
	if err != nil {
		t.Fatal(err)
	}
	q, err := core.NewNetworkQuery(d, 3, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	route, err := roadnet.RandomWalkRoute(g, 0, 2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunNetwork(q, route, 10, func(step int, pos roadnet.Position, knn []int) {
		if len(knn) != 3 {
			t.Fatalf("step %d: %d results", step, len(knn))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steps == 0 {
		t.Fatal("no steps simulated")
	}
	if _, err := RunNetwork(q, route, 0, nil); err == nil {
		t.Error("expected error for stepLen=0")
	}
}

func TestRunPlanePropagatesErrors(t *testing.T) {
	ix := vortree.New(testBounds, 16)
	q, err := core.NewPlaneQuery(ix, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunPlane(q, []geom.Point{{X: 1, Y: 1}}, nil); err == nil {
		t.Error("expected error from empty index")
	}
}
