package vortree

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

var testBounds = geom.NewRect(geom.Pt(0, 0), geom.Pt(1000, 1000))

func randomPoints(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
	}
	return pts
}

func bruteKNN(ix *Index, q geom.Point, k int) []int {
	ids := ix.Diagram().IDs()
	sort.Slice(ids, func(i, j int) bool {
		di, dj := q.Dist2(ix.Point(ids[i])), q.Dist2(ix.Point(ids[j]))
		if di != dj {
			return di < dj
		}
		return ids[i] < ids[j]
	})
	if k > len(ids) {
		k = len(ids)
	}
	return ids[:k]
}

func sameIDSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	as, bs := append([]int(nil), a...), append([]int(nil), b...)
	sort.Ints(as)
	sort.Ints(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func TestBuildAndKNN(t *testing.T) {
	ix, ids, err := Build(testBounds, 16, randomPoints(500, 1))
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 500 || len(ids) != 500 {
		t.Fatalf("Len = %d, want 500", ix.Len())
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		q := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		for _, k := range []int{1, 4, 12} {
			got := ix.KNN(q, k)
			want := bruteKNN(ix, q, k)
			if !sameIDSet(got, want) {
				t.Fatalf("KNN(%v,%d) = %v, want %v", q, k, got, want)
			}
		}
	}
}

func TestNNAgreesWithRtreeAndDiagram(t *testing.T) {
	ix, _, err := Build(testBounds, 8, randomPoints(300, 3))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		q := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		a, b := ix.NN(q), ix.Diagram().Nearest(q)
		if a != b && q.Dist2(ix.Point(a)) != q.Dist2(ix.Point(b)) {
			t.Fatalf("NN disagreement: rtree %d vs voronoi %d", a, b)
		}
	}
}

func TestInsertRemoveConsistency(t *testing.T) {
	ix, ids, err := Build(testBounds, 8, randomPoints(150, 5))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	live := append([]int(nil), ids...)
	for step := 0; step < 120; step++ {
		if rng.Intn(2) == 0 && len(live) > 10 {
			i := rng.Intn(len(live))
			if err := ix.Remove(live[i]); err != nil {
				t.Fatal(err)
			}
			live = append(live[:i], live[i+1:]...)
		} else {
			id, err := ix.Insert(geom.Pt(rng.Float64()*1000, rng.Float64()*1000))
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, id)
		}
		if ix.Len() != len(live) {
			t.Fatalf("step %d: Len = %d, want %d", step, ix.Len(), len(live))
		}
		q := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		if got, want := ix.KNN(q, 6), bruteKNN(ix, q, 6); !sameIDSet(got, want) {
			t.Fatalf("step %d: KNN = %v, want %v", step, got, want)
		}
	}
}

func TestInsertDuplicate(t *testing.T) {
	ix := New(testBounds, 8)
	id1, err := ix.Insert(geom.Pt(10, 10))
	if err != nil {
		t.Fatal(err)
	}
	id2, err := ix.Insert(geom.Pt(10, 10))
	if err != nil {
		t.Fatalf("duplicate insert errored: %v", err)
	}
	if id1 != id2 {
		t.Errorf("duplicate insert got id %d, want %d", id2, id1)
	}
	if ix.Len() != 1 {
		t.Errorf("Len = %d, want 1", ix.Len())
	}
}

func TestRemoveUnknown(t *testing.T) {
	ix := New(testBounds, 8)
	if err := ix.Remove(42); err == nil {
		t.Error("expected error removing unknown id")
	}
}

func TestKNNEmptyAndSmall(t *testing.T) {
	ix := New(testBounds, 8)
	if got := ix.KNN(geom.Pt(5, 5), 3); got != nil {
		t.Errorf("KNN on empty index = %v", got)
	}
	if got := ix.NN(geom.Pt(5, 5)); got != -1 {
		t.Errorf("NN on empty index = %d, want -1", got)
	}
	id, _ := ix.Insert(geom.Pt(7, 7))
	if got := ix.KNN(geom.Pt(5, 5), 3); len(got) != 1 || got[0] != id {
		t.Errorf("KNN with 1 object = %v", got)
	}
}

func BenchmarkVorKNN10k(b *testing.B) {
	ix, _, err := Build(testBounds, 16, randomPoints(10000, 7))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	qs := make([]geom.Point, 256)
	for i := range qs {
		qs[i] = geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.KNN(qs[i%len(qs)], 8)
	}
}
