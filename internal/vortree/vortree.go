// Package vortree implements the VoR-tree of Sharifzadeh and Shahabi
// (PVLDB 2010, reference [7] of the paper): an R-tree over the data objects
// whose entries additionally carry the objects' Voronoi neighbor lists.
// Nearest-neighbor search uses best-first R-tree traversal; the kNN set is
// then grown incrementally by expanding Voronoi neighbors, which is exactly
// the access pattern the INSQ query processor needs to compute the
// prefetched set R and its influential neighbor set I(R).
package vortree

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/voronoi"
)

// Index is a VoR-tree: a spatial index plus the order-1 Voronoi diagram of
// the indexed objects, kept in sync under insertions and deletions. Object
// ids are assigned by the Voronoi diagram and shared with the R-tree.
type Index struct {
	tree *rtree.Tree
	diag *voronoi.Diagram
}

// New returns an empty VoR-tree accepting points inside bounds.
func New(bounds geom.Rect, fanout int) *Index {
	return &Index{tree: rtree.New(fanout), diag: voronoi.NewDiagram(bounds)}
}

// Build constructs a VoR-tree over pts and returns the assigned ids
// parallel to pts. Duplicate points collapse to a single object.
func Build(bounds geom.Rect, fanout int, pts []geom.Point) (*Index, []int, error) {
	ix := New(bounds, fanout)
	ids := make([]int, len(pts))
	for i, p := range pts {
		id, err := ix.Insert(p)
		if err != nil {
			return nil, nil, fmt.Errorf("vortree: build: %w", err)
		}
		ids[i] = id
	}
	return ix, ids, nil
}

// RestoreObject is one live object of a serialized index snapshot: its
// assigned id and its position.
type RestoreObject struct {
	ID int
	P  geom.Point
}

// Restore rebuilds a VoR-tree whose live object set AND id sequence match
// a checkpointed index: objs must be strictly ascending by id, and nextID
// is the id the original index would assign to the next insert (ids of
// removed objects stay burned, so nextID can exceed len(objs)). The
// physical tree shape may differ from the original — objects are inserted
// in id order, not in their historical order — but every query answer and
// every id assigned after the restore is identical, which is what crash
// recovery (internal/wal) needs to replay a write-ahead log on top.
func Restore(bounds geom.Rect, fanout int, objs []RestoreObject, nextID int) (*Index, error) {
	ix := New(bounds, fanout)
	j := 0
	for id := 0; id < nextID; id++ {
		if j < len(objs) && objs[j].ID == id {
			got, err := ix.Insert(objs[j].P)
			if err != nil {
				return nil, fmt.Errorf("vortree: restore id %d: %w", id, err)
			}
			if got != id {
				return nil, fmt.Errorf("vortree: restore assigned id %d, want %d (objs not ascending?)", got, id)
			}
			j++
			continue
		}
		got, err := ix.diag.PadSite()
		if err != nil {
			return nil, fmt.Errorf("vortree: restore pad %d: %w", id, err)
		}
		if got != id {
			return nil, fmt.Errorf("vortree: restore pad assigned id %d, want %d", got, id)
		}
	}
	if j != len(objs) {
		return nil, fmt.Errorf("vortree: restore: %d objects with ids >= nextID %d", len(objs)-j, nextID)
	}
	return ix, nil
}

// NextID returns the id the next Insert will assign. Removed objects keep
// their ids burned, so it can exceed Len; checkpoints persist it so a
// restored index keeps assigning the same ids.
func (ix *Index) NextID() int { return ix.diag.IDUpperBound() }

// Diagram exposes the underlying Voronoi diagram (shared, do not mutate
// except through Index methods).
func (ix *Index) Diagram() *voronoi.Diagram { return ix.diag }

// Tree exposes the underlying R-tree (shared, do not mutate except through
// Index methods).
func (ix *Index) Tree() *rtree.Tree { return ix.tree }

// Clone returns a deep copy of the VoR-tree with the same object ids and a
// zeroed node-visit counter. The R-tree side is persistent, so only the
// Voronoi overlay is physically copied; Clone is the fallback publication
// path where the overlay's structural sharing is unsafe (see Branch).
func (ix *Index) Clone() *Index {
	return &Index{tree: ix.tree.Clone(), diag: ix.diag.Clone()}
}

// Branch returns a new mutable version of the VoR-tree by path copying:
// the R-tree hands out an O(1) persistent handle (mutations then copy only
// the root-to-leaf spines they touch) and the Voronoi overlay branches its
// copy-on-write page tables in O(n/pageSize). The receiver is frozen —
// reads on it stay valid and race-free forever, mutations are rejected —
// which is exactly the lifecycle of a published index snapshot. Publication
// cost is therefore sublinear in the object count, where Clone is O(n).
func (ix *Index) Branch() *Index {
	return &Index{tree: ix.tree.Clone(), diag: ix.diag.Branch()}
}

// ShareStats reports the structural-sharing instrumentation of the R-tree:
// the nodes copied or created through this version's handle since it was
// branched, and the total node count. 1 - copied/total is the fraction of
// index nodes the latest epoch shares with its predecessor.
func (ix *Index) ShareStats() (copied, total int) {
	return ix.tree.CopiedNodes(), ix.tree.NodeCount()
}

// INS returns the influential neighbor set I(knn) of Definition 4 under
// the order-1 Voronoi diagram of the indexed objects, sorted by id.
func (ix *Index) INS(knn []int) ([]int, error) { return ix.diag.INS(knn) }

// AppendINS is INS appending onto dst with caller-supplied scratch — the
// allocation-free form used by the serving hot path.
func (ix *Index) AppendINS(knn []int, dst []int, sc *SearchScratch) ([]int, error) {
	return ix.diag.AppendINS(knn, dst, &sc.ins)
}

// Visits returns the cumulative R-tree node-visit counter (the page-I/O
// stand-in); see rtree.Tree.NodeVisits for its semantics under concurrent
// readers.
func (ix *Index) Visits() int { return ix.tree.NodeVisits() }

// Len returns the number of live objects.
func (ix *Index) Len() int { return ix.diag.Len() }

// Point returns the coordinates of object id.
func (ix *Index) Point(id int) geom.Point { return ix.diag.Site(id) }

// Contains reports whether object id is live.
func (ix *Index) Contains(id int) bool { return ix.diag.Contains(id) }

// Insert adds an object to both structures and returns its id. Inserting a
// duplicate point returns the existing id without error.
func (ix *Index) Insert(p geom.Point) (int, error) {
	before := ix.diag.Len()
	id, err := ix.diag.Insert(p)
	if err != nil {
		if ix.diag.Len() == before && id >= 0 {
			return id, nil // exact duplicate: already indexed
		}
		return -1, err
	}
	ix.tree.Insert(rtree.Item{ID: id, P: p})
	return id, nil
}

// Remove deletes object id from both structures.
func (ix *Index) Remove(id int) error {
	if !ix.diag.Contains(id) {
		return fmt.Errorf("vortree: remove: unknown id %d", id)
	}
	p := ix.diag.Site(id)
	if err := ix.diag.Remove(id); err != nil {
		return err
	}
	if !ix.tree.Delete(id, p) {
		return fmt.Errorf("vortree: remove: id %d missing from R-tree", id)
	}
	return nil
}

// Neighbors returns the Voronoi neighbor list stored with object id.
func (ix *Index) Neighbors(id int) ([]int, error) { return ix.diag.Neighbors(id) }

// NN returns the object nearest to q using best-first R-tree search, or -1
// when the index is empty.
func (ix *Index) NN(q geom.Point) int {
	items := ix.tree.KNN(q, 1)
	if len(items) == 0 {
		return -1
	}
	return items[0].ID
}

// KNN returns the k nearest objects to q in ascending distance order using
// the VR-kNN strategy: one best-first R-tree descent for the nearest
// object, then incremental expansion over stored Voronoi neighbor lists.
// This touches O(k) Voronoi records instead of O(k) R-tree paths.
func (ix *Index) KNN(q geom.Point, k int) []int {
	ids, _ := ix.KNNCounted(q, k)
	return ids
}

// KNNCounted is KNN returning the number of index nodes this search
// visited — exact per call even under concurrent searches on a shared
// snapshot, unlike a before/after diff of the global Visits counter.
func (ix *Index) KNNCounted(q geom.Point, k int) ([]int, int) {
	var sc SearchScratch
	return ix.AppendKNN(q, k, nil, &sc)
}

// SearchScratch is reusable per-caller working memory for AppendKNN and
// AppendINS: the best-first R-tree iterator, the Voronoi expansion
// frontier, the visited set and the neighbor-walk buffers. The zero value
// is ready to use; a scratch serves any number of sequential searches
// against any index version but must not be shared across goroutines. The
// query layer keeps one per session, which removes every per-call
// allocation from the kNN path.
type SearchScratch struct {
	it   rtree.KNNIterator
	pq   nnHeap
	seen map[int]bool
	nb   []int
	ring voronoi.NeighborScratch
	ins  voronoi.INSScratch
}

// AppendKNN is KNN appending onto dst with caller-supplied scratch and the
// exact node-visit count of this search. dst may be nil.
func (ix *Index) AppendKNN(q geom.Point, k int, dst []int, sc *SearchScratch) ([]int, int) {
	if k <= 0 || ix.Len() == 0 {
		return dst, 0
	}
	sc.it.Reset(ix.tree, q)
	seed, ok := sc.it.Next()
	visits := sc.it.Visited()
	if !ok {
		return dst, visits
	}
	if sc.seen == nil {
		sc.seen = make(map[int]bool, 4*k)
	} else {
		clear(sc.seen)
	}
	start := seed.ID
	sc.pq = sc.pq[:0]
	sc.seen[start] = true
	sc.pq.push(nnEntry{id: start, d2: q.Dist2(ix.diag.Site(start))})
	need := len(dst) + k
	for len(sc.pq) > 0 && len(dst) < need {
		e := sc.pq.pop()
		dst = append(dst, e.id)
		nb, err := ix.diag.AppendNeighbors(e.id, sc.nb[:0], &sc.ring)
		sc.nb = nb[:0]
		if err != nil {
			continue
		}
		for _, u := range nb {
			if !sc.seen[u] {
				sc.seen[u] = true
				sc.pq.push(nnEntry{id: u, d2: q.Dist2(ix.diag.Site(u))})
			}
		}
	}
	return dst, visits
}

type nnEntry struct {
	id int
	d2 float64
}

// nnHeap is a hand-rolled binary min-heap; container/heap would box every
// nnEntry pushed, one allocation per expanded Voronoi neighbor. It is the
// structural twin of rtree's knnHeap, kept separate (rather than behind a
// generic with a comparison func) so the comparison inlines in the hot
// loop; unlike knnHeap, pop need not zero the vacated slot because
// nnEntry holds no pointers.
type nnHeap []nnEntry

func (h nnHeap) less(i, j int) bool {
	if h[i].d2 != h[j].d2 {
		return h[i].d2 < h[j].d2
	}
	return h[i].id < h[j].id
}

func (h *nnHeap) push(e nnEntry) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *nnHeap) pop() nnEntry {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	*h = s[:last]
	s = s[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(s) && s.less(l, smallest) {
			smallest = l
		}
		if r < len(s) && s.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
	return top
}
