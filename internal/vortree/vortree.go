// Package vortree implements the VoR-tree of Sharifzadeh and Shahabi
// (PVLDB 2010, reference [7] of the paper): an R-tree over the data objects
// whose entries additionally carry the objects' Voronoi neighbor lists.
// Nearest-neighbor search uses best-first R-tree traversal; the kNN set is
// then grown incrementally by expanding Voronoi neighbors, which is exactly
// the access pattern the INSQ query processor needs to compute the
// prefetched set R and its influential neighbor set I(R).
package vortree

import (
	"container/heap"
	"fmt"

	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/voronoi"
)

// Index is a VoR-tree: a spatial index plus the order-1 Voronoi diagram of
// the indexed objects, kept in sync under insertions and deletions. Object
// ids are assigned by the Voronoi diagram and shared with the R-tree.
type Index struct {
	tree *rtree.Tree
	diag *voronoi.Diagram
}

// New returns an empty VoR-tree accepting points inside bounds.
func New(bounds geom.Rect, fanout int) *Index {
	return &Index{tree: rtree.New(fanout), diag: voronoi.NewDiagram(bounds)}
}

// Build constructs a VoR-tree over pts and returns the assigned ids
// parallel to pts. Duplicate points collapse to a single object.
func Build(bounds geom.Rect, fanout int, pts []geom.Point) (*Index, []int, error) {
	ix := New(bounds, fanout)
	ids := make([]int, len(pts))
	for i, p := range pts {
		id, err := ix.Insert(p)
		if err != nil {
			return nil, nil, fmt.Errorf("vortree: build: %w", err)
		}
		ids[i] = id
	}
	return ix, ids, nil
}

// Diagram exposes the underlying Voronoi diagram (shared, do not mutate
// except through Index methods).
func (ix *Index) Diagram() *voronoi.Diagram { return ix.diag }

// Tree exposes the underlying R-tree (shared, do not mutate except through
// Index methods).
func (ix *Index) Tree() *rtree.Tree { return ix.tree }

// Clone returns a deep copy of the VoR-tree with the same object ids and a
// zeroed node-visit counter. The index snapshot store applies mutations to
// the clone while published snapshots keep serving reads from the original.
func (ix *Index) Clone() *Index {
	return &Index{tree: ix.tree.Clone(), diag: ix.diag.Clone()}
}

// INS returns the influential neighbor set I(knn) of Definition 4 under
// the order-1 Voronoi diagram of the indexed objects, sorted by id.
func (ix *Index) INS(knn []int) ([]int, error) { return ix.diag.INS(knn) }

// Visits returns the cumulative R-tree node-visit counter (the page-I/O
// stand-in); see rtree.Tree.NodeVisits for its semantics under concurrent
// readers.
func (ix *Index) Visits() int { return ix.tree.NodeVisits() }

// Len returns the number of live objects.
func (ix *Index) Len() int { return ix.diag.Len() }

// Point returns the coordinates of object id.
func (ix *Index) Point(id int) geom.Point { return ix.diag.Site(id) }

// Contains reports whether object id is live.
func (ix *Index) Contains(id int) bool { return ix.diag.Contains(id) }

// Insert adds an object to both structures and returns its id. Inserting a
// duplicate point returns the existing id without error.
func (ix *Index) Insert(p geom.Point) (int, error) {
	before := ix.diag.Len()
	id, err := ix.diag.Insert(p)
	if err != nil {
		if ix.diag.Len() == before && id >= 0 {
			return id, nil // exact duplicate: already indexed
		}
		return -1, err
	}
	ix.tree.Insert(rtree.Item{ID: id, P: p})
	return id, nil
}

// Remove deletes object id from both structures.
func (ix *Index) Remove(id int) error {
	if !ix.diag.Contains(id) {
		return fmt.Errorf("vortree: remove: unknown id %d", id)
	}
	p := ix.diag.Site(id)
	if err := ix.diag.Remove(id); err != nil {
		return err
	}
	if !ix.tree.Delete(id, p) {
		return fmt.Errorf("vortree: remove: id %d missing from R-tree", id)
	}
	return nil
}

// Neighbors returns the Voronoi neighbor list stored with object id.
func (ix *Index) Neighbors(id int) ([]int, error) { return ix.diag.Neighbors(id) }

// NN returns the object nearest to q using best-first R-tree search, or -1
// when the index is empty.
func (ix *Index) NN(q geom.Point) int {
	items := ix.tree.KNN(q, 1)
	if len(items) == 0 {
		return -1
	}
	return items[0].ID
}

// KNN returns the k nearest objects to q in ascending distance order using
// the VR-kNN strategy: one best-first R-tree descent for the nearest
// object, then incremental expansion over stored Voronoi neighbor lists.
// This touches O(k) Voronoi records instead of O(k) R-tree paths.
func (ix *Index) KNN(q geom.Point, k int) []int {
	ids, _ := ix.KNNCounted(q, k)
	return ids
}

// KNNCounted is KNN returning the number of index nodes this search
// visited — exact per call even under concurrent searches on a shared
// snapshot, unlike a before/after diff of the global Visits counter.
func (ix *Index) KNNCounted(q geom.Point, k int) ([]int, int) {
	if k <= 0 || ix.Len() == 0 {
		return nil, 0
	}
	seeds, visits := ix.tree.KNNWithVisits(q, 1)
	if len(seeds) == 0 {
		return nil, visits
	}
	start := seeds[0].ID
	pq := &nnHeap{}
	seen := map[int]bool{start: true}
	heap.Push(pq, nnEntry{id: start, d2: q.Dist2(ix.diag.Site(start))})
	out := make([]int, 0, k)
	for pq.Len() > 0 && len(out) < k {
		e := heap.Pop(pq).(nnEntry)
		out = append(out, e.id)
		nb, err := ix.diag.Neighbors(e.id)
		if err != nil {
			continue
		}
		for _, u := range nb {
			if !seen[u] {
				seen[u] = true
				heap.Push(pq, nnEntry{id: u, d2: q.Dist2(ix.diag.Site(u))})
			}
		}
	}
	return out, visits
}

type nnEntry struct {
	id int
	d2 float64
}

type nnHeap []nnEntry

func (h nnHeap) Len() int { return len(h) }
func (h nnHeap) Less(i, j int) bool {
	if h[i].d2 != h[j].d2 {
		return h[i].d2 < h[j].d2
	}
	return h[i].id < h[j].id
}
func (h nnHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *nnHeap) Push(x any)   { *h = append(*h, x.(nnEntry)) }
func (h *nnHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
