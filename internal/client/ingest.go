package insqclient

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"

	"repro/internal/api"
)

// Ingest is one binary streaming ingest connection: batches go out as
// length-prefixed CRC32C frames, one ack comes back per batch (in
// order). Two usage styles:
//
//   - Pipelined: Send batches back to back and drain Acks() on another
//     goroutine. A window of w bounds frames in flight — Send blocks
//     when the window is full, which is the client half of the
//     protocol's backpressure (the server half is its bounded queue +
//     TCP flow control).
//   - Synchronous: Call sends one batch and waits for its ack — the
//     per-request shape, minus JSON and connection churn.
//
// Send/Call are safe for concurrent use. Close half-closes the write
// side, drains remaining acks, then tears the connection down.
type Ingest struct {
	mu  sync.Mutex // serializes frame writes and seq assignment
	w   io.Writer
	seq uint64

	window chan struct{} // in-flight slots; nil = unbounded

	wmu     sync.Mutex
	waiters map[uint64]chan api.IngestAck

	acks chan api.IngestAck
	done chan struct{}

	errMu sync.Mutex
	err   error

	closeWrite func() error // half-close: signals EOF to the server
	closeAll   func() error
	closeOnce  sync.Once
}

// DialIngest opens a streaming ingest connection over HTTP: one POST
// /v1/ingest whose request body is the outgoing frame stream and whose
// response body is the ack stream. window bounds frames in flight
// (<= 0 = unbounded; unbounded senders must drain Acks themselves).
// Canceling ctx severs the stream.
func (c *Client) DialIngest(ctx context.Context, window int) (*Ingest, error) {
	pr, pw := io.Pipe()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/ingest", pr)
	if err != nil {
		pw.Close()
		return nil, err
	}
	req.Header.Set("Content-Type", "application/x-insq-frames")
	// Expect: 100-continue holds the frame stream back until the server
	// actually reads it. Without this a rejecting server (503 recovery
	// gate) could never deliver its response: it would sit draining an
	// endless chunked body the client has no reason to finish.
	req.Header.Set("Expect", "100-continue")
	// The transport only reads the body after it has sent the headers, so
	// the magic must be written concurrently with RoundTrip: the server
	// reads it before answering with its own headers + magic.
	go pw.Write([]byte(api.ClientMagic))
	resp, err := c.transport().RoundTrip(req)
	if err != nil {
		pw.Close()
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		defer pw.Close()
		return nil, apiError("/v1/ingest", resp)
	}
	br := bufio.NewReader(resp.Body)
	if err := expectMagic(br, api.ServerMagic); err != nil {
		resp.Body.Close()
		pw.Close()
		return nil, err
	}
	return newIngest(pw, br, window,
		func() error { return pw.Close() },
		func() error { pw.Close(); return resp.Body.Close() }), nil
}

// DialIngestTCP opens a streaming ingest connection to an insqd
// -ingest-addr raw TCP listener: the same protocol without HTTP.
func DialIngestTCP(ctx context.Context, addr string, window int) (*Ingest, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	if _, err := conn.Write([]byte(api.ClientMagic)); err != nil {
		conn.Close()
		return nil, err
	}
	br := bufio.NewReader(conn)
	if err := expectMagic(br, api.ServerMagic); err != nil {
		conn.Close()
		return nil, err
	}
	closeWrite := conn.Close
	if tc, ok := conn.(*net.TCPConn); ok {
		closeWrite = tc.CloseWrite
	}
	return newIngest(conn, br, window, closeWrite, conn.Close), nil
}

func expectMagic(br *bufio.Reader, want string) error {
	got := make([]byte, len(want))
	if _, err := io.ReadFull(br, got); err != nil {
		return fmt.Errorf("ingest: reading magic: %w", err)
	}
	if string(got) != want {
		return fmt.Errorf("ingest: bad magic %q (protocol mismatch)", got)
	}
	return nil
}

func newIngest(w io.Writer, br *bufio.Reader, window int, closeWrite, closeAll func() error) *Ingest {
	in := &Ingest{
		w:          w,
		waiters:    make(map[uint64]chan api.IngestAck),
		acks:       make(chan api.IngestAck, max(window, 64)),
		done:       make(chan struct{}),
		closeWrite: closeWrite,
		closeAll:   closeAll,
	}
	if window > 0 {
		in.window = make(chan struct{}, window)
	}
	go in.readLoop(br)
	return in
}

// readLoop decodes acks, releases window slots and dispatches each ack
// to its Call waiter or the Acks channel. It owns closing acks/done.
func (in *Ingest) readLoop(br *bufio.Reader) {
	defer close(in.acks)
	defer close(in.done)
	for {
		payload, err := api.ReadFrame(br)
		if err != nil {
			if err != io.EOF { // EOF at a frame boundary is a clean close
				in.setErr(err)
			}
			return
		}
		ack, err := api.DecodeAck(payload)
		if err != nil {
			in.setErr(err)
			return
		}
		if in.window != nil {
			select {
			case <-in.window:
			default: // bad-frame acks carry seq 0 and occupy no slot
			}
		}
		in.wmu.Lock()
		ch, ok := in.waiters[ack.Seq]
		if ok {
			delete(in.waiters, ack.Seq)
		}
		in.wmu.Unlock()
		if ok {
			ch <- ack // cap 1, never blocks
			continue
		}
		select {
		case in.acks <- ack:
		case <-in.done:
			return
		}
	}
}

func (in *Ingest) setErr(err error) {
	in.errMu.Lock()
	if in.err == nil {
		in.err = err
	}
	in.errMu.Unlock()
}

// Err returns the terminal stream error, nil while the stream is live
// or after a clean close.
func (in *Ingest) Err() error {
	in.errMu.Lock()
	defer in.errMu.Unlock()
	return in.err
}

// ErrIngestClosed reports a Send/Call against a dead or closed stream.
var ErrIngestClosed = errors.New("insqclient: ingest stream closed")

// Acks is the stream of acks not claimed by Call, in frame order.
// Pipelined senders must drain it. The channel closes when the stream
// ends (check Err for why).
func (in *Ingest) Acks() <-chan api.IngestAck { return in.acks }

// Send writes one batch frame, assigning and returning its sequence
// number. It blocks while the pipeline window is full. The ack arrives
// on Acks().
func (in *Ingest) Send(b api.IngestBatch) (uint64, error) {
	return in.send(b, nil)
}

// Call sends one batch and waits for its ack — the synchronous shape.
func (in *Ingest) Call(b api.IngestBatch) (api.IngestAck, error) {
	ch := make(chan api.IngestAck, 1)
	seq, err := in.send(b, ch)
	if err != nil {
		return api.IngestAck{}, err
	}
	select {
	case ack := <-ch:
		return ack, nil
	case <-in.done:
		// The reader may have dispatched the ack just before dying.
		select {
		case ack := <-ch:
			return ack, nil
		default:
		}
		in.wmu.Lock()
		delete(in.waiters, seq)
		in.wmu.Unlock()
		if err := in.Err(); err != nil {
			return api.IngestAck{}, err
		}
		return api.IngestAck{}, ErrIngestClosed
	}
}

func (in *Ingest) send(b api.IngestBatch, waiter chan api.IngestAck) (uint64, error) {
	if in.window != nil {
		select {
		case in.window <- struct{}{}:
		case <-in.done:
			if err := in.Err(); err != nil {
				return 0, err
			}
			return 0, ErrIngestClosed
		}
	}
	in.mu.Lock()
	in.seq++
	b.Seq = in.seq
	if waiter != nil {
		in.wmu.Lock()
		in.waiters[b.Seq] = waiter
		in.wmu.Unlock()
	}
	frame := api.AppendFrame(nil, api.AppendBatch(nil, b))
	_, err := in.w.Write(frame)
	in.mu.Unlock()
	if err != nil {
		in.setErr(err)
		return b.Seq, err
	}
	return b.Seq, nil
}

// Close half-closes the write side, waits for the server to ack what is
// in flight and close its end, then releases the connection. Returns
// the terminal stream error, nil for a clean shutdown.
func (in *Ingest) Close() error {
	in.closeOnce.Do(func() {
		in.closeWrite()
		<-in.done
		in.closeAll()
	})
	return in.Err()
}
