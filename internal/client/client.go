// Package insqclient is the Go client for insqd. It wraps the JSON API
// (internal/api) in typed calls with transient-aware retry — 503
// (recovery/degraded) and 429 (admission-control shed) back off under
// full jitter with the server's Retry-After as a floor — plus SSE result
// subscription and the binary streaming ingest path (DialIngest /
// DialIngestTCP; see ingest.go).
//
// Server-side errors surface as *APIError carrying the HTTP status and
// the machine-readable code from the shared error table, so callers
// branch on api.ErrorCode instead of matching message strings:
//
//	c := insqclient.New("http://localhost:8080", insqclient.Options{})
//	sid, err := c.CreateSession(5, 1.6, false)
//	var ae *insqclient.APIError
//	if errors.As(err, &ae) && ae.Code == api.CodeUnavailable { ... }
//
// cmd/loadgen and the insqd end-to-end tests are both built on this
// package; it is the reference consumer of the wire protocol.
package insqclient

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/api"
)

// Options tunes a Client. The zero value is ready to use.
type Options struct {
	// HTTPClient overrides the request/response client (tests inject
	// httptest clients). Streaming endpoints (Subscribe, DialIngest) use
	// its Transport but never its Timeout — a deadline would sever the
	// long-lived stream.
	HTTPClient *http.Client
	// Retries caps transient (503/429) retries per request: 0 means the
	// default (6), negative disables retrying — tests asserting raw
	// statuses want the first answer, not the eventual one.
	Retries int
	// OnStatus, OnRetry and OnNetErr observe every non-2xx response,
	// every retry taken and every transport failure per endpoint —
	// loadgen's error table hangs off these.
	OnStatus func(endpoint string, status int)
	OnRetry  func(endpoint string)
	OnNetErr func(endpoint string)
}

// retryBase and retryCap bound the exponential backoff between retries.
const (
	retryBase      = 100 * time.Millisecond
	retryCap       = 5 * time.Second
	defaultRetries = 6
)

// Client talks to one insqd base URL. Safe for concurrent use.
type Client struct {
	base string
	c    *http.Client
	opts Options
}

// New returns a client for the given base URL (e.g. "http://host:8080",
// no trailing slash).
func New(base string, opts Options) *Client {
	c := opts.HTTPClient
	if c == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConnsPerHost = 64
		c = &http.Client{Transport: tr, Timeout: 30 * time.Second}
	}
	return &Client{base: strings.TrimSuffix(base, "/"), c: c, opts: opts}
}

// APIError is a non-2xx server response: the HTTP status plus the
// machine-readable code and message from api.ErrorResponse. Reach it
// with errors.As.
type APIError struct {
	Endpoint string
	Status   int
	Code     api.ErrorCode
	Message  string
}

func (e *APIError) Error() string {
	if e.Message == "" {
		return fmt.Sprintf("%s: status %d (%s)", e.Endpoint, e.Status, e.Code)
	}
	return fmt.Sprintf("%s: status %d (%s): %s", e.Endpoint, e.Status, e.Code, e.Message)
}

// Transient reports whether the error is a transient server condition
// (shed, degraded, recovering) that a retry may outwait.
func (e *APIError) Transient() bool { return api.Transient(e.Code) }

func (o Options) maxRetries() int {
	switch {
	case o.Retries < 0:
		return 0
	case o.Retries == 0:
		return defaultRetries
	default:
		return o.Retries
	}
}

// backoffWait computes the sleep before retry attempt (0-based): full
// jitter over the top half of an exponentially growing window — random
// in [b/2, b] for b = base<<attempt capped at retryCap — so a fleet of
// workers bounced by the same degraded window doesn't retry in lockstep
// and re-stampede the server. A Retry-After hint acts as a floor: the
// server knows when it expects to recover, and retrying sooner is
// wasted.
func backoffWait(attempt int, retryAfter string) time.Duration {
	b := retryCap
	if shift := uint(attempt); shift < 12 && retryBase<<shift < retryCap {
		b = retryBase << shift
	}
	wait := b/2 + time.Duration(rand.Int63n(int64(b/2)+1))
	if ra, err := strconv.Atoi(retryAfter); err == nil && ra >= 0 {
		if floor := time.Duration(ra) * time.Second; wait < floor {
			wait = min(floor, retryCap)
		}
	}
	return wait
}

// retryable reports whether a status is worth retrying: 503 (recovery
// window or degraded durability) and 429 (admission-control shed) are
// both transient by design — the server attaches Retry-After to each.
func retryable(status int) bool {
	return status == http.StatusServiceUnavailable || status == http.StatusTooManyRequests
}

// do issues fn under the retry policy, recording every non-2xx
// response, retry and transport failure through the Options hooks.
func (c *Client) do(endpoint string, fn func() (*http.Response, error)) (*http.Response, error) {
	for attempt := 0; ; attempt++ {
		r, err := fn()
		if err != nil {
			if c.opts.OnNetErr != nil {
				c.opts.OnNetErr(endpoint)
			}
			return nil, err
		}
		if r.StatusCode >= 300 && c.opts.OnStatus != nil {
			c.opts.OnStatus(endpoint, r.StatusCode)
		}
		if !retryable(r.StatusCode) || attempt >= c.opts.maxRetries() {
			return r, nil
		}
		wait := backoffWait(attempt, r.Header.Get("Retry-After"))
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if c.opts.OnRetry != nil {
			c.opts.OnRetry(endpoint)
		}
		time.Sleep(wait)
	}
}

// apiError drains a non-2xx body into an *APIError.
func apiError(endpoint string, r *http.Response) error {
	var e api.ErrorResponse
	json.NewDecoder(r.Body).Decode(&e)
	code := e.Code
	if code == "" {
		code = api.CodeInternal
	}
	return &APIError{Endpoint: endpoint, Status: r.StatusCode, Code: code, Message: e.Error}
}

// PostJSON posts req to path and decodes the response into resp (may be
// nil). The typed endpoint methods below are wrappers over this.
func (c *Client) PostJSON(path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	r, err := c.do("POST "+path, func() (*http.Response, error) {
		return c.c.Post(c.base+path, "application/json", bytes.NewReader(body))
	})
	if err != nil {
		return err
	}
	defer r.Body.Close()
	if r.StatusCode >= 300 {
		return apiError(path, r)
	}
	if resp != nil {
		return json.NewDecoder(r.Body).Decode(resp)
	}
	return nil
}

// delete issues DELETE path under the retry policy.
func (c *Client) delete(endpoint, path string) error {
	r, err := c.do(endpoint, func() (*http.Response, error) {
		req, err := http.NewRequest(http.MethodDelete, c.base+path, nil)
		if err != nil {
			return nil, err
		}
		return c.c.Do(req)
	})
	if err != nil {
		return err
	}
	defer r.Body.Close()
	if r.StatusCode >= 300 {
		return apiError(path, r)
	}
	return nil
}

// CreateSession opens a live MkNN query session (network selects the
// road-network side) and returns its id.
func (c *Client) CreateSession(k int, rho float64, network bool) (uint64, error) {
	var resp api.CreateSessionResponse
	err := c.PostJSON("/v1/sessions", api.CreateSessionRequest{K: k, Rho: rho, Network: network}, &resp)
	return resp.Session, err
}

// CloseSession ends a session.
func (c *Client) CloseSession(sid uint64) error {
	return c.delete("DELETE /v1/sessions", fmt.Sprintf("/v1/sessions/%d", sid))
}

// Update posts one batch of plane location updates.
func (c *Client) Update(entries []api.UpdateEntry) (*api.UpdateResponse, error) {
	var resp api.UpdateResponse
	if err := c.PostJSON("/v1/update", api.UpdateRequest{Updates: entries}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// NetworkUpdate posts one batch of road-network location updates.
func (c *Client) NetworkUpdate(entries []api.NetworkUpdateEntry) (*api.UpdateResponse, error) {
	var resp api.UpdateResponse
	if err := c.PostJSON("/v1/network/update", api.NetworkUpdateRequest{Updates: entries}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// AddObject inserts a plane data object and returns its assigned id.
func (c *Client) AddObject(x, y float64) (int, error) {
	var resp api.ObjectResponse
	err := c.PostJSON("/v1/objects", api.ObjectRequest{X: x, Y: y}, &resp)
	return resp.ID, err
}

// RemoveObject deletes a plane data object by id.
func (c *Client) RemoveObject(id int) error {
	return c.delete("DELETE /v1/objects", fmt.Sprintf("/v1/objects/%d", id))
}

// AddNetworkObject inserts a network data object at a vertex.
func (c *Client) AddNetworkObject(vertex int) (int, error) {
	var resp api.ObjectResponse
	err := c.PostJSON("/v1/network/objects", api.NetworkObjectRequest{Vertex: vertex}, &resp)
	return resp.ID, err
}

// RemoveNetworkObject deletes the network data object at a vertex.
func (c *Client) RemoveNetworkObject(vertex int) error {
	return c.delete("DELETE /v1/network/objects", fmt.Sprintf("/v1/network/objects/%d", vertex))
}

// Stats fetches the merged serving snapshot. No retry: scrapers want
// the current answer or the current failure.
func (c *Client) Stats() (*api.StatsResponse, error) {
	r, err := c.c.Get(c.base + "/v1/stats")
	if err != nil {
		if c.opts.OnNetErr != nil {
			c.opts.OnNetErr("GET /v1/stats")
		}
		return nil, err
	}
	defer r.Body.Close()
	if r.StatusCode >= 300 {
		if c.opts.OnStatus != nil {
			c.opts.OnStatus("GET /v1/stats", r.StatusCode)
		}
		return nil, apiError("/v1/stats", r)
	}
	var resp api.StatsResponse
	if err := json.NewDecoder(r.Body).Decode(&resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Subscribe opens one multi-session SSE stream and parses it on a
// dedicated goroutine, invoking onEvent per push. The returned stop
// function severs the stream and waits for the goroutine to exit. The
// stream bypasses the client Timeout (it is long-lived by design).
func (c *Client) Subscribe(sids []uint64, onEvent func(api.SessionEvent)) (func(), error) {
	parts := make([]string, len(sids))
	for i, sid := range sids {
		parts[i] = strconv.FormatUint(sid, 10)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v1/events?sessions="+strings.Join(parts, ","), nil)
	if err != nil {
		cancel()
		return nil, err
	}
	resp, err := c.transport().RoundTrip(req)
	if err != nil {
		cancel()
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		defer cancel()
		return nil, apiError("/v1/events", resp)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer resp.Body.Close()
		ReadSSE(resp.Body, onEvent)
	}()
	return func() {
		cancel()
		<-done
	}, nil
}

// transport is the raw RoundTripper for streaming endpoints.
func (c *Client) transport() http.RoundTripper {
	if c.c.Transport != nil {
		return c.c.Transport
	}
	return http.DefaultTransport
}

// ReadSSE parses a text/event-stream body, invoking onEvent per data
// frame, until the stream ends. Exported for tests that consume raw
// event streams.
func ReadSSE(body io.Reader, onEvent func(api.SessionEvent)) {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if len(data) > 0 {
				var ev api.SessionEvent
				if err := json.Unmarshal(data, &ev); err == nil {
					onEvent(ev)
				}
				data = data[:0]
			}
		case strings.HasPrefix(line, "data: "):
			data = append(data, strings.TrimPrefix(line, "data: ")...)
		}
	}
}
