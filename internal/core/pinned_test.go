package core

import (
	"errors"
	"testing"

	"repro/internal/geom"
	"repro/internal/index"
	"repro/internal/roadnet"
	"repro/internal/trajectory"
	"repro/internal/vortree"
	"repro/internal/workload"
)

var pinnedBounds = geom.NewRect(geom.Pt(0, 0), geom.Pt(1000, 1000))

// TestPinnedMatchesRawUnderMutations drives a snapshot-pinned query and a
// raw-index query through the same trajectory while the store (and,
// mirrored, the raw index) churns objects; answers must agree exactly at
// every step. The raw reference applies the engine-identical invalidation
// rule: Invalidate when a mutation can affect the guard sets, recompute at
// the next update.
func TestPinnedMatchesRawUnderMutations(t *testing.T) {
	pts := workload.Uniform(300, pinnedBounds, 11)
	st, err := index.NewStore(index.Config{Bounds: pinnedBounds, Objects: pts})
	if err != nil {
		t.Fatal(err)
	}
	rawIx, _, err := vortree.Build(pinnedBounds, 16, pts)
	if err != nil {
		t.Fatal(err)
	}
	pinned, err := NewPlaneQueryPinned(st, 4, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	defer pinned.Close()
	ref, err := NewPlaneQuery(rawIx, 4, 1.6)
	if err != nil {
		t.Fatal(err)
	}

	traj := trajectory.RandomWaypoint(pinnedBounds, 80, 10, 3)
	var inserted []int
	mutate := func(step int) {
		if step%2 == 0 && len(inserted) > 4 {
			id := inserted[0]
			inserted = inserted[1:]
			if err := st.Remove(id); err != nil {
				t.Fatal(err)
			}
			if ref.UsesObject(id) {
				ref.Invalidate()
			}
			if err := rawIx.Remove(id); err != nil {
				t.Fatal(err)
			}
			return
		}
		p := geom.Pt(float64((step*97)%1000), float64((step*61)%1000))
		id, err := st.Insert(p)
		if err != nil {
			t.Fatal(err)
		}
		rid, err := rawIx.Insert(p)
		if err != nil {
			t.Fatal(err)
		}
		if rid != id {
			t.Fatalf("step %d: store id %d, raw id %d", step, id, rid)
		}
		nb, nbErr := rawIx.Neighbors(id)
		if nbErr != nil || ref.AffectedByInsert(id, p, nb) {
			ref.Invalidate()
		}
		inserted = append(inserted, id)
	}

	for step, pos := range traj {
		mutate(step)
		got, err := pinned.Update(pos)
		if err != nil {
			t.Fatalf("step %d pinned: %v", step, err)
		}
		want, err := ref.Update(pos)
		if err != nil {
			t.Fatalf("step %d raw: %v", step, err)
		}
		if len(got) != len(want) {
			t.Fatalf("step %d: pinned %v, raw %v", step, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("step %d: pinned %v, raw %v", step, got, want)
			}
		}
	}
	if pinned.Epoch() != st.Epoch() {
		t.Errorf("pinned epoch %d, store epoch %d", pinned.Epoch(), st.Epoch())
	}
	if st.LiveSnapshots() != 1 { // query re-pinned to the current snapshot
		t.Errorf("live snapshots = %d, want 1", st.LiveSnapshots())
	}
	// One more mutation: the store publishes a new version while the
	// dormant query still pins the old one...
	if _, err := st.Insert(geom.Pt(777, 777)); err != nil {
		t.Fatal(err)
	}
	if st.LiveSnapshots() != 2 {
		t.Errorf("live snapshots with lagging query = %d, want 2", st.LiveSnapshots())
	}
	// ...until Close releases the pin and the old version is collectable.
	pinned.Close()
	if st.LiveSnapshots() != 1 {
		t.Errorf("live snapshots after query close = %d, want 1", st.LiveSnapshots())
	}
}

// TestPinnedLazyInvalidation checks that a far-away insert does not reset
// the client state (no extra recomputation), while an insert at the query
// position does.
func TestPinnedLazyInvalidation(t *testing.T) {
	// Dense enough that Voronoi adjacency is local: a far-corner insert is
	// then provably irrelevant to a query at the opposite corner.
	st, err := index.NewStore(index.Config{Bounds: pinnedBounds, Objects: workload.Uniform(400, pinnedBounds, 9)})
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewPlaneQueryPinned(st, 2, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	pos := geom.Pt(105, 105)
	if _, err := q.Update(pos); err != nil {
		t.Fatal(err)
	}
	recomps := q.Metrics().Recomputations

	// Far corner insert: cannot affect R or I(R) of a query at (105,105).
	if _, err := st.Insert(geom.Pt(850, 850)); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Update(pos); err != nil {
		t.Fatal(err)
	}
	if got := q.Metrics().Recomputations; got != recomps {
		t.Errorf("far insert caused recomputation (%d -> %d)", recomps, got)
	}
	if q.Epoch() != st.Epoch() {
		t.Errorf("query did not re-pin: epoch %d vs %d", q.Epoch(), st.Epoch())
	}

	// Insert right at the query position: must invalidate and become NN.
	id, err := st.Insert(geom.Pt(105, 106))
	if err != nil {
		t.Fatal(err)
	}
	knn, err := q.Update(pos)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Metrics().Recomputations; got != recomps+1 {
		t.Errorf("near insert: recomputations %d, want %d", got, recomps+1)
	}
	if len(knn) == 0 || knn[0] != id {
		t.Errorf("knn after near insert = %v, want leading %d", knn, id)
	}
}

// TestPinnedLogOverflowConservative: a query lagging past the mutation log
// must recompute rather than trust stale guard sets.
func TestPinnedLogOverflowConservative(t *testing.T) {
	st, err := index.NewStore(index.Config{
		Bounds:   pinnedBounds,
		Objects:  workload.Uniform(50, pinnedBounds, 5),
		LogDepth: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewPlaneQueryPinned(st, 3, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	pos := geom.Pt(500, 500)
	if _, err := q.Update(pos); err != nil {
		t.Fatal(err)
	}
	recomps := q.Metrics().Recomputations
	// Five far-away inserts overflow the 2-deep log; even though none
	// affects the query, it cannot prove that and must recompute.
	for i := 0; i < 5; i++ {
		if _, err := st.Insert(geom.Pt(10+float64(i), 10)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := q.Update(pos); err != nil {
		t.Fatal(err)
	}
	if got := q.Metrics().Recomputations; got != recomps+1 {
		t.Errorf("recomputations = %d, want %d (conservative invalidation)", got, recomps+1)
	}
}

func TestPinnedReadOnly(t *testing.T) {
	st, err := index.NewStore(index.Config{Bounds: pinnedBounds, Objects: workload.Uniform(20, pinnedBounds, 1)})
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewPlaneQueryPinned(st, 2, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if _, err := q.InsertObject(geom.Pt(1, 1)); !errors.Is(err, ErrReadOnly) {
		t.Errorf("InsertObject on pinned query: %v", err)
	}
	if err := q.RemoveObject(0); !errors.Is(err, ErrReadOnly) {
		t.Errorf("RemoveObject on pinned query: %v", err)
	}

	g, err := roadnet.GridNetwork(5, 5, pinnedBounds, 0, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	netSt, err := index.NewStore(index.Config{Network: g, NetworkSites: []int{0, 6, 12, 18, 24}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPlaneQueryPinned(netSt, 2, 1.6); err == nil {
		t.Error("plane query on network-only store succeeded")
	}
	nq, err := NewNetworkQueryPinned(netSt, 2, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nq.Update(roadnet.VertexPosition(7)); err != nil {
		t.Fatal(err)
	}
	if _, err := NewNetworkQueryPinned(st, 2, 1.6); err == nil {
		t.Error("network query on plane-only store succeeded")
	}
}
