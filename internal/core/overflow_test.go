package core

import (
	"reflect"
	"testing"

	"repro/internal/geom"
	"repro/internal/index"
	"repro/internal/roadnet"
	"repro/internal/workload"
)

// TestPinnedLogOverflowConvergesPlane pushes a pinned plane session far
// past the store's bounded op log with churn that DOES change the true
// answer near the query. The conservative full re-pin path must not just
// recompute — it must converge to exactly the fresh-snapshot oracle.
func TestPinnedLogOverflowConvergesPlane(t *testing.T) {
	st, err := index.NewStore(index.Config{
		Bounds:   pinnedBounds,
		Objects:  workload.Uniform(50, pinnedBounds, 5),
		LogDepth: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	q, err := NewPlaneQueryPinned(st, 4, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	pos := geom.Pt(500, 500)
	if _, err := q.Update(pos); err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 4; round++ {
		recomps := q.Metrics().Recomputations
		// A cluster of inserts right next to the query position — these
		// replace the whole kNN set — plus one removal of a current
		// neighbor, all while the session is pinned to an old epoch. Eight
		// ops against a 2-deep log: OpsSince cannot cover the gap.
		cur, err := q.Update(pos)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Remove(cur[0]); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 7; i++ {
			d := float64(round*8 + i + 1)
			if _, err := st.Insert(geom.Pt(500+d, 500-d)); err != nil {
				t.Fatal(err)
			}
		}
		got, err := q.Update(pos)
		if err != nil {
			t.Fatal(err)
		}
		if n := q.Metrics().Recomputations; n != recomps+1 {
			t.Fatalf("round %d: recomputations = %d, want %d (overflow must take the full re-pin path)", round, n, recomps+1)
		}
		if q.Epoch() != st.Epoch() {
			t.Fatalf("round %d: re-pinned at epoch %d, store at %d", round, q.Epoch(), st.Epoch())
		}
		s := st.Acquire()
		want := s.Plane().KNN(pos, 4)
		s.Release()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: overflowed session answered %v, fresh snapshot says %v", round, got, want)
		}
	}
}

// TestPinnedLogOverflowConvergesNetwork is the road-network mirror: site
// churn past the log capacity must drive the pinned session through the
// full re-pin and land exactly on the fresh-snapshot oracle.
func TestPinnedLogOverflowConvergesNetwork(t *testing.T) {
	g, err := roadnet.GridNetwork(5, 5, pinnedBounds, 0, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	st, err := index.NewStore(index.Config{
		Network:      g,
		NetworkSites: []int{0, 6, 12, 18, 24},
		LogDepth:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	q, err := NewNetworkQueryPinned(st, 2, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	pos := roadnet.VertexPosition(7)
	if _, err := q.Update(pos); err != nil {
		t.Fatal(err)
	}

	// Site churn that changes the answer around vertex 7 (inserts at its
	// neighborhood, removal of a seed site), five ops against a 2-deep log.
	for _, v := range []int{2, 8, 11} {
		if err := st.InsertSite(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.RemoveSite(6); err != nil {
		t.Fatal(err)
	}
	if err := st.InsertSite(13); err != nil {
		t.Fatal(err)
	}
	recomps := q.Metrics().Recomputations
	got, err := q.Update(pos)
	if err != nil {
		t.Fatal(err)
	}
	if n := q.Metrics().Recomputations; n != recomps+1 {
		t.Fatalf("recomputations = %d, want %d (overflow must take the full re-pin path)", n, recomps+1)
	}
	if q.Epoch() != st.Epoch() {
		t.Fatalf("re-pinned at epoch %d, store at %d", q.Epoch(), st.Epoch())
	}
	s := st.Acquire()
	want, _ := s.Network().KNNWithDistances(pos, 2)
	s.Release()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("overflowed session answered %v, fresh snapshot says %v", got, want)
	}
}
