package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/vortree"
)

// ErrEmptyIndex is returned when a query is issued against an index with no
// objects.
var ErrEmptyIndex = errors.New("core: no data objects")

// ErrReadOnly is returned by the index-mutation convenience methods
// (InsertObject/RemoveObject) on a snapshot-pinned query; mutations of a
// shared index go through its index.Store instead.
var ErrReadOnly = errors.New("core: snapshot-pinned query cannot mutate the index")

// PlaneQuery is an INS-based moving kNN query in 2D Euclidean space. It is
// created once per query and fed the query object's location at every
// timestamp via Update. It is not safe for concurrent use.
//
// A query resolves its index through one of two handles: NewPlaneQuery
// binds it to a raw VoR-tree it may also mutate (the single-threaded
// experiment mode), while NewPlaneQueryPinned pins it to the immutable
// snapshots of an index.Store shared with other sessions — every Update
// then lazily re-pins to the newest snapshot, invalidating the client
// state only when a skipped mutation could affect it.
type PlaneQuery struct {
	ix  index.PlaneBackend
	k   int
	rho float64
	m   metrics.Counters

	// Exactly one of raw / store is set. snap is the pinned snapshot
	// (store mode), released on Close or when re-pinning.
	raw   *vortree.Index
	store *index.Store
	snap  *index.Snapshot

	init          bool
	located       bool // Update has been called at least once; lastPos is meaningful
	lastPos       geom.Point
	disableRerank bool
	r             []int // prefetched ⌊ρk⌋ nearest objects, ascending distance at fetch time
	ins           []int // I(R): influential neighbor set of R
	knn           []int // current kNN set, ascending distance as of the last re-rank

	// Reusable per-query working memory: the serving hot path processes
	// millions of Updates, so validation, re-rank and recomputation all run
	// against these buffers instead of allocating. r/ins/knn above alias
	// into them; the slices returned by Update are rewritten by the next
	// Update/Sync/Refresh, which is the package's slice-ownership contract.
	search vortree.SearchScratch
	inKNN  map[int]bool // knnValid membership scratch
	rank   rankBuf      // rerank scratch (ids sorted by cached distance)
	rBuf   []int        // backing for r (and the knn prefix)
	insBuf []int        // backing for ins
}

// rankBuf sorts object ids by a cached distance key. It implements
// sort.Interface on a field of PlaneQuery so re-ranking allocates nothing.
type rankBuf struct {
	ids []int
	d   []float64
}

func (r *rankBuf) Len() int { return len(r.ids) }
func (r *rankBuf) Less(i, j int) bool {
	if r.d[i] != r.d[j] {
		return r.d[i] < r.d[j]
	}
	return r.ids[i] < r.ids[j]
}
func (r *rankBuf) Swap(i, j int) {
	r.ids[i], r.ids[j] = r.ids[j], r.ids[i]
	r.d[i], r.d[j] = r.d[j], r.d[i]
}

// NewPlaneQuery creates an INS MkNN query over the given VoR-tree index.
// k must be at least 1 and the prefetch ratio rho at least 1 (rho == 1
// disables prefetching; the paper's demo uses rho = 1.6).
func NewPlaneQuery(ix *vortree.Index, k int, rho float64) (*PlaneQuery, error) {
	if err := validateParams(k, rho); err != nil {
		return nil, err
	}
	return &PlaneQuery{ix: ix, raw: ix, k: k, rho: rho}, nil
}

// NewPlaneQueryPinned creates an INS MkNN query served from the immutable
// snapshots of a shared index store. The query pins the current snapshot
// and re-pins lazily at each Update; call Close when the session ends so
// old snapshots can be collected.
func NewPlaneQueryPinned(st *index.Store, k int, rho float64) (*PlaneQuery, error) {
	if err := validateParams(k, rho); err != nil {
		return nil, err
	}
	if !st.HasPlane() {
		return nil, fmt.Errorf("core: %w", index.ErrNoPlane)
	}
	snap := st.Acquire()
	if snap == nil {
		return nil, fmt.Errorf("core: %w", index.ErrClosed)
	}
	return &PlaneQuery{ix: snap.Plane(), store: st, snap: snap, k: k, rho: rho}, nil
}

func validateParams(k int, rho float64) error {
	if k < 1 {
		return fmt.Errorf("core: k = %d, must be >= 1", k)
	}
	if rho < 1 {
		return fmt.Errorf("core: prefetch ratio rho = %g, must be >= 1", rho)
	}
	return nil
}

// Name identifies the processor in simulation reports.
func (q *PlaneQuery) Name() string { return "ins" }

// K returns the query parameter k.
func (q *PlaneQuery) K() int { return q.k }

// Rho returns the prefetch ratio.
func (q *PlaneQuery) Rho() float64 { return q.rho }

// Metrics returns the accumulated cost counters.
func (q *PlaneQuery) Metrics() *metrics.Counters { return &q.m }

// SetDisableLocalRerank turns off the local repair of a stale kNN set from
// the prefetched set (update cases (i)/(ii)); every invalidation then
// triggers a full recomputation. This exists for the ablation benchmark
// that measures what the incremental update path is worth.
func (q *PlaneQuery) SetDisableLocalRerank(v bool) { q.disableRerank = v }

// Current returns the current kNN set (ascending distance as of the last
// re-rank) as a fresh copy; see the package slice-ownership contract.
func (q *PlaneQuery) Current() []int { return append([]int(nil), q.knn...) }

// AppendCurrent appends the current kNN set onto dst and returns it — the
// zero-copy accessor for callers that own a reusable buffer (the engine
// shards and the stream broker). The copying accessors remain the public
// facade's contract.
func (q *PlaneQuery) AppendCurrent(dst []int) []int { return append(dst, q.knn...) }

// AppendPrefetched appends the prefetched set R onto dst.
func (q *PlaneQuery) AppendPrefetched(dst []int) []int { return append(dst, q.r...) }

// AppendINS appends I(R) onto dst.
func (q *PlaneQuery) AppendINS(dst []int) []int { return append(dst, q.ins...) }

// Sync re-pins a snapshot-backed query to the newest published snapshot
// (a no-op for raw-index queries and when already current). If any data
// update between the pinned and the newest epoch can affect the query's
// guard sets — the inserted object lands inside or adjacent to the
// prefetched set, or a removed object participates in it — the client
// state is invalidated and the next Update recomputes; otherwise the
// existing state carries over unchanged, which is the paper's lazy
// invalidation applied at re-pin time. Update calls Sync automatically;
// the serving engine also calls it on epoch notifications so dormant
// sessions release old snapshots promptly.
func (q *PlaneQuery) Sync() {
	if q.store == nil || q.snap == nil {
		return
	}
	cur := q.store.Current()
	if cur.Epoch() == q.snap.Epoch() {
		return
	}
	// Pin first, then read the op window up to the pinned epoch, so no
	// mutation can slip between the window and the snapshot.
	next := q.store.Acquire()
	if next == nil {
		return // store closed: keep serving the already-pinned snapshot
	}
	invalidate := false
	if q.init {
		ops, ok := q.store.OpsSince(q.snap.Epoch(), next.Epoch())
		if !ok {
			invalidate = true // lagged past the log: be conservative
		} else {
			for _, op := range ops {
				if op.Network {
					continue // site mutations cannot affect a plane session
				}
				// Affectedness is evaluated against the still-pinned old
				// snapshot (q.ix), where every guard object is live.
				switch {
				case op.Conservative:
					invalidate = true
				case op.Insert:
					invalidate = q.AffectedByInsert(op.ID, op.P, op.Neighbors)
				default:
					invalidate = q.UsesObject(op.ID)
				}
				if invalidate {
					break
				}
			}
		}
	}
	q.snap.Release()
	q.snap = next
	q.ix = next.Plane()
	if invalidate {
		q.Invalidate()
	}
}

// Refresh turns lazy invalidation into eager repair: it re-pins via Sync
// and, when that invalidated the client state (a skipped data update
// touched the guard sets), immediately recomputes at the last reported
// position instead of waiting for the next location update. recomputed
// reports whether a recomputation ran; the kNN slice aliases internal
// state under the same contract as Update (rewritten by the next
// Update/Sync/Refresh — copy before retaining or crossing goroutines).
//
// The serving engine calls it on epoch notifications for sessions with
// push subscribers, so a subscriber observes the post-update kNN without
// the client ever polling. Sessions that never reported a position have
// nothing to recompute and return recomputed=false.
func (q *PlaneQuery) Refresh() (knn []int, recomputed bool, err error) {
	q.Sync()
	if q.init || !q.located {
		return q.knn, false, nil
	}
	if err := q.recompute(q.lastPos); err != nil {
		return nil, false, err
	}
	q.init = true
	return q.knn, true, nil
}

// Epoch returns the pinned snapshot's epoch (0 for raw-index queries).
func (q *PlaneQuery) Epoch() uint64 {
	if q.snap == nil {
		return 0
	}
	return q.snap.Epoch()
}

// Close releases the query's snapshot pin. It is idempotent and a no-op
// for raw-index queries; the query must not be used afterwards.
func (q *PlaneQuery) Close() {
	if q.snap != nil {
		q.snap.Release()
		q.snap = nil
	}
}

// InfluenceSet returns the current client-side guard set
// IS = (R ∪ I(R)) \ kNN, the objects whose approach invalidates the kNN
// set. The result is freshly allocated.
func (q *PlaneQuery) InfluenceSet() []int {
	inKNN := make(map[int]bool, len(q.knn))
	for _, id := range q.knn {
		inKNN[id] = true
	}
	out := make([]int, 0, len(q.r)+len(q.ins))
	for _, id := range q.r {
		if !inKNN[id] {
			out = append(out, id)
		}
	}
	out = append(out, q.ins...)
	return out
}

// Prefetched returns the prefetched set R as a fresh copy.
func (q *PlaneQuery) Prefetched() []int { return append([]int(nil), q.r...) }

// INS returns I(R), the influential neighbor set of the prefetched set, as
// a fresh copy.
func (q *PlaneQuery) INS() []int { return append([]int(nil), q.ins...) }

// prefetchSize returns ⌊ρk⌋ clamped to [k, number of objects].
func (q *PlaneQuery) prefetchSize() int {
	m := int(q.rho * float64(q.k))
	if m < q.k {
		m = q.k
	}
	if n := q.ix.Len(); m > n {
		m = n
	}
	return m
}

// Update processes a location update of the query object and returns the
// current kNN set (ascending distance at the time of the last re-rank).
// The returned slice is shared; callers must not modify it.
func (q *PlaneQuery) Update(p geom.Point) ([]int, error) {
	q.Sync()
	q.m.Timestamps++
	q.lastPos = p
	q.located = true
	if !q.init {
		if err := q.recompute(p); err != nil {
			return nil, err
		}
		q.init = true
		return q.knn, nil
	}

	q.m.Validations++
	if q.knnValid(p) {
		return q.knn, nil
	}
	q.m.Invalidations++

	// Update cases (i) and (ii) of Section III-B: the prefetched set R may
	// still be valid even though the kNN set is stale, in which case the
	// new kNN set is composed locally by re-ranking R — no communication.
	if !q.disableRerank && q.rValid(p) {
		q.rerank(p)
		return q.knn, nil
	}
	if err := q.recompute(p); err != nil {
		return nil, err
	}
	return q.knn, nil
}

// knnValid performs the Section III-A validation: scan the kNN set for the
// farthest member (r.delete) and the influential set for the nearest
// member (r.candidate); the kNN set is valid while r.delete is no farther
// than r.candidate.
func (q *PlaneQuery) knnValid(p geom.Point) bool {
	if q.inKNN == nil {
		q.inKNN = make(map[int]bool, len(q.knn))
	} else {
		clear(q.inKNN)
	}
	inKNN := q.inKNN
	var maxKNN float64
	for _, id := range q.knn {
		inKNN[id] = true
		if d := p.Dist2(q.ix.Point(id)); d > maxKNN {
			maxKNN = d
		}
	}
	q.m.DistanceCalcs += len(q.knn)
	minIS := -1.0
	check := func(id int) {
		if inKNN[id] {
			return
		}
		q.m.DistanceCalcs++
		if d := p.Dist2(q.ix.Point(id)); minIS < 0 || d < minIS {
			minIS = d
		}
	}
	for _, id := range q.r {
		check(id)
	}
	for _, id := range q.ins {
		check(id)
	}
	return minIS < 0 || maxKNN <= minIS
}

// rValid checks whether the prefetched set R is still the valid
// ⌊ρk⌋-NN set, using I(R) as its influential set.
func (q *PlaneQuery) rValid(p geom.Point) bool {
	var maxR float64
	for _, id := range q.r {
		q.m.DistanceCalcs++
		if d := p.Dist2(q.ix.Point(id)); d > maxR {
			maxR = d
		}
	}
	minINS := -1.0
	for _, id := range q.ins {
		q.m.DistanceCalcs++
		if d := p.Dist2(q.ix.Point(id)); minINS < 0 || d < minINS {
			minINS = d
		}
	}
	return minINS < 0 || maxR <= minINS
}

// rerank recomposes the kNN set from R by current distance (update cases
// (i) and (ii): the new kNN set is still inside R). Distances are computed
// once into the rank scratch, so the sort is allocation-free.
func (q *PlaneQuery) rerank(p geom.Point) {
	rb := &q.rank
	rb.ids = append(rb.ids[:0], q.r...)
	rb.d = rb.d[:0]
	for _, id := range rb.ids {
		rb.d = append(rb.d, p.Dist2(q.ix.Point(id)))
	}
	sort.Sort(rb)
	q.m.DistanceCalcs += len(rb.ids)
	q.knn = rb.ids[:q.k]
}

// recompute performs the server-side computation: fetch the ⌊ρk⌋ nearest
// objects and their influential neighbor set, and ship both to the client.
func (q *PlaneQuery) recompute(p geom.Point) error {
	if q.ix.Len() == 0 {
		return ErrEmptyIndex
	}
	if q.ix.Len() < q.k {
		return fmt.Errorf("core: k = %d exceeds object count %d", q.k, q.ix.Len())
	}
	q.m.Recomputations++
	m := q.prefetchSize()
	r, visits := q.ix.AppendKNN(p, m, q.rBuf[:0], &q.search)
	q.rBuf, q.r = r, r
	q.m.NodeVisits += visits
	ins, err := q.ix.AppendINS(q.r, q.insBuf[:0], &q.search)
	if err != nil {
		return fmt.Errorf("core: recompute INS: %w", err)
	}
	q.insBuf, q.ins = ins, ins
	q.knn = q.r[:q.k]
	q.m.ObjectsShipped += len(q.r) + len(q.ins)
	return nil
}

// Invalidate discards the client-side state (R, I(R) and the kNN set) so
// the next Update performs a full recomputation. The serving engine calls
// it when an index mutation applied outside this query (the index is shared
// by many sessions) may have changed the query's guard sets; the
// recomputation itself happens lazily at the session's next location
// update.
func (q *PlaneQuery) Invalidate() {
	q.init = false
	q.r, q.ins, q.knn = nil, nil, nil
}

// AffectedByInsert reports whether an object just inserted into the index
// (id at point p, with Voronoi neighbor list neighbors) can change this
// query's prefetched state: it lands closer than the farthest prefetched
// object or neighbors a prefetched object. The caller supplies the
// neighbor list so that it is looked up once per index mutation rather
// than once per query sharing the index.
func (q *PlaneQuery) AffectedByInsert(id int, p geom.Point, neighbors []int) bool {
	return q.init && q.affectsState(id, p, func() ([]int, error) { return neighbors, nil })
}

// UsesObject reports whether id participates in the query's client-side
// state (the prefetched set R or its influential set I(R)); removing such
// an object from the index invalidates the state.
func (q *PlaneQuery) UsesObject(id int) bool {
	for _, rid := range q.r {
		if rid == id {
			return true
		}
	}
	for _, xid := range q.ins {
		if xid == id {
			return true
		}
	}
	return false
}

// InsertObject adds a data object during query maintenance. The prefetched
// state is refreshed only when the new object can affect it: when it lands
// closer than the farthest prefetched object or becomes a Voronoi neighbor
// of a prefetched object (otherwise neither R nor I(R) changes). It is
// only available on raw-index queries; snapshot-pinned queries return
// ErrReadOnly.
func (q *PlaneQuery) InsertObject(p geom.Point) (int, error) {
	if q.raw == nil {
		return -1, ErrReadOnly
	}
	id, err := q.raw.Insert(p)
	if err != nil {
		return -1, err
	}
	if !q.init {
		return id, nil
	}
	if q.affectsState(id, p, func() ([]int, error) { return q.ix.Neighbors(id) }) {
		if err := q.recompute(q.lastPos); err != nil {
			return id, err
		}
	}
	return id, nil
}

// affectsState decides whether a just-inserted object can change the
// prefetched state. The neighbor list is requested lazily — only after the
// cheaper distance tests fail to prove affectedness — so single-query
// callers skip the lookup in the common case while the serving engine can
// supply a list it already fetched once per shard.
func (q *PlaneQuery) affectsState(id int, p geom.Point, neighbors func() ([]int, error)) bool {
	var maxR float64
	for _, rid := range q.r {
		if rid == id {
			return true
		}
		if d := q.lastPos.Dist2(q.ix.Point(rid)); d > maxR {
			maxR = d
		}
	}
	if q.lastPos.Dist2(p) < maxR {
		return true
	}
	nb, err := neighbors()
	if err != nil {
		return true // be conservative
	}
	for _, u := range nb {
		for _, rid := range q.r { // both lists are O(k); no map needed
			if rid == u {
				return true
			}
		}
	}
	return false
}

// RemoveObject deletes a data object during query maintenance. State is
// refreshed when the object participated in the prefetched set or its
// influential neighbors; otherwise the removal cannot change R or I(R).
// It is only available on raw-index queries; snapshot-pinned queries
// return ErrReadOnly.
func (q *PlaneQuery) RemoveObject(id int) error {
	if q.raw == nil {
		return ErrReadOnly
	}
	inState := q.UsesObject(id)
	if err := q.raw.Remove(id); err != nil {
		return err
	}
	if q.init && inState {
		return q.recompute(q.lastPos)
	}
	return nil
}
