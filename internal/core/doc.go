// Package core implements the paper's primary contribution: the Influential
// Neighbor Set (INS) algorithm for processing moving k-nearest-neighbor
// (MkNN) queries, in both two-dimensional Euclidean space (PlaneQuery) and
// road networks (NetworkQuery).
//
// Instead of materializing a safe region, the algorithm maintains a small
// set of safe guarding objects. A query's kNN set O' remains valid exactly
// while every member of O' is closer to the query than every member of an
// influential set S (Definition 1: O' = NN_k(q) ⇔ O' ≺_q S). The
// influential neighbor set I(O') — the order-1 Voronoi neighbors of the
// kNN members, minus the members themselves (Definition 4) — is such a set,
// is computable in time linear in k from a precomputed Voronoi diagram, and
// implicitly defines the largest possible safe region (the order-k Voronoi
// cell), so recomputation frequency is minimal.
//
// Query processing follows Section III of the paper: on (re)computation the
// processor fetches the ⌊ρk⌋ nearest objects R (ρ ≥ 1 is the prefetch
// ratio) plus I(R) and ships them to the client. Each timestamp is then
// validated with one O(|R|+|I(R)|) scan: find the farthest current kNN
// member (r.delete) and the nearest influential-set member (r.candidate);
// the kNN set is stale only if r.candidate is closer than r.delete. A stale
// kNN set is first repaired locally by re-ranking R (covering the paper's
// update cases (i) and (ii)); only when R itself is invalidated does the
// processor recompute — a communication event, which the experiments count.
//
// In road networks (Section IV), validation requires shortest-path
// distances. Theorem 1 transfers the INS superset guarantee to network
// Voronoi diagrams, and Theorem 2 confines the validation search to the
// subnetwork covered by the Voronoi cells of the guard objects, which
// NetworkQuery exploits through netvor.Subnetwork.
//
// # Slice ownership
//
// This is the one place the result-slice contract is defined; the facade,
// engine and HTTP layers inherit it rather than restating it.
//
//   - Update (both processors) returns a slice that aliases internal state
//     and is rewritten by the query's next Update/Sync. It is the hot-path
//     result — one call per location update — so the processor does not
//     copy it; a caller that retains it beyond the next call, or hands it
//     to another goroutine, must copy it first. The serving engine copies
//     it once at its boundary (engine.UpdateResult.KNN is freshly
//     allocated), which is where results cross goroutines.
//   - The introspection accessors — Current, Prefetched, INS,
//     InfluenceSet — return freshly allocated copies the caller owns.
//     They are cold paths (rendering, debugging, examples), so the copy
//     is the right default and lets callers sort or mutate freely.
//   - The Append* variants (AppendCurrent, AppendPrefetched, AppendINS)
//     append into a caller-owned buffer and allocate nothing. They exist
//     for single-goroutine hot paths that reuse a scratch buffer — the
//     engine shards capturing delta baselines, the stream publication
//     path — and the copying accessors above remain the public default.
package core
