package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/netvor"
	"repro/internal/roadnet"
)

func buildNetwork(t testing.TB, nVerts, nSites int, seed int64) (*roadnet.Graph, *netvor.Diagram) {
	t.Helper()
	g, err := roadnet.RandomPlanarNetwork(nVerts, testBounds, 0.5, 0.3, seed)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed + 1))
	sites := rng.Perm(nVerts)[:nSites]
	d, err := netvor.Build(g, sites)
	if err != nil {
		t.Fatal(err)
	}
	return g, d
}

// checkNetKNN compares a network kNN result against ground-truth distances
// from a full Dijkstra, tolerating equidistant ties.
func checkNetKNN(t *testing.T, d *netvor.Diagram, pos roadnet.Position, got []int, k int) {
	t.Helper()
	dist := d.Graph().ShortestDistances(pos.Sources(d.Graph()), -1)
	all := make([]float64, 0, len(d.Sites()))
	for _, s := range d.Sites() {
		all = append(all, dist[s])
	}
	sort.Float64s(all)
	if len(got) != k {
		t.Fatalf("result has %d ids, want %d", len(got), k)
	}
	gd := make([]float64, 0, k)
	seen := make(map[int]bool)
	for _, s := range got {
		if seen[s] {
			t.Fatalf("duplicate id %d in %v", s, got)
		}
		seen[s] = true
		gd = append(gd, dist[s])
	}
	sort.Float64s(gd)
	for i := 0; i < k; i++ {
		if math.Abs(gd[i]-all[i]) > 1e-9*(all[i]+1) {
			t.Fatalf("network kNN distance[%d] = %g, want %g (result %v)", i, gd[i], all[i], got)
		}
	}
}

func TestNewNetworkQueryValidation(t *testing.T) {
	_, d := buildNetwork(t, 60, 8, 1)
	if _, err := NewNetworkQuery(d, 0, 1.5); err == nil {
		t.Error("expected error for k=0")
	}
	if _, err := NewNetworkQuery(d, 2, 0.9); err == nil {
		t.Error("expected error for rho<1")
	}
	if _, err := NewNetworkQuery(d, 9, 1.5); err == nil {
		t.Error("expected error for k > site count")
	}
}

func TestNetworkQueryRejectsBadPosition(t *testing.T) {
	_, d := buildNetwork(t, 60, 8, 2)
	q, err := NewNetworkQuery(d, 2, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Update(roadnet.Position{U: 0, V: 59, T: 0.5}); err == nil {
		t.Error("expected error for position on non-edge")
	}
}

func TestNetworkQueryCorrectAlongRoute(t *testing.T) {
	g, d := buildNetwork(t, 300, 40, 3)
	for _, k := range []int{1, 3, 6} {
		for _, rho := range []float64{1.0, 1.6} {
			q, err := NewNetworkQuery(d, k, rho)
			if err != nil {
				t.Fatal(err)
			}
			route, err := roadnet.RandomWalkRoute(g, 0, 3000, int64(k)*7+int64(rho*10))
			if err != nil {
				t.Fatal(err)
			}
			for dist := 0.0; dist <= route.Length(); dist += 5 {
				pos := route.PositionAt(dist)
				got, err := q.Update(pos)
				if err != nil {
					t.Fatal(err)
				}
				checkNetKNN(t, d, pos, got, k)
			}
		}
	}
}

func TestNetworkQueryGridCorrect(t *testing.T) {
	g, err := roadnet.GridNetwork(12, 12, testBounds, 0.2, 0.3, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	sites := rng.Perm(g.NumVertices())[:30]
	d, err := netvor.Build(g, sites)
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewNetworkQuery(d, 5, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	route, err := roadnet.RandomWalkRoute(g, 7, 4000, 6)
	if err != nil {
		t.Fatal(err)
	}
	for dist := 0.0; dist <= route.Length(); dist += 8 {
		pos := route.PositionAt(dist)
		got, err := q.Update(pos)
		if err != nil {
			t.Fatal(err)
		}
		checkNetKNN(t, d, pos, got, 5)
	}
}

func TestNetworkQueryRecomputesRarely(t *testing.T) {
	g, d := buildNetwork(t, 500, 100, 7)
	q, err := NewNetworkQuery(d, 4, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	route, err := roadnet.RandomWalkRoute(g, 3, 5000, 8)
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for dist := 0.0; dist <= route.Length(); dist += 4 {
		if _, err := q.Update(route.PositionAt(dist)); err != nil {
			t.Fatal(err)
		}
		steps++
	}
	m := q.Metrics()
	if m.Timestamps != steps {
		t.Fatalf("Timestamps = %d, want %d", m.Timestamps, steps)
	}
	if m.Recomputations*3 > steps {
		t.Errorf("network INS recomputed too often: %d in %d steps", m.Recomputations, steps)
	}
	if m.DijkstraRuns == 0 || m.EdgeRelaxations == 0 {
		t.Errorf("network cost counters empty: %+v", *m)
	}
}

func TestNetworkQueryStationary(t *testing.T) {
	_, d := buildNetwork(t, 200, 30, 9)
	q, err := NewNetworkQuery(d, 3, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	pos := roadnet.VertexPosition(11)
	for i := 0; i < 30; i++ {
		if _, err := q.Update(pos); err != nil {
			t.Fatal(err)
		}
	}
	if got := q.Metrics().Recomputations; got != 1 {
		t.Errorf("stationary network query recomputed %d times, want 1", got)
	}
}

func TestNetworkSubnetworkSmaller(t *testing.T) {
	g, d := buildNetwork(t, 800, 120, 10)
	q, err := NewNetworkQuery(d, 4, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Update(roadnet.VertexPosition(0)); err != nil {
		t.Fatal(err)
	}
	sub := q.Subnetwork()
	if sub == nil {
		t.Fatal("no subnetwork after first update")
	}
	if sub.G.NumVertices() >= g.NumVertices()/2 {
		t.Errorf("validation subnetwork has %d of %d vertices; expected a strong reduction",
			sub.G.NumVertices(), g.NumVertices())
	}
}

func TestNetworkINSDisjoint(t *testing.T) {
	g, d := buildNetwork(t, 300, 50, 11)
	q, err := NewNetworkQuery(d, 4, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	route, err := roadnet.RandomWalkRoute(g, 2, 1500, 12)
	if err != nil {
		t.Fatal(err)
	}
	for dist := 0.0; dist <= route.Length(); dist += 10 {
		if _, err := q.Update(route.PositionAt(dist)); err != nil {
			t.Fatal(err)
		}
		inR := make(map[int]bool)
		for _, id := range q.Prefetched() {
			inR[id] = true
		}
		for _, id := range q.INS() {
			if inR[id] {
				t.Fatalf("INS member %d is in R", id)
			}
		}
	}
}
