package core

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/index"
	"repro/internal/roadnet"
	"repro/internal/workload"
)

func pinnedNetworkStore(t *testing.T) (*index.Store, *roadnet.Graph, []int) {
	t.Helper()
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(1000, 1000))
	g, err := workload.Network(16, bounds, 3)
	if err != nil {
		t.Fatal(err)
	}
	sites, err := workload.NetworkSites(g, 30, 4)
	if err != nil {
		t.Fatal(err)
	}
	st, err := index.NewStore(index.Config{Network: g, NetworkSites: sites})
	if err != nil {
		t.Fatal(err)
	}
	return st, g, sites
}

// TestNetworkQueryPinnedLifecycle: a pinned network query re-pins across
// site mutations, recomputes exactly when its guard cells are disturbed,
// rejects raw-mode mutations, and releases its pin on Close.
func TestNetworkQueryPinnedLifecycle(t *testing.T) {
	st, g, _ := pinnedNetworkStore(t)
	defer st.Close()

	q, err := NewNetworkQueryPinned(st, 3, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	home := rng.Intn(g.NumVertices())
	for st.Current().Network().IsSite(home) {
		home = rng.Intn(g.NumVertices())
	}
	if _, err := q.Update(roadnet.VertexPosition(home)); err != nil {
		t.Fatal(err)
	}
	if q.Epoch() != 0 {
		t.Fatalf("epoch = %d, want 0", q.Epoch())
	}
	if err := q.InsertSite(home); err != ErrReadOnly {
		t.Fatalf("InsertSite on pinned query = %v, want ErrReadOnly", err)
	}
	if err := q.RemoveSite(home); err != ErrReadOnly {
		t.Fatalf("RemoveSite on pinned query = %v, want ErrReadOnly", err)
	}

	// Inserting a site at the session's own vertex must reach its kNN at
	// the next update (dist 0 beats everything).
	if err := st.InsertSite(home); err != nil {
		t.Fatal(err)
	}
	knn, err := q.Update(roadnet.VertexPosition(home))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, id := range knn {
		found = found || id == home
	}
	if !found {
		t.Fatalf("kNN %v misses the site inserted at the query position %d", knn, home)
	}
	if q.Epoch() != st.Epoch() {
		t.Fatalf("query epoch %d lags store epoch %d after Update", q.Epoch(), st.Epoch())
	}

	// Removing the session's nearest site must evict it.
	if err := st.RemoveSite(home); err != nil {
		t.Fatal(err)
	}
	knn, err = q.Update(roadnet.VertexPosition(home))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range knn {
		if id == home {
			t.Fatalf("kNN %v still contains the removed site %d", knn, home)
		}
	}

	q.Close()
	if n := st.LiveSnapshots(); n != 1 {
		t.Fatalf("live snapshots after Close = %d, want 1 (the store's own pin)", n)
	}
}

// TestNetworkQueryRefreshEager: Refresh recomputes an invalidated session
// at its last position without a location update — the eager-repair hook
// the push pipeline uses.
func TestNetworkQueryRefreshEager(t *testing.T) {
	st, _, _ := pinnedNetworkStore(t)
	defer st.Close()

	q, err := NewNetworkQueryPinned(st, 2, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	home := 0
	for st.Current().Network().IsSite(home) {
		home++
	}
	if _, err := q.Update(roadnet.VertexPosition(home)); err != nil {
		t.Fatal(err)
	}
	recomputes := q.Metrics().Recomputations

	if err := st.InsertSite(home); err != nil {
		t.Fatal(err)
	}
	knn, recomputed, err := q.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if !recomputed {
		t.Fatal("Refresh did not recompute after a site insert at the query position")
	}
	if q.Metrics().Recomputations != recomputes+1 {
		t.Fatalf("recomputations = %d, want %d", q.Metrics().Recomputations, recomputes+1)
	}
	found := false
	for _, id := range knn {
		found = found || id == home
	}
	if !found {
		t.Fatalf("refreshed kNN %v misses the inserted site %d", knn, home)
	}
	// A second Refresh with no new epochs is a no-op.
	if _, recomputed, _ := q.Refresh(); recomputed {
		t.Fatal("idle Refresh recomputed")
	}
}

// TestNetworkQueryLazySkip: a site mutation far outside the session's
// guard cells must NOT invalidate it — the lazy-invalidation filter at
// work on the network side. The test places the session in one corner of
// a large grid and mutates the opposite corner.
func TestNetworkQueryLazySkip(t *testing.T) {
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(1000, 1000))
	g, err := workload.Network(24, bounds, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Sites spread deterministically so both corners have plenty.
	var sites []int
	for v := 0; v < g.NumVertices(); v += 7 {
		sites = append(sites, v)
	}
	st, err := index.NewStore(index.Config{Network: g, NetworkSites: sites})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	q, err := NewNetworkQueryPinned(st, 2, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	if _, err := q.Update(roadnet.VertexPosition(0)); err != nil { // corner vertex
		t.Fatal(err)
	}
	recomputes := q.Metrics().Recomputations

	// Mutate the far corner: vertex ids near NumVertices-1 sit rows away.
	far := g.NumVertices() - 2
	for st.Current().Network().IsSite(far) {
		far--
	}
	if err := st.InsertSite(far); err != nil {
		t.Fatal(err)
	}
	if err := st.RemoveSite(far); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Update(roadnet.VertexPosition(0)); err != nil {
		t.Fatal(err)
	}
	if got := q.Metrics().Recomputations; got != recomputes {
		t.Fatalf("far-corner mutations forced %d recomputations; the lazy filter must skip them", got-recomputes)
	}
	if q.Epoch() != st.Epoch() {
		t.Fatalf("query did not re-pin: epoch %d vs store %d", q.Epoch(), st.Epoch())
	}
}
