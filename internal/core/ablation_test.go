package core

import "testing"

// TestDisableLocalRerankStaysCorrect verifies the A1 ablation knob: with
// the local repair path off, every invalidation recomputes, but results
// must remain exactly correct.
func TestDisableLocalRerankStaysCorrect(t *testing.T) {
	ix := buildIndex(t, 300, 50)
	q, err := NewPlaneQuery(ix, 5, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	q.SetDisableLocalRerank(true)
	for _, p := range walkTrajectory(300, 3, 51) {
		got, err := q.Update(p)
		if err != nil {
			t.Fatal(err)
		}
		checkKNNAgainstBrute(t, ix, p, got, 5)
	}
	m := q.Metrics()
	// With the repair path off, invalidations and recomputations coincide
	// (minus the initial computation).
	if m.Recomputations-1 != m.Invalidations {
		t.Errorf("recomputations-1 = %d, invalidations = %d; every invalidation must recompute",
			m.Recomputations-1, m.Invalidations)
	}
}

// TestRerankSavesRecomputations pins the ablation's direction: enabling
// the repair path must not increase recomputations.
func TestRerankSavesRecomputations(t *testing.T) {
	ix := buildIndex(t, 1000, 52)
	traj := walkTrajectory(800, 2, 53)
	counts := make(map[bool]int)
	for _, disable := range []bool{false, true} {
		q, err := NewPlaneQuery(ix, 5, 1.6)
		if err != nil {
			t.Fatal(err)
		}
		q.SetDisableLocalRerank(disable)
		for _, p := range traj {
			if _, err := q.Update(p); err != nil {
				t.Fatal(err)
			}
		}
		counts[disable] = q.Metrics().Recomputations
	}
	if counts[false] > counts[true] {
		t.Errorf("rerank on: %d recomputations, off: %d — repair path should save work",
			counts[false], counts[true])
	}
}
