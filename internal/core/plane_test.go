package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/vortree"
)

var testBounds = geom.NewRect(geom.Pt(0, 0), geom.Pt(1000, 1000))

func randomPoints(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
	}
	return pts
}

func buildIndex(t testing.TB, n int, seed int64) *vortree.Index {
	t.Helper()
	ix, _, err := vortree.Build(testBounds, 16, randomPoints(n, seed))
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// checkKNNAgainstBrute compares a result set with ground truth by distance
// multiset, which tolerates ties between equally distant objects.
func checkKNNAgainstBrute(t *testing.T, ix *vortree.Index, p geom.Point, got []int, k int) {
	t.Helper()
	ids := ix.Diagram().IDs()
	dists := make([]float64, 0, len(ids))
	for _, id := range ids {
		dists = append(dists, p.Dist2(ix.Point(id)))
	}
	sort.Float64s(dists)
	if len(got) != k {
		t.Fatalf("result has %d ids, want %d", len(got), k)
	}
	gd := make([]float64, 0, k)
	seen := make(map[int]bool)
	for _, id := range got {
		if seen[id] {
			t.Fatalf("duplicate id %d in result %v", id, got)
		}
		seen[id] = true
		gd = append(gd, p.Dist2(ix.Point(id)))
	}
	sort.Float64s(gd)
	for i := 0; i < k; i++ {
		if math.Abs(gd[i]-dists[i]) > 1e-9*(dists[i]+1) {
			t.Fatalf("kNN distance[%d] = %g, want %g (result %v)", i, gd[i], dists[i], got)
		}
	}
}

// walkTrajectory yields random-waypoint positions inside bounds.
func walkTrajectory(steps int, stepLen float64, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pos := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
	target := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
	out := make([]geom.Point, 0, steps)
	for len(out) < steps {
		d := target.Sub(pos)
		n := d.Norm()
		if n < stepLen {
			target = geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
			continue
		}
		pos = pos.Add(d.Scale(stepLen / n))
		out = append(out, pos)
	}
	return out
}

func TestNewPlaneQueryValidation(t *testing.T) {
	ix := buildIndex(t, 10, 1)
	if _, err := NewPlaneQuery(ix, 0, 1.5); err == nil {
		t.Error("expected error for k=0")
	}
	if _, err := NewPlaneQuery(ix, 3, 0.5); err == nil {
		t.Error("expected error for rho<1")
	}
	q, err := NewPlaneQuery(ix, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Update(geom.Pt(1, 1)); err == nil {
		t.Error("expected error for k > n at first update")
	}
}

func TestPlaneQueryEmptyIndex(t *testing.T) {
	ix := vortree.New(testBounds, 16)
	q, err := NewPlaneQuery(ix, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Update(geom.Pt(1, 1)); err == nil {
		t.Error("expected error on empty index")
	}
}

func TestPlaneQueryCorrectAlongTrajectory(t *testing.T) {
	ix := buildIndex(t, 500, 2)
	for _, k := range []int{1, 3, 8} {
		for _, rho := range []float64{1.0, 1.6, 2.5} {
			q, err := NewPlaneQuery(ix, k, rho)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range walkTrajectory(400, 2.5, int64(k*100)+int64(rho*10)) {
				got, err := q.Update(p)
				if err != nil {
					t.Fatal(err)
				}
				checkKNNAgainstBrute(t, ix, p, got, k)
			}
		}
	}
}

func TestPlaneQueryRecomputesRarely(t *testing.T) {
	ix := buildIndex(t, 2000, 3)
	q, err := NewPlaneQuery(ix, 5, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range walkTrajectory(1000, 1.5, 4) {
		if _, err := q.Update(p); err != nil {
			t.Fatal(err)
		}
	}
	m := q.Metrics()
	if m.Timestamps != 1000 {
		t.Fatalf("Timestamps = %d, want 1000", m.Timestamps)
	}
	if m.Recomputations >= m.Timestamps/5 {
		t.Errorf("INS recomputed too often: %d times in %d steps", m.Recomputations, m.Timestamps)
	}
	if m.Recomputations < 1 {
		t.Error("expected at least the initial recomputation")
	}
	if m.Invalidations < m.Recomputations-1 {
		t.Errorf("invalidations (%d) below recomputations (%d)", m.Invalidations, m.Recomputations)
	}
}

func TestPrefetchReducesRecomputations(t *testing.T) {
	ix := buildIndex(t, 2000, 5)
	traj := walkTrajectory(1500, 2, 6)
	recomps := make(map[float64]int)
	for _, rho := range []float64{1.0, 2.0} {
		q, err := NewPlaneQuery(ix, 5, rho)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range traj {
			if _, err := q.Update(p); err != nil {
				t.Fatal(err)
			}
		}
		recomps[rho] = q.Metrics().Recomputations
	}
	if recomps[2.0] > recomps[1.0] {
		t.Errorf("rho=2 recomputed %d times, rho=1 %d times; prefetch should not hurt",
			recomps[2.0], recomps[1.0])
	}
}

func TestPlaneQueryStationaryNeverRecomputes(t *testing.T) {
	ix := buildIndex(t, 300, 7)
	q, err := NewPlaneQuery(ix, 4, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	p := geom.Pt(400, 400)
	for i := 0; i < 50; i++ {
		if _, err := q.Update(p); err != nil {
			t.Fatal(err)
		}
	}
	if got := q.Metrics().Recomputations; got != 1 {
		t.Errorf("stationary query recomputed %d times, want 1", got)
	}
	if got := q.Metrics().Invalidations; got != 0 {
		t.Errorf("stationary query invalidated %d times, want 0", got)
	}
}

func TestInfluenceSetDisjointFromKNN(t *testing.T) {
	ix := buildIndex(t, 400, 8)
	q, err := NewPlaneQuery(ix, 6, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range walkTrajectory(100, 3, 9) {
		if _, err := q.Update(p); err != nil {
			t.Fatal(err)
		}
		inKNN := make(map[int]bool)
		for _, id := range q.Current() {
			inKNN[id] = true
		}
		for _, id := range q.InfluenceSet() {
			if inKNN[id] {
				t.Fatalf("influence set member %d is in the kNN set", id)
			}
		}
	}
}

func TestInsertObjectKeepsResultCorrect(t *testing.T) {
	ix := buildIndex(t, 300, 10)
	q, err := NewPlaneQuery(ix, 5, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	traj := walkTrajectory(300, 2, 12)
	for i, p := range traj {
		got, err := q.Update(p)
		if err != nil {
			t.Fatal(err)
		}
		checkKNNAgainstBrute(t, ix, p, got, 5)
		if i%10 == 5 {
			// Insert sometimes right next to the query, sometimes far away.
			var np geom.Point
			if rng.Intn(2) == 0 {
				np = geom.Pt(p.X+rng.Float64()*20-10, p.Y+rng.Float64()*20-10)
				np.X = math.Min(math.Max(np.X, 0), 1000)
				np.Y = math.Min(math.Max(np.Y, 0), 1000)
			} else {
				np = geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
			}
			if _, err := q.InsertObject(np); err != nil {
				t.Fatal(err)
			}
			// Result must already reflect the insert at the same position.
			got, err := q.Update(p)
			if err != nil {
				t.Fatal(err)
			}
			checkKNNAgainstBrute(t, ix, p, got, 5)
		}
	}
}

func TestRemoveObjectKeepsResultCorrect(t *testing.T) {
	ix := buildIndex(t, 400, 13)
	q, err := NewPlaneQuery(ix, 5, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(14))
	traj := walkTrajectory(300, 2, 15)
	for i, p := range traj {
		got, err := q.Update(p)
		if err != nil {
			t.Fatal(err)
		}
		checkKNNAgainstBrute(t, ix, p, got, 5)
		if i%10 == 5 && ix.Len() > 50 {
			// Remove sometimes a current kNN member (worst case), sometimes
			// a random object.
			var victim int
			if rng.Intn(2) == 0 {
				victim = q.Current()[rng.Intn(len(q.Current()))]
			} else {
				ids := ix.Diagram().IDs()
				victim = ids[rng.Intn(len(ids))]
			}
			if err := q.RemoveObject(victim); err != nil {
				t.Fatal(err)
			}
			got, err := q.Update(p)
			if err != nil {
				t.Fatal(err)
			}
			checkKNNAgainstBrute(t, ix, p, got, 5)
		}
	}
}

func TestValidationIsSound(t *testing.T) {
	// Whenever a step does not recompute and does not re-rank, the kNN set
	// must still be the true kNN set — checked exhaustively against brute
	// force on a small dataset where invalidations are frequent.
	ix := buildIndex(t, 60, 16)
	q, err := NewPlaneQuery(ix, 3, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range walkTrajectory(500, 5, 17) {
		got, err := q.Update(p)
		if err != nil {
			t.Fatal(err)
		}
		checkKNNAgainstBrute(t, ix, p, got, 3)
	}
}

func TestMetricsAccumulate(t *testing.T) {
	ix := buildIndex(t, 200, 18)
	q, _ := NewPlaneQuery(ix, 4, 1.5)
	for _, p := range walkTrajectory(50, 4, 19) {
		if _, err := q.Update(p); err != nil {
			t.Fatal(err)
		}
	}
	m := q.Metrics()
	if m.Timestamps != 50 || m.Validations != 49 {
		t.Errorf("Timestamps=%d Validations=%d, want 50/49", m.Timestamps, m.Validations)
	}
	if m.DistanceCalcs == 0 || m.ObjectsShipped == 0 {
		t.Errorf("cost counters empty: %+v", *m)
	}
	per := m.PerTimestamp()
	if per.Recomputations <= 0 {
		t.Error("per-step recomputation rate should be positive")
	}
}
