package core

import (
	"errors"
	"fmt"

	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/netvor"
	"repro/internal/roadnet"
)

// ErrDisconnected is returned when the query position cannot reach k
// objects on the network.
var ErrDisconnected = errors.New("core: query position cannot reach k objects")

// NetworkQuery is the INS-based moving kNN query in road networks
// (Section IV of the paper). The data objects are the sites of a
// precomputed network Voronoi diagram; the query object moves along the
// network and reports a position (edge + fraction) at every timestamp.
//
// Validation follows Theorem 2: instead of running shortest-path searches
// on the full network, the processor keeps the subnetwork covered by the
// Voronoi cells of the guard objects R ∪ I(R) and ranks the guard objects
// on it. While the top-k on the subnetwork equals the current kNN set, the
// kNN set is valid on the full network.
type NetworkQuery struct {
	d   index.NetworkBackend
	k   int
	rho float64
	m   metrics.Counters

	init  bool
	last  roadnet.Position
	r     []int // prefetched ⌊ρk⌋ nearest sites, ascending network distance at fetch
	ins   []int // I(R) under the network Voronoi diagram
	guard []int // r ∪ ins
	sub   *netvor.Subnetwork
	knn   []int // current kNN set
}

// NewNetworkQuery creates an INS MkNN query over a network Voronoi diagram.
// Parameters mirror NewPlaneQuery.
func NewNetworkQuery(d *netvor.Diagram, k int, rho float64) (*NetworkQuery, error) {
	return newNetworkQuery(d, k, rho)
}

// NewNetworkQueryPinned creates an INS MkNN query served from a shared
// index store's network backend. The network Voronoi diagram has no online
// mutations, so unlike the plane side there is no per-update re-pinning —
// the backend is the same immutable diagram in every snapshot (its reads
// are race-free across sessions).
func NewNetworkQueryPinned(st *index.Store, k int, rho float64) (*NetworkQuery, error) {
	nb := st.Network()
	if nb == nil {
		return nil, errors.New("core: no road network configured")
	}
	return newNetworkQuery(nb, k, rho)
}

func newNetworkQuery(d index.NetworkBackend, k int, rho float64) (*NetworkQuery, error) {
	if err := validateParams(k, rho); err != nil {
		return nil, err
	}
	if d.Len() < k {
		return nil, fmt.Errorf("core: k = %d exceeds site count %d", k, d.Len())
	}
	return &NetworkQuery{d: d, k: k, rho: rho}, nil
}

// Name identifies the processor in simulation reports.
func (q *NetworkQuery) Name() string { return "ins-network" }

// K returns the query parameter k.
func (q *NetworkQuery) K() int { return q.k }

// Metrics returns the accumulated cost counters.
func (q *NetworkQuery) Metrics() *metrics.Counters { return &q.m }

// AppendCurrent appends the current kNN set onto dst — the zero-copy
// accessor for callers that own a reusable buffer.
func (q *NetworkQuery) AppendCurrent(dst []int) []int { return append(dst, q.knn...) }

// Current returns the current kNN set as a fresh copy; see the package
// slice-ownership contract.
func (q *NetworkQuery) Current() []int { return append([]int(nil), q.knn...) }

// INS returns I(R) as a fresh copy.
func (q *NetworkQuery) INS() []int { return append([]int(nil), q.ins...) }

// Prefetched returns R as a fresh copy.
func (q *NetworkQuery) Prefetched() []int { return append([]int(nil), q.r...) }

// Subnetwork returns the current Theorem-2 validation subnetwork.
func (q *NetworkQuery) Subnetwork() *netvor.Subnetwork { return q.sub }

func (q *NetworkQuery) prefetchSize() int {
	m := int(q.rho * float64(q.k))
	if m < q.k {
		m = q.k
	}
	if n := len(q.d.Sites()); m > n {
		m = n
	}
	return m
}

// Update processes a location update and returns the current kNN set
// (shared slice; do not modify).
func (q *NetworkQuery) Update(pos roadnet.Position) ([]int, error) {
	q.m.Timestamps++
	if err := pos.Validate(q.d.Graph()); err != nil {
		return nil, err
	}
	q.last = pos
	if !q.init {
		if err := q.recompute(pos); err != nil {
			return nil, err
		}
		q.init = true
		return q.knn, nil
	}

	q.m.Validations++
	// One bounded Dijkstra on the guard subnetwork, stopped as soon as k
	// guard objects are settled; Theorem 2 certifies the kNN set when the
	// subnetwork top-k matches it. This is the common, cheap path.
	relaxBefore := q.sub.G.EdgeRelaxations()
	topK, _ := q.sub.KNNSites(pos, q.guard, q.k)
	q.m.DijkstraRuns++
	q.m.EdgeRelaxations += q.sub.G.EdgeRelaxations() - relaxBefore
	if len(topK) >= q.k && sameSet(topK, q.knn) {
		return q.knn, nil
	}
	q.m.Invalidations++

	// Stale: rank the whole prefetched set to see whether R survived.
	relaxBefore = q.sub.G.EdgeRelaxations()
	ranked, _ := q.sub.KNNSites(pos, q.guard, len(q.r))
	q.m.DijkstraRuns++
	q.m.EdgeRelaxations += q.sub.G.EdgeRelaxations() - relaxBefore

	// Update cases (i)/(ii): if R as a whole is still the valid prefetch
	// set, the subnetwork distances to its members are exact and the new
	// kNN set is the subnetwork top-k — composed locally, no
	// recomputation.
	if len(ranked) >= len(q.r) && sameSet(ranked[:len(q.r)], q.r) {
		q.knn = append([]int(nil), ranked[:q.k]...)
		return q.knn, nil
	}
	if err := q.recompute(pos); err != nil {
		return nil, err
	}
	return q.knn, nil
}

// recompute fetches R and I(R) with incremental network expansion on the
// full network and rebuilds the Theorem-2 subnetwork.
func (q *NetworkQuery) recompute(pos roadnet.Position) error {
	q.m.Recomputations++
	m := q.prefetchSize()
	ids, _, relaxed := q.d.KNNWithDistancesCounted(pos, m)
	q.m.DijkstraRuns++
	q.m.EdgeRelaxations += relaxed
	if len(ids) < q.k {
		return fmt.Errorf("%w: found %d of %d", ErrDisconnected, len(ids), q.k)
	}
	q.r = ids
	ins, err := q.d.INS(q.r)
	if err != nil {
		return fmt.Errorf("core: network INS: %w", err)
	}
	q.ins = ins
	q.guard = append(append([]int(nil), q.r...), q.ins...)
	q.sub = q.d.Subnetwork(q.guard)
	q.knn = append([]int(nil), q.r[:q.k]...)
	q.m.ObjectsShipped += len(q.r) + len(q.ins)
	return nil
}

func sameSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	m := make(map[int]int, len(a))
	for _, x := range a {
		m[x]++
	}
	for _, x := range b {
		if m[x] == 0 {
			return false
		}
		m[x]--
	}
	return true
}
