package core

import (
	"errors"
	"fmt"

	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/netvor"
	"repro/internal/roadnet"
)

// ErrDisconnected is returned when the query position cannot reach k
// objects on the network.
var ErrDisconnected = errors.New("core: query position cannot reach k objects")

// NetworkQuery is the INS-based moving kNN query in road networks
// (Section IV of the paper). The data objects are the sites of a network
// Voronoi diagram; the query object moves along the network and reports a
// position (edge + fraction) at every timestamp.
//
// Validation follows Theorem 2: instead of running shortest-path searches
// on the full network, the processor keeps the subnetwork covered by the
// Voronoi cells of the guard objects R ∪ I(R) and ranks the guard objects
// on it. While the top-k on the subnetwork equals the current kNN set, the
// kNN set is valid on the full network.
//
// Like PlaneQuery, a network query resolves its diagram through one of two
// handles: NewNetworkQuery binds it to a raw diagram it may also mutate
// (the single-threaded experiment mode), while NewNetworkQueryPinned pins
// it to the immutable snapshots of an index.Store shared with other
// sessions — every Update then lazily re-pins to the newest snapshot,
// invalidating the client state only when a skipped site mutation could
// disturb its guard cells.
type NetworkQuery struct {
	d   index.NetworkBackend
	k   int
	rho float64
	m   metrics.Counters

	// Exactly one of raw / store is set. snap is the pinned snapshot
	// (store mode), released on Close or when re-pinning.
	raw   *netvor.Diagram
	store *index.Store
	snap  *index.Snapshot

	init    bool
	located bool // Update has been called at least once; last is meaningful
	last    roadnet.Position
	r       []int // prefetched ⌊ρk⌋ nearest sites, ascending network distance at fetch
	ins     []int // I(R) under the network Voronoi diagram
	guard   []int // r ∪ ins
	sub     *netvor.Subnetwork
	knn     []int // current kNN set

	// Reusable per-query working memory mirroring PlaneQuery: the Dijkstra
	// scratch of every network search plus the backing buffers r/ins/guard/
	// knn alias into. Slices returned by Update are rewritten by the next
	// Update/Sync/Refresh — the package's slice-ownership contract. sc
	// defaults to the session-owned ownSc; UseScratch swaps in a shared
	// (e.g. per-shard) scratch so its dense arrays are paid for once, not
	// per session. subBuf retains the extracted subnetwork's storage across
	// Invalidate so recomputes stop allocating.
	sc       *netvor.SearchScratch
	ownSc    netvor.SearchScratch
	subBuf   *netvor.Subnetwork
	setBuf   map[int]int
	rBuf     []int
	insBuf   []int
	guardBuf []int
	knnBuf   []int
	topkBuf  []int
	rankBuf  []int
	dsBuf    []float64
}

// NewNetworkQuery creates an INS MkNN query over a network Voronoi diagram
// the caller owns (and may mutate through InsertSite/RemoveSite).
// Parameters mirror NewPlaneQuery.
func NewNetworkQuery(d *netvor.Diagram, k int, rho float64) (*NetworkQuery, error) {
	q, err := newNetworkQuery(d, k, rho)
	if err != nil {
		return nil, err
	}
	q.raw = d
	return q, nil
}

// NewNetworkQueryPinned creates an INS MkNN query served from a shared
// index store's network backend. The query pins the current snapshot and
// re-pins lazily at each Update, replaying the store's mutation log over
// its guard sets exactly like the plane side; call Close when the session
// ends so old snapshots can be collected.
func NewNetworkQueryPinned(st *index.Store, k int, rho float64) (*NetworkQuery, error) {
	if !st.HasNetwork() {
		return nil, errors.New("core: no road network configured")
	}
	snap := st.Acquire()
	if snap == nil {
		return nil, fmt.Errorf("core: %w", index.ErrClosed)
	}
	q, err := newNetworkQuery(snap.Network(), k, rho)
	if err != nil {
		snap.Release()
		return nil, err
	}
	q.store, q.snap = st, snap
	return q, nil
}

func newNetworkQuery(d index.NetworkBackend, k int, rho float64) (*NetworkQuery, error) {
	if err := validateParams(k, rho); err != nil {
		return nil, err
	}
	if d.Len() < k {
		return nil, fmt.Errorf("core: k = %d exceeds site count %d", k, d.Len())
	}
	q := &NetworkQuery{d: d, k: k, rho: rho}
	q.sc = &q.ownSc
	return q, nil
}

// UseScratch makes the query run its network searches through the given
// shared scratch instead of its own. The serving engine passes one scratch
// per shard: a shard's sessions run serially on its worker goroutine, so
// sharing is race-free and the scratch's dense per-vertex arrays (sized by
// the road network) are allocated once per shard rather than per session.
func (q *NetworkQuery) UseScratch(sc *netvor.SearchScratch) {
	if sc != nil {
		q.sc = sc
	}
}

// Name identifies the processor in simulation reports.
func (q *NetworkQuery) Name() string { return "ins-network" }

// K returns the query parameter k.
func (q *NetworkQuery) K() int { return q.k }

// Metrics returns the accumulated cost counters.
func (q *NetworkQuery) Metrics() *metrics.Counters { return &q.m }

// AppendCurrent appends the current kNN set onto dst — the zero-copy
// accessor for callers that own a reusable buffer.
func (q *NetworkQuery) AppendCurrent(dst []int) []int { return append(dst, q.knn...) }

// Current returns the current kNN set as a fresh copy; see the package
// slice-ownership contract.
func (q *NetworkQuery) Current() []int { return append([]int(nil), q.knn...) }

// INS returns I(R) as a fresh copy.
func (q *NetworkQuery) INS() []int { return append([]int(nil), q.ins...) }

// Prefetched returns R as a fresh copy.
func (q *NetworkQuery) Prefetched() []int { return append([]int(nil), q.r...) }

// Subnetwork returns the current Theorem-2 validation subnetwork. Its
// storage is reused by the next recomputation — read it before the next
// Update/Refresh, per the package's slice-ownership contract.
func (q *NetworkQuery) Subnetwork() *netvor.Subnetwork { return q.sub }

// Sync re-pins a snapshot-backed query to the newest published snapshot
// (a no-op for raw-diagram queries and when already current). If any
// network-site mutation between the pinned and the newest epoch can
// disturb the query's guard cells — the new site's cell touches a guard
// member's, the site lands inside the Theorem-2 subnetwork, or a removed
// site participates in (or neighbors) the guard set — the client state is
// invalidated and the next Update recomputes; otherwise the existing state
// carries over unchanged. Plane ops in the shared log are skipped: they
// cannot affect a network session.
func (q *NetworkQuery) Sync() {
	if q.store == nil || q.snap == nil {
		return
	}
	cur := q.store.Current()
	if cur.Epoch() == q.snap.Epoch() {
		return
	}
	// Pin first, then read the op window up to the pinned epoch, so no
	// mutation can slip between the window and the snapshot.
	next := q.store.Acquire()
	if next == nil {
		return // store closed: keep serving the already-pinned snapshot
	}
	invalidate := false
	if q.init {
		ops, ok := q.store.OpsSince(q.snap.Epoch(), next.Epoch())
		if !ok {
			invalidate = true // lagged past the log: be conservative
		} else {
			for _, op := range ops {
				if !op.Network {
					continue
				}
				// Affectedness is evaluated against the still-pinned old
				// snapshot's guard state, where every guard site is live.
				switch {
				case op.Conservative:
					invalidate = true
				case op.Insert:
					invalidate = q.AffectedBySiteInsert(op.ID, op.Neighbors)
				default:
					invalidate = q.AffectedBySiteRemove(op.ID, op.Neighbors)
				}
				if invalidate {
					break
				}
			}
		}
	}
	q.snap.Release()
	q.snap = next
	q.d = next.Network()
	if invalidate {
		q.Invalidate()
	}
}

// Refresh turns lazy invalidation into eager repair: it re-pins via Sync
// and, when that invalidated the client state (a skipped site mutation
// disturbed the guard cells), immediately recomputes at the last reported
// position instead of waiting for the next location update. recomputed
// reports whether a recomputation ran; the kNN slice aliases internal
// state under the same contract as Update. The serving engine calls it on
// epoch notifications for sessions with push subscribers.
func (q *NetworkQuery) Refresh() (knn []int, recomputed bool, err error) {
	q.Sync()
	if q.init || !q.located {
		return q.knn, false, nil
	}
	if err := q.recompute(q.last); err != nil {
		return nil, false, err
	}
	q.init = true
	return q.knn, true, nil
}

// Epoch returns the pinned snapshot's epoch (0 for raw-diagram queries).
func (q *NetworkQuery) Epoch() uint64 {
	if q.snap == nil {
		return 0
	}
	return q.snap.Epoch()
}

// Close releases the query's snapshot pin. It is idempotent and a no-op
// for raw-diagram queries; the query must not be used afterwards.
func (q *NetworkQuery) Close() {
	if q.snap != nil {
		q.snap.Release()
		q.snap = nil
	}
}

// Invalidate discards the client-side state (R, I(R), the subnetwork and
// the kNN set) so the next Update performs a full recomputation.
func (q *NetworkQuery) Invalidate() {
	q.init = false
	q.r, q.ins, q.guard, q.knn, q.sub = nil, nil, nil, nil, nil
}

// UsesSite reports whether vertex v participates in the query's guard set
// R ∪ I(R); removing such a site invalidates the client state.
func (q *NetworkQuery) UsesSite(v int) bool {
	for _, s := range q.guard {
		if s == v {
			return true
		}
	}
	return false
}

// AffectedBySiteInsert reports whether a site just inserted at vertex v
// (with its post-insert network Voronoi neighbor list) can change this
// query's prefetched state: it carved territory adjacent to a guard cell
// (any guard member in its neighbor list — capturing territory from a
// guard member always creates that adjacency) or it landed inside the
// Theorem-2 subnetwork, the region every candidate closer than the guard
// radius must occupy. The caller supplies the neighbor list so it is
// looked up once per mutation rather than once per session.
func (q *NetworkQuery) AffectedBySiteInsert(v int, neighbors []int) bool {
	if !q.init {
		return false
	}
	if neighbors == nil {
		return true // unknown adjacency: be conservative
	}
	if q.sub != nil {
		if _, ok := q.sub.ToSub[v]; ok {
			return true
		}
	}
	return q.intersectsGuard(neighbors)
}

// AffectedBySiteRemove reports whether removing the site at vertex v (with
// its pre-removal neighbor list) can change this query's state: the site
// participated in the guard set, or its territory is inherited by a guard
// member (whose cell then grows past the materialized subnetwork).
func (q *NetworkQuery) AffectedBySiteRemove(v int, neighbors []int) bool {
	if !q.init {
		return false
	}
	if q.UsesSite(v) {
		return true
	}
	if neighbors == nil {
		return true
	}
	return q.intersectsGuard(neighbors)
}

// intersectsGuard reports whether any of the listed sites is a guard
// member. Both lists are O(k); no map needed.
func (q *NetworkQuery) intersectsGuard(sites []int) bool {
	for _, s := range sites {
		for _, g := range q.guard {
			if s == g {
				return true
			}
		}
	}
	return false
}

// InsertSite adds a data object at vertex v during query maintenance. The
// prefetched state is refreshed only when the new site can affect it (see
// AffectedBySiteInsert). It is only available on raw-diagram queries;
// snapshot-pinned queries return ErrReadOnly (mutations of a shared index
// go through its index.Store).
func (q *NetworkQuery) InsertSite(v int) error {
	if q.raw == nil {
		return ErrReadOnly
	}
	if err := q.raw.Insert(v); err != nil {
		return err
	}
	if !q.init {
		return nil
	}
	nb, err := q.raw.Neighbors(v)
	if err != nil {
		nb = nil // conservative
	}
	if q.AffectedBySiteInsert(v, nb) {
		return q.recompute(q.last)
	}
	return nil
}

// RemoveSite deletes the data object at vertex v during query
// maintenance; state is refreshed when the removal can affect it (see
// AffectedBySiteRemove). Raw-diagram queries only.
func (q *NetworkQuery) RemoveSite(v int) error {
	if q.raw == nil {
		return ErrReadOnly
	}
	nb, err := q.raw.Neighbors(v)
	if err != nil {
		nb = nil
	}
	if err := q.raw.Remove(v); err != nil {
		return err
	}
	if !q.init {
		return nil
	}
	if q.AffectedBySiteRemove(v, nb) {
		return q.recompute(q.last)
	}
	return nil
}

func (q *NetworkQuery) prefetchSize() int {
	m := int(q.rho * float64(q.k))
	if m < q.k {
		m = q.k
	}
	if n := q.d.Len(); m > n {
		m = n
	}
	return m
}

// Update processes a location update and returns the current kNN set
// (shared slice; do not modify).
func (q *NetworkQuery) Update(pos roadnet.Position) ([]int, error) {
	q.Sync()
	q.m.Timestamps++
	if err := pos.Validate(q.d.Graph()); err != nil {
		return nil, err
	}
	q.last = pos
	q.located = true
	if !q.init {
		if err := q.recompute(pos); err != nil {
			return nil, err
		}
		q.init = true
		return q.knn, nil
	}

	q.m.Validations++
	// One bounded Dijkstra on the guard subnetwork, stopped as soon as k
	// guard objects are settled; Theorem 2 certifies the kNN set when the
	// subnetwork top-k matches it. This is the common, cheap path.
	relaxBefore := q.sub.G.EdgeRelaxations()
	topK, ds := q.sub.AppendKNNSites(pos, q.guard, q.k, q.topkBuf[:0], q.dsBuf[:0], q.sc)
	q.topkBuf, q.dsBuf = topK, ds
	q.m.DijkstraRuns++
	q.m.EdgeRelaxations += q.sub.G.EdgeRelaxations() - relaxBefore
	if len(topK) >= q.k && q.sameSet(topK, q.knn) {
		return q.knn, nil
	}
	q.m.Invalidations++

	// Stale: rank the whole prefetched set to see whether R survived.
	relaxBefore = q.sub.G.EdgeRelaxations()
	ranked, ds2 := q.sub.AppendKNNSites(pos, q.guard, len(q.r), q.rankBuf[:0], q.dsBuf[:0], q.sc)
	q.rankBuf, q.dsBuf = ranked, ds2
	q.m.DijkstraRuns++
	q.m.EdgeRelaxations += q.sub.G.EdgeRelaxations() - relaxBefore

	// Update cases (i)/(ii): if R as a whole is still the valid prefetch
	// set, the subnetwork distances to its members are exact and the new
	// kNN set is the subnetwork top-k — composed locally, no
	// recomputation.
	if len(ranked) >= len(q.r) && q.sameSet(ranked[:len(q.r)], q.r) {
		q.knnBuf = append(q.knnBuf[:0], ranked[:q.k]...)
		q.knn = q.knnBuf
		return q.knn, nil
	}
	if err := q.recompute(pos); err != nil {
		return nil, err
	}
	return q.knn, nil
}

// recompute fetches R and I(R) with incremental network expansion on the
// full network and rebuilds the Theorem-2 subnetwork.
func (q *NetworkQuery) recompute(pos roadnet.Position) error {
	if q.d.Len() < q.k {
		return fmt.Errorf("core: k = %d exceeds site count %d", q.k, q.d.Len())
	}
	q.m.Recomputations++
	m := q.prefetchSize()
	ids, ds, relaxed := q.d.AppendKNN(pos, m, q.rBuf[:0], q.dsBuf[:0], q.sc)
	q.rBuf, q.dsBuf = ids, ds
	q.m.DijkstraRuns++
	q.m.EdgeRelaxations += relaxed
	if len(ids) < q.k {
		return fmt.Errorf("%w: found %d of %d", ErrDisconnected, len(ids), q.k)
	}
	q.r = ids
	ins, err := q.d.AppendINS(q.r, q.insBuf[:0], q.sc)
	if err != nil {
		return fmt.Errorf("core: network INS: %w", err)
	}
	q.insBuf, q.ins = ins, ins
	guard := append(q.guardBuf[:0], q.r...)
	guard = append(guard, q.ins...)
	q.guardBuf, q.guard = guard, guard
	q.subBuf = q.d.SubnetworkInto(q.guard, q.subBuf, q.sc)
	q.sub = q.subBuf
	q.knn = q.r[:q.k]
	q.m.ObjectsShipped += len(q.r) + len(q.ins)
	return nil
}

// sameSet reports set equality of two id lists using the query's reusable
// membership scratch, so the per-update validation allocates nothing. At
// kNN sizes (k, or the prefetch m) a quadratic scan beats hashing, so the
// map only backs lists longer than a cache line's worth of ids.
func (q *NetworkQuery) sameSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	if len(a) <= 32 {
	outer:
		for _, x := range b {
			for _, y := range a {
				if x == y {
					continue outer
				}
			}
			return false
		}
		return true
	}
	if q.setBuf == nil {
		q.setBuf = make(map[int]int, len(a))
	} else {
		clear(q.setBuf)
	}
	for _, x := range a {
		q.setBuf[x]++
	}
	for _, x := range b {
		if q.setBuf[x] == 0 {
			return false
		}
		q.setBuf[x]--
	}
	return true
}
