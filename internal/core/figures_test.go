package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/netvor"
	"repro/internal/roadnet"
	"repro/internal/voronoi"
	"repro/internal/vortree"
)

// fig1Points realizes the configuration of Figure 1 of the paper: twelve
// data objects p1..p12 (index i holds p_{i+1}) such that the 3NN set of the
// query location fig1Q is O' = {p4, p6, p7}, and the order-3 Voronoi cell
// of O' has exactly six neighboring order-3 cells obtained by the swaps
// p4→{p3, p10, p12} and p6→{p3, p5, p10} (p7 is never swapped out), giving
// MIS(O') = {p3, p5, p10, p12}. The paper's figure fixes the combinatorial
// structure, not coordinates; these coordinates were found by search and
// verified to have exactly that structure.
var fig1Points = []geom.Point{
	{X: 15.770759, Y: 80.855149}, // p1
	{X: 87.565839, Y: 27.022628}, // p2
	{X: 18.620682, Y: 31.596452}, // p3
	{X: 26.198834, Y: 63.848004}, // p4
	{X: 15.132619, Y: 35.645693}, // p5
	{X: 46.591356, Y: 32.984624}, // p6
	{X: 42.450423, Y: 40.626163}, // p7
	{X: 86.705380, Y: 85.629398}, // p8
	{X: 24.708641, Y: 18.263631}, // p9
	{X: 43.446181, Y: 77.920094}, // p10
	{X: 82.651417, Y: 11.966606}, // p11
	{X: 80.862036, Y: 52.013293}, // p12
}

var fig1Q = geom.Pt(50, 50)

var fig1Bounds = geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))

// paperID converts a 0-based diagram id to the paper's 1-based label.
func paperID(id int) int { return id + 1 }

func TestFig1MIS(t *testing.T) {
	d, ids, err := voronoi.Build(fig1Bounds, fig1Points)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 12 {
		t.Fatalf("fixture built %d sites, want 12", len(ids))
	}
	knn := d.KNN(fig1Q, 3)
	gotKNN := toPaper(knn)
	if !equalSorted(gotKNN, []int{4, 6, 7}) {
		t.Fatalf("3NN = %v, want {p4, p6, p7}", gotKNN)
	}
	ins, err := d.INS(knn)
	if err != nil {
		t.Fatal(err)
	}
	mis, err := d.MIS(knn, ins)
	if err != nil {
		t.Fatal(err)
	}
	gotMIS := toPaper(mis)
	if !equalSorted(gotMIS, []int{3, 5, 10, 12}) {
		t.Fatalf("MIS = %v, want {p3, p5, p10, p12} (Figure 1)", gotMIS)
	}
	// Theorem: MIS ⊆ INS.
	insSet := make(map[int]bool)
	for _, id := range ins {
		insSet[id] = true
	}
	for _, id := range mis {
		if !insSet[id] {
			t.Fatalf("MIS member p%d not in INS %v", paperID(id), toPaper(ins))
		}
	}
}

// TestFig1NeighboringCells verifies the six neighboring order-3 cells of
// Figure 1: each MIS member x enters by swapping out a specific kNN member,
// and the resulting triples match the figure's labels (6,7,12), (3,6,7),
// (3,4,7), (4,5,7), (4,7,10), (6,7,10).
func TestFig1NeighboringCells(t *testing.T) {
	d, _, err := voronoi.Build(fig1Bounds, fig1Points)
	if err != nil {
		t.Fatal(err)
	}
	knn := d.KNN(fig1Q, 3)
	ins, err := d.INS(knn)
	if err != nil {
		t.Fatal(err)
	}
	cell, err := d.OrderKCell(knn, ins)
	if err != nil {
		t.Fatal(err)
	}
	// Recover the swap (o, x) supporting each cell edge: the edge lies on
	// the bisector of exactly one kNN member o and one outside object x.
	wantTriples := map[[3]int]bool{
		{6, 7, 12}: true,
		{3, 6, 7}:  true,
		{3, 4, 7}:  true,
		{4, 5, 7}:  true,
		{4, 7, 10}: true,
		{6, 7, 10}: true,
	}
	gotTriples := make(map[[3]int]bool)
	for i := range cell {
		a, b := cell[i], cell[(i+1)%len(cell)]
		mid := geom.Mid(a, b)
		var swapO, swapX = -1, -1
		for _, o := range knn {
			for _, x := range ins {
				po, px := d.Site(o), d.Site(x)
				if onBisector(a, po, px) && onBisector(b, po, px) && onBisector(mid, po, px) {
					swapO, swapX = o, x
				}
			}
		}
		if swapO < 0 {
			continue // bounding-box edge
		}
		var triple []int
		for _, o := range knn {
			if o != swapO {
				triple = append(triple, paperID(o))
			}
		}
		triple = append(triple, paperID(swapX))
		sort.Ints(triple)
		gotTriples[[3]int{triple[0], triple[1], triple[2]}] = true
	}
	if len(gotTriples) != len(wantTriples) {
		t.Fatalf("found %d neighboring cells %v, want %d", len(gotTriples), keys(gotTriples), len(wantTriples))
	}
	for tr := range wantTriples {
		if !gotTriples[tr] {
			t.Errorf("missing neighboring cell V3(p%d, p%d, p%d)", tr[0], tr[1], tr[2])
		}
	}
}

func onBisector(p, a, b geom.Point) bool {
	da, db := p.Dist(a), p.Dist(b)
	return math.Abs(da-db) < 1e-6*(da+db+1)
}

func keys(m map[[3]int]bool) [][3]int {
	var out [][3]int
	for k := range m {
		out = append(out, k)
	}
	return out
}

func toPaper(ids []int) []int {
	out := make([]int, len(ids))
	for i, id := range ids {
		out[i] = paperID(id)
	}
	sort.Ints(out)
	return out
}

func equalSorted(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFig4ValidationEquivalence reproduces the scenario of Figure 4: the
// kNN set is invalidated exactly when the query object leaves the order-k
// Voronoi cell — equivalently, when the "green circle" through the
// farthest kNN member grows past the "red circle" through the nearest
// influential neighbor. The test walks a query across the space and checks
// that the processor's invalidation signal coincides with cell exit
// (skipping steps that land within numerical slack of the cell boundary).
func TestFig4ValidationEquivalence(t *testing.T) {
	pts := randomPoints(200, 44)
	ix, _, err := vortree.Build(testBounds, 16, pts)
	if err != nil {
		t.Fatal(err)
	}
	d := ix.Diagram()
	q, err := NewPlaneQuery(ix, 5, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	traj := walkTrajectory(600, 3, 45)
	if _, err := q.Update(traj[0]); err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, p := range traj[1:] {
		// Compute the strict safe region of the *current* kNN set before
		// the update.
		knn := append([]int(nil), q.Current()...)
		ins, err := d.INS(knn)
		if err != nil {
			t.Fatal(err)
		}
		cell, err := d.OrderKCell(knn, ins)
		if err != nil {
			t.Fatal(err)
		}
		inside := cell.Contains(p)
		// Skip near-boundary steps where float tolerances may disagree.
		if nearBoundary(cell, p, 1e-6) {
			if _, err := q.Update(p); err != nil {
				t.Fatal(err)
			}
			continue
		}
		invBefore := q.Metrics().Invalidations
		if _, err := q.Update(p); err != nil {
			t.Fatal(err)
		}
		invalidated := q.Metrics().Invalidations > invBefore
		if inside && invalidated {
			t.Fatalf("query at %v is inside the order-k cell but was invalidated", p)
		}
		if !inside && !invalidated {
			t.Fatalf("query at %v left the order-k cell but was not invalidated", p)
		}
		checked++
	}
	if checked < 500 {
		t.Fatalf("only %d steps checked", checked)
	}
}

// nearBoundary reports whether p lies within slack of the cell boundary,
// where slack scales with the data-space extent.
func nearBoundary(cell geom.Polygon, p geom.Point, eps float64) bool {
	slack := eps * 1e3
	for i := range cell {
		s := geom.Segment{A: cell[i], B: cell[(i+1)%len(cell)]}
		if s.DistPoint(p) < slack {
			return true
		}
	}
	return false
}

// TestTheorem1OnRandomNetworks verifies Theorem 1 (MIS ⊆ INS in road
// networks) with a brute-force MIS: sample positions densely along every
// edge, compute each sample's exact kNN set, and collect the kNN sets of
// regions adjacent to the region of O'. Everything entering by a single
// swap must be an INS member.
func TestTheorem1OnRandomNetworks(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		g, err := roadnet.RandomPlanarNetwork(40, testBounds, 0.5, 0.2, int64(trial)+100)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(trial) + 200))
		sites := rng.Perm(40)[:12]
		d, err := netvor.Build(g, sites)
		if err != nil {
			t.Fatal(err)
		}
		const k = 2
		// Reference kNN set at a random vertex.
		v0 := rng.Intn(40)
		knn := d.KNN(roadnet.VertexPosition(v0), k)
		ins, err := d.INS(knn)
		if err != nil {
			t.Fatal(err)
		}
		insSet := make(map[int]bool)
		for _, s := range ins {
			insSet[s] = true
		}
		knnSet := make(map[int]bool)
		for _, s := range knn {
			knnSet[s] = true
		}
		mis := bruteNetworkMIS(g, d, sites, knn, k)
		for _, x := range mis {
			if !insSet[x] && !knnSet[x] {
				t.Fatalf("trial %d: brute-force MIS member %d not in INS %v (knn %v)",
					trial, x, ins, knn)
			}
		}
	}
}

// bruteNetworkMIS computes the objects that can enter the kNN set by a
// single region crossing: sample positions along all edges, find samples
// whose kNN set differs from knnRef by exactly one object while being
// adjacent (consecutive samples) to a sample with set knnRef.
func bruteNetworkMIS(g *roadnet.Graph, d *netvor.Diagram, sites, knnRef []int, k int) []int {
	ref := make(map[int]bool, len(knnRef))
	for _, s := range knnRef {
		ref[s] = true
	}
	const samples = 24
	var mis []int
	seen := make(map[int]bool)
	g.Edges(func(u, v int, w float64) {
		prevSets := make([]map[int]bool, 0, samples+1)
		for i := 0; i <= samples; i++ {
			pos := roadnet.Position{U: u, V: v, T: float64(i) / samples}
			knn := d.KNN(pos, k)
			set := make(map[int]bool, k)
			for _, s := range knn {
				set[s] = true
			}
			prevSets = append(prevSets, set)
		}
		for i := 1; i <= samples; i++ {
			a, b := prevSets[i-1], prevSets[i]
			if isRef(a, ref) && !isRef(b, ref) {
				collectSwap(b, ref, &mis, seen)
			}
			if isRef(b, ref) && !isRef(a, ref) {
				collectSwap(a, ref, &mis, seen)
			}
		}
	})
	return mis
}

func isRef(set, ref map[int]bool) bool {
	if len(set) != len(ref) {
		return false
	}
	for s := range set {
		if !ref[s] {
			return false
		}
	}
	return true
}

// collectSwap records the objects of set that are not in ref, but only when
// the two sets differ by exactly one object (a true neighboring region).
func collectSwap(set, ref map[int]bool, mis *[]int, seen map[int]bool) {
	var entered []int
	for s := range set {
		if !ref[s] {
			entered = append(entered, s)
		}
	}
	if len(entered) != 1 {
		return
	}
	if !seen[entered[0]] {
		seen[entered[0]] = true
		*mis = append(*mis, entered[0])
	}
}

// TestFig2Structure builds a small fixed road network in the spirit of
// Figure 2 (order-2 network Voronoi diagram) and checks the paper's
// mid-point argument: for every pair (p, p') with p in the kNN set and p'
// in the brute-force MIS, some point b on a shortest path between them is
// equidistant from both, and no object outside kNN ∪ INS is closer to b —
// which is exactly why p' must be an order-1 Voronoi neighbor of p and
// hence a member of the INS.
func TestFig2Structure(t *testing.T) {
	// A two-corridor network with 14 vertices, like the figure's sketch.
	g := roadnet.NewGraph()
	coords := []geom.Point{
		{X: 0, Y: 100}, {X: 80, Y: 110}, {X: 160, Y: 100}, {X: 240, Y: 105}, // v1..v4 top
		{X: 320, Y: 100}, {X: 40, Y: 50}, {X: 120, Y: 55}, {X: 200, Y: 50}, // v5..v8 middle
		{X: 280, Y: 55}, {X: 0, Y: 0}, {X: 80, Y: 5}, {X: 160, Y: 0}, // v9..v12 bottom
		{X: 240, Y: 5}, {X: 320, Y: 0}, // v13, v14
	}
	for _, c := range coords {
		g.AddVertex(c)
	}
	edges := [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, // top corridor
		{9, 10}, {10, 11}, {11, 12}, {12, 13}, // bottom corridor
		{0, 5}, {5, 9}, {1, 6}, {6, 10}, {2, 7}, {7, 11}, {3, 8}, {8, 12}, {4, 8}, {5, 6}, {6, 7}, {7, 8},
	}
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1], 0); err != nil {
			t.Fatal(err)
		}
	}
	sites := []int{0, 2, 4, 6, 8, 9, 11, 13, 3} // nine objects p1..p9
	d, err := netvor.Build(g, sites)
	if err != nil {
		t.Fatal(err)
	}
	const k = 2
	pos := roadnet.VertexPosition(7)
	knn := d.KNN(pos, k)
	ins, err := d.INS(knn)
	if err != nil {
		t.Fatal(err)
	}
	guardSet := make(map[int]bool)
	for _, s := range knn {
		guardSet[s] = true
	}
	for _, s := range ins {
		guardSet[s] = true
	}
	mis := bruteNetworkMIS(g, d, sites, knn, k)
	if len(mis) == 0 {
		t.Fatal("fixture produced an empty MIS; not exercising the theorem")
	}
	for _, x := range mis {
		if !guardSet[x] {
			t.Fatalf("MIS member %d not in kNN ∪ INS", x)
		}
	}
	// Mid-point witness: every MIS member x pairs with SOME kNN member p
	// such that the point b halfway along their shortest path satisfies
	// d(b,p) = d(b,x) with no object outside kNN ∪ INS nearer to b — the
	// construction in the paper's proof sketch (its (p7, p8) pair with
	// midpoint b in Figure 2). That witness is what makes x an order-1
	// Voronoi neighbor of p and hence an INS member.
	for _, x := range mis {
		witnessed := false
		for _, p := range knn {
			if p == x {
				continue
			}
			b, ok := equidistantPoint(g, p, x)
			if !ok {
				continue
			}
			db := g.ShortestDistances(b.Sources(g), -1)
			clean := true
			for _, s := range sites {
				if guardSet[s] {
					continue
				}
				if db[s] < db[p]-1e-9 && db[s] < db[x]-1e-9 {
					clean = false
					break
				}
			}
			if clean {
				witnessed = true
				break
			}
		}
		if !witnessed {
			t.Fatalf("MIS member %d has no mid-point witness with any kNN member", x)
		}
	}
}

// equidistantPoint finds a position b on a shortest path between vertices p
// and x with d(b,p) == d(b,x), walking the path edge by edge.
func equidistantPoint(g *roadnet.Graph, p, x int) (roadnet.Position, bool) {
	path, total, ok := g.ShortestPath(p, x)
	if !ok {
		return roadnet.Position{}, false
	}
	half := total / 2
	var acc float64
	for i := 1; i < len(path); i++ {
		w, _ := g.EdgeWeight(path[i-1], path[i])
		if acc+w >= half {
			tfrac := (half - acc) / w
			return roadnet.Position{U: path[i-1], V: path[i], T: tfrac}, true
		}
		acc += w
	}
	return roadnet.VertexPosition(x), true
}
