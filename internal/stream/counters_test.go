package stream

import "testing"

// TestPerSubscriberCounters asserts that a stalled subscriber's drops and
// coalesces are attributed to it alone, so benchmarks can separate a stall
// probe from healthy-path delivery.
func TestPerSubscriberCounters(t *testing.T) {
	b := NewBroker(0)
	defer b.Close()
	fast := b.Subscribe(0)
	slow := b.Subscribe(2) // overflows after two distinct sessions
	defer fast.Close()
	defer slow.Close()

	for sid := uint64(1); sid <= 4; sid++ {
		b.Publish(Event{Session: sid, Seq: 1, Cause: CauseMove, KNN: []int{int(sid)}})
	}
	b.Publish(Event{Session: 4, Seq: 2, Cause: CauseMove, KNN: []int{9}}) // coalesces on both

	for ev, ok := fast.Next(); ok; ev, ok = fast.Next() {
		_ = ev
	}
	if got := fast.Delivered(); got != 4 {
		t.Fatalf("fast delivered = %d, want 4", got)
	}
	if fast.Dropped() != 0 {
		t.Fatalf("fast dropped = %d, want 0", fast.Dropped())
	}
	if fast.Coalesced() != 1 {
		t.Fatalf("fast coalesced = %d, want 1", fast.Coalesced())
	}
	if slow.Delivered() != 0 {
		t.Fatalf("slow delivered = %d, want 0", slow.Delivered())
	}
	if got := slow.Dropped(); got != 2 {
		t.Fatalf("slow dropped = %d, want 2", got)
	}
	if got := slow.Coalesced(); got != 1 {
		t.Fatalf("slow coalesced = %d, want 1", got)
	}
	st := b.Stats()
	if st.Dropped != slow.Dropped() || st.Coalesced != fast.Coalesced()+slow.Coalesced() {
		t.Fatalf("broker totals diverge from per-subscriber counters: %+v", st)
	}
}
