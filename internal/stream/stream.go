// Package stream is the continuous-query push subsystem: a subscription
// broker that fans incremental kNN result events out to long-lived
// subscribers (SSE connections, in-process consumers).
//
// The serving engine publishes one Event per observable result change of a
// watched session — the session moved and its kNN membership changed, or a
// data update (object insert/delete) invalidated it and the engine
// recomputed eagerly. The broker delivers each event to every subscriber
// watching that session through a per-subscriber bounded queue.
//
// Slow consumers can never stall a publisher or grow broker memory
// unboundedly; the two pressure valves are explicit and observable in
// Stats:
//
//   - Coalescing (latest-result-wins): a subscriber holds at most one
//     pending event per session. A newer event for the same session merges
//     into the pending one — the full kNN set is replaced and the
//     added/removed delta is recomputed against the pending event's
//     baseline, so the merged delta is exactly what a consumer that missed
//     the intermediate state needs. Sequence numbers jump across a
//     coalesce, which is how consumers detect it.
//   - Overflow (drop-oldest): a subscriber queues at most depth distinct
//     sessions. When a fresh session arrives at a full queue, the oldest
//     pending event is dropped and counted; the consumer re-baselines that
//     session from the next event's full kNN set.
//
// Publish never blocks: it takes the subscriber lock, updates the pending
// map, and does a non-blocking wake send. With no subscribers it is one
// atomic load, so the serving hot path pays nothing for the subsystem
// until someone listens.
package stream

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
)

// Cause classifies why an event was emitted.
type Cause string

// Event causes. Snapshot and Bye are synthesized by the transport layer
// (an SSE handler's initial state and shutdown farewell); the broker
// itself publishes Move, Data and Close events.
const (
	// CauseSnapshot is a transport-synthesized baseline: the session's
	// current kNN set at subscribe time.
	CauseSnapshot Cause = "snapshot"
	// CauseMove: the session processed a location update and its kNN
	// membership changed.
	CauseMove Cause = "move"
	// CauseData: a data update (object insert/delete) invalidated the
	// session and the engine recomputed its kNN eagerly.
	CauseData Cause = "data"
	// CauseClose: the session was closed; no further events follow.
	CauseClose Cause = "close"
	// CauseBye is a transport-synthesized farewell on graceful shutdown.
	CauseBye Cause = "bye"
)

// Event is one push notification: a session's current kNN result plus the
// delta against the previously published result. The slices are owned by
// the event and never mutated after Publish.
type Event struct {
	// Session is the engine session id.
	Session uint64
	// Seq is the session's publish sequence number, strictly increasing
	// per session. A gap at the consumer means events were coalesced or
	// dropped; the full KNN set re-baselines it.
	Seq uint64
	// Epoch is the index snapshot epoch the result was computed against.
	Epoch uint64
	// Cause is why the event was emitted.
	Cause Cause
	// KNN is the full current kNN membership (ascending distance at
	// computation time).
	KNN []int
	// Added / Removed are the membership delta against the session's
	// previously published result.
	Added   []int
	Removed []int
}

// DefaultQueueDepth is the default per-subscriber bound on pending
// sessions. One pending event is O(k) ints, so a full queue is a few
// hundred KB at most.
const DefaultQueueDepth = 256

// Stats is an aggregated snapshot of the broker's fan-out state.
type Stats struct {
	// Subscribers is the number of live subscribers.
	Subscribers int
	// WatchedSessions is the number of distinct explicitly-watched
	// sessions (wildcard subscribers watch everything and are not counted
	// here).
	WatchedSessions int
	// Published counts events handed to Publish.
	Published uint64
	// Delivered counts events consumers actually popped.
	Delivered uint64
	// Coalesced counts newer events merged into a pending one
	// (latest-result-wins).
	Coalesced uint64
	// Dropped counts pending events evicted by queue overflow.
	Dropped uint64
}

// Broker fans session result events out to subscribers. All methods are
// safe for concurrent use.
type Broker struct {
	defaultDepth int
	nsubs        atomic.Int64
	obs          *obs.Pipeline // nil when observability is off

	published atomic.Uint64
	delivered atomic.Uint64
	coalesced atomic.Uint64
	dropped   atomic.Uint64

	mu        sync.RWMutex
	closed    bool
	subs      map[*Subscriber]struct{}
	wild      map[*Subscriber]struct{}            // subscribers watching every session
	bySession map[uint64]map[*Subscriber]struct{} // explicit watchers per session
}

// NewBroker builds a broker whose subscribers default to the given queue
// depth (DefaultQueueDepth when <= 0).
func NewBroker(depth int) *Broker {
	return NewBrokerObs(depth, nil)
}

// NewBrokerObs is NewBroker with an observability pipeline: fan-out
// timing (the push stage) and overflow logging. p may be nil.
func NewBrokerObs(depth int, p *obs.Pipeline) *Broker {
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	return &Broker{
		defaultDepth: depth,
		obs:          p,
		subs:         make(map[*Subscriber]struct{}),
		wild:         make(map[*Subscriber]struct{}),
		bySession:    make(map[uint64]map[*Subscriber]struct{}),
	}
}

// Subscribe registers a subscriber for the given sessions (none = every
// session) with the given queue depth (<= 0 = the broker default). It
// returns nil after Close.
func (b *Broker) Subscribe(depth int, sessions ...uint64) *Subscriber {
	if depth <= 0 {
		depth = b.defaultDepth
	}
	s := &Subscriber{
		broker:  b,
		depth:   depth,
		wake:    make(chan struct{}, 1),
		done:    make(chan struct{}),
		pending: make(map[uint64]Event),
	}
	if len(sessions) > 0 {
		s.filter = make(map[uint64]struct{}, len(sessions))
		for _, sid := range sessions {
			s.filter[sid] = struct{}{}
		}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	b.subs[s] = struct{}{}
	if s.filter == nil {
		b.wild[s] = struct{}{}
	} else {
		for sid := range s.filter {
			m := b.bySession[sid]
			if m == nil {
				m = make(map[*Subscriber]struct{})
				b.bySession[sid] = m
			}
			m[s] = struct{}{}
		}
	}
	b.nsubs.Add(1)
	return s
}

// Active reports whether any subscriber is live — one atomic load, the
// publisher's fast path when nobody listens.
func (b *Broker) Active() bool { return b.nsubs.Load() > 0 }

// Watched reports whether any live subscriber watches the session. The
// engine uses it to skip delta computation — and, on data updates, eager
// recomputation — for sessions nobody listens to.
func (b *Broker) Watched(sid uint64) bool {
	if b.nsubs.Load() == 0 {
		return false
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	if len(b.wild) > 0 {
		return true
	}
	return len(b.bySession[sid]) > 0
}

// Publish fans an event out to every subscriber watching its session. It
// never blocks and is a near-no-op without subscribers.
func (b *Broker) Publish(ev Event) {
	if b.nsubs.Load() == 0 {
		return
	}
	var start time.Time
	if b.obs.Enabled() {
		start = time.Now()
	}
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return
	}
	b.published.Add(1)
	for s := range b.wild {
		s.offer(ev)
	}
	for s := range b.bySession[ev.Session] {
		s.offer(ev)
	}
	b.mu.RUnlock()
	if b.obs.Enabled() {
		b.obs.Observe(obs.StagePush, time.Since(start))
	}
}

// PendingTotal returns the number of events queued across every live
// subscriber — the stream-occupancy gauge. It takes the broker read lock
// and each subscriber's lock briefly; scrape-rate use only.
func (b *Broker) PendingTotal() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	total := 0
	for s := range b.subs {
		total += s.Pending()
	}
	return total
}

// Stats returns an aggregated snapshot of the broker state.
func (b *Broker) Stats() Stats {
	b.mu.RLock()
	st := Stats{Subscribers: len(b.subs), WatchedSessions: len(b.bySession)}
	b.mu.RUnlock()
	st.Published = b.published.Load()
	st.Delivered = b.delivered.Load()
	st.Coalesced = b.coalesced.Load()
	st.Dropped = b.dropped.Load()
	return st
}

// Close shuts the broker down: further Publish and Subscribe calls are
// no-ops and every live subscriber's Done channel closes, which is the
// signal transports use to send a final farewell. Close is idempotent.
func (b *Broker) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	subs := make([]*Subscriber, 0, len(b.subs))
	for s := range b.subs {
		subs = append(subs, s)
	}
	b.subs = make(map[*Subscriber]struct{})
	b.wild = make(map[*Subscriber]struct{})
	b.bySession = make(map[uint64]map[*Subscriber]struct{})
	b.nsubs.Store(0)
	b.mu.Unlock()
	for _, s := range subs {
		s.shut()
	}
}

// Subscriber is one consumer's bounded, coalescing event queue. Wake/Next
// form a pull loop that decouples the consumer's pace from publishers:
//
//	for {
//		select {
//		case <-sub.Done():
//			return // broker closed or Subscriber.Close
//		case <-sub.Wake():
//			for ev, ok := sub.Next(); ok; ev, ok = sub.Next() {
//				consume(ev)
//			}
//		}
//	}
type Subscriber struct {
	broker *Broker
	depth  int
	filter map[uint64]struct{} // nil = every session
	wake   chan struct{}
	done   chan struct{}
	once   sync.Once

	// Per-subscriber views of the broker's aggregate counters, so one
	// deliberately slow consumer (a benchmark stall probe, a stuck SSE
	// client) can be accounted separately from the healthy fan-out.
	delivered atomic.Uint64
	coalesced atomic.Uint64
	dropped   atomic.Uint64

	mu      sync.Mutex
	closed  bool
	pending map[uint64]Event
	queue   []uint64 // arrival order of pending sessions; queue[head:] live
	head    int
}

// Wake returns the notification channel: a receive means Next may have
// events. It is level-triggered with capacity one, so a consumer never
// misses a wake-up but may see a spurious one.
func (s *Subscriber) Wake() <-chan struct{} { return s.wake }

// Done closes when the broker shuts down or the subscriber is closed.
func (s *Subscriber) Done() <-chan struct{} { return s.done }

// Pending returns the number of queued events — bounded by the queue
// depth, which is the broker's memory guarantee under a slow consumer.
func (s *Subscriber) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// Delivered returns the number of events this subscriber popped via Next.
func (s *Subscriber) Delivered() uint64 { return s.delivered.Load() }

// Coalesced returns the number of events merged into this subscriber's
// pending queue (latest-result-wins).
func (s *Subscriber) Coalesced() uint64 { return s.coalesced.Load() }

// Dropped returns the number of pending events evicted from this
// subscriber's queue by overflow.
func (s *Subscriber) Dropped() uint64 { return s.dropped.Load() }

// Next pops the oldest pending event. ok is false when the queue is
// empty.
func (s *Subscriber) Next() (ev Event, ok bool) {
	s.mu.Lock()
	if s.head >= len(s.queue) {
		s.queue = s.queue[:0]
		s.head = 0
		s.mu.Unlock()
		return Event{}, false
	}
	sid := s.popLocked()
	ev = s.pending[sid]
	delete(s.pending, sid)
	s.broker.delivered.Add(1)
	s.delivered.Add(1)
	s.mu.Unlock()
	// The stall failpoint models a slow consumer (stuck SSE client) and
	// fires outside s.mu so publishers keep offering — backpressure lands
	// on this subscriber's own queue (coalesce/drop-oldest), never on the
	// fan-out path.
	fault.StreamWriteStall.FireKey(sid)
	return ev, true
}

// Close unsubscribes: the broker stops delivering, pending events are
// discarded and Done closes. It is idempotent and safe concurrently with
// Publish and broker Close.
func (s *Subscriber) Close() {
	b := s.broker
	b.mu.Lock()
	if _, ok := b.subs[s]; ok {
		delete(b.subs, s)
		delete(b.wild, s)
		for sid := range s.filter {
			if m := b.bySession[sid]; m != nil {
				delete(m, s)
				if len(m) == 0 {
					delete(b.bySession, sid)
				}
			}
		}
		b.nsubs.Add(-1)
	}
	b.mu.Unlock()
	s.shut()
}

// shut marks the subscriber dead and releases its queue memory.
func (s *Subscriber) shut() {
	s.mu.Lock()
	s.closed = true
	s.pending = nil
	s.queue = nil
	s.head = 0
	s.mu.Unlock()
	s.once.Do(func() { close(s.done) })
}

// offer enqueues an event, coalescing and overflowing per the package
// policy, then wakes the consumer without blocking.
func (s *Subscriber) offer(ev Event) {
	var overflowed uint64
	dropped := false
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if old, ok := s.pending[ev.Session]; ok {
		s.pending[ev.Session] = coalesce(old, ev)
		s.broker.coalesced.Add(1)
		s.coalesced.Add(1)
	} else {
		if len(s.pending) >= s.depth {
			victim := s.popLocked()
			delete(s.pending, victim)
			s.broker.dropped.Add(1)
			s.dropped.Add(1)
			overflowed = victim
			dropped = true
		}
		s.pending[ev.Session] = ev
		s.queue = append(s.queue, ev.Session)
	}
	s.mu.Unlock()
	if dropped {
		s.broker.obs.StreamOverflow(overflowed, s.depth)
	}
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// popLocked removes and returns the oldest queued session id, compacting
// the queue slice once the dead prefix dominates. Callers must hold s.mu
// and have checked head < len(queue).
func (s *Subscriber) popLocked() uint64 {
	sid := s.queue[s.head]
	s.head++
	if s.head > 64 && s.head*2 > len(s.queue) {
		s.queue = append(s.queue[:0], s.queue[s.head:]...)
		s.head = 0
	}
	return sid
}

// coalesce merges a newer event into the pending one: the new full kNN
// set wins, and the delta is recomputed against the pending event's
// baseline (its kNN minus its additions plus its removals), so a consumer
// that never saw the intermediate state still applies an exact delta.
func coalesce(old, new Event) Event {
	base := make(map[int]struct{}, len(old.KNN)+len(old.Removed))
	for _, id := range old.KNN {
		base[id] = struct{}{}
	}
	for _, id := range old.Added {
		delete(base, id)
	}
	for _, id := range old.Removed {
		base[id] = struct{}{}
	}
	var added []int
	inNew := make(map[int]struct{}, len(new.KNN))
	for _, id := range new.KNN {
		inNew[id] = struct{}{}
		if _, ok := base[id]; !ok {
			added = append(added, id)
		}
	}
	var removed []int
	for id := range base {
		if _, ok := inNew[id]; !ok {
			removed = append(removed, id)
		}
	}
	new.Added, new.Removed = added, removed
	return new
}
