package stream

import (
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
)

// TestStalledSubscriberIsolated arms the stream.write.stall failpoint
// keyed to one session so subscriber A's consumer loop stalls every time
// it pops that session's events, while subscriber B (watching a disjoint
// session set) drains at full speed. A publisher floods both. The broker
// contract under a stuck consumer: A's queue saturates and sheds via
// coalesce/drop-oldest, B loses nothing, and the per-subscriber counters
// balance exactly (published = delivered + coalesced + dropped +
// pending). Run with -race: the stall fires outside the subscriber lock,
// so publishers must never block on it.
func TestStalledSubscriberIsolated(t *testing.T) {
	defer fault.DisarmAll()
	const (
		depth    = 8
		sessions = 64 // > depth distinct sessions so drop-oldest (not coalesce) must fire
		rounds   = 30
	)
	b := NewBroker(depth)
	defer b.Close()

	// A watches sessions 1..64 on a tiny queue, and its Next stalls on
	// session 1's events — while it sleeps, the other 63 sessions pile up
	// past depth 8 and force drop-oldest. B watches the disjoint 101..164
	// with one slot per session, which makes it provably lossless: every
	// burst coalesces in place, so any drop at all means A's stall leaked.
	aIDs := make([]uint64, sessions)
	bIDs := make([]uint64, sessions)
	for i := range aIDs {
		aIDs[i] = uint64(i + 1)
		bIDs[i] = uint64(i + 101)
	}
	subA := b.Subscribe(depth, aIDs...)
	subB := b.Subscribe(sessions, bIDs...)
	defer subA.Close()
	defer subB.Close()
	fault.StreamWriteStall.Arm(fault.Spec{Delay: 3 * time.Millisecond, Key: 1})

	var wg sync.WaitGroup
	drain := func(s *Subscriber, got map[uint64]uint64) {
		defer wg.Done()
		for {
			select {
			case <-s.Done():
				return
			case <-s.Wake():
				for ev, ok := s.Next(); ok; ev, ok = s.Next() {
					if got[ev.Session] >= ev.Seq {
						t.Errorf("session %d: seq went backwards (%d after %d)", ev.Session, ev.Seq, got[ev.Session])
					}
					got[ev.Session] = ev.Seq
				}
			}
		}
	}
	gotA := make(map[uint64]uint64)
	gotB := make(map[uint64]uint64)
	wg.Add(2)
	go drain(subA, gotA)
	go drain(subB, gotB)

	seq := make(map[uint64]uint64)
	publish := func(sid uint64) {
		seq[sid]++
		b.Publish(Event{Session: sid, Seq: seq[sid], KNN: []int{int(sid)}})
	}
	for r := 0; r < rounds; r++ {
		for i := 0; i < sessions; i++ {
			publish(aIDs[i])
			publish(bIDs[i])
		}
	}
	// Publishing is done; let both consumers drain what's left (the
	// stalled one has at most depth pending events) so the counter
	// balance below needs no pending term.
	deadline := time.Now().Add(5 * time.Second)
	for (subA.Pending() > 0 || subB.Pending() > 0) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if subA.Pending() > 0 || subB.Pending() > 0 {
		t.Fatalf("queues never drained: A=%d B=%d pending", subA.Pending(), subB.Pending())
	}
	subA.Close()
	subB.Close()
	wg.Wait()

	published := uint64(rounds * sessions)

	// The healthy subscriber must not have been touched by A's stall:
	// every session delivered, nothing dropped, latest seq observed.
	if subB.Dropped() != 0 {
		t.Fatalf("healthy subscriber dropped %d events", subB.Dropped())
	}
	for _, sid := range bIDs {
		if gotB[sid] != seq[sid] {
			t.Fatalf("healthy subscriber: session %d at seq %d, want %d", sid, gotB[sid], seq[sid])
		}
	}
	if total := subB.Delivered() + subB.Coalesced(); total != published {
		t.Fatalf("healthy subscriber counters: delivered+coalesced = %d, want %d", total, published)
	}

	// The stalled subscriber must have shed: with 64 distinct pending
	// sessions against depth 8, overflow evicts oldest entries.
	if subA.Dropped() == 0 {
		t.Fatal("stalled subscriber never hit drop-oldest")
	}
	// Counter balance: every published event was delivered, coalesced
	// into a pending entry, or dropped by overflow (queues fully drained
	// above, so there is no pending term).
	if total := subA.Delivered() + subA.Coalesced() + subA.Dropped(); total != published {
		t.Fatalf("stalled subscriber counters: %d delivered + %d coalesced + %d dropped = %d, want %d",
			subA.Delivered(), subA.Coalesced(), subA.Dropped(), total, published)
	}
}
