package stream

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"
)

func drain(s *Subscriber) []Event {
	var out []Event
	for {
		ev, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, ev)
	}
}

func sorted(ids []int) []int {
	out := append([]int(nil), ids...)
	sort.Ints(out)
	return out
}

func TestFanOutAndFiltering(t *testing.T) {
	b := NewBroker(0)
	all := b.Subscribe(0)        // wildcard
	only2 := b.Subscribe(0, 2)   // session 2 only
	both := b.Subscribe(0, 1, 2) // sessions 1 and 2
	defer func() { all.Close(); only2.Close(); both.Close() }()

	if !b.Watched(1) || !b.Watched(2) || !b.Watched(99) {
		t.Fatal("wildcard subscriber must make every session watched")
	}
	b.Publish(Event{Session: 1, Seq: 1, Cause: CauseMove, KNN: []int{10}})
	b.Publish(Event{Session: 2, Seq: 1, Cause: CauseMove, KNN: []int{20}})
	b.Publish(Event{Session: 3, Seq: 1, Cause: CauseMove, KNN: []int{30}})

	if got := drain(all); len(got) != 3 {
		t.Errorf("wildcard got %d events, want 3", len(got))
	}
	got2 := drain(only2)
	if len(got2) != 1 || got2[0].Session != 2 {
		t.Errorf("filtered subscriber got %+v, want session 2 only", got2)
	}
	if got := drain(both); len(got) != 2 {
		t.Errorf("two-session subscriber got %d events, want 2", len(got))
	}

	st := b.Stats()
	if st.Subscribers != 3 || st.WatchedSessions != 2 {
		t.Errorf("stats = %+v, want 3 subscribers watching 2 explicit sessions", st)
	}
	if st.Published != 3 || st.Delivered != 6 {
		t.Errorf("stats = %+v, want published=3 delivered=6", st)
	}

	all.Close()
	only2.Close()
	if b.Watched(99) {
		t.Error("session 99 still watched after the wildcard closed")
	}
	if b.Watched(3) {
		t.Error("session 3 watched with no subscriber for it")
	}
	if !b.Watched(1) {
		t.Error("session 1 must stay watched by the remaining subscriber")
	}
}

// TestCoalesceLatestWins: a subscriber holds one pending event per
// session; a newer event replaces the kNN set and merges the delta
// against the pending event's baseline, so the consumer applies one exact
// delta for the whole missed run.
func TestCoalesceLatestWins(t *testing.T) {
	b := NewBroker(0)
	sub := b.Subscribe(0, 7)
	defer sub.Close()

	// Baseline {1,2}; first event adds 3 dropping 1 -> {2,3}; second event
	// adds 4 dropping 3 -> {2,4}. Coalesced delta vs {1,2}: +4 -1.
	b.Publish(Event{Session: 7, Seq: 5, Cause: CauseMove, KNN: []int{2, 3}, Added: []int{3}, Removed: []int{1}})
	b.Publish(Event{Session: 7, Seq: 6, Cause: CauseData, KNN: []int{2, 4}, Added: []int{4}, Removed: []int{3}})

	got := drain(sub)
	if len(got) != 1 {
		t.Fatalf("got %d events, want 1 coalesced", len(got))
	}
	ev := got[0]
	if ev.Seq != 6 || ev.Cause != CauseData {
		t.Errorf("coalesced event kept stale seq/cause: %+v", ev)
	}
	if !reflect.DeepEqual(ev.KNN, []int{2, 4}) {
		t.Errorf("kNN = %v, want latest {2,4}", ev.KNN)
	}
	if !reflect.DeepEqual(sorted(ev.Added), []int{4}) || !reflect.DeepEqual(sorted(ev.Removed), []int{1}) {
		t.Errorf("merged delta = +%v -%v, want +[4] -[1]", ev.Added, ev.Removed)
	}
	if st := b.Stats(); st.Coalesced != 1 {
		t.Errorf("coalesced counter = %d, want 1", st.Coalesced)
	}
}

// TestOverflowDropsOldest: the queue holds at most depth distinct
// sessions; overflow evicts the oldest pending event and counts it, so a
// slow consumer's memory is bounded and the loss is observable.
func TestOverflowDropsOldest(t *testing.T) {
	const depth = 4
	b := NewBroker(depth)
	sub := b.Subscribe(0) // wildcard, broker default depth
	defer sub.Close()

	for sid := uint64(1); sid <= 10; sid++ {
		b.Publish(Event{Session: sid, Seq: 1, Cause: CauseMove, KNN: []int{int(sid)}})
	}
	if n := sub.Pending(); n != depth {
		t.Fatalf("pending = %d, want bounded at %d", n, depth)
	}
	got := drain(sub)
	if len(got) != depth {
		t.Fatalf("delivered %d events, want %d", len(got), depth)
	}
	for i, ev := range got {
		if want := uint64(7 + i); ev.Session != want {
			t.Errorf("event %d from session %d, want %d (oldest dropped first)", i, ev.Session, want)
		}
	}
	if st := b.Stats(); st.Dropped != 6 {
		t.Errorf("dropped counter = %d, want 6", st.Dropped)
	}
}

// TestSlowConsumerBoundedMemory drives far more events than the queue
// depth through an idle subscriber and checks the bound holds throughout,
// with every lost event accounted as coalesced or dropped.
func TestSlowConsumerBoundedMemory(t *testing.T) {
	const depth = 8
	b := NewBroker(0)
	sub := b.Subscribe(depth)
	defer sub.Close()

	// Phase 1: a few hot sessions, republished over and over — every event
	// past the first per session coalesces. Phase 2: many cold sessions —
	// fresh arrivals overflow the queue and evict the oldest.
	const events = 5000
	for i := 0; i < events; i++ {
		sid := uint64(i % 4)
		if i >= events/2 {
			sid = uint64(i % 64)
		}
		b.Publish(Event{Session: sid, Seq: uint64(i), Cause: CauseMove, KNN: []int{i}})
		if n := sub.Pending(); n > depth {
			t.Fatalf("pending = %d after %d events, bound %d violated", n, i+1, depth)
		}
	}
	st := b.Stats()
	if st.Coalesced+st.Dropped+uint64(sub.Pending()) != events {
		t.Errorf("accounting: coalesced %d + dropped %d + pending %d != published %d",
			st.Coalesced, st.Dropped, sub.Pending(), events)
	}
	if st.Dropped == 0 || st.Coalesced == 0 {
		t.Errorf("overflow policy not exercised: %+v", st)
	}
}

func TestCloseSemantics(t *testing.T) {
	b := NewBroker(0)
	sub := b.Subscribe(0, 1)
	b.Publish(Event{Session: 1, Seq: 1, KNN: []int{1}})
	b.Close()

	select {
	case <-sub.Done():
	default:
		t.Fatal("Done not closed after broker Close")
	}
	if _, ok := sub.Next(); ok {
		t.Error("events must be discarded on close")
	}
	b.Publish(Event{Session: 1, Seq: 2, KNN: []int{2}}) // no-op, no panic
	if got := b.Subscribe(0); got != nil {
		t.Error("Subscribe after Close must return nil")
	}
	b.Close()   // idempotent
	sub.Close() // idempotent after broker close
}

// TestConcurrentPublish hammers one broker from many publishers while
// consumers drain and subscribers churn; run with -race.
func TestConcurrentPublish(t *testing.T) {
	b := NewBroker(16)
	var wg sync.WaitGroup

	consume := func(sub *Subscriber) {
		defer wg.Done()
		for {
			select {
			case <-sub.Done():
				return
			case <-sub.Wake():
				for _, ok := sub.Next(); ok; _, ok = sub.Next() {
				}
			}
		}
	}
	for i := 0; i < 4; i++ {
		sub := b.Subscribe(0, uint64(i), uint64(i+1))
		wg.Add(1)
		go consume(sub)
	}
	wild := b.Subscribe(0)
	wg.Add(1)
	go consume(wild)

	var pubs sync.WaitGroup
	for p := 0; p < 8; p++ {
		pubs.Add(1)
		go func(p int) {
			defer pubs.Done()
			for i := 0; i < 500; i++ {
				b.Publish(Event{Session: uint64(i % 8), Seq: uint64(i), Cause: CauseMove, KNN: []int{p, i}})
			}
		}(p)
	}
	// Churning subscribers race Publish and Close.
	for c := 0; c < 4; c++ {
		pubs.Add(1)
		go func(c int) {
			defer pubs.Done()
			for i := 0; i < 100; i++ {
				if s := b.Subscribe(0, uint64(c)); s != nil {
					s.Close()
				}
			}
		}(c)
	}
	pubs.Wait()
	b.Close()
	wg.Wait()

	st := b.Stats()
	if st.Subscribers != 0 {
		t.Errorf("subscribers = %d after close", st.Subscribers)
	}
	if st.Published == 0 {
		t.Error("nothing published")
	}
}

func TestStatsString(t *testing.T) {
	// Smoke-check the zero broker's stats are all zero (fresh counters).
	b := NewBroker(0)
	if st := b.Stats(); st != (Stats{}) {
		t.Errorf("fresh broker stats = %+v", st)
	}
	_ = fmt.Sprintf("%+v", b.Stats())
}
