package api

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/index"
)

// Binary ingest stream protocol (POST /v1/ingest, or the raw TCP
// listener behind insqd -ingest-addr).
//
// A stream opens with the 8-byte client magic, answered by the 8-byte
// server magic, then carries length-prefixed CRC32C frames in both
// directions — the same framing idiom as the write-ahead log
// (internal/wal), so a torn or corrupted frame is detected before any
// payload byte is interpreted:
//
//	[payload len: uint32 LE][crc32c(payload): uint32 LE][payload]
//
// Client→server payloads are batch frames (FrameBatch), server→client
// payloads are ack frames (FrameAck); every batch is answered by exactly
// one ack carrying the batch's echoed Seq and a status byte from the
// shared error table (FrameCode). Integers travel as uvarints, floats as
// little-endian IEEE-754 bits — the same compact codec the WAL uses for
// index.Mutation records. Per-session results are elided from acks
// unless the batch sets WantResults.

const (
	// ClientMagic/ServerMagic open an ingest stream in each direction; a
	// mismatch fails the connection before any frame is parsed.
	ClientMagic = "INSQING1"
	ServerMagic = "INSQACK1"

	// frameHdrLen is the fixed frame header: payload length + CRC32C.
	frameHdrLen = 8

	// MaxFramePayload bounds one frame (matching the JSON request body cap)
	// so a corrupted or hostile length prefix cannot exhaust memory.
	MaxFramePayload = 8 << 20
)

// Frame payload kinds (first payload byte).
const (
	FrameBatch byte = 1
	FrameAck   byte = 2
)

// crcTable is the Castagnoli table, shared with the WAL's framing.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrBadFrame wraps every framing/codec-level decode failure (bad CRC,
// truncated payload, oversized length, unknown kind). It is terminal for
// the stream: framing is lost, the connection must be reopened.
var ErrBadFrame = errors.New("api: bad ingest frame")

// IngestBatch is one client→server batch frame: location updates for
// both session flavors plus pre-decoded object mutations, applied by the
// server in that order (mutations first, then plane updates, then
// network updates). Entries are independent — exactly the contract of
// the JSON /v1/update and object endpoints, minus one round trip each.
type IngestBatch struct {
	// Seq is echoed in the matching ack; clients pick any strictly
	// increasing sequence to correlate pipelined frames.
	Seq uint64
	// WantResults asks for per-entry results in the ack (kNN sets, ids of
	// applied mutations). Elided by default: the ingest fast path is for
	// callers that consume results from the push stream instead.
	WantResults bool

	Updates        []UpdateEntry
	NetworkUpdates []NetworkUpdateEntry
	// Mutations are object/site mutations in the index's own mutation
	// vocabulary — the codec is shared with index.Mutation so the server
	// can hand the decoded batch straight to the engine.
	Mutations []index.Mutation
}

// IngestEntryResult is one per-entry outcome inside an ack (present only
// when the batch requested results).
type IngestEntryResult struct {
	Session uint64
	Code    ErrorCode
	KNN     []int
}

// IngestAck is one server→client ack frame, answering exactly one batch.
type IngestAck struct {
	Seq uint64
	// Code is the batch-level status: CodeOK when the batch was applied
	// (individual entries may still fail — see Results), or the shared
	// table's code when the whole batch was rejected (overloaded shed,
	// degraded durability, expired deadline, bad frame).
	Code ErrorCode
	// Message carries the error detail for non-OK codes.
	Message string
	// Applied counts location-update entries accepted by the engine.
	Applied int
	// Results parallels Updates then NetworkUpdates; MutationIDs parallels
	// Mutations (ids assigned to inserts, echoed ids otherwise). Both nil
	// unless the batch set WantResults.
	Results     []IngestEntryResult
	MutationIDs []int
}

// AppendFrame appends one framed payload to dst.
func AppendFrame(dst, payload []byte) []byte {
	var hdr [frameHdrLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// ReadFrame reads one frame from the stream and returns its verified
// payload. io.EOF is returned only at a clean frame boundary; any torn
// header/payload or CRC mismatch is an ErrBadFrame.
func ReadFrame(br *bufio.Reader) ([]byte, error) {
	var hdr [frameHdrLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: torn header: %v", ErrBadFrame, err)
	}
	plen := binary.LittleEndian.Uint32(hdr[0:4])
	if plen == 0 || plen > MaxFramePayload {
		return nil, fmt.Errorf("%w: payload length %d", ErrBadFrame, plen)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, fmt.Errorf("%w: torn payload: %v", ErrBadFrame, err)
	}
	if crc := crc32.Checksum(payload, crcTable); crc != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, fmt.Errorf("%w: crc mismatch", ErrBadFrame)
	}
	return payload, nil
}

// Batch payload flag bits.
const batchWantResults = 1 << 0

// Mutation flag bits, shared layout with the WAL's batch records.
const (
	mutInsert  = 1 << 0
	mutNetwork = 1 << 1
)

// AppendBatch appends a batch frame's payload (unframed) to dst.
func AppendBatch(dst []byte, b IngestBatch) []byte {
	dst = append(dst, FrameBatch)
	var flags uint64
	if b.WantResults {
		flags |= batchWantResults
	}
	dst = binary.AppendUvarint(dst, flags)
	dst = binary.AppendUvarint(dst, b.Seq)
	dst = binary.AppendUvarint(dst, uint64(len(b.Updates)))
	for _, u := range b.Updates {
		dst = binary.AppendUvarint(dst, u.Session)
		dst = appendFloat(dst, u.X)
		dst = appendFloat(dst, u.Y)
	}
	dst = binary.AppendUvarint(dst, uint64(len(b.NetworkUpdates)))
	for _, u := range b.NetworkUpdates {
		dst = binary.AppendUvarint(dst, u.Session)
		dst = binary.AppendUvarint(dst, uint64(u.U))
		dst = binary.AppendUvarint(dst, uint64(u.V))
		dst = appendFloat(dst, u.T)
	}
	dst = binary.AppendUvarint(dst, uint64(len(b.Mutations)))
	for _, m := range b.Mutations {
		var f byte
		if m.Insert {
			f |= mutInsert
		}
		if m.Network {
			f |= mutNetwork
		}
		dst = append(dst, f)
		if !m.Network && m.Insert {
			dst = appendFloat(dst, m.P.X)
			dst = appendFloat(dst, m.P.Y)
			continue
		}
		dst = binary.AppendUvarint(dst, uint64(m.ID))
	}
	return dst
}

// DecodeBatch decodes a batch frame payload produced by AppendBatch.
func DecodeBatch(payload []byte) (IngestBatch, error) {
	var b IngestBatch
	d := decoder{buf: payload}
	if kind := d.byte(); kind != FrameBatch {
		return b, fmt.Errorf("%w: kind %d, want batch", ErrBadFrame, kind)
	}
	flags := d.uvarint()
	b.WantResults = flags&batchWantResults != 0
	b.Seq = d.uvarint()
	if n := d.count(); n > 0 {
		b.Updates = make([]UpdateEntry, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			b.Updates = append(b.Updates, UpdateEntry{
				Session: d.uvarint(), X: d.float(), Y: d.float(),
			})
		}
	}
	if n := d.count(); n > 0 {
		b.NetworkUpdates = make([]NetworkUpdateEntry, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			b.NetworkUpdates = append(b.NetworkUpdates, NetworkUpdateEntry{
				Session: d.uvarint(), U: int(d.uvarint()), V: int(d.uvarint()), T: d.float(),
			})
		}
	}
	if n := d.count(); n > 0 {
		b.Mutations = make([]index.Mutation, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			f := d.byte()
			m := index.Mutation{Insert: f&mutInsert != 0, Network: f&mutNetwork != 0}
			if !m.Network && m.Insert {
				m.P.X = d.float()
				m.P.Y = d.float()
			} else {
				m.ID = int(d.uvarint())
			}
			b.Mutations = append(b.Mutations, m)
		}
	}
	if d.err == nil && len(d.buf) != 0 {
		d.err = fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, len(d.buf))
	}
	return b, d.err
}

// AppendAck appends an ack frame's payload (unframed) to dst.
func AppendAck(dst []byte, a IngestAck) []byte {
	dst = append(dst, FrameAck)
	dst = binary.AppendUvarint(dst, a.Seq)
	dst = append(dst, FrameCode(a.Code))
	dst = binary.AppendUvarint(dst, uint64(a.Applied))
	dst = binary.AppendUvarint(dst, uint64(len(a.Message)))
	dst = append(dst, a.Message...)
	dst = binary.AppendUvarint(dst, uint64(len(a.Results)))
	for _, r := range a.Results {
		dst = binary.AppendUvarint(dst, r.Session)
		dst = append(dst, FrameCode(r.Code))
		dst = binary.AppendUvarint(dst, uint64(len(r.KNN)))
		for _, id := range r.KNN {
			dst = binary.AppendUvarint(dst, uint64(id))
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(a.MutationIDs)))
	for _, id := range a.MutationIDs {
		dst = binary.AppendUvarint(dst, uint64(id))
	}
	return dst
}

// DecodeAck decodes an ack frame payload produced by AppendAck.
func DecodeAck(payload []byte) (IngestAck, error) {
	var a IngestAck
	d := decoder{buf: payload}
	if kind := d.byte(); kind != FrameAck {
		return a, fmt.Errorf("%w: kind %d, want ack", ErrBadFrame, kind)
	}
	a.Seq = d.uvarint()
	a.Code = CodeFromFrame(d.byte())
	a.Applied = int(d.uvarint())
	if n := d.count(); n > 0 {
		msg := d.bytes(n)
		if d.err == nil {
			a.Message = string(msg)
		}
	}
	if n := d.count(); n > 0 {
		a.Results = make([]IngestEntryResult, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			r := IngestEntryResult{Session: d.uvarint(), Code: CodeFromFrame(d.byte())}
			if k := d.count(); k > 0 {
				r.KNN = make([]int, 0, k)
				for j := 0; j < k && d.err == nil; j++ {
					r.KNN = append(r.KNN, int(d.uvarint()))
				}
			}
			a.Results = append(a.Results, r)
		}
	}
	if n := d.count(); n > 0 {
		a.MutationIDs = make([]int, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			a.MutationIDs = append(a.MutationIDs, int(d.uvarint()))
		}
	}
	if d.err == nil && len(d.buf) != 0 {
		d.err = fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, len(d.buf))
	}
	return a, d.err
}

// decoder is a cursor over one payload; the first failure sticks and
// every later read returns zero values, so decode loops stay linear.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("%w: truncated payload", ErrBadFrame)
	}
}

func (d *decoder) byte() byte {
	if d.err != nil || len(d.buf) < 1 {
		d.fail()
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

func (d *decoder) bytes(n int) []byte {
	if d.err != nil || len(d.buf) < n {
		d.fail()
		return nil
	}
	b := d.buf[:n]
	d.buf = d.buf[n:]
	return b
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

// count reads a collection length, bounding it by the bytes actually
// remaining so a hostile count cannot trigger a huge allocation (every
// element costs at least one byte).
func (d *decoder) count() int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if v > uint64(len(d.buf)) {
		d.fail()
		return 0
	}
	return int(v)
}

func (d *decoder) float() float64 {
	b := d.bytes(8)
	if d.err != nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

func appendFloat(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}
