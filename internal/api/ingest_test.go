package api

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"testing"

	"repro/internal/geom"
	"repro/internal/index"
)

func sampleBatch() IngestBatch {
	return IngestBatch{
		Seq:         7,
		WantResults: true,
		Updates: []UpdateEntry{
			{Session: 1, X: 10.5, Y: -3.25},
			{Session: 99, X: 0, Y: 0},
		},
		NetworkUpdates: []NetworkUpdateEntry{
			{Session: 2, U: 17, V: 18, T: 0.5},
		},
		Mutations: []index.Mutation{
			{Insert: true, P: geom.Pt(100, 200)},
			{ID: 42},
			{Insert: true, Network: true, ID: 17},
			{Network: true, ID: 23},
		},
	}
}

func TestBatchRoundTrip(t *testing.T) {
	for _, b := range []IngestBatch{
		sampleBatch(),
		{Seq: 0}, // empty batch: legal, acks still flow
		{Seq: 1 << 40, WantResults: true},
		{Updates: []UpdateEntry{{Session: 5, X: -1e300, Y: 1e-300}}},
	} {
		payload := AppendBatch(nil, b)
		got, err := DecodeBatch(payload)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(normalizeBatch(got), normalizeBatch(b)) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, b)
		}
	}
}

// normalizeBatch maps empty slices to nil so DeepEqual compares content.
func normalizeBatch(b IngestBatch) IngestBatch {
	if len(b.Updates) == 0 {
		b.Updates = nil
	}
	if len(b.NetworkUpdates) == 0 {
		b.NetworkUpdates = nil
	}
	if len(b.Mutations) == 0 {
		b.Mutations = nil
	}
	return b
}

func TestAckRoundTrip(t *testing.T) {
	for _, a := range []IngestAck{
		{Seq: 3, Code: CodeOK, Applied: 12},
		{Seq: 4, Code: CodeOverloaded, Message: "engine: overloaded"},
		{Seq: 5, Code: CodeOK, Applied: 2, Results: []IngestEntryResult{
			{Session: 1, Code: CodeOK, KNN: []int{3, 1, 2}},
			{Session: 9, Code: CodeUnknownSession},
		}, MutationIDs: []int{7, 42}},
	} {
		payload := AppendAck(nil, a)
		got, err := DecodeAck(payload)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(got.Results) == 0 {
			got.Results = nil
		}
		if len(got.MutationIDs) == 0 {
			got.MutationIDs = nil
		}
		if !reflect.DeepEqual(got, a) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, a)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var stream []byte
	b1 := AppendBatch(nil, sampleBatch())
	b2 := AppendAck(nil, IngestAck{Seq: 8, Code: CodeOK})
	stream = AppendFrame(stream, b1)
	stream = AppendFrame(stream, b2)
	br := bufio.NewReader(bytes.NewReader(stream))
	p1, err := ReadFrame(br)
	if err != nil || !bytes.Equal(p1, b1) {
		t.Fatalf("frame 1: %v", err)
	}
	p2, err := ReadFrame(br)
	if err != nil || !bytes.Equal(p2, b2) {
		t.Fatalf("frame 2: %v", err)
	}
	if _, err := ReadFrame(br); err != io.EOF {
		t.Fatalf("want clean EOF at frame boundary, got %v", err)
	}
}

func TestFrameTorn(t *testing.T) {
	full := AppendFrame(nil, AppendBatch(nil, sampleBatch()))
	// Every strict prefix that isn't a clean boundary must fail with
	// ErrBadFrame (torn header or torn payload), never EOF or a panic.
	for cut := 1; cut < len(full); cut++ {
		br := bufio.NewReader(bytes.NewReader(full[:cut]))
		_, err := ReadFrame(br)
		if !errors.Is(err, ErrBadFrame) {
			t.Fatalf("cut %d: want ErrBadFrame, got %v", cut, err)
		}
	}
}

func TestFrameBadCRC(t *testing.T) {
	full := AppendFrame(nil, AppendBatch(nil, sampleBatch()))
	for _, flip := range []int{8, len(full) - 1} { // first and last payload byte
		corrupted := bytes.Clone(full)
		corrupted[flip] ^= 0x01
		_, err := ReadFrame(bufio.NewReader(bytes.NewReader(corrupted)))
		if !errors.Is(err, ErrBadFrame) {
			t.Fatalf("flip %d: want ErrBadFrame, got %v", flip, err)
		}
	}
}

func TestFrameOversizedLength(t *testing.T) {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], MaxFramePayload+1)
	_, err := ReadFrame(bufio.NewReader(bytes.NewReader(hdr[:])))
	if !errors.Is(err, ErrBadFrame) {
		t.Fatalf("want ErrBadFrame for oversized length, got %v", err)
	}
	// Zero-length payloads are equally invalid: every frame carries at
	// least a kind byte.
	binary.LittleEndian.PutUint32(hdr[0:4], 0)
	_, err = ReadFrame(bufio.NewReader(bytes.NewReader(hdr[:])))
	if !errors.Is(err, ErrBadFrame) {
		t.Fatalf("want ErrBadFrame for zero length, got %v", err)
	}
}

func TestDecodeBatchRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		{},                             // empty payload
		{FrameAck},                     // wrong kind
		{FrameBatch},                   // truncated after kind
		{FrameBatch, 0x01, 0x05, 0xff}, // count overruns payload
	}
	for i, payload := range cases {
		if _, err := DecodeBatch(payload); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("case %d: want ErrBadFrame, got %v", i, err)
		}
	}
	// Trailing bytes after a well-formed batch are a framing bug too.
	payload := append(AppendBatch(nil, IngestBatch{Seq: 1}), 0x00)
	if _, err := DecodeBatch(payload); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("trailing bytes: want ErrBadFrame, got %v", err)
	}
}

// FuzzDecodeBatch asserts the decoder never panics and that everything it
// accepts re-encodes to a decodable batch (the codec is self-consistent).
func FuzzDecodeBatch(f *testing.F) {
	f.Add(AppendBatch(nil, sampleBatch()))
	f.Add(AppendBatch(nil, IngestBatch{}))
	f.Add([]byte{FrameBatch, 0, 0, 0})
	f.Add([]byte{FrameAck, 1, 2, 3})
	f.Fuzz(func(t *testing.T, payload []byte) {
		b, err := DecodeBatch(payload)
		if err != nil {
			return
		}
		again, err := DecodeBatch(AppendBatch(nil, b))
		if err != nil {
			t.Fatalf("re-decode of accepted batch failed: %v", err)
		}
		if !reflect.DeepEqual(normalizeBatch(again), normalizeBatch(b)) {
			t.Fatalf("re-encode changed batch:\n got %+v\nwant %+v", again, b)
		}
	})
}

// FuzzDecodeAck mirrors FuzzDecodeBatch for the ack direction.
func FuzzDecodeAck(f *testing.F) {
	f.Add(AppendAck(nil, IngestAck{Seq: 3, Code: CodeOK, Applied: 2,
		Results: []IngestEntryResult{{Session: 1, KNN: []int{1, 2}}}}))
	f.Add([]byte{FrameAck, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, payload []byte) {
		a, err := DecodeAck(payload)
		if err != nil {
			return
		}
		if _, err := DecodeAck(AppendAck(nil, a)); err != nil {
			t.Fatalf("re-decode of accepted ack failed: %v", err)
		}
	})
}

func TestErrorTable(t *testing.T) {
	// Every code must survive the frame byte round trip.
	for code := range frameCodes {
		if got := CodeFromFrame(FrameCode(code)); got != code {
			t.Fatalf("frame round trip: %s -> %s", code, got)
		}
	}
	if CodeFromFrame(250) != CodeInternal {
		t.Fatal("unknown frame byte must decode as internal")
	}
	if info := Classify(nil); info.Code != CodeOK || info.Status != 200 {
		t.Fatalf("Classify(nil) = %+v", info)
	}
	if info := Classify(errors.New("mystery")); info.Code != CodeInternal || info.Status != 500 {
		t.Fatalf("Classify(unknown) = %+v", info)
	}
	// Spot checks keep the table honest against the documented statuses.
	for _, row := range table {
		info := Classify(row.err)
		if info != row.info {
			t.Fatalf("Classify(%v) = %+v, want %+v", row.err, info, row.info)
		}
		if _, ok := frameCodes[info.Code]; !ok {
			t.Fatalf("code %s has no frame byte", info.Code)
		}
	}
}
