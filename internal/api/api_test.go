package api

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/stream"
)

// roundTrip encodes v, decodes it into a fresh value of the same type, and
// fails unless the result is deeply equal — the wire types must survive
// the JSON boundary without loss.
func roundTrip(t *testing.T, v any) any {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal %T: %v", v, err)
	}
	out := reflect.New(reflect.TypeOf(v))
	if err := json.Unmarshal(data, out.Interface()); err != nil {
		t.Fatalf("unmarshal %T: %v", v, err)
	}
	got := out.Elem().Interface()
	if !reflect.DeepEqual(got, v) {
		t.Errorf("%T round trip:\n got %+v\nwant %+v", v, got, v)
	}
	return got
}

func TestRoundTripAllWireTypes(t *testing.T) {
	roundTrip(t, CreateSessionRequest{K: 5, Rho: 1.6})
	roundTrip(t, CreateSessionResponse{Session: 42})
	roundTrip(t, UpdateRequest{Updates: []UpdateEntry{
		{Session: 1, X: 10.5, Y: -3.25},
		{Session: 2, X: 0, Y: 0},
	}})
	roundTrip(t, UpdateResponse{Results: []UpdateResultEntry{
		{Session: 1, KNN: []int{3, 1, 2}},
		{Session: 2, Error: "engine: unknown session: 2"},
	}})
	roundTrip(t, ObjectRequest{X: 1.5, Y: 2.5})
	roundTrip(t, ObjectResponse{ID: 7})
	roundTrip(t, ErrorResponse{Error: "bad request"})
	roundTrip(t, LatencyStats{Count: 10, MeanUS: 1.5, P50US: 1, P95US: 4, P99US: 9, MaxUS: 20})
	roundTrip(t, SessionEvent{
		Session: 9, Seq: 3, Epoch: 17, Cause: "data",
		KNN: []int{4, 8, 2}, Added: []int{2}, Removed: []int{6},
	})
	roundTrip(t, StreamStats{
		Subscribers: 3, WatchedSessions: 2,
		Published: 100, Delivered: 90, Coalesced: 7, Dropped: 3,
	})
	roundTrip(t, StatsResponse{
		Shards: 4, Sessions: 100, Objects: 5000, Epoch: 12, Snapshots: 2,
		Updates: 100000, UptimeSec: 12.5, UpdatesPerSec: 8000,
		Latency: LatencyStats{Count: 100000, MeanUS: 2, P50US: 1, P95US: 5, P99US: 9, MaxUS: 100},
		Counters: metrics.Counters{
			Timestamps: 100000, Validations: 99000, Invalidations: 5000,
			Recomputations: 1000, ObjectsShipped: 9000, DistanceCalcs: 123456,
			DijkstraRuns: 0, EdgeRelaxations: 0, NodeVisits: 777,
		},
		Stream: StreamStats{Subscribers: 1, Published: 42, Delivered: 40, Coalesced: 2},
	})
}

// TestUpdateEntryOmissions pins the wire shape: empty kNN sets and error
// strings are omitted, so clients can treat their presence as meaningful.
func TestUpdateEntryOmissions(t *testing.T) {
	data, err := json.Marshal(UpdateResultEntry{Session: 3})
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"session":3}` {
		t.Errorf("empty entry = %s, want {\"session\":3}", data)
	}
	data, err = json.Marshal(UpdateResultEntry{Session: 3, Error: "boom"})
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"session":3,"error":"boom"}` {
		t.Errorf("error entry = %s", data)
	}
}

func TestNewLocationUpdates(t *testing.T) {
	entries := []UpdateEntry{{Session: 9, X: 1, Y: 2}, {Session: 10, X: 3, Y: 4}}
	batch := NewLocationUpdates(entries)
	if len(batch) != 2 {
		t.Fatalf("len = %d", len(batch))
	}
	if batch[0].Session != 9 || batch[0].Pos != geom.Pt(1, 2) {
		t.Errorf("batch[0] = %+v", batch[0])
	}
	if batch[1].Session != 10 || batch[1].Pos != geom.Pt(3, 4) {
		t.Errorf("batch[1] = %+v", batch[1])
	}
	if got := NewLocationUpdates(nil); len(got) != 0 {
		t.Errorf("nil entries -> %v", got)
	}
}

// TestNewUpdateResponseErrorShape: a per-session error must surface as the
// error string alone — never alongside a kNN set.
func TestNewUpdateResponseErrorShape(t *testing.T) {
	results := []engine.UpdateResult{
		{Session: 1, KNN: []int{5, 6}},
		{Session: 2, KNN: []int{7}, Err: errors.New("stale")},
		{Session: 3, Err: engine.ErrUnknownSession},
	}
	resp := NewUpdateResponse(results)
	if len(resp.Results) != 3 {
		t.Fatalf("len = %d", len(resp.Results))
	}
	if r := resp.Results[0]; r.Session != 1 || r.Error != "" || !reflect.DeepEqual(r.KNN, []int{5, 6}) {
		t.Errorf("results[0] = %+v", r)
	}
	if r := resp.Results[1]; r.Error != "stale" || r.KNN != nil {
		t.Errorf("results[1] must drop the kNN set on error: %+v", r)
	}
	if r := resp.Results[2]; r.Error != engine.ErrUnknownSession.Error() || r.KNN != nil {
		t.Errorf("results[2] = %+v", r)
	}
}

func TestNewLatencyStatsUnits(t *testing.T) {
	s := metrics.LatencySummary{
		Count: 4,
		Mean:  1500 * time.Nanosecond,
		P50:   time.Microsecond,
		P95:   2 * time.Microsecond,
		P99:   3 * time.Microsecond,
		Max:   time.Millisecond,
	}
	got := NewLatencyStats(s)
	want := LatencyStats{Count: 4, MeanUS: 1.5, P50US: 1, P95US: 2, P99US: 3, MaxUS: 1000}
	if got != want {
		t.Errorf("got %+v, want %+v", got, want)
	}
}

// TestSessionEventShapes pins the push wire shape: a no-result event is
// just session/seq/epoch/cause (empty sets omitted, so their presence is
// meaningful), and NewSessionEvent maps every broker field.
func TestSessionEventShapes(t *testing.T) {
	data, err := json.Marshal(SessionEvent{Session: 5, Seq: 2, Cause: "close"})
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"session":5,"seq":2,"epoch":0,"cause":"close"}` {
		t.Errorf("close event = %s", data)
	}

	ev := stream.Event{
		Session: 12, Seq: 4, Epoch: 9, Cause: stream.CauseData,
		KNN: []int{1, 2, 3}, Added: []int{3}, Removed: []int{7},
	}
	got := NewSessionEvent(ev)
	want := SessionEvent{
		Session: 12, Seq: 4, Epoch: 9, Cause: "data",
		KNN: []int{1, 2, 3}, Added: []int{3}, Removed: []int{7},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("NewSessionEvent = %+v, want %+v", got, want)
	}
}

// TestNewStatsResponse maps every engine stats field, including the
// snapshot-store fields of the shared-index architecture.
func TestNewStatsResponse(t *testing.T) {
	st := engine.Stats{
		Shards:        8,
		Sessions:      1000,
		Objects:       20000,
		Epoch:         17,
		Snapshots:     3,
		Updates:       500000,
		Uptime:        2 * time.Second,
		UpdatesPerSec: 250000,
		Counters:      metrics.Counters{Timestamps: 500000, Recomputations: 100},
		Latency:       metrics.LatencySummary{Count: 500000, Mean: time.Microsecond},
		Stream:        stream.Stats{Subscribers: 2, WatchedSessions: 5, Published: 10, Delivered: 8, Coalesced: 1, Dropped: 1},
	}
	got := NewStatsResponse(st)
	if got.Shards != 8 || got.Sessions != 1000 || got.Objects != 20000 ||
		got.Epoch != 17 || got.Snapshots != 3 || got.Updates != 500000 ||
		got.UptimeSec != 2 || got.UpdatesPerSec != 250000 ||
		got.Counters.Recomputations != 100 || got.Latency.Count != 500000 {
		t.Errorf("got %+v", got)
	}
	if got.Stream != (StreamStats{Subscribers: 2, WatchedSessions: 5, Published: 10, Delivered: 8, Coalesced: 1, Dropped: 1}) {
		t.Errorf("stream stats = %+v", got.Stream)
	}
}
