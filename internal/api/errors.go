package api

import (
	"errors"
	"net/http"

	"repro/internal/engine"
)

// ErrorCode is the machine-readable error classification shared by both
// wire surfaces: JSON responses carry it as ErrorResponse.Code (and per
// entry as UpdateResultEntry.Code), binary ingest acks carry its frame
// byte (FrameCode). Codes are stable API; clients switch on them instead
// of parsing error strings.
type ErrorCode string

const (
	CodeOK             ErrorCode = "ok"
	CodeBadRequest     ErrorCode = "bad_request"
	CodeTooLarge       ErrorCode = "too_large"
	CodeUnknownSession ErrorCode = "unknown_session"
	CodeUnknownObject  ErrorCode = "unknown_object"
	CodeSiteExists     ErrorCode = "site_exists"
	CodeLastSite       ErrorCode = "last_site"
	CodeNoNetwork      ErrorCode = "no_network"
	CodeNoPlaneIndex   ErrorCode = "no_plane_index"
	CodeOutOfBounds    ErrorCode = "out_of_bounds"
	CodeDegraded       ErrorCode = "degraded"
	CodeOverloaded     ErrorCode = "overloaded"
	CodeExpired        ErrorCode = "expired"
	CodeUnavailable    ErrorCode = "unavailable"
	CodeInternal       ErrorCode = "internal"
	// CodeBadFrame is protocol-level: the ingest stream carried a frame the
	// server could not decode (bad CRC, bad codec). The connection closes
	// after the ack that reports it — framing is lost.
	CodeBadFrame ErrorCode = "bad_frame"
)

// ErrorInfo is one row of the shared error table: how a classified error
// is rendered on each surface.
type ErrorInfo struct {
	Code ErrorCode
	// Status is the HTTP status of a JSON response carrying this code.
	Status int
	// RetryAfter marks transient conditions (degraded durability, admission
	// shed): JSON responses attach a Retry-After header, ingest clients
	// should back off and resend.
	RetryAfter bool
}

// table is the single error→code/status mapping. insqd's JSON handlers
// and the binary frame status bytes both go through it, so the two
// surfaces cannot drift. Order matters only for wrapped errors that match
// multiple targets (none today).
var table = []struct {
	err  error
	info ErrorInfo
}{
	{engine.ErrUnknownSession, ErrorInfo{CodeUnknownSession, http.StatusNotFound, false}},
	{engine.ErrUnknownObject, ErrorInfo{CodeUnknownObject, http.StatusNotFound, false}},
	{engine.ErrSiteExists, ErrorInfo{CodeSiteExists, http.StatusConflict, false}},
	{engine.ErrLastSite, ErrorInfo{CodeLastSite, http.StatusConflict, false}},
	{engine.ErrNoNetwork, ErrorInfo{CodeNoNetwork, http.StatusBadRequest, false}},
	{engine.ErrNoPlaneIndex, ErrorInfo{CodeNoPlaneIndex, http.StatusBadRequest, false}},
	{engine.ErrOutOfBounds, ErrorInfo{CodeOutOfBounds, http.StatusBadRequest, false}},
	{engine.ErrDegraded, ErrorInfo{CodeDegraded, http.StatusServiceUnavailable, true}},
	{engine.ErrOverloaded, ErrorInfo{CodeOverloaded, http.StatusTooManyRequests, true}},
	{engine.ErrExpired, ErrorInfo{CodeExpired, http.StatusGatewayTimeout, false}},
	{engine.ErrClosed, ErrorInfo{CodeUnavailable, http.StatusServiceUnavailable, false}},
}

// Classify maps an engine error onto the shared table. nil classifies as
// CodeOK/200; an unrecognized error as CodeInternal/500.
func Classify(err error) ErrorInfo {
	if err == nil {
		return ErrorInfo{CodeOK, http.StatusOK, false}
	}
	for _, row := range table {
		if errors.Is(err, row.err) {
			return row.info
		}
	}
	return ErrorInfo{CodeInternal, http.StatusInternalServerError, false}
}

// frameCodes fixes the byte each code travels as inside ingest ack
// frames. The numbering is wire format — append only, never renumber.
var frameCodes = map[ErrorCode]byte{
	CodeOK:             0,
	CodeBadRequest:     1,
	CodeTooLarge:       2,
	CodeUnknownSession: 3,
	CodeUnknownObject:  4,
	CodeSiteExists:     5,
	CodeLastSite:       6,
	CodeNoNetwork:      7,
	CodeNoPlaneIndex:   8,
	CodeOutOfBounds:    9,
	CodeDegraded:       10,
	CodeOverloaded:     11,
	CodeExpired:        12,
	CodeUnavailable:    13,
	CodeInternal:       14,
	CodeBadFrame:       15,
}

// codeNames is the inverse of frameCodes, built once at init.
var codeNames = func() map[byte]ErrorCode {
	m := make(map[byte]ErrorCode, len(frameCodes))
	for code, b := range frameCodes {
		m[b] = code
	}
	return m
}()

// FrameCode returns the wire byte for a code; unknown codes travel as
// CodeInternal so a skewed client still sees a well-formed status.
func FrameCode(code ErrorCode) byte {
	if b, ok := frameCodes[code]; ok {
		return b
	}
	return frameCodes[CodeInternal]
}

// CodeFromFrame decodes an ack status byte; unknown bytes (a newer
// server) decode as CodeInternal rather than failing the stream.
func CodeFromFrame(b byte) ErrorCode {
	if code, ok := codeNames[b]; ok {
		return code
	}
	return CodeInternal
}

// Transient reports whether a code is worth retrying after a backoff:
// the degraded window heals, the shard queue drains, a recovering server
// becomes ready.
func Transient(code ErrorCode) bool {
	switch code {
	case CodeDegraded, CodeOverloaded, CodeUnavailable:
		return true
	}
	return false
}
