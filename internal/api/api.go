// Package api defines the wire surface of the insqd server — the JSON
// types of the HTTP interface, the binary ingest frame codec, and the
// shared error table both speak — used by the server (internal/server,
// cmd/insqd) and its clients (internal/client, cmd/loadgen).
//
// Endpoints:
//
//	POST   /v1/sessions                 CreateSessionRequest  -> CreateSessionResponse
//	DELETE /v1/sessions/{id}                                  -> 204
//	GET    /v1/sessions/{id}/events                           -> SSE stream of SessionEvent
//	GET    /v1/events?sessions=1,2,...                        -> SSE stream (all sessions when the parameter is omitted)
//	POST   /v1/update                   UpdateRequest         -> UpdateResponse
//	POST   /v1/network/update           NetworkUpdateRequest  -> UpdateResponse
//	POST   /v1/objects                  ObjectRequest         -> ObjectResponse
//	DELETE /v1/objects/{id}                                   -> 204
//	POST   /v1/network/objects          NetworkObjectRequest  -> ObjectResponse
//	DELETE /v1/network/objects/{vertex}                       -> 204
//	POST   /v1/ingest                   binary frame stream   -> binary ack stream (see ingest.go)
//	GET    /v1/stats                                          -> StatsResponse
//	GET    /healthz                                           -> 200 "ok" (liveness; answers even before ready)
//	GET    /readyz                                            -> 200 "ready" | 503 ErrorResponse (readiness incl. degraded mode)
//
// Sessions come in two flavors: plane sessions (the default) move in the
// 2D Euclidean space and are fed through /v1/update; network sessions
// (CreateSessionRequest.Network) move along the road network and are fed
// through /v1/network/update with edge positions. Network data objects
// are identified by the vertex they sit on, so /v1/network/objects echoes
// the vertex as the object id.
//
// The /events endpoints are Server-Sent Events streams: each frame's SSE
// event name is the SessionEvent cause ("snapshot", "move", "data",
// "close", "bye") and its data line is the SessionEvent JSON. A stream
// opens with one snapshot per explicitly named session, then carries
// result deltas pushed by the engine; "bye" is the final frame of a
// graceful server shutdown.
//
// /v1/ingest is the streaming fast path: the request body is an open-
// ended sequence of length-prefixed CRC32C batch frames (chunked upload
// over a persistent connection), the response streams back one ack frame
// per batch. The same protocol runs over a raw TCP connection when the
// server enables -ingest-addr. See ingest.go for the frame layout and
// codec.
//
// Errors are ErrorResponse bodies with the matching HTTP status and a
// machine-readable code from the shared error table (errors.go); ingest
// acks carry the same codes as status bytes. The codes:
//
//	bad_request too_large unknown_session unknown_object site_exists
//	last_site no_network no_plane_index out_of_bounds degraded
//	overloaded expired unavailable internal bad_frame
//
// degraded, overloaded and unavailable are transient (JSON responses
// attach Retry-After; ingest clients back off and resend); the rest are
// request errors that retrying cannot fix.
package api

import (
	"time"

	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/roadnet"
	"repro/internal/stream"
	"repro/internal/wal"
)

// CreateSessionRequest registers one moving kNN query session.
type CreateSessionRequest struct {
	// K is the number of nearest neighbors to maintain.
	K int `json:"k"`
	// Rho is the prefetch ratio (>= 1); 0 defaults to 1.6.
	Rho float64 `json:"rho,omitempty"`
	// Network selects a road-network session (fed via /v1/network/update)
	// instead of a plane session.
	Network bool `json:"network,omitempty"`
}

// CreateSessionResponse returns the id to use in update batches.
type CreateSessionResponse struct {
	Session uint64 `json:"session"`
}

// UpdateEntry is one session's location update within a batch.
type UpdateEntry struct {
	Session uint64  `json:"session"`
	X       float64 `json:"x"`
	Y       float64 `json:"y"`
}

// UpdateRequest carries location updates for many sessions in one request.
type UpdateRequest struct {
	Updates []UpdateEntry `json:"updates"`
}

// UpdateResultEntry is the outcome for one update: the current kNN object
// ids, or the per-session error (with its machine-readable code from the
// shared error table).
type UpdateResultEntry struct {
	Session uint64    `json:"session"`
	KNN     []int     `json:"knn,omitempty"`
	Error   string    `json:"error,omitempty"`
	Code    ErrorCode `json:"code,omitempty"`
}

// UpdateResponse parallels UpdateRequest.Updates.
type UpdateResponse struct {
	Results []UpdateResultEntry `json:"results"`
}

// NewLocationUpdates converts wire entries to engine batch input — the
// request-direction counterpart of NewUpdateResponse, shared by the server
// and in-process clients so the two mappings cannot drift.
func NewLocationUpdates(entries []UpdateEntry) []engine.LocationUpdate {
	batch := make([]engine.LocationUpdate, len(entries))
	for i, u := range entries {
		batch[i] = engine.LocationUpdate{Session: engine.SessionID(u.Session), Pos: geom.Pt(u.X, u.Y)}
	}
	return batch
}

// NetworkUpdateEntry is one network session's location update: a position
// on edge (U,V) at fraction T from U (U == V or T == 0 means exactly at
// vertex U).
type NetworkUpdateEntry struct {
	Session uint64  `json:"session"`
	U       int     `json:"u"`
	V       int     `json:"v"`
	T       float64 `json:"t"`
}

// NetworkUpdateRequest carries network location updates for many sessions
// in one request; responses reuse UpdateResponse.
type NetworkUpdateRequest struct {
	Updates []NetworkUpdateEntry `json:"updates"`
}

// NewNetworkLocationUpdates converts wire entries to engine batch input,
// shared by the server and in-process clients so the mappings cannot
// drift.
func NewNetworkLocationUpdates(entries []NetworkUpdateEntry) []engine.NetworkLocationUpdate {
	batch := make([]engine.NetworkLocationUpdate, len(entries))
	for i, u := range entries {
		batch[i] = engine.NetworkLocationUpdate{
			Session: engine.SessionID(u.Session),
			Pos:     roadnet.Position{U: u.U, V: u.V, T: u.T},
		}
	}
	return batch
}

// NewUpdateResponse converts engine batch results to wire form, the one
// canonical mapping shared by the server and in-process clients: on a
// per-session error the entry carries the error string and no kNN set.
func NewUpdateResponse(results []engine.UpdateResult) UpdateResponse {
	resp := UpdateResponse{Results: make([]UpdateResultEntry, len(results))}
	for i, r := range results {
		entry := UpdateResultEntry{Session: uint64(r.Session), KNN: r.KNN}
		if r.Err != nil {
			entry.Error = r.Err.Error()
			entry.Code = Classify(r.Err).Code
			entry.KNN = nil
		}
		resp.Results[i] = entry
	}
	return resp
}

// SessionEvent is one push notification on the /events SSE streams: a
// session's current kNN set plus the membership delta against the
// previously pushed result. Seq is strictly increasing per session; a gap
// means intermediate events were coalesced or dropped, and the full KNN
// field re-baselines the consumer either way.
type SessionEvent struct {
	Session uint64 `json:"session"`
	Seq     uint64 `json:"seq"`
	Epoch   uint64 `json:"epoch"`
	// Cause is "snapshot" (baseline at subscribe time), "move" (the
	// session's own location update changed the result), "data" (an object
	// insert/delete invalidated it and the server recomputed eagerly),
	// "close" (session ended) or "bye" (server shutting down).
	Cause   string `json:"cause"`
	KNN     []int  `json:"knn,omitempty"`
	Added   []int  `json:"added,omitempty"`
	Removed []int  `json:"removed,omitempty"`
}

// NewSessionEvent converts a broker event to wire form — the one mapping
// shared by the SSE server and in-process consumers.
func NewSessionEvent(ev stream.Event) SessionEvent {
	return SessionEvent{
		Session: ev.Session,
		Seq:     ev.Seq,
		Epoch:   ev.Epoch,
		Cause:   string(ev.Cause),
		KNN:     ev.KNN,
		Added:   ev.Added,
		Removed: ev.Removed,
	}
}

// ObjectRequest inserts a plane data object.
type ObjectRequest struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// NetworkObjectRequest inserts a network data object at a road-network
// vertex.
type NetworkObjectRequest struct {
	Vertex int `json:"vertex"`
}

// ObjectResponse returns the inserted object's id (the vertex itself for
// network objects).
type ObjectResponse struct {
	ID int `json:"id"`
}

// LatencyStats is a latency summary in microseconds.
type LatencyStats struct {
	Count  uint64  `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P95US  float64 `json:"p95_us"`
	P99US  float64 `json:"p99_us"`
	MaxUS  float64 `json:"max_us"`
}

// NewLatencyStats converts an engine latency summary to wire form.
func NewLatencyStats(s metrics.LatencySummary) LatencyStats {
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	return LatencyStats{
		Count:  s.Count,
		MeanUS: us(s.Mean),
		P50US:  us(s.P50),
		P95US:  us(s.P95),
		P99US:  us(s.P99),
		MaxUS:  us(s.Max),
	}
}

// StreamStats is the push broker's fan-out state: live subscribers and
// the counters that make the backpressure policy observable (coalesced =
// newer events merged into a pending one, dropped = pending events
// evicted by a full queue).
type StreamStats struct {
	Subscribers     int    `json:"subscribers"`
	WatchedSessions int    `json:"watched_sessions"`
	Published       uint64 `json:"published"`
	Delivered       uint64 `json:"delivered"`
	Coalesced       uint64 `json:"coalesced"`
	Dropped         uint64 `json:"dropped"`
}

// NewStreamStats converts broker stats to wire form.
func NewStreamStats(s stream.Stats) StreamStats {
	return StreamStats{
		Subscribers:     s.Subscribers,
		WatchedSessions: s.WatchedSessions,
		Published:       s.Published,
		Delivered:       s.Delivered,
		Coalesced:       s.Coalesced,
		Dropped:         s.Dropped,
	}
}

// WALStats is the durability pipeline's counter snapshot: the write-ahead
// log's append/fsync side, the checkpoint lifecycle, and what the last
// recovery replayed. Present in StatsResponse only when the server runs
// with -data-dir.
type WALStats struct {
	Policy            string  `json:"policy"`
	AppendedBatches   uint64  `json:"appended_batches"`
	AppendedMutations uint64  `json:"appended_mutations"`
	AppendedBytes     uint64  `json:"appended_bytes"`
	Fsyncs            uint64  `json:"fsyncs"`
	FsyncTotalMS      float64 `json:"fsync_total_ms"`
	Segments          int     `json:"segments"`
	PrunedSegments    uint64  `json:"pruned_segments"`
	Checkpoints       uint64  `json:"checkpoints"`
	CheckpointEpoch   uint64  `json:"checkpoint_epoch"`
	CheckpointBytes   uint64  `json:"checkpoint_bytes"`
	ReplayedBatches   uint64  `json:"replayed_batches"`
	ReplayedMutations uint64  `json:"replayed_mutations"`
	TruncatedBytes    int64   `json:"truncated_bytes"`
	RecoveredEpoch    uint64  `json:"recovered_epoch"`
	RecoveryMS        float64 `json:"recovery_ms"`
	// Degraded is true while the WAL is in read-only degraded mode (appends
	// rejected, probe goroutine trying to heal); DegradeEvents/HealEvents
	// count the round trips.
	Degraded      bool   `json:"degraded"`
	DegradeEvents uint64 `json:"degrade_events"`
	HealEvents    uint64 `json:"heal_events"`
}

// NewWALStats converts a durability snapshot to wire form.
func NewWALStats(s wal.Stats) WALStats {
	return WALStats{
		Policy:            string(s.Policy),
		AppendedBatches:   s.AppendedBatches,
		AppendedMutations: s.AppendedMutations,
		AppendedBytes:     s.AppendedBytes,
		Fsyncs:            s.Fsyncs,
		FsyncTotalMS:      float64(s.FsyncTotal.Nanoseconds()) / 1e6,
		Segments:          s.Segments,
		PrunedSegments:    s.PrunedSegments,
		Checkpoints:       s.Checkpoints,
		CheckpointEpoch:   s.CheckpointEpoch,
		CheckpointBytes:   s.CheckpointBytes,
		ReplayedBatches:   s.ReplayedBatches,
		ReplayedMutations: s.ReplayedMutations,
		TruncatedBytes:    s.TruncatedBytes,
		RecoveredEpoch:    s.RecoveredEpoch,
		RecoveryMS:        float64(s.Recovery.Nanoseconds()) / 1e6,
		Degraded:          s.Degraded,
		DegradeEvents:     s.DegradeEvents,
		HealEvents:        s.HealEvents,
	}
}

// StatsResponse is the engine snapshot served by GET /v1/stats. Snapshots
// is the number of live index versions: 1 when every session has re-pinned
// to the current one, more while lagging sessions keep old versions alive.
type StatsResponse struct {
	Shards         int    `json:"shards"`
	Sessions       int    `json:"sessions"`
	Objects        int    `json:"objects"`
	NetworkObjects int    `json:"network_objects"`
	Epoch          uint64 `json:"epoch"`
	Snapshots      int    `json:"snapshots"`
	Updates        uint64 `json:"updates"`
	// EpochPublishUS is the mean wall time of publishing one data-update
	// epoch; IndexNodes/IndexNodesCopied expose how much of the index the
	// latest epoch shared with its predecessor (path-copying publication).
	EpochPublishUS   float64 `json:"epoch_publish_us"`
	IndexNodes       int     `json:"index_nodes"`
	IndexNodesCopied int     `json:"index_nodes_copied"`
	// NetLandmarks is the network index's ALT landmark count (0 without a
	// road network); NetProjRebuilds counts lazy site-projection rebuilds
	// — together with Counters.EdgeRelaxations they make the shortest-path
	// pruning observable in serving, not just in bench.
	NetLandmarks    int     `json:"net_landmarks,omitempty"`
	NetProjRebuilds uint64  `json:"net_proj_rebuilds,omitempty"`
	UptimeSec       float64 `json:"uptime_seconds"`
	UpdatesPerSec   float64 `json:"updates_per_sec"`
	// Degraded mirrors the durability layer's read-only mode (writes get
	// 503 while it is set); Shed counts update entries rejected by
	// admission control (429); Expired counts entries dropped because
	// their request deadline passed before apply.
	Degraded bool             `json:"degraded"`
	Shed     uint64           `json:"shed"`
	Expired  uint64           `json:"expired"`
	Latency  LatencyStats     `json:"latency"`
	Counters metrics.Counters `json:"counters"`
	Stream   StreamStats      `json:"stream"`
	// WAL is present only when the server runs with durability enabled.
	WAL *WALStats `json:"wal,omitempty"`
	// Ingest is present only when the server has handled binary ingest
	// streams; filled by the server (like Version), not the engine.
	Ingest *IngestStats `json:"ingest,omitempty"`
	// Version/GoVersion/Revision identify the serving build; filled by the
	// server (obs.Build), not the engine, and omitted by in-process
	// embedders that don't care.
	Version   string `json:"version,omitempty"`
	GoVersion string `json:"go_version,omitempty"`
	Revision  string `json:"revision,omitempty"`
}

// NewStatsResponse converts an engine snapshot to wire form.
func NewStatsResponse(st engine.Stats) StatsResponse {
	resp := StatsResponse{
		Shards:           st.Shards,
		Sessions:         st.Sessions,
		Objects:          st.Objects,
		NetworkObjects:   st.NetworkObjects,
		Epoch:            st.Epoch,
		Snapshots:        st.Snapshots,
		Updates:          st.Updates,
		EpochPublishUS:   st.EpochPublishUS,
		IndexNodes:       st.IndexNodes,
		IndexNodesCopied: st.IndexNodesCopied,
		NetLandmarks:     st.NetLandmarks,
		NetProjRebuilds:  st.NetProjRebuilds,
		UptimeSec:        st.Uptime.Seconds(),
		UpdatesPerSec:    st.UpdatesPerSec,
		Degraded:         st.Degraded,
		Shed:             st.Shed,
		Expired:          st.Expired,
		Latency:          NewLatencyStats(st.Latency),
		Counters:         st.Counters,
		Stream:           NewStreamStats(st.Stream),
	}
	if st.WAL != nil {
		ws := NewWALStats(*st.WAL)
		resp.WAL = &ws
	}
	return resp
}

// IngestStats is the binary ingest path's counter snapshot: frames and
// bytes over all streams, how well the coalescing pump merged pipelined
// frames into engine batches (Batches <= Frames; CoalesceFactor =
// Frames/Batches), and the live connection gauge.
type IngestStats struct {
	Connections      int     `json:"connections"`
	FramesTotal      uint64  `json:"frames_total"`
	Batches          uint64  `json:"batches"`
	CoalescedBatches uint64  `json:"coalesced_batches"`
	CoalesceFactor   float64 `json:"coalesce_factor"`
	BytesIn          uint64  `json:"bytes_in"`
	BytesOut         uint64  `json:"bytes_out"`
	Updates          uint64  `json:"updates"`
	Mutations        uint64  `json:"mutations"`
}

// ErrorResponse is the body of every non-2xx response: the human-readable
// error plus its machine-readable code from the shared error table.
type ErrorResponse struct {
	Error string    `json:"error"`
	Code  ErrorCode `json:"code,omitempty"`
}
