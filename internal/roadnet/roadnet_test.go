package roadnet

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

var testBounds = geom.NewRect(geom.Pt(0, 0), geom.Pt(1000, 1000))

// lineGraph builds 0-1-2-...-(n-1) with unit weights.
func lineGraph(n int) *Graph {
	g := NewGraph()
	for i := 0; i < n; i++ {
		g.AddVertex(geom.Pt(float64(i), 0))
	}
	for i := 1; i < n; i++ {
		if err := g.AddEdge(i-1, i, 1); err != nil {
			panic(err)
		}
	}
	return g
}

func TestAddEdgeValidation(t *testing.T) {
	g := NewGraph()
	a := g.AddVertex(geom.Pt(0, 0))
	b := g.AddVertex(geom.Pt(3, 4))
	if err := g.AddEdge(a, 7, 1); err == nil {
		t.Error("expected error for unknown vertex")
	}
	if err := g.AddEdge(a, a, 1); err == nil {
		t.Error("expected error for self-loop")
	}
	if err := g.AddEdge(a, b, 0); err != nil { // 0 means Euclidean
		t.Fatal(err)
	}
	if w, ok := g.EdgeWeight(a, b); !ok || w != 5 {
		t.Errorf("EdgeWeight = %g,%v want 5,true", w, ok)
	}
	if err := g.AddEdge(b, a, 2); err == nil {
		t.Error("expected error for parallel edge")
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestShortestDistancesLine(t *testing.T) {
	g := lineGraph(6)
	dist := g.ShortestDistances([]Source{{V: 0, D: 0}}, -1)
	for i := 0; i < 6; i++ {
		if dist[i] != float64(i) {
			t.Errorf("dist[%d] = %g, want %d", i, dist[i], i)
		}
	}
	// Early stop: distances beyond the cutoff may be unsettled.
	dist = g.ShortestDistances([]Source{{V: 0, D: 0}}, 2)
	if dist[1] != 1 || dist[2] != 2 {
		t.Errorf("bounded Dijkstra wrong near the source: %v", dist)
	}
}

func TestMultiSourceDistances(t *testing.T) {
	g := lineGraph(10)
	// Position in the middle of edge (4,5) at t=0.25: offsets 0.25 and 0.75.
	pos := Position{U: 4, V: 5, T: 0.25}
	dist := g.ShortestDistances(pos.Sources(g), -1)
	if math.Abs(dist[4]-0.25) > 1e-12 || math.Abs(dist[5]-0.75) > 1e-12 {
		t.Fatalf("endpoint distances wrong: %g, %g", dist[4], dist[5])
	}
	if math.Abs(dist[0]-4.25) > 1e-12 || math.Abs(dist[9]-4.75) > 1e-12 {
		t.Fatalf("far distances wrong: %g, %g", dist[0], dist[9])
	}
}

func TestShortestPathMatchesFloydWarshall(t *testing.T) {
	g, err := RandomPlanarNetwork(60, testBounds, 0.5, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	fw := g.FloydWarshall()
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		s, u := rng.Intn(60), rng.Intn(60)
		path, d, ok := g.ShortestPath(s, u)
		if !ok {
			t.Fatalf("no path %d->%d in connected graph", s, u)
		}
		if math.Abs(d-fw[s][u]) > 1e-9*(fw[s][u]+1) {
			t.Fatalf("ShortestPath(%d,%d) = %g, want %g", s, u, d, fw[s][u])
		}
		// Verify the returned path is real and has the claimed length.
		var sum float64
		for i := 1; i < len(path); i++ {
			w, ok := g.EdgeWeight(path[i-1], path[i])
			if !ok {
				t.Fatalf("path hop (%d,%d) is not an edge", path[i-1], path[i])
			}
			sum += w
		}
		if path[0] != s || path[len(path)-1] != u {
			t.Fatalf("path endpoints %d..%d, want %d..%d", path[0], path[len(path)-1], s, u)
		}
		if math.Abs(sum-d) > 1e-9*(d+1) {
			t.Fatalf("path length %g != reported %g", sum, d)
		}
	}
}

func TestAStarMatchesDijkstra(t *testing.T) {
	g, err := GridNetwork(10, 10, testBounds, 0.2, 0.4, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		s, u := rng.Intn(100), rng.Intn(100)
		_, want, ok := g.ShortestPath(s, u)
		if !ok {
			t.Fatalf("grid should be connected")
		}
		_, got, ok := g.AStar(s, u)
		if !ok {
			t.Fatalf("A* found no path %d->%d", s, u)
		}
		if math.Abs(got-want) > 1e-9*(want+1) {
			t.Fatalf("A*(%d,%d) = %g, want %g", s, u, got, want)
		}
	}
}

func TestDisconnectedPath(t *testing.T) {
	g := NewGraph()
	g.AddVertex(geom.Pt(0, 0))
	g.AddVertex(geom.Pt(1, 0))
	if _, _, ok := g.ShortestPath(0, 1); ok {
		t.Error("found path in disconnected graph")
	}
	if d := g.Distance(0, 1); !math.IsInf(d, 1) {
		t.Errorf("Distance = %g, want +Inf", d)
	}
	if _, _, ok := g.AStar(0, 1); ok {
		t.Error("A* found path in disconnected graph")
	}
}

func TestGridNetworkShape(t *testing.T) {
	g, err := GridNetwork(5, 7, testBounds, 0.1, 0.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 35 {
		t.Errorf("vertices = %d, want 35", g.NumVertices())
	}
	wantEdges := 5*6 + 4*7 // horizontal + vertical
	if g.NumEdges() != wantEdges {
		t.Errorf("edges = %d, want %d", g.NumEdges(), wantEdges)
	}
	if !g.Connected() {
		t.Error("grid not connected")
	}
	for v := 0; v < g.NumVertices(); v++ {
		if !testBounds.Contains(g.Point(v)) {
			t.Errorf("vertex %d at %v escapes bounds", v, g.Point(v))
		}
	}
	if _, err := GridNetwork(1, 5, testBounds, 0, 0, 1); err == nil {
		t.Error("expected error for 1-row grid")
	}
}

func TestRandomPlanarNetworkConnected(t *testing.T) {
	for _, keep := range []float64{0, 0.4, 1} {
		g, err := RandomPlanarNetwork(150, testBounds, keep, 0.2, 7)
		if err != nil {
			t.Fatal(err)
		}
		if g.NumVertices() != 150 {
			t.Errorf("keep=%g: vertices = %d, want 150", keep, g.NumVertices())
		}
		if !g.Connected() {
			t.Errorf("keep=%g: network not connected", keep)
		}
		if g.NumEdges() < 149 {
			t.Errorf("keep=%g: %d edges, below spanning tree size", keep, g.NumEdges())
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a, _ := RandomPlanarNetwork(50, testBounds, 0.5, 0.2, 42)
	b, _ := RandomPlanarNetwork(50, testBounds, 0.5, 0.2, 42)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different edge counts")
	}
	for v := 0; v < 50; v++ {
		if !a.Point(v).Eq(b.Point(v)) {
			t.Fatal("same seed produced different vertices")
		}
	}
}

func TestPositionBasics(t *testing.T) {
	g := lineGraph(4)
	p := Position{U: 1, V: 2, T: 0.5}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	if got := p.Point(g); !got.Eq(geom.Pt(1.5, 0)) {
		t.Errorf("Point = %v, want (1.5, 0)", got)
	}
	if v, ok := VertexPosition(2).AtVertex(); !ok || v != 2 {
		t.Errorf("AtVertex = %d,%v", v, ok)
	}
	if err := (Position{U: 0, V: 2, T: 0.5}).Validate(g); err == nil {
		t.Error("expected error for non-edge position")
	}
	if err := (Position{U: 0, V: 1, T: 1.5}).Validate(g); err == nil {
		t.Error("expected error for fraction out of range")
	}
	if d := g.DistanceTo(p, 3); math.Abs(d-1.5) > 1e-12 {
		t.Errorf("DistanceTo = %g, want 1.5", d)
	}
}

func TestRoute(t *testing.T) {
	g := lineGraph(5)
	r, err := NewRoute(g, []int{0, 1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if r.Length() != 4 {
		t.Errorf("Length = %g, want 4", r.Length())
	}
	p := r.PositionAt(2.5)
	if p.U != 2 || p.V != 3 || math.Abs(p.T-0.5) > 1e-12 {
		t.Errorf("PositionAt(2.5) = %+v", p)
	}
	if v, ok := r.PositionAt(-1).AtVertex(); !ok || v != 0 {
		t.Errorf("PositionAt(-1) = %d,%v", v, ok)
	}
	if v, ok := r.PositionAt(99).AtVertex(); !ok || v != 4 {
		t.Errorf("PositionAt(99) = %d,%v", v, ok)
	}
	if _, err := NewRoute(g, []int{0, 2}); err == nil {
		t.Error("expected error for non-edge hop")
	}
	if _, err := NewRoute(g, nil); err == nil {
		t.Error("expected error for empty route")
	}
}

func TestRandomWalkRoute(t *testing.T) {
	g, err := GridNetwork(8, 8, testBounds, 0.1, 0.2, 9)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RandomWalkRoute(g, 0, 2000, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r.Length() < 2000 {
		t.Errorf("walk length %g, want >= 2000", r.Length())
	}
	// Same seed, same walk.
	r2, _ := RandomWalkRoute(g, 0, 2000, 10)
	if r.Length() != r2.Length() {
		t.Error("walk not deterministic")
	}
}

func TestShortestPathRoute(t *testing.T) {
	g := lineGraph(6)
	r, err := ShortestPathRoute(g, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Length() != 5 {
		t.Errorf("Length = %g, want 5", r.Length())
	}
}

func TestEdgeRelaxationsCounter(t *testing.T) {
	g := lineGraph(10)
	g.ResetStats()
	g.ShortestDistances([]Source{{V: 0, D: 0}}, -1)
	if g.EdgeRelaxations() == 0 {
		t.Error("relaxations not counted")
	}
	g.ResetStats()
	if g.EdgeRelaxations() != 0 {
		t.Error("ResetStats did not zero counter")
	}
}

func BenchmarkDijkstraGrid64(b *testing.B) {
	g, err := GridNetwork(64, 64, testBounds, 0.2, 0.3, 11)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ShortestDistances([]Source{{V: i % g.NumVertices(), D: 0}}, -1)
	}
}

func BenchmarkBidirectional(b *testing.B) {
	g, err := GridNetwork(64, 64, testBounds, 0.2, 0.3, 12)
	if err != nil {
		b.Fatal(err)
	}
	n := g.NumVertices()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ShortestPath(i%n, (i*7919+13)%n)
	}
}
