package roadnet

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

func TestHeap4Ordering(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var h heap4
	var want []heapItem
	for i := 0; i < 500; i++ {
		// Few distinct keys, so the (key, v) tie-break is exercised hard.
		it := heapItem{key: float64(rng.Intn(8)), d: rng.Float64(), v: int32(rng.Intn(64))}
		h.push(it)
		want = append(want, it)
	}
	sort.SliceStable(want, func(i, j int) bool {
		if want[i].key != want[j].key {
			return want[i].key < want[j].key
		}
		return want[i].v < want[j].v
	})
	for i, w := range want {
		got := h.pop()
		if got.key != w.key || got.v != w.v {
			t.Fatalf("pop %d = (%g, %d), want (%g, %d)", i, got.key, got.v, w.key, w.v)
		}
	}
	if len(h) != 0 {
		t.Fatalf("heap not drained: %d left", len(h))
	}
}

func TestSearchScratchEpochs(t *testing.T) {
	var sc SearchScratch
	sc.Begin(8)
	if !sc.TryImprove(3, 5) {
		t.Fatal("first improvement rejected")
	}
	if sc.TryImprove(3, 5) || sc.TryImprove(3, 7) {
		t.Fatal("non-improvement accepted")
	}
	if !sc.TryImprove(3, 2) {
		t.Fatal("strict improvement rejected")
	}
	if got := sc.DistAt(3); got != 2 {
		t.Fatalf("DistAt = %g, want 2", got)
	}
	if sc.Reached(4) {
		t.Fatal("untouched vertex reads reached")
	}
	// A new epoch logically clears everything without touching the arrays.
	sc.Begin(8)
	if sc.Reached(3) || !math.IsInf(sc.DistAt(3), 1) {
		t.Fatal("epoch bump did not clear the distance state")
	}
	// The mark set is independent of the distance state.
	sc.MarkBegin(8)
	sc.SetMark(2, 7)
	if got := sc.Mark(2); got != 7 {
		t.Fatalf("Mark = %d, want 7", got)
	}
	if got := sc.Mark(3); got != 0 {
		t.Fatalf("unset Mark = %d, want 0", got)
	}
	sc.MarkBegin(8)
	if got := sc.Mark(2); got != 0 {
		t.Fatalf("Mark after MarkBegin = %d, want 0", got)
	}
}

func TestCSRMatchesAdjacency(t *testing.T) {
	g, err := RandomPlanarNetwork(60, testBounds, 0.5, 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	checkCSR := func(g *Graph) {
		t.Helper()
		c := g.CSR()
		if len(c.Off) != g.NumVertices()+1 {
			t.Fatalf("CSR offsets: %d, want %d", len(c.Off), g.NumVertices()+1)
		}
		edges := 0
		for v := 0; v < g.NumVertices(); v++ {
			for e := c.Off[v]; e < c.Off[v+1]; e++ {
				edges++
				u := int(c.To[e])
				w, ok := g.EdgeWeight(v, u)
				if !ok {
					t.Fatalf("CSR edge %d-%d not in the graph", v, u)
				}
				if w != c.W[e] {
					t.Fatalf("CSR weight %d-%d = %g, graph says %g", v, u, c.W[e], w)
				}
			}
		}
		if edges != 2*g.NumEdges() {
			t.Fatalf("CSR half-edges = %d, want %d", edges, 2*g.NumEdges())
		}
	}
	checkCSR(g)

	// Mutation invalidates the cached view; the rebuilt one includes the
	// new edge, and an explicit zero weight survives (AddEdgeWeight must
	// not substitute the Euclidean length the way AddEdge does).
	a := g.AddVertex(geom.Pt(1, 1))
	b := g.AddVertex(geom.Pt(2, 2))
	if err := g.AddEdgeWeight(a, b, 0); err != nil {
		t.Fatal(err)
	}
	checkCSR(g)
	if w, ok := g.EdgeWeight(a, b); !ok || w != 0 {
		t.Fatalf("zero-weight edge reads (%g, %v)", w, ok)
	}

	// Reset recycles the CSR storage; the rebuilt graph gets a fresh view.
	g.Reset()
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatal("Reset left vertices or edges behind")
	}
	v0 := g.AddVertex(geom.Pt(0, 0))
	v1 := g.AddVertex(geom.Pt(3, 4))
	if err := g.AddEdge(v0, v1, 0); err != nil {
		t.Fatal(err)
	}
	checkCSR(g)
}

func TestLandmarksDeterministicAndComponentCover(t *testing.T) {
	g, err := RandomPlanarNetwork(120, testBounds, 0.5, 0.3, 11)
	if err != nil {
		t.Fatal(err)
	}
	lm1 := g.buildLandmarks(DefaultLandmarks)
	lm2 := g.buildLandmarks(DefaultLandmarks)
	if len(lm1.ids) != len(lm2.ids) {
		t.Fatalf("landmark counts differ: %d vs %d", len(lm1.ids), len(lm2.ids))
	}
	for i := range lm1.ids {
		if lm1.ids[i] != lm2.ids[i] {
			t.Fatalf("landmark %d differs: %d vs %d", i, lm1.ids[i], lm2.ids[i])
		}
	}
	// The cached accessor returns the same set until a mutation.
	if got := g.Landmarks(); got != g.Landmarks() {
		t.Fatal("Landmarks() not cached")
	}

	// Two disjoint components: every component must own a landmark before
	// any component gets its second, so with budget >= components every
	// vertex sees a finite distance from some landmark.
	d := NewGraph()
	var comp1, comp2 []int
	for i := 0; i < 5; i++ {
		comp1 = append(comp1, d.AddVertex(geom.Pt(float64(i), 0)))
		comp2 = append(comp2, d.AddVertex(geom.Pt(float64(i), 100)))
	}
	for i := 0; i+1 < 5; i++ {
		if err := d.AddEdge(comp1[i], comp1[i+1], 0); err != nil {
			t.Fatal(err)
		}
		if err := d.AddEdge(comp2[i], comp2[i+1], 0); err != nil {
			t.Fatal(err)
		}
	}
	lm := d.buildLandmarks(2)
	if lm.Count() != 2 {
		t.Fatalf("landmarks = %d, want 2", lm.Count())
	}
	for v := 0; v < d.NumVertices(); v++ {
		seen := false
		for l := 0; l < lm.Count(); l++ {
			if !math.IsInf(lm.DistRow(l)[v], 1) {
				seen = true
			}
		}
		if !seen {
			t.Fatalf("vertex %d unreachable from every landmark", v)
		}
	}
}

// TestALTBoundAdmissible checks the load-bearing ALT property: for any
// target set T and any superset projection, Bound(v) never exceeds the
// true distance from v to the nearest member of T — so an A* pruned by it
// can never settle a target late or with a wrong distance.
func TestALTBoundAdmissible(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		g, err := RandomPlanarNetwork(80+trial*10, testBounds, 0.5, 0.3, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		lm := g.Landmarks()
		n := g.NumVertices()
		targets := make([]int, 0, 6)
		for len(targets) < 6 {
			targets = append(targets, rng.Intn(n))
		}
		// True distance to the nearest target, by multi-source Dijkstra.
		srcs := make([]Source, len(targets))
		for i, tg := range targets {
			srcs[i] = Source{V: tg}
		}
		truth := g.ShortestDistances(srcs, -1)

		super := append(append([]int(nil), targets...), rng.Intn(n), rng.Intn(n))
		for _, tset := range [][]int{targets, super} {
			lo, hi := lm.Project(tset, nil, nil)
			var b ALTBound
			b.Bind(lm, lo, hi, int32(rng.Intn(n)))
			for v := 0; v < n; v++ {
				bd := b.Bound(int32(v))
				if bd > truth[v]+1e-9 {
					t.Fatalf("trial %d: Bound(%d) = %g exceeds true distance %g (targets %v)",
						trial, v, bd, truth[v], tset)
				}
			}
		}
		// A mismatched projection must leave the evaluator cleared.
		var b ALTBound
		b.Bind(lm, []float64{1}, []float64{2}, 0)
		if got := b.Bound(0); got != 0 {
			t.Fatalf("mismatched Bind gave Bound = %g, want 0", got)
		}
	}
}
