// Package roadnet provides the road-network substrate of Section IV of the
// paper: a planar undirected weighted graph with a geometric embedding,
// shortest-path machinery (Dijkstra, bidirectional Dijkstra, A*,
// Floyd–Warshall for testing), positions on edges for moving query objects,
// and network generators (grid and random planar via Delaunay).
package roadnet

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/geom"
)

// ErrVertex is returned for out-of-range vertex ids.
var ErrVertex = errors.New("roadnet: invalid vertex")

// ErrEdge is returned for invalid edge definitions.
var ErrEdge = errors.New("roadnet: invalid edge")

// halfEdge is one direction of an undirected edge in an adjacency list.
type halfEdge struct {
	to int
	w  float64
}

// Graph is an undirected weighted graph with 2D vertex coordinates. Data
// objects live on vertices, matching the paper's model ("we assume that the
// data objects are all at the vertices").
type Graph struct {
	pts   []geom.Point
	adj   [][]halfEdge
	edges int

	// relax counts Dijkstra edge relaxations since ResetStats; the
	// experiments use it as a machine-independent cost measure. Atomic so
	// that shortest-path searches on a graph shared across goroutines (the
	// network side of an index snapshot) stay race-free.
	relax atomic.Int64
}

// EdgeRelaxations returns the number of Dijkstra edge relaxations counted
// since the last ResetStats. Under concurrent readers the total is exact
// but before/after deltas taken by one reader may include relaxations
// charged by others.
func (g *Graph) EdgeRelaxations() int { return int(g.relax.Load()) }

// AddRelaxations charges n edge relaxations to the graph's counter; search
// code batches local counts into one atomic add per query.
func (g *Graph) AddRelaxations(n int) {
	if n != 0 {
		g.relax.Add(int64(n))
	}
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{} }

// AddVertex adds a vertex at p and returns its id.
func (g *Graph) AddVertex(p geom.Point) int {
	g.pts = append(g.pts, p)
	g.adj = append(g.adj, nil)
	return len(g.pts) - 1
}

// AddEdge connects u and v with weight w; w <= 0 means "use the Euclidean
// distance between the embeddings". Parallel edges and self-loops are
// rejected.
func (g *Graph) AddEdge(u, v int, w float64) error {
	if u < 0 || v < 0 || u >= len(g.pts) || v >= len(g.pts) {
		return fmt.Errorf("%w: (%d,%d)", ErrVertex, u, v)
	}
	if u == v {
		return fmt.Errorf("%w: self-loop at %d", ErrEdge, u)
	}
	for _, he := range g.adj[u] {
		if he.to == v {
			return fmt.Errorf("%w: parallel edge (%d,%d)", ErrEdge, u, v)
		}
	}
	if w <= 0 {
		w = g.pts[u].Dist(g.pts[v])
	}
	if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		return fmt.Errorf("%w: weight %g on (%d,%d)", ErrEdge, w, u, v)
	}
	g.adj[u] = append(g.adj[u], halfEdge{v, w})
	g.adj[v] = append(g.adj[v], halfEdge{u, w})
	g.edges++
	return nil
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.pts) }

// NumEdges returns the undirected edge count.
func (g *Graph) NumEdges() int { return g.edges }

// Point returns the embedding of vertex v.
func (g *Graph) Point(v int) geom.Point { return g.pts[v] }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// AdjacentVertices returns the vertices adjacent to v.
func (g *Graph) AdjacentVertices(v int) []int {
	out := make([]int, len(g.adj[v]))
	for i, he := range g.adj[v] {
		out[i] = he.to
	}
	return out
}

// VisitEdgesFrom calls fn for every edge incident to v with the far
// endpoint and the edge weight. It is the allocation-free form of
// AdjacentVertices+EdgeWeight that search hot paths use: one pass over the
// adjacency list instead of an O(deg) weight lookup per neighbor.
func (g *Graph) VisitEdgesFrom(v int, fn func(to int, w float64)) {
	for _, he := range g.adj[v] {
		fn(he.to, he.w)
	}
}

// EdgeWeight returns the weight of edge (u,v) and whether it exists.
func (g *Graph) EdgeWeight(u, v int) (float64, bool) {
	if u < 0 || u >= len(g.pts) {
		return 0, false
	}
	for _, he := range g.adj[u] {
		if he.to == v {
			return he.w, true
		}
	}
	return 0, false
}

// Edges calls fn for every undirected edge once (with u < v).
func (g *Graph) Edges(fn func(u, v int, w float64)) {
	for u := range g.adj {
		for _, he := range g.adj[u] {
			if u < he.to {
				fn(u, he.to, he.w)
			}
		}
	}
}

// ResetStats zeroes the relaxation counter.
func (g *Graph) ResetStats() { g.relax.Store(0) }

// pqItem is a priority-queue element for Dijkstra variants.
type pqItem struct {
	v int
	d float64
}

type pq []pqItem

func (h pq) Len() int { return len(h) }
func (h pq) Less(i, j int) bool {
	if h[i].d != h[j].d {
		return h[i].d < h[j].d
	}
	return h[i].v < h[j].v
}
func (h pq) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *pq) Push(x any)   { *h = append(*h, x.(pqItem)) }
func (h *pq) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Source is a Dijkstra seed: vertex V is reachable at initial cost D.
// Multi-seed searches model query positions in the middle of an edge.
type Source struct {
	V int
	D float64
}

// ShortestDistances runs Dijkstra from the given seeds and returns the
// distance to every vertex (math.Inf(1) for unreachable vertices). A
// negative stopAt means "settle everything"; otherwise the search stops
// once the settled distance exceeds stopAt.
func (g *Graph) ShortestDistances(sources []Source, stopAt float64) []float64 {
	dist := make([]float64, len(g.pts))
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	h := &pq{}
	for _, s := range sources {
		if s.V < 0 || s.V >= len(g.pts) {
			continue
		}
		if s.D < dist[s.V] {
			dist[s.V] = s.D
			heap.Push(h, pqItem{s.V, s.D})
		}
	}
	relaxed := 0
	defer func() { g.AddRelaxations(relaxed) }()
	for h.Len() > 0 {
		it := heap.Pop(h).(pqItem)
		if it.d > dist[it.v] {
			continue
		}
		if stopAt >= 0 && it.d > stopAt {
			break
		}
		for _, he := range g.adj[it.v] {
			relaxed++
			if nd := it.d + he.w; nd < dist[he.to] {
				dist[he.to] = nd
				heap.Push(h, pqItem{he.to, nd})
			}
		}
	}
	return dist
}

// ShortestPath returns the shortest path between two vertices and its
// length using bidirectional Dijkstra. ok is false when disconnected.
func (g *Graph) ShortestPath(s, t int) (path []int, d float64, ok bool) {
	if s < 0 || t < 0 || s >= len(g.pts) || t >= len(g.pts) {
		return nil, 0, false
	}
	if s == t {
		return []int{s}, 0, true
	}
	distF := map[int]float64{s: 0}
	distB := map[int]float64{t: 0}
	prevF := map[int]int{}
	prevB := map[int]int{}
	doneF := map[int]bool{}
	doneB := map[int]bool{}
	hf, hb := &pq{{s, 0}}, &pq{{t, 0}}
	heap.Init(hf)
	heap.Init(hb)
	best := math.Inf(1)
	meet := -1
	relaxed := 0
	defer func() { g.AddRelaxations(relaxed) }()

	expand := func(h *pq, dist map[int]float64, prev map[int]int, done map[int]bool,
		otherDist map[int]float64) {
		it := heap.Pop(h).(pqItem)
		if done[it.v] {
			return
		}
		done[it.v] = true
		if od, ok := otherDist[it.v]; ok {
			if total := it.d + od; total < best {
				best, meet = total, it.v
			}
		}
		for _, he := range g.adj[it.v] {
			relaxed++
			nd := it.d + he.w
			if cur, ok := dist[he.to]; !ok || nd < cur {
				dist[he.to] = nd
				prev[he.to] = it.v
				heap.Push(h, pqItem{he.to, nd})
			}
		}
	}

	for hf.Len() > 0 && hb.Len() > 0 {
		if (*hf)[0].d+(*hb)[0].d >= best {
			break
		}
		if (*hf)[0].d <= (*hb)[0].d {
			expand(hf, distF, prevF, doneF, distB)
		} else {
			expand(hb, distB, prevB, doneB, distF)
		}
	}
	if meet == -1 {
		return nil, 0, false
	}
	// Stitch the two half-paths at the meeting vertex.
	var fwd []int
	for v := meet; ; {
		fwd = append(fwd, v)
		p, ok := prevF[v]
		if !ok {
			break
		}
		v = p
	}
	for i, j := 0, len(fwd)-1; i < j; i, j = i+1, j-1 {
		fwd[i], fwd[j] = fwd[j], fwd[i]
	}
	for v := meet; ; {
		p, ok := prevB[v]
		if !ok {
			break
		}
		v = p
		fwd = append(fwd, v)
	}
	return fwd, best, true
}

// Distance returns the network distance between vertices s and t
// (math.Inf(1) when disconnected).
func (g *Graph) Distance(s, t int) float64 {
	_, d, ok := g.ShortestPath(s, t)
	if !ok {
		return math.Inf(1)
	}
	return d
}

// AStar returns the shortest path using A* with the Euclidean embedding as
// an admissible heuristic (edge weights must be >= Euclidean length for
// admissibility, which holds for all generators in this package).
func (g *Graph) AStar(s, t int) (path []int, d float64, ok bool) {
	if s < 0 || t < 0 || s >= len(g.pts) || t >= len(g.pts) {
		return nil, 0, false
	}
	target := g.pts[t]
	dist := map[int]float64{s: 0}
	prev := map[int]int{}
	done := map[int]bool{}
	h := &pq{{s, g.pts[s].Dist(target)}}
	heap.Init(h)
	relaxed := 0
	defer func() { g.AddRelaxations(relaxed) }()
	for h.Len() > 0 {
		it := heap.Pop(h).(pqItem)
		if done[it.v] {
			continue
		}
		done[it.v] = true
		if it.v == t {
			var out []int
			for v := t; ; {
				out = append(out, v)
				p, ok := prev[v]
				if !ok {
					break
				}
				v = p
			}
			for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
				out[i], out[j] = out[j], out[i]
			}
			return out, dist[t], true
		}
		for _, he := range g.adj[it.v] {
			relaxed++
			nd := dist[it.v] + he.w
			if cur, ok := dist[he.to]; !ok || nd < cur {
				dist[he.to] = nd
				prev[he.to] = it.v
				heap.Push(h, pqItem{he.to, nd + g.pts[he.to].Dist(target)})
			}
		}
	}
	return nil, 0, false
}

// FloydWarshall returns the full all-pairs distance matrix. It is O(V^3)
// and exists as ground truth for tests on small graphs.
func (g *Graph) FloydWarshall() [][]float64 {
	n := len(g.pts)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			if i != j {
				d[i][j] = math.Inf(1)
			}
		}
	}
	g.Edges(func(u, v int, w float64) {
		if w < d[u][v] {
			d[u][v], d[v][u] = w, w
		}
	})
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			dik := d[i][k]
			if math.IsInf(dik, 1) {
				continue
			}
			for j := 0; j < n; j++ {
				if nd := dik + d[k][j]; nd < d[i][j] {
					d[i][j] = nd
				}
			}
		}
	}
	return d
}

// Connected reports whether the graph is connected (true for empty graphs).
func (g *Graph) Connected() bool {
	n := len(g.pts)
	if n == 0 {
		return true
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, he := range g.adj[v] {
			if !seen[he.to] {
				seen[he.to] = true
				count++
				stack = append(stack, he.to)
			}
		}
	}
	return count == n
}
