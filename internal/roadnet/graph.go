// Package roadnet provides the road-network substrate of Section IV of the
// paper: a planar undirected weighted graph with a geometric embedding,
// shortest-path machinery (Dijkstra, bidirectional Dijkstra, A*,
// Floyd–Warshall for testing), positions on edges for moving query objects,
// and network generators (grid and random planar via Delaunay).
package roadnet

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/geom"
)

// ErrVertex is returned for out-of-range vertex ids.
var ErrVertex = errors.New("roadnet: invalid vertex")

// ErrEdge is returned for invalid edge definitions.
var ErrEdge = errors.New("roadnet: invalid edge")

// halfEdge is one direction of an undirected edge in an adjacency list.
type halfEdge struct {
	to int
	w  float64
}

// Graph is an undirected weighted graph with 2D vertex coordinates. Data
// objects live on vertices, matching the paper's model ("we assume that the
// data objects are all at the vertices").
//
// Storage is two-layered: the adjacency lists are the mutable build-time
// representation, and the search hot paths read a packed CSR view (see
// CSR) that is derived lazily and invalidated by any mutation. Likewise,
// the ALT landmark set (see Landmarks) is derived lazily and invalidated
// together with the view, so a graph that stops mutating — the serving
// lifecycle — pays for each exactly once.
type Graph struct {
	pts   []geom.Point
	adj   [][]halfEdge
	edges int

	// view is the packed adjacency cache, published atomically so frozen
	// index snapshots sharing this graph can search it from many
	// goroutines. recycle holds the arrays of a Reset graph's old view for
	// the next build (only Reset writes it, and Reset requires exclusive
	// ownership).
	view    atomic.Pointer[CSR]
	lms     atomic.Pointer[Landmarks]
	recycle *CSR

	// relax counts Dijkstra edge relaxations since ResetStats; the
	// experiments use it as a machine-independent cost measure. Atomic so
	// that shortest-path searches on a graph shared across goroutines (the
	// network side of an index snapshot) stay race-free.
	relax atomic.Int64
}

// EdgeRelaxations returns the number of Dijkstra edge relaxations counted
// since the last ResetStats. Under concurrent readers the total is exact
// but before/after deltas taken by one reader may include relaxations
// charged by others.
func (g *Graph) EdgeRelaxations() int { return int(g.relax.Load()) }

// AddRelaxations charges n edge relaxations to the graph's counter; search
// code batches local counts into one atomic add per query.
func (g *Graph) AddRelaxations(n int) {
	if n != 0 {
		g.relax.Add(int64(n))
	}
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{} }

// invalidate drops the derived views after a mutation. The loads keep the
// common build loop (thousands of Adds, views never built) from hammering
// the same cache line with stores.
func (g *Graph) invalidate() {
	if g.view.Load() != nil {
		g.view.Store(nil)
	}
	if g.lms.Load() != nil {
		g.lms.Store(nil)
	}
}

// AddVertex adds a vertex at p and returns its id. After a Reset, the
// adjacency slots of the previous incarnation are reused capacity and all.
func (g *Graph) AddVertex(p geom.Point) int {
	g.pts = append(g.pts, p)
	if len(g.adj) < cap(g.adj) {
		g.adj = g.adj[:len(g.adj)+1]
		g.adj[len(g.adj)-1] = g.adj[len(g.adj)-1][:0]
	} else {
		g.adj = append(g.adj, nil)
	}
	g.invalidate()
	return len(g.pts) - 1
}

// AddEdge connects u and v with weight w; w <= 0 means "use the Euclidean
// distance between the embeddings". Parallel edges and self-loops are
// rejected.
func (g *Graph) AddEdge(u, v int, w float64) error {
	if u < 0 || v < 0 || u >= len(g.pts) || v >= len(g.pts) {
		return fmt.Errorf("%w: (%d,%d)", ErrVertex, u, v)
	}
	if u == v {
		return fmt.Errorf("%w: self-loop at %d", ErrEdge, u)
	}
	if w <= 0 {
		w = g.pts[u].Dist(g.pts[v])
	}
	if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		return fmt.Errorf("%w: weight %g on (%d,%d)", ErrEdge, w, u, v)
	}
	return g.addEdgeChecked(u, v, w)
}

// AddEdgeWeight connects u and v with the exact weight w (w >= 0, finite;
// zero is legal and models coincident junctions). AddEdge's "w <= 0 means
// Euclidean" convention makes an explicit zero weight inexpressible there;
// subnetwork extraction, which must transplant weights verbatim, and tests
// exercising zero-weight edges use this form.
func (g *Graph) AddEdgeWeight(u, v int, w float64) error {
	if u < 0 || v < 0 || u >= len(g.pts) || v >= len(g.pts) {
		return fmt.Errorf("%w: (%d,%d)", ErrVertex, u, v)
	}
	if u == v {
		return fmt.Errorf("%w: self-loop at %d", ErrEdge, u)
	}
	if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		return fmt.Errorf("%w: weight %g on (%d,%d)", ErrEdge, w, u, v)
	}
	return g.addEdgeChecked(u, v, w)
}

// addEdgeChecked inserts an edge whose endpoints and weight have been
// validated, rejecting parallels.
func (g *Graph) addEdgeChecked(u, v int, w float64) error {
	for _, he := range g.adj[u] {
		if he.to == v {
			return fmt.Errorf("%w: parallel edge (%d,%d)", ErrEdge, u, v)
		}
	}
	g.adj[u] = append(g.adj[u], halfEdge{v, w})
	g.adj[v] = append(g.adj[v], halfEdge{u, w})
	g.edges++
	g.invalidate()
	return nil
}

// Reset empties the graph in place, keeping every backing allocation (the
// vertex and adjacency slices plus the recycled CSR arrays) for reuse —
// the subnetwork-materialization path rebuilds a small graph into the same
// memory on every recompute. The caller must have exclusive use of the
// graph.
func (g *Graph) Reset() {
	g.pts = g.pts[:0]
	g.adj = g.adj[:0]
	g.edges = 0
	g.relax.Store(0)
	if c := g.view.Load(); c != nil {
		g.recycle = c
		g.view.Store(nil)
	}
	if g.lms.Load() != nil {
		g.lms.Store(nil)
	}
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.pts) }

// NumEdges returns the undirected edge count.
func (g *Graph) NumEdges() int { return g.edges }

// Point returns the embedding of vertex v.
func (g *Graph) Point(v int) geom.Point { return g.pts[v] }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// AdjacentVertices returns the vertices adjacent to v.
func (g *Graph) AdjacentVertices(v int) []int {
	out := make([]int, len(g.adj[v]))
	for i, he := range g.adj[v] {
		out[i] = he.to
	}
	return out
}

// VisitEdgesFrom calls fn for every edge incident to v with the far
// endpoint and the edge weight. It is the allocation-free form of
// AdjacentVertices+EdgeWeight; search hot paths iterate the CSR view
// directly instead.
func (g *Graph) VisitEdgesFrom(v int, fn func(to int, w float64)) {
	for _, he := range g.adj[v] {
		fn(he.to, he.w)
	}
}

// EdgeWeight returns the weight of edge (u,v) and whether it exists.
func (g *Graph) EdgeWeight(u, v int) (float64, bool) {
	if u < 0 || u >= len(g.pts) {
		return 0, false
	}
	for _, he := range g.adj[u] {
		if he.to == v {
			return he.w, true
		}
	}
	return 0, false
}

// Edges calls fn for every undirected edge once (with u < v).
func (g *Graph) Edges(fn func(u, v int, w float64)) {
	for u := range g.adj {
		for _, he := range g.adj[u] {
			if u < he.to {
				fn(u, he.to, he.w)
			}
		}
	}
}

// ResetStats zeroes the relaxation counter.
func (g *Graph) ResetStats() { g.relax.Store(0) }

// CSR is the packed adjacency view of a graph in compressed-sparse-row
// layout: the half-edges of vertex v are To[Off[v]:Off[v+1]] with parallel
// weights in W (Off has length V+1). Search hot paths iterate it with
// three flat array reads per edge instead of chasing per-vertex slice
// headers; weights stay float64 so distances are bit-identical to the
// adjacency-list searches. A CSR is immutable once published.
type CSR struct {
	Off []int32
	To  []int32
	W   []float64
}

// CSR returns the packed adjacency view, building and publishing it on
// first use after a mutation. Concurrent readers may race to build after
// the same mutation; the copies are identical and the last store wins.
// Mutating the graph while other goroutines search it is not supported
// (unchanged from the adjacency lists).
func (g *Graph) CSR() *CSR {
	if c := g.view.Load(); c != nil {
		return c
	}
	c := g.buildCSR()
	g.view.Store(c)
	return c
}

func (g *Graph) buildCSR() *CSR {
	n := len(g.pts)
	m := 2 * g.edges
	c := g.recycle
	g.recycle = nil
	if c == nil {
		c = &CSR{}
	}
	if cap(c.Off) >= n+1 {
		c.Off = c.Off[:n+1]
	} else {
		c.Off = make([]int32, n+1)
	}
	if cap(c.To) >= m {
		c.To = c.To[:m]
	} else {
		c.To = make([]int32, m)
	}
	if cap(c.W) >= m {
		c.W = c.W[:m]
	} else {
		c.W = make([]float64, m)
	}
	pos := int32(0)
	for v, a := range g.adj {
		c.Off[v] = pos
		for _, he := range a {
			c.To[pos] = int32(he.to)
			c.W[pos] = he.w
			pos++
		}
	}
	c.Off[n] = pos
	return c
}

// Source is a Dijkstra seed: vertex V is reachable at initial cost D.
// Multi-seed searches model query positions in the middle of an edge.
type Source struct {
	V int
	D float64
}

// ShortestDistances runs Dijkstra from the given seeds and returns the
// distance to every vertex (math.Inf(1) for unreachable vertices). A
// negative stopAt means "settle everything"; otherwise the search stops
// once the settled distance exceeds stopAt.
func (g *Graph) ShortestDistances(sources []Source, stopAt float64) []float64 {
	dist := make([]float64, len(g.pts))
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	var h heap4
	for _, s := range sources {
		if s.V < 0 || s.V >= len(g.pts) {
			continue
		}
		if s.D < dist[s.V] {
			dist[s.V] = s.D
			h.push(heapItem{key: s.D, d: s.D, v: int32(s.V)})
		}
	}
	c := g.CSR()
	relaxed := 0
	for len(h) > 0 {
		it := h.pop()
		if it.d > dist[it.v] {
			continue
		}
		if stopAt >= 0 && it.d > stopAt {
			break
		}
		for i := c.Off[it.v]; i < c.Off[it.v+1]; i++ {
			relaxed++
			u := c.To[i]
			if nd := it.d + c.W[i]; nd < dist[u] {
				dist[u] = nd
				h.push(heapItem{key: nd, d: nd, v: u})
			}
		}
	}
	g.AddRelaxations(relaxed)
	return dist
}

// ShortestPath returns the shortest path between two vertices and its
// length using bidirectional Dijkstra. ok is false when disconnected.
func (g *Graph) ShortestPath(s, t int) (path []int, d float64, ok bool) {
	if s < 0 || t < 0 || s >= len(g.pts) || t >= len(g.pts) {
		return nil, 0, false
	}
	if s == t {
		return []int{s}, 0, true
	}
	c := g.CSR()
	distF := map[int32]float64{int32(s): 0}
	distB := map[int32]float64{int32(t): 0}
	prevF := map[int32]int32{}
	prevB := map[int32]int32{}
	doneF := map[int32]bool{}
	doneB := map[int32]bool{}
	var hf, hb heap4
	hf.push(heapItem{key: 0, d: 0, v: int32(s)})
	hb.push(heapItem{key: 0, d: 0, v: int32(t)})
	best := math.Inf(1)
	meet := int32(-1)
	relaxed := 0

	expand := func(h *heap4, dist map[int32]float64, prev map[int32]int32, done map[int32]bool,
		otherDist map[int32]float64) {
		it := h.pop()
		if done[it.v] {
			return
		}
		done[it.v] = true
		if od, ok := otherDist[it.v]; ok {
			if total := it.d + od; total < best {
				best, meet = total, it.v
			}
		}
		for i := c.Off[it.v]; i < c.Off[it.v+1]; i++ {
			relaxed++
			u := c.To[i]
			nd := it.d + c.W[i]
			if cur, ok := dist[u]; !ok || nd < cur {
				dist[u] = nd
				prev[u] = it.v
				h.push(heapItem{key: nd, d: nd, v: u})
			}
		}
	}

	for len(hf) > 0 && len(hb) > 0 {
		if hf[0].d+hb[0].d >= best {
			break
		}
		if hf[0].d <= hb[0].d {
			expand(&hf, distF, prevF, doneF, distB)
		} else {
			expand(&hb, distB, prevB, doneB, distF)
		}
	}
	g.AddRelaxations(relaxed)
	if meet == -1 {
		return nil, 0, false
	}
	// Stitch the two half-paths at the meeting vertex.
	var fwd []int
	for v := meet; ; {
		fwd = append(fwd, int(v))
		p, ok := prevF[v]
		if !ok {
			break
		}
		v = p
	}
	for i, j := 0, len(fwd)-1; i < j; i, j = i+1, j-1 {
		fwd[i], fwd[j] = fwd[j], fwd[i]
	}
	for v := meet; ; {
		p, ok := prevB[v]
		if !ok {
			break
		}
		v = p
		fwd = append(fwd, int(v))
	}
	return fwd, best, true
}

// Distance returns the network distance between vertices s and t
// (math.Inf(1) when disconnected).
func (g *Graph) Distance(s, t int) float64 {
	_, d, ok := g.ShortestPath(s, t)
	if !ok {
		return math.Inf(1)
	}
	return d
}

// AStar returns the shortest path using A* with the Euclidean embedding as
// an admissible heuristic (edge weights must be >= Euclidean length for
// admissibility, which holds for all generators in this package).
func (g *Graph) AStar(s, t int) (path []int, d float64, ok bool) {
	if s < 0 || t < 0 || s >= len(g.pts) || t >= len(g.pts) {
		return nil, 0, false
	}
	c := g.CSR()
	target := g.pts[t]
	dist := map[int32]float64{int32(s): 0}
	prev := map[int32]int32{}
	done := map[int32]bool{}
	var h heap4
	h.push(heapItem{key: g.pts[s].Dist(target), d: 0, v: int32(s)})
	relaxed := 0
	defer func() { g.AddRelaxations(relaxed) }()
	for len(h) > 0 {
		it := h.pop()
		if done[it.v] {
			continue
		}
		done[it.v] = true
		if int(it.v) == t {
			var out []int
			for v := int32(t); ; {
				out = append(out, int(v))
				p, ok := prev[v]
				if !ok {
					break
				}
				v = p
			}
			for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
				out[i], out[j] = out[j], out[i]
			}
			return out, dist[int32(t)], true
		}
		for i := c.Off[it.v]; i < c.Off[it.v+1]; i++ {
			relaxed++
			u := c.To[i]
			nd := dist[it.v] + c.W[i]
			if cur, ok := dist[u]; !ok || nd < cur {
				dist[u] = nd
				prev[u] = it.v
				h.push(heapItem{key: nd + g.pts[u].Dist(target), d: nd, v: u})
			}
		}
	}
	return nil, 0, false
}

// FloydWarshall returns the full all-pairs distance matrix. It is O(V^3)
// and exists as ground truth for tests on small graphs.
func (g *Graph) FloydWarshall() [][]float64 {
	n := len(g.pts)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			if i != j {
				d[i][j] = math.Inf(1)
			}
		}
	}
	g.Edges(func(u, v int, w float64) {
		if w < d[u][v] {
			d[u][v], d[v][u] = w, w
		}
	})
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			dik := d[i][k]
			if math.IsInf(dik, 1) {
				continue
			}
			for j := 0; j < n; j++ {
				if nd := dik + d[k][j]; nd < d[i][j] {
					d[i][j] = nd
				}
			}
		}
	}
	return d
}

// Connected reports whether the graph is connected (true for empty graphs).
func (g *Graph) Connected() bool {
	n := len(g.pts)
	if n == 0 {
		return true
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, he := range g.adj[v] {
			if !seen[he.to] {
				seen[he.to] = true
				count++
				stack = append(stack, he.to)
			}
		}
	}
	return count == n
}
