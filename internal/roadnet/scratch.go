package roadnet

import "math"

// heapItem is one frontier entry of a best-first search: key is the pop
// priority (the tentative distance for Dijkstra, distance plus heuristic
// for A*), d the tentative distance at push time, and v the vertex. Keys
// tie-break on the vertex id so every search in the package settles
// equal-priority vertices in the same deterministic order — in particular,
// an ALT-pruned search (whose heuristic is zero at every target) emits
// targets in exactly the order the plain-Dijkstra oracle does, which lets
// differential tests compare result lists verbatim.
type heapItem struct {
	key float64
	d   float64
	v   int32
}

// heap4 is a hand-rolled 4-ary min-heap over search frontier entries.
// Compared to container/heap it avoids the interface boxing (one
// allocation per push) and the indirect Less/Swap calls; compared to a
// binary heap the wider fan-out halves the sift-down depth, which is
// where Dijkstra spends its heap time on road graphs.
type heap4 []heapItem

func (h heap4) less(i, j int) bool {
	if h[i].key != h[j].key {
		return h[i].key < h[j].key
	}
	return h[i].v < h[j].v
}

func (h *heap4) push(it heapItem) {
	s := append(*h, it)
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !s.less(i, p) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
	*h = s
}

func (h *heap4) pop() heapItem {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	*h = s
	i := 0
	for {
		first := 4*i + 1
		if first >= len(s) {
			break
		}
		m := first
		end := first + 4
		if end > len(s) {
			end = len(s)
		}
		for c := first + 1; c < end; c++ {
			if s.less(c, m) {
				m = c
			}
		}
		if !s.less(m, i) {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return top
}

// SearchScratch is reusable working memory for the shortest-path searches:
// the frontier heap plus two epoch-stamped dense arrays — tentative
// distances and an int32 mark set — whose logical clear is a counter bump,
// not an O(V) wipe. The zero value is ready to use; one scratch serves any
// number of sequential searches over graphs of any sizes (the arrays grow
// to the largest graph seen) but must not be shared across goroutines. It
// is the road twin of vortree.SearchScratch: the serving layer keeps one
// per shard, which removes every steady-state allocation from the network
// search path.
type SearchScratch struct {
	hp    heap4
	dist  []float64
	stamp []uint32
	epoch uint32

	mark      []int32
	markStamp []uint32
	markEpoch uint32
}

// Begin readies the scratch for a new search over n vertices: the frontier
// empties and every tentative distance reads as +Inf again.
func (sc *SearchScratch) Begin(n int) {
	sc.hp = sc.hp[:0]
	if len(sc.dist) < n {
		sc.dist = make([]float64, n)
		sc.stamp = make([]uint32, n)
		sc.epoch = 0
	}
	sc.epoch++
	if sc.epoch == 0 { // stamp wrap: every stamp is stale garbage now
		clear(sc.stamp)
		sc.epoch = 1
	}
}

// TryImprove records d as vertex v's tentative distance if it beats the
// current one, reporting whether it did — the Dijkstra relaxation test.
func (sc *SearchScratch) TryImprove(v int32, d float64) bool {
	if sc.stamp[v] == sc.epoch && sc.dist[v] <= d {
		return false
	}
	sc.stamp[v] = sc.epoch
	sc.dist[v] = d
	return true
}

// DistAt returns vertex v's tentative distance (+Inf when unset).
func (sc *SearchScratch) DistAt(v int32) float64 {
	if sc.stamp[v] != sc.epoch {
		return math.Inf(1)
	}
	return sc.dist[v]
}

// Reached reports whether v holds a tentative distance.
func (sc *SearchScratch) Reached(v int32) bool {
	return int(v) < len(sc.stamp) && sc.stamp[v] == sc.epoch
}

// Push adds a frontier entry with pop priority key and tentative distance d.
func (sc *SearchScratch) Push(key, d float64, v int32) {
	sc.hp.push(heapItem{key: key, d: d, v: v})
}

// Pop removes the lowest-keyed frontier entry; ok is false when the
// frontier is empty.
func (sc *SearchScratch) Pop() (key, d float64, v int32, ok bool) {
	if len(sc.hp) == 0 {
		return 0, 0, 0, false
	}
	it := sc.hp.pop()
	return it.key, it.d, it.v, true
}

// MarkBegin resets the mark set for n vertices; every mark reads as 0.
// The mark set is independent of the distance state, so a caller can mark
// target vertices and then run a search in the same scratch.
func (sc *SearchScratch) MarkBegin(n int) {
	if len(sc.mark) < n {
		sc.mark = make([]int32, n)
		sc.markStamp = make([]uint32, n)
		sc.markEpoch = 0
	}
	sc.markEpoch++
	if sc.markEpoch == 0 {
		clear(sc.markStamp)
		sc.markEpoch = 1
	}
}

// SetMark tags vertex v with val (0 is indistinguishable from unset).
func (sc *SearchScratch) SetMark(v int32, val int32) {
	sc.mark[v] = val
	sc.markStamp[v] = sc.markEpoch
}

// Mark returns vertex v's tag, 0 when never set since MarkBegin.
func (sc *SearchScratch) Mark(v int32) int32 {
	if sc.markStamp[v] != sc.markEpoch {
		return 0
	}
	return sc.mark[v]
}
