package roadnet

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// Position is a location on the road network: a point along edge (U,V) at
// fraction T from U (T in [0,1]). A position exactly at a vertex is
// represented with U == V and T == 0. Moving query objects are constrained
// to the network in Road Network mode, so this is the query location type.
type Position struct {
	U, V int
	T    float64
}

// VertexPosition returns the position exactly at vertex v.
func VertexPosition(v int) Position { return Position{U: v, V: v} }

// AtVertex reports whether the position coincides with a vertex and
// returns it.
func (p Position) AtVertex() (int, bool) {
	switch {
	case p.U == p.V || p.T <= 0:
		return p.U, true
	case p.T >= 1:
		return p.V, true
	}
	return -1, false
}

// Validate checks that the position refers to an existing edge of g.
func (p Position) Validate(g *Graph) error {
	if p.U < 0 || p.U >= g.NumVertices() || p.V < 0 || p.V >= g.NumVertices() {
		return fmt.Errorf("%w: position (%d,%d)", ErrVertex, p.U, p.V)
	}
	if p.U == p.V {
		return nil
	}
	if _, ok := g.EdgeWeight(p.U, p.V); !ok {
		return fmt.Errorf("%w: position on missing edge (%d,%d)", ErrEdge, p.U, p.V)
	}
	if p.T < 0 || p.T > 1 || math.IsNaN(p.T) {
		return fmt.Errorf("%w: position fraction %g", ErrEdge, p.T)
	}
	return nil
}

// Point returns the Euclidean embedding of the position.
func (p Position) Point(g *Graph) geom.Point {
	if v, ok := p.AtVertex(); ok {
		return g.Point(v)
	}
	return geom.Lerp(g.Point(p.U), g.Point(p.V), p.T)
}

// Sources returns the Dijkstra seeds representing the position: its two
// edge endpoints with the along-edge offsets as initial costs.
func (p Position) Sources(g *Graph) []Source {
	if v, ok := p.AtVertex(); ok {
		return []Source{{V: v, D: 0}}
	}
	w, ok := g.EdgeWeight(p.U, p.V)
	if !ok {
		return nil
	}
	return []Source{{V: p.U, D: p.T * w}, {V: p.V, D: (1 - p.T) * w}}
}

// DistanceTo returns the network distance from the position to vertex t.
func (g *Graph) DistanceTo(p Position, t int) float64 {
	dist := g.ShortestDistances(p.Sources(g), -1)
	if t < 0 || t >= len(dist) {
		return math.Inf(1)
	}
	return dist[t]
}

// Route is a vertex path along the network with precomputed cumulative
// lengths, used to move a query object at constant speed.
type Route struct {
	g      *Graph
	verts  []int
	cum    []float64 // cum[i] = distance from start to verts[i]
	length float64
}

// NewRoute builds a route along consecutive vertices; every consecutive
// pair must be connected by an edge.
func NewRoute(g *Graph, verts []int) (*Route, error) {
	if len(verts) == 0 {
		return nil, fmt.Errorf("%w: empty route", ErrEdge)
	}
	cum := make([]float64, len(verts))
	for i := 1; i < len(verts); i++ {
		w, ok := g.EdgeWeight(verts[i-1], verts[i])
		if !ok {
			return nil, fmt.Errorf("%w: route hop (%d,%d) is not an edge", ErrEdge, verts[i-1], verts[i])
		}
		cum[i] = cum[i-1] + w
	}
	return &Route{g: g, verts: verts, cum: cum, length: cum[len(cum)-1]}, nil
}

// Length returns the total route length.
func (r *Route) Length() float64 { return r.length }

// Vertices returns the route's vertex sequence.
func (r *Route) Vertices() []int { return r.verts }

// PositionAt returns the position at distance d from the route start,
// clamped to the route ends.
func (r *Route) PositionAt(d float64) Position {
	if d <= 0 || len(r.verts) == 1 {
		return VertexPosition(r.verts[0])
	}
	if d >= r.length {
		return VertexPosition(r.verts[len(r.verts)-1])
	}
	// Binary search for the segment containing d.
	lo, hi := 0, len(r.cum)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if r.cum[mid] <= d {
			lo = mid
		} else {
			hi = mid
		}
	}
	segLen := r.cum[lo+1] - r.cum[lo]
	t := (d - r.cum[lo]) / segLen
	return Position{U: r.verts[lo], V: r.verts[lo+1], T: t}
}
