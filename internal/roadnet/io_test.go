package roadnet

import (
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	g, err := GridNetwork(5, 5, testBounds, 0.2, 0.3, 17)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := g.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices() != g.NumVertices() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: %d/%d vertices, %d/%d edges",
			got.NumVertices(), g.NumVertices(), got.NumEdges(), g.NumEdges())
	}
	for v := 0; v < g.NumVertices(); v++ {
		if !got.Point(v).Eq(g.Point(v)) {
			t.Fatalf("vertex %d moved: %v vs %v", v, got.Point(v), g.Point(v))
		}
	}
	g.Edges(func(u, v int, w float64) {
		gw, ok := got.EdgeWeight(u, v)
		if !ok || gw != w {
			t.Fatalf("edge (%d,%d) weight %g, loaded %g (ok=%v)", u, v, w, gw, ok)
		}
	})
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"x,1,2,3\n",        // unknown record
		"v,1,0,0\n",        // out-of-order vertex id
		"v,0,zero,0\n",     // bad float
		"e,0,1,1\n",        // edge before vertices
		"v,0,0,0\ne,0,0,1", // self loop
		"v,0\n",            // short vertex record
		"v,0,0,0\ne,0,1\n", // short edge record
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted: %q", i, c)
		}
	}
}

func TestReadCSVSkipsCommentsAndBlanks(t *testing.T) {
	in := "# a map\n\nv,0,0,0\nv,1,3,4\n\ne,0,1,5\n"
	g, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 2 || g.NumEdges() != 1 {
		t.Fatalf("got %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
}
