package roadnet

import (
	"fmt"
	"math/rand"

	"repro/internal/delaunay"
	"repro/internal/geom"
)

// GridNetwork generates a rows×cols grid road network inside bounds, the
// classic synthetic stand-in for a Manhattan-style street map. Vertex
// positions are jittered by jitter (a fraction of the cell size, in
// [0, 0.4]) and edge weights are the Euclidean length inflated by a random
// detour factor in [1, 1+detour], keeping the Euclidean lower bound valid
// for A*. The generator is deterministic in seed.
func GridNetwork(rows, cols int, bounds geom.Rect, jitter, detour float64, seed int64) (*Graph, error) {
	if rows < 2 || cols < 2 {
		return nil, fmt.Errorf("roadnet: grid needs at least 2x2, got %dx%d", rows, cols)
	}
	if jitter < 0 || jitter > 0.4 {
		return nil, fmt.Errorf("roadnet: jitter %g out of [0, 0.4]", jitter)
	}
	if detour < 0 {
		return nil, fmt.Errorf("roadnet: negative detour %g", detour)
	}
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph()
	dx := bounds.Width() / float64(cols-1)
	dy := bounds.Height() / float64(rows-1)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			jx := (rng.Float64()*2 - 1) * jitter * dx
			jy := (rng.Float64()*2 - 1) * jitter * dy
			p := geom.Pt(bounds.Min.X+float64(c)*dx+jx, bounds.Min.Y+float64(r)*dy+jy)
			// Clamp into bounds so positions remain in the data space.
			p.X = min(max(p.X, bounds.Min.X), bounds.Max.X)
			p.Y = min(max(p.Y, bounds.Min.Y), bounds.Max.Y)
			g.AddVertex(p)
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				w := g.Point(id(r, c)).Dist(g.Point(id(r, c+1))) * (1 + rng.Float64()*detour)
				if err := g.AddEdge(id(r, c), id(r, c+1), w); err != nil {
					return nil, err
				}
			}
			if r+1 < rows {
				w := g.Point(id(r, c)).Dist(g.Point(id(r+1, c))) * (1 + rng.Float64()*detour)
				if err := g.AddEdge(id(r, c), id(r+1, c), w); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// RandomPlanarNetwork generates a connected planar road network by
// triangulating n random vertices and keeping each non-tree Delaunay edge
// with probability keep (a spanning tree is always kept, so the result is
// connected). keep=1 yields the full triangulation; keep≈0.3 resembles a
// sparse rural network. Weights are Euclidean lengths inflated by a random
// detour factor in [1, 1+detour].
func RandomPlanarNetwork(n int, bounds geom.Rect, keep, detour float64, seed int64) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("roadnet: need at least 3 vertices, got %d", n)
	}
	if keep < 0 || keep > 1 {
		return nil, fmt.Errorf("roadnet: keep %g out of [0,1]", keep)
	}
	rng := rand.New(rand.NewSource(seed))
	tri := delaunay.New(bounds)
	g := NewGraph()
	vid := make(map[int]int) // triangulation id -> graph vertex id
	for len(vid) < n {
		p := geom.Pt(
			bounds.Min.X+rng.Float64()*bounds.Width(),
			bounds.Min.Y+rng.Float64()*bounds.Height(),
		)
		id, err := tri.Insert(p)
		if err != nil {
			continue // duplicate draw: retry
		}
		vid[id] = g.AddVertex(p)
	}
	// Collect Delaunay edges.
	type edge struct{ a, b int }
	seen := make(map[edge]bool)
	var edges []edge
	for _, f := range tri.Triangles() {
		for i := 0; i < 3; i++ {
			a, b := f[i], f[(i+1)%3]
			if a > b {
				a, b = b, a
			}
			if !seen[edge{a, b}] {
				seen[edge{a, b}] = true
				edges = append(edges, edge{a, b})
			}
		}
	}
	// Kruskal-style spanning tree over a random order, then keep the rest
	// with probability keep.
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	addEdge := func(e edge) error {
		u, v := vid[e.a], vid[e.b]
		w := g.Point(u).Dist(g.Point(v)) * (1 + rng.Float64()*detour)
		return g.AddEdge(u, v, w)
	}
	var extras []edge
	for _, e := range edges {
		ra, rb := find(vid[e.a]), find(vid[e.b])
		if ra != rb {
			parent[ra] = rb
			if err := addEdge(e); err != nil {
				return nil, err
			}
		} else {
			extras = append(extras, e)
		}
	}
	for _, e := range extras {
		if rng.Float64() < keep {
			if err := addEdge(e); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// RandomWalkRoute generates a route of approximately the given network
// length by walking randomly from start, avoiding immediate backtracking
// when possible. Deterministic in seed.
func RandomWalkRoute(g *Graph, start int, length float64, seed int64) (*Route, error) {
	if start < 0 || start >= g.NumVertices() {
		return nil, fmt.Errorf("%w: start %d", ErrVertex, start)
	}
	rng := rand.New(rand.NewSource(seed))
	verts := []int{start}
	cur, prev := start, -1
	var total float64
	for total < length {
		nbs := g.AdjacentVertices(cur)
		if len(nbs) == 0 {
			break
		}
		cand := nbs
		if len(nbs) > 1 && prev >= 0 {
			cand = make([]int, 0, len(nbs)-1)
			for _, v := range nbs {
				if v != prev {
					cand = append(cand, v)
				}
			}
		}
		next := cand[rng.Intn(len(cand))]
		w, _ := g.EdgeWeight(cur, next)
		total += w
		verts = append(verts, next)
		prev, cur = cur, next
	}
	return NewRoute(g, verts)
}

// ShortestPathRoute builds a route along the shortest path between two
// vertices.
func ShortestPathRoute(g *Graph, s, t int) (*Route, error) {
	path, _, ok := g.ShortestPath(s, t)
	if !ok {
		return nil, fmt.Errorf("roadnet: no path from %d to %d", s, t)
	}
	return NewRoute(g, path)
}
