// ALT (A*, Landmarks, Triangle inequality) preprocessing: a small set of
// farthest-point-selected vertices with precomputed single-source distance
// vectors. For any vertices v, t and landmark l the triangle inequality
// gives |dist_l(v) - dist_l(t)| <= d(v,t); taking the max over landmarks
// yields a consistent A* heuristic toward any target set, and a consistent
// heuristic settles targets in exact ascending true distance — so the
// pruned searches return bit-identical answers to plain Dijkstra, only
// visiting fewer vertices on the way.
package roadnet

import "math"

// DefaultLandmarks is the landmark budget: enough axes that some landmark
// is roughly "behind" most source/target pairs, small enough that the
// distance vectors stay a few MB even on 65k-vertex networks.
const DefaultLandmarks = 16

// Landmarks is the ALT preprocessing of a graph. It is derived state with
// the same lifecycle as the CSR view: built lazily on first use, cached on
// the graph, and invalidated by any graph mutation — so the vectors can
// never be stale with respect to the graph they serve. (Staleness of the
// *target-set* projection is the caller's concern; see ALTBound.)
type Landmarks struct {
	ids  []int32
	dist [][]float64 // dist[l][v]: distance from landmark l to vertex v
}

// Landmarks returns the graph's ALT landmark set, building and caching it
// on first use. Like CSR, concurrent first builds race benignly; mutating
// while other goroutines search is not supported.
func (g *Graph) Landmarks() *Landmarks {
	if lm := g.lms.Load(); lm != nil {
		return lm
	}
	lm := g.buildLandmarks(DefaultLandmarks)
	g.lms.Store(lm)
	return lm
}

// buildLandmarks selects min(k, V) landmarks by deterministic
// farthest-point traversal: the first is the vertex farthest from vertex 0,
// each next maximizes the minimum distance to those already chosen.
// Unreachable counts as infinitely far, so every connected component
// claims a landmark before any component receives its second — a landmark
// per component is what keeps the bounds meaningful on disconnected
// graphs. Ties break toward the lower vertex id.
func (g *Graph) buildLandmarks(k int) *Landmarks {
	n := len(g.pts)
	lm := &Landmarks{}
	if n == 0 || k <= 0 {
		return lm
	}
	if k > n {
		k = n
	}
	minDist := g.ShortestDistances([]Source{{V: 0}}, -1)
	cur := 0
	for v := 1; v < n; v++ {
		if minDist[v] > minDist[cur] {
			cur = v
		}
	}
	for {
		dv := g.ShortestDistances([]Source{{V: cur}}, -1)
		lm.ids = append(lm.ids, int32(cur))
		lm.dist = append(lm.dist, dv)
		if len(lm.ids) == k {
			return lm
		}
		for v, d := range dv {
			if d < minDist[v] {
				minDist[v] = d
			}
		}
		best, bestD := -1, 0.0
		for v := 0; v < n; v++ {
			if d := minDist[v]; d > bestD {
				best, bestD = v, d
			}
		}
		if best < 0 {
			return lm // every remaining vertex is already a landmark
		}
		cur = best
	}
}

// Count returns the number of landmarks.
func (lm *Landmarks) Count() int { return len(lm.ids) }

// IDs returns the landmark vertex ids (shared slice; read-only).
func (lm *Landmarks) IDs() []int32 { return lm.ids }

// DistRow returns landmark l's distance vector (shared slice; read-only).
func (lm *Landmarks) DistRow(l int) []float64 { return lm.dist[l] }

// Project computes the projection of a target set onto every landmark
// axis — per landmark, the [min,max] interval of landmark distances over
// the targets — appending into the given buffers (pass lo[:0], hi[:0] to
// reuse). A projection over a SUPERSET of the actual targets is still
// admissible for ALTBound (wider intervals only weaken the bound), which
// is what makes conservatively-stale projections safe.
func (lm *Landmarks) Project(targets []int, lo, hi []float64) (outLo, outHi []float64) {
	for l := range lm.ids {
		row := lm.dist[l]
		tlo, thi := math.Inf(1), math.Inf(-1)
		for _, t := range targets {
			d := row[t]
			if d < tlo {
				tlo = d
			}
			if d > thi {
				thi = d
			}
		}
		lo = append(lo, tlo)
		hi = append(hi, thi)
	}
	return lo, hi
}

// altActive caps the landmarks consulted per vertex during one search.
// Any fixed subset of the landmark bounds is still consistent, and a
// handful of well-chosen axes captures nearly all the pruning at a
// quarter of the per-relaxation cost.
const altActive = 4

// ALTBound evaluates the ALT lower bound on the distance from a vertex to
// the nearest member of a projected target set, restricted to the few
// landmarks most promising for the query's start region. The zero value
// (or an unbound one) reports 0 everywhere, degenerating A* to Dijkstra.
type ALTBound struct {
	n    int
	rows [altActive][]float64
	lo   [altActive]float64
	hi   [altActive]float64
}

// Clear unbinds the evaluator; Bound reports 0 until the next Bind.
func (b *ALTBound) Clear() { b.n = 0 }

// Bind selects the active landmarks for a search starting near vertex
// start: those whose lower bound at start is largest (any choice is
// correct; this one prunes best because the bound stays strong along the
// frontier growing away from the targets). lo/hi is a target projection in
// the full-graph metric, as produced by Project — possibly over a superset
// of the real targets. Bind is a no-op (leaving the evaluator cleared)
// when the projection does not match the landmark set or start is out of
// range.
func (b *ALTBound) Bind(lm *Landmarks, lo, hi []float64, start int32) {
	b.n = 0
	if lm == nil || len(lm.ids) == 0 || len(lo) != len(lm.ids) || len(hi) != len(lm.ids) {
		return
	}
	if start < 0 || int(start) >= len(lm.dist[0]) {
		start = lm.ids[0]
	}
	var scores [altActive]float64
	for l := range lm.ids {
		dv := lm.dist[l][start]
		if math.IsInf(dv, 1) {
			continue // this landmark cannot see the start's component
		}
		s := 0.0
		if d := lo[l] - dv; d > s {
			s = d
		}
		if d := dv - hi[l]; d > s {
			s = d
		}
		// Keep the altActive best-scoring axes (ties keep the earlier
		// landmark, so selection is deterministic).
		pos := b.n
		for pos > 0 && scores[pos-1] < s {
			pos--
		}
		if pos >= altActive {
			continue
		}
		end := b.n
		if end == altActive {
			end--
		}
		for j := end; j > pos; j-- {
			scores[j] = scores[j-1]
			b.rows[j] = b.rows[j-1]
			b.lo[j] = b.lo[j-1]
			b.hi[j] = b.hi[j-1]
		}
		scores[pos] = s
		b.rows[pos] = lm.dist[l]
		b.lo[pos] = lo[l]
		b.hi[pos] = hi[l]
		if b.n < altActive {
			b.n++
		}
	}
}

// Bound returns the ALT lower bound on the distance from full-graph
// vertex v to the nearest projected target (0 when nothing applies). The
// Inf cases are handled without ever forming NaN: a landmark that cannot
// reach v is skipped (its interval says nothing about v's component); an
// infinite lo means no target is reachable from that landmark, and for a
// v it CAN reach the resulting +Inf bound is correct — no target shares
// v's component.
func (b *ALTBound) Bound(v int32) float64 {
	best := 0.0
	for i := 0; i < b.n; i++ {
		dv := b.rows[i][v]
		if math.IsInf(dv, 1) {
			continue
		}
		if d := b.lo[i] - dv; d > best {
			best = d
		}
		if d := dv - b.hi[i]; d > best {
			best = d
		}
	}
	return best
}
