package roadnet

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/geom"
)

// WriteCSV serializes the graph as two sections: "v,<id>,<x>,<y>" vertex
// lines followed by "e,<u>,<v>,<weight>" edge lines. ReadCSV restores it;
// together they let the demo load user-provided maps.
func (g *Graph) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for v := 0; v < g.NumVertices(); v++ {
		p := g.Point(v)
		if _, err := fmt.Fprintf(bw, "v,%d,%g,%g\n", v, p.X, p.Y); err != nil {
			return fmt.Errorf("roadnet: write csv: %w", err)
		}
	}
	var werr error
	g.Edges(func(u, v int, weight float64) {
		if werr != nil {
			return
		}
		_, werr = fmt.Fprintf(bw, "e,%d,%d,%g\n", u, v, weight)
	})
	if werr != nil {
		return fmt.Errorf("roadnet: write csv: %w", werr)
	}
	return bw.Flush()
}

// ReadCSV parses the WriteCSV format. Vertex ids must be dense and in
// order starting at 0; blank lines and '#' comments are skipped.
func ReadCSV(r io.Reader) (*Graph, error) {
	g := NewGraph()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, ",")
		switch fields[0] {
		case "v":
			if len(fields) != 4 {
				return nil, fmt.Errorf("roadnet: line %d: want \"v,id,x,y\"", line)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("roadnet: line %d: %w", line, err)
			}
			x, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("roadnet: line %d: %w", line, err)
			}
			y, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("roadnet: line %d: %w", line, err)
			}
			got := g.AddVertex(geom.Pt(x, y))
			if got != id {
				return nil, fmt.Errorf("roadnet: line %d: vertex id %d out of order (expected %d)", line, id, got)
			}
		case "e":
			if len(fields) != 4 {
				return nil, fmt.Errorf("roadnet: line %d: want \"e,u,v,w\"", line)
			}
			u, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("roadnet: line %d: %w", line, err)
			}
			v, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("roadnet: line %d: %w", line, err)
			}
			w, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("roadnet: line %d: %w", line, err)
			}
			if err := g.AddEdge(u, v, w); err != nil {
				return nil, fmt.Errorf("roadnet: line %d: %w", line, err)
			}
		default:
			return nil, fmt.Errorf("roadnet: line %d: unknown record %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("roadnet: read csv: %w", err)
	}
	return g, nil
}
