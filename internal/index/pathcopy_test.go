package index

import (
	"fmt"
	"testing"

	"repro/internal/geom"
	"repro/internal/workload"
)

var benchBounds = geom.NewRect(geom.Pt(0, 0), geom.Pt(10000, 10000))

// BenchmarkStoreApplyPublish measures the cost of publishing one
// data-update epoch (insert+remove) at increasing object counts. With
// path-copying publication the per-epoch cost must grow sublinearly in the
// object count — the old deep-clone publication grew linearly.
func BenchmarkStoreApplyPublish(b *testing.B) {
	for _, n := range []int{1000, 4000, 16000, 64000} {
		b.Run(fmt.Sprintf("objects=%d", n), func(b *testing.B) {
			st, err := NewStore(Config{Bounds: benchBounds, Objects: workload.Uniform(n, benchBounds, 42)})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id, err := st.Insert(geom.Pt(float64((i*131)%9973)+1, float64((i*373)%9941)+1))
				if err != nil {
					b.Fatal(err)
				}
				if err := st.Remove(id); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestPublishSharesStructure asserts that an epoch publication copies a
// small fraction of the index and that snapshots pinned before the epoch
// keep answering from the old version.
func TestPublishSharesStructure(t *testing.T) {
	st, err := NewStore(Config{Bounds: benchBounds, Objects: workload.Uniform(5000, benchBounds, 7)})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	old := st.Acquire()
	defer old.Release()
	q := geom.Pt(5000, 5000)
	before := old.Plane().KNN(q, 8)

	if _, err := st.Insert(geom.Pt(5000.5, 5000.5)); err != nil {
		t.Fatal(err)
	}
	copied, total := st.PlaneShareStats()
	if total == 0 || copied == 0 {
		t.Fatalf("share stats empty: copied=%d total=%d", copied, total)
	}
	if frac := float64(copied) / float64(total); frac > 0.25 {
		t.Fatalf("epoch copied %.0f%% of the index nodes (%d/%d); expected path copy, not full clone",
			100*frac, copied, total)
	}
	if pubs, tot := st.PublishStats(); pubs != 1 || tot <= 0 {
		t.Fatalf("publish stats: publishes=%d total=%v", pubs, tot)
	}

	// The pinned snapshot must be untouched by the publication.
	after := old.Plane().KNN(q, 8)
	if len(before) != len(after) {
		t.Fatalf("pinned snapshot changed: %v -> %v", before, after)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("pinned snapshot changed: %v -> %v", before, after)
		}
	}
	cur := st.Acquire()
	defer cur.Release()
	if got := cur.Plane().KNN(q, 1); len(got) == 0 || got[0] == before[0] {
		t.Fatalf("new snapshot does not see the inserted object: %v", got)
	}
}

// TestApplyPoisonFallback forces the deep-clone fallback and asserts the
// store keeps serving correct answers through it.
func TestApplyPoisonFallback(t *testing.T) {
	st, err := NewStore(Config{Bounds: benchBounds, Objects: workload.Uniform(1000, benchBounds, 11)})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Insert(geom.Pt(10, 10)); err != nil {
		t.Fatal(err)
	}

	// Simulate an aborted mid-batch mutation (unreachable through the
	// pre-validated public API, by design).
	st.mu.Lock()
	st.poisoned = true
	st.mu.Unlock()

	id, err := st.Insert(geom.Pt(20, 20))
	if err != nil {
		t.Fatal(err)
	}
	snap := st.Acquire()
	defer snap.Release()
	if !snap.Plane().Contains(id) {
		t.Fatal("object inserted through the fallback path is not live")
	}
	if got := snap.Plane().KNN(geom.Pt(20, 20), 1); len(got) != 1 || got[0] != id {
		t.Fatalf("KNN after fallback = %v, want [%d]", got, id)
	}
	// And the next epoch goes back to path copying.
	if _, err := st.Insert(geom.Pt(30, 30)); err != nil {
		t.Fatal(err)
	}
	copied, total := st.PlaneShareStats()
	if frac := float64(copied) / float64(total); frac > 0.25 {
		t.Fatalf("post-fallback epoch copied %.0f%% of the index", 100*frac)
	}
}
