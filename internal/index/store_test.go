package index

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/roadnet"
	"repro/internal/vortree"
	"repro/internal/workload"
)

var testBounds = geom.NewRect(geom.Pt(0, 0), geom.Pt(1000, 1000))

func newPlaneStore(t *testing.T, n int, logDepth int) *Store {
	t.Helper()
	st, err := NewStore(Config{
		Bounds:   testBounds,
		Objects:  workload.Uniform(n, testBounds, 42),
		LogDepth: logDepth,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestStoreConfigValidation(t *testing.T) {
	if _, err := NewStore(Config{}); err == nil {
		t.Error("empty config accepted")
	}
}

func TestStoreIDsMatchSingleThreadedBuild(t *testing.T) {
	pts := workload.Uniform(200, testBounds, 7)
	st, err := NewStore(Config{Bounds: testBounds, Objects: pts})
	if err != nil {
		t.Fatal(err)
	}
	ref, refIDs, err := vortree.Build(testBounds, 16, pts)
	if err != nil {
		t.Fatal(err)
	}
	// Mutations assign the same ids as direct index mutations.
	p := geom.Pt(123.4, 567.8)
	id, err := st.Insert(p)
	if err != nil {
		t.Fatal(err)
	}
	refID, err := ref.Insert(p)
	if err != nil {
		t.Fatal(err)
	}
	if id != refID {
		t.Fatalf("store id %d, reference id %d", id, refID)
	}
	if err := st.Remove(refIDs[0]); err != nil {
		t.Fatal(err)
	}
	plane := st.Current().Plane()
	if plane.Contains(refIDs[0]) {
		t.Error("removed object still live")
	}
	if got, want := plane.Len(), len(pts); got != want {
		t.Errorf("Len = %d, want %d", got, want)
	}
	if st.Epoch() != 2 {
		t.Errorf("epoch = %d, want 2", st.Epoch())
	}
}

func TestStoreSnapshotImmutability(t *testing.T) {
	st := newPlaneStore(t, 100, 0)
	old := st.Acquire()
	defer old.Release()
	oldLen := old.Plane().Len()
	q := geom.Pt(500, 500)
	before := old.Plane().KNN(q, 5)

	for i := 0; i < 50; i++ {
		if _, err := st.Insert(geom.Pt(499+float64(i)/100, 500)); err != nil {
			t.Fatal(err)
		}
	}
	if got := old.Plane().Len(); got != oldLen {
		t.Fatalf("pinned snapshot Len changed: %d -> %d", oldLen, got)
	}
	after := old.Plane().KNN(q, 5)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("pinned snapshot kNN changed: %v -> %v", before, after)
		}
	}
	cur := st.Acquire()
	defer cur.Release()
	if got := cur.Plane().Len(); got != oldLen+50 {
		t.Fatalf("current snapshot Len = %d, want %d", got, oldLen+50)
	}
	if cur.Epoch() != old.Epoch()+50 {
		t.Fatalf("epochs: old %d, cur %d", old.Epoch(), cur.Epoch())
	}
}

func TestStorePinAccounting(t *testing.T) {
	st := newPlaneStore(t, 20, 0)
	if got := st.LiveSnapshots(); got != 1 {
		t.Fatalf("initial live snapshots = %d, want 1", got)
	}
	s0 := st.Acquire()
	if _, err := st.Insert(geom.Pt(1, 1)); err != nil {
		t.Fatal(err)
	}
	// s0 is superseded but pinned; the store pins the current one.
	if got := st.LiveSnapshots(); got != 2 {
		t.Fatalf("live snapshots with one lagging pin = %d, want 2", got)
	}
	s0.Release()
	if got := st.LiveSnapshots(); got != 1 {
		t.Fatalf("live snapshots after release = %d, want 1", got)
	}
	// Mutations with no lagging readers do not accumulate versions.
	for i := 0; i < 10; i++ {
		if _, err := st.Insert(geom.Pt(float64(i)+2, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if got := st.LiveSnapshots(); got != 1 {
		t.Fatalf("live snapshots after 10 unpinned publishes = %d, want 1", got)
	}
}

func TestStoreApplyBatchPublishesOnce(t *testing.T) {
	st := newPlaneStore(t, 10, 0)
	epochs := st.Subscribe()
	muts := []Mutation{
		{Insert: true, P: geom.Pt(10, 10)},
		{Insert: true, P: geom.Pt(20, 20)},
		{Insert: true, P: geom.Pt(30, 30)},
	}
	ids, err := st.Apply(muts)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("ids = %v", ids)
	}
	if st.Epoch() != 3 {
		t.Errorf("epoch = %d, want 3 (one per mutation)", st.Epoch())
	}
	// One coalesced notification carrying the final epoch.
	if got := <-epochs; got != 3 {
		t.Errorf("notified epoch = %d, want 3", got)
	}
	select {
	case e := <-epochs:
		t.Errorf("unexpected second notification %d", e)
	default:
	}
	// A failed batch publishes nothing and consumes no epochs.
	if _, err := st.Apply([]Mutation{{Insert: true, P: geom.Pt(40, 40)}, {ID: 99999}}); err == nil {
		t.Fatal("batch with unknown removal succeeded")
	}
	if st.Epoch() != 3 {
		t.Errorf("epoch after failed batch = %d, want 3", st.Epoch())
	}
	if st.Current().Plane().Len() != 13 {
		t.Errorf("object count after failed batch = %d, want 13", st.Current().Plane().Len())
	}
}

func TestStoreOpsSince(t *testing.T) {
	st := newPlaneStore(t, 10, 4)
	var ids []int
	for i := 0; i < 3; i++ {
		id, err := st.Insert(geom.Pt(float64(i)*7+1, 3))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	ops, ok := st.OpsSince(0, 3)
	if !ok || len(ops) != 3 {
		t.Fatalf("OpsSince(0,3) = %v ops, ok=%v", len(ops), ok)
	}
	for i, op := range ops {
		if op.Epoch != uint64(i+1) || !op.Insert || op.ID != ids[i] {
			t.Errorf("op %d = %+v", i, op)
		}
		if op.Conservative || op.Neighbors == nil {
			t.Errorf("op %d missing neighbor capture: %+v", i, op)
		}
	}
	if ops, ok := st.OpsSince(1, 2); !ok || len(ops) != 1 || ops[0].Epoch != 2 {
		t.Errorf("OpsSince(1,2) = %+v, ok=%v", ops, ok)
	}
	if ops, ok := st.OpsSince(3, 3); !ok || len(ops) != 0 {
		t.Errorf("OpsSince(3,3) = %+v, ok=%v", ops, ok)
	}
	// Overflow the 4-deep log: epoch 1 must fall out.
	if err := st.Remove(ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := st.Remove(ids[1]); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.OpsSince(0, 5); ok {
		t.Error("OpsSince(0,5) succeeded after log trim")
	}
	if ops, ok := st.OpsSince(1, 5); !ok || len(ops) != 4 {
		t.Errorf("OpsSince(1,5) = %d ops, ok=%v", len(ops), ok)
	}
	if ops, ok := st.OpsSince(4, 5); !ok || len(ops) != 1 || ops[0].Insert {
		t.Errorf("OpsSince(4,5) = %+v, ok=%v", ops, ok)
	}
}

func TestStoreRemoveErrors(t *testing.T) {
	st := newPlaneStore(t, 5, 0)
	if err := st.Remove(99999); !errors.Is(err, ErrUnknownObject) {
		t.Errorf("remove unknown: %v", err)
	}
	g, err := roadnet.GridNetwork(4, 4, testBounds, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	netOnly, err := NewStore(Config{Network: g, NetworkSites: []int{0, 5, 10, 15}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := netOnly.Insert(geom.Pt(1, 1)); !errors.Is(err, ErrNoPlane) {
		t.Errorf("insert on network-only store: %v", err)
	}
	if netOnly.Network() == nil || netOnly.Current().Network() == nil {
		t.Error("network backend missing")
	}
	if netOnly.Current().Plane() != nil {
		t.Error("plane backend present on network-only store")
	}
	st.Close()
	if _, err := st.Insert(geom.Pt(2, 2)); !errors.Is(err, ErrClosed) {
		t.Errorf("insert after close: %v", err)
	}
	if got := st.LiveSnapshots(); got != 0 {
		t.Errorf("live snapshots after close with no readers = %d, want 0", got)
	}
	if s := st.Acquire(); s != nil {
		t.Error("Acquire after Close returned a snapshot, want nil")
	}
}

// TestStoreConcurrentReadersWriters exercises the copy-on-write contract
// under -race: readers run kNN/INS on pinned snapshots while a writer
// churns objects.
func TestStoreConcurrentReadersWriters(t *testing.T) {
	st := newPlaneStore(t, 500, 0)
	const readers = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			q := geom.Pt(float64(r)*100+50, 500)
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := st.Acquire()
				plane := s.Plane()
				knn := plane.KNN(q, 8)
				if len(knn) != 8 {
					t.Errorf("reader %d: got %d neighbors", r, len(knn))
				}
				if _, err := plane.INS(knn); err != nil {
					t.Errorf("reader %d: INS: %v", r, err)
				}
				s.Release()
			}
		}(r)
	}
	var inserted []int
	for i := 0; i < 60; i++ {
		if len(inserted) > 10 {
			if err := st.Remove(inserted[0]); err != nil {
				t.Error(err)
			}
			inserted = inserted[1:]
		} else {
			id, err := st.Insert(geom.Pt(float64(i%37)*23+11, float64(i%17)*41+13))
			if err != nil {
				t.Error(err)
			} else {
				inserted = append(inserted, id)
			}
		}
	}
	close(stop)
	wg.Wait()
	if got := st.LiveSnapshots(); got != 1 {
		t.Errorf("live snapshots after readers drained = %d, want 1", got)
	}
}
