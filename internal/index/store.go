package index

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/netvor"
	"repro/internal/obs"
	"repro/internal/roadnet"
	"repro/internal/vortree"
)

// Errors returned by Store mutations.
var (
	// ErrNoPlane is returned for plane-object mutations on a store
	// configured without plane objects.
	ErrNoPlane = errors.New("index: no plane index configured")
	// ErrNoNetwork is returned for network-site mutations on a store
	// configured without a road network.
	ErrNoNetwork = errors.New("index: no road network configured")
	// ErrUnknownObject is returned when removing an object id that is not
	// live.
	ErrUnknownObject = errors.New("index: unknown object")
	// ErrUnknownSite is returned when removing a network vertex that
	// carries no data object.
	ErrUnknownSite = errors.New("index: unknown network site")
	// ErrSiteExists is returned when inserting a network site at a vertex
	// that already carries one.
	ErrSiteExists = errors.New("index: network site already exists")
	// ErrLastSite is returned when a batch would leave the network side
	// without any site; the network Voronoi diagram of an empty site set
	// is undefined.
	ErrLastSite = errors.New("index: cannot remove the last network site")
	// ErrClosed is returned by mutations after Close.
	ErrClosed = errors.New("index: store closed")
	// ErrOutOfBounds is returned for inserts outside the data space —
	// a plane point outside the bounds or a network vertex id outside the
	// graph — rejected before the copy-on-write branch is created.
	ErrOutOfBounds = errors.New("index: point outside the data space")
	// ErrDurability wraps every durability-append failure (the underlying
	// cause chains behind it), so callers can map "the WAL rejected this
	// batch" to a retryable unavailability without knowing the WAL's
	// error vocabulary.
	ErrDurability = errors.New("index: durability append failed")
)

// DefaultLogDepth is the default mutation-log capacity: how far back a
// session may lag (in data updates) and still re-pin with exact
// affectedness checks instead of a conservative invalidation.
const DefaultLogDepth = 4096

// Config parameterizes NewStore. Objects/Bounds configure the plane side,
// Network/NetworkSites the road-network side; at least one side must be
// configured.
type Config struct {
	// Fanout is the VoR-tree node fanout (default 16).
	Fanout int
	// LogDepth bounds the mutation log (default DefaultLogDepth).
	LogDepth int

	// Bounds is the data space of the plane objects.
	Bounds geom.Rect
	// Objects are the initial plane data objects.
	Objects []geom.Point

	// Network is the road network (shared, not copied; the store's
	// published read surface never mutates it).
	Network *roadnet.Graph
	// NetworkSites are the vertices holding the network data objects.
	NetworkSites []int

	// Restore, when non-nil, publishes a recovered logical state at its
	// checkpoint epoch instead of seeding from Objects/NetworkSites (which
	// are then ignored; Bounds and Network still describe the data space).
	// The durability layer (internal/wal) fills it from the newest valid
	// checkpoint, then replays the write-ahead log tail through Apply.
	Restore *Restore

	// Obs, when non-nil, times epoch publication (the publish stage) and
	// reports slow publishes. nil keeps the store's hot path free of any
	// instrumentation cost.
	Obs *obs.Pipeline
}

// Restore is a recovered logical store state: everything a checkpoint
// needs to rebuild the indexes so that they answer — and keep assigning
// object ids — exactly as the instance that wrote it.
type Restore struct {
	// Epoch is the checkpoint's data-update epoch; the restored store
	// publishes its first snapshot at this version and WAL replay
	// continues from Epoch+1.
	Epoch uint64
	// HasPlane marks that the original store carried a plane index (which
	// may have drained to zero live objects).
	HasPlane bool
	// Plane lists the live plane objects ascending by id; NextID is the id
	// the next insert must receive (removed ids stay burned).
	Plane  []vortree.RestoreObject
	NextID int
	// Sites are the network site vertices at the checkpoint (ascending).
	Sites []int
}

// Durability is the optional write-ahead hook of the store. Apply invokes
// it after the whole batch mutated the copy-on-write branch but before the
// snapshot is published or any caller sees the new epoch — the append (and
// its policy-dependent fsync) is the durability point of the batch. An
// error aborts the batch unpublished; the caller never observes a state
// the log does not cover. The hook runs under the store's mutation lock,
// so appends arrive in epoch order.
type Durability interface {
	// AppendBatch persists one applied batch; firstEpoch is the epoch of
	// the batch's first mutation (the batch covers firstEpoch ..
	// firstEpoch+len(muts)-1). The implementation must not retain muts.
	// ctx carries the request trace ID (obs.TraceID) for slow-op
	// attribution; it is not a cancellation signal — the batch has
	// already mutated the branch and must be persisted or aborted whole.
	AppendBatch(ctx context.Context, firstEpoch uint64, muts []Mutation) error
}

// Mutation is one object update in a batch. On the plane side (Network
// false) it is an insert of point P or a removal of object ID. On the
// network side (Network true) ID is the site vertex for both inserts and
// removals — network data objects are identified by the vertex they sit
// on. A batch may mix both sides; each side branches at most once.
type Mutation struct {
	Insert  bool
	P       geom.Point
	ID      int
	Network bool
}

// Op is one applied mutation in the store's log, replayed by re-pinning
// sessions to decide whether their guard sets survived the epoch range
// they skipped. Plane sessions skip network ops and vice versa.
type Op struct {
	// Epoch is the op's position in the global mutation order; the first
	// applied op has epoch 1.
	Epoch  uint64
	Insert bool
	// Network marks a network-site op; ID is then the site vertex.
	Network bool
	// ID is the object inserted or removed.
	ID int
	// P is the inserted object's position (plane inserts only).
	P geom.Point
	// Neighbors is the object's Voronoi neighbor list captured at apply
	// time (after an insert, before a removal on the network side), shared
	// by every session's affectedness check. Nil with Conservative set
	// when the lookup failed.
	Neighbors []int
	// Conservative marks an op whose affectedness cannot be decided
	// exactly; sessions seeing it must invalidate.
	Conservative bool
}

// Store owns the canonical indexes and publishes immutable epoch-versioned
// snapshots. All methods are safe for concurrent use.
type Store struct {
	fanout int
	bounds geom.Rect

	cur       atomic.Pointer[Snapshot]
	closedFlg atomic.Bool

	mu       sync.Mutex // serializes mutation, publish, and notification order
	closed   bool
	logDepth int
	log      []Op       // contiguous ops, oldest first
	dur      Durability // optional write-ahead hook; see SetDurability
	// poisoned is set when a plane mutation batch aborts after partially
	// mutating the path-copied branch: the writer state shared along the
	// branch chain (duplicate index, free list) may then be out of sync,
	// so the next Apply publishes through a deep Clone — the fallback that
	// rebuilds it — instead of a Branch. The network side needs no such
	// flag: a netvor branch shares no writer state with its parent, so an
	// abandoned branch cannot corrupt the published snapshot.
	poisoned bool

	live atomic.Int64 // snapshots whose pin count is > 0

	obs *obs.Pipeline // nil when observability is off

	publishes atomic.Uint64 // epochs published by Apply
	publishNS atomic.Int64  // cumulative wall time inside Apply

	subMu sync.Mutex
	subs  []chan uint64
}

// Snapshot is one immutable published version of the indexes. Readers pin
// it (Acquire on the store, Release when done or re-pinned) and may then
// use the read surface from any goroutine without locking.
type Snapshot struct {
	store *Store
	epoch uint64
	plane *vortree.Index  // frozen after publish; nil without plane data
	net   *netvor.Diagram // frozen after publish; nil without a road network
	pins  atomic.Int64
}

// NewStore builds the canonical indexes and publishes the initial snapshot
// at epoch 0.
func NewStore(cfg Config) (*Store, error) {
	if cfg.Fanout <= 0 {
		cfg.Fanout = 16
	}
	if cfg.LogDepth <= 0 {
		cfg.LogDepth = DefaultLogDepth
	}
	hasPlane := len(cfg.Objects) > 0
	sites := cfg.NetworkSites
	epoch := uint64(0)
	if rs := cfg.Restore; rs != nil {
		hasPlane = rs.HasPlane
		sites = rs.Sites
		epoch = rs.Epoch
	}
	if !hasPlane && cfg.Network == nil {
		return nil, errors.New("index: config has neither plane objects nor a road network")
	}
	st := &Store{fanout: cfg.Fanout, bounds: cfg.Bounds, logDepth: cfg.LogDepth, obs: cfg.Obs}
	var plane *vortree.Index
	if hasPlane {
		var ix *vortree.Index
		var err error
		if rs := cfg.Restore; rs != nil {
			ix, err = vortree.Restore(cfg.Bounds, cfg.Fanout, rs.Plane, rs.NextID)
		} else {
			ix, _, err = vortree.Build(cfg.Bounds, cfg.Fanout, cfg.Objects)
		}
		if err != nil {
			return nil, fmt.Errorf("index: build plane index: %w", err)
		}
		plane = ix
	}
	var net *netvor.Diagram
	if cfg.Network != nil {
		nv, err := netvor.Build(cfg.Network, sites)
		if err != nil {
			return nil, fmt.Errorf("index: build network diagram: %w", err)
		}
		net = nv
	}
	st.publish(&Snapshot{store: st, epoch: epoch, plane: plane, net: net})
	return st, nil
}

// SetDurability attaches (or, with nil, detaches) the write-ahead hook.
// The durability layer attaches it only after recovery replay has run, so
// replayed batches are not appended a second time.
func (st *Store) SetDurability(d Durability) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.dur = d
}

// publish installs s as the current snapshot, transferring the store's own
// pin from the previous one. Callers must hold st.mu (or be NewStore).
func (st *Store) publish(s *Snapshot) {
	s.pins.Store(1) // the store's "current" reference
	st.live.Add(1)
	if old := st.cur.Swap(s); old != nil {
		old.Release()
	}
}

// HasPlane reports whether the store carries a plane index.
func (st *Store) HasPlane() bool { return st.cur.Load().plane != nil }

// HasNetwork reports whether the store carries a road-network side.
func (st *Store) HasNetwork() bool { return st.cur.Load().net != nil }

// Bounds returns the plane data space.
func (st *Store) Bounds() geom.Rect { return st.bounds }

// Network returns the CURRENT snapshot's network read surface, or nil
// when the store has no road network. Like the plane side, the diagram is
// epoch-versioned: site mutations publish a new frozen diagram, so
// sessions that need a stable view across updates must pin a snapshot
// rather than re-reading this accessor.
func (st *Store) Network() NetworkBackend {
	s := st.cur.Load()
	if s.net == nil {
		return nil
	}
	return s.net
}

// Current returns the current snapshot without pinning it. The returned
// snapshot is safe to read only while the caller also holds a pin that is
// at least as old; use it for cheap epoch peeks (Epoch comparison) and
// Acquire for actual reads.
func (st *Store) Current() *Snapshot { return st.cur.Load() }

// Epoch returns the number of applied data updates.
func (st *Store) Epoch() uint64 { return st.cur.Load().epoch }

// LiveSnapshots returns the number of snapshots still pinned (including
// the current one, which the store itself pins). It demonstrates the
// garbage-collection contract: publishing does not leak old versions once
// sessions re-pin.
func (st *Store) LiveSnapshots() int { return int(st.live.Load()) }

// Acquire pins and returns the current snapshot, or nil after Close
// (whose final snapshot may have drained its pins; retrying it forever
// would livelock). Callers must Release the result (or hand it to a
// session that will).
func (st *Store) Acquire() *Snapshot {
	for {
		if st.closedFlg.Load() {
			return nil
		}
		s := st.cur.Load()
		if !s.tryPin() {
			// The snapshot drained to zero pins after being superseded;
			// cur already points somewhere newer.
			continue
		}
		if st.cur.Load() == s {
			return s
		}
		// Lost a race with publish; the pin briefly kept a superseded
		// snapshot alive. Drop it and retry on the new one.
		s.Release()
	}
}

// tryPin increments the pin count unless it already drained to zero — a
// drained snapshot is dead and must not be resurrected, or the liveness
// accounting would double-count its release.
func (s *Snapshot) tryPin() bool {
	for {
		n := s.pins.Load()
		if n <= 0 {
			return false
		}
		if s.pins.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// Insert adds one plane data object copy-on-write and publishes the next
// snapshot. It returns the assigned object id (inserting a duplicate point
// returns the existing id, still consuming an epoch).
func (st *Store) Insert(p geom.Point) (int, error) {
	ids, err := st.Apply([]Mutation{{Insert: true, P: p}})
	if err != nil {
		return -1, err
	}
	return ids[0], nil
}

// Remove deletes one plane data object copy-on-write and publishes the
// next snapshot.
func (st *Store) Remove(id int) error {
	_, err := st.Apply([]Mutation{{ID: id}})
	return err
}

// InsertSite adds one network data object at vertex v copy-on-write and
// publishes the next snapshot.
func (st *Store) InsertSite(v int) error {
	_, err := st.Apply([]Mutation{{Network: true, Insert: true, ID: v}})
	return err
}

// RemoveSite deletes the network data object at vertex v copy-on-write
// and publishes the next snapshot.
func (st *Store) RemoveSite(v int) error {
	_, err := st.Apply([]Mutation{{Network: true, ID: v}})
	return err
}

// Apply applies a batch of mutations under at most ONE path-copied branch
// per index side and ONE publish, and returns the object id of each
// mutation in order. Publication is sublinear in the object count on both
// sides: the plane branch shares every untouched R-tree node and Voronoi
// overlay page, and the network branch shares every untouched
// shortest-path label page, with the snapshot it supersedes — the epoch
// cost is proportional to the batch's structural footprint, not to the
// index size. A failed mutation aborts the whole batch without publishing
// anything; if a plane abort happened after part of the batch already
// mutated the branch, the next Apply falls back to a deep Clone, which
// rebuilds the writer state the abandoned branch shared with the published
// snapshot (network branches share no writer state, so they are simply
// discarded).
func (st *Store) Apply(muts []Mutation) ([]int, error) {
	return st.ApplyCtx(context.Background(), muts)
}

// ApplyCtx is Apply with a request context carrying the trace ID for
// slow-op attribution (the context is not a cancellation signal: once
// entered, a batch is applied or aborted whole).
func (st *Store) ApplyCtx(ctx context.Context, muts []Mutation) ([]int, error) {
	if len(muts) == 0 {
		return nil, nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return nil, ErrClosed
	}
	start := time.Now()
	cur := st.cur.Load()
	if err := st.validate(cur, muts); err != nil {
		return nil, err
	}

	var nextPlane *vortree.Index
	var nextNet *netvor.Diagram
	for _, m := range muts {
		if m.Network && nextNet == nil {
			nextNet = cur.net.Branch()
		}
		if !m.Network && nextPlane == nil {
			if st.poisoned {
				nextPlane = cur.plane.Clone() // deep fallback: rebuilds writer state
				st.poisoned = false
			} else {
				nextPlane = cur.plane.Branch()
			}
		}
	}
	ids := make([]int, len(muts))
	ops := make([]Op, len(muts))
	epoch := cur.epoch
	for i, m := range muts {
		epoch++
		if m.Network {
			op, err := applySite(nextNet, m, epoch)
			if err != nil {
				// The network branch is safely discardable, but a mixed
				// batch may already have mutated the plane branch, whose
				// shared writer state is now suspect — same fallback as a
				// plane abort.
				st.poisoned = st.poisoned || nextPlane != nil
				return nil, err
			}
			ids[i] = m.ID
			ops[i] = op
			continue
		}
		if m.Insert {
			id, err := nextPlane.Insert(m.P)
			if err != nil {
				st.poisoned = true
				return nil, fmt.Errorf("index: insert %v: %w", m.P, err)
			}
			ids[i] = id
			op := Op{Epoch: epoch, Insert: true, ID: id, P: m.P}
			if nb, err := nextPlane.Neighbors(id); err == nil {
				op.Neighbors = nb
			} else {
				op.Conservative = true
			}
			ops[i] = op
			continue
		}
		if err := nextPlane.Remove(m.ID); err != nil {
			st.poisoned = true
			return nil, fmt.Errorf("index: remove %d: %w", m.ID, err)
		}
		ids[i] = m.ID
		ops[i] = Op{Epoch: epoch, ID: m.ID}
	}
	var appendDur time.Duration
	if st.dur != nil {
		var ta time.Time
		if st.obs.Enabled() {
			ta = time.Now()
		}
		if err := st.dur.AppendBatch(ctx, cur.epoch+1, muts); err != nil {
			// The batch is durable only if the append succeeded; abort
			// unpublished so no caller observes state the log misses. A
			// touched plane branch leaves suspect shared writer state behind,
			// exactly like a mid-batch abort.
			st.poisoned = st.poisoned || nextPlane != nil
			return nil, fmt.Errorf("%w: %w", ErrDurability, err)
		}
		if st.obs.Enabled() {
			appendDur = time.Since(ta)
		}
	}
	// store.publish.delay: a stalled publication — the batch is durable
	// but the epoch swap hasn't happened; readers keep serving the
	// previous snapshot while the store lock is held.
	fault.StorePublishDelay.Fire()
	if nextPlane == nil {
		nextPlane = cur.plane // untouched side carries over, shared
	}
	if nextNet == nil {
		nextNet = cur.net
	}

	st.log = append(st.log, ops...)
	if over := len(st.log) - st.logDepth; over > 0 {
		st.log = append([]Op(nil), st.log[over:]...)
	}
	st.publish(&Snapshot{store: st, epoch: epoch, plane: nextPlane, net: nextNet})
	st.publishes.Add(1)
	total := time.Since(start)
	st.publishNS.Add(total.Nanoseconds())
	if st.obs.Enabled() {
		// The publish stage is the epoch's own cost (branch + mutations +
		// swap); the durability append is measured as its own stages.
		st.obs.Observe(obs.StagePublish, total-appendDur)
		st.obs.SlowPublish(obs.TraceID(ctx), epoch, len(muts), total-appendDur)
	}
	st.notify(epoch)
	return ids, nil
}

// CurrentPins returns the current snapshot's pin count (including the
// store's own pin) — the sessions-still-reading-this-epoch gauge.
func (st *Store) CurrentPins() int {
	return int(st.cur.Load().pins.Load())
}

// applySite applies one network-site mutation to the branched diagram and
// builds its log op. The op captures the site's network Voronoi neighbor
// list — after an insert (who the new cell touches) and before a removal
// (who inherits the territory) — which is exactly what a lagging session
// needs to decide whether its guard cells were disturbed.
func applySite(net *netvor.Diagram, m Mutation, epoch uint64) (Op, error) {
	op := Op{Epoch: epoch, Network: true, Insert: m.Insert, ID: m.ID}
	if m.Insert {
		if err := net.Insert(m.ID); err != nil {
			return Op{}, fmt.Errorf("index: insert site %d: %w", m.ID, err)
		}
		if nb, err := net.Neighbors(m.ID); err == nil {
			op.Neighbors = nb // immutable list; safe to share with the log
		} else {
			op.Conservative = true
		}
		return op, nil
	}
	if nb, err := net.Neighbors(m.ID); err == nil {
		op.Neighbors = nb
	} else {
		op.Conservative = true
	}
	if err := net.Remove(m.ID); err != nil {
		return Op{}, fmt.Errorf("index: remove site %d: %w", m.ID, err)
	}
	return op, nil
}

// validate rejects a bad batch against the current state before any branch
// is paid for: plane inserts must be in bounds, network inserts must name
// a fresh vertex, and removals must reference an object live at that point
// of the batch (the network side additionally may never drain to zero
// sites). Rejecting input errors up front means a mid-batch abort — which
// poisons the plane's shared writer state — is only reachable through
// internal inconsistencies. (Plane ids assigned by an insert are unknown
// until applied, so a batch cannot remove them; network sites are named by
// vertex, so it can.)
func (st *Store) validate(cur *Snapshot, muts []Mutation) error {
	var removed map[int]bool   // plane ids removed earlier in the batch
	var siteDelta map[int]bool // vertex -> is a site after the batch prefix
	sitesLeft := 0             // network site count along the batch prefix
	isSiteNow := func(v int) bool {
		if s, ok := siteDelta[v]; ok {
			return s
		}
		return cur.net.IsSite(v)
	}
	for _, m := range muts {
		if m.Network {
			if cur.net == nil {
				return ErrNoNetwork
			}
			if siteDelta == nil {
				siteDelta = make(map[int]bool)
				sitesLeft = cur.net.Len()
			}
			if m.Insert {
				if m.ID < 0 || m.ID >= cur.net.Graph().NumVertices() {
					return fmt.Errorf("%w: network vertex %d", ErrOutOfBounds, m.ID)
				}
				if isSiteNow(m.ID) {
					return fmt.Errorf("%w: %d", ErrSiteExists, m.ID)
				}
				siteDelta[m.ID] = true
				sitesLeft++
				continue
			}
			if !isSiteNow(m.ID) {
				return fmt.Errorf("%w: %d", ErrUnknownSite, m.ID)
			}
			if sitesLeft == 1 {
				return ErrLastSite
			}
			siteDelta[m.ID] = false
			sitesLeft--
			continue
		}
		if cur.plane == nil {
			return ErrNoPlane
		}
		if m.Insert {
			if !st.bounds.Contains(m.P) {
				return fmt.Errorf("%w: %v", ErrOutOfBounds, m.P)
			}
			continue
		}
		if removed == nil {
			removed = make(map[int]bool)
		}
		if !cur.plane.Contains(m.ID) || removed[m.ID] {
			return fmt.Errorf("%w: %d", ErrUnknownObject, m.ID)
		}
		removed[m.ID] = true
	}
	return nil
}

// PublishStats returns the number of Apply publications and the cumulative
// wall time spent inside Apply — branch, mutations and publish. The
// quotient is the per-epoch publication cost the path-copying publication
// keeps sublinear in the object count.
func (st *Store) PublishStats() (publishes uint64, total time.Duration) {
	return st.publishes.Load(), time.Duration(st.publishNS.Load())
}

// PlaneShareStats reports the structural sharing of the current plane
// snapshot against its predecessor: the index nodes its publishing epoch
// copied, and the total node count. Both are 0 without a plane index.
func (st *Store) PlaneShareStats() (copied, total int) {
	if p := st.cur.Load().plane; p != nil {
		return p.ShareStats()
	}
	return 0, 0
}

// NetworkShareStats reports the structural sharing of the current network
// snapshot against its predecessor: the shortest-path label pages its
// publishing epoch copied, and the total page count. Both are 0 without a
// road network.
func (st *Store) NetworkShareStats() (copied, total int) {
	if n := st.cur.Load().net; n != nil {
		return n.ShareStats()
	}
	return 0, 0
}

// OpsSince returns the ops with epochs in (from, to] and reports whether
// the log still covers that range; ok=false means the caller lagged past
// the log capacity and must invalidate conservatively. The returned slice
// aliases the log; callers must not modify it.
func (st *Store) OpsSince(from, to uint64) ([]Op, bool) {
	if to <= from {
		return nil, true
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.log) == 0 || st.log[0].Epoch > from+1 {
		return nil, false
	}
	lo := int(from - st.log[0].Epoch + 1) // index of epoch from+1
	hi := int(to - st.log[0].Epoch + 1)   // one past epoch to
	if hi > len(st.log) {
		// to is ahead of the applied log — cannot happen for epochs read
		// from published snapshots, but never over-promise.
		return nil, false
	}
	return st.log[lo:hi], true
}

// Subscribe returns a channel that receives the epoch of every publish.
// Notifications are coalesced: a slow subscriber sees only the newest
// epoch, which is all a re-pinning reader needs.
func (st *Store) Subscribe() <-chan uint64 {
	ch := make(chan uint64, 1)
	st.subMu.Lock()
	st.subs = append(st.subs, ch)
	st.subMu.Unlock()
	return ch
}

// notify pushes epoch to every subscriber without blocking.
func (st *Store) notify(epoch uint64) {
	st.subMu.Lock()
	defer st.subMu.Unlock()
	for _, ch := range st.subs {
		for {
			select {
			case ch <- epoch:
			default:
				// Full: drop the stale epoch and retry with the newest.
				select {
				case <-ch:
					continue
				default:
				}
			}
			break
		}
	}
}

// Close rejects further mutations and releases the store's pin on the
// current snapshot, letting LiveSnapshots drain to zero once every session
// releases its own pin. Reads through already-pinned snapshots remain
// valid.
func (st *Store) Close() {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return
	}
	st.closed = true
	st.closedFlg.Store(true)
	st.cur.Load().Release()
}

// Epoch returns the snapshot's version: the number of data updates applied
// when it was published.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Plane returns the snapshot's plane read surface, or nil when the store
// has no plane index.
func (s *Snapshot) Plane() PlaneBackend {
	if s.plane == nil {
		return nil
	}
	return s.plane
}

// Network returns the snapshot's network read surface, or nil without a
// road network. The diagram is frozen at publish; reads are race-free
// across sessions for as long as the snapshot is pinned.
func (s *Snapshot) Network() NetworkBackend {
	if s.net == nil {
		return nil
	}
	return s.net
}

// PlaneObjects serializes the snapshot's plane side for checkpointing: the
// live objects ascending by id, and the id the next insert will assign
// (removed ids stay burned). Both are nil/0 without a plane index. The
// checkpoint writer calls it on a pinned frozen snapshot off the hot path.
func (s *Snapshot) PlaneObjects() ([]vortree.RestoreObject, int) {
	if s.plane == nil {
		return nil, 0
	}
	ids := s.plane.Diagram().IDs()
	objs := make([]vortree.RestoreObject, len(ids))
	for i, id := range ids {
		objs[i] = vortree.RestoreObject{ID: id, P: s.plane.Point(id)}
	}
	return objs, s.plane.NextID()
}

// NetworkSites serializes the snapshot's network side for checkpointing:
// the site vertices ascending, or nil without a road network.
func (s *Snapshot) NetworkSites() []int {
	if s.net == nil {
		return nil
	}
	sites := s.net.Sites()
	out := make([]int, len(sites))
	copy(out, sites)
	return out
}

// Release drops one pin. When the last pin of a superseded snapshot goes,
// the snapshot becomes unreachable and the Go runtime reclaims its index
// memory.
func (s *Snapshot) Release() {
	if n := s.pins.Add(-1); n == 0 {
		s.store.live.Add(-1)
	} else if n < 0 {
		panic("index: snapshot over-released")
	}
}
