// Package index owns the canonical data-object indexes of the serving
// system and publishes them to readers as immutable, epoch-versioned
// snapshots.
//
// The INS workload is read-dominated: thousands of live query sessions
// resolve kNN and influential-neighbor lookups against the index for every
// location update, while object inserts/deletes are comparatively rare.
// The Store therefore keeps ONE canonical copy of the plane VoR-tree and
// ONE of the network Voronoi diagram and applies each mutation batch
// copy-on-write: branch the mutated side(s) of the current snapshot, apply
// the batch, publish the result as a new Snapshot behind an atomic pointer.
// Readers pin a snapshot and serve from it lock-free; publishing is O(1)
// for them. Old snapshots are garbage-collected by the Go runtime as soon
// as no session pins them (the Store tracks pin counts so the lifecycle is
// observable).
//
// A bounded mutation log (per-epoch ops with the inserted object's Voronoi
// neighbors captured at apply time) lets a session that re-pins from epoch
// E to epoch E' decide whether any of the intervening mutations can affect
// its guard sets — the same lazy-invalidation rule the paper uses for data
// updates — without touching the new index. When the log has been trimmed
// past E the session invalidates conservatively.
package index

import (
	"repro/internal/geom"
	"repro/internal/netvor"
	"repro/internal/roadnet"
	"repro/internal/vortree"
)

// Backend is the read surface shared by the two index implementations:
// the plane VoR-tree (vortree.Index) and the network Voronoi diagram
// (netvor.Diagram). Query processors depend on this (or one of the
// space-specific extensions below) rather than on the concrete types, so
// they can be served equally from a raw index or a pinned snapshot.
type Backend interface {
	// Len returns the number of live data objects.
	Len() int
	// Contains reports whether object id is live.
	Contains(id int) bool
	// INS returns the influential neighbor set I(ids) of Definition 4,
	// sorted by id.
	INS(ids []int) ([]int, error)
}

// PlaneBackend is the plane-side read surface: Backend plus Euclidean kNN
// and per-object geometry. Implemented by *vortree.Index.
type PlaneBackend interface {
	Backend
	// KNN returns the k nearest objects to q in ascending distance order.
	KNN(q geom.Point, k int) []int
	// KNNCounted is KNN returning the node visits of this search — the
	// per-query cost attribution that stays exact under concurrent
	// readers of a shared snapshot.
	KNNCounted(q geom.Point, k int) ([]int, int)
	// AppendKNN is KNNCounted appending onto dst with caller-supplied
	// scratch — the allocation-free form the serving hot path uses.
	AppendKNN(q geom.Point, k int, dst []int, sc *vortree.SearchScratch) ([]int, int)
	// AppendINS is Backend.INS appending onto dst with caller-supplied
	// scratch.
	AppendINS(ids []int, dst []int, sc *vortree.SearchScratch) ([]int, error)
	// Point returns the coordinates of object id.
	Point(id int) geom.Point
	// Neighbors returns the order-1 Voronoi neighbor list of object id.
	Neighbors(id int) ([]int, error)
	// Visits returns the cumulative node-visit counter (page-I/O stand-in).
	Visits() int
}

// NetworkBackend is the network-side read surface: Backend plus
// network-distance kNN and the Theorem-2 subnetwork extraction.
// Implemented by *netvor.Diagram.
type NetworkBackend interface {
	Backend
	// KNNWithDistances returns the k nearest sites to pos with their
	// network distances, by incremental network expansion.
	KNNWithDistances(pos roadnet.Position, k int) ([]int, []float64)
	// KNNWithDistancesCounted additionally returns the edge relaxations
	// of this search, exact under concurrent readers.
	KNNWithDistancesCounted(pos roadnet.Position, k int) ([]int, []float64, int)
	// AppendKNN is KNNWithDistancesCounted appending onto dst/ds with
	// caller-supplied scratch — the allocation-free form the serving hot
	// path uses.
	AppendKNN(pos roadnet.Position, k int, dst []int, ds []float64, sc *netvor.SearchScratch) ([]int, []float64, int)
	// AppendINS is Backend.INS appending onto dst with caller-supplied
	// scratch.
	AppendINS(ids []int, dst []int, sc *netvor.SearchScratch) ([]int, error)
	// IsSite reports whether vertex v carries a data object.
	IsSite(v int) bool
	// Subnetwork extracts the Theorem-2 search space of the given sites.
	Subnetwork(sites []int) *netvor.Subnetwork
	// SubnetworkInto is Subnetwork reusing a previous extraction's storage
	// (nil allocates fresh) and caller-supplied scratch — the form the
	// query layer uses so periodic recomputes stop paying the extraction
	// allocations.
	SubnetworkInto(sites []int, sub *netvor.Subnetwork, sc *netvor.SearchScratch) *netvor.Subnetwork
	// ALTStats reports the shortest-path pruning instrumentation: the
	// landmark count and the lazy site-projection rebuilds performed.
	ALTStats() (landmarks int, projRebuilds uint64)
	// Graph returns the underlying road network.
	Graph() *roadnet.Graph
	// Sites returns the sorted site vertex ids.
	Sites() []int
}

// Compile-time conformance of the two index implementations.
var (
	_ PlaneBackend   = (*vortree.Index)(nil)
	_ NetworkBackend = (*netvor.Diagram)(nil)
)
