package index

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/workload"
)

// benchSiteEpoch measures one network-site epoch publication — Branch,
// incremental insert+remove repair, publish — against a street grid of
// grid×grid vertices with nSites data objects.
func benchSiteEpoch(b *testing.B, grid, nSites int) {
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(10000, 10000))
	g, err := workload.Network(grid, bounds, 5)
	if err != nil {
		b.Fatal(err)
	}
	sites, err := workload.NetworkSites(g, nSites, 6)
	if err != nil {
		b.Fatal(err)
	}
	st, err := NewStore(Config{Network: g, NetworkSites: sites})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	taken := map[int]bool{}
	for _, s := range sites {
		taken[s] = true
	}
	rng := rand.New(rand.NewSource(7))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := rng.Intn(g.NumVertices())
		for taken[v] {
			v = rng.Intn(g.NumVertices())
		}
		if err := st.InsertSite(v); err != nil {
			b.Fatal(err)
		}
		if err := st.RemoveSite(v); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreSitePublish is the network twin of
// BenchmarkStoreApplyPublish: the per-epoch publication cost of site
// mutations must stay sublinear in the network size (copy-on-write label
// pages + incremental cell repair), which CI checks by comparing the 8x
// network against the small one.
func BenchmarkStoreSitePublishSmall(b *testing.B) { benchSiteEpoch(b, 21, 75) }
func BenchmarkStoreSitePublishLarge(b *testing.B) { benchSiteEpoch(b, 64, 600) }
