package index

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/roadnet"
	"repro/internal/workload"
)

func networkStore(t *testing.T, grid, nSites int) (*Store, *roadnet.Graph, []int) {
	t.Helper()
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(1000, 1000))
	g, err := workload.Network(grid, bounds, 5)
	if err != nil {
		t.Fatal(err)
	}
	sites, err := workload.NetworkSites(g, nSites, 6)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStore(Config{Network: g, NetworkSites: sites})
	if err != nil {
		t.Fatal(err)
	}
	return st, g, sites
}

func freeVertex(st *Store, g *roadnet.Graph, rng *rand.Rand) int {
	for {
		v := rng.Intn(g.NumVertices())
		if !st.Current().Network().IsSite(v) {
			return v
		}
	}
}

// TestStoreNetworkApply: site mutations publish epochs, log network ops
// with captured neighbor lists, and leave pinned snapshots untouched.
func TestStoreNetworkApply(t *testing.T) {
	st, g, sites := networkStore(t, 12, 20)
	defer st.Close()
	rng := rand.New(rand.NewSource(9))

	old := st.Acquire()
	defer old.Release()
	probe := roadnet.VertexPosition(freeVertex(st, g, rng))
	oldKNN, _ := old.Network().KNNWithDistances(probe, 3)

	v := freeVertex(st, g, rng)
	if err := st.InsertSite(v); err != nil {
		t.Fatal(err)
	}
	if got := st.Epoch(); got != 1 {
		t.Fatalf("epoch = %d, want 1", got)
	}
	if !st.Current().Network().IsSite(v) {
		t.Fatalf("current snapshot misses inserted site %d", v)
	}
	if old.Network().IsSite(v) {
		t.Fatalf("pinned snapshot gained site %d", v)
	}
	if err := st.RemoveSite(sites[0]); err != nil {
		t.Fatal(err)
	}
	if old.Network().Len() != len(sites) {
		t.Fatalf("pinned snapshot site count changed to %d", old.Network().Len())
	}
	if gotKNN, _ := old.Network().KNNWithDistances(probe, 3); !equalIntsIdx(gotKNN, oldKNN) {
		t.Fatalf("pinned snapshot answers changed: %v, was %v", gotKNN, oldKNN)
	}

	ops, ok := st.OpsSince(0, 2)
	if !ok || len(ops) != 2 {
		t.Fatalf("OpsSince(0,2) = %v, %v", ops, ok)
	}
	if !ops[0].Network || !ops[0].Insert || ops[0].ID != v || ops[0].Conservative {
		t.Fatalf("insert op = %+v", ops[0])
	}
	if ops[0].Neighbors == nil {
		t.Fatal("insert op has no captured neighbor list")
	}
	if !ops[1].Network || ops[1].Insert || ops[1].ID != sites[0] || ops[1].Neighbors == nil {
		t.Fatalf("remove op = %+v", ops[1])
	}
}

// TestStoreNetworkValidation: bad batches are rejected up front with the
// matching sentinel error and publish nothing.
func TestStoreNetworkValidation(t *testing.T) {
	st, g, sites := networkStore(t, 8, 4)
	defer st.Close()

	cases := []struct {
		name string
		muts []Mutation
		want error
	}{
		{"dup site", []Mutation{{Network: true, Insert: true, ID: sites[0]}}, ErrSiteExists},
		{"dup within batch", []Mutation{
			{Network: true, Insert: true, ID: firstFree(st, g)},
			{Network: true, Insert: true, ID: firstFree(st, g)},
		}, ErrSiteExists},
		{"unknown site", []Mutation{{Network: true, ID: firstFree(st, g)}}, ErrUnknownSite},
		{"vertex out of range", []Mutation{{Network: true, Insert: true, ID: g.NumVertices()}}, ErrOutOfBounds},
		{"negative vertex", []Mutation{{Network: true, Insert: true, ID: -1}}, ErrOutOfBounds},
		{"drain to zero", []Mutation{
			{Network: true, ID: sites[0]},
			{Network: true, ID: sites[1]},
			{Network: true, ID: sites[2]},
			{Network: true, ID: sites[3]},
		}, ErrLastSite},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := st.Apply(c.muts); !errors.Is(err, c.want) {
				t.Fatalf("Apply = %v, want %v", err, c.want)
			}
		})
	}
	if st.Epoch() != 0 {
		t.Fatalf("rejected batches published epochs: %d", st.Epoch())
	}

	// Remove-then-reinsert of the same vertex within one batch is
	// well-defined and must pass validation.
	if _, err := st.Apply([]Mutation{
		{Network: true, ID: sites[0]},
		{Network: true, Insert: true, ID: sites[0]},
	}); err != nil {
		t.Fatalf("remove+reinsert batch: %v", err)
	}
	if st.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", st.Epoch())
	}

	// A plane mutation on a network-only store fails.
	if _, err := st.Apply([]Mutation{{Insert: true, P: geom.Pt(1, 1)}}); !errors.Is(err, ErrNoPlane) {
		t.Fatalf("plane mutation on network store = %v, want ErrNoPlane", err)
	}
}

func firstFree(st *Store, g *roadnet.Graph) int {
	for v := 0; v < g.NumVertices(); v++ {
		if !st.Current().Network().IsSite(v) {
			return v
		}
	}
	panic("no free vertex")
}

// TestStoreMixedBatch: one batch carrying both plane and network
// mutations branches each side once and publishes a single snapshot
// covering both.
func TestStoreMixedBatch(t *testing.T) {
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(1000, 1000))
	g, err := workload.Network(8, bounds, 5)
	if err != nil {
		t.Fatal(err)
	}
	sites, err := workload.NetworkSites(g, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStore(Config{
		Bounds:       bounds,
		Objects:      workload.Uniform(50, bounds, 7),
		Network:      g,
		NetworkSites: sites,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	v := firstFree(st, g)
	ids, err := st.Apply([]Mutation{
		{Insert: true, P: geom.Pt(500, 500)},
		{Network: true, Insert: true, ID: v},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[1] != v {
		t.Fatalf("ids = %v", ids)
	}
	if st.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2 (one per mutation)", st.Epoch())
	}
	snap := st.Acquire()
	defer snap.Release()
	if !snap.Plane().Contains(ids[0]) {
		t.Fatalf("snapshot misses plane object %d", ids[0])
	}
	if !snap.Network().IsSite(v) {
		t.Fatalf("snapshot misses network site %d", v)
	}
	ops, ok := st.OpsSince(0, 2)
	if !ok || len(ops) != 2 || ops[0].Network || !ops[1].Network {
		t.Fatalf("ops = %+v, %v", ops, ok)
	}
}

func equalIntsIdx(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
