package delaunay

// pageOwner is an identity token: pages carry the token of the
// triangulation version that created (or last copied) them, and only that
// version may write them in place. Branch hands the new version a fresh
// token, so its first write to any inherited page copies it — the face and
// vertex tables are shared between snapshot epochs at page granularity.
type pageOwner struct{ _ byte }

const (
	pageBits = 6
	pageSize = 1 << pageBits
	pageMask = pageSize - 1
)

// page is one fixed-size chunk of a paged slice; data always has length
// pageSize (the tail beyond the logical length is garbage).
type page[T any] struct {
	own  *pageOwner
	data []T
}

// paged is a copy-on-write chunked slice: a directory of fixed-size pages.
// branch copies only the directory (n/pageSize pointers); mutation copies
// only the touched page. Reads on a frozen version never write, so many
// goroutines may read versions concurrently while the newest version is
// mutated.
type paged[T any] struct {
	dir []*page[T]
	n   int
}

func (p *paged[T]) len() int { return p.n }

// at returns a pointer for reading entry i. The pointer is stable for
// frozen versions; in mutating code use mut instead so a concurrent page
// copy cannot strand writes.
func (p *paged[T]) at(i int) *T {
	return &p.dir[i>>pageBits].data[i&pageMask]
}

// mut returns a pointer for writing entry i, copying the page first unless
// own already owns it. Pointers obtained through mut stay valid for the
// lifetime of the owning version.
func (p *paged[T]) mut(i int, own *pageOwner) *T {
	pg := p.dir[i>>pageBits]
	if pg.own != own {
		cp := &page[T]{own: own, data: append(make([]T, 0, pageSize), pg.data...)}
		p.dir[i>>pageBits] = cp
		pg = cp
	}
	return &pg.data[i&pageMask]
}

// append grows the slice by one entry.
func (p *paged[T]) append(v T, own *pageOwner) {
	if p.n>>pageBits == len(p.dir) {
		p.dir = append(p.dir, &page[T]{own: own, data: make([]T, pageSize)})
	}
	*p.mut(p.n, own) = v
	p.n++
}

// branch returns a logically independent copy sharing every page with the
// receiver; cost is one directory copy, O(n/pageSize).
func (p *paged[T]) branch() paged[T] {
	return paged[T]{dir: append([]*page[T](nil), p.dir...), n: p.n}
}

// deepCopy returns a copy sharing nothing with the receiver, every page
// owned by own.
func (p *paged[T]) deepCopy(own *pageOwner) paged[T] {
	c := paged[T]{dir: make([]*page[T], len(p.dir)), n: p.n}
	for i, pg := range p.dir {
		c.dir[i] = &page[T]{own: own, data: append(make([]T, 0, pageSize), pg.data...)}
	}
	return c
}
