// Package delaunay implements an incremental Delaunay triangulation of
// points in the plane. The order-1 Voronoi diagram used by the INS
// algorithm is the dual of this triangulation: two data objects are Voronoi
// neighbors exactly when they share a Delaunay edge.
//
// The implementation is the classic flip-based incremental algorithm with
// walk point location: each insertion locates the containing triangle by
// walking across edges, splits it (or the two triangles sharing an edge for
// on-edge insertions) and restores the empty-circumcircle property with
// Lawson flips. All geometric decisions go through the exact predicates in
// package geom, so degenerate inputs (collinear and cocircular points) are
// handled correctly. Vertex deletion retriangulates the star polygon of the
// removed vertex with Delaunay ear clipping.
//
// The face and vertex tables live in copy-on-write pages (see paged.go),
// which gives the triangulation cheap version branching: Branch returns a
// new mutable version in O(n/pageSize) that shares every untouched page
// with the (now frozen) receiver, and a mutation repairs only the handful
// of pages holding the faces it rewrites. The copy-on-write index snapshot
// store publishes one branch per data-update epoch; Clone remains as the
// deep fallback that shares nothing.
package delaunay

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/geom"
)

// ErrOutOfBounds is returned by Insert for points outside the bounding box
// the triangulation was created with.
var ErrOutOfBounds = errors.New("delaunay: point outside triangulation bounds")

// ErrDuplicate is returned by Insert for a point that exactly coincides
// with an existing vertex. The existing vertex index is still returned.
var ErrDuplicate = errors.New("delaunay: duplicate point")

// ErrFrozen is returned by mutations on a version that has been branched
// from: only the newest version of a branch chain accepts writes, which is
// what keeps the shared writer state (duplicate index, free list) coherent.
var ErrFrozen = errors.New("delaunay: triangulation frozen by Branch")

// noTri marks a missing triangle neighbor (boundary of the super-triangle).
// In the vertex-face table it additionally marks a removed vertex: a live
// vertex always has an incident live face.
const noTri = -1

// triangle is one face of the triangulation. Vertices are indices into
// Triangulation.pts in counter-clockwise order; n[i] is the face across
// edge (v[i], v[(i+1)%3]) or noTri.
type triangle struct {
	v     [3]int32
	n     [3]int32
	alive bool
}

// Triangulation is an incremental Delaunay triangulation. The zero value is
// not usable; call New.
//
// Version state is split three ways. The face table (tris) and the
// vertex-face hints (vface) are paged copy-on-write and diverge per
// version. The vertex coordinates (pts) are append-only and shared by every
// version — ids are never recycled, and only the newest version appends.
// The duplicate-detection map (index) and the face free list (free) are
// writer state: they ride along the branch chain and are only meaningful at
// the newest version, which is the only one allowed to mutate.
type Triangulation struct {
	pts    []geom.Point       // vertex 0..2 are the super-triangle corners
	tris   paged[triangle]    // faces, including dead (recycled) slots
	vface  paged[int32]       // some live face incident to each vertex; noTri = removed
	free   []int32            // writer-only: recycled face slots
	index  map[geom.Point]int // writer-only: point -> vertex id
	bounds geom.Rect          // accepted insertion region
	walk   atomic.Int32       // recently touched face: walk start hint
	nLive  int                // number of live (non-deleted) input vertices
	own    *pageOwner         // this version's page-ownership token
	frozen atomic.Bool        // set by Branch; mutations are rejected
}

// New returns an empty triangulation accepting points inside bounds. The
// super-triangle is placed far enough outside bounds that it never disturbs
// Delaunay edges between real points.
func New(bounds geom.Rect) *Triangulation {
	span := bounds.Width() + bounds.Height()
	if span <= 0 {
		span = 1
	}
	m := 1e5*span + 1e7
	c := bounds.Center()
	t := &Triangulation{
		pts: []geom.Point{
			{X: c.X - 3*m, Y: c.Y - m},
			{X: c.X + 3*m, Y: c.Y - m},
			{X: c.X, Y: c.Y + 3*m},
		},
		index:  make(map[geom.Point]int),
		bounds: bounds,
		own:    new(pageOwner),
	}
	t.tris.append(triangle{v: [3]int32{0, 1, 2}, n: [3]int32{noTri, noTri, noTri}, alive: true}, t.own)
	for i := 0; i < 3; i++ {
		t.vface.append(0, t.own)
	}
	return t
}

// Branch returns a new mutable version of the triangulation and freezes the
// receiver: further reads of the receiver stay valid (and race-free against
// mutations of the branch), but its own Insert/Remove return ErrFrozen.
// The cost is two page-directory copies — O(n/pageSize), not O(n); the
// branch shares every page with the receiver until it writes it.
func (t *Triangulation) Branch() *Triangulation {
	t.frozen.Store(true)
	c := &Triangulation{
		pts:    t.pts,
		tris:   t.tris.branch(),
		vface:  t.vface.branch(),
		free:   t.free,
		index:  t.index,
		bounds: t.bounds,
		nLive:  t.nLive,
		own:    new(pageOwner),
	}
	c.walk.Store(t.walk.Load())
	return c
}

// tri returns face f for reading. The pointer is stable on frozen versions;
// mutation paths must use triMut so interleaved page copies cannot strand a
// write.
func (t *Triangulation) tri(f int32) *triangle { return t.tris.at(int(f)) }

// triMut returns face f for writing, copying its page on first touch.
func (t *Triangulation) triMut(f int32) *triangle { return t.tris.mut(int(f), t.own) }

// numFaces returns the face-table length (live and dead slots).
func (t *Triangulation) numFaces() int { return t.tris.len() }

// vfaceAt returns the incident-face hint of internal vertex vi.
func (t *Triangulation) vfaceAt(vi int32) int32 { return *t.vface.at(int(vi)) }

// setVface updates the incident-face hint of internal vertex vi.
func (t *Triangulation) setVface(vi, f int32) { *t.vface.mut(int(vi), t.own) = f }

// Len returns the number of live input vertices in the triangulation.
func (t *Triangulation) Len() int { return t.nLive }

// Bounds returns the insertion region the triangulation was created with.
func (t *Triangulation) Bounds() geom.Rect { return t.bounds }

// Point returns the coordinates of vertex id (an index returned by Insert).
func (t *Triangulation) Point(id int) geom.Point { return t.pts[id+3] }

// isSuper reports whether the internal vertex index is a super-triangle corner.
func isSuper(v int32) bool { return v < 3 }

// Insert adds p and returns its vertex id. Inserting an exact duplicate
// returns the existing id together with ErrDuplicate; points outside the
// triangulation bounds return ErrOutOfBounds.
func (t *Triangulation) Insert(p geom.Point) (int, error) {
	if t.frozen.Load() {
		return -1, ErrFrozen
	}
	if !t.bounds.Contains(p) {
		return -1, fmt.Errorf("%w: %v not in %v", ErrOutOfBounds, p, t.bounds)
	}
	if id, ok := t.index[p]; ok {
		return id, ErrDuplicate
	}
	vi := int32(len(t.pts))
	t.pts = append(t.pts, p)
	t.vface.append(noTri, t.own)
	id := int(vi) - 3
	t.index[p] = id
	t.nLive++

	ti, onEdge := t.locate(p)
	if onEdge >= 0 {
		t.insertOnEdge(ti, onEdge, vi)
	} else {
		t.insertInFace(ti, vi)
	}
	return id, nil
}

// PadVertex appends one dead vertex slot without touching the
// triangulation: the slot's id is burned exactly as if the vertex had been
// inserted and removed, so the next Insert assigns the id after it.
// Restore paths (rebuilding a checkpointed index) use it to reproduce an
// id sequence that contains removed vertices, which keeps ids assigned
// after recovery identical to the ids the original instance would have
// assigned.
func (t *Triangulation) PadVertex() (int, error) {
	if t.frozen.Load() {
		return -1, ErrFrozen
	}
	vi := int32(len(t.pts))
	t.pts = append(t.pts, geom.Point{})
	t.vface.append(noTri, t.own)
	return int(vi) - 3, nil
}

// IDUpperBound returns the exclusive upper bound of assigned vertex ids:
// the id the next Insert (or PadVertex) will receive. Removed vertices
// keep their ids burned, so this is the value a restore path must pad up
// to — not the live-vertex count.
func (t *Triangulation) IDUpperBound() int { return len(t.pts) - 3 }

// locate walks from the hint triangle to the face containing p. It returns
// the face index and, when p lies exactly on one of its edges, that edge's
// index (otherwise -1). It is called on read paths too (Nearest), so the
// walk hint is atomic and the face table is only read.
func (t *Triangulation) locate(p geom.Point) (face int32, onEdge int) {
	f := t.walk.Load()
	if f < 0 || int(f) >= t.numFaces() || !t.tri(f).alive {
		f = t.anyAlive()
	}
	// The walk is guaranteed to terminate with exact predicates, but guard
	// against cycles anyway and fall back to a linear scan.
	for steps := 0; steps < 4*t.numFaces()+16; steps++ {
		tr := t.tri(f)
		on := -1
		moved := false
		for i := 0; i < 3; i++ {
			a, b := t.pts[tr.v[i]], t.pts[tr.v[(i+1)%3]]
			switch geom.Orient(a, b, p) {
			case geom.Clockwise:
				if tr.n[i] == noTri {
					// Outside the super-triangle: cannot happen for
					// in-bounds points, but be defensive.
					break
				}
				f = tr.n[i]
				moved = true
			case geom.Collinear:
				on = i
			}
			if moved {
				break
			}
		}
		if moved {
			continue
		}
		t.walk.Store(f)
		return f, on
	}
	// Fallback: exhaustive scan (unreachable in practice).
	for i := 0; i < t.numFaces(); i++ {
		tr := t.tri(int32(i))
		if !tr.alive {
			continue
		}
		inside, on := true, -1
		for e := 0; e < 3; e++ {
			a, b := t.pts[tr.v[e]], t.pts[tr.v[(e+1)%3]]
			switch geom.Orient(a, b, p) {
			case geom.Clockwise:
				inside = false
			case geom.Collinear:
				on = e
			}
		}
		if inside {
			t.walk.Store(int32(i))
			return int32(i), on
		}
	}
	panic("delaunay: locate failed; point outside super-triangle")
}

func (t *Triangulation) anyAlive() int32 {
	for i := t.numFaces() - 1; i >= 0; i-- {
		if t.tri(int32(i)).alive {
			return int32(i)
		}
	}
	panic("delaunay: no live triangles")
}

// newTri allocates (or recycles) a face slot and refreshes the incident
// face hints of its three vertices.
func (t *Triangulation) newTri(v0, v1, v2, n0, n1, n2 int32) int32 {
	tr := triangle{v: [3]int32{v0, v1, v2}, n: [3]int32{n0, n1, n2}, alive: true}
	var id int32
	if k := len(t.free); k > 0 {
		id = t.free[k-1]
		t.free = t.free[:k-1]
		*t.triMut(id) = tr
	} else {
		t.tris.append(tr, t.own)
		id = int32(t.tris.len() - 1)
	}
	t.setVface(v0, id)
	t.setVface(v1, id)
	t.setVface(v2, id)
	return id
}

func (t *Triangulation) killTri(id int32) {
	t.triMut(id).alive = false
	t.free = append(t.free, id)
}

// replaceNeighbor updates face f (if any) so that its pointer to old points
// to new instead.
func (t *Triangulation) replaceNeighbor(f, old, new int32) {
	if f == noTri {
		return
	}
	tr := t.triMut(f)
	for i := 0; i < 3; i++ {
		if tr.n[i] == old {
			tr.n[i] = new
			return
		}
	}
	panic("delaunay: inconsistent adjacency")
}

// insertInFace splits face ti = (a,b,c) into (a,b,p), (b,c,p), (c,a,p).
func (t *Triangulation) insertInFace(ti, p int32) {
	tr := *t.tri(ti)
	a, b, c := tr.v[0], tr.v[1], tr.v[2]
	na, nb, nc := tr.n[0], tr.n[1], tr.n[2]
	t.killTri(ti)

	t0 := t.newTri(a, b, p, na, noTri, noTri)
	t1 := t.newTri(b, c, p, nb, noTri, noTri)
	t2 := t.newTri(c, a, p, nc, noTri, noTri)
	f0, f1, f2 := t.triMut(t0), t.triMut(t1), t.triMut(t2)
	f0.n[1], f0.n[2] = t1, t2
	f1.n[1], f1.n[2] = t2, t0
	f2.n[1], f2.n[2] = t0, t1
	t.replaceNeighbor(na, ti, t0)
	t.replaceNeighbor(nb, ti, t1)
	t.replaceNeighbor(nc, ti, t2)
	t.walk.Store(t0)

	t.legalize(t0, 0, p)
	t.legalize(t1, 0, p)
	t.legalize(t2, 0, p)
}

// insertOnEdge splits the two faces sharing edge e of face ti into four.
// If the edge is on the hull of the super-triangle (no twin), it splits
// only ti into two faces.
func (t *Triangulation) insertOnEdge(ti int32, e int, p int32) {
	tr := *t.tri(ti)
	// Relabel so the split edge is (u, w) with apex c.
	u, w, c := tr.v[e], tr.v[(e+1)%3], tr.v[(e+2)%3]
	nuw, nwc, ncu := tr.n[e], tr.n[(e+1)%3], tr.n[(e+2)%3]

	if nuw == noTri {
		t.killTri(ti)
		t0 := t.newTri(u, p, c, noTri, noTri, ncu)
		t1 := t.newTri(p, w, c, noTri, nwc, noTri)
		t.triMut(t0).n[1] = t1
		t.triMut(t1).n[2] = t0
		t.replaceNeighbor(nwc, ti, t1)
		t.replaceNeighbor(ncu, ti, t0)
		t.walk.Store(t0)
		t.legalize(t0, 2, p)
		t.legalize(t1, 1, p)
		return
	}

	// Twin face o shares directed edge (w, u); find its apex d.
	o := nuw
	otr := *t.tri(o)
	var j int
	for j = 0; j < 3; j++ {
		if otr.v[j] == w && otr.v[(j+1)%3] == u {
			break
		}
	}
	if j == 3 {
		panic("delaunay: twin edge not found")
	}
	d := otr.v[(j+2)%3]
	nud, ndw := otr.n[(j+1)%3], otr.n[(j+2)%3]

	t.killTri(ti)
	t.killTri(o)
	// Four new faces around p: (u,p,c), (p,w,c), (w,p,d), (p,u,d).
	t0 := t.newTri(u, p, c, noTri, noTri, ncu)
	t1 := t.newTri(p, w, c, noTri, nwc, noTri)
	t2 := t.newTri(w, p, d, noTri, noTri, ndw)
	t3 := t.newTri(p, u, d, noTri, nud, noTri)
	f0, f1, f2, f3 := t.triMut(t0), t.triMut(t1), t.triMut(t2), t.triMut(t3)
	f0.n[0], f0.n[1] = t3, t1
	f1.n[0], f1.n[2] = t2, t0
	f2.n[0], f2.n[1] = t1, t3
	f3.n[0], f3.n[2] = t0, t2
	t.replaceNeighbor(ncu, ti, t0)
	t.replaceNeighbor(nwc, ti, t1)
	t.replaceNeighbor(ndw, o, t2)
	t.replaceNeighbor(nud, o, t3)
	t.walk.Store(t0)

	t.legalize(t0, 2, p)
	t.legalize(t1, 1, p)
	t.legalize(t2, 2, p)
	t.legalize(t3, 1, p)
}

// legalize checks the edge e of face f against the Delaunay criterion with
// respect to the newly inserted vertex p (which is a vertex of f not on
// edge e) and flips recursively while violated.
func (t *Triangulation) legalize(f int32, e int, p int32) {
	tr := *t.tri(f)
	o := tr.n[e]
	if o == noTri {
		return
	}
	a, b := tr.v[e], tr.v[(e+1)%3]
	otr := *t.tri(o)
	var j int
	for j = 0; j < 3; j++ {
		if otr.v[j] == b && otr.v[(j+1)%3] == a {
			break
		}
	}
	if j == 3 {
		panic("delaunay: twin edge not found in legalize")
	}
	d := otr.v[(j+2)%3]

	if !t.shouldFlip(tr.v[0], tr.v[1], tr.v[2], d) {
		return
	}

	// Flip edge (a,b) shared by f=(a,b,c) and o=(b,a,d) into (c,d).
	c := tr.v[(e+2)%3]
	nbc, nca := tr.n[(e+1)%3], tr.n[(e+2)%3]
	nad, ndb := otr.n[(j+1)%3], otr.n[(j+2)%3]

	// Reuse slots: f becomes (a,d,c), o becomes (d,b,c).
	*t.triMut(f) = triangle{v: [3]int32{a, d, c}, n: [3]int32{nad, o, nca}, alive: true}
	*t.triMut(o) = triangle{v: [3]int32{d, b, c}, n: [3]int32{ndb, nbc, f}, alive: true}
	t.setVface(a, f)
	t.setVface(d, f)
	t.setVface(c, f)
	t.setVface(b, o)
	t.replaceNeighbor(nbc, f, o)
	t.replaceNeighbor(nad, o, f)

	// The new edges opposite p must be re-checked. p is c in both faces.
	t.legalize(f, 0, p)
	t.legalize(o, 0, p)
}

// shouldFlip reports whether vertex d violates the (constrained) Delaunay
// criterion for the CCW face (a,b,c). Super-triangle corners are treated as
// points at infinity: an edge between two real vertices is never flipped
// away in favor of a super vertex, and edges incident to super vertices are
// flipped whenever the opposing real vertex "sees" the edge.
func (t *Triangulation) shouldFlip(a, b, c, d int32) bool {
	supers := 0
	for _, v := range [4]int32{a, b, c, d} {
		if isSuper(v) {
			supers++
		}
	}
	switch {
	case supers == 0:
		return geom.InCircle(t.pts[a], t.pts[b], t.pts[c], t.pts[d]) > 0
	default:
		// With any super vertex involved, fall back to the in-circle test
		// as well: the super corners are far enough away that the float
		// evaluation of the predicate gives the at-infinity answer.
		return geom.InCircle(t.pts[a], t.pts[b], t.pts[c], t.pts[d]) > 0
	}
}
