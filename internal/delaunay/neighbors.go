package delaunay

import (
	"errors"
	"fmt"

	"repro/internal/geom"
)

// ErrNotFound is returned for operations on vertex ids that were never
// inserted or were already removed.
var ErrNotFound = fmt.Errorf("delaunay: vertex not found")

// faceOf returns a live face incident to internal vertex vi. The hint
// table is maintained eagerly by every mutation, so the scan fallback is
// defensive; it deliberately does not write the repaired hint back, keeping
// this callable on frozen versions shared across goroutines.
func (t *Triangulation) faceOf(vi int32) int32 {
	f := t.vfaceAt(vi)
	if f != noTri && t.tri(f).alive && t.hasVertex(f, vi) {
		return f
	}
	if f == noTri {
		return noTri // removed vertex: no incident faces by definition
	}
	for i := 0; i < t.numFaces(); i++ {
		if t.tri(int32(i)).alive && t.hasVertex(int32(i), vi) {
			return int32(i)
		}
	}
	return noTri
}

func (t *Triangulation) hasVertex(f, vi int32) bool {
	tr := t.tri(f)
	return tr.v[0] == vi || tr.v[1] == vi || tr.v[2] == vi
}

// vertexPos returns the index (0..2) of vi inside face f.
func (t *Triangulation) vertexPos(f, vi int32) int {
	tr := t.tri(f)
	for i := 0; i < 3; i++ {
		if tr.v[i] == vi {
			return i
		}
	}
	panic("delaunay: vertex not in face")
}

// RingScratch is reusable buffer memory for AppendNeighbors. The zero
// value is ready to use; one scratch serves any number of sequential calls
// (it must not be shared across goroutines).
type RingScratch struct {
	faces, ring []int32
}

// ringAround returns the faces incident to vi and the link (star boundary)
// vertices, both in counter-clockwise order around vi, appended onto the
// (reset) scratch buffers. Every real vertex is interior to the
// super-triangle, so the ring always closes.
func (t *Triangulation) ringAround(vi int32, sc *RingScratch) (faces, ring []int32) {
	faces, ring = sc.faces[:0], sc.ring[:0]
	defer func() { sc.faces, sc.ring = faces, ring }()
	start := t.faceOf(vi)
	if start == noTri {
		return nil, nil
	}
	f := start
	for {
		i := t.vertexPos(f, vi)
		tr := t.tri(f)
		faces = append(faces, f)
		ring = append(ring, tr.v[(i+1)%3])
		// Rotate counter-clockwise: cross the edge (vi, v[(i+1)%3])... the
		// next CCW face around vi is across edge (v[(i+2)%3], vi), i.e.
		// edge index (i+2)%3.
		f = tr.n[(i+2)%3]
		if f == noTri {
			panic("delaunay: open star around interior vertex")
		}
		if f == start {
			break
		}
		if len(faces) > t.numFaces()+3 {
			panic("delaunay: star walk did not terminate")
		}
	}
	return faces, ring
}

// Neighbors returns the ids of the live data vertices sharing a Delaunay
// edge with vertex id — exactly the Voronoi neighbor set N_O(p_id) of
// Definition 3 in the paper. The result is in counter-clockwise order;
// super-triangle corners are omitted. It returns ErrNotFound for unknown or
// deleted ids.
func (t *Triangulation) Neighbors(id int) ([]int, error) {
	var sc RingScratch
	return t.AppendNeighbors(id, nil, &sc)
}

// AppendNeighbors is Neighbors appending onto dst, with ring-walk buffers
// supplied by the caller — the allocation-free form the serving hot path
// uses. dst may be nil; the scratch must not be shared across goroutines.
func (t *Triangulation) AppendNeighbors(id int, dst []int, sc *RingScratch) ([]int, error) {
	if id < 0 || id+3 >= len(t.pts) || t.vfaceAt(int32(id+3)) == noTri {
		return dst, fmt.Errorf("%w: id %d", ErrNotFound, id)
	}
	_, ring := t.ringAround(int32(id+3), sc)
	for _, v := range ring {
		if !isSuper(v) {
			dst = append(dst, int(v)-3)
		}
	}
	return dst, nil
}

// Contains reports whether vertex id is live in the triangulation.
func (t *Triangulation) Contains(id int) bool {
	return id >= 0 && id+3 < len(t.pts) && t.vfaceAt(int32(id+3)) != noTri
}

// VertexIDs returns the ids of all live vertices in insertion order.
func (t *Triangulation) VertexIDs() []int {
	ids := make([]int, 0, t.nLive)
	for i := 0; i < len(t.pts)-3; i++ {
		if t.vfaceAt(int32(i+3)) != noTri {
			ids = append(ids, i)
		}
	}
	return ids
}

// Triangles returns the faces of the Delaunay triangulation whose three
// corners are all real data vertices, as triples of vertex ids in
// counter-clockwise order.
func (t *Triangulation) Triangles() [][3]int {
	var out [][3]int
	for i := 0; i < t.numFaces(); i++ {
		tr := t.tri(int32(i))
		if !tr.alive || isSuper(tr.v[0]) || isSuper(tr.v[1]) || isSuper(tr.v[2]) {
			continue
		}
		out = append(out, [3]int{int(tr.v[0]) - 3, int(tr.v[1]) - 3, int(tr.v[2]) - 3})
	}
	return out
}

// Remove deletes vertex id from the triangulation and restores the Delaunay
// property by retriangulating the star polygon of the removed vertex with
// Delaunay ear clipping.
func (t *Triangulation) Remove(id int) error {
	if t.frozen.Load() {
		return ErrFrozen
	}
	if !t.Contains(id) {
		return fmt.Errorf("%w: id %d", ErrNotFound, id)
	}
	vi := int32(id + 3)
	var sc RingScratch
	faces, ring := t.ringAround(vi, &sc)
	if len(faces) == 0 {
		return fmt.Errorf("%w: id %d has no incident faces", ErrNotFound, id)
	}

	// Map every directed boundary edge of the hole to the face outside it.
	// For face k around vi with vi at position i, the outer edge is
	// (v[(i+1)%3], v[(i+2)%3]) with neighbor n[(i+1)%3].
	type edge struct{ a, b int32 }
	outer := make(map[edge]int32, len(faces))
	for _, f := range faces {
		i := t.vertexPos(f, vi)
		tr := t.tri(f)
		a, b := tr.v[(i+1)%3], tr.v[(i+2)%3]
		outer[edge{a, b}] = tr.n[(i+1)%3]
	}
	for _, f := range faces {
		t.killTri(f)
	}

	// halfEdges maps directed edges of freshly created faces so twins can
	// be linked as they appear.
	halfEdges := make(map[edge]int32, 2*len(ring))
	link := func(f int32, ei int, a, b int32) {
		if of, ok := outer[edge{a, b}]; ok {
			t.triMut(f).n[ei] = of
			if of != noTri {
				// The outer face's pointer still references a killed face;
				// repoint it at f.
				otr := t.triMut(of)
				for k := 0; k < 3; k++ {
					if otr.v[k] == b && otr.v[(k+1)%3] == a {
						otr.n[k] = f
						break
					}
				}
			}
			return
		}
		if tf, ok := halfEdges[edge{b, a}]; ok {
			t.triMut(f).n[ei] = tf
			ttr := t.triMut(tf)
			for k := 0; k < 3; k++ {
				if ttr.v[k] == b && ttr.v[(k+1)%3] == a {
					ttr.n[k] = f
					break
				}
			}
			return
		}
		halfEdges[edge{a, b}] = f
	}

	emit := func(a, b, c int32) {
		f := t.newTri(a, b, c, noTri, noTri, noTri)
		link(f, 0, a, b)
		link(f, 1, b, c)
		link(f, 2, c, a)
		t.walk.Store(f)
	}

	// Delaunay ear clipping of the (star-shaped) hole polygon.
	poly := append([]int32(nil), ring...)
	for len(poly) > 3 {
		n := len(poly)
		best := -1
		for i := 0; i < n; i++ {
			a, b, c := poly[(i+n-1)%n], poly[i], poly[(i+1)%n]
			if geom.Orient(t.pts[a], t.pts[b], t.pts[c]) != geom.CounterClockwise {
				continue // reflex or flat corner: not an ear
			}
			ok := true
			for j := 0; j < n; j++ {
				d := poly[j]
				if d == a || d == b || d == c {
					continue
				}
				if geom.InCircle(t.pts[a], t.pts[b], t.pts[c], t.pts[d]) > 0 {
					ok = false
					break
				}
			}
			if ok {
				best = i
				break
			}
		}
		if best == -1 {
			// Cocircular fallback: take any strictly convex ear.
			for i := 0; i < n; i++ {
				a, b, c := poly[(i+n-1)%n], poly[i], poly[(i+1)%n]
				if geom.Orient(t.pts[a], t.pts[b], t.pts[c]) == geom.CounterClockwise {
					best = i
					break
				}
			}
		}
		if best == -1 {
			panic("delaunay: no ear found while removing vertex")
		}
		n0 := len(poly)
		a, b, c := poly[(best+n0-1)%n0], poly[best], poly[(best+1)%n0]
		emit(a, b, c)
		// Record the new diagonal so subsequent faces can link to it.
		poly = append(poly[:best], poly[best+1:]...)
	}
	emit(poly[0], poly[1], poly[2])

	delete(t.index, t.pts[vi])
	t.nLive--
	t.setVface(vi, noTri)
	return nil
}

// InsertAll inserts every point and returns the assigned vertex ids. Exact
// duplicates map to the first occurrence's id. It stops at the first
// out-of-bounds point and returns its error.
func (t *Triangulation) InsertAll(pts []geom.Point) ([]int, error) {
	ids := make([]int, len(pts))
	for i, p := range pts {
		id, err := t.Insert(p)
		if err != nil && !errors.Is(err, ErrDuplicate) {
			return ids[:i], err
		}
		ids[i] = id
	}
	return ids, nil
}
