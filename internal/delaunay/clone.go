package delaunay

import "repro/internal/geom"

// Clone returns a deep copy of the triangulation that shares no mutable
// state with the original; site ids are preserved. It is the fallback
// publication path where the structural sharing of Branch is unsafe — in
// particular after an aborted mutation batch may have left the shared
// writer state (duplicate index, free list, appended points) out of sync —
// so it rebuilds that state from the live faces and vertices instead of
// copying it.
func (t *Triangulation) Clone() *Triangulation {
	own := new(pageOwner)
	c := &Triangulation{
		pts:    append([]geom.Point(nil), t.pts...),
		tris:   t.tris.deepCopy(own),
		vface:  t.vface.deepCopy(own),
		index:  make(map[geom.Point]int, t.nLive),
		bounds: t.bounds,
		nLive:  t.nLive,
		own:    own,
	}
	c.walk.Store(t.walk.Load())
	for i := 3; i < len(c.pts); i++ {
		if c.vfaceAt(int32(i)) != noTri {
			c.index[c.pts[i]] = i - 3
		}
	}
	for f := 0; f < c.numFaces(); f++ {
		if !c.tri(int32(f)).alive {
			c.free = append(c.free, int32(f))
		}
	}
	return c
}
