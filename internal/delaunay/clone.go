package delaunay

import "repro/internal/geom"

// Clone returns a deep copy of the triangulation that shares no mutable
// state with the original. The copy's incident-face hints (vface) are
// rebuilt eagerly from the live faces so that read-only operations on a
// frozen clone (Neighbors, Contains, Point) never write a repaired hint —
// the property the copy-on-write index snapshots rely on to stay race-free
// under concurrent readers.
func (t *Triangulation) Clone() *Triangulation {
	c := &Triangulation{
		pts:    append([]geom.Point(nil), t.pts...),
		tris:   append([]triangle(nil), t.tris...),
		free:   append([]int32(nil), t.free...),
		index:  make(map[geom.Point]int, len(t.index)),
		bounds: t.bounds,
		walk:   t.walk,
		nLive:  t.nLive,
		dead:   make(map[int]bool, len(t.dead)),
		vface:  make([]int32, len(t.vface)),
	}
	for p, id := range t.index {
		c.index[p] = id
	}
	for id := range t.dead {
		c.dead[id] = true
	}
	for i := range c.vface {
		c.vface[i] = noTri
	}
	for i := range c.tris {
		if !c.tris[i].alive {
			continue
		}
		for _, v := range c.tris[i].v {
			c.vface[v] = int32(i)
		}
	}
	return c
}
