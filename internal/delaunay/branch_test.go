package delaunay

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/geom"
)

// neighborSnapshot captures every live vertex's neighbor list.
func neighborSnapshot(t *testing.T, tr *Triangulation) map[int][]int {
	t.Helper()
	snap := make(map[int][]int)
	for _, id := range tr.VertexIDs() {
		nb, err := tr.Neighbors(id)
		if err != nil {
			t.Fatal(err)
		}
		snap[id] = nb
	}
	return snap
}

func sameNeighbors(a, b map[int][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for id, nb := range a {
		ob, ok := b[id]
		if !ok || len(ob) != len(nb) {
			return false
		}
		for i := range nb {
			if nb[i] != ob[i] {
				return false
			}
		}
	}
	return true
}

// TestBranchIsolation drives a chain of branches with inserts and removals
// and asserts every frozen version keeps answering exactly as it did when
// it was the head — the page-sharing invariant the snapshot store relies
// on.
func TestBranchIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	head := New(testBounds)
	if _, err := head.InsertAll(randomPoints(300, 3)); err != nil {
		t.Fatal(err)
	}

	type pinned struct {
		tr   *Triangulation
		snap map[int][]int
	}
	var pins []pinned
	live := head.VertexIDs()
	for epoch := 0; epoch < 40; epoch++ {
		pins = append(pins, pinned{head, neighborSnapshot(t, head)})
		next := head.Branch()
		if _, err := head.Insert(geom.Pt(1, 1)); !errors.Is(err, ErrFrozen) {
			t.Fatalf("insert on frozen version: err = %v, want ErrFrozen", err)
		}
		if err := head.Remove(live[0]); !errors.Is(err, ErrFrozen) {
			t.Fatalf("remove on frozen version: err = %v, want ErrFrozen", err)
		}
		head = next
		if epoch%3 == 2 {
			victim := live[rng.Intn(len(live))]
			if err := head.Remove(victim); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := head.Insert(geom.Pt(rng.Float64()*1000, rng.Float64()*1000)); err != nil && !errors.Is(err, ErrDuplicate) {
				t.Fatal(err)
			}
		}
		live = head.VertexIDs()
		checkDelaunay(t, head)
		checkAdjacency(t, head)
	}
	for i, p := range pins {
		if got := neighborSnapshot(t, p.tr); !sameNeighbors(p.snap, got) {
			t.Fatalf("pinned version %d changed after later mutations", i)
		}
	}
}

// TestBranchConcurrentReaders mutates the head version while goroutines
// hammer reads on frozen ancestors; run under -race this proves the
// page-sharing scheme never writes memory a frozen version can see.
func TestBranchConcurrentReaders(t *testing.T) {
	head := New(testBounds)
	if _, err := head.InsertAll(randomPoints(400, 17)); err != nil {
		t.Fatal(err)
	}
	frozen := head
	head = head.Branch()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			ids := frozen.VertexIDs()
			var sc RingScratch
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := ids[rng.Intn(len(ids))]
				if _, err := frozen.AppendNeighbors(id, nil, &sc); err != nil {
					t.Errorf("frozen Neighbors(%d): %v", id, err)
					return
				}
				frozen.Nearest(geom.Pt(rng.Float64()*1000, rng.Float64()*1000))
			}
		}(int64(g))
	}

	rng := rand.New(rand.NewSource(99))
	live := head.VertexIDs()
	for i := 0; i < 200; i++ {
		if i%4 == 3 {
			if err := head.Remove(live[rng.Intn(len(live))]); err != nil {
				t.Fatal(err)
			}
		} else if _, err := head.Insert(geom.Pt(rng.Float64()*1000, rng.Float64()*1000)); err != nil && !errors.Is(err, ErrDuplicate) {
			t.Fatal(err)
		}
		live = head.VertexIDs()
		if i%20 == 19 {
			next := head.Branch() // old heads stay readable; only the newest mutates
			head = next
		}
	}
	close(stop)
	wg.Wait()
	checkDelaunay(t, head)
	checkAdjacency(t, head)
}
