package delaunay

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func TestNearestMatchesBruteForce(t *testing.T) {
	tr := New(testBounds)
	pts := randomPoints(200, 31)
	ids, err := tr.InsertAll(pts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(32))
	for i := 0; i < 300; i++ {
		q := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		got := tr.Nearest(q)
		best, bestD := -1, math.Inf(1)
		for _, id := range ids {
			if d := q.Dist2(tr.Point(id)); d < bestD {
				best, bestD = id, d
			}
		}
		if got != best && q.Dist2(tr.Point(got)) != bestD {
			t.Fatalf("Nearest(%v) = %d at %g, want %d at %g",
				q, got, q.Dist2(tr.Point(got)), best, bestD)
		}
	}
}

func TestNearestAfterRemovals(t *testing.T) {
	tr := New(testBounds)
	ids, err := tr.InsertAll(randomPoints(100, 33))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(34))
	live := append([]int(nil), ids...)
	for step := 0; step < 80; step++ {
		i := rng.Intn(len(live))
		if err := tr.Remove(live[i]); err != nil {
			t.Fatal(err)
		}
		live = append(live[:i], live[i+1:]...)
		q := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		got := tr.Nearest(q)
		bestD := math.Inf(1)
		for _, id := range live {
			if d := q.Dist2(tr.Point(id)); d < bestD {
				bestD = d
			}
		}
		if q.Dist2(tr.Point(got)) != bestD {
			t.Fatalf("step %d: Nearest wrong after removal", step)
		}
	}
}

func TestNearestEmpty(t *testing.T) {
	tr := New(testBounds)
	if got := tr.Nearest(geom.Pt(1, 1)); got != -1 {
		t.Errorf("Nearest on empty = %d, want -1", got)
	}
}

func TestNearestOutOfBoundsQuery(t *testing.T) {
	tr := New(testBounds)
	ids, err := tr.InsertAll(randomPoints(50, 35))
	if err != nil {
		t.Fatal(err)
	}
	// Queries outside the insertion bounds must still resolve (greedy
	// descent works from any seed).
	q := geom.Pt(-500, 2000)
	got := tr.Nearest(q)
	bestD := math.Inf(1)
	best := -1
	for _, id := range ids {
		if d := q.Dist2(tr.Point(id)); d < bestD {
			best, bestD = id, d
		}
	}
	if got != best {
		t.Fatalf("out-of-bounds Nearest = %d, want %d", got, best)
	}
}

// TestNearestProperty drives Nearest with quick-generated queries.
func TestNearestProperty(t *testing.T) {
	tr := New(testBounds)
	ids, err := tr.InsertAll(randomPoints(60, 36))
	if err != nil {
		t.Fatal(err)
	}
	err = quick.Check(func(xr, yr float64) bool {
		x := math.Mod(math.Abs(xr), 1000)
		y := math.Mod(math.Abs(yr), 1000)
		if math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		q := geom.Pt(x, y)
		got := tr.Nearest(q)
		gd := q.Dist2(tr.Point(got))
		for _, id := range ids {
			if q.Dist2(tr.Point(id)) < gd {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}
