package delaunay

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

var testBounds = geom.NewRect(geom.Pt(0, 0), geom.Pt(1000, 1000))

func randomPoints(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
	}
	return pts
}

// checkDelaunay asserts the empty-circumcircle property: no live data
// vertex lies strictly inside the circumcircle of any all-real face.
func checkDelaunay(t *testing.T, tr *Triangulation) {
	t.Helper()
	ids := tr.VertexIDs()
	for _, face := range tr.Triangles() {
		a, b, c := tr.Point(face[0]), tr.Point(face[1]), tr.Point(face[2])
		for _, id := range ids {
			if id == face[0] || id == face[1] || id == face[2] {
				continue
			}
			if geom.InCircle(a, b, c, tr.Point(id)) > 0 {
				t.Fatalf("vertex %d (%v) is inside circumcircle of face %v",
					id, tr.Point(id), face)
			}
		}
	}
}

// checkAdjacency asserts the internal neighbor pointers are mutual.
func checkAdjacency(t *testing.T, tr *Triangulation) {
	t.Helper()
	for fi := 0; fi < tr.numFaces(); fi++ {
		f := tr.tri(int32(fi))
		if !f.alive {
			continue
		}
		for e := 0; e < 3; e++ {
			o := f.n[e]
			if o == noTri {
				continue
			}
			ot := tr.tri(o)
			if !ot.alive {
				t.Fatalf("face %d edge %d points at dead face %d", fi, e, o)
			}
			a, b := f.v[e], f.v[(e+1)%3]
			found := false
			for k := 0; k < 3; k++ {
				if ot.v[k] == b && ot.v[(k+1)%3] == a {
					if ot.n[k] != int32(fi) {
						t.Fatalf("face %d edge %d: twin %d does not point back", fi, e, o)
					}
					found = true
				}
			}
			if !found {
				t.Fatalf("face %d edge %d: twin %d lacks shared edge", fi, e, o)
			}
		}
	}
}

func TestInsertBasicTriangle(t *testing.T) {
	tr := New(testBounds)
	ids, err := tr.InsertAll([]geom.Point{{X: 100, Y: 100}, {X: 900, Y: 120}, {X: 500, Y: 800}})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	faces := tr.Triangles()
	if len(faces) != 1 {
		t.Fatalf("got %d real faces, want 1: %v", len(faces), faces)
	}
	for _, id := range ids {
		nb, err := tr.Neighbors(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(nb) != 2 {
			t.Errorf("vertex %d has %d neighbors, want 2", id, len(nb))
		}
	}
}

func TestInsertDuplicate(t *testing.T) {
	tr := New(testBounds)
	id1, err := tr.Insert(geom.Pt(10, 10))
	if err != nil {
		t.Fatal(err)
	}
	id2, err := tr.Insert(geom.Pt(10, 10))
	if !errors.Is(err, ErrDuplicate) {
		t.Fatalf("expected ErrDuplicate, got %v", err)
	}
	if id1 != id2 {
		t.Errorf("duplicate insert returned id %d, want %d", id2, id1)
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d, want 1", tr.Len())
	}
}

func TestInsertOutOfBounds(t *testing.T) {
	tr := New(testBounds)
	if _, err := tr.Insert(geom.Pt(-5, 10)); !errors.Is(err, ErrOutOfBounds) {
		t.Fatalf("expected ErrOutOfBounds, got %v", err)
	}
}

func TestDelaunayPropertyRandom(t *testing.T) {
	for _, n := range []int{10, 50, 200} {
		tr := New(testBounds)
		if _, err := tr.InsertAll(randomPoints(n, int64(n))); err != nil {
			t.Fatal(err)
		}
		checkDelaunay(t, tr)
		checkAdjacency(t, tr)
	}
}

func TestDelaunayPropertyGrid(t *testing.T) {
	// Grid points are massively cocircular and collinear: the exact
	// predicates plus on-edge insertion must still produce a valid
	// triangulation.
	tr := New(testBounds)
	for i := 0; i <= 8; i++ {
		for j := 0; j <= 8; j++ {
			if _, err := tr.Insert(geom.Pt(float64(i)*100+100, float64(j)*100+100)); err != nil {
				t.Fatal(err)
			}
		}
	}
	checkAdjacency(t, tr)
	// On a grid, cocircular quadruples make the Delaunay triangulation
	// non-unique; the empty-circumcircle check must use non-strict
	// containment, which checkDelaunay already does (strictly inside).
	checkDelaunay(t, tr)
}

func TestCollinearInsertion(t *testing.T) {
	tr := New(testBounds)
	// All points on one line, then one off-line point.
	for i := 1; i <= 9; i++ {
		if _, err := tr.Insert(geom.Pt(float64(i)*100, 500)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tr.Insert(geom.Pt(500, 700)); err != nil {
		t.Fatal(err)
	}
	checkAdjacency(t, tr)
	checkDelaunay(t, tr)
}

func TestNeighborsSymmetric(t *testing.T) {
	tr := New(testBounds)
	ids, err := tr.InsertAll(randomPoints(100, 42))
	if err != nil {
		t.Fatal(err)
	}
	nb := make(map[int]map[int]bool)
	for _, id := range ids {
		ns, err := tr.Neighbors(id)
		if err != nil {
			t.Fatal(err)
		}
		m := make(map[int]bool)
		for _, u := range ns {
			if u == id {
				t.Fatalf("vertex %d is its own neighbor", id)
			}
			m[u] = true
		}
		nb[id] = m
	}
	for a, m := range nb {
		for b := range m {
			if !nb[b][a] {
				t.Fatalf("neighbor relation not symmetric: %d->%d", a, b)
			}
		}
	}
}

// TestNeighborsMatchBruteForceVoronoi cross-checks Delaunay neighbors
// against a brute-force Voronoi adjacency computed from first principles:
// p and q are Voronoi neighbors iff some point on their bisector is closer
// to p and q than to every other site. We test the forward direction by
// sampling bisector witnesses of Delaunay edges, and the reverse by
// verifying that for every non-edge (p,q) sampled, the Delaunay disk test
// fails at the midpoint region.
func TestNeighborsWitnessedByBisector(t *testing.T) {
	tr := New(testBounds)
	pts := randomPoints(60, 7)
	ids, err := tr.InsertAll(pts)
	if err != nil {
		t.Fatal(err)
	}
	// Every Delaunay edge between real vertices appears in some face; for
	// each, confirm the two endpoints are mutually nearest along at least
	// one circumcenter of an incident face (the defining property of a
	// shared Voronoi edge is hard to sample exactly, so we check the
	// weaker, necessary condition that the edge's faces have circumcircles
	// empty of all other sites, which checkDelaunay already guarantees).
	checkDelaunay(t, tr)
	_ = ids
}

func TestRemoveSimple(t *testing.T) {
	tr := New(testBounds)
	pts := randomPoints(30, 3)
	ids, err := tr.InsertAll(pts)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Remove(ids[10]); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 29 {
		t.Fatalf("Len = %d, want 29", tr.Len())
	}
	if tr.Contains(ids[10]) {
		t.Error("removed vertex still reported live")
	}
	if _, err := tr.Neighbors(ids[10]); !errors.Is(err, ErrNotFound) {
		t.Errorf("Neighbors of removed vertex: err = %v, want ErrNotFound", err)
	}
	checkAdjacency(t, tr)
	checkDelaunay(t, tr)
}

func TestRemoveMany(t *testing.T) {
	tr := New(testBounds)
	pts := randomPoints(120, 9)
	ids, err := tr.InsertAll(pts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	perm := rng.Perm(len(ids))
	for k := 0; k < 60; k++ {
		if err := tr.Remove(ids[perm[k]]); err != nil {
			t.Fatalf("remove #%d (id %d): %v", k, ids[perm[k]], err)
		}
		if k%10 == 0 {
			checkAdjacency(t, tr)
			checkDelaunay(t, tr)
		}
	}
	checkAdjacency(t, tr)
	checkDelaunay(t, tr)
	if tr.Len() != 60 {
		t.Fatalf("Len = %d, want 60", tr.Len())
	}
}

func TestRemoveThenReinsert(t *testing.T) {
	tr := New(testBounds)
	ids, err := tr.InsertAll(randomPoints(50, 21))
	if err != nil {
		t.Fatal(err)
	}
	p := tr.Point(ids[7])
	if err := tr.Remove(ids[7]); err != nil {
		t.Fatal(err)
	}
	nid, err := tr.Insert(p)
	if err != nil {
		t.Fatal(err)
	}
	if nid == ids[7] {
		t.Errorf("reinserted point reused id %d; ids should be fresh", nid)
	}
	checkDelaunay(t, tr)
	checkAdjacency(t, tr)
}

func TestRemoveNotFound(t *testing.T) {
	tr := New(testBounds)
	if err := tr.Remove(0); !errors.Is(err, ErrNotFound) {
		t.Errorf("Remove on empty: err = %v, want ErrNotFound", err)
	}
	id, _ := tr.Insert(geom.Pt(5, 5))
	if err := tr.Remove(id); err != nil {
		t.Fatal(err)
	}
	if err := tr.Remove(id); !errors.Is(err, ErrNotFound) {
		t.Errorf("double Remove: err = %v, want ErrNotFound", err)
	}
}

func TestRemoveDownToEmpty(t *testing.T) {
	tr := New(testBounds)
	ids, err := tr.InsertAll(randomPoints(10, 5))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if err := tr.Remove(id); err != nil {
			t.Fatalf("remove %d: %v", id, err)
		}
		checkAdjacency(t, tr)
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tr.Len())
	}
	// The triangulation must remain usable after being emptied.
	if _, err := tr.Insert(geom.Pt(500, 500)); err != nil {
		t.Fatal(err)
	}
}

func TestVertexIDs(t *testing.T) {
	tr := New(testBounds)
	ids, _ := tr.InsertAll(randomPoints(5, 1))
	got := tr.VertexIDs()
	if len(got) != 5 {
		t.Fatalf("VertexIDs len = %d, want 5", len(got))
	}
	_ = tr.Remove(ids[2])
	got = tr.VertexIDs()
	if len(got) != 4 {
		t.Fatalf("after remove, VertexIDs len = %d, want 4", len(got))
	}
	for _, id := range got {
		if id == ids[2] {
			t.Error("removed id still listed")
		}
	}
}

func TestTrianglesAreCCW(t *testing.T) {
	tr := New(testBounds)
	if _, err := tr.InsertAll(randomPoints(80, 13)); err != nil {
		t.Fatal(err)
	}
	for _, f := range tr.Triangles() {
		a, b, c := tr.Point(f[0]), tr.Point(f[1]), tr.Point(f[2])
		if geom.Orient(a, b, c) != geom.CounterClockwise {
			t.Fatalf("face %v is not counter-clockwise", f)
		}
	}
}

func BenchmarkInsert1000(b *testing.B) {
	pts := randomPoints(1000, 99)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := New(testBounds)
		if _, err := tr.InsertAll(pts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNeighbors(b *testing.B) {
	tr := New(testBounds)
	ids, _ := tr.InsertAll(randomPoints(10000, 5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Neighbors(ids[i%len(ids)]); err != nil {
			b.Fatal(err)
		}
	}
}
