package delaunay

import "repro/internal/geom"

// Nearest returns the id of the live vertex closest to p, or -1 when the
// triangulation is empty. It locates the face containing p with the walk
// and then performs greedy descent on the Delaunay graph, which is
// guaranteed to reach the global nearest neighbor because the Delaunay
// triangulation contains the nearest-neighbor graph.
func (t *Triangulation) Nearest(p geom.Point) int {
	if t.nLive == 0 {
		return -1
	}
	// Seed with any real corner reachable from the located face; fall back
	// to scanning for one if the face touches only super vertices.
	var seed int32 = -1
	if t.bounds.Contains(p) {
		f, _ := t.locate(p)
		for _, v := range t.tri(f).v {
			if !isSuper(v) {
				seed = v
				break
			}
		}
	}
	if seed == -1 {
		for i := int32(3); int(i) < len(t.pts); i++ {
			if t.vfaceAt(i) != noTri {
				seed = i
				break
			}
		}
	}
	if seed == -1 {
		return -1
	}

	cur := seed
	best := p.Dist2(t.pts[cur])
	var sc RingScratch
	for {
		improved := false
		_, ring := t.ringAround(cur, &sc)
		for _, v := range ring {
			if isSuper(v) {
				continue
			}
			if d := p.Dist2(t.pts[v]); d < best {
				best, cur = d, v
				improved = true
			}
		}
		if !improved {
			return int(cur) - 3
		}
	}
}
