package fault

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestDisarmedFiresNothing(t *testing.T) {
	defer DisarmAll()
	if err := WALAppendErr.Fire(); err != nil {
		t.Fatalf("disarmed point fired: %v", err)
	}
	if WALAppendErr.Armed() {
		t.Fatal("point reports armed while disarmed")
	}
}

func TestArmDefaultError(t *testing.T) {
	defer DisarmAll()
	WALAppendErr.Arm(Spec{})
	err := WALAppendErr.Fire()
	if err == nil {
		t.Fatal("armed point did not fire")
	}
	if want := "fault: injected wal.append.err"; err.Error() != want {
		t.Fatalf("default error = %q, want %q", err, want)
	}
	WALAppendErr.Disarm()
	if err := WALAppendErr.Fire(); err != nil {
		t.Fatalf("fired after disarm: %v", err)
	}
}

func TestCountExhaustionSelfDisarms(t *testing.T) {
	defer DisarmAll()
	WALDiskFull.Arm(Spec{Count: 3})
	fired := 0
	for i := 0; i < 10; i++ {
		if WALDiskFull.Fire() != nil {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("fired %d times, want 3", fired)
	}
	if WALDiskFull.Armed() {
		t.Fatal("point still armed after count exhaustion")
	}
}

func TestSkip(t *testing.T) {
	defer DisarmAll()
	WALFsyncErr.Arm(Spec{Skip: 2, Count: 1})
	var results []bool
	for i := 0; i < 4; i++ {
		results = append(results, WALFsyncErr.Fire() != nil)
	}
	want := []bool{false, false, true, false}
	for i := range want {
		if results[i] != want[i] {
			t.Fatalf("fire pattern %v, want %v", results, want)
		}
	}
}

func TestKeyedFiresOnlyOnMatch(t *testing.T) {
	defer DisarmAll()
	custom := errors.New("stall")
	StreamWriteStall.Arm(Spec{Err: custom, Key: 7, HasKey: true})
	if err := StreamWriteStall.Fire(); err != nil {
		t.Fatalf("keyed spec fired on plain Fire: %v", err)
	}
	if err := StreamWriteStall.FireKey(8); err != nil {
		t.Fatalf("keyed spec fired on wrong key: %v", err)
	}
	if err := StreamWriteStall.FireKey(7); !errors.Is(err, custom) {
		t.Fatalf("matching key fired %v, want %v", err, custom)
	}
}

func TestPureDelaySpec(t *testing.T) {
	defer DisarmAll()
	StorePublishDelay.Arm(Spec{Delay: 5 * time.Millisecond})
	start := time.Now()
	if err := StorePublishDelay.Fire(); err != nil {
		t.Fatalf("pure-delay spec returned error: %v", err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("fire slept %v, want >= 5ms", d)
	}
}

func TestProbabilityRoughlyHolds(t *testing.T) {
	defer DisarmAll()
	WALAppendErr.Arm(Spec{Prob: 0.5})
	fired := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if WALAppendErr.Fire() != nil {
			fired++
		}
	}
	if fired < n/4 || fired > 3*n/4 {
		t.Fatalf("p=0.5 fired %d/%d times", fired, n)
	}
}

func TestFiresCounter(t *testing.T) {
	defer DisarmAll()
	before := ShardApplyDelay.Fires()
	ShardApplyDelay.Arm(Spec{Err: errors.New("x"), Count: 5})
	for i := 0; i < 20; i++ {
		ShardApplyDelay.Fire()
	}
	if got := ShardApplyDelay.Fires() - before; got != 5 {
		t.Fatalf("fires counter advanced %d, want 5", got)
	}
}

func TestParseAndArm(t *testing.T) {
	defer DisarmAll()
	names, err := ParseAndArm("wal.fsync.err=err; wal.fsync.delay=delay:1ms,count:2 ;stream.write.stall=err,key:9,p:1")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 {
		t.Fatalf("armed %v, want 3 points", names)
	}
	if err := WALFsyncErr.Fire(); err == nil {
		t.Fatal("wal.fsync.err not armed")
	}
	// delay-only spec: sleeps, returns nil, self-disarms after 2.
	for i := 0; i < 2; i++ {
		if err := WALFsyncDelay.Fire(); err != nil {
			t.Fatalf("pure-delay spec errored: %v", err)
		}
	}
	WALFsyncDelay.Fire()
	if WALFsyncDelay.Armed() {
		t.Fatal("count:2 spec still armed after exhaustion")
	}
	if err := StreamWriteStall.FireKey(9); err == nil {
		t.Fatal("keyed err spec did not fire on its key")
	}
	if err := StreamWriteStall.FireKey(1); err != nil {
		t.Fatalf("keyed spec fired on wrong key: %v", err)
	}
}

func TestParseAndArmRejectsGarbage(t *testing.T) {
	defer DisarmAll()
	for _, spec := range []string{
		"nonsense.point=err",
		"wal.fsync.err",
		"wal.fsync.err=delay:notaduration",
		"wal.fsync.err=frob:1",
	} {
		if _, err := ParseAndArm(spec); err == nil {
			t.Fatalf("spec %q parsed, want error", spec)
		}
	}
}

func TestConcurrentFireAndArm(t *testing.T) {
	defer DisarmAll()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					WALDiskFull.Fire()
					WALDiskFull.FireKey(3)
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		WALDiskFull.Arm(Spec{Count: 2})
		WALDiskFull.Disarm()
	}
	close(stop)
	wg.Wait()
}
