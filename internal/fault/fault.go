// Package fault is a stdlib-only failpoint framework: named points
// compiled into the serving pipeline that tests (and, behind an opt-in
// flag, the daemon) arm to inject errors and latency at exact places —
// a failing fsync, a full disk, a stalled subscriber — so the system's
// degradation and recovery behavior is provable instead of assumed.
//
// The contract that lets failpoints live on hot paths permanently: a
// disarmed point costs one atomic pointer load and a predictable
// branch. All configuration (probability, remaining count, delay, key
// filter) hangs off the armed state object, so Fire touches nothing
// else until a point is armed.
//
// Points are package-level singletons (see the catalog below). Tests
// arm them directly:
//
//	fault.WALFsyncErr.Arm(fault.Spec{})          // always fail
//	defer fault.WALFsyncErr.Disarm()
//
// and the daemon arms them from a spec string (flag -fault or env
// INSQ_FAULT):
//
//	wal.fsync.err=err;wal.disk.full=err,count:12,p:0.5
//
// Fires are counted per point; RegisterMetrics exports the counters as
// insq_fault_fires_total{point="..."} through an obs registry.
package fault

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Spec configures an armed point. The zero value fires the point's
// default error on every evaluation.
type Spec struct {
	// Err is returned by Fire when the point fires. Nil with Delay == 0
	// means the point's default injected error; nil with Delay > 0 means
	// a pure stall (sleep, then return nil).
	Err error
	// Delay is slept on every fire, before Err is returned.
	Delay time.Duration
	// Prob is the per-evaluation fire probability; <= 0 means 1 (always).
	Prob float64
	// Count bounds the total number of fires; when it is exhausted the
	// point disarms itself. 0 = unlimited.
	Count int64
	// Skip suppresses the first Skip matching evaluations before the
	// point starts firing.
	Skip int64
	// Key restricts a keyed point: only FireKey(Key) fires (and plain
	// Fire never does). Meaningful only with HasKey.
	Key    uint64
	HasKey bool
}

// armed is the immutable-configuration + mutable-counter state a point
// carries while armed. Swapped atomically as a unit so Fire sees a
// consistent spec.
type armed struct {
	err     error
	delay   time.Duration
	prob    float64
	key     uint64
	keyed   bool
	hasSkip bool
	skip    atomic.Int64
	left    atomic.Int64 // remaining fires; MaxInt64 when unlimited
}

// Point is one named failpoint. The zero of the hot path: when the
// armed pointer is nil, Fire is a single atomic load and a branch.
type Point struct {
	name  string
	deflt error
	state atomic.Pointer[armed]
	fires atomic.Uint64
}

var (
	registryMu sync.Mutex
	registry   = map[string]*Point{}
	ordered    []*Point
)

// New registers a named point. Points are process-wide singletons
// created at package init; duplicate names are a programming error.
func New(name string) *Point {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic("fault: duplicate point " + name)
	}
	p := &Point{name: name, deflt: errors.New("fault: injected " + name)}
	registry[name] = p
	ordered = append(ordered, p)
	return p
}

// The failpoint catalog. Each constant documents where in the pipeline
// the point fires; the injection sites live next to the real I/O they
// shadow.
var (
	// WALAppendErr fails the durability append before anything reaches
	// the log — the batch aborts unpublished, the log stays healthy.
	WALAppendErr = New("wal.append.err")
	// WALFsyncErr fails the segment fsync through the normal error path,
	// so the log goes sticky-dead exactly like a real fsync error.
	WALFsyncErr = New("wal.fsync.err")
	// WALFsyncDelay stalls inside the segment fsync while the log lock is
	// held — a hung disk, not a failed one.
	WALFsyncDelay = New("wal.fsync.delay")
	// WALDiskFull fails the WAL append before any bytes are buffered; the
	// log stays usable (a transient ENOSPC, not a dead device).
	WALDiskFull = New("wal.disk.full")
	// StorePublishDelay stalls epoch publication inside Apply, after the
	// durable append, while the store lock is held.
	StorePublishDelay = New("store.publish.delay")
	// StreamWriteStall stalls a subscriber's event consumption (the SSE
	// write path) after an event is popped; keyed by session id so one
	// slow subscriber can be targeted while others stay healthy.
	StreamWriteStall = New("stream.write.stall")
	// ShardApplyDelay stalls a shard worker at the head of batch apply —
	// the deterministic way to back a mailbox up for admission-control
	// and deadline tests.
	ShardApplyDelay = New("shard.apply.delay")
)

// Name returns the point's registered name.
func (p *Point) Name() string { return p.name }

// Fires returns how many times the point has fired since process start.
func (p *Point) Fires() uint64 { return p.fires.Load() }

// Armed reports whether the point is currently armed.
func (p *Point) Armed() bool { return p.state.Load() != nil }

// Arm installs a spec on the point, replacing any previous one.
func (p *Point) Arm(s Spec) {
	a := &armed{
		err:     s.Err,
		delay:   s.Delay,
		prob:    s.Prob,
		key:     s.Key,
		keyed:   s.HasKey,
		hasSkip: s.Skip > 0,
	}
	if a.err == nil && a.delay == 0 {
		a.err = p.deflt
	}
	if a.prob <= 0 {
		a.prob = 1
	}
	a.skip.Store(s.Skip)
	if s.Count > 0 {
		a.left.Store(s.Count)
	} else {
		a.left.Store(math.MaxInt64)
	}
	p.state.Store(a)
}

// Disarm removes any armed spec; Fire returns to the one-load fast path.
func (p *Point) Disarm() { p.state.Store(nil) }

// Fire evaluates the point. Disarmed (the permanent production state) it
// returns nil after one atomic load. Armed, it applies skip, probability
// and count, sleeps the configured delay, and returns the configured
// error (nil for pure-delay specs). Keyed specs never fire through Fire.
func (p *Point) Fire() error {
	a := p.state.Load()
	if a == nil {
		return nil
	}
	return p.fire(a, 0, false)
}

// FireKey is Fire for keyed call sites: a spec with a key fires only
// when the keys match; a spec without one ignores the key.
func (p *Point) FireKey(key uint64) error {
	a := p.state.Load()
	if a == nil {
		return nil
	}
	return p.fire(a, key, true)
}

func (p *Point) fire(a *armed, key uint64, haveKey bool) error {
	if a.keyed && (!haveKey || key != a.key) {
		return nil
	}
	if a.hasSkip && a.skip.Add(-1) >= 0 {
		return nil
	}
	if a.prob < 1 && rand.Float64() >= a.prob {
		return nil
	}
	if a.left.Add(-1) < 0 {
		// Count exhausted: self-disarm (only if this spec is still the
		// installed one) and fall back to the healthy path.
		p.state.CompareAndSwap(a, nil)
		return nil
	}
	p.fires.Add(1)
	if a.delay > 0 {
		time.Sleep(a.delay)
	}
	return a.err
}

// Arm arms a point by name.
func Arm(name string, s Spec) error {
	p := lookup(name)
	if p == nil {
		return fmt.Errorf("fault: unknown point %q (known: %s)", name, strings.Join(Names(), ", "))
	}
	p.Arm(s)
	return nil
}

// Disarm disarms a point by name.
func Disarm(name string) error {
	p := lookup(name)
	if p == nil {
		return fmt.Errorf("fault: unknown point %q", name)
	}
	p.Disarm()
	return nil
}

// DisarmAll disarms every registered point. Tests defer this to keep the
// process-global registry clean between cases.
func DisarmAll() {
	registryMu.Lock()
	pts := append([]*Point(nil), ordered...)
	registryMu.Unlock()
	for _, p := range pts {
		p.Disarm()
	}
}

func lookup(name string) *Point {
	registryMu.Lock()
	defer registryMu.Unlock()
	return registry[name]
}

// Points returns every registered point in a stable (sorted) order, for
// metrics export and spec error messages.
func Points() []*Point {
	registryMu.Lock()
	pts := append([]*Point(nil), ordered...)
	registryMu.Unlock()
	sort.Slice(pts, func(i, j int) bool { return pts[i].name < pts[j].name })
	return pts
}

// Names returns the registered point names, sorted.
func Names() []string {
	pts := Points()
	names := make([]string, len(pts))
	for i, p := range pts {
		names[i] = p.name
	}
	return names
}

// ParseAndArm parses a fault spec string and arms each named point. The
// grammar (the -fault flag / INSQ_FAULT env format):
//
//	spec  := point *(";" point)
//	point := name "=" opt *("," opt)
//	opt   := "err"          fire the point's default injected error
//	       | "delay:" dur   sleep this long per fire (time.ParseDuration)
//	       | "p:" float     per-evaluation fire probability (default 1)
//	       | "count:" n     total fires before self-disarm (default unlimited)
//	       | "skip:" n      matching evaluations to skip first
//	       | "key:" n       keyed points: fire only for this key
//
// A point with a delay and no "err" is a pure stall. It returns the
// names armed, in input order.
func ParseAndArm(spec string) ([]string, error) {
	var armedNames []string
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, opts, ok := strings.Cut(part, "=")
		if !ok {
			return armedNames, fmt.Errorf("fault: bad spec %q: want name=opt[,opt...]", part)
		}
		name = strings.TrimSpace(name)
		s, wantErr, err := parseOpts(opts)
		if err != nil {
			return armedNames, fmt.Errorf("fault: point %s: %w", name, err)
		}
		p := lookup(name)
		if p == nil {
			return armedNames, fmt.Errorf("fault: unknown point %q (known: %s)", name, strings.Join(Names(), ", "))
		}
		if wantErr {
			// Explicit "err": fire the point's default injected error even
			// alongside a delay (a delay-only spec is a pure stall).
			s.Err = p.deflt
		}
		p.Arm(s)
		armedNames = append(armedNames, name)
	}
	return armedNames, nil
}

func parseOpts(opts string) (s Spec, wantErr bool, _ error) {
	for _, o := range strings.Split(opts, ",") {
		o = strings.TrimSpace(o)
		if o == "" {
			continue
		}
		if o == "err" {
			wantErr = true
			continue
		}
		k, v, ok := strings.Cut(o, ":")
		if !ok {
			return s, wantErr, fmt.Errorf("bad option %q (want err, delay:DUR, p:F, count:N, skip:N or key:N)", o)
		}
		switch k {
		case "delay":
			d, err := time.ParseDuration(v)
			if err != nil {
				return s, wantErr, fmt.Errorf("delay: %w", err)
			}
			s.Delay = d
		case "p":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return s, wantErr, fmt.Errorf("p: %w", err)
			}
			s.Prob = f
		case "count":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return s, wantErr, fmt.Errorf("count: %w", err)
			}
			s.Count = n
		case "skip":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return s, wantErr, fmt.Errorf("skip: %w", err)
			}
			s.Skip = n
		case "key":
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return s, wantErr, fmt.Errorf("key: %w", err)
			}
			s.Key = n
			s.HasKey = true
		default:
			return s, wantErr, fmt.Errorf("unknown option %q", k)
		}
	}
	return s, wantErr, nil
}
