package svg

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/netvor"
	"repro/internal/roadnet"
	"repro/internal/vortree"
)

// PlaneFrameOptions controls what a 2D-plane demonstration frame shows,
// mirroring the check boxes of the demo's control panel.
type PlaneFrameOptions struct {
	WidthPx          int  // raster width; default 800
	ShowVoronoiCells bool // order-1 Voronoi cells of all objects
	ShowOrderKCell   bool // safe region of the current kNN set
	ShowCircles      bool // the green/red validation circles
}

// PlaneFrame renders one timestamp of a 2D-plane demonstration: the data
// objects, the query position, and the query's current kNN and influence
// sets, plus the optional safe-region geometry of Figure 4.
func PlaneFrame(ix *vortree.Index, q *core.PlaneQuery, pos geom.Point, opts PlaneFrameOptions) (string, error) {
	if opts.WidthPx == 0 {
		opts.WidthPx = 800
	}
	d := ix.Diagram()
	c := NewCanvas(d.Bounds(), opts.WidthPx)

	if opts.ShowVoronoiCells {
		for _, id := range d.IDs() {
			cell, err := d.Cell(id)
			if err != nil {
				return "", fmt.Errorf("svg: cell of %d: %w", id, err)
			}
			c.Polygon(cell, "none", ColorVoronoi, 1, 0)
		}
	}

	knn := q.Current()
	inKNN := make(map[int]bool, len(knn))
	for _, id := range knn {
		inKNN[id] = true
	}
	is := q.InfluenceSet()
	inIS := make(map[int]bool, len(is))
	for _, id := range is {
		inIS[id] = true
	}

	if opts.ShowOrderKCell && len(knn) > 0 {
		ins, err := d.INS(knn)
		if err != nil {
			return "", fmt.Errorf("svg: INS: %w", err)
		}
		cell, err := d.OrderKCell(knn, ins)
		if err != nil {
			return "", fmt.Errorf("svg: order-k cell: %w", err)
		}
		color := ColorCellOK
		if !cell.Contains(pos) {
			color = ColorCellBad
		}
		c.Polygon(cell, color, color, 2, 0.15)
	}

	if opts.ShowCircles && len(knn) > 0 {
		// Green circle through the farthest kNN member; red circle through
		// the nearest influence-set member; both centered at the query.
		var far float64
		for _, id := range knn {
			if d := pos.Dist(ix.Point(id)); d > far {
				far = d
			}
		}
		c.Circle(pos, far, ColorKNN, 1.5)
		near := -1.0
		for _, id := range is {
			if dd := pos.Dist(ix.Point(id)); near < 0 || dd < near {
				near = dd
			}
		}
		if near >= 0 {
			c.Circle(pos, near, ColorQuery, 1.5)
		}
	}

	for _, id := range d.IDs() {
		color := ColorObject
		switch {
		case inKNN[id]:
			color = ColorKNN
		case inIS[id]:
			color = ColorINS
		}
		c.Dot(ix.Point(id), 3, color)
	}
	c.Dot(pos, 5, ColorQuery)
	return c.String(), nil
}

// NetworkFrameOptions controls a road-network demonstration frame.
type NetworkFrameOptions struct {
	WidthPx        int  // raster width; default 800
	ShowSubnetwork bool // highlight the Theorem-2 validation subnetwork
}

// NetworkFrame renders one timestamp of a road-network demonstration: the
// network, the data objects (orange), the query (red), the kNN set (green)
// and the INS (yellow), with the guard subnetwork optionally highlighted —
// the network-mode analogue of the green/yellow cell edges in Figure 3.
func NetworkFrame(d *netvor.Diagram, q *core.NetworkQuery, pos roadnet.Position, opts NetworkFrameOptions) string {
	if opts.WidthPx == 0 {
		opts.WidthPx = 800
	}
	g := d.Graph()
	bounds := networkBounds(g)
	c := NewCanvas(bounds, opts.WidthPx)

	g.Edges(func(u, v int, w float64) {
		c.Line(g.Point(u), g.Point(v), ColorRoad, 1)
	})
	if opts.ShowSubnetwork {
		if sub := q.Subnetwork(); sub != nil {
			sub.G.Edges(func(u, v int, w float64) {
				c.Line(sub.G.Point(u), sub.G.Point(v), ColorSubRoad, 2.5)
			})
		}
	}

	knn := q.Current()
	inKNN := make(map[int]bool, len(knn))
	for _, s := range knn {
		inKNN[s] = true
	}
	ins := q.INS()
	inINS := make(map[int]bool, len(ins))
	for _, s := range ins {
		inINS[s] = true
	}
	for _, s := range d.Sites() {
		color := ColorObject
		switch {
		case inKNN[s]:
			color = ColorKNN
		case inINS[s]:
			color = ColorINS
		}
		c.Dot(g.Point(s), 4, color)
	}
	c.Dot(pos.Point(g), 5, ColorQuery)
	return c.String()
}

func networkBounds(g *roadnet.Graph) geom.Rect {
	if g.NumVertices() == 0 {
		return geom.NewRect(geom.Pt(0, 0), geom.Pt(1, 1))
	}
	r := geom.Rect{Min: g.Point(0), Max: g.Point(0)}
	for v := 1; v < g.NumVertices(); v++ {
		r = r.ExpandPoint(g.Point(v))
	}
	// Avoid zero-area canvases for degenerate embeddings.
	if r.Width() == 0 || r.Height() == 0 {
		r = r.Inset(-1)
	}
	return r
}
