// Package svg renders the INSQ demonstration frames. The paper's system is
// an interactive Scala Swing GUI; this package substitutes it with an SVG
// renderer that draws exactly the same artifacts per timestamp: data
// objects (orange), the query object (red), the current kNN set (green),
// the influential neighbor set (yellow), order-1 Voronoi cells, the
// order-k Voronoi cell (cyan while valid, red when invalidated), and the
// two validation circles — the green circle through the farthest kNN
// member and the red circle through the nearest influential-set member.
package svg

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/geom"
)

// Canvas accumulates SVG shapes in data-space coordinates and writes a
// standalone SVG document. The y axis is flipped so larger y is up, as in
// the paper's figures.
type Canvas struct {
	bounds geom.Rect
	w, h   float64
	scale  float64
	b      strings.Builder
	margin float64
}

// NewCanvas returns a canvas mapping bounds to a raster widthPx pixels
// wide (height follows the aspect ratio).
func NewCanvas(bounds geom.Rect, widthPx int) *Canvas {
	if widthPx < 64 {
		widthPx = 64
	}
	scale := float64(widthPx) / bounds.Width()
	return &Canvas{
		bounds: bounds,
		w:      float64(widthPx),
		h:      bounds.Height() * scale,
		scale:  scale,
		margin: 8,
	}
}

func (c *Canvas) tx(p geom.Point) (float64, float64) {
	return c.margin + (p.X-c.bounds.Min.X)*c.scale,
		c.margin + (c.bounds.Max.Y-p.Y)*c.scale
}

// Line draws a segment with the given stroke color and width (pixels).
func (c *Canvas) Line(a, b geom.Point, color string, width float64) {
	x1, y1 := c.tx(a)
	x2, y2 := c.tx(b)
	fmt.Fprintf(&c.b, `<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="%s" stroke-width="%.2f"/>`+"\n",
		x1, y1, x2, y2, color, width)
}

// Dot draws a filled circle of radius r pixels.
func (c *Canvas) Dot(p geom.Point, r float64, color string) {
	x, y := c.tx(p)
	fmt.Fprintf(&c.b, `<circle cx="%.2f" cy="%.2f" r="%.2f" fill="%s"/>`+"\n", x, y, r, color)
}

// Circle draws an unfilled circle whose radius is in data-space units.
func (c *Canvas) Circle(center geom.Point, radius float64, color string, width float64) {
	x, y := c.tx(center)
	fmt.Fprintf(&c.b, `<circle cx="%.2f" cy="%.2f" r="%.2f" fill="none" stroke="%s" stroke-width="%.2f"/>`+"\n",
		x, y, radius*c.scale, color, width)
}

// Polygon draws a closed polygon; fill may be "none".
func (c *Canvas) Polygon(poly geom.Polygon, fill, stroke string, width float64, opacity float64) {
	if len(poly) < 2 {
		return
	}
	var pts strings.Builder
	for i, p := range poly {
		if i > 0 {
			pts.WriteByte(' ')
		}
		x, y := c.tx(p)
		fmt.Fprintf(&pts, "%.2f,%.2f", x, y)
	}
	fmt.Fprintf(&c.b, `<polygon points="%s" fill="%s" fill-opacity="%.2f" stroke="%s" stroke-width="%.2f"/>`+"\n",
		pts.String(), fill, opacity, stroke, width)
}

// Text draws a label at p.
func (c *Canvas) Text(p geom.Point, s string, size float64, color string) {
	x, y := c.tx(p)
	fmt.Fprintf(&c.b, `<text x="%.2f" y="%.2f" font-size="%.1f" fill="%s">%s</text>`+"\n",
		x, y, size, color, escape(s))
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// WriteTo writes the complete SVG document.
func (c *Canvas) WriteTo(w io.Writer) (int64, error) {
	n, err := fmt.Fprintf(w,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n"+
			`<rect width="100%%" height="100%%" fill="white"/>`+"\n%s</svg>\n",
		c.w+2*c.margin, c.h+2*c.margin, c.w+2*c.margin, c.h+2*c.margin, c.b.String())
	return int64(n), err
}

// String returns the complete SVG document.
func (c *Canvas) String() string {
	var sb strings.Builder
	if _, err := c.WriteTo(&sb); err != nil {
		// strings.Builder never errors; keep the signature honest anyway.
		panic(err)
	}
	return sb.String()
}

// Palette used by the frame renderers, matching the demonstration's color
// coding.
const (
	ColorObject  = "#e69500" // orange: data objects
	ColorQuery   = "#d62728" // red: query object
	ColorKNN     = "#2ca02c" // green: current kNN set
	ColorINS     = "#e6c700" // yellow: influential neighbor set
	ColorCellOK  = "#17becf" // cyan: valid order-k cell
	ColorCellBad = "#d62728" // red: invalidated order-k cell
	ColorVoronoi = "#cccccc" // light gray: order-1 Voronoi edges
	ColorRoad    = "#bbbbbb" // gray: road edges
	ColorSubRoad = "#7fbf7f" // green-ish: guard subnetwork edges
)
