package svg

import (
	"encoding/xml"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/netvor"
	"repro/internal/roadnet"
	"repro/internal/vortree"
	"repro/internal/workload"
)

var testBounds = geom.NewRect(geom.Pt(0, 0), geom.Pt(1000, 1000))

// wellFormed checks the output parses as XML.
func wellFormed(t *testing.T, doc string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(doc))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed: %v\n%s", err, doc[:min(len(doc), 500)])
		}
	}
}

func TestCanvasPrimitives(t *testing.T) {
	c := NewCanvas(testBounds, 400)
	c.Line(geom.Pt(0, 0), geom.Pt(1000, 1000), "black", 1)
	c.Dot(geom.Pt(500, 500), 3, ColorObject)
	c.Circle(geom.Pt(500, 500), 100, ColorKNN, 2)
	c.Polygon(geom.Polygon{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 0, Y: 100}}, ColorCellOK, "black", 1, 0.2)
	c.Text(geom.Pt(10, 10), `k<5 & "q"`, 12, "black")
	doc := c.String()
	wellFormed(t, doc)
	for _, want := range []string{"<line", "<circle", "<polygon", "<text", "&lt;5 &amp;"} {
		if !strings.Contains(doc, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestYAxisFlipped(t *testing.T) {
	c := NewCanvas(testBounds, 400)
	c.Dot(geom.Pt(0, 1000), 1, "black") // top-left in data space
	doc := c.String()
	// Top-left data point must land near raster origin (plus margin).
	if !strings.Contains(doc, `cx="8.00" cy="8.00"`) {
		t.Errorf("y axis not flipped:\n%s", doc)
	}
}

func TestPlaneFrame(t *testing.T) {
	ix, _, err := vortree.Build(testBounds, 16, workload.Uniform(150, testBounds, 1))
	if err != nil {
		t.Fatal(err)
	}
	q, err := core.NewPlaneQuery(ix, 5, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	pos := geom.Pt(500, 500)
	if _, err := q.Update(pos); err != nil {
		t.Fatal(err)
	}
	doc, err := PlaneFrame(ix, q, pos, PlaneFrameOptions{
		ShowVoronoiCells: true,
		ShowOrderKCell:   true,
		ShowCircles:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	wellFormed(t, doc)
	for _, want := range []string{ColorKNN, ColorINS, ColorQuery, ColorObject} {
		if !strings.Contains(doc, want) {
			t.Errorf("frame missing color %s", want)
		}
	}
}

func TestNetworkFrame(t *testing.T) {
	g, err := roadnet.GridNetwork(8, 8, testBounds, 0.2, 0.3, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	sites := rng.Perm(g.NumVertices())[:15]
	d, err := netvor.Build(g, sites)
	if err != nil {
		t.Fatal(err)
	}
	q, err := core.NewNetworkQuery(d, 3, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	pos := roadnet.VertexPosition(0)
	if _, err := q.Update(pos); err != nil {
		t.Fatal(err)
	}
	doc := NetworkFrame(d, q, pos, NetworkFrameOptions{ShowSubnetwork: true})
	wellFormed(t, doc)
	for _, want := range []string{ColorRoad, ColorSubRoad, ColorKNN, ColorQuery} {
		if !strings.Contains(doc, want) {
			t.Errorf("frame missing color %s", want)
		}
	}
}
