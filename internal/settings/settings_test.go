package settings

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/geom"
)

func TestDefaultValidates(t *testing.T) {
	s := Default()
	if err := s.Validate(); err != nil {
		t.Fatalf("default settings invalid: %v", err)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "demo.json")
	s := Default()
	s.Mode = ModeNetwork
	s.K = 7
	s.GridRows, s.GridCols, s.NumSites = 10, 12, 30
	s.Rho = 2.0
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Fatalf("round trip changed settings:\nsaved  %+v\nloaded %+v", s, got)
	}
}

func TestLoadPartialFileKeepsDefaults(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "partial.json")
	if err := os.WriteFile(path, []byte(`{"k": 9}`), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.K != 9 {
		t.Errorf("K = %d, want 9", got.K)
	}
	if got.Rho != Default().Rho || got.NumObjects != Default().NumObjects {
		t.Errorf("defaults not preserved: %+v", got)
	}
}

func TestValidateRejectsBadSettings(t *testing.T) {
	cases := []func(*Settings){
		func(s *Settings) { s.Mode = "3d" },
		func(s *Settings) { s.K = 0 },
		func(s *Settings) { s.Rho = 0.5 },
		func(s *Settings) { s.Bounds = geom.Rect{} },
		func(s *Settings) { s.NumObjects = 2; s.K = 5 },
		func(s *Settings) { s.Mode = ModeNetwork; s.GridRows = 1 },
		func(s *Settings) { s.Mode = ModeNetwork; s.NumSites = 1; s.K = 5 },
		func(s *Settings) { s.Mode = ModeNetwork; s.NumSites = 10000 },
		func(s *Settings) { s.Steps = 0 },
		func(s *Settings) { s.QuerySpeed = 0 },
	}
	for i, mutate := range cases {
		s := Default()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid settings accepted: %+v", i, s)
		}
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load("/nonexistent/file.json"); err == nil {
		t.Error("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Error("malformed JSON accepted")
	}
	invalid := filepath.Join(dir, "invalid.json")
	if err := os.WriteFile(invalid, []byte(`{"k": -1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(invalid); err == nil {
		t.Error("invalid settings accepted")
	}
}
