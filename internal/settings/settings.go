// Package settings records and loads demonstration settings, reproducing
// the "Save" and "Read" buttons of the INSQ control panel: the global
// setting (mode, data space, k), the 2D-plane setting (object count,
// prefetch ratio, display toggles) and the road-network setting (grid
// shape, object count, query speed). Settings marshal to JSON so a
// demonstration run is fully reproducible from a file.
package settings

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/geom"
)

// Mode selects the demonstration mode.
type Mode string

// The two demonstration modes of the paper's system.
const (
	ModePlane   Mode = "plane"
	ModeNetwork Mode = "network"
)

// Settings is the full demonstration configuration.
type Settings struct {
	// Global setting.
	Mode   Mode      `json:"mode"`
	Bounds geom.Rect `json:"bounds"`
	K      int       `json:"k"`
	Seed   int64     `json:"seed"`

	// 2D Plane setting.
	NumObjects       int     `json:"num_objects"`
	Rho              float64 `json:"rho"`
	ShowVoronoiCells bool    `json:"show_voronoi_cells"`
	ShowOrderKCell   bool    `json:"show_order_k_cell"`
	ShowCircles      bool    `json:"show_circles"`

	// Road Network setting.
	GridRows   int     `json:"grid_rows"`
	GridCols   int     `json:"grid_cols"`
	NumSites   int     `json:"num_sites"`
	QuerySpeed float64 `json:"query_speed"`

	// Simulation setting.
	Steps  int    `json:"steps"`
	Frames int    `json:"frames"`
	OutDir string `json:"out_dir"`
}

// Default returns the configuration the demonstration starts with,
// matching the paper's screenshots (k = 5, ρ = 1.6).
func Default() Settings {
	return Settings{
		Mode:             ModePlane,
		Bounds:           geom.NewRect(geom.Pt(0, 0), geom.Pt(1000, 1000)),
		K:                5,
		Seed:             1,
		NumObjects:       400,
		Rho:              1.6,
		ShowVoronoiCells: true,
		ShowOrderKCell:   true,
		ShowCircles:      true,
		GridRows:         24,
		GridCols:         24,
		NumSites:         80,
		QuerySpeed:       2.5,
		Steps:            600,
		Frames:           6,
		OutDir:           "frames",
	}
}

// Validate checks the settings for consistency.
func (s *Settings) Validate() error {
	if s.Mode != ModePlane && s.Mode != ModeNetwork {
		return fmt.Errorf("settings: unknown mode %q", s.Mode)
	}
	if s.K < 1 {
		return fmt.Errorf("settings: k = %d, must be >= 1", s.K)
	}
	if s.Rho < 1 {
		return fmt.Errorf("settings: rho = %g, must be >= 1", s.Rho)
	}
	if s.Bounds.Width() <= 0 || s.Bounds.Height() <= 0 {
		return fmt.Errorf("settings: empty data space %v", s.Bounds)
	}
	if s.Mode == ModePlane && s.NumObjects < s.K {
		return fmt.Errorf("settings: %d objects < k=%d", s.NumObjects, s.K)
	}
	if s.Mode == ModeNetwork {
		if s.GridRows < 2 || s.GridCols < 2 {
			return fmt.Errorf("settings: grid %dx%d too small", s.GridRows, s.GridCols)
		}
		if s.NumSites < s.K {
			return fmt.Errorf("settings: %d sites < k=%d", s.NumSites, s.K)
		}
		if s.NumSites > s.GridRows*s.GridCols {
			return fmt.Errorf("settings: %d sites exceed %d vertices",
				s.NumSites, s.GridRows*s.GridCols)
		}
	}
	if s.Steps < 1 {
		return fmt.Errorf("settings: steps = %d, must be >= 1", s.Steps)
	}
	if s.QuerySpeed <= 0 {
		return fmt.Errorf("settings: query speed = %g, must be > 0", s.QuerySpeed)
	}
	return nil
}

// Save writes the settings as indented JSON (the demo's "Save" button).
func (s *Settings) Save(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("settings: marshal: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("settings: save: %w", err)
	}
	return nil
}

// Load reads and validates settings from a JSON file (the demo's "Read"
// button). Fields absent from the file keep their Default values.
func Load(path string) (Settings, error) {
	s := Default()
	data, err := os.ReadFile(path)
	if err != nil {
		return s, fmt.Errorf("settings: load: %w", err)
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("settings: parse %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return s, err
	}
	return s, nil
}
