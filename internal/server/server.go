// Package server implements the insqd serving frontend over one engine:
// the JSON HTTP API, the SSE push streams and the binary ingest fast
// path (ingest.go), shared by cmd/insqd and in-process embedders (the
// SERVE benchmark boots a real instance). The wire types and the error
// table both surfaces speak live in internal/api.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	insq "repro"
	"repro/internal/api"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/stream"
)

// Options configures a Server; the zero value is a plain JSON server
// with no observability, caching or timeouts.
type Options struct {
	// Pprof mounts net/http/pprof under /debug/pprof/ (CPU, heap, mutex,
	// block profiles of the live serving process). Off by default —
	// profiles expose internals and cost cycles while sampling.
	Pprof bool
	// Obs enables /metrics, per-request trace IDs and decode-stage timing;
	// nil turns all of it off.
	Obs *obs.Pipeline
	// AccessLog, when non-nil, logs one line per request (method, path,
	// status, duration, trace).
	AccessLog *slog.Logger
	// RequestTimeout bounds each update/object mutation request (and each
	// coalesced ingest batch): the handler derives a deadline from it so
	// batches abandoned by their client are dropped at the shard instead
	// of executed into the void. 0 disables.
	RequestTimeout time.Duration
	// StatsTTL caches the merged /v1/stats snapshot: Engine.Stats fans a
	// message to every shard worker, so a scraper polling at 1s must not
	// perturb them per request. 0 disables caching.
	StatsTTL time.Duration
	// CoalesceWindow is how long the ingest pump waits for further frames
	// after one arrives before applying the merged engine batch; 0 merges
	// only frames already queued (no added latency). See ingest.go.
	CoalesceWindow time.Duration
}

// Server routes the insqd API onto one serving engine. The engine is
// safe for concurrent use, so handlers need no additional locking.
type Server struct {
	// e is nil until SetEngine; handlers only run after ready flips, whose
	// atomic store/load orders the engine write before any handler read.
	e     *insq.Engine
	ready atomic.Bool
	opts  Options

	statsMu    sync.Mutex
	statsAt    time.Time
	statsCache api.StatsResponse

	// ingest is the binary ingest path's counter set, shared by every
	// stream (HTTP and raw TCP) and surfaced in /v1/stats and /metrics.
	ingest ingestStats
}

// New returns a server already open for traffic — the in-process boot
// path (and tests), where the engine exists before the listener.
func New(e *insq.Engine, opts Options) *Server {
	s := NewPending(opts)
	s.SetEngine(e)
	return s
}

// NewPending returns a server that answers every request (except
// /healthz) with 503 + Retry-After until SetEngine runs — the insqd boot
// path, where the listener starts before WAL recovery finishes.
func NewPending(opts Options) *Server {
	s := &Server{opts: opts}
	if opts.Obs != nil {
		s.registerMetrics(opts.Obs.Registry())
	}
	return s
}

// SetEngine publishes the engine and opens the server for traffic.
func (s *Server) SetEngine(e *insq.Engine) {
	s.e = e
	s.ready.Store(true)
}

// registerMetrics exposes the ingest counters on the shared registry.
func (s *Server) registerMetrics(reg *obs.Registry) {
	reg.GaugeFunc("insq_ingest_connections",
		"Open binary ingest streams (HTTP and raw TCP).",
		func() float64 { return float64(s.ingest.conns.Load()) })
	reg.CounterFunc("insq_ingest_frames_total",
		"Batch frames received on ingest streams.",
		func() float64 { return float64(s.ingest.frames.Load()) })
	reg.CounterFunc("insq_ingest_batches_total",
		"Engine batches the ingest pump applied (frames/batches = coalesce factor).",
		func() float64 { return float64(s.ingest.batches.Load()) })
	reg.CounterFunc("insq_ingest_coalesced_batches_total",
		"Frames merged into an already-pending engine batch by the coalescing pump.",
		func() float64 { return float64(s.ingest.coalesced.Load()) })
	reg.CounterFunc("insq_ingest_bytes_in_total",
		"Bytes received on ingest streams (frame headers + payloads).",
		func() float64 { return float64(s.ingest.bytesIn.Load()) })
	reg.CounterFunc("insq_ingest_bytes_out_total",
		"Ack bytes written on ingest streams.",
		func() float64 { return float64(s.ingest.bytesOut.Load()) })
}

// Handler builds the route table behind the readiness gate; tests mount
// it on httptest servers. /healthz answers before the gate: it is pure
// liveness (the process is up and serving HTTP), while /readyz and
// everything else reflect readiness.
func (s *Server) Handler() http.Handler {
	mux := s.routes()
	return s.instrument(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.Write([]byte("ok\n"))
			return
		}
		if !s.ready.Load() {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable,
				api.ErrorResponse{Error: "recovering: server not ready", Code: api.CodeUnavailable})
			return
		}
		mux.ServeHTTP(w, r)
	}))
}

// statusWriter captures the response status for the access log while
// staying transparent to SSE and ingest streaming: it forwards Flush and
// unwraps for http.NewResponseController's deadline control.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.code = code
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Flush() {
	if fl, ok := sw.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// instrument wraps the route table with per-request observability: a
// trace ID (minted here, returned in X-Trace-Id, threaded through the
// request context into the engine/store/WAL for slow-op attribution) and
// the opt-in access log. With neither observability nor access logging
// configured it returns next untouched — zero per-request cost.
func (s *Server) instrument(next http.Handler) http.Handler {
	if s.opts.Obs == nil && s.opts.AccessLog == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		trace := obs.NewTraceID()
		w.Header().Set("X-Trace-Id", trace)
		r = r.WithContext(obs.WithTraceID(r.Context(), trace))
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(sw, r)
		if s.opts.AccessLog != nil {
			s.opts.AccessLog.Info("access",
				"method", r.Method, "path", r.URL.Path,
				"status", sw.code,
				"dur_ms", float64(time.Since(start).Nanoseconds())/1e6,
				"trace", trace)
		}
	})
}

func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.createSession)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.closeSession)
	mux.HandleFunc("GET /v1/sessions/{id}/events", s.sessionEvents)
	mux.HandleFunc("GET /v1/events", s.events)
	mux.HandleFunc("POST /v1/update", s.updateBatch)
	mux.HandleFunc("POST /v1/network/update", s.updateNetworkBatch)
	mux.HandleFunc("POST /v1/objects", s.insertObject)
	mux.HandleFunc("DELETE /v1/objects/{id}", s.removeObject)
	mux.HandleFunc("POST /v1/network/objects", s.insertNetworkObject)
	mux.HandleFunc("DELETE /v1/network/objects/{id}", s.removeNetworkObject)
	mux.HandleFunc("POST /v1/ingest", s.ingestHTTP)
	mux.HandleFunc("GET /v1/stats", s.stats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// Normally answered before the ready gate in Handler(); kept here
		// for completeness (tests that mount routes() directly).
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /readyz", s.readyz)
	if s.opts.Obs != nil {
		mux.HandleFunc("GET /metrics", s.metrics)
	}
	if s.opts.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeError renders an engine error through the shared table in
// internal/api — the same classification the binary ingest acks use, so
// the two surfaces report errors identically. Transient conditions
// (degraded durability, admission-control shed) carry Retry-After: the
// condition is expected to clear — degraded via the WAL's heal probe,
// shed as the queue drains.
func writeError(w http.ResponseWriter, err error) {
	info := api.Classify(err)
	if info.RetryAfter {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, info.Status, api.ErrorResponse{Error: err.Error(), Code: info.Code})
}

// readyz is the readiness probe: 503 while recovering is handled by the
// gate in Handler() before this runs, so here readiness means "not
// degraded" — a degraded server keeps serving reads but load balancers
// should prefer healthy replicas for write traffic.
func (s *Server) readyz(w http.ResponseWriter, r *http.Request) {
	if s.e.Degraded() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable,
			api.ErrorResponse{Error: "degraded: durability unavailable, writes rejected", Code: api.CodeDegraded})
		return
	}
	w.Write([]byte("ready\n"))
}

// reqCtx derives the handler context for one mutation request, applying
// the server's request timeout when configured.
func (s *Server) reqCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if s.opts.RequestTimeout <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, s.opts.RequestTimeout)
}

func writeBadRequest(w http.ResponseWriter, msg string) {
	writeJSON(w, http.StatusBadRequest, api.ErrorResponse{Error: msg, Code: api.CodeBadRequest})
}

// maxRequestBody bounds request bodies (comfortably above a 100k-entry
// update batch) so one oversized POST cannot exhaust server memory.
const maxRequestBody = 8 << 20

func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	var start time.Time
	if s.opts.Obs.Enabled() {
		start = time.Now()
		defer func() { s.opts.Obs.Observe(obs.StageDecode, time.Since(start)) }()
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				api.ErrorResponse{Error: err.Error(), Code: api.CodeTooLarge})
			return false
		}
		writeBadRequest(w, "bad request body: "+err.Error())
		return false
	}
	return true
}

func pathID(w http.ResponseWriter, r *http.Request) (uint64, bool) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeBadRequest(w, "bad id: "+err.Error())
		return 0, false
	}
	return id, true
}

func (s *Server) createSession(w http.ResponseWriter, r *http.Request) {
	var req api.CreateSessionRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Rho == 0 {
		req.Rho = 1.6
	}
	var sid insq.SessionID
	var err error
	if req.Network {
		sid, err = s.e.CreateNetworkSession(req.K, req.Rho)
	} else {
		sid, err = s.e.CreateSession(req.K, req.Rho)
	}
	if errors.Is(err, engine.ErrClosed) {
		writeError(w, err)
		return
	}
	if err != nil { // parameter validation (incl. no-network-configured)
		writeBadRequest(w, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, api.CreateSessionResponse{Session: uint64(sid)})
}

func (s *Server) closeSession(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	if err := s.e.CloseSession(insq.SessionID(id)); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) updateBatch(w http.ResponseWriter, r *http.Request) {
	var req api.UpdateRequest
	if !s.decode(w, r, &req) {
		return
	}
	ctx, cancel := s.reqCtx(r.Context())
	defer cancel()
	results, err := s.e.UpdateBatchCtx(ctx, api.NewLocationUpdates(req.Updates))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, api.NewUpdateResponse(results))
}

func (s *Server) updateNetworkBatch(w http.ResponseWriter, r *http.Request) {
	var req api.NetworkUpdateRequest
	if !s.decode(w, r, &req) {
		return
	}
	ctx, cancel := s.reqCtx(r.Context())
	defer cancel()
	results, err := s.e.UpdateNetworkBatchCtx(ctx, api.NewNetworkLocationUpdates(req.Updates))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, api.NewUpdateResponse(results))
}

func (s *Server) insertNetworkObject(w http.ResponseWriter, r *http.Request) {
	var req api.NetworkObjectRequest
	if !s.decode(w, r, &req) {
		return
	}
	id, err := s.e.InsertNetworkObjectCtx(r.Context(), req.Vertex)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, api.ObjectResponse{ID: id})
}

func (s *Server) removeNetworkObject(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	if err := s.e.RemoveNetworkObjectCtx(r.Context(), int(id)); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) insertObject(w http.ResponseWriter, r *http.Request) {
	var req api.ObjectRequest
	if !s.decode(w, r, &req) {
		return
	}
	id, err := s.e.InsertObjectCtx(r.Context(), insq.Pt(req.X, req.Y))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, api.ObjectResponse{ID: id})
}

func (s *Server) removeObject(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	if err := s.e.RemoveObjectCtx(r.Context(), int(id)); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// metrics serves the Prometheus exposition of the pipeline's registry.
func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.opts.Obs.Registry().WritePrometheus(w)
}

// statsResponse builds the wire stats, stamping the serving build and
// the ingest path's counters.
func (s *Server) statsResponse(st insq.EngineStats) api.StatsResponse {
	resp := api.NewStatsResponse(st)
	resp.Version, resp.GoVersion, resp.Revision = obs.Build()
	if is := s.ingest.snapshot(); is.FramesTotal > 0 || is.Connections > 0 {
		resp.Ingest = &is
	}
	return resp
}

func (s *Server) stats(w http.ResponseWriter, r *http.Request) {
	if s.opts.StatsTTL <= 0 {
		st, err := s.e.Stats()
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, s.statsResponse(st))
		return
	}
	// TTL cache with single flight: Engine.Stats fans a mailbox message to
	// every shard worker, so concurrent scrapers share one refresh and a
	// 1s poller costs the shards one stats message per TTL, not per
	// request.
	s.statsMu.Lock()
	if time.Since(s.statsAt) <= s.opts.StatsTTL {
		resp := s.statsCache
		s.statsMu.Unlock()
		writeJSON(w, http.StatusOK, resp)
		return
	}
	st, err := s.e.Stats()
	if err != nil {
		s.statsMu.Unlock()
		writeError(w, err)
		return
	}
	s.statsCache = s.statsResponse(st)
	s.statsAt = time.Now()
	resp := s.statsCache
	s.statsMu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// ssePingInterval keeps idle /events connections alive through proxies
// and lets the handler notice dead peers.
const ssePingInterval = 15 * time.Second

// sessionEvents streams one session's result deltas: GET
// /v1/sessions/{id}/events. The stream opens with a snapshot event (the
// current kNN), then pushes deltas until the client disconnects, the
// session closes (a final close event) or the server shuts down (a final
// bye event).
func (s *Server) sessionEvents(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	s.serveEvents(w, r, []uint64{id}, true)
}

// events is the multi-session stream: GET /v1/events?sessions=1,2,3, or
// every session when the parameter is omitted. Snapshots open the stream
// for explicitly named sessions; a firehose subscription starts empty and
// carries deltas only.
func (s *Server) events(w http.ResponseWriter, r *http.Request) {
	var ids []uint64
	if raw := r.URL.Query().Get("sessions"); raw != "" {
		for _, part := range strings.Split(raw, ",") {
			id, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
			if err != nil {
				writeBadRequest(w, "bad sessions parameter: "+err.Error())
				return
			}
			ids = append(ids, id)
		}
	}
	s.serveEvents(w, r, ids, false)
}

// serveEvents is the shared SSE loop. Subscribing before reading the
// baseline snapshots means no delta can fall between them; the client
// dedups the overlap by Seq. The subscriber's queue is bounded with
// coalescing/drop-oldest (see internal/stream), so a stalled connection
// never backpressures the engine.
func (s *Server) serveEvents(w http.ResponseWriter, r *http.Request, ids []uint64, single bool) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError,
			api.ErrorResponse{Error: "streaming unsupported by this connection", Code: api.CodeInternal})
		return
	}
	sub := s.e.Stream().Subscribe(0, ids...)
	if sub == nil { // broker already closed: shutdown in progress
		writeError(w, engine.ErrClosed)
		return
	}
	defer sub.Close()

	// Baseline snapshots, gathered before any status is written so an
	// unknown single session can still fail with a clean 404.
	snapshots := make([]api.SessionEvent, 0, len(ids))
	for _, id := range ids {
		st, err := s.e.State(insq.SessionID(id))
		if err != nil {
			if single {
				writeError(w, err)
				return
			}
			continue // multi-stream: skip unknown ids, serve the rest
		}
		snapshots = append(snapshots, api.SessionEvent{
			Session: id,
			Seq:     st.Seq,
			Epoch:   st.Epoch,
			Cause:   string(stream.CauseSnapshot),
			KNN:     st.KNN,
		})
	}

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	// The server's WriteTimeout is sized for request/response traffic;
	// this connection is long-lived, so push the deadline out before every
	// write instead.
	rc := http.NewResponseController(w)
	emit := func(ev api.SessionEvent) bool {
		rc.SetWriteDeadline(time.Now().Add(2 * ssePingInterval))
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Cause, data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	for _, snap := range snapshots {
		if !emit(snap) {
			return
		}
	}

	ping := time.NewTicker(ssePingInterval)
	defer ping.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-sub.Done():
			// Graceful shutdown: a final farewell instead of a reset.
			emit(api.SessionEvent{Cause: string(stream.CauseBye)})
			return
		case <-ping.C:
			rc.SetWriteDeadline(time.Now().Add(2 * ssePingInterval))
			if _, err := fmt.Fprint(w, ": ping\n\n"); err != nil {
				return
			}
			fl.Flush()
		case <-sub.Wake():
			for ev, ok := sub.Next(); ok; ev, ok = sub.Next() {
				if !emit(api.NewSessionEvent(ev)) {
					return
				}
				if single && ev.Cause == stream.CauseClose {
					return // the one watched session is gone
				}
			}
		}
	}
}
