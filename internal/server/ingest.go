package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/obs"
)

// The binary ingest fast path: a persistent stream of length-prefixed
// CRC32C batch frames (see internal/api/ingest.go for the codec),
// answered by one ack frame per batch. Two transports share all of the
// code below: POST /v1/ingest (chunked upload + streamed response over
// the regular HTTP listener) and a raw TCP listener (insqd -ingest-addr,
// served by ServeIngest) for clients that want the HTTP layer out of the
// loop entirely.
//
// Per connection, a reader goroutine decodes frames into a bounded
// queue and the pump drains it: the first frame opens a merge group,
// frames arriving within CoalesceWindow join it (up to maxCoalesceFrames),
// and the group is applied as single engine batches — one location-update
// batch (the engine fans it out per shard) plus one pre-decoded mutation
// batch per frame that carries mutations (mutations keep per-frame
// failure isolation; location updates already fail per entry). Acks are
// written back in frame order after the group applies.
//
// Backpressure is the bounded queue: when the pump falls behind, the
// reader blocks on the queue, stops reading the socket, and TCP flow
// control pushes back on the client, whose send window (client-side) is
// bounded too. Admission control stays with the engine — a shed batch
// surfaces as an overloaded ack (the 429 equivalent), an expired
// deadline as expired — so the frame layer applies exactly the JSON
// path's policy.

const (
	// ingestIdleTimeout is the per-frame read deadline: an ingest stream
	// may idle between bursts, but a dead peer must not pin the goroutine
	// (and its queue) forever.
	ingestIdleTimeout = 2 * time.Minute
	// ingestWriteTimeout bounds one ack-group write.
	ingestWriteTimeout = 30 * time.Second
	// maxCoalesceFrames caps one merge group so a firehose client cannot
	// grow an engine batch (and its ack latency) without bound.
	maxCoalesceFrames = 64
	// ingestQueueDepth is the decoded-frame buffer between reader and
	// pump — the server-side half of the per-connection window.
	ingestQueueDepth = 64
)

// ingestStats is the counter set shared by all ingest streams.
type ingestStats struct {
	conns     atomic.Int64
	frames    atomic.Uint64
	batches   atomic.Uint64
	coalesced atomic.Uint64
	bytesIn   atomic.Uint64
	bytesOut  atomic.Uint64
	updates   atomic.Uint64
	mutations atomic.Uint64
}

func (st *ingestStats) snapshot() api.IngestStats {
	out := api.IngestStats{
		Connections:      int(st.conns.Load()),
		FramesTotal:      st.frames.Load(),
		Batches:          st.batches.Load(),
		CoalescedBatches: st.coalesced.Load(),
		BytesIn:          st.bytesIn.Load(),
		BytesOut:         st.bytesOut.Load(),
		Updates:          st.updates.Load(),
		Mutations:        st.mutations.Load(),
	}
	if out.Batches > 0 {
		out.CoalesceFactor = float64(out.FramesTotal) / float64(out.Batches)
	}
	return out
}

// ingestIO abstracts the two transports behind the pump: a buffered
// frame reader, an ack writer with flush, and deadline control.
type ingestIO struct {
	br       *bufio.Reader
	w        io.Writer
	flush    func() error
	setRead  func(time.Time) error
	setWrite func(time.Time) error
}

// decodedFrame is one client frame after decode; err marks a framing or
// codec failure (terminal for the stream, acked as bad_frame).
type decodedFrame struct {
	batch api.IngestBatch
	err   error
}

// ingestHTTP serves POST /v1/ingest: the request body is the client's
// frame stream (chunked, open-ended), the response body the ack stream.
// The handler holds the connection until the client closes its side.
func (s *Server) ingestHTTP(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError,
			api.ErrorResponse{Error: "streaming unsupported by this connection", Code: api.CodeInternal})
		return
	}
	rc := http.NewResponseController(w)
	// Full duplex: without this the HTTP/1 server stops serving body reads
	// once the handler writes the response — and this handler streams both
	// directions for the connection's whole life.
	if err := rc.EnableFullDuplex(); err != nil {
		writeJSON(w, http.StatusInternalServerError,
			api.ErrorResponse{Error: "full-duplex streaming unsupported: " + err.Error(), Code: api.CodeInternal})
		return
	}
	br := bufio.NewReader(r.Body)
	rc.SetReadDeadline(time.Now().Add(ingestIdleTimeout))
	if err := expectMagic(br, api.ClientMagic); err != nil {
		// Poison further body reads so the post-handler drain can't sit on
		// the open-ended stream and withhold the error response.
		rc.SetReadDeadline(time.Now())
		writeBadRequest(w, err.Error())
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/x-insq-frames")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	rc.SetWriteDeadline(time.Now().Add(ingestWriteTimeout))
	if _, err := io.WriteString(w, api.ServerMagic); err != nil {
		return
	}
	fl.Flush()
	s.serveIngestStream(r.Context(), ingestIO{
		br: br,
		w:  w,
		flush: func() error {
			fl.Flush()
			return nil
		},
		setRead:  rc.SetReadDeadline,
		setWrite: rc.SetWriteDeadline,
	})
}

// ServeIngest accepts raw-TCP ingest connections until the listener
// closes — the -ingest-addr side door, same protocol minus HTTP.
func (s *Server) ServeIngest(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go s.serveIngestConn(conn)
	}
}

func (s *Server) serveIngestConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	conn.SetReadDeadline(time.Now().Add(ingestIdleTimeout))
	if err := expectMagic(br, api.ClientMagic); err != nil {
		return
	}
	conn.SetWriteDeadline(time.Now().Add(ingestWriteTimeout))
	if _, err := bw.WriteString(api.ServerMagic); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}
	s.serveIngestStream(context.Background(), ingestIO{
		br:       br,
		w:        bw,
		flush:    bw.Flush,
		setRead:  conn.SetReadDeadline,
		setWrite: conn.SetWriteDeadline,
	})
}

func expectMagic(br *bufio.Reader, want string) error {
	got := make([]byte, len(want))
	if _, err := io.ReadFull(br, got); err != nil {
		return fmt.Errorf("ingest: reading magic: %w", err)
	}
	if string(got) != want {
		return fmt.Errorf("ingest: bad magic %q (protocol mismatch)", got)
	}
	return nil
}

// serveIngestStream runs one connection: reader goroutine + pump.
func (s *Server) serveIngestStream(ctx context.Context, conn ingestIO) {
	s.ingest.conns.Add(1)
	defer s.ingest.conns.Add(-1)
	if s.opts.Obs != nil {
		ctx = obs.WithTraceID(ctx, obs.NewTraceID())
	}

	frames := make(chan decodedFrame, ingestQueueDepth)
	readerDone := make(chan struct{})
	defer func() {
		// Unblock the reader (it may be parked on a full queue) and wait it
		// out so its deadline calls can't race the transport teardown.
		go func() {
			for range frames {
			}
		}()
		<-readerDone
	}()
	go func() {
		defer close(readerDone)
		defer close(frames)
		for {
			conn.setRead(time.Now().Add(ingestIdleTimeout))
			payload, err := api.ReadFrame(conn.br)
			if err != nil {
				if err != io.EOF {
					frames <- decodedFrame{err: err}
				}
				return
			}
			s.ingest.bytesIn.Add(uint64(len(payload)) + 8)
			var start time.Time
			if s.opts.Obs.Enabled() {
				start = time.Now()
			}
			batch, err := api.DecodeBatch(payload)
			if s.opts.Obs.Enabled() {
				s.opts.Obs.Observe(obs.StageDecode, time.Since(start))
			}
			if err != nil {
				frames <- decodedFrame{err: err}
				return
			}
			s.ingest.frames.Add(1)
			frames <- decodedFrame{batch: batch}
		}
	}()

	window := s.opts.CoalesceWindow
	for {
		first, ok := <-frames
		if !ok {
			return // clean client close
		}
		group := []decodedFrame{first}
		if first.err == nil {
			group = s.collectGroup(frames, group, window)
		}
		terminal := group[len(group)-1].err != nil
		if err := s.applyGroup(ctx, conn, group); err != nil {
			return // peer gone; nothing left to ack
		}
		if terminal {
			return // framing lost after a bad frame: drop the connection
		}
	}
}

// collectGroup merges the frames already queued behind the first one
// into a single group. The pump never idle-waits: a dry queue ships the
// group immediately, so a lone synchronous client pays pure round-trip
// latency and a pipelining client never stalls behind a timer. Under
// load the coalescing arises naturally — while one group applies, the
// next frames queue behind it and the following drain merges them. The
// coalesce window caps how long a group may keep accumulating when
// frames arrive in a sustained stream (bounding the first frame's ack
// delay), alongside the maxCoalesceFrames size cap. A decode error
// always ends the group (it must be acked last, then the stream dies).
func (s *Server) collectGroup(frames <-chan decodedFrame, group []decodedFrame, window time.Duration) []decodedFrame {
	var cutoff time.Time
	for len(group) < maxCoalesceFrames {
		select {
		case f, ok := <-frames:
			if !ok {
				return group
			}
			group = append(group, f)
			if f.err != nil {
				return group
			}
		default:
			return group // queue dry: ship now rather than wait
		}
		if window > 0 {
			if cutoff.IsZero() {
				cutoff = time.Now().Add(window)
			} else if time.Now().After(cutoff) {
				return group
			}
		}
	}
	return group
}

// applyGroup applies one merge group as engine batches and writes the
// per-frame acks in order. Location updates from all frames coalesce
// into one engine batch per flavor (the engine fans them out per shard);
// mutations apply as one pre-decoded batch per frame so one frame's bad
// mutation cannot fail a neighbor. Returns a non-nil error only when the
// ack write fails (the stream is dead).
func (s *Server) applyGroup(ctx context.Context, w ingestIO, group []decodedFrame) error {
	ctx, cancel := s.reqCtx(ctx)
	defer cancel()
	s.ingest.batches.Add(1)
	s.ingest.coalesced.Add(uint64(len(group) - 1))

	ready := s.ready.Load()

	// Per-frame mutation batches, in frame order (before location updates:
	// an ingest frame that inserts an object and moves a session sees its
	// own insert, matching the JSON call sequence it replaces).
	mutIDs := make([][]int, len(group))
	mutErrs := make([]error, len(group))
	for i, f := range group {
		if f.err != nil || len(f.batch.Mutations) == 0 {
			continue
		}
		if !ready {
			mutErrs[i] = errNotReady
			continue
		}
		mutIDs[i], mutErrs[i] = s.e.ApplyMutations(ctx, f.batch.Mutations)
		s.ingest.mutations.Add(uint64(len(f.batch.Mutations)))
	}

	// Coalesced location updates: one engine batch per flavor.
	var plane []api.UpdateEntry
	var network []api.NetworkUpdateEntry
	for _, f := range group {
		plane = append(plane, f.batch.Updates...)
		network = append(network, f.batch.NetworkUpdates...)
	}
	var planeRes, netRes []api.UpdateResultEntry
	var planeErr, netErr error
	if len(plane) > 0 {
		if ready {
			results, err := s.e.UpdateBatchCtx(ctx, api.NewLocationUpdates(plane))
			planeErr = err
			if err == nil {
				planeRes = api.NewUpdateResponse(results).Results
			}
			s.ingest.updates.Add(uint64(len(plane)))
		} else {
			planeErr = errNotReady
		}
	}
	if len(network) > 0 {
		if ready {
			results, err := s.e.UpdateNetworkBatchCtx(ctx, api.NewNetworkLocationUpdates(network))
			netErr = err
			if err == nil {
				netRes = api.NewUpdateResponse(results).Results
			}
			s.ingest.updates.Add(uint64(len(network)))
		} else {
			netErr = errNotReady
		}
	}

	// Slice the merged results back per frame and ack in order.
	var buf []byte
	po, no := 0, 0
	for i, f := range group {
		ack := s.buildAck(f, mutIDs[i], mutErrs[i], planeErr, netErr,
			sliceResults(planeRes, &po, len(f.batch.Updates)),
			sliceResults(netRes, &no, len(f.batch.NetworkUpdates)))
		buf = api.AppendFrame(buf, api.AppendAck(nil, ack))
	}
	w.setWrite(time.Now().Add(ingestWriteTimeout))
	if _, err := w.w.Write(buf); err != nil {
		return err
	}
	s.ingest.bytesOut.Add(uint64(len(buf)))
	return w.flush()
}

// errNotReady surfaces frames that raced the recovery window on the raw
// TCP listener (the HTTP path 503s before the handler).
var errNotReady = errors.New("recovering: server not ready")

// sliceResults advances the cursor over a merged result slice; nil when
// the batch-level call failed (no per-entry results exist).
func sliceResults(res []api.UpdateResultEntry, cursor *int, n int) []api.UpdateResultEntry {
	if res == nil || n == 0 {
		return nil
	}
	out := res[*cursor : *cursor+n]
	*cursor += n
	return out
}

// buildAck renders one frame's outcome through the shared error table.
func (s *Server) buildAck(f decodedFrame, mutIDs []int, mutErr, planeErr, netErr error,
	planeRes, netRes []api.UpdateResultEntry) api.IngestAck {
	if f.err != nil {
		return api.IngestAck{Code: api.CodeBadFrame, Message: f.err.Error()}
	}
	ack := api.IngestAck{Seq: f.batch.Seq, Code: api.CodeOK}
	firstErr := func(err error) {
		if err == nil || ack.Code != api.CodeOK {
			return
		}
		if errors.Is(err, errNotReady) {
			ack.Code = api.CodeUnavailable
		} else {
			ack.Code = api.Classify(err).Code
		}
		ack.Message = err.Error()
	}
	firstErr(mutErr)
	if len(f.batch.Updates) > 0 {
		firstErr(planeErr)
	}
	if len(f.batch.NetworkUpdates) > 0 {
		firstErr(netErr)
	}
	count := func(res []api.UpdateResultEntry) {
		for _, r := range res {
			if r.Error == "" {
				ack.Applied++
			}
		}
	}
	count(planeRes)
	count(netRes)
	if !f.batch.WantResults {
		return ack
	}
	ack.MutationIDs = mutIDs
	if n := len(planeRes) + len(netRes); n > 0 {
		ack.Results = make([]api.IngestEntryResult, 0, n)
		for _, r := range append(planeRes[:len(planeRes):len(planeRes)], netRes...) {
			entry := api.IngestEntryResult{Session: r.Session, Code: api.CodeOK, KNN: r.KNN}
			if r.Error != "" {
				entry.Code = r.Code
				entry.KNN = nil
			}
			ack.Results = append(ack.Results, entry)
		}
	}
	return ack
}
