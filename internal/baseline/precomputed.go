package baseline

import (
	"fmt"
	"math"
	"time"

	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/voronoi"
	"repro/internal/vortree"
)

// PrecomputedOrderKPlane is the precomputation approach of reference [2]:
// materialize the entire order-k Voronoi diagram up front, index the cells
// for point location, and answer every timestamp by locating the cell the
// query is in. Per-step work is tiny; the construction pays for the full
// diagram, whose cell count grows rapidly with k — the blow-up the paper
// calls "unpractical", measured by experiment E12.
//
// The dataset must be static: object updates invalidate the whole
// precomputation (another drawback of this approach the paper notes).
type PrecomputedOrderKPlane struct {
	k       int
	m       metrics.Counters
	regions []voronoi.Region
	cur     int // index of the current region, -1 if unknown

	// grid buckets region indices by bounding-box overlap for point
	// location.
	grid     map[[2]int][]int
	cellSize float64
	origin   geom.Point

	// BuildTime records how long the precomputation took; NumCells how
	// many order-k cells intersect the data space.
	BuildTime time.Duration
	NumCells  int
}

// NewPrecomputedOrderKPlane enumerates the order-k Voronoi diagram of the
// index's objects. It can take a long time for large k or n — that is the
// method's documented cost.
func NewPrecomputedOrderKPlane(ix *vortree.Index, k int) (*PrecomputedOrderKPlane, error) {
	if k < 1 {
		return nil, fmt.Errorf("baseline: k = %d, must be >= 1", k)
	}
	if ix.Len() < k {
		return nil, fmt.Errorf("%w: %d < %d", ErrTooFewObjects, ix.Len(), k)
	}
	start := time.Now()
	regions, err := ix.Diagram().EnumerateOrderK(k)
	if err != nil {
		return nil, fmt.Errorf("baseline: enumerate order-%d: %w", k, err)
	}
	bounds := ix.Diagram().Bounds()
	// Grid resolution: aim for a few regions per bucket.
	side := int(math.Sqrt(float64(len(regions)))) + 1
	q := &PrecomputedOrderKPlane{
		k:        k,
		regions:  regions,
		cur:      -1,
		grid:     make(map[[2]int][]int),
		cellSize: math.Max(bounds.Width(), bounds.Height()) / float64(side),
		origin:   bounds.Min,
		NumCells: len(regions),
	}
	for i, r := range regions {
		bb := r.Cell.Bounds()
		for _, key := range q.bucketRange(bb) {
			q.grid[key] = append(q.grid[key], i)
		}
	}
	q.BuildTime = time.Since(start)
	return q, nil
}

func (q *PrecomputedOrderKPlane) bucket(p geom.Point) [2]int {
	return [2]int{
		int(math.Floor((p.X - q.origin.X) / q.cellSize)),
		int(math.Floor((p.Y - q.origin.Y) / q.cellSize)),
	}
}

func (q *PrecomputedOrderKPlane) bucketRange(r geom.Rect) [][2]int {
	lo, hi := q.bucket(r.Min), q.bucket(r.Max)
	var out [][2]int
	for x := lo[0]; x <= hi[0]; x++ {
		for y := lo[1]; y <= hi[1]; y++ {
			out = append(out, [2]int{x, y})
		}
	}
	return out
}

// Name implements the processor contract.
func (q *PrecomputedOrderKPlane) Name() string { return "orderk-precomputed" }

// Metrics returns the accumulated cost counters.
func (q *PrecomputedOrderKPlane) Metrics() *metrics.Counters { return &q.m }

// Current returns the kNN set from the last Update.
func (q *PrecomputedOrderKPlane) Current() []int {
	if q.cur < 0 {
		return nil
	}
	return q.regions[q.cur].Sites
}

// Update locates the cell containing p: first a point-in-polygon test on
// the current cell (the common case), then a grid-bucket lookup. A cell
// change counts as a recomputation in the communication sense (the new
// result set is shipped), although nothing is computed — the cost of this
// method lives entirely in its construction.
func (q *PrecomputedOrderKPlane) Update(p geom.Point) ([]int, error) {
	q.m.Timestamps++
	if q.cur >= 0 {
		q.m.Validations++
		q.m.DistanceCalcs += len(q.regions[q.cur].Cell)
		if q.regions[q.cur].Cell.Contains(p) {
			return q.regions[q.cur].Sites, nil
		}
		q.m.Invalidations++
	}
	for _, i := range q.grid[q.bucket(p)] {
		q.m.DistanceCalcs += len(q.regions[i].Cell)
		if q.regions[i].Cell.Contains(p) {
			if i != q.cur {
				q.m.Recomputations++
				q.m.ObjectsShipped += q.k
			}
			q.cur = i
			return q.regions[i].Sites, nil
		}
	}
	// Numerical slack at shared edges: fall back to a full scan before
	// giving up.
	for i := range q.regions {
		if q.regions[i].Cell.Contains(p) {
			if i != q.cur {
				q.m.Recomputations++
				q.m.ObjectsShipped += q.k
			}
			q.cur = i
			return q.regions[i].Sites, nil
		}
	}
	return nil, fmt.Errorf("baseline: point %v in no order-%d cell", p, q.k)
}
