package baseline

import (
	"fmt"
	"sort"

	"repro/internal/metrics"
	"repro/internal/netvor"
	"repro/internal/roadnet"
)

// NaiveNetwork recomputes the network kNN set by incremental network
// expansion (a fresh bounded Dijkstra) at every timestamp.
type NaiveNetwork struct {
	d   *netvor.Diagram
	k   int
	m   metrics.Counters
	knn []int
}

// NewNaiveNetwork returns the naive road-network processor.
func NewNaiveNetwork(d *netvor.Diagram, k int) (*NaiveNetwork, error) {
	if k < 1 {
		return nil, fmt.Errorf("baseline: k = %d, must be >= 1", k)
	}
	if len(d.Sites()) < k {
		return nil, fmt.Errorf("%w: %d < %d", ErrTooFewObjects, len(d.Sites()), k)
	}
	return &NaiveNetwork{d: d, k: k}, nil
}

// Name implements the processor contract.
func (q *NaiveNetwork) Name() string { return "naive-network" }

// Metrics returns the accumulated cost counters.
func (q *NaiveNetwork) Metrics() *metrics.Counters { return &q.m }

// Current returns the kNN set from the last Update.
func (q *NaiveNetwork) Current() []int { return q.knn }

// Update recomputes the kNN set with one network expansion.
func (q *NaiveNetwork) Update(pos roadnet.Position) ([]int, error) {
	q.m.Timestamps++
	if err := pos.Validate(q.d.Graph()); err != nil {
		return nil, err
	}
	q.m.Recomputations++
	relaxBefore := q.d.Graph().EdgeRelaxations()
	q.knn = q.d.KNN(pos, q.k)
	q.m.DijkstraRuns++
	q.m.EdgeRelaxations += q.d.Graph().EdgeRelaxations() - relaxBefore
	q.m.ObjectsShipped += len(q.knn)
	if len(q.knn) < q.k {
		return nil, fmt.Errorf("%w: reached %d of %d", ErrTooFewObjects, len(q.knn), q.k)
	}
	return q.knn, nil
}

// FullNetworkINS is the INS algorithm without Theorem 2: identical guard
// sets and update rules as core.NetworkQuery, but every per-timestamp
// validation ranks the guard objects with a Dijkstra on the full network
// instead of the guard subnetwork. It is the ablation that measures what
// Theorem 2 buys (experiment E9).
type FullNetworkINS struct {
	d   *netvor.Diagram
	k   int
	rho float64
	m   metrics.Counters

	init  bool
	r     []int
	ins   []int
	guard []int
	knn   []int
}

// NewFullNetworkINS returns the no-subnetwork INS ablation processor.
func NewFullNetworkINS(d *netvor.Diagram, k int, rho float64) (*FullNetworkINS, error) {
	if k < 1 {
		return nil, fmt.Errorf("baseline: k = %d, must be >= 1", k)
	}
	if rho < 1 {
		return nil, fmt.Errorf("baseline: rho = %g, must be >= 1", rho)
	}
	if len(d.Sites()) < k {
		return nil, fmt.Errorf("%w: %d < %d", ErrTooFewObjects, len(d.Sites()), k)
	}
	return &FullNetworkINS{d: d, k: k, rho: rho}, nil
}

// Name implements the processor contract.
func (q *FullNetworkINS) Name() string { return "ins-network-full" }

// Metrics returns the accumulated cost counters.
func (q *FullNetworkINS) Metrics() *metrics.Counters { return &q.m }

// Current returns the kNN set from the last Update.
func (q *FullNetworkINS) Current() []int { return q.knn }

func (q *FullNetworkINS) prefetchSize() int {
	m := int(q.rho * float64(q.k))
	if m < q.k {
		m = q.k
	}
	if n := len(q.d.Sites()); m > n {
		m = n
	}
	return m
}

// Update mirrors core.NetworkQuery.Update with full-network validation.
func (q *FullNetworkINS) Update(pos roadnet.Position) ([]int, error) {
	q.m.Timestamps++
	if err := pos.Validate(q.d.Graph()); err != nil {
		return nil, err
	}
	if !q.init {
		if err := q.recompute(pos); err != nil {
			return nil, err
		}
		q.init = true
		return q.knn, nil
	}
	q.m.Validations++
	// Rank all guard objects by true network distance: expand until every
	// guard member is settled.
	relaxBefore := q.d.Graph().EdgeRelaxations()
	ranked := q.rankGuard(pos)
	q.m.DijkstraRuns++
	q.m.EdgeRelaxations += q.d.Graph().EdgeRelaxations() - relaxBefore
	if len(ranked) >= q.k && sameSet(ranked[:q.k], q.knn) {
		return q.knn, nil
	}
	q.m.Invalidations++
	if len(ranked) >= len(q.r) && sameSet(ranked[:len(q.r)], q.r) {
		q.knn = append([]int(nil), ranked[:q.k]...)
		return q.knn, nil
	}
	if err := q.recompute(pos); err != nil {
		return nil, err
	}
	return q.knn, nil
}

// rankGuard returns the guard objects in ascending true network distance
// using a full-network Dijkstra that stops when all guards are settled.
func (q *FullNetworkINS) rankGuard(pos roadnet.Position) []int {
	g := q.d.Graph()
	want := make(map[int]bool, len(q.guard))
	for _, s := range q.guard {
		want[s] = true
	}
	dist := g.ShortestDistances(pos.Sources(g), -1)
	out := append([]int(nil), q.guard...)
	sort.Slice(out, func(i, j int) bool {
		if dist[out[i]] != dist[out[j]] {
			return dist[out[i]] < dist[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

func (q *FullNetworkINS) recompute(pos roadnet.Position) error {
	q.m.Recomputations++
	relaxBefore := q.d.Graph().EdgeRelaxations()
	ids, _ := q.d.KNNWithDistances(pos, q.prefetchSize())
	q.m.DijkstraRuns++
	q.m.EdgeRelaxations += q.d.Graph().EdgeRelaxations() - relaxBefore
	if len(ids) < q.k {
		return fmt.Errorf("%w: reached %d of %d", ErrTooFewObjects, len(ids), q.k)
	}
	q.r = ids
	ins, err := q.d.INS(q.r)
	if err != nil {
		return fmt.Errorf("baseline: network INS: %w", err)
	}
	q.ins = ins
	q.guard = append(append([]int(nil), q.r...), q.ins...)
	q.knn = append([]int(nil), q.r[:q.k]...)
	q.m.ObjectsShipped += len(q.r) + len(q.ins)
	return nil
}

func sameSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	m := make(map[int]int, len(a))
	for _, x := range a {
		m[x]++
	}
	for _, x := range b {
		if m[x] == 0 {
			return false
		}
		m[x]--
	}
	return true
}
