// Package baseline implements the competitor MkNN processors the paper
// positions INS against:
//
//   - NaivePlane / NaiveNetwork: recompute the kNN set from scratch at
//     every timestamp (no safe region at all) — the cost ceiling.
//   - OrderKCellPlane: the strict safe-region method of the earlier
//     Voronoi-cell work (references [2] and [6]): on each recomputation it
//     materializes the order-k Voronoi cell of the kNN set and then
//     validates with a point-in-polygon test. Minimal recomputation
//     frequency, maximal construction cost.
//   - VStarPlane: the V*-Diagram (reference [5]): fetch k+x nearest
//     objects and maintain a relaxed safe region derived from the
//     (k+x)-th distance; cheap construction, but a smaller region that is
//     recomputed more often.
//   - FullNetworkINS: the INS algorithm without the Theorem-2 subnetwork
//     restriction, validating on the full road network — the ablation for
//     experiment E9.
//
// All processors implement the same Update contract as the core package so
// the simulator can drive them interchangeably.
package baseline

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/vortree"
)

// ErrTooFewObjects is returned when k exceeds the number of data objects.
var ErrTooFewObjects = errors.New("baseline: k exceeds object count")

// NaivePlane recomputes the kNN set with a fresh index search at every
// timestamp.
type NaivePlane struct {
	ix  *vortree.Index
	k   int
	m   metrics.Counters
	knn []int
}

// NewNaivePlane returns the naive Euclidean processor.
func NewNaivePlane(ix *vortree.Index, k int) (*NaivePlane, error) {
	if k < 1 {
		return nil, fmt.Errorf("baseline: k = %d, must be >= 1", k)
	}
	return &NaivePlane{ix: ix, k: k}, nil
}

// Name implements the processor contract.
func (q *NaivePlane) Name() string { return "naive" }

// Metrics returns the accumulated cost counters.
func (q *NaivePlane) Metrics() *metrics.Counters { return &q.m }

// Current returns the kNN set from the last Update.
func (q *NaivePlane) Current() []int { return q.knn }

// Update recomputes the kNN set from scratch.
func (q *NaivePlane) Update(p geom.Point) ([]int, error) {
	q.m.Timestamps++
	if q.ix.Len() < q.k {
		return nil, fmt.Errorf("%w: %d < %d", ErrTooFewObjects, q.ix.Len(), q.k)
	}
	q.m.Recomputations++
	visitsBefore := q.ix.Tree().NodeVisits()
	q.knn = q.ix.KNN(p, q.k)
	q.m.NodeVisits += q.ix.Tree().NodeVisits() - visitsBefore
	q.m.ObjectsShipped += len(q.knn)
	return q.knn, nil
}

// OrderKCellPlane is the strict safe-region baseline: the safe region is
// the order-k Voronoi cell of the current kNN set, recomputed from scratch
// on every kNN change.
type OrderKCellPlane struct {
	ix               *vortree.Index
	k                int
	m                metrics.Counters
	useINSCandidates bool

	init bool
	knn  []int
	cell geom.Polygon
}

// NewOrderKCellPlane returns the order-k Voronoi cell processor. When
// useINSCandidates is false (the faithful configuration for references
// [2]/[6]), the cell is computed against every other data object, which is
// the O(k·n) construction cost the paper criticizes; true gives the
// baseline the benefit of the INS candidate pruning and isolates the
// validation-cost difference instead.
func NewOrderKCellPlane(ix *vortree.Index, k int, useINSCandidates bool) (*OrderKCellPlane, error) {
	if k < 1 {
		return nil, fmt.Errorf("baseline: k = %d, must be >= 1", k)
	}
	return &OrderKCellPlane{ix: ix, k: k, useINSCandidates: useINSCandidates}, nil
}

// Name implements the processor contract.
func (q *OrderKCellPlane) Name() string {
	if q.useINSCandidates {
		return "orderk-cell(ins-assisted)"
	}
	return "orderk-cell"
}

// Metrics returns the accumulated cost counters.
func (q *OrderKCellPlane) Metrics() *metrics.Counters { return &q.m }

// Current returns the kNN set from the last Update.
func (q *OrderKCellPlane) Current() []int { return q.knn }

// Cell returns the current safe region (the order-k Voronoi cell).
func (q *OrderKCellPlane) Cell() geom.Polygon { return q.cell }

// Update validates q against the safe region and recomputes the kNN set
// and region when the query object has left it.
func (q *OrderKCellPlane) Update(p geom.Point) ([]int, error) {
	q.m.Timestamps++
	if q.ix.Len() < q.k {
		return nil, fmt.Errorf("%w: %d < %d", ErrTooFewObjects, q.ix.Len(), q.k)
	}
	if q.init {
		q.m.Validations++
		q.m.DistanceCalcs += len(q.cell)
		if q.cell.Contains(p) {
			return q.knn, nil
		}
		q.m.Invalidations++
	}
	q.m.Recomputations++
	visitsBefore := q.ix.Tree().NodeVisits()
	q.knn = q.ix.KNN(p, q.k)
	q.m.NodeVisits += q.ix.Tree().NodeVisits() - visitsBefore
	var cell geom.Polygon
	var err error
	d := q.ix.Diagram()
	if q.useINSCandidates {
		ins, ierr := d.INS(q.knn)
		if ierr != nil {
			return nil, fmt.Errorf("baseline: order-k cell INS: %w", ierr)
		}
		cell, err = d.OrderKCell(q.knn, ins)
		q.m.DistanceCalcs += q.k * len(ins)
	} else {
		cell, err = d.OrderKCellExact(q.knn)
		q.m.DistanceCalcs += q.k * (q.ix.Len() - q.k)
	}
	if err != nil {
		return nil, fmt.Errorf("baseline: order-k cell: %w", err)
	}
	q.cell = cell
	q.m.ObjectsShipped += len(q.knn)
	q.init = true
	return q.knn, nil
}

// VStarPlane approximates the V*-Diagram processor: it retrieves the k+x
// nearest objects W and derives a relaxed safe condition from the distance
// D to the (k+x)-th object at retrieval time q0. Any unretrieved object is
// at least D from q0, hence at least D − |q−q0| from the moving query q, so
// the top-k among W is the true kNN while the k-th known distance stays
// below D − |q−q0|. Within W the kNN set is re-ranked locally for free.
type VStarPlane struct {
	ix *vortree.Index
	k  int
	x  int
	m  metrics.Counters

	init bool
	q0   geom.Point
	d    float64 // distance from q0 to the (k+x)-th neighbor
	w    []int   // k+x retrieved objects
	knn  []int
}

// NewVStarPlane returns the V*-Diagram processor with x auxiliary objects
// (the V* paper uses small x; its default experiments use x around 4..8).
func NewVStarPlane(ix *vortree.Index, k, x int) (*VStarPlane, error) {
	if k < 1 {
		return nil, fmt.Errorf("baseline: k = %d, must be >= 1", k)
	}
	if x < 1 {
		return nil, fmt.Errorf("baseline: x = %d, must be >= 1", x)
	}
	return &VStarPlane{ix: ix, k: k, x: x}, nil
}

// Name implements the processor contract.
func (q *VStarPlane) Name() string { return "vstar" }

// Metrics returns the accumulated cost counters.
func (q *VStarPlane) Metrics() *metrics.Counters { return &q.m }

// Current returns the kNN set from the last Update.
func (q *VStarPlane) Current() []int { return q.knn }

// Update validates against the relaxed region and recomputes on exit.
func (q *VStarPlane) Update(p geom.Point) ([]int, error) {
	q.m.Timestamps++
	if q.ix.Len() < q.k {
		return nil, fmt.Errorf("%w: %d < %d", ErrTooFewObjects, q.ix.Len(), q.k)
	}
	if q.init {
		q.m.Validations++
		if q.valid(p) {
			return q.knn, nil
		}
		q.m.Invalidations++
	}
	// Recompute: fetch k+x nearest (clamped to the dataset size).
	q.m.Recomputations++
	m := q.k + q.x
	if n := q.ix.Len(); m > n {
		m = n
	}
	visitsBefore := q.ix.Tree().NodeVisits()
	q.w = q.ix.KNN(p, m)
	q.m.NodeVisits += q.ix.Tree().NodeVisits() - visitsBefore
	q.q0 = p
	if len(q.w) == q.ix.Len() {
		q.d = -1 // the whole dataset is known: the region never expires
	} else {
		q.d = p.Dist(q.ix.Point(q.w[len(q.w)-1]))
	}
	q.m.ObjectsShipped += len(q.w)
	q.knn = append([]int(nil), q.w[:q.k]...)
	q.init = true
	return q.knn, nil
}

// valid re-ranks W by distance to p and checks the fixed-rank condition.
func (q *VStarPlane) valid(p geom.Point) bool {
	sorted := append([]int(nil), q.w...)
	sort.Slice(sorted, func(i, j int) bool {
		return p.Dist2(q.ix.Point(sorted[i])) < p.Dist2(q.ix.Point(sorted[j]))
	})
	q.m.DistanceCalcs += len(sorted) + 1
	kth := p.Dist(q.ix.Point(sorted[q.k-1]))
	if q.d >= 0 {
		moved := p.Dist(q.q0)
		if kth > q.d-moved {
			return false
		}
		// The (k+x)-th known object may itself no longer bound unknown
		// objects once the query moved; the fixed-rank condition above is
		// the exact guard.
	}
	q.knn = sorted[:q.k]
	return true
}
