package baseline

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/netvor"
	"repro/internal/roadnet"
	"repro/internal/vortree"
)

var testBounds = geom.NewRect(geom.Pt(0, 0), geom.Pt(1000, 1000))

func randomPoints(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
	}
	return pts
}

func buildIndex(t testing.TB, n int, seed int64) *vortree.Index {
	t.Helper()
	ix, _, err := vortree.Build(testBounds, 16, randomPoints(n, seed))
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func walkTrajectory(steps int, stepLen float64, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pos := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
	target := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
	out := make([]geom.Point, 0, steps)
	for len(out) < steps {
		d := target.Sub(pos)
		n := d.Norm()
		if n < stepLen {
			target = geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
			continue
		}
		pos = pos.Add(d.Scale(stepLen / n))
		out = append(out, pos)
	}
	return out
}

// checkAgainstBrute compares a result against ground truth by distance
// multiset (tie-tolerant).
func checkAgainstBrute(t *testing.T, ix *vortree.Index, p geom.Point, got []int, k int) {
	t.Helper()
	ids := ix.Diagram().IDs()
	dists := make([]float64, 0, len(ids))
	for _, id := range ids {
		dists = append(dists, p.Dist2(ix.Point(id)))
	}
	sort.Float64s(dists)
	if len(got) != k {
		t.Fatalf("result has %d ids, want %d", len(got), k)
	}
	gd := make([]float64, 0, k)
	for _, id := range got {
		gd = append(gd, p.Dist2(ix.Point(id)))
	}
	sort.Float64s(gd)
	for i := 0; i < k; i++ {
		if math.Abs(gd[i]-dists[i]) > 1e-9*(dists[i]+1) {
			t.Fatalf("distance[%d] = %g, want %g", i, gd[i], dists[i])
		}
	}
}

func TestNaivePlaneCorrect(t *testing.T) {
	ix := buildIndex(t, 300, 1)
	q, err := NewNaivePlane(ix, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range walkTrajectory(100, 3, 2) {
		got, err := q.Update(p)
		if err != nil {
			t.Fatal(err)
		}
		checkAgainstBrute(t, ix, p, got, 5)
	}
	if q.Metrics().Recomputations != 100 {
		t.Errorf("naive should recompute every step, got %d/100", q.Metrics().Recomputations)
	}
}

func TestOrderKCellPlaneCorrect(t *testing.T) {
	ix := buildIndex(t, 250, 3)
	for _, assisted := range []bool{false, true} {
		q, err := NewOrderKCellPlane(ix, 4, assisted)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range walkTrajectory(300, 3, 4) {
			got, err := q.Update(p)
			if err != nil {
				t.Fatal(err)
			}
			checkAgainstBrute(t, ix, p, got, 4)
		}
		m := q.Metrics()
		if m.Recomputations >= m.Timestamps/2 {
			t.Errorf("assisted=%v: order-k cell recomputed %d of %d steps",
				assisted, m.Recomputations, m.Timestamps)
		}
	}
}

func TestVStarPlaneCorrect(t *testing.T) {
	ix := buildIndex(t, 250, 5)
	for _, x := range []int{1, 4, 10} {
		q, err := NewVStarPlane(ix, 4, x)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range walkTrajectory(300, 3, int64(x)) {
			got, err := q.Update(p)
			if err != nil {
				t.Fatal(err)
			}
			checkAgainstBrute(t, ix, p, got, 4)
		}
	}
}

func TestVStarLargerXRecomputesLess(t *testing.T) {
	ix := buildIndex(t, 1000, 6)
	traj := walkTrajectory(800, 2, 7)
	recomps := make(map[int]int)
	for _, x := range []int{1, 12} {
		q, err := NewVStarPlane(ix, 5, x)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range traj {
			if _, err := q.Update(p); err != nil {
				t.Fatal(err)
			}
		}
		recomps[x] = q.Metrics().Recomputations
	}
	if recomps[12] >= recomps[1] {
		t.Errorf("x=12 recomputed %d times, x=1 %d times; larger x should recompute less",
			recomps[12], recomps[1])
	}
}

// TestINSRecomputesNoMoreThanVStar is the paper's headline shape: INS
// matches the strict region's minimal recomputation frequency, so it should
// recompute no more often than V* (whose region is a subset of the order-k
// cell) on the same trajectory.
func TestINSRecomputesNoMoreThanVStar(t *testing.T) {
	ix := buildIndex(t, 1500, 8)
	traj := walkTrajectory(1000, 2, 9)

	insQ, err := core.NewPlaneQuery(ix, 5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	vstarQ, err := NewVStarPlane(ix, 5, 2) // x=2 ~ comparable shipped volume
	if err != nil {
		t.Fatal(err)
	}
	cellQ, err := NewOrderKCellPlane(ix, 5, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range traj {
		if _, err := insQ.Update(p); err != nil {
			t.Fatal(err)
		}
		if _, err := vstarQ.Update(p); err != nil {
			t.Fatal(err)
		}
		if _, err := cellQ.Update(p); err != nil {
			t.Fatal(err)
		}
	}
	insR := insQ.Metrics().Recomputations
	vstarR := vstarQ.Metrics().Recomputations
	cellR := cellQ.Metrics().Recomputations
	if insR > vstarR {
		t.Errorf("INS recomputed %d times, V* %d times; INS region is maximal", insR, vstarR)
	}
	// INS (with rho=1) and the order-k cell share the same safe region, so
	// their recomputation counts should be very close (small differences
	// come from discrete sampling at region boundaries).
	if diff := insR - cellR; diff < -3 || diff > 3 {
		t.Errorf("INS recomputed %d times vs order-k cell %d; they share the same region",
			insR, cellR)
	}
}

func TestNaiveNetworkCorrect(t *testing.T) {
	g, err := roadnet.RandomPlanarNetwork(200, testBounds, 0.5, 0.3, 10)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	sites := rng.Perm(200)[:30]
	d, err := netvor.Build(g, sites)
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewNaiveNetwork(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	route, err := roadnet.RandomWalkRoute(g, 0, 2000, 12)
	if err != nil {
		t.Fatal(err)
	}
	for dist := 0.0; dist <= route.Length(); dist += 10 {
		pos := route.PositionAt(dist)
		got, err := q.Update(pos)
		if err != nil {
			t.Fatal(err)
		}
		checkNetAgainstBrute(t, d, pos, got, 4)
	}
}

func TestFullNetworkINSCorrectAndMatchesSubnetworkVariant(t *testing.T) {
	g, err := roadnet.RandomPlanarNetwork(300, testBounds, 0.5, 0.3, 13)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(14))
	sites := rng.Perm(300)[:50]
	d, err := netvor.Build(g, sites)
	if err != nil {
		t.Fatal(err)
	}
	full, err := NewFullNetworkINS(d, 4, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := core.NewNetworkQuery(d, 4, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	route, err := roadnet.RandomWalkRoute(g, 1, 3000, 15)
	if err != nil {
		t.Fatal(err)
	}
	for dist := 0.0; dist <= route.Length(); dist += 8 {
		pos := route.PositionAt(dist)
		gotF, err := full.Update(pos)
		if err != nil {
			t.Fatal(err)
		}
		checkNetAgainstBrute(t, d, pos, gotF, 4)
		gotS, err := sub.Update(pos)
		if err != nil {
			t.Fatal(err)
		}
		checkNetAgainstBrute(t, d, pos, gotS, 4)
	}
	// Theorem 2's point: the subnetwork variant does far less per-step work.
	if sub.Metrics().EdgeRelaxations >= full.Metrics().EdgeRelaxations {
		t.Errorf("subnetwork validation relaxed %d edges vs full %d; expected a reduction",
			sub.Metrics().EdgeRelaxations, full.Metrics().EdgeRelaxations)
	}
}

func checkNetAgainstBrute(t *testing.T, d *netvor.Diagram, pos roadnet.Position, got []int, k int) {
	t.Helper()
	dist := d.Graph().ShortestDistances(pos.Sources(d.Graph()), -1)
	all := make([]float64, 0, len(d.Sites()))
	for _, s := range d.Sites() {
		all = append(all, dist[s])
	}
	sort.Float64s(all)
	if len(got) != k {
		t.Fatalf("result has %d ids, want %d", len(got), k)
	}
	gd := make([]float64, 0, k)
	for _, s := range got {
		gd = append(gd, dist[s])
	}
	sort.Float64s(gd)
	for i := 0; i < k; i++ {
		if math.Abs(gd[i]-all[i]) > 1e-9*(all[i]+1) {
			t.Fatalf("network distance[%d] = %g, want %g", i, gd[i], all[i])
		}
	}
}

func TestConstructorValidation(t *testing.T) {
	ix := buildIndex(t, 10, 20)
	if _, err := NewNaivePlane(ix, 0); err == nil {
		t.Error("NaivePlane accepted k=0")
	}
	if _, err := NewOrderKCellPlane(ix, 0, false); err == nil {
		t.Error("OrderKCellPlane accepted k=0")
	}
	if _, err := NewVStarPlane(ix, 3, 0); err == nil {
		t.Error("VStarPlane accepted x=0")
	}
	q, _ := NewNaivePlane(ix, 11)
	if _, err := q.Update(geom.Pt(1, 1)); err == nil {
		t.Error("NaivePlane accepted k > n at update")
	}
}
