package baseline

import (
	"testing"

	"repro/internal/geom"
)

func TestPrecomputedOrderKCorrect(t *testing.T) {
	ix := buildIndex(t, 120, 30)
	q, err := NewPrecomputedOrderKPlane(ix, 3)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumCells == 0 || q.BuildTime <= 0 {
		t.Fatalf("no precomputation recorded: cells=%d time=%v", q.NumCells, q.BuildTime)
	}
	for _, p := range walkTrajectory(400, 3, 31) {
		got, err := q.Update(p)
		if err != nil {
			t.Fatal(err)
		}
		checkAgainstBrute(t, ix, p, got, 3)
	}
	m := q.Metrics()
	if m.Recomputations >= m.Timestamps/2 {
		t.Errorf("precomputed baseline changed cells %d of %d steps", m.Recomputations, m.Timestamps)
	}
}

func TestPrecomputedOrderKCellCountGrows(t *testing.T) {
	ix := buildIndex(t, 60, 32)
	prev := 0
	for _, k := range []int{1, 2, 3} {
		q, err := NewPrecomputedOrderKPlane(ix, k)
		if err != nil {
			t.Fatal(err)
		}
		if q.NumCells <= prev {
			t.Fatalf("k=%d: %d cells, want more than %d", k, q.NumCells, prev)
		}
		prev = q.NumCells
	}
}

func TestPrecomputedOrderKValidation(t *testing.T) {
	ix := buildIndex(t, 20, 33)
	if _, err := NewPrecomputedOrderKPlane(ix, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewPrecomputedOrderKPlane(ix, 21); err == nil {
		t.Error("k>n accepted")
	}
	q, err := NewPrecomputedOrderKPlane(ix, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Current(); got != nil {
		t.Errorf("Current before any update = %v", got)
	}
	if _, err := q.Update(geom.Pt(500, 500)); err != nil {
		t.Fatal(err)
	}
	if got := q.Current(); len(got) != 2 {
		t.Errorf("Current = %v, want 2 ids", got)
	}
}
