package engine

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/netvor"
	"repro/internal/obs"
	"repro/internal/roadnet"
	"repro/internal/stream"
)

// shard is one serving partition: a worker goroutine that owns every
// session pinned to it — and nothing else. The index lives in the shared
// snapshot store; sessions read whichever snapshot they are pinned to
// lock-free. All per-session INS state is touched by exactly one
// goroutine; shards communicate with the engine only through the mailbox,
// reply channels, and the store's epoch notifications.
type shard struct {
	id      int
	store   *index.Store
	events  *stream.Broker
	mailbox chan message
	notify  <-chan uint64 // coalesced epoch notifications from the store
	done    chan struct{}
	obs     *obs.Pipeline // nil when observability is off

	// Worker-owned state; never accessed outside the worker goroutine.
	sessions map[SessionID]*session
	hist     metrics.Histogram

	// updates and sessionsN mirror worker-owned state as atomics so the
	// metrics registry can read them at scrape time without a mailbox
	// round-trip (only the worker writes them).
	updates   atomic.Uint64
	sessionsN atomic.Int64

	// expired counts batch entries dropped because their request deadline
	// passed while the batch sat in the mailbox. Written by the worker,
	// read at scrape time.
	expired atomic.Uint64

	// Reusable delta scratch: the pre-change baseline buffer and the
	// membership maps diffIDs needs. Publishing an event still allocates
	// the event's own slices (events outlive the worker loop), but the
	// bookkeeping around it is allocation-free.
	prevBuf []int
	inOld   map[int]struct{}
	inNew   map[int]struct{}

	// Shared network-search scratch handed to every network session on this
	// shard (sessions run serially on the worker goroutine, so sharing is
	// race-free). Its dense per-vertex arrays are sized by the road network,
	// so one per shard instead of one per session keeps memory flat as
	// session counts grow. Lazily created by the first network session.
	netSc *netvor.SearchScratch
}

// netScratch returns the shard's shared network-search scratch.
func (sh *shard) netScratch() *netvor.SearchScratch {
	if sh.netSc == nil {
		sh.netSc = &netvor.SearchScratch{}
	}
	return sh.netSc
}

// session is one live MkNN query pinned to a shard. Exactly one of plane
// and network is non-nil. seq is the session's push-stream sequence
// counter, touched only by the shard worker, so per-session event order
// needs no synchronization.
type session struct {
	plane   *core.PlaneQuery
	network *core.NetworkQuery
	seq     uint64
}

// current returns a fresh copy of the session's kNN membership — the
// baseline a snapshot-first subscriber holds, captured before a change so
// the published delta applies exactly onto the client view.
func (s *session) current() []int {
	if s.plane != nil {
		return s.plane.Current()
	}
	return s.network.Current()
}

// appendCurrent is current appending onto a caller-owned buffer — the
// zero-copy form the worker loop uses for delta baselines.
func (s *session) appendCurrent(dst []int) []int {
	if s.plane != nil {
		return s.plane.AppendCurrent(dst)
	}
	return s.network.AppendCurrent(dst)
}

func (s *session) counters() metrics.Counters {
	if s.plane != nil {
		return *s.plane.Metrics()
	}
	return *s.network.Metrics()
}

// sync re-pins the session to the newest snapshot, applying the lazy
// invalidation check of the underlying processor.
func (s *session) sync() {
	if s.plane != nil {
		s.plane.Sync()
		return
	}
	s.network.Sync()
}

// refresh is the eager-repair form of sync used for watched sessions.
func (s *session) refresh() (knn []int, recomputed bool, err error) {
	if s.plane != nil {
		return s.plane.Refresh()
	}
	return s.network.Refresh()
}

// epoch returns the index snapshot epoch the session is pinned to.
func (s *session) epoch() uint64 {
	if s.plane != nil {
		return s.plane.Epoch()
	}
	return s.network.Epoch()
}

// close releases the session's snapshot pin.
func (s *session) close() {
	if s.plane != nil {
		s.plane.Close()
		return
	}
	s.network.Close()
}

// message is a mailbox envelope; the worker type-switches on it.
type message interface{ isMessage() }

// createMsg registers a new session under sid.
type createMsg struct {
	sid     SessionID
	network bool
	k       int
	rho     float64
	reply   chan error
}

// closeMsg removes session sid.
type closeMsg struct {
	sid   SessionID
	reply chan error
}

// batchEntry is one location update of a batch, fanned out to the owning
// shard; idx is the position of the result in the caller's results slice.
type batchEntry struct {
	idx int
	sid SessionID
	pos geom.Point
	net roadnet.Position
}

// batchMsg processes a run of location updates. The worker writes into
// results at the entries' disjoint indices and then signals reply once.
// ctx is the originating request's context; a batch whose deadline passed
// while it waited in the mailbox is dropped without executing. trace is
// set only with observability on (the request's trace ID); enqueued is
// the fan-out time, against which the worker reports its mailbox wait
// (the queue stage) and deadline drops.
type batchMsg struct {
	ctx      context.Context
	network  bool
	entries  []batchEntry
	results  []UpdateResult
	reply    chan struct{}
	trace    string
	enqueued time.Time
}

// stateMsg reads one session's current result snapshot, sequenced against
// the session's updates and stream events by riding the same mailbox.
type stateMsg struct {
	sid   SessionID
	reply chan stateReply
}

type stateReply struct {
	state SessionState
	err   error
}

// statsMsg snapshots the shard's serving state.
type statsMsg struct {
	reply chan shardStats
}

type shardStats struct {
	sessions int
	updates  uint64
	counters metrics.Counters
	hist     metrics.Histogram
}

func (createMsg) isMessage() {}
func (closeMsg) isMessage()  {}
func (batchMsg) isMessage()  {}
func (stateMsg) isMessage()  {}
func (statsMsg) isMessage()  {}

// run is the worker loop; it exits when the mailbox is closed. Between
// requests it drains epoch notifications and re-pins its sessions, so even
// dormant sessions release superseded snapshots promptly (correctness does
// not depend on it: every session also re-pins inside Update).
func (sh *shard) run() {
	defer close(sh.done)
	for {
		select {
		case msg, ok := <-sh.mailbox:
			if !ok {
				sh.shutdown()
				return
			}
			sh.handle(msg)
		case <-sh.notify:
			sh.sweep()
		}
	}
}

func (sh *shard) handle(msg message) {
	switch m := msg.(type) {
	case createMsg:
		m.reply <- sh.create(m)
	case closeMsg:
		s, ok := sh.sessions[m.sid]
		if !ok {
			m.reply <- fmt.Errorf("%w: %d", ErrUnknownSession, m.sid)
			return
		}
		if sh.events.Watched(uint64(m.sid)) {
			sh.publish(m.sid, s, stream.CauseClose, s.current(), nil, sh.store.Epoch())
		}
		s.close()
		delete(sh.sessions, m.sid)
		sh.sessionsN.Store(int64(len(sh.sessions)))
		m.reply <- nil
	case batchMsg:
		sh.runBatch(m)
		m.reply <- struct{}{}
	case stateMsg:
		m.reply <- sh.state(m.sid)
	case statsMsg:
		m.reply <- sh.stats()
	}
}

// shutdown releases every session's snapshot pin on engine close.
func (sh *shard) shutdown() {
	for _, s := range sh.sessions {
		s.close()
	}
	sh.sessions = nil
	sh.sessionsN.Store(0)
}

// sweep re-pins every session — plane and network alike — to the newest
// snapshot, applying the lazy-invalidation check inside the processor's
// Sync. Unwatched affected sessions recompute at their next location
// update (the paper's lazy path); sessions with push subscribers instead
// recompute eagerly via Refresh, and the resulting delta — the data
// update's effect on their kNN — is published immediately, which is what
// turns the engine's invalidation machinery into user-visible push
// notifications.
func (sh *shard) sweep() {
	var start time.Time
	if sh.obs.Enabled() {
		start = time.Now()
		defer func() { sh.obs.Observe(obs.StageSweep, time.Since(start)) }()
	}
	active := sh.events.Active()
	for sid, s := range sh.sessions {
		if !active || !sh.events.Watched(uint64(sid)) {
			s.sync()
			continue
		}
		prev := s.appendCurrent(sh.prevBuf[:0])
		sh.prevBuf = prev[:0]
		knn, recomputed, err := s.refresh()
		if err != nil {
			// The result is gone (e.g. k now exceeds the object count) and
			// the error will surface at the session's next Update. Still
			// publish the transition to the empty view: a subscriber that
			// kept the old members would otherwise hold a silently-wrong
			// view, and the eventual recompute publishes its delta against
			// the empty baseline — the chain stays exact.
			sh.publish(sid, s, stream.CauseData, prev, nil, s.epoch())
			continue
		}
		if recomputed {
			sh.publish(sid, s, stream.CauseData, prev, knn, s.epoch())
		}
	}
}

func (sh *shard) create(m createMsg) error {
	if m.network {
		q, err := core.NewNetworkQueryPinned(sh.store, m.k, m.rho)
		if err != nil {
			return err
		}
		q.UseScratch(sh.netScratch())
		sh.sessions[m.sid] = &session{network: q}
		sh.sessionsN.Store(int64(len(sh.sessions)))
		return nil
	}
	q, err := core.NewPlaneQueryPinned(sh.store, m.k, m.rho)
	if err != nil {
		return err
	}
	sh.sessions[m.sid] = &session{plane: q}
	sh.sessionsN.Store(int64(len(sh.sessions)))
	return nil
}

func (sh *shard) runBatch(m batchMsg) {
	// A batch whose request deadline already passed is dropped whole: the
	// client stopped waiting, so applying it would only add queue delay for
	// live requests behind it. The entries report ErrExpired rather than
	// silently vanishing.
	if m.ctx != nil {
		if cerr := m.ctx.Err(); cerr != nil {
			for _, e := range m.entries {
				m.results[e.idx] = UpdateResult{Session: e.sid, Err: fmt.Errorf("%w: %v", ErrExpired, cerr)}
			}
			sh.expired.Add(uint64(len(m.entries)))
			if sh.obs.Enabled() {
				sh.obs.Expired(m.trace, sh.id, len(m.entries), time.Since(m.enqueued))
			}
			return
		}
	}
	fault.ShardApplyDelay.Fire()
	var batchStart time.Time
	if sh.obs.Enabled() {
		batchStart = time.Now()
		sh.obs.Observe(obs.StageQueue, batchStart.Sub(m.enqueued))
	}
	for _, e := range m.entries {
		s, ok := sh.sessions[e.sid]
		if !ok {
			m.results[e.idx] = UpdateResult{Session: e.sid, Err: fmt.Errorf("%w: %d", ErrUnknownSession, e.sid)}
			continue
		}
		// Capture the pre-update membership while the session is watched:
		// it is the baseline subscribers hold, and the published delta must
		// apply exactly onto it (the scratch buffer survives until publish,
		// which copies what it keeps).
		watched := sh.events.Watched(uint64(e.sid))
		var prev []int
		if watched {
			prev = s.appendCurrent(sh.prevBuf[:0])
			sh.prevBuf = prev[:0]
		}
		var knn []int
		var err error
		switch {
		case m.network && s.network != nil:
			start := time.Now()
			knn, err = s.network.Update(e.net)
			sh.observe(time.Since(start))
		case !m.network && s.plane != nil:
			start := time.Now()
			knn, err = s.plane.Update(e.pos)
			sh.observe(time.Since(start))
		default:
			// A no-op: not counted as a processed update so Stats
			// throughput and latency reflect real query work only.
			err = fmt.Errorf("engine: session %d is not a %s session", e.sid, batchKind(m.network))
		}
		// The processor's kNN slice is shared and rewritten on the session's
		// next update; copy before it leaves the worker goroutine (the
		// boundary fixed by the core package's slice-ownership contract).
		m.results[e.idx] = UpdateResult{Session: e.sid, KNN: append([]int(nil), knn...), Err: err}
		if watched {
			epoch := s.epoch()
			if err != nil {
				// A failed update can still change the session's state
				// (recompute errors invalidate it); publish whatever
				// transition happened so subscriber views track the
				// session exactly — publish skips no-ops.
				knn = s.current()
			}
			sh.publish(e.sid, s, stream.CauseMove, prev, knn, epoch)
		}
	}
	if sh.obs.Enabled() {
		sh.obs.SlowBatch(m.trace, sh.id, len(m.entries), time.Since(batchStart))
	}
}

// publish emits one stream event for the session unless its kNN
// membership is unchanged from prev, the pre-change result captured by
// the caller (close events always go out). Deltas are against prev —
// exactly the view a subscriber that snapshotted the session holds — so a
// consumer can apply them without ever re-reading the full set. The event
// owns fresh slices and can cross goroutines freely.
func (sh *shard) publish(sid SessionID, s *session, cause stream.Cause, prev, knn []int, epoch uint64) {
	added, removed := sh.diffIDs(prev, knn)
	if cause != stream.CauseClose && len(added) == 0 && len(removed) == 0 {
		return
	}
	s.seq++
	sh.events.Publish(stream.Event{
		Session: uint64(sid),
		Seq:     s.seq,
		Epoch:   epoch,
		Cause:   cause,
		KNN:     append([]int(nil), knn...),
		Added:   added,
		Removed: removed,
	})
}

// state snapshots one session's current result for Engine.State.
func (sh *shard) state(sid SessionID) stateReply {
	s, ok := sh.sessions[sid]
	if !ok {
		return stateReply{err: fmt.Errorf("%w: %d", ErrUnknownSession, sid)}
	}
	return stateReply{state: SessionState{Seq: s.seq, Epoch: s.epoch(), KNN: s.current()}}
}

// diffIDs returns the membership delta from old to new (order-insensitive;
// both lists are O(k)). nil results mean "no change on that side". The
// returned slices are freshly allocated (they ride in published events);
// the membership maps are worker-owned scratch.
func (sh *shard) diffIDs(old, new []int) (added, removed []int) {
	if sh.inOld == nil {
		sh.inOld = make(map[int]struct{}, len(old))
		sh.inNew = make(map[int]struct{}, len(new))
	} else {
		clear(sh.inOld)
		clear(sh.inNew)
	}
	inOld, inNew := sh.inOld, sh.inNew
	for _, id := range old {
		inOld[id] = struct{}{}
	}
	for _, id := range new {
		inNew[id] = struct{}{}
		if _, ok := inOld[id]; !ok {
			added = append(added, id)
		}
	}
	for _, id := range old {
		if _, ok := inNew[id]; !ok {
			removed = append(removed, id)
		}
	}
	return added, removed
}

// observe accounts one processed location update.
func (sh *shard) observe(d time.Duration) {
	sh.hist.Record(d)
	sh.updates.Add(1)
	sh.obs.Observe(obs.StageApply, d)
}

func batchKind(network bool) string {
	if network {
		return "network"
	}
	return "plane"
}

func (sh *shard) stats() shardStats {
	st := shardStats{
		sessions: len(sh.sessions),
		updates:  sh.updates.Load(),
		hist:     sh.hist,
	}
	for _, s := range sh.sessions {
		st.counters.Add(s.counters())
	}
	return st
}
