package engine

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/netvor"
	"repro/internal/roadnet"
	"repro/internal/vortree"
)

// shard is one serving partition: a worker goroutine that owns a private
// replica of the index structures plus every session pinned to it. All INS
// state behind a shard is touched by exactly one goroutine, so none of it
// needs locks; shards communicate with the engine only through the mailbox
// and reply channels.
type shard struct {
	id      int
	mailbox chan message
	done    chan struct{}

	// Worker-owned state; never accessed outside the worker goroutine.
	ix       *vortree.Index  // plane index replica (nil without plane data)
	nv       *netvor.Diagram // network Voronoi replica (nil without network)
	sessions map[SessionID]*session
	hist     metrics.Histogram
	updates  uint64
	epoch    uint64
}

// session is one live MkNN query pinned to a shard. Exactly one of plane
// and network is non-nil.
type session struct {
	plane   *core.PlaneQuery
	network *core.NetworkQuery
}

func (s *session) counters() metrics.Counters {
	if s.plane != nil {
		return *s.plane.Metrics()
	}
	return *s.network.Metrics()
}

// message is a mailbox envelope; the worker type-switches on it.
type message interface{ isMessage() }

// createMsg registers a new session under sid.
type createMsg struct {
	sid     SessionID
	network bool
	k       int
	rho     float64
	reply   chan error
}

// closeMsg removes session sid.
type closeMsg struct {
	sid   SessionID
	reply chan error
}

// batchEntry is one location update of a batch, fanned out to the owning
// shard; idx is the position of the result in the caller's results slice.
type batchEntry struct {
	idx int
	sid SessionID
	pos geom.Point
	net roadnet.Position
}

// batchMsg processes a run of location updates. The worker writes into
// results at the entries' disjoint indices and then signals reply once.
type batchMsg struct {
	network bool
	entries []batchEntry
	results []UpdateResult
	reply   chan struct{}
}

// dataMsg applies one data-object update (insert when insert is set,
// otherwise removal of id) to the shard's index replica at the given epoch.
type dataMsg struct {
	epoch  uint64
	insert bool
	p      geom.Point
	id     int
	reply  chan dataReply
}

type dataReply struct {
	id  int
	err error
}

// statsMsg snapshots the shard's serving state.
type statsMsg struct {
	reply chan shardStats
}

type shardStats struct {
	sessions int
	objects  int
	epoch    uint64
	updates  uint64
	counters metrics.Counters
	hist     metrics.Histogram
}

func (createMsg) isMessage() {}
func (closeMsg) isMessage()  {}
func (batchMsg) isMessage()  {}
func (dataMsg) isMessage()   {}
func (statsMsg) isMessage()  {}

// run is the worker loop; it exits when the mailbox is closed.
func (sh *shard) run() {
	defer close(sh.done)
	for msg := range sh.mailbox {
		switch m := msg.(type) {
		case createMsg:
			m.reply <- sh.create(m)
		case closeMsg:
			if _, ok := sh.sessions[m.sid]; !ok {
				m.reply <- fmt.Errorf("%w: %d", ErrUnknownSession, m.sid)
				continue
			}
			delete(sh.sessions, m.sid)
			m.reply <- nil
		case batchMsg:
			sh.runBatch(m)
			m.reply <- struct{}{}
		case dataMsg:
			m.reply <- sh.applyData(m)
		case statsMsg:
			m.reply <- sh.stats()
		}
	}
}

func (sh *shard) create(m createMsg) error {
	if m.network {
		if sh.nv == nil {
			return ErrNoNetwork
		}
		q, err := core.NewNetworkQuery(sh.nv, m.k, m.rho)
		if err != nil {
			return err
		}
		sh.sessions[m.sid] = &session{network: q}
		return nil
	}
	if sh.ix == nil {
		return ErrNoPlaneIndex
	}
	q, err := core.NewPlaneQuery(sh.ix, m.k, m.rho)
	if err != nil {
		return err
	}
	sh.sessions[m.sid] = &session{plane: q}
	return nil
}

func (sh *shard) runBatch(m batchMsg) {
	for _, e := range m.entries {
		s, ok := sh.sessions[e.sid]
		if !ok {
			m.results[e.idx] = UpdateResult{Session: e.sid, Err: fmt.Errorf("%w: %d", ErrUnknownSession, e.sid)}
			continue
		}
		var knn []int
		var err error
		switch {
		case m.network && s.network != nil:
			start := time.Now()
			knn, err = s.network.Update(e.net)
			sh.observe(time.Since(start))
		case !m.network && s.plane != nil:
			start := time.Now()
			knn, err = s.plane.Update(e.pos)
			sh.observe(time.Since(start))
		default:
			// A no-op: not counted as a processed update so Stats
			// throughput and latency reflect real query work only.
			err = fmt.Errorf("engine: session %d is not a %s session", e.sid, batchKind(m.network))
		}
		// The processor's kNN slice is shared and rewritten on the session's
		// next update; copy before it leaves the worker goroutine.
		m.results[e.idx] = UpdateResult{Session: e.sid, KNN: append([]int(nil), knn...), Err: err}
	}
}

// observe accounts one processed location update.
func (sh *shard) observe(d time.Duration) {
	sh.hist.Record(d)
	sh.updates++
}

func batchKind(network bool) string {
	if network {
		return "network"
	}
	return "plane"
}

// applyData applies one object insert/removal to the shard's replica and
// lazily invalidates the sessions whose guard sets the mutation can touch:
// their next location update recomputes R and I(R); unaffected sessions
// keep serving validations from their existing state.
func (sh *shard) applyData(m dataMsg) dataReply {
	if sh.ix == nil {
		return dataReply{id: -1, err: ErrNoPlaneIndex}
	}
	if m.insert {
		id, err := sh.ix.Insert(m.p)
		if err != nil {
			return dataReply{id: -1, err: err}
		}
		// One neighbor lookup shared by every session's affectedness check;
		// on lookup failure invalidate conservatively.
		nb, nbErr := sh.ix.Neighbors(id)
		for _, s := range sh.sessions {
			if s.plane != nil && (nbErr != nil || s.plane.AffectedByInsert(id, m.p, nb)) {
				s.plane.Invalidate()
			}
		}
		sh.epoch = m.epoch
		return dataReply{id: id}
	}
	if !sh.ix.Contains(m.id) {
		return dataReply{id: m.id, err: fmt.Errorf("%w: %d", ErrUnknownObject, m.id)}
	}
	if err := sh.ix.Remove(m.id); err != nil {
		return dataReply{id: m.id, err: err}
	}
	for _, s := range sh.sessions {
		if s.plane != nil && s.plane.UsesObject(m.id) {
			s.plane.Invalidate()
		}
	}
	sh.epoch = m.epoch
	return dataReply{id: m.id}
}

func (sh *shard) stats() shardStats {
	st := shardStats{
		sessions: len(sh.sessions),
		epoch:    sh.epoch,
		updates:  sh.updates,
		hist:     sh.hist,
	}
	if sh.ix != nil {
		st.objects = sh.ix.Len()
	}
	for _, s := range sh.sessions {
		st.counters.Add(s.counters())
	}
	return st
}
