package engine

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/roadnet"
)

// shard is one serving partition: a worker goroutine that owns every
// session pinned to it — and nothing else. The index lives in the shared
// snapshot store; sessions read whichever snapshot they are pinned to
// lock-free. All per-session INS state is touched by exactly one
// goroutine; shards communicate with the engine only through the mailbox,
// reply channels, and the store's epoch notifications.
type shard struct {
	id      int
	store   *index.Store
	mailbox chan message
	notify  <-chan uint64 // coalesced epoch notifications from the store
	done    chan struct{}

	// Worker-owned state; never accessed outside the worker goroutine.
	sessions map[SessionID]*session
	hist     metrics.Histogram
	updates  uint64
}

// session is one live MkNN query pinned to a shard. Exactly one of plane
// and network is non-nil.
type session struct {
	plane   *core.PlaneQuery
	network *core.NetworkQuery
}

func (s *session) counters() metrics.Counters {
	if s.plane != nil {
		return *s.plane.Metrics()
	}
	return *s.network.Metrics()
}

// close releases the session's snapshot pin (network sessions hold none:
// the network diagram is shared and immutable).
func (s *session) close() {
	if s.plane != nil {
		s.plane.Close()
	}
}

// message is a mailbox envelope; the worker type-switches on it.
type message interface{ isMessage() }

// createMsg registers a new session under sid.
type createMsg struct {
	sid     SessionID
	network bool
	k       int
	rho     float64
	reply   chan error
}

// closeMsg removes session sid.
type closeMsg struct {
	sid   SessionID
	reply chan error
}

// batchEntry is one location update of a batch, fanned out to the owning
// shard; idx is the position of the result in the caller's results slice.
type batchEntry struct {
	idx int
	sid SessionID
	pos geom.Point
	net roadnet.Position
}

// batchMsg processes a run of location updates. The worker writes into
// results at the entries' disjoint indices and then signals reply once.
type batchMsg struct {
	network bool
	entries []batchEntry
	results []UpdateResult
	reply   chan struct{}
}

// statsMsg snapshots the shard's serving state.
type statsMsg struct {
	reply chan shardStats
}

type shardStats struct {
	sessions int
	updates  uint64
	counters metrics.Counters
	hist     metrics.Histogram
}

func (createMsg) isMessage() {}
func (closeMsg) isMessage()  {}
func (batchMsg) isMessage()  {}
func (statsMsg) isMessage()  {}

// run is the worker loop; it exits when the mailbox is closed. Between
// requests it drains epoch notifications and re-pins its sessions, so even
// dormant sessions release superseded snapshots promptly (correctness does
// not depend on it: every session also re-pins inside Update).
func (sh *shard) run() {
	defer close(sh.done)
	for {
		select {
		case msg, ok := <-sh.mailbox:
			if !ok {
				sh.shutdown()
				return
			}
			sh.handle(msg)
		case <-sh.notify:
			sh.sweep()
		}
	}
}

func (sh *shard) handle(msg message) {
	switch m := msg.(type) {
	case createMsg:
		m.reply <- sh.create(m)
	case closeMsg:
		s, ok := sh.sessions[m.sid]
		if !ok {
			m.reply <- fmt.Errorf("%w: %d", ErrUnknownSession, m.sid)
			return
		}
		s.close()
		delete(sh.sessions, m.sid)
		m.reply <- nil
	case batchMsg:
		sh.runBatch(m)
		m.reply <- struct{}{}
	case statsMsg:
		m.reply <- sh.stats()
	}
}

// shutdown releases every session's snapshot pin on engine close.
func (sh *shard) shutdown() {
	for _, s := range sh.sessions {
		s.close()
	}
	sh.sessions = nil
}

// sweep re-pins every plane session to the newest snapshot, applying the
// lazy-invalidation check inside PlaneQuery.Sync. Affected sessions
// recompute at their next location update; unaffected ones carry their
// guard sets over to the new snapshot unchanged.
func (sh *shard) sweep() {
	for _, s := range sh.sessions {
		if s.plane != nil {
			s.plane.Sync()
		}
	}
}

func (sh *shard) create(m createMsg) error {
	if m.network {
		q, err := core.NewNetworkQueryPinned(sh.store, m.k, m.rho)
		if err != nil {
			return err
		}
		sh.sessions[m.sid] = &session{network: q}
		return nil
	}
	q, err := core.NewPlaneQueryPinned(sh.store, m.k, m.rho)
	if err != nil {
		return err
	}
	sh.sessions[m.sid] = &session{plane: q}
	return nil
}

func (sh *shard) runBatch(m batchMsg) {
	for _, e := range m.entries {
		s, ok := sh.sessions[e.sid]
		if !ok {
			m.results[e.idx] = UpdateResult{Session: e.sid, Err: fmt.Errorf("%w: %d", ErrUnknownSession, e.sid)}
			continue
		}
		var knn []int
		var err error
		switch {
		case m.network && s.network != nil:
			start := time.Now()
			knn, err = s.network.Update(e.net)
			sh.observe(time.Since(start))
		case !m.network && s.plane != nil:
			start := time.Now()
			knn, err = s.plane.Update(e.pos)
			sh.observe(time.Since(start))
		default:
			// A no-op: not counted as a processed update so Stats
			// throughput and latency reflect real query work only.
			err = fmt.Errorf("engine: session %d is not a %s session", e.sid, batchKind(m.network))
		}
		// The processor's kNN slice is shared and rewritten on the session's
		// next update; copy before it leaves the worker goroutine (the
		// boundary fixed by the core package's slice-ownership contract).
		m.results[e.idx] = UpdateResult{Session: e.sid, KNN: append([]int(nil), knn...), Err: err}
	}
}

// observe accounts one processed location update.
func (sh *shard) observe(d time.Duration) {
	sh.hist.Record(d)
	sh.updates++
}

func batchKind(network bool) string {
	if network {
		return "network"
	}
	return "plane"
}

func (sh *shard) stats() shardStats {
	st := shardStats{
		sessions: len(sh.sessions),
		updates:  sh.updates,
		hist:     sh.hist,
	}
	for _, s := range sh.sessions {
		st.counters.Add(s.counters())
	}
	return st
}
