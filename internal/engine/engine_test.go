package engine

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/index"
	"repro/internal/netvor"
	"repro/internal/roadnet"
	"repro/internal/trajectory"
	"repro/internal/vortree"
	"repro/internal/workload"
)

var testBounds = geom.NewRect(geom.Pt(0, 0), geom.Pt(1000, 1000))

func newTestEngine(t *testing.T, nObjects, shards int) *Engine {
	t.Helper()
	e, err := New(Config{
		Shards:  shards,
		Bounds:  testBounds,
		Objects: workload.Uniform(nObjects, testBounds, 42),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// TestEngineManyConcurrentSessions is the serving acceptance test: 1000
// live sessions across 8 shards, driven by concurrent batched updates
// while a churn goroutine interleaves object inserts and deletes. Run
// with -race.
func TestEngineManyConcurrentSessions(t *testing.T) {
	const (
		nSessions = 1000
		nDrivers  = 8
		steps     = 12
		k         = 5
	)
	e := newTestEngine(t, 2000, 8)

	// Create sessions concurrently to exercise the create path too.
	sids := make([]SessionID, nSessions)
	var wg sync.WaitGroup
	for d := 0; d < nDrivers; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			for i := d; i < nSessions; i += nDrivers {
				sid, err := e.CreateSession(k, 1.6)
				if err != nil {
					t.Errorf("create %d: %v", i, err)
					return
				}
				sids[i] = sid
			}
		}(d)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Churn: interleaved data updates racing the location updates.
	churnDone := make(chan int)
	stop := make(chan struct{})
	go func() {
		rng := rand.New(rand.NewSource(7))
		n := 0
		var inserted []int
	loop:
		for n < 300 {
			select {
			case <-stop:
				break loop
			default:
			}
			if len(inserted) > 20 {
				id := inserted[0]
				inserted = inserted[1:]
				if err := e.RemoveObject(id); err != nil {
					t.Errorf("remove %d: %v", id, err)
				}
			} else {
				p := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
				id, err := e.InsertObject(p)
				if err != nil {
					t.Errorf("insert %v: %v", p, err)
				} else {
					inserted = append(inserted, id)
				}
			}
			n++
		}
		churnDone <- n
	}()

	// Drivers: each owns a slice of sessions and pushes batched updates.
	for d := 0; d < nDrivers; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			var mine []SessionID
			for i := d; i < nSessions; i += nDrivers {
				mine = append(mine, sids[i])
			}
			trajs := make([][]geom.Point, len(mine))
			for i := range mine {
				trajs[i] = trajectory.RandomWaypoint(testBounds, steps, 5, int64(1000*d+i))
			}
			for s := 0; s < steps; s++ {
				batch := make([]LocationUpdate, len(mine))
				for i, sid := range mine {
					batch[i] = LocationUpdate{Session: sid, Pos: trajs[i][s]}
				}
				results, err := e.UpdateBatch(batch)
				if err != nil {
					t.Errorf("driver %d step %d: %v", d, s, err)
					return
				}
				for i, r := range results {
					if r.Err != nil {
						t.Errorf("driver %d step %d session %d: %v", d, s, batch[i].Session, r.Err)
						return
					}
					if len(r.KNN) != k {
						t.Errorf("driver %d step %d: got %d results, want %d", d, s, len(r.KNN), k)
						return
					}
				}
			}
		}(d)
	}
	wg.Wait()
	close(stop)
	churned := <-churnDone
	if t.Failed() {
		t.FailNow()
	}
	if churned == 0 {
		t.Error("churn goroutine never ran")
	}

	st, err := e.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Sessions != nSessions {
		t.Errorf("sessions = %d, want %d", st.Sessions, nSessions)
	}
	if want := uint64(nSessions * steps); st.Updates != want {
		t.Errorf("updates = %d, want %d", st.Updates, want)
	}
	if st.Latency.Count != st.Updates {
		t.Errorf("latency count = %d, want %d", st.Latency.Count, st.Updates)
	}
	if st.Epoch != uint64(churned) {
		t.Errorf("epoch = %d, want %d churn updates", st.Epoch, churned)
	}
	if st.Counters.Recomputations == 0 || st.Counters.Validations == 0 {
		t.Errorf("implausible counters: %v", st.Counters)
	}
}

// TestEngineMatchesReference drives sessions through the sharded engine
// and the same trajectories through standalone single-threaded INS
// queries; results must agree exactly (replicas are deterministic).
func TestEngineMatchesReference(t *testing.T) {
	const (
		nSessions = 20
		steps     = 40
		k         = 4
	)
	objects := workload.Uniform(300, testBounds, 42)
	e := newTestEngine(t, 300, 4)

	sids := make([]SessionID, nSessions)
	refs := make([]*core.PlaneQuery, nSessions)
	trajs := make([][]geom.Point, nSessions)
	for i := range sids {
		sid, err := e.CreateSession(k, 1.6)
		if err != nil {
			t.Fatal(err)
		}
		sids[i] = sid
		ix, _, err := vortree.Build(testBounds, 16, objects)
		if err != nil {
			t.Fatal(err)
		}
		refs[i], err = core.NewPlaneQuery(ix, k, 1.6)
		if err != nil {
			t.Fatal(err)
		}
		trajs[i] = trajectory.RandomWaypoint(testBounds, steps, 8, int64(i))
	}

	for s := 0; s < steps; s++ {
		batch := make([]LocationUpdate, nSessions)
		for i := range sids {
			batch[i] = LocationUpdate{Session: sids[i], Pos: trajs[i][s]}
		}
		results, err := e.UpdateBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("step %d session %d: %v", s, i, r.Err)
			}
			want, err := refs[i].Update(trajs[i][s])
			if err != nil {
				t.Fatal(err)
			}
			if !equalInts(r.KNN, want) {
				t.Fatalf("step %d session %d: engine %v, reference %v", s, i, r.KNN, want)
			}
		}
	}
}

// TestEngineDataUpdateInvalidation checks the lazy invalidation semantics:
// an insert near a session shows up in its next result, a removal of a
// current kNN member disappears from it.
func TestEngineDataUpdateInvalidation(t *testing.T) {
	// A sparse corner-heavy layout so the query position's nearest object
	// is unambiguous.
	objects := []geom.Point{
		geom.Pt(100, 100), geom.Pt(900, 100), geom.Pt(100, 900),
		geom.Pt(900, 900), geom.Pt(500, 900),
	}
	e, err := New(Config{Shards: 2, Bounds: testBounds, Objects: objects})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	sid, err := e.CreateSession(1, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	pos := geom.Pt(480, 480)
	knn := mustUpdate(t, e, sid, pos)

	// Insert an object right at the query position: it must become the NN
	// at the next update.
	newID, err := e.InsertObject(geom.Pt(479, 481))
	if err != nil {
		t.Fatal(err)
	}
	if got := mustUpdate(t, e, sid, pos); len(got) != 1 || got[0] != newID {
		t.Fatalf("after insert: knn = %v, want [%d]", got, newID)
	}

	// Remove it again: the previous NN must come back.
	if err := e.RemoveObject(newID); err != nil {
		t.Fatal(err)
	}
	if got := mustUpdate(t, e, sid, pos); !equalInts(got, knn) {
		t.Fatalf("after remove: knn = %v, want %v", got, knn)
	}

	st, err := e.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 2 {
		t.Errorf("epoch = %d, want 2", st.Epoch)
	}
	if st.Objects != len(objects) {
		t.Errorf("objects = %d, want %d", st.Objects, len(objects))
	}
}

func mustUpdate(t *testing.T, e *Engine, sid SessionID, pos geom.Point) []int {
	t.Helper()
	results, err := e.UpdateBatch([]LocationUpdate{{Session: sid, Pos: pos}})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil {
		t.Fatal(results[0].Err)
	}
	return results[0].KNN
}

func TestEngineNetworkSessions(t *testing.T) {
	g, err := roadnet.GridNetwork(10, 10, testBounds, 0.1, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	sites := []int{0, 9, 37, 55, 73, 90, 99}
	e, err := New(Config{Shards: 4, Network: g, NetworkSites: sites})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// Reference query on its own replica.
	d, err := buildReferenceNetVor(g, sites)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.NewNetworkQuery(d, 2, 1.6)
	if err != nil {
		t.Fatal(err)
	}

	sid, err := e.CreateNetworkSession(2, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	route, err := roadnet.RandomWalkRoute(g, 0, 3000, 3)
	if err != nil {
		t.Fatal(err)
	}
	for dist := 0.0; dist <= route.Length(); dist += 25 {
		pos := route.PositionAt(dist)
		results, err := e.UpdateNetworkBatch([]NetworkLocationUpdate{{Session: sid, Pos: pos}})
		if err != nil {
			t.Fatal(err)
		}
		if results[0].Err != nil {
			t.Fatal(results[0].Err)
		}
		want, err := ref.Update(pos)
		if err != nil {
			t.Fatal(err)
		}
		if !equalInts(results[0].KNN, want) {
			t.Fatalf("at %v: engine %v, reference %v", pos, results[0].KNN, want)
		}
	}

	// A plane update against a network session is a per-entry error.
	results, err := e.UpdateBatch([]LocationUpdate{{Session: sid, Pos: geom.Pt(1, 1)}})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil {
		t.Error("plane update on network session succeeded")
	}
}

func TestEngineErrors(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}

	e := newTestEngine(t, 50, 4)
	if _, err := e.CreateSession(0, 1.6); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := e.CreateSession(3, 0.5); err == nil {
		t.Error("rho<1 accepted")
	}
	if _, err := e.CreateNetworkSession(2, 1.6); !errors.Is(err, ErrNoNetwork) {
		t.Errorf("network session without network: %v", err)
	}

	// Unknown sessions: engine-level close errors, per-entry batch errors.
	if err := e.CloseSession(12345); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("close unknown: %v", err)
	}
	if err := e.CloseSession(0); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("close zero: %v", err)
	}
	results, err := e.UpdateBatch([]LocationUpdate{{Session: 12345, Pos: geom.Pt(1, 1)}, {Session: 0, Pos: geom.Pt(1, 1)}})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if !errors.Is(r.Err, ErrUnknownSession) {
			t.Errorf("result %d: %v", i, r.Err)
		}
	}

	sid, err := e.CreateSession(3, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.CloseSession(sid); err != nil {
		t.Fatal(err)
	}
	if err := e.CloseSession(sid); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("double close: %v", err)
	}

	if err := e.RemoveObject(99999); !errors.Is(err, ErrUnknownObject) {
		t.Errorf("remove of unknown object: %v", err)
	}
	if _, err := e.InsertObject(geom.Pt(-1, -1)); !errors.Is(err, ErrOutOfBounds) {
		t.Errorf("out-of-bounds insert: %v", err)
	}
}

func TestEngineClose(t *testing.T) {
	e := newTestEngine(t, 50, 2)
	sid, err := e.CreateSession(2, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	if _, err := e.CreateSession(2, 1.6); !errors.Is(err, ErrClosed) {
		t.Errorf("create after close: %v", err)
	}
	if _, err := e.UpdateBatch([]LocationUpdate{{Session: sid}}); !errors.Is(err, ErrClosed) {
		t.Errorf("update after close: %v", err)
	}
	if err := e.CloseSession(sid); !errors.Is(err, ErrClosed) {
		t.Errorf("close session after close: %v", err)
	}
	if _, err := e.Stats(); !errors.Is(err, ErrClosed) {
		t.Errorf("stats after close: %v", err)
	}
	if _, err := e.InsertObject(geom.Pt(1, 1)); !errors.Is(err, ErrClosed) {
		t.Errorf("insert after close: %v", err)
	}
	// ErrClosed wins over input validation on a closed engine.
	if _, err := e.InsertObject(geom.Pt(-1, -1)); !errors.Is(err, ErrClosed) {
		t.Errorf("out-of-bounds insert after close: %v", err)
	}
}

func buildReferenceNetVor(g *roadnet.Graph, sites []int) (*netvor.Diagram, error) {
	// The graph is shared with the engine's diagram: reads (and their
	// relaxation accounting) are safe across goroutines.
	return netvor.Build(g, sites)
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestApplyMutations covers the pre-decoded batch entry point the binary
// ingest path uses: one call publishes the whole batch, ids parallel the
// mutations, and the state matches the per-object wrappers.
func TestApplyMutations(t *testing.T) {
	e := newTestEngine(t, 50, 2)
	st0, err := e.Stats()
	if err != nil {
		t.Fatal(err)
	}
	ids, err := e.ApplyMutations(context.Background(), []index.Mutation{
		{Insert: true, P: geom.Pt(10, 20)},
		{Insert: true, P: geom.Pt(30, 40)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] < 0 || ids[1] < 0 || ids[0] == ids[1] {
		t.Fatalf("bad insert ids %v", ids)
	}
	// Remove one of them in a mixed batch with another insert.
	ids2, err := e.ApplyMutations(context.Background(), []index.Mutation{
		{ID: ids[0]},
		{Insert: true, P: geom.Pt(50, 60)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ids2[0] != ids[0] {
		t.Fatalf("remove must echo the id: got %d want %d", ids2[0], ids[0])
	}
	st, err := e.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Objects != st0.Objects+2 {
		t.Fatalf("objects = %d, want %d", st.Objects, st0.Objects+2)
	}
	// One epoch per mutation, published batch-wise.
	if st.Epoch != st0.Epoch+4 {
		t.Fatalf("epoch = %d, want %d", st.Epoch, st0.Epoch+4)
	}

	// Validation: out-of-bounds inserts are rejected whole-batch before
	// the store sees them; empty batches are free.
	if _, err := e.ApplyMutations(context.Background(), []index.Mutation{
		{Insert: true, P: geom.Pt(-5000, 0)},
	}); !errors.Is(err, ErrOutOfBounds) {
		t.Fatalf("want ErrOutOfBounds, got %v", err)
	}
	if _, err := e.ApplyMutations(context.Background(), nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if _, err := e.ApplyMutations(context.Background(), []index.Mutation{{ID: 1 << 30}}); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("want ErrUnknownObject, got %v", err)
	}
}
