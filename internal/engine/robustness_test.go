package engine

import (
	"context"
	"errors"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/index"
	"repro/internal/wal"
	"repro/internal/workload"
)

// TestEngineKillHealRoundTrip is the PR's acceptance test, end to end at
// the engine layer: with a persistent fsync failure armed the engine
// enters degraded mode (object writes rejected with ErrDegraded, location
// updates keep serving, the WAL un-advanced), disarming the fault lets
// the background probe restore durability and writes, and a subsequent
// crash + recovery replays to a store identical to a kNN probe taken
// before the crash. Run with -race.
func TestEngineKillHealRoundTrip(t *testing.T) {
	defer fault.DisarmAll()
	dir := t.TempDir()
	objects := workload.Uniform(500, testBounds, 7)
	open := func() (*wal.Manager, *Engine) {
		t.Helper()
		mgr, err := wal.Open(index.Config{Bounds: testBounds, Objects: objects}, wal.Options{
			Dir:          dir,
			Sync:         wal.SyncAlways,
			DegradeAfter: 2,
			ProbeEvery:   5 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		e, err := New(Config{Shards: 2, Bounds: testBounds, WAL: mgr})
		if err != nil {
			t.Fatal(err)
		}
		return mgr, e
	}
	mgr, e := open()

	sid, err := e.CreateSession(5, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	update := func(p geom.Point) ([]int, error) {
		results, err := e.UpdateBatch([]LocationUpdate{{Session: sid, Pos: p}})
		if err != nil {
			return nil, err
		}
		return results[0].KNN, results[0].Err
	}

	if _, err := e.InsertObject(geom.Pt(500, 500)); err != nil {
		t.Fatalf("healthy insert: %v", err)
	}
	epochBefore := mgr.Store().Epoch()

	// Kill the disk: writes must degrade, reads must not.
	fault.WALFsyncErr.Arm(fault.Spec{})
	for i := 0; i < 3 && !e.Degraded(); i++ {
		if _, err := e.InsertObject(geom.Pt(600, 600)); err == nil {
			t.Fatal("insert succeeded with wal.fsync.err armed")
		}
	}
	if !e.Degraded() {
		t.Fatal("engine not degraded after repeated durability failures")
	}
	if _, err := e.InsertObject(geom.Pt(601, 601)); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded insert error = %v, want ErrDegraded", err)
	}
	if err := e.RemoveObject(1); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded remove error = %v, want ErrDegraded", err)
	}
	for i := 0; i < 10; i++ {
		if _, err := update(geom.Pt(float64(100+i*50), 300)); err != nil {
			t.Fatalf("location update %d failed while degraded: %v", i, err)
		}
	}
	if got := mgr.Store().Epoch(); got != epochBefore {
		t.Fatalf("degraded writes advanced the WAL store: epoch %d, want %d", got, epochBefore)
	}
	st, err := e.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Degraded {
		t.Fatal("Stats.Degraded = false while degraded")
	}

	// Heal the disk: the probe must bring writes back without a restart.
	fault.WALFsyncErr.Disarm()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := e.InsertObject(geom.Pt(700, 700)); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("writes never recovered after the fault was disarmed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if e.Degraded() {
		t.Fatal("engine still degraded after a successful write")
	}

	// Crash by abandonment (fsync=always: all acknowledged writes are on
	// disk) and recover: the same probe position must see the same kNN.
	probe := geom.Pt(512, 512)
	preKNN, perr := update(probe)
	if perr != nil {
		t.Fatal(perr)
	}
	sort.Ints(preKNN)
	mgr.Store().Close() // no mgr.Close(): SIGKILL semantics
	e.Close()

	mgr2, e2 := open()
	defer func() { mgr2.Close(); e2.Close(); mgr2.Store().Close() }()
	sid2, err := e2.CreateSession(5, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	results, err := e2.UpdateBatch([]LocationUpdate{{Session: sid2, Pos: probe}})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil {
		t.Fatal(results[0].Err)
	}
	postKNN := append([]int(nil), results[0].KNN...)
	sort.Ints(postKNN)
	if len(preKNN) != len(postKNN) {
		t.Fatalf("post-crash kNN %v, want %v", postKNN, preKNN)
	}
	for i := range preKNN {
		if preKNN[i] != postKNN[i] {
			t.Fatalf("post-crash kNN %v, want %v", postKNN, preKNN)
		}
	}
}

// TestEngineShedsAtHighWatermark drives a single slow shard (injected
// per-batch apply delay) with a tiny mailbox from many goroutines:
// admission control must reject batches with ErrOverloaded instead of
// queueing without bound, and the shed counter must account every
// rejected entry.
func TestEngineShedsAtHighWatermark(t *testing.T) {
	defer fault.DisarmAll()
	e, err := New(Config{
		Shards:       1,
		Bounds:       testBounds,
		Objects:      workload.Uniform(100, testBounds, 3),
		MailboxDepth: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	sids := make([]SessionID, 8)
	for i := range sids {
		if sids[i], err = e.CreateSession(3, 1.6); err != nil {
			t.Fatal(err)
		}
	}
	fault.ShardApplyDelay.Arm(fault.Spec{Delay: 2 * time.Millisecond})

	var overloaded, ok int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				_, err := e.UpdateBatch([]LocationUpdate{{
					Session: sids[w],
					Pos:     geom.Pt(float64((w*97+i*13)%999)+1, float64((w*61+i*29)%999)+1),
				}})
				mu.Lock()
				switch {
				case errors.Is(err, ErrOverloaded):
					overloaded++
				case err == nil:
					ok++
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	fault.ShardApplyDelay.Disarm()

	if overloaded == 0 {
		t.Fatal("no batch was shed: mailbox high watermark never triggered")
	}
	if ok == 0 {
		t.Fatal("every batch was shed: admission control over-rejects")
	}
	st, err := e.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Shed != uint64(overloaded) {
		t.Fatalf("Stats.Shed = %d, want %d (one entry per shed single-entry batch)", st.Shed, overloaded)
	}
}

// TestEngineDropsExpiredBatches occupies the one shard worker with a
// slow batch, then enqueues a batch whose context deadline expires while
// it waits in the mailbox: the shard must drop it (per-entry ErrExpired,
// no apply) and count it.
func TestEngineDropsExpiredBatches(t *testing.T) {
	defer fault.DisarmAll()
	e, err := New(Config{
		Shards:  1,
		Bounds:  testBounds,
		Objects: workload.Uniform(100, testBounds, 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	occupier, err := e.CreateSession(3, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	victim, err := e.CreateSession(3, 1.6)
	if err != nil {
		t.Fatal(err)
	}

	fault.ShardApplyDelay.Arm(fault.Spec{Delay: 30 * time.Millisecond})
	done := make(chan struct{})
	go func() {
		defer close(done)
		e.UpdateBatch([]LocationUpdate{{Session: occupier, Pos: geom.Pt(100, 100)}})
	}()
	time.Sleep(5 * time.Millisecond) // worker dequeues the occupier and sleeps in the failpoint

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	results, err := e.UpdateBatchCtx(ctx, []LocationUpdate{{Session: victim, Pos: geom.Pt(200, 200)}})
	if err != nil {
		t.Fatalf("UpdateBatchCtx returned batch error %v, want per-entry results", err)
	}
	if !errors.Is(results[0].Err, ErrExpired) {
		t.Fatalf("expired entry error = %v, want ErrExpired", results[0].Err)
	}
	<-done
	fault.ShardApplyDelay.Disarm()

	st, err := e.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Expired == 0 {
		t.Fatal("Stats.Expired = 0 after a deadline drop")
	}
	// The victim's position must not have been applied: its next update
	// from the same spot reports the move as a fresh one, which we can
	// only observe indirectly — the expired entry carried no kNN.
	if len(results[0].KNN) != 0 {
		t.Fatalf("expired entry carried a kNN result: %v", results[0].KNN)
	}
}
