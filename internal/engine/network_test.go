package engine

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netvor"
	"repro/internal/roadnet"
	"repro/internal/stream"
)

// testNetwork builds the jittered grid road network the network serving
// tests run on, plus a deterministic initial site set.
func testNetwork(t *testing.T, rows, cols, nSites int, seed int64) (*roadnet.Graph, []int) {
	t.Helper()
	g, err := roadnet.GridNetwork(rows, cols, testBounds, 0.2, 0.3, seed)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed + 1))
	sites := rng.Perm(g.NumVertices())[:nSites]
	return g, sites
}

// refNetQuery is a single-threaded reference session: a core.NetworkQuery
// over its own raw diagram, mutated in lockstep with the engine's store
// under the engine-identical lazy-invalidation rule (invalidate when a
// site mutation can disturb the guard cells; recompute at the next
// update) — the network mirror of refQuery.
type refNetQuery struct {
	d *netvor.Diagram
	q *core.NetworkQuery
}

func newRefNetQuery(t *testing.T, g *roadnet.Graph, sites []int, k int, rho float64) *refNetQuery {
	t.Helper()
	d, err := netvor.Build(g, sites)
	if err != nil {
		t.Fatal(err)
	}
	q, err := core.NewNetworkQuery(d, k, rho)
	if err != nil {
		t.Fatal(err)
	}
	return &refNetQuery{d: d, q: q}
}

func (r *refNetQuery) insert(t *testing.T, v int) {
	t.Helper()
	if err := r.d.Insert(v); err != nil {
		t.Fatal(err)
	}
	nb, nbErr := r.d.Neighbors(v)
	if nbErr != nil || r.q.AffectedBySiteInsert(v, nb) {
		r.q.Invalidate()
	}
}

func (r *refNetQuery) remove(t *testing.T, v int) {
	t.Helper()
	nb, nbErr := r.d.Neighbors(v)
	if nbErr != nil || r.q.AffectedBySiteRemove(v, nb) {
		r.q.Invalidate()
	}
	if err := r.d.Remove(v); err != nil {
		t.Fatal(err)
	}
}

func sortedCopy(a []int) []int {
	out := append([]int(nil), a...)
	sort.Ints(out)
	return out
}

// TestEngineNetworkEquivalenceUnderMutations is the road-network
// counterpart of TestEngineEquivalenceUnderMutations and the acceptance
// test of network serving parity: network sessions spread across every
// shard must return exactly the answers of (1) single-threaded reference
// processors fed the same site mutations and (2) a stateless oracle that
// rebuilds the network Voronoi diagram from scratch at every step — the
// oracle guards against the engine and the reference sharing an unsound
// invalidation rule. Run under -race in CI, it also proves the shared
// frozen diagrams are read without synchronization bugs.
func TestEngineNetworkEquivalenceUnderMutations(t *testing.T) {
	const (
		nSessions = 10
		shards    = 4
		steps     = 40
		k         = 4
		rho       = 1.6
		nSites    = 40
	)
	g, sites := testNetwork(t, 20, 20, nSites, 17)
	e, err := New(Config{Shards: shards, Network: g, NetworkSites: sites})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	rng := rand.New(rand.NewSource(23))
	sids := make([]SessionID, nSessions)
	refs := make([]*refNetQuery, nSessions)
	routes := make([]*roadnet.Route, nSessions)
	for i := range sids {
		sid, err := e.CreateNetworkSession(k, rho)
		if err != nil {
			t.Fatal(err)
		}
		sids[i] = sid
		refs[i] = newRefNetQuery(t, g, sites, k, rho)
		route, err := roadnet.RandomWalkRoute(g, rng.Intn(g.NumVertices()), 2000, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		routes[i] = route
	}

	live := append([]int(nil), sites...)
	isSite := make(map[int]bool, len(live))
	for _, s := range live {
		isSite[s] = true
	}
	var added []int
	mutations := 0
	for s := 0; s < steps; s++ {
		// One site mutation per step: alternate inserts and removals.
		if s%3 == 2 && len(added) > 2 {
			victim := added[0]
			added = added[1:]
			if err := e.RemoveNetworkObject(victim); err != nil {
				t.Fatalf("step %d remove site %d: %v", s, victim, err)
			}
			isSite[victim] = false
			for i, lv := range live {
				if lv == victim {
					live = append(live[:i], live[i+1:]...)
					break
				}
			}
			for _, r := range refs {
				r.remove(t, victim)
			}
		} else {
			v := rng.Intn(g.NumVertices())
			for isSite[v] {
				v = rng.Intn(g.NumVertices())
			}
			if _, err := e.InsertNetworkObject(v); err != nil {
				t.Fatalf("step %d insert site %d: %v", s, v, err)
			}
			isSite[v] = true
			live = append(live, v)
			added = append(added, v)
			for _, r := range refs {
				r.insert(t, v)
			}
		}
		mutations++

		// The stateless oracle: a diagram rebuilt from scratch over the
		// live site set answers every probe with ground truth.
		oracle, err := netvor.Build(g, live)
		if err != nil {
			t.Fatalf("step %d oracle: %v", s, err)
		}

		batch := make([]NetworkLocationUpdate, nSessions)
		dist := float64(s+1) * 40
		for i := range sids {
			batch[i] = NetworkLocationUpdate{Session: sids[i], Pos: routes[i].PositionAt(dist)}
		}
		results, err := e.UpdateNetworkBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("step %d session %d: %v", s, i, r.Err)
			}
			want, err := refs[i].q.Update(batch[i].Pos)
			if err != nil {
				t.Fatal(err)
			}
			if !equalInts(r.KNN, want) {
				t.Fatalf("step %d session %d: engine %v, reference %v", s, i, r.KNN, want)
			}
			truth := oracle.KNN(batch[i].Pos, k)
			if got, oracleSet := sortedCopy(r.KNN), sortedCopy(truth); !equalInts(got, oracleSet) {
				t.Fatalf("step %d session %d: engine set %v, rebuilt-from-scratch oracle %v", s, i, got, oracleSet)
			}
		}
	}

	// After a full round of updates every session has re-pinned: exactly
	// one snapshot version remains live, and the epoch counted every site
	// mutation.
	st, err := e.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Snapshots != 1 {
		t.Errorf("live snapshots = %d, want 1 (old versions must be collected)", st.Snapshots)
	}
	if st.Epoch != uint64(mutations) {
		t.Errorf("epoch = %d, want %d", st.Epoch, mutations)
	}
	if st.NetworkObjects != len(live) {
		t.Errorf("network objects = %d, want %d", st.NetworkObjects, len(live))
	}
}

// TestStreamNetworkEagerPush: a watched network session must receive a
// data-cause push with the inserted site in its kNN without ever polling —
// the network side of TestStreamEagerPushWithoutPolling.
func TestStreamNetworkEagerPush(t *testing.T) {
	g, sites := testNetwork(t, 16, 16, 30, 5)
	e, err := New(Config{Shards: 4, Network: g, NetworkSites: sites})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	sid, err := e.CreateNetworkSession(3, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	// Park the session at a vertex that is not a site, so inserting a site
	// at that very vertex makes it the trivially nearest neighbor.
	home := 0
	isSite := make(map[int]bool)
	for _, s := range sites {
		isSite[s] = true
	}
	for isSite[home] {
		home++
	}
	res, err := e.UpdateNetworkBatch([]NetworkLocationUpdate{{Session: sid, Pos: roadnet.VertexPosition(home)}})
	if err != nil || res[0].Err != nil {
		t.Fatalf("update: %v / %v", err, res[0].Err)
	}

	sub := e.Stream().Subscribe(0, uint64(sid))
	defer sub.Close()

	id, err := e.InsertNetworkObject(home)
	if err != nil {
		t.Fatal(err)
	}

	deadline := time.After(5 * time.Second)
	for {
		select {
		case <-deadline:
			t.Fatal("no push within 5s of the site insert")
		case <-sub.Wake():
			for ev, ok := sub.Next(); ok; ev, ok = sub.Next() {
				if ev.Cause != stream.CauseData {
					continue
				}
				found := false
				for _, a := range ev.Added {
					found = found || a == id
				}
				if !found {
					t.Fatalf("data event %+v does not add site %d", ev, id)
				}
				return
			}
		}
	}
}
