package engine

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/trajectory"
	"repro/internal/vortree"
	"repro/internal/workload"
)

// refQuery is a single-threaded reference session: a core.PlaneQuery over
// its own raw index replica, mutated in lockstep with the engine's store
// under the engine-identical lazy-invalidation rule (invalidate when a
// mutation can affect the guard sets; recompute at the next update).
type refQuery struct {
	ix *vortree.Index
	q  *core.PlaneQuery
}

func newRefQuery(t *testing.T, objects []geom.Point, k int, rho float64) *refQuery {
	t.Helper()
	ix, _, err := vortree.Build(testBounds, 16, objects)
	if err != nil {
		t.Fatal(err)
	}
	q, err := core.NewPlaneQuery(ix, k, rho)
	if err != nil {
		t.Fatal(err)
	}
	return &refQuery{ix: ix, q: q}
}

func (r *refQuery) insert(t *testing.T, p geom.Point, wantID int) {
	t.Helper()
	id, err := r.ix.Insert(p)
	if err != nil {
		t.Fatal(err)
	}
	if id != wantID {
		t.Fatalf("reference id %d, engine id %d", id, wantID)
	}
	nb, nbErr := r.ix.Neighbors(id)
	if nbErr != nil || r.q.AffectedByInsert(id, p, nb) {
		r.q.Invalidate()
	}
}

func (r *refQuery) remove(t *testing.T, id int) {
	t.Helper()
	if r.q.UsesObject(id) {
		r.q.Invalidate()
	}
	if err := r.ix.Remove(id); err != nil {
		t.Fatal(err)
	}
}

// TestEngineEquivalenceUnderMutations is the snapshot-architecture
// acceptance test: sessions spread across every shard of the engine must
// return exactly the answers of single-threaded INS processors across a
// mutation-heavy workload (a data update between every location-update
// step).
func TestEngineEquivalenceUnderMutations(t *testing.T) {
	const (
		nSessions = 12
		shards    = 4
		steps     = 50
		k         = 4
	)
	objects := workload.Uniform(400, testBounds, 42)
	e, err := New(Config{Shards: shards, Bounds: testBounds, Objects: objects})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	sids := make([]SessionID, nSessions)
	refs := make([]*refQuery, nSessions)
	trajs := make([][]geom.Point, nSessions)
	for i := range sids {
		sid, err := e.CreateSession(k, 1.6)
		if err != nil {
			t.Fatal(err)
		}
		sids[i] = sid
		refs[i] = newRefQuery(t, objects, k, 1.6)
		trajs[i] = trajectory.RandomWaypoint(testBounds, steps, 12, int64(i))
	}

	var inserted []int
	for s := 0; s < steps; s++ {
		// One data update per step: alternate inserts and removals.
		if s%3 == 2 && len(inserted) > 3 {
			id := inserted[0]
			inserted = inserted[1:]
			if err := e.RemoveObject(id); err != nil {
				t.Fatalf("step %d remove %d: %v", s, id, err)
			}
			for _, r := range refs {
				r.remove(t, id)
			}
		} else {
			p := geom.Pt(float64((s*131)%1000), float64((s*373)%1000))
			id, err := e.InsertObject(p)
			if err != nil {
				t.Fatalf("step %d insert: %v", s, err)
			}
			inserted = append(inserted, id)
			for _, r := range refs {
				r.insert(t, p, id)
			}
		}

		batch := make([]LocationUpdate, nSessions)
		for i := range sids {
			batch[i] = LocationUpdate{Session: sids[i], Pos: trajs[i][s]}
		}
		results, err := e.UpdateBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("step %d session %d: %v", s, i, r.Err)
			}
			want, err := refs[i].q.Update(trajs[i][s])
			if err != nil {
				t.Fatal(err)
			}
			if !equalInts(r.KNN, want) {
				t.Fatalf("step %d session %d: engine %v, reference %v", s, i, r.KNN, want)
			}
		}
	}

	// After a full round of updates every session has re-pinned: exactly
	// one snapshot version remains live.
	st, err := e.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Snapshots != 1 {
		t.Errorf("live snapshots = %d, want 1 (old versions must be collected)", st.Snapshots)
	}
	if st.Epoch != uint64(steps) {
		t.Errorf("epoch = %d, want %d", st.Epoch, steps)
	}
}

// TestEngineCrossShardCoherence pins identical sessions (same k, rho,
// trajectory) to different shards and interleaves object churn with the
// batched location updates: because every mutation happens-before the next
// batch and all sessions re-pin to the same snapshot, answers must be
// identical across shards at every step. Concurrent stats polling and a
// second batch stream exercise the lock-free read path under -race.
func TestEngineCrossShardCoherence(t *testing.T) {
	const (
		shards = 8
		steps  = 40
		k      = 5
	)
	e, err := New(Config{Shards: shards, Bounds: testBounds, Objects: workload.Uniform(1000, testBounds, 9)})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// One session per shard (ids are assigned round-robin, so `shards`
	// consecutive sessions land on `shards` distinct shards), all driven
	// through the same trajectory.
	sids := make([]SessionID, shards)
	for i := range sids {
		sid, err := e.CreateSession(k, 1.6)
		if err != nil {
			t.Fatal(err)
		}
		sids[i] = sid
	}
	// Extra background sessions keep the other mailboxes busy.
	extra := make([]SessionID, shards)
	for i := range extra {
		sid, err := e.CreateSession(k, 1.6)
		if err != nil {
			t.Fatal(err)
		}
		extra[i] = sid
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // concurrent stats polling
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if _, err := e.Stats(); err != nil {
					t.Errorf("stats: %v", err)
					return
				}
			}
		}
	}()
	go func() { // concurrent background batches on the extra sessions
		defer wg.Done()
		traj := trajectory.RandomWaypoint(testBounds, steps*4, 7, 77)
		for s := 0; ; s++ {
			select {
			case <-stop:
				return
			default:
			}
			batch := make([]LocationUpdate, len(extra))
			for i, sid := range extra {
				batch[i] = LocationUpdate{Session: sid, Pos: traj[s%len(traj)]}
			}
			if _, err := e.UpdateBatch(batch); err != nil {
				t.Errorf("background batch: %v", err)
				return
			}
		}
	}()

	traj := trajectory.RandomWaypoint(testBounds, steps, 15, 5)
	var inserted []int
	for s := 0; s < steps; s++ {
		// Interleave data updates with the batches. The mutation completes
		// (snapshot published) before the batch is issued, so every
		// session syncs to an epoch >= it.
		if s%2 == 0 {
			p := geom.Pt(float64((s*211)%1000), float64((s*97)%1000))
			id, err := e.InsertObject(p)
			if err != nil {
				t.Fatal(err)
			}
			inserted = append(inserted, id)
		} else if len(inserted) > 2 {
			id := inserted[0]
			inserted = inserted[1:]
			if err := e.RemoveObject(id); err != nil {
				t.Fatal(err)
			}
		}

		batch := make([]LocationUpdate, len(sids))
		for i, sid := range sids {
			batch[i] = LocationUpdate{Session: sid, Pos: traj[s]}
		}
		results, err := e.UpdateBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		first := results[0]
		if first.Err != nil {
			t.Fatalf("step %d: %v", s, first.Err)
		}
		for i, r := range results[1:] {
			if r.Err != nil {
				t.Fatalf("step %d session %d: %v", s, i+1, r.Err)
			}
			if !equalInts(r.KNN, first.KNN) {
				t.Fatalf("step %d: shard answers diverge: %v vs %v", s, first.KNN, r.KNN)
			}
		}
	}
	close(stop)
	wg.Wait()
}
