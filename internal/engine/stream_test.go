package engine

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/stream"
	"repro/internal/workload"
)

// collector consumes a subscriber on its own goroutine and keeps, per
// session, the ordered event log plus the view a delta-applying client
// would hold.
type collector struct {
	mu     sync.Mutex
	events map[uint64][]stream.Event
	stop   chan struct{}
	wg     sync.WaitGroup
}

func collect(sub *stream.Subscriber) *collector {
	c := &collector{events: make(map[uint64][]stream.Event), stop: make(chan struct{})}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for {
			select {
			case <-c.stop:
				return
			case <-sub.Done():
				return
			case <-sub.Wake():
				for ev, ok := sub.Next(); ok; ev, ok = sub.Next() {
					c.mu.Lock()
					c.events[ev.Session] = append(c.events[ev.Session], ev)
					c.mu.Unlock()
				}
			}
		}
	}()
	return c
}

func (c *collector) close() {
	close(c.stop)
	c.wg.Wait()
}

// latest returns the full kNN set of the session's newest event (nil when
// no event arrived yet).
func (c *collector) latest(sid uint64) []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	evs := c.events[sid]
	if len(evs) == 0 {
		return nil
	}
	return evs[len(evs)-1].KNN
}

func (c *collector) log(sid uint64) []stream.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]stream.Event(nil), c.events[sid]...)
}

func sameMembers(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	in := make(map[int]struct{}, len(a))
	for _, id := range a {
		in[id] = struct{}{}
	}
	for _, id := range b {
		if _, ok := in[id]; !ok {
			return false
		}
	}
	return true
}

// applyDelta checks ev's delta against the consumer's view and returns
// the new view: (view \ Removed) ∪ Added must have exactly the members of
// ev.KNN, or the delta chain is corrupt.
func applyDelta(t *testing.T, view []int, ev stream.Event) []int {
	t.Helper()
	next := make(map[int]struct{}, len(view)+len(ev.Added))
	for _, id := range view {
		next[id] = struct{}{}
	}
	for _, id := range ev.Removed {
		if _, ok := next[id]; !ok {
			t.Errorf("session %d seq %d removes %d not in the consumer view", ev.Session, ev.Seq, id)
		}
		delete(next, id)
	}
	for _, id := range ev.Added {
		if _, ok := next[id]; ok {
			t.Errorf("session %d seq %d adds %d already in the consumer view", ev.Session, ev.Seq, id)
		}
		next[id] = struct{}{}
	}
	out := make([]int, 0, len(next))
	for id := range next {
		out = append(out, id)
	}
	if !sameMembers(out, ev.KNN) {
		t.Errorf("session %d seq %d: delta-applied view %v != event kNN %v", ev.Session, ev.Seq, out, ev.KNN)
	}
	return ev.KNN
}

// TestStreamNotificationOrdering (run with -race) proves the ISSUE's
// ordering contract: across shard boundaries, a subscriber observes the
// post-insert kNN for every affected session, with per-session sequence
// numbers strictly increasing and every delta applying cleanly onto the
// previous one — no event lost, duplicated, or reordered.
func TestStreamNotificationOrdering(t *testing.T) {
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(1000, 1000))
	e, err := New(Config{Shards: 8, Bounds: bounds, Objects: workload.Uniform(300, bounds, 7)})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	const (
		nSessions = 64
		k         = 4
	)
	rng := rand.New(rand.NewSource(99))
	sids := make([]SessionID, nSessions)
	pos := make([]geom.Point, nSessions)
	batch := make([]LocationUpdate, nSessions)
	for i := range sids {
		sid, err := e.CreateSession(k, 1.6)
		if err != nil {
			t.Fatal(err)
		}
		sids[i] = sid
		pos[i] = geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		batch[i] = LocationUpdate{Session: sid, Pos: pos[i]}
	}

	sub := e.Stream().Subscribe(0) // wildcard: every session, every shard
	c := collect(sub)
	defer c.close()
	defer sub.Close()

	// Baseline: one location update per session; each publishes its first
	// event (full kNN as Added).
	results, err := e.UpdateBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("session %d: %v", r.Session, r.Err)
		}
	}

	// Data churn: insert objects right next to sessions (guaranteed to
	// enter their kNN) plus some background noise, across all shards.
	for i := 0; i < 40; i++ {
		var p geom.Point
		if i%2 == 0 {
			at := pos[(i*7)%nSessions]
			p = geom.Pt(at.X+0.25+rng.Float64(), at.Y+0.25+rng.Float64())
		} else {
			p = geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		}
		if !bounds.Contains(p) {
			p = geom.Pt(500+rng.Float64(), 500+rng.Float64())
		}
		if _, err := e.InsertObject(p); err != nil {
			t.Fatal(err)
		}
	}

	// Ground truth: a fresh session at each position sees the post-insert
	// kNN through the ordinary pull path.
	truth := make([][]int, nSessions)
	for i := range truth {
		vid, err := e.CreateSession(k, 1.6)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.UpdateBatch([]LocationUpdate{{Session: vid, Pos: pos[i]}})
		if err != nil || res[0].Err != nil {
			t.Fatalf("verify session: %v / %v", err, res[0].Err)
		}
		truth[i] = res[0].KNN
		if err := e.CloseSession(vid); err != nil {
			t.Fatal(err)
		}
	}

	// The subscribers' views must converge to the ground truth without any
	// session ever polling again.
	deadline := time.Now().Add(10 * time.Second)
	for {
		stale := -1
		for i := range sids {
			view := c.latest(uint64(sids[i]))
			if view == nil {
				view = results[i].KNN // only baseline event coalesced away — impossible here, but be safe
			}
			if !sameMembers(view, truth[i]) {
				stale = i
				break
			}
		}
		if stale < 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("session %d never converged: view %v, want %v (events: %+v)",
				sids[stale], c.latest(uint64(sids[stale])), truth[stale], c.log(uint64(sids[stale])))
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Per-session event-log invariants: strictly increasing seq, strictly
	// increasing epoch on data events, and a clean delta chain from the
	// empty view to the final kNN.
	dataEvents := 0
	for i := range sids {
		evs := c.log(uint64(sids[i]))
		if len(evs) == 0 {
			t.Errorf("session %d: no events at all", sids[i])
			continue
		}
		var view []int
		var lastSeq uint64
		for _, ev := range evs {
			if ev.Seq <= lastSeq {
				t.Errorf("session %d: seq %d after %d — reordered or duplicated", sids[i], ev.Seq, lastSeq)
			}
			lastSeq = ev.Seq
			if ev.Cause == stream.CauseData {
				dataEvents++
			}
			view = applyDelta(t, view, ev)
		}
		if !sameMembers(view, truth[i]) {
			t.Errorf("session %d: replayed view %v != ground truth %v", sids[i], view, truth[i])
		}
	}
	if dataEvents == 0 {
		t.Error("no data-update events observed; eager recompute path never fired")
	}
}

// TestStreamEagerPushWithoutPolling is the engine-level half of the
// acceptance criterion: a subscribed session receives the post-insert kNN
// delta triggered purely by the data update — the session never calls
// Update again.
func TestStreamEagerPushWithoutPolling(t *testing.T) {
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(1000, 1000))
	e, err := New(Config{Shards: 4, Bounds: bounds, Objects: workload.Uniform(200, bounds, 3)})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	sid, err := e.CreateSession(3, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.UpdateBatch([]LocationUpdate{{Session: sid, Pos: geom.Pt(500, 500)}})
	if err != nil || res[0].Err != nil {
		t.Fatalf("update: %v / %v", err, res[0].Err)
	}

	sub := e.Stream().Subscribe(0, uint64(sid))
	defer sub.Close()

	// This object lands a hair from the session — it must become its 1-NN.
	id, err := e.InsertObject(geom.Pt(500.01, 500.01))
	if err != nil {
		t.Fatal(err)
	}

	deadline := time.After(5 * time.Second)
	for {
		select {
		case <-deadline:
			t.Fatal("no push within 5s of the insert")
		case <-sub.Wake():
			for ev, ok := sub.Next(); ok; ev, ok = sub.Next() {
				if ev.Cause != stream.CauseData {
					continue
				}
				found := false
				for _, a := range ev.Added {
					found = found || a == id
				}
				if !found {
					t.Fatalf("data event %+v does not add object %d", ev, id)
				}
				inKNN := false
				for _, m := range ev.KNN {
					inKNN = inKNN || m == id
				}
				if !inKNN {
					t.Fatalf("pushed kNN %v misses the inserted object %d", ev.KNN, id)
				}
				return
			}
		}
	}
}

// TestStreamDeltaChainSurvivesRefreshError: when removals make k
// unsatisfiable, a watched session's eager recompute fails — the
// subscriber must then see the transition to the empty view, and the
// eventual recovery must delta from that empty baseline, keeping the
// delta chain exact with no undetectable gap.
func TestStreamDeltaChainSurvivesRefreshError(t *testing.T) {
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))
	objs := workload.Uniform(6, bounds, 21)
	e, err := New(Config{Shards: 2, Bounds: bounds, Objects: objs})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	sid, err := e.CreateSession(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	pos := geom.Pt(50, 50)
	if res, err := e.UpdateBatch([]LocationUpdate{{Session: sid, Pos: pos}}); err != nil || res[0].Err != nil {
		t.Fatalf("update: %v / %v", err, res[0].Err)
	}

	sub := e.Stream().Subscribe(0, uint64(sid))
	c := collect(sub)
	defer c.close()
	defer sub.Close()

	// The client baseline, exactly as an SSE subscriber obtains it.
	st0, err := e.State(sid)
	if err != nil {
		t.Fatal(err)
	}

	// Drop to 4 objects: k=5 is now unsatisfiable, the eager recompute
	// errors, and the subscriber must be told its view is stale.
	if err := e.RemoveObject(0); err != nil {
		t.Fatal(err)
	}
	if err := e.RemoveObject(1); err != nil {
		t.Fatal(err)
	}
	waitFor := func(desc string, pred func([]stream.Event) bool) []stream.Event {
		deadline := time.Now().Add(5 * time.Second)
		for {
			evs := c.log(uint64(sid))
			if pred(evs) {
				return evs
			}
			if time.Now().After(deadline) {
				t.Fatalf("timeout waiting for %s; events: %+v", desc, evs)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitFor("empty-view event", func(evs []stream.Event) bool {
		return len(evs) > 0 && len(evs[len(evs)-1].KNN) == 0
	})

	// Recovery: two inserts restore k-satisfiability; the recompute's
	// delta must build the new view from the published empty baseline.
	if _, err := e.InsertObject(geom.Pt(50.5, 50.5)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.InsertObject(geom.Pt(49.5, 49.5)); err != nil {
		t.Fatal(err)
	}
	evs := waitFor("recovered kNN", func(evs []stream.Event) bool {
		return len(evs) > 0 && len(evs[len(evs)-1].KNN) == 5
	})

	// The whole chain — snapshot baseline, stale notice, recovery — must
	// apply cleanly and end at the pull-path truth. (Coalescing merges
	// deltas exactly, so only monotonicity is required of Seq.)
	view := st0.KNN
	lastSeq := st0.Seq
	for _, ev := range evs {
		if ev.Seq <= lastSeq {
			t.Errorf("seq %d after %d: reordered or duplicated", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		view = applyDelta(t, view, ev)
	}
	vid, err := e.CreateSession(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.UpdateBatch([]LocationUpdate{{Session: vid, Pos: pos}})
	if err != nil || res[0].Err != nil {
		t.Fatalf("verify: %v / %v", err, res[0].Err)
	}
	if !sameMembers(view, res[0].KNN) {
		t.Errorf("replayed view %v != pull truth %v", view, res[0].KNN)
	}
}

// TestStreamSlowConsumerBounded: a subscriber that never drains cannot
// grow engine memory — its queue stays at its depth and the overflow is
// visible in the engine stats (the acceptance criterion's observability
// half).
func TestStreamSlowConsumerBounded(t *testing.T) {
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(1000, 1000))
	e, err := New(Config{Shards: 4, Bounds: bounds, Objects: workload.Uniform(200, bounds, 5)})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	const nSessions = 32
	rng := rand.New(rand.NewSource(11))
	batch := make([]LocationUpdate, nSessions)
	for i := range batch {
		sid, err := e.CreateSession(3, 1.6)
		if err != nil {
			t.Fatal(err)
		}
		batch[i] = LocationUpdate{Session: sid, Pos: geom.Pt(rng.Float64()*1000, rng.Float64()*1000)}
	}

	const depth = 2
	sub := e.Stream().Subscribe(depth) // wildcard, tiny queue, never drained
	defer sub.Close()

	for round := 0; round < 20; round++ {
		for i := range batch {
			batch[i].Pos = geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		}
		if _, err := e.UpdateBatch(batch); err != nil {
			t.Fatal(err)
		}
		if n := sub.Pending(); n > depth {
			t.Fatalf("slow consumer holds %d events, bound %d violated", n, depth)
		}
	}

	st, err := e.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Stream.Subscribers != 1 {
		t.Errorf("stream subscribers = %d, want 1", st.Stream.Subscribers)
	}
	if st.Stream.Dropped+st.Stream.Coalesced == 0 {
		t.Errorf("overflow policy invisible in stats: %+v", st.Stream)
	}
	if st.Stream.Published == 0 {
		t.Error("no events published")
	}
}
