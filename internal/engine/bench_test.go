package engine

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/geom"
	"repro/internal/workload"
)

// benchEngine builds an engine over nObjects uniform points.
func benchEngine(b *testing.B, nObjects, shards int) *Engine {
	b.Helper()
	e, err := New(Config{
		Shards:  shards,
		Bounds:  testBounds,
		Objects: workload.Uniform(nObjects, testBounds, 42),
	})
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkEngineIndexMemory reports the resident index heap after
// building an engine, per shard count. With the shared snapshot store the
// reported index_MB must stay flat as shards grow (O(objects)); the
// replica design it replaced grew it linearly (O(shards × objects)).
func BenchmarkEngineIndexMemory(b *testing.B) {
	const nObjects = 20000
	for _, shards := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				objects := workload.Uniform(nObjects, testBounds, 42)
				runtime.GC()
				var before runtime.MemStats
				runtime.ReadMemStats(&before)
				e, err := New(Config{Shards: shards, Bounds: testBounds, Objects: objects})
				if err != nil {
					b.Fatal(err)
				}
				runtime.GC()
				var after runtime.MemStats
				runtime.ReadMemStats(&after)
				b.ReportMetric(float64(after.HeapAlloc-before.HeapAlloc)/(1<<20), "index_MB")
				e.Close()
			}
		})
	}
}

// BenchmarkEngineDataUpdate measures object insert/remove throughput with
// live sessions present. The store applies each mutation once
// (copy-on-write on the single canonical index), so ns/op must not grow
// with the shard count — the property the replica design's broadcast-apply
// lacked.
func BenchmarkEngineDataUpdate(b *testing.B) {
	const (
		nObjects  = 5000
		nSessions = 64
	)
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			e := benchEngine(b, nObjects, shards)
			defer e.Close()
			sids := make([]SessionID, nSessions)
			batch := make([]LocationUpdate, nSessions)
			for i := range sids {
				sid, err := e.CreateSession(5, 1.6)
				if err != nil {
					b.Fatal(err)
				}
				sids[i] = sid
				batch[i] = LocationUpdate{Session: sid, Pos: geom.Pt(float64(i%100)*10+5, float64(i%50)*20+5)}
			}
			if _, err := e.UpdateBatch(batch); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var inserted []int
			for i := 0; i < b.N; i++ {
				if len(inserted) > 32 {
					id := inserted[0]
					inserted = inserted[1:]
					if err := e.RemoveObject(id); err != nil {
						b.Fatal(err)
					}
					continue
				}
				p := geom.Pt(float64((i*131)%1000), float64((i*373)%1000))
				id, err := e.InsertObject(p)
				if err != nil {
					b.Fatal(err)
				}
				inserted = append(inserted, id)
			}
		})
	}
}

// BenchmarkEngineLocationUpdate measures the serving hot path: one batched
// location update round per iteration, all sessions moving.
func BenchmarkEngineLocationUpdate(b *testing.B) {
	const (
		nObjects  = 20000
		nSessions = 256
	)
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			e := benchEngine(b, nObjects, shards)
			defer e.Close()
			sids := make([]SessionID, nSessions)
			for i := range sids {
				sid, err := e.CreateSession(5, 1.6)
				if err != nil {
					b.Fatal(err)
				}
				sids[i] = sid
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				batch := make([]LocationUpdate, nSessions)
				for j, sid := range sids {
					batch[j] = LocationUpdate{
						Session: sid,
						Pos:     geom.Pt(float64((i*7+j*13)%1000), float64((i*11+j*17)%1000)),
					}
				}
				results, err := e.UpdateBatch(batch)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range results {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
}
