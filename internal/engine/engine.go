// Package engine is the concurrent MkNN serving subsystem: it turns the
// single-query INS processors of internal/core into an online engine that
// maintains thousands of live query sessions against one logical dataset,
// the load shape of an LBS server tracking moving clients.
//
// The design is session-sharded with shared-nothing replicas. The INS
// processors and the index structures beneath them are not safe for
// concurrent use — even reads advance cost counters — so the engine runs N
// shard workers, each a single goroutine owning (a) a private replica of
// the VoR-tree and/or network Voronoi diagram and (b) every session pinned
// to the shard. A session is pinned at creation (round-robin: the shard is
// recoverable from the session id) and all of its INS state stays
// goroutine-confined for its lifetime, while distinct shards serve their
// sessions fully in parallel with zero locking on the query path.
//
// Requests travel as messages on per-shard mailbox channels. A batched
// location-update request is fanned out to the owning shards and gathered;
// a data update (object insert/delete) is sequenced by a global epoch and
// broadcast to every shard, which applies it to its replica and lazily
// invalidates exactly the sessions whose INS guard sets the mutation can
// affect — those sessions recompute at their next location update, the
// rest keep validating against their existing guard sets. Because every
// replica starts from the same build and applies the same updates in the
// same epoch order, object ids stay identical across shards (insertion
// into the Voronoi diagram is deterministic); the engine verifies this on
// every data update.
package engine

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/netvor"
	"repro/internal/roadnet"
	"repro/internal/vortree"
)

// Errors returned by engine operations.
var (
	// ErrClosed is returned by every operation after Close.
	ErrClosed = errors.New("engine: closed")
	// ErrUnknownSession is returned for session ids that were never created
	// or are already closed.
	ErrUnknownSession = errors.New("engine: unknown session")
	// ErrUnknownObject is returned when removing an object id that is not
	// live in the index.
	ErrUnknownObject = errors.New("engine: unknown object")
	// ErrNoPlaneIndex is returned when a plane operation hits an engine
	// configured without plane objects.
	ErrNoPlaneIndex = errors.New("engine: no plane index configured")
	// ErrNoNetwork is returned when a network session is created on an
	// engine configured without a road network.
	ErrNoNetwork = errors.New("engine: no road network configured")
	// ErrOutOfBounds is returned when inserting an object outside the
	// configured data space — a caller-input error, rejected before the
	// update reaches any shard.
	ErrOutOfBounds = errors.New("engine: point outside the data space")
)

// Config parameterizes New. Objects/Bounds configure the 2D Euclidean
// (plane) side; Network/NetworkSites the road-network side. At least one
// side must be configured; both may be.
type Config struct {
	// Shards is the number of shard workers (default 4). More shards mean
	// more parallelism and more index-replica memory.
	Shards int
	// Fanout is the VoR-tree node fanout (default 16).
	Fanout int
	// MailboxDepth is the per-shard request queue length (default 128);
	// senders block when a mailbox is full, providing backpressure.
	MailboxDepth int

	// Bounds is the data space of the plane objects.
	Bounds geom.Rect
	// Objects are the initial plane data objects.
	Objects []geom.Point

	// Network is the road network; the engine clones it per shard.
	Network *roadnet.Graph
	// NetworkSites are the vertices holding the network data objects.
	NetworkSites []int
}

// SessionID identifies a live query session. The owning shard is encoded
// as id mod Shards, so routing needs no shared lookup table.
type SessionID uint64

// LocationUpdate is one session's new position within a batch.
type LocationUpdate struct {
	Session SessionID
	Pos     geom.Point
}

// NetworkLocationUpdate is one network session's new position.
type NetworkLocationUpdate struct {
	Session SessionID
	Pos     roadnet.Position
}

// UpdateResult is the per-session outcome of a batched update: the current
// kNN object ids (freshly allocated) or the error for that session.
// Per-session errors do not fail the rest of the batch.
type UpdateResult struct {
	Session SessionID
	KNN     []int
	Err     error
}

// Stats is an aggregated snapshot of the engine's serving state.
type Stats struct {
	Shards   int
	Sessions int
	// Objects is the number of live plane data objects (0 without a plane
	// index).
	Objects int
	// Epoch counts applied data updates.
	Epoch uint64
	// Updates counts processed location updates.
	Updates uint64
	// Uptime is the time since New.
	Uptime time.Duration
	// UpdatesPerSec is Updates averaged over Uptime.
	UpdatesPerSec float64
	// Counters aggregates the INS cost counters over all live sessions.
	Counters metrics.Counters
	// Latency summarizes per-location-update serving latency.
	Latency metrics.LatencySummary
}

// String renders the snapshot as a short report.
func (s Stats) String() string {
	return fmt.Sprintf("shards=%d sessions=%d objects=%d epoch=%d updates=%d up=%v rate=%.0f/s latency[%v]",
		s.Shards, s.Sessions, s.Objects, s.Epoch, s.Updates,
		s.Uptime.Round(time.Millisecond), s.UpdatesPerSec, s.Latency)
}

// Engine is the concurrent MkNN serving engine. All methods are safe for
// concurrent use.
type Engine struct {
	shards   []*shard
	start    time.Time
	hasPlane bool
	bounds   geom.Rect // plane data space (meaningful when hasPlane)

	mu     sync.RWMutex // held (shared) across every mailbox round-trip; Close takes it exclusively
	closed bool

	seqMu   sync.Mutex
	nextSeq uint64

	dataMu sync.Mutex // serializes data updates so replicas apply one global order
	epoch  uint64
}

// New builds the engine: one index replica set per shard, then starts the
// shard workers. Building replicas runs in parallel across shards.
func New(cfg Config) (*Engine, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = 16
	}
	if cfg.MailboxDepth <= 0 {
		cfg.MailboxDepth = 128
	}
	hasPlane := len(cfg.Objects) > 0
	hasNetwork := cfg.Network != nil
	if !hasPlane && !hasNetwork {
		return nil, errors.New("engine: config has neither plane objects nor a road network")
	}

	e := &Engine{
		shards:   make([]*shard, cfg.Shards),
		start:    time.Now(),
		hasPlane: hasPlane,
		bounds:   cfg.Bounds,
	}
	errs := make([]error, cfg.Shards)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sh := &shard{
				id:       i,
				mailbox:  make(chan message, cfg.MailboxDepth),
				done:     make(chan struct{}),
				sessions: make(map[SessionID]*session),
			}
			if hasPlane {
				ix, _, err := vortree.Build(cfg.Bounds, cfg.Fanout, cfg.Objects)
				if err != nil {
					errs[i] = fmt.Errorf("engine: shard %d plane replica: %w", i, err)
					return
				}
				sh.ix = ix
			}
			if hasNetwork {
				nv, err := netvor.Build(cfg.Network.Clone(), cfg.NetworkSites)
				if err != nil {
					errs[i] = fmt.Errorf("engine: shard %d network replica: %w", i, err)
					return
				}
				sh.nv = nv
			}
			e.shards[i] = sh
		}(i)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	for _, sh := range e.shards {
		go sh.run()
	}
	return e, nil
}

// shardOf returns the shard owning sid, or nil for ids the engine never
// issued (0 is reserved).
func (e *Engine) shardOf(sid SessionID) *shard {
	if sid == 0 {
		return nil
	}
	return e.shards[uint64(sid)%uint64(len(e.shards))]
}

// allocSession reserves the next session id; shard assignment is
// round-robin because ids are sequential.
func (e *Engine) allocSession() SessionID {
	e.seqMu.Lock()
	defer e.seqMu.Unlock()
	e.nextSeq++
	return SessionID(e.nextSeq)
}

// CreateSession registers a plane MkNN session with parameter k and
// prefetch ratio rho and returns its id. The session holds no position
// until its first location update.
func (e *Engine) CreateSession(k int, rho float64) (SessionID, error) {
	return e.createSession(false, k, rho)
}

// CreateNetworkSession registers a road-network MkNN session.
func (e *Engine) CreateNetworkSession(k int, rho float64) (SessionID, error) {
	return e.createSession(true, k, rho)
}

func (e *Engine) createSession(network bool, k int, rho float64) (SessionID, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return 0, ErrClosed
	}
	sid := e.allocSession()
	reply := make(chan error, 1)
	sh := e.shardOf(sid)
	sh.mailbox <- createMsg{sid: sid, network: network, k: k, rho: rho, reply: reply}
	if err := <-reply; err != nil {
		return 0, err
	}
	return sid, nil
}

// CloseSession removes a live session.
func (e *Engine) CloseSession(sid SessionID) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	sh := e.shardOf(sid)
	if sh == nil {
		return fmt.Errorf("%w: %d", ErrUnknownSession, sid)
	}
	reply := make(chan error, 1)
	sh.mailbox <- closeMsg{sid: sid, reply: reply}
	return <-reply
}

// UpdateBatch processes one batched location-update request — typically
// one network round-trip carrying updates for many sessions. Updates are
// fanned out to the owning shards, run in parallel across shards (in input
// order within each session's shard), and gathered into one result per
// update, in input order. The returned error reflects engine-level
// failure only; per-session errors ride in the results.
func (e *Engine) UpdateBatch(updates []LocationUpdate) ([]UpdateResult, error) {
	entries := make([]batchEntry, len(updates))
	for i, u := range updates {
		entries[i] = batchEntry{idx: i, sid: u.Session, pos: u.Pos}
	}
	return e.runBatch(false, entries)
}

// UpdateNetworkBatch is UpdateBatch for road-network sessions.
func (e *Engine) UpdateNetworkBatch(updates []NetworkLocationUpdate) ([]UpdateResult, error) {
	entries := make([]batchEntry, len(updates))
	for i, u := range updates {
		entries[i] = batchEntry{idx: i, sid: u.Session, net: u.Pos}
	}
	return e.runBatch(true, entries)
}

func (e *Engine) runBatch(network bool, entries []batchEntry) ([]UpdateResult, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return nil, ErrClosed
	}
	results := make([]UpdateResult, len(entries))
	perShard := make([][]batchEntry, len(e.shards))
	for _, en := range entries {
		sh := e.shardOf(en.sid)
		if sh == nil {
			results[en.idx] = UpdateResult{Session: en.sid, Err: fmt.Errorf("%w: %d", ErrUnknownSession, en.sid)}
			continue
		}
		perShard[sh.id] = append(perShard[sh.id], en)
	}
	reply := make(chan struct{}, len(e.shards))
	sent := 0
	for s, part := range perShard {
		if len(part) == 0 {
			continue
		}
		e.shards[s].mailbox <- batchMsg{network: network, entries: part, results: results, reply: reply}
		sent++
	}
	for i := 0; i < sent; i++ {
		<-reply
	}
	return results, nil
}

// InsertObject adds a plane data object and returns its id. The update is
// broadcast to every shard replica under the next epoch; sessions whose
// guard sets the new object can affect are invalidated and recompute at
// their next location update.
func (e *Engine) InsertObject(p geom.Point) (int, error) {
	return e.dataUpdate(dataMsg{insert: true, p: p})
}

// RemoveObject deletes a plane data object everywhere; sessions using it
// in their guard sets are invalidated.
func (e *Engine) RemoveObject(id int) error {
	_, err := e.dataUpdate(dataMsg{id: id})
	return err
}

func (e *Engine) dataUpdate(m dataMsg) (int, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return -1, ErrClosed
	}
	// Reject bad input before it reaches any shard (and after the closed
	// check, so a closed engine always reports ErrClosed).
	if m.insert && e.hasPlane && !e.bounds.Contains(m.p) {
		return -1, fmt.Errorf("%w: %v not in [%v, %v]", ErrOutOfBounds, m.p, e.bounds.Min, e.bounds.Max)
	}
	e.dataMu.Lock()
	defer e.dataMu.Unlock()
	e.epoch++
	m.epoch = e.epoch
	m.reply = make(chan dataReply, len(e.shards))
	for _, sh := range e.shards {
		sh.mailbox <- m
	}
	id := -1
	var firstErr error
	failures := 0
	diverged := false
	for range e.shards {
		r := <-m.reply
		switch {
		case r.err != nil:
			failures++
			if firstErr == nil {
				firstErr = r.err
			}
		case id == -1:
			id = r.id
		case r.id != id:
			diverged = true
		}
	}
	switch {
	case diverged, failures > 0 && failures < len(e.shards):
		// Invariant breach: identical replicas must agree — all succeed
		// with one id or all fail alike. Differing ids or a mixed outcome
		// means some replicas hold the mutation and some don't; the epoch
		// stands (it was applied somewhere) and the breach is surfaced
		// loudly rather than masked as a clean failure.
		if firstErr != nil {
			return -1, fmt.Errorf("engine: replica divergence at epoch %d: %d/%d shards failed, first error: %w",
				e.epoch, failures, len(e.shards), firstErr)
		}
		return -1, fmt.Errorf("engine: replica divergence at epoch %d: object ids differ across shards", e.epoch)
	case failures == len(e.shards):
		// The update was applied nowhere (replicas fail identically); roll
		// the epoch back so it keeps counting applied updates only. Safe
		// under dataMu: no other update observed the increment.
		e.epoch--
		return -1, firstErr
	}
	return id, nil
}

// Stats gathers an aggregated snapshot from all shards. Counters and
// latency cover live sessions and processed updates respectively; the
// reported epoch is the highest applied by any shard.
func (e *Engine) Stats() (Stats, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return Stats{}, ErrClosed
	}
	reply := make(chan shardStats, len(e.shards))
	for _, sh := range e.shards {
		sh.mailbox <- statsMsg{reply: reply}
	}
	st := Stats{Shards: len(e.shards), Uptime: time.Since(e.start)}
	var hist metrics.Histogram
	for range e.shards {
		s := <-reply
		st.Sessions += s.sessions
		st.Updates += s.updates
		if s.objects > st.Objects {
			st.Objects = s.objects
		}
		if s.epoch > st.Epoch {
			st.Epoch = s.epoch
		}
		st.Counters.Add(s.counters)
		hist.Merge(&s.hist)
	}
	st.Latency = hist.Summary()
	if secs := st.Uptime.Seconds(); secs > 0 {
		st.UpdatesPerSec = float64(st.Updates) / secs
	}
	return st, nil
}

// Close shuts the engine down: it waits for in-flight requests, stops the
// shard workers and releases their sessions. Close is idempotent; all
// other methods fail with ErrClosed afterwards.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	for _, sh := range e.shards {
		close(sh.mailbox)
	}
	for _, sh := range e.shards {
		<-sh.done
	}
	return nil
}
