// Package engine is the concurrent MkNN serving subsystem: it turns the
// single-query INS processors of internal/core into an online engine that
// maintains thousands of live query sessions against one logical dataset,
// the load shape of an LBS server tracking moving clients.
//
// The design is session-sharded over shared immutable index snapshots.
// One index.Store owns the canonical VoR-tree and/or network Voronoi
// diagram and publishes an immutable, epoch-versioned snapshot after every
// data update (copy-on-write). Shards own nothing but sessions: N shard
// workers, each a single goroutine running every session pinned to it
// (round-robin by session id, so routing needs no shared lookup table).
// All sessions — across all shards — read the same snapshot memory
// lock-free, so resident index memory is O(objects) regardless of shard
// count, where the earlier replica design paid O(shards × objects) and
// applied every mutation once per shard.
//
// Requests travel as messages on per-shard mailbox channels. A batched
// location-update request is fanned out to the owning shards and gathered.
// A data update (object insert/delete) goes only to the Store, which
// applies it copy-on-write, publishes the next snapshot, and notifies the
// shards. Sessions re-pin lazily: at their next location update (or when
// their shard drains an epoch notification) they compare their pinned
// epoch against the newest, replay the store's mutation log over their INS
// guard sets, and invalidate exactly when a skipped mutation could affect
// them — the paper's lazy invalidation, now driven by snapshot epochs.
// Old snapshots are garbage-collected as soon as the last lagging session
// re-pins.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/roadnet"
	"repro/internal/stream"
	"repro/internal/wal"
)

// Errors returned by engine operations.
var (
	// ErrClosed is returned by every operation after Close.
	ErrClosed = errors.New("engine: closed")
	// ErrUnknownSession is returned for session ids that were never created
	// or are already closed.
	ErrUnknownSession = errors.New("engine: unknown session")
	// ErrUnknownObject is returned when removing an object id that is not
	// live in the index.
	ErrUnknownObject = errors.New("engine: unknown object")
	// ErrNoPlaneIndex is returned when a plane operation hits an engine
	// configured without plane objects.
	ErrNoPlaneIndex = errors.New("engine: no plane index configured")
	// ErrNoNetwork is returned when a network session is created on an
	// engine configured without a road network.
	ErrNoNetwork = errors.New("engine: no road network configured")
	// ErrOutOfBounds is returned when inserting an object outside the
	// configured data space — a plane point outside the bounds or a
	// network vertex id outside the graph — a caller-input error, rejected
	// before the update reaches the store.
	ErrOutOfBounds = errors.New("engine: point outside the data space")
	// ErrSiteExists is returned when inserting a network data object at a
	// vertex that already carries one.
	ErrSiteExists = errors.New("engine: network site already exists")
	// ErrLastSite is returned when removing the only remaining network
	// data object.
	ErrLastSite = errors.New("engine: cannot remove the last network site")
	// ErrDegraded is returned for data-object mutations while the
	// durability layer is in degraded mode: the WAL cannot accept
	// appends, so writes are rejected (HTTP 503 + Retry-After) while
	// reads — location updates, queries, SSE — keep serving. The WAL's
	// heal probe clears the condition when the disk recovers.
	ErrDegraded = errors.New("engine: degraded: durability unavailable, writes temporarily rejected")
	// ErrOverloaded is returned when admission control sheds a batched
	// update because a target shard's mailbox sits at its high watermark
	// (HTTP 429 + Retry-After): shedding early with a retryable status
	// beats queueing unboundedly and serving everyone late.
	ErrOverloaded = errors.New("engine: overloaded: shard queue at high watermark")
	// ErrExpired marks per-entry results whose request deadline passed
	// before the owning shard could apply them; the shard drops the work
	// instead of executing it late.
	ErrExpired = errors.New("engine: request deadline expired before apply")
)

// Config parameterizes New. Objects/Bounds configure the 2D Euclidean
// (plane) side; Network/NetworkSites the road-network side. At least one
// side must be configured; both may be.
type Config struct {
	// Shards is the number of shard workers (default 4). More shards mean
	// more parallelism; the index is shared, so shard count no longer
	// multiplies memory.
	Shards int
	// Fanout is the VoR-tree node fanout (default 16).
	Fanout int
	// MailboxDepth is the per-shard request queue length (default 128);
	// senders block when a mailbox is full, providing backpressure.
	MailboxDepth int
	// ShedDepth is the admission-control high watermark: a batched update
	// is shed with ErrOverloaded when any target shard's mailbox already
	// holds at least this many messages, instead of blocking the sender
	// against a queue that keeps growing. Default MailboxDepth (shed
	// exactly when a send would block); negative disables shedding and
	// restores pure blocking backpressure.
	ShedDepth int
	// LogDepth bounds the store's mutation log (default
	// index.DefaultLogDepth): how many data updates a dormant session may
	// lag and still re-pin without a conservative recomputation.
	LogDepth int
	// StreamQueueDepth bounds each push subscriber's pending-event queue
	// (default stream.DefaultQueueDepth); see the stream package for the
	// coalescing/overflow policy behind the bound.
	StreamQueueDepth int

	// Bounds is the data space of the plane objects.
	Bounds geom.Rect
	// Objects are the initial plane data objects.
	Objects []geom.Point

	// Network is the road network, shared (not copied) with the engine.
	Network *roadnet.Graph
	// NetworkSites are the vertices holding the network data objects.
	NetworkSites []int

	// WAL, when non-nil, is an opened durability manager; the engine then
	// serves from its recovered store instead of building one (and
	// Objects/NetworkSites/Bounds above are ignored — the manager's store
	// already carries the recovered state). Lifecycle: close the manager
	// BEFORE Engine.Close, so its final checkpoint can still pin a
	// snapshot; the engine closes the store either way.
	WAL *wal.Manager

	// Obs, when non-nil, enables pipeline observability: per-stage timing
	// (queue wait, apply, sweep, push), slow-op logging, and engine/stream
	// gauges on the pipeline's registry. With a WAL, pass the same
	// pipeline in the index.Config given to wal.Open so store and log
	// stages land in the same registry. nil compiles the whole layer to a
	// no-op.
	Obs *obs.Pipeline
}

// SessionID identifies a live query session. The owning shard is encoded
// as id mod Shards, so routing needs no shared lookup table.
type SessionID uint64

// LocationUpdate is one session's new position within a batch.
type LocationUpdate struct {
	Session SessionID
	Pos     geom.Point
}

// NetworkLocationUpdate is one network session's new position.
type NetworkLocationUpdate struct {
	Session SessionID
	Pos     roadnet.Position
}

// UpdateResult is the per-session outcome of a batched update: the current
// kNN object ids (freshly allocated) or the error for that session.
// Per-session errors do not fail the rest of the batch.
type UpdateResult struct {
	Session SessionID
	KNN     []int
	Err     error
}

// Stats is an aggregated snapshot of the engine's serving state.
type Stats struct {
	Shards   int
	Sessions int
	// Objects is the number of live plane data objects (0 without a plane
	// index).
	Objects int
	// NetworkObjects is the number of live network data objects (sites; 0
	// without a road network).
	NetworkObjects int
	// Epoch counts applied data updates (both sides share one epoch
	// sequence).
	Epoch uint64
	// Snapshots is the number of index snapshots still pinned: 1 when
	// every session has re-pinned to the current version, more while
	// lagging sessions keep old versions alive.
	Snapshots int
	// EpochPublishUS is the mean wall time of publishing one data-update
	// epoch (path-copy branch + mutations + publish), in microseconds;
	// 0 before the first data update.
	EpochPublishUS float64
	// IndexNodes is the plane index node count; IndexNodesCopied is how
	// many of them the latest epoch copied (the rest are shared with the
	// previous snapshot — the path-copying publication at work).
	IndexNodes       int
	IndexNodesCopied int
	// NetPages is the network label-page count; NetPagesCopied is how many
	// of them the latest epoch copied — the network side's share
	// instrumentation, mirroring IndexNodes/IndexNodesCopied.
	NetPages       int
	NetPagesCopied int
	// NetLandmarks is the ALT landmark count of the network index (0
	// without a road network); NetProjRebuilds counts the lazy site-
	// projection rebuilds the pruned searches performed — how often a
	// site removal cost a projection rebuild instead of an exact widen.
	NetLandmarks    int
	NetProjRebuilds uint64
	// Updates counts processed location updates.
	Updates uint64
	// Shed counts update entries rejected by admission control
	// (ErrOverloaded); Expired counts entries dropped because their
	// request deadline passed before apply (ErrExpired).
	Shed    uint64
	Expired uint64
	// Degraded reports the durability layer's read-only mode: writes are
	// being rejected until the heal probe restores the WAL.
	Degraded bool
	// Uptime is the time since New.
	Uptime time.Duration
	// UpdatesPerSec is Updates averaged over Uptime.
	UpdatesPerSec float64
	// Counters aggregates the INS cost counters over all live sessions.
	Counters metrics.Counters
	// Latency summarizes per-location-update serving latency.
	Latency metrics.LatencySummary
	// Stream is the push broker's fan-out state: subscribers, published/
	// delivered events, and the coalesce/drop counters that make the
	// overflow policy observable.
	Stream stream.Stats
	// WAL is the durability pipeline's counter snapshot, nil when the
	// engine runs without a write-ahead log.
	WAL *wal.Stats
}

// String renders the snapshot as a short report.
func (s Stats) String() string {
	return fmt.Sprintf("shards=%d sessions=%d objects=%d netobjects=%d epoch=%d snaps=%d updates=%d up=%v rate=%.0f/s latency[%v] stream[subs=%d pub=%d coal=%d drop=%d]",
		s.Shards, s.Sessions, s.Objects, s.NetworkObjects, s.Epoch, s.Snapshots, s.Updates,
		s.Uptime.Round(time.Millisecond), s.UpdatesPerSec, s.Latency,
		s.Stream.Subscribers, s.Stream.Published, s.Stream.Coalesced, s.Stream.Dropped)
}

// Engine is the concurrent MkNN serving engine. All methods are safe for
// concurrent use.
type Engine struct {
	store     *index.Store
	wal       *wal.Manager // nil without durability
	events    *stream.Broker
	shards    []*shard
	start     time.Time
	hasPlane  bool
	bounds    geom.Rect     // plane data space (meaningful when hasPlane)
	obs       *obs.Pipeline // nil when observability is off
	shedDepth int           // admission-control watermark; 0 disables

	// shed counts entries rejected by admission control; expired counts
	// entries whose deadline passed while blocked at the mailbox door
	// (shard-side expiries are counted per shard).
	shed    atomic.Uint64
	expired atomic.Uint64

	mu     sync.RWMutex // held (shared) across every mailbox round-trip; Close takes it exclusively
	closed bool

	seqMu   sync.Mutex
	nextSeq uint64

	// plans recycles the fan-out scratch of batched location updates (the
	// routed entry slices and the gather channel); only the per-session
	// results, which are handed to the caller, are allocated per batch.
	plans sync.Pool
}

// batchPlan is the reusable fan-out scratch of one batched update: the
// routed entries, the per-shard partitions and the gather channel. It goes
// back to the pool only after every shard signalled reply, so pooled
// memory is never read concurrently with its next use.
type batchPlan struct {
	entries  []batchEntry
	perShard [][]batchEntry
	reply    chan struct{}
}

// New builds the engine: one shared index store, then the shard workers,
// each subscribed to the store's epoch notifications.
func New(cfg Config) (*Engine, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.MailboxDepth <= 0 {
		cfg.MailboxDepth = 128
	}
	if cfg.ShedDepth == 0 {
		cfg.ShedDepth = cfg.MailboxDepth
	}
	if cfg.ShedDepth < 0 {
		cfg.ShedDepth = 0 // explicit opt-out: block instead of shedding
	}
	var st *index.Store
	if cfg.WAL != nil {
		st = cfg.WAL.Store()
	} else {
		var err error
		st, err = index.NewStore(index.Config{
			Fanout:       cfg.Fanout,
			LogDepth:     cfg.LogDepth,
			Bounds:       cfg.Bounds,
			Objects:      cfg.Objects,
			Network:      cfg.Network,
			NetworkSites: cfg.NetworkSites,
			Obs:          cfg.Obs,
		})
		if err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
	}
	e := &Engine{
		store:     st,
		wal:       cfg.WAL,
		events:    stream.NewBrokerObs(cfg.StreamQueueDepth, cfg.Obs),
		shards:    make([]*shard, cfg.Shards),
		start:     time.Now(),
		hasPlane:  st.HasPlane(),
		bounds:    st.Bounds(),
		obs:       cfg.Obs,
		shedDepth: cfg.ShedDepth,
	}
	for i := range e.shards {
		e.shards[i] = &shard{
			id:       i,
			store:    st,
			events:   e.events,
			mailbox:  make(chan message, cfg.MailboxDepth),
			notify:   st.Subscribe(),
			done:     make(chan struct{}),
			sessions: make(map[SessionID]*session),
			obs:      cfg.Obs,
		}
	}
	e.registerMetrics(cfg.Obs.Registry())
	e.plans.New = func() any {
		return &batchPlan{
			perShard: make([][]batchEntry, cfg.Shards),
			reply:    make(chan struct{}, cfg.Shards),
		}
	}
	for _, sh := range e.shards {
		go sh.run()
	}
	return e, nil
}

// registerMetrics exports the serving gauges on the pipeline's registry.
// Every closure reads atomics or channel lengths the workers maintain
// anyway — a scrape never enqueues a mailbox message and never blocks a
// shard. The stream counters go through Broker.Stats, which takes the
// broker read lock briefly.
func (e *Engine) registerMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	for _, sh := range e.shards {
		sh := sh
		shardLabel := obs.Label{Name: "shard", Value: fmt.Sprint(sh.id)}
		reg.GaugeFunc("insq_shard_queue_depth",
			"Messages waiting in the shard's mailbox.",
			func() float64 { return float64(len(sh.mailbox)) }, shardLabel)
		reg.GaugeFunc("insq_shard_sessions",
			"Live sessions owned by the shard.",
			func() float64 { return float64(sh.sessionsN.Load()) }, shardLabel)
	}
	reg.GaugeFunc("insq_sessions",
		"Live sessions across all shards.",
		func() float64 {
			var n int64
			for _, sh := range e.shards {
				n += sh.sessionsN.Load()
			}
			return float64(n)
		})
	reg.CounterFunc("insq_updates_total",
		"Processed location updates across all shards.",
		func() float64 {
			var n uint64
			for _, sh := range e.shards {
				n += sh.updates.Load()
			}
			return float64(n)
		})
	reg.GaugeFunc("insq_epoch",
		"Applied data updates (the current snapshot's version).",
		func() float64 { return float64(e.store.Epoch()) })
	reg.GaugeFunc("insq_snapshots_live",
		"Snapshots still pinned, including the current one.",
		func() float64 { return float64(e.store.LiveSnapshots()) })
	reg.GaugeFunc("insq_snapshot_pins",
		"Pins on the current snapshot (the store's own pin included).",
		func() float64 { return float64(e.store.CurrentPins()) })
	reg.GaugeFunc("insq_objects",
		"Live plane data objects (0 without a plane index).",
		func() float64 {
			if plane := e.store.Current().Plane(); plane != nil {
				return float64(plane.Len())
			}
			return 0
		})
	reg.GaugeFunc("insq_network_objects",
		"Live network data objects (0 without a road network).",
		func() float64 {
			if net := e.store.Current().Network(); net != nil {
				return float64(net.Len())
			}
			return 0
		})
	reg.GaugeFunc("insq_stream_subscribers",
		"Live push-stream subscribers.",
		func() float64 { return float64(e.events.Stats().Subscribers) })
	reg.GaugeFunc("insq_stream_pending_events",
		"Events queued across all push subscribers.",
		func() float64 { return float64(e.events.PendingTotal()) })
	reg.CounterFunc("insq_stream_published_total",
		"Events published to the stream broker.",
		func() float64 { return float64(e.events.Stats().Published) })
	reg.CounterFunc("insq_stream_delivered_total",
		"Events delivered to subscribers.",
		func() float64 { return float64(e.events.Stats().Delivered) })
	reg.CounterFunc("insq_stream_coalesced_total",
		"Events merged into a pending one (latest-result-wins).",
		func() float64 { return float64(e.events.Stats().Coalesced) })
	reg.CounterFunc("insq_stream_dropped_total",
		"Pending events evicted by subscriber queue overflow.",
		func() float64 { return float64(e.events.Stats().Dropped) })
	reg.GaugeFunc("insq_degraded",
		"1 while the durability layer is in degraded read-only mode (writes rejected, reads serving).",
		func() float64 {
			if e.degraded() {
				return 1
			}
			return 0
		})
	reg.CounterFunc("insq_shed_total",
		"Update entries rejected by admission control (shard queue at its high watermark).",
		func() float64 { return float64(e.shed.Load()) })
	reg.CounterFunc("insq_expired_total",
		"Update entries dropped because their request deadline passed before apply.",
		func() float64 {
			n := e.expired.Load()
			for _, sh := range e.shards {
				n += sh.expired.Load()
			}
			return float64(n)
		})
	for _, fp := range fault.Points() {
		fp := fp
		reg.CounterFunc("insq_fault_fires_total",
			"Failpoint fires (fault injection; all zero in production).",
			func() float64 { return float64(fp.Fires()) },
			obs.Label{Name: "point", Value: fp.Name()})
	}
}

// shardOf returns the shard owning sid, or nil for ids the engine never
// issued (0 is reserved).
func (e *Engine) shardOf(sid SessionID) *shard {
	if sid == 0 {
		return nil
	}
	return e.shards[uint64(sid)%uint64(len(e.shards))]
}

// allocSession reserves the next session id; shard assignment is
// round-robin because ids are sequential.
func (e *Engine) allocSession() SessionID {
	e.seqMu.Lock()
	defer e.seqMu.Unlock()
	e.nextSeq++
	return SessionID(e.nextSeq)
}

// CreateSession registers a plane MkNN session with parameter k and
// prefetch ratio rho and returns its id. The session holds no position
// until its first location update.
func (e *Engine) CreateSession(k int, rho float64) (SessionID, error) {
	return e.createSession(false, k, rho)
}

// CreateNetworkSession registers a road-network MkNN session.
func (e *Engine) CreateNetworkSession(k int, rho float64) (SessionID, error) {
	return e.createSession(true, k, rho)
}

func (e *Engine) createSession(network bool, k int, rho float64) (SessionID, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return 0, ErrClosed
	}
	if network && e.store.Network() == nil {
		return 0, ErrNoNetwork
	}
	if !network && !e.hasPlane {
		return 0, ErrNoPlaneIndex
	}
	sid := e.allocSession()
	reply := make(chan error, 1)
	sh := e.shardOf(sid)
	sh.mailbox <- createMsg{sid: sid, network: network, k: k, rho: rho, reply: reply}
	if err := <-reply; err != nil {
		return 0, err
	}
	return sid, nil
}

// Stream returns the engine's push broker. Subscribe to it to receive
// per-session kNN result deltas: move events when a location update
// changes a watched session's result, data events when an object
// insert/delete invalidates it (the owning shard then recomputes eagerly
// instead of waiting for the session's next poll), and a close event when
// the session ends. The broker outlives nothing: Engine.Close closes it,
// and callers shutting down a server should close it first so subscribers
// get a farewell instead of a reset.
func (e *Engine) Stream() *stream.Broker { return e.events }

// SessionState is a point-in-time result snapshot of one live session,
// served through the owning shard so it is sequenced against the
// session's updates and stream events.
type SessionState struct {
	// KNN is the current kNN membership (freshly allocated; empty before
	// the session's first location update).
	KNN []int
	// Seq is the session's last published stream sequence number; events
	// with Seq <= this are older than the snapshot.
	Seq uint64
	// Epoch is the index snapshot epoch the session is pinned to.
	Epoch uint64
}

// State returns a session's current kNN snapshot. SSE handlers use it to
// send a baseline event before the delta stream.
func (e *Engine) State(sid SessionID) (SessionState, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return SessionState{}, ErrClosed
	}
	sh := e.shardOf(sid)
	if sh == nil {
		return SessionState{}, fmt.Errorf("%w: %d", ErrUnknownSession, sid)
	}
	reply := make(chan stateReply, 1)
	sh.mailbox <- stateMsg{sid: sid, reply: reply}
	r := <-reply
	return r.state, r.err
}

// CloseSession removes a live session, releasing its snapshot pin.
func (e *Engine) CloseSession(sid SessionID) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	sh := e.shardOf(sid)
	if sh == nil {
		return fmt.Errorf("%w: %d", ErrUnknownSession, sid)
	}
	reply := make(chan error, 1)
	sh.mailbox <- closeMsg{sid: sid, reply: reply}
	return <-reply
}

// UpdateBatch processes one batched location-update request — typically
// one network round-trip carrying updates for many sessions. Updates are
// fanned out to the owning shards, run in parallel across shards (in input
// order within each session's shard), and gathered into one result per
// update, in input order. The returned error reflects engine-level
// failure only; per-session errors ride in the results.
func (e *Engine) UpdateBatch(updates []LocationUpdate) ([]UpdateResult, error) {
	return e.UpdateBatchCtx(context.Background(), updates)
}

// UpdateBatchCtx is UpdateBatch with a request context carrying the trace
// ID (obs.TraceID) for queue-wait timing and slow-batch attribution.
func (e *Engine) UpdateBatchCtx(ctx context.Context, updates []LocationUpdate) ([]UpdateResult, error) {
	plan := e.plans.Get().(*batchPlan)
	plan.entries = plan.entries[:0]
	for i, u := range updates {
		plan.entries = append(plan.entries, batchEntry{idx: i, sid: u.Session, pos: u.Pos})
	}
	return e.runBatch(ctx, false, plan)
}

// UpdateNetworkBatch is UpdateBatch for road-network sessions.
func (e *Engine) UpdateNetworkBatch(updates []NetworkLocationUpdate) ([]UpdateResult, error) {
	return e.UpdateNetworkBatchCtx(context.Background(), updates)
}

// UpdateNetworkBatchCtx is UpdateNetworkBatch with a request context.
func (e *Engine) UpdateNetworkBatchCtx(ctx context.Context, updates []NetworkLocationUpdate) ([]UpdateResult, error) {
	plan := e.plans.Get().(*batchPlan)
	plan.entries = plan.entries[:0]
	for i, u := range updates {
		plan.entries = append(plan.entries, batchEntry{idx: i, sid: u.Session, net: u.Pos})
	}
	return e.runBatch(ctx, true, plan)
}

// runBatch fans the plan's entries out to their shards, gathers the
// replies and returns the plan to the pool (every shard is done with the
// pooled memory once it has signalled).
func (e *Engine) runBatch(ctx context.Context, network bool, plan *batchPlan) ([]UpdateResult, error) {
	defer e.plans.Put(plan)
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return nil, ErrClosed
	}
	results := make([]UpdateResult, len(plan.entries))
	perShard := plan.perShard
	for i := range perShard {
		perShard[i] = perShard[i][:0]
	}
	for _, en := range plan.entries {
		sh := e.shardOf(en.sid)
		if sh == nil {
			results[en.idx] = UpdateResult{Session: en.sid, Err: fmt.Errorf("%w: %d", ErrUnknownSession, en.sid)}
			continue
		}
		perShard[sh.id] = append(perShard[sh.id], en)
	}
	// Admission control: shed the whole batch before anything is
	// enqueued when a target shard's mailbox already sits at the high
	// watermark. A 429 the client retries with backoff is cheaper for
	// everyone than a sender blocked against a queue that keeps growing.
	if e.shedDepth > 0 {
		for s, part := range perShard {
			if len(part) > 0 && len(e.shards[s].mailbox) >= e.shedDepth {
				depth := len(e.shards[s].mailbox)
				e.shed.Add(uint64(len(plan.entries)))
				if e.obs.Enabled() {
					e.obs.Shed(obs.TraceID(ctx), s, len(plan.entries), depth)
				}
				return nil, fmt.Errorf("%w: shard %d queue depth %d", ErrOverloaded, s, depth)
			}
		}
	}
	// One timestamp and trace per request, stamped at fan-out: each shard
	// reports its own mailbox wait against it as the queue stage.
	var enqueued time.Time
	var trace string
	if e.obs.Enabled() {
		enqueued = time.Now()
		trace = obs.TraceID(ctx)
	}
	sent := 0
	for s, part := range perShard {
		if len(part) == 0 {
			continue
		}
		msg := batchMsg{ctx: ctx, network: network, entries: part, results: results, reply: plan.reply, trace: trace, enqueued: enqueued}
		select {
		case e.shards[s].mailbox <- msg:
			sent++
		case <-ctx.Done():
			// The request deadline passed while blocked at the mailbox
			// door: fail this shard's entries without enqueueing them (the
			// shard drops already-queued parts itself, via msg.ctx).
			cerr := ctx.Err()
			for _, en := range part {
				results[en.idx] = UpdateResult{Session: en.sid, Err: fmt.Errorf("%w: %v", ErrExpired, cerr)}
			}
			e.expired.Add(uint64(len(part)))
			if e.obs.Enabled() {
				e.obs.Expired(trace, s, len(part), time.Since(enqueued))
			}
		}
	}
	for i := 0; i < sent; i++ {
		<-plan.reply
	}
	return results, nil
}

// InsertObject adds a plane data object and returns its id. The store
// applies the mutation copy-on-write and publishes the next snapshot under
// the next epoch; sessions whose guard sets the new object can affect are
// invalidated when they re-pin and recompute at their next location
// update. The cost is independent of the shard count.
func (e *Engine) InsertObject(p geom.Point) (int, error) {
	return e.InsertObjectCtx(context.Background(), p)
}

// InsertObjectCtx is InsertObject with a request context carrying the
// trace ID for slow-op attribution in the publish and WAL stages.
func (e *Engine) InsertObjectCtx(ctx context.Context, p geom.Point) (int, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return -1, ErrClosed
	}
	if e.degraded() {
		return -1, ErrDegraded
	}
	// Reject bad input before it reaches the store (and after the closed
	// check, so a closed engine always reports ErrClosed).
	if e.hasPlane && !e.bounds.Contains(p) {
		return -1, fmt.Errorf("%w: %v not in [%v, %v]", ErrOutOfBounds, p, e.bounds.Min, e.bounds.Max)
	}
	ids, err := e.store.ApplyCtx(ctx, []index.Mutation{{Insert: true, P: p}})
	if err != nil {
		return -1, e.mapStoreErr(err)
	}
	return ids[0], nil
}

// RemoveObject deletes a plane data object; sessions using it in their
// guard sets are invalidated when they re-pin.
func (e *Engine) RemoveObject(id int) error {
	return e.RemoveObjectCtx(context.Background(), id)
}

// RemoveObjectCtx is RemoveObject with a request context.
func (e *Engine) RemoveObjectCtx(ctx context.Context, id int) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	if e.degraded() {
		return ErrDegraded
	}
	if _, err := e.store.ApplyCtx(ctx, []index.Mutation{{ID: id}}); err != nil {
		return e.mapStoreErr(err)
	}
	return nil
}

// InsertNetworkObject adds a network data object at vertex v. The store
// applies the site insertion copy-on-write to the network Voronoi diagram
// and publishes the next snapshot under the next epoch; network sessions
// whose guard cells the new site can disturb are invalidated when they
// re-pin — the exact machinery the plane side uses, now covering the road
// network. The returned id is v: network objects are identified by the
// vertex they sit on.
func (e *Engine) InsertNetworkObject(v int) (int, error) {
	return e.InsertNetworkObjectCtx(context.Background(), v)
}

// InsertNetworkObjectCtx is InsertNetworkObject with a request context.
func (e *Engine) InsertNetworkObjectCtx(ctx context.Context, v int) (int, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return -1, ErrClosed
	}
	if e.degraded() {
		return -1, ErrDegraded
	}
	if _, err := e.store.ApplyCtx(ctx, []index.Mutation{{Network: true, Insert: true, ID: v}}); err != nil {
		return -1, e.mapStoreErr(err)
	}
	return v, nil
}

// RemoveNetworkObject deletes the network data object at vertex v;
// network sessions using it (or bordering its cell) are invalidated when
// they re-pin.
func (e *Engine) RemoveNetworkObject(v int) error {
	return e.RemoveNetworkObjectCtx(context.Background(), v)
}

// RemoveNetworkObjectCtx is RemoveNetworkObject with a request context.
func (e *Engine) RemoveNetworkObjectCtx(ctx context.Context, v int) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	if e.degraded() {
		return ErrDegraded
	}
	if _, err := e.store.ApplyCtx(ctx, []index.Mutation{{Network: true, ID: v}}); err != nil {
		return e.mapStoreErr(err)
	}
	return nil
}

// ApplyMutations applies a pre-decoded object-mutation batch — the batch
// entry point for the binary ingest path, where mutations arrive already
// in index vocabulary and the per-object wrappers above would cost one
// copy-on-write epoch publication each. The whole batch is validated up
// front, logged as one WAL record and published as one snapshot swap;
// it is applied or rejected whole. The returned ids parallel muts: the
// assigned id for plane inserts, the echoed id/vertex otherwise.
func (e *Engine) ApplyMutations(ctx context.Context, muts []index.Mutation) ([]int, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return nil, ErrClosed
	}
	if len(muts) == 0 {
		return nil, nil
	}
	if e.degraded() {
		return nil, ErrDegraded
	}
	// Reject bad input before it reaches the store, matching the
	// per-object entry points.
	for _, m := range muts {
		if !m.Network && m.Insert && e.hasPlane && !e.bounds.Contains(m.P) {
			return nil, fmt.Errorf("%w: %v not in [%v, %v]", ErrOutOfBounds, m.P, e.bounds.Min, e.bounds.Max)
		}
	}
	ids, err := e.store.ApplyCtx(ctx, muts)
	if err != nil {
		return nil, e.mapStoreErr(err)
	}
	return ids, nil
}

// degraded reports whether the durability layer currently rejects
// appends; an engine without a WAL is never degraded.
func (e *Engine) degraded() bool { return e.wal != nil && e.wal.Degraded() }

// Degraded reports whether the engine is in degraded read-only mode:
// the WAL cannot accept appends, data-object mutations are rejected
// with ErrDegraded, and reads keep serving. Always false without a WAL.
func (e *Engine) Degraded() bool { return e.degraded() }

// mapStoreErr translates index.Store errors into the engine's error
// vocabulary (kept stable for HTTP status mapping and errors.Is callers).
func (e *Engine) mapStoreErr(err error) error {
	switch {
	case errors.Is(err, index.ErrDurability):
		// Any durability-append failure is a retryable unavailability: the
		// batch was aborted unpublished, the client should back off and
		// retry (persistent failures flip Degraded() and fail fast here).
		return fmt.Errorf("%w: %v", ErrDegraded, err)
	case errors.Is(err, index.ErrNoPlane):
		return ErrNoPlaneIndex
	case errors.Is(err, index.ErrNoNetwork):
		return ErrNoNetwork
	case errors.Is(err, index.ErrUnknownObject), errors.Is(err, index.ErrUnknownSite):
		return fmt.Errorf("%w: %v", ErrUnknownObject, err)
	case errors.Is(err, index.ErrSiteExists):
		return fmt.Errorf("%w: %v", ErrSiteExists, err)
	case errors.Is(err, index.ErrLastSite):
		return ErrLastSite
	case errors.Is(err, index.ErrOutOfBounds):
		return fmt.Errorf("%w: %v", ErrOutOfBounds, err)
	case errors.Is(err, index.ErrClosed):
		return ErrClosed
	}
	return err
}

// Stats gathers an aggregated snapshot from all shards plus the index
// store's version state.
func (e *Engine) Stats() (Stats, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return Stats{}, ErrClosed
	}
	reply := make(chan shardStats, len(e.shards))
	for _, sh := range e.shards {
		sh.mailbox <- statsMsg{reply: reply}
	}
	st := Stats{
		Shards:    len(e.shards),
		Uptime:    time.Since(e.start),
		Epoch:     e.store.Epoch(),
		Snapshots: e.store.LiveSnapshots(),
		Stream:    e.events.Stats(),
		Shed:      e.shed.Load(),
		Expired:   e.expired.Load(),
		Degraded:  e.degraded(),
	}
	for _, sh := range e.shards {
		st.Expired += sh.expired.Load()
	}
	if e.wal != nil {
		ws := e.wal.Stats()
		st.WAL = &ws
	}
	if plane := e.store.Current().Plane(); plane != nil {
		st.Objects = plane.Len()
	}
	if net := e.store.Current().Network(); net != nil {
		st.NetworkObjects = net.Len()
		st.NetLandmarks, st.NetProjRebuilds = net.ALTStats()
	}
	if pubs, total := e.store.PublishStats(); pubs > 0 {
		st.EpochPublishUS = float64(total.Nanoseconds()) / 1e3 / float64(pubs)
	}
	st.IndexNodesCopied, st.IndexNodes = e.store.PlaneShareStats()
	st.NetPagesCopied, st.NetPages = e.store.NetworkShareStats()
	var hist metrics.Histogram
	for range e.shards {
		s := <-reply
		st.Sessions += s.sessions
		st.Updates += s.updates
		st.Counters.Add(s.counters)
		hist.Merge(&s.hist)
	}
	st.Latency = hist.Summary()
	if secs := st.Uptime.Seconds(); secs > 0 {
		st.UpdatesPerSec = float64(st.Updates) / secs
	}
	return st, nil
}

// Close shuts the engine down: it waits for in-flight requests, stops the
// shard workers (releasing their sessions' snapshot pins), closes the
// store and then the stream broker (waking every subscriber with Done).
// Close is idempotent; all other methods fail with ErrClosed afterwards.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	for _, sh := range e.shards {
		close(sh.mailbox)
	}
	for _, sh := range e.shards {
		<-sh.done
	}
	e.store.Close()
	e.events.Close()
	return nil
}
