package engine

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"strings"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/workload"
)

// TestEngineObservability drives a small instrumented engine end to end
// and checks that every in-process pipeline stage fired, the gauges
// export, and a threshold-zero slow log captures batches with the
// request's trace ID. Run with -race: scrapes race against workers by
// design.
func TestEngineObservability(t *testing.T) {
	reg := obs.NewRegistry()
	var logBuf bytes.Buffer
	slow := obs.NewSlowLog(slog.New(slog.NewTextHandler(&logBuf, nil)),
		obs.Thresholds{Batch: time.Nanosecond})
	pipe := obs.NewPipeline(reg, slow)
	e, err := New(Config{
		Shards:  2,
		Bounds:  testBounds,
		Objects: workload.Uniform(200, testBounds, 1),
		Obs:     pipe,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	sid, err := e.CreateSession(5, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	sub := e.Stream().Subscribe(8, uint64(sid))
	defer sub.Close()

	trace := obs.NewTraceID()
	ctx := obs.WithTraceID(context.Background(), trace)
	if _, err := e.UpdateBatchCtx(ctx, []LocationUpdate{{Session: sid, Pos: geom.Pt(10, 10)}}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.InsertObjectCtx(ctx, geom.Pt(11, 11)); err != nil {
		t.Fatal(err)
	}
	// Give the shards a moment to drain the epoch notification (sweep).
	deadline := time.Now().Add(2 * time.Second)
	for pipe.StageCount(obs.StageSweep) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if _, err := e.UpdateBatchCtx(ctx, []LocationUpdate{{Session: sid, Pos: geom.Pt(12, 12)}}); err != nil {
		t.Fatal(err)
	}

	for _, st := range []obs.Stage{obs.StageQueue, obs.StageApply, obs.StagePublish, obs.StageSweep, obs.StagePush} {
		if pipe.StageCount(st) == 0 {
			t.Errorf("stage %v never observed", st)
		}
	}
	if !strings.Contains(logBuf.String(), "trace="+trace) {
		t.Errorf("slow-batch log missing trace %s:\n%s", trace, logBuf.String())
	}

	var expo strings.Builder
	if err := reg.WritePrometheus(&expo); err != nil {
		t.Fatal(err)
	}
	out := expo.String()
	for _, want := range []string{
		`insq_shard_queue_depth{shard="0"}`,
		`insq_shard_sessions{shard="1"}`,
		"insq_sessions 1",
		"insq_epoch 1",
		"insq_snapshot_pins",
		"insq_objects 201",
		"insq_stream_subscribers 1",
		"insq_updates_total 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestEngineObsDisabled pins the noop invariant: a nil pipeline engine
// serves normally and records nothing.
func TestEngineObsDisabled(t *testing.T) {
	e := newTestEngine(t, 100, 2)
	sid, err := e.CreateSession(3, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.UpdateBatch([]LocationUpdate{{Session: sid, Pos: geom.Pt(5, 5)}}); err != nil {
		t.Fatal(err)
	}
	var p *obs.Pipeline
	if p.StageCount(obs.StageApply) != 0 || p.Enabled() {
		t.Error("nil pipeline not inert")
	}
	if err := p.Registry().WritePrometheus(io.Discard); err != nil {
		t.Fatal(err)
	}
}
