package netvor

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/roadnet"
)

var testBounds = geom.NewRect(geom.Pt(0, 0), geom.Pt(1000, 1000))

// testNetwork builds a connected random planar network with nSites distinct
// site vertices.
func testNetwork(t testing.TB, nVerts, nSites int, seed int64) (*roadnet.Graph, []int) {
	t.Helper()
	g, err := roadnet.RandomPlanarNetwork(nVerts, testBounds, 0.5, 0.3, seed)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed + 1))
	perm := rng.Perm(nVerts)
	sites := append([]int(nil), perm[:nSites]...)
	sort.Ints(sites)
	return g, sites
}

func TestOwnersMatchBruteForce(t *testing.T) {
	g, sites := testNetwork(t, 80, 10, 1)
	d, err := Build(g, sites)
	if err != nil {
		t.Fatal(err)
	}
	fw := g.FloydWarshall()
	for v := 0; v < g.NumVertices(); v++ {
		owner, dist := d.Owner(v)
		best, bestD := -1, math.Inf(1)
		for _, s := range sites {
			if fw[v][s] < bestD || (fw[v][s] == bestD && s < best) {
				best, bestD = s, fw[v][s]
			}
		}
		if math.Abs(dist-bestD) > 1e-9*(bestD+1) {
			t.Fatalf("vertex %d: owner distance %g, want %g", v, dist, bestD)
		}
		// The owner must be *a* nearest site; ties break to the lower id.
		if owner != best && math.Abs(fw[v][owner]-bestD) > 1e-9*(bestD+1) {
			t.Fatalf("vertex %d: owner %d at %g, nearest is %d at %g",
				v, owner, fw[v][owner], best, bestD)
		}
	}
}

func TestSitesOwnThemselves(t *testing.T) {
	g, sites := testNetwork(t, 60, 8, 2)
	d, err := Build(g, sites)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sites {
		owner, dist := d.Owner(s)
		if owner != s || dist != 0 {
			t.Errorf("site %d owned by %d at %g", s, owner, dist)
		}
		if !d.IsSite(s) {
			t.Errorf("IsSite(%d) = false", s)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	g, _ := testNetwork(t, 20, 3, 3)
	if _, err := Build(g, nil); err == nil {
		t.Error("expected error for no sites")
	}
	if _, err := Build(g, []int{5, 5}); err == nil {
		t.Error("expected error for duplicate sites")
	}
	if _, err := Build(g, []int{999}); err == nil {
		t.Error("expected error for out-of-range site")
	}
}

func TestNeighborsSymmetricAndSorted(t *testing.T) {
	g, sites := testNetwork(t, 120, 15, 4)
	d, err := Build(g, sites)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sites {
		ns, err := d.Neighbors(s)
		if err != nil {
			t.Fatal(err)
		}
		if !sort.IntsAreSorted(ns) {
			t.Fatalf("neighbors of %d not sorted: %v", s, ns)
		}
		for _, u := range ns {
			if u == s {
				t.Fatalf("site %d is its own neighbor", s)
			}
			un, err := d.Neighbors(u)
			if err != nil {
				t.Fatal(err)
			}
			if !containsInt(un, s) {
				t.Fatalf("neighbor relation asymmetric: %d->%d", s, u)
			}
		}
	}
	if _, err := d.Neighbors(9999); err == nil {
		t.Error("expected error for non-site")
	}
}

func TestKNNMatchesBruteForce(t *testing.T) {
	g, sites := testNetwork(t, 100, 12, 5)
	d, err := Build(g, sites)
	if err != nil {
		t.Fatal(err)
	}
	fw := g.FloydWarshall()
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 60; trial++ {
		v := rng.Intn(g.NumVertices())
		pos := roadnet.VertexPosition(v)
		for _, k := range []int{1, 3, 6} {
			got, gotD := d.KNNWithDistances(pos, k)
			want := bruteNetKNN(fw, sites, v, k)
			if len(got) != len(want) {
				t.Fatalf("KNN(%d,%d) size %d, want %d", v, k, len(got), len(want))
			}
			for i := range got {
				if math.Abs(gotD[i]-fw[v][want[i]]) > 1e-9*(fw[v][want[i]]+1) {
					t.Fatalf("KNN(%d,%d)[%d] = %d at %g, want dist %g",
						v, k, i, got[i], gotD[i], fw[v][want[i]])
				}
			}
		}
	}
}

func TestKNNFromEdgePosition(t *testing.T) {
	g, sites := testNetwork(t, 100, 12, 7)
	d, err := Build(g, sites)
	if err != nil {
		t.Fatal(err)
	}
	// Pick an arbitrary edge and query from its middle; validate against
	// distances via the two endpoints.
	var eu, ev int
	var ew float64
	g.Edges(func(u, v int, w float64) {
		if eu == 0 && ev == 0 {
			eu, ev, ew = u, v, w
		}
	})
	pos := roadnet.Position{U: eu, V: ev, T: 0.4}
	ids, ds := d.KNNWithDistances(pos, 4)
	fw := g.FloydWarshall()
	for i, s := range ids {
		want := math.Min(0.4*ew+fw[eu][s], 0.6*ew+fw[ev][s])
		if math.Abs(ds[i]-want) > 1e-9*(want+1) {
			t.Fatalf("edge-position KNN[%d]=%d at %g, want %g", i, s, ds[i], want)
		}
	}
}

func bruteNetKNN(fw [][]float64, sites []int, v, k int) []int {
	s := append([]int(nil), sites...)
	sort.Slice(s, func(i, j int) bool {
		if fw[v][s[i]] != fw[v][s[j]] {
			return fw[v][s[i]] < fw[v][s[j]]
		}
		return s[i] < s[j]
	})
	if k > len(s) {
		k = len(s)
	}
	return s[:k]
}

func TestINSSupersetOfKNNBoundaries(t *testing.T) {
	g, sites := testNetwork(t, 150, 20, 8)
	d, err := Build(g, sites)
	if err != nil {
		t.Fatal(err)
	}
	knn := d.KNN(roadnet.VertexPosition(sites[0]), 4)
	ins, err := d.INS(knn)
	if err != nil {
		t.Fatal(err)
	}
	inKNN := make(map[int]bool)
	for _, s := range knn {
		inKNN[s] = true
	}
	for _, s := range ins {
		if inKNN[s] {
			t.Fatalf("INS %v overlaps kNN %v", ins, knn)
		}
	}
	for _, s := range knn {
		ns, _ := d.Neighbors(s)
		for _, u := range ns {
			if !inKNN[u] && !containsInt(ins, u) {
				t.Fatalf("INS misses neighbor %d of kNN member %d", u, s)
			}
		}
	}
}

// TestTheorem2Soundness checks the statement of Theorem 2 directly: build
// the guard subnetwork for a kNN set computed at one position, move the
// query to other positions, and verify that whenever the kNN among the
// guard sites *on the subnetwork* still equals the original kNN set, the
// true kNN on the full network is also that set.
func TestTheorem2Soundness(t *testing.T) {
	g, sites := testNetwork(t, 200, 25, 9)
	d, err := Build(g, sites)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	const k = 3
	validations, agreements := 0, 0
	for trial := 0; trial < 60; trial++ {
		v0 := rng.Intn(g.NumVertices())
		pos0 := roadnet.VertexPosition(v0)
		knn := d.KNN(pos0, k)
		ins, err := d.INS(knn)
		if err != nil {
			t.Fatal(err)
		}
		guard := append(append([]int(nil), knn...), ins...)
		sub := d.Subnetwork(guard)

		// Probe from nearby vertices (simulating movement) and from the
		// original position itself.
		probes := []roadnet.Position{pos0}
		for _, u := range g.AdjacentVertices(v0) {
			probes = append(probes, roadnet.VertexPosition(u))
			probes = append(probes, roadnet.Position{U: v0, V: u, T: 0.5})
		}
		for _, pos := range probes {
			subKNN, _ := sub.KNNSites(pos, guard, k)
			validations++
			if !sameSet(subKNN, knn) {
				continue // theorem makes no claim; the processor recomputes
			}
			agreements++
			fullKNN := d.KNN(pos, k)
			if !sameSet(fullKNN, knn) {
				// Distance ties can legitimately produce a different set
				// of equal distance; verify it is a genuine violation.
				_, fullD := d.KNNWithDistances(pos, k+1)
				if len(fullD) > k && math.Abs(fullD[k-1]-fullD[k]) < 1e-9 {
					continue
				}
				t.Fatalf("Theorem 2 violated at %+v: sub says %v valid, full kNN is %v",
					pos, knn, fullKNN)
			}
		}
	}
	if agreements == 0 {
		t.Fatal("test never exercised the valid branch")
	}
	if validations == 0 {
		t.Fatal("no validations performed")
	}
}

func sameSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	as, bs := append([]int(nil), a...), append([]int(nil), b...)
	sort.Ints(as)
	sort.Ints(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func TestSubnetworkSmallerThanFull(t *testing.T) {
	g, sites := testNetwork(t, 400, 50, 11)
	d, err := Build(g, sites)
	if err != nil {
		t.Fatal(err)
	}
	knn := d.KNN(roadnet.VertexPosition(sites[3]), 3)
	ins, _ := d.INS(knn)
	sub := d.Subnetwork(append(append([]int(nil), knn...), ins...))
	if sub.G.NumVertices() >= g.NumVertices() {
		t.Errorf("subnetwork has %d vertices, full %d — no reduction",
			sub.G.NumVertices(), g.NumVertices())
	}
	if sub.G.NumEdges() == 0 {
		t.Error("subnetwork has no edges")
	}
}

func TestTranslateMissingPosition(t *testing.T) {
	g, sites := testNetwork(t, 100, 6, 12)
	d, err := Build(g, sites)
	if err != nil {
		t.Fatal(err)
	}
	sub := d.Subnetwork(sites[:2])
	// Find a vertex not in the subnetwork.
	for v := 0; v < g.NumVertices(); v++ {
		if _, ok := sub.ToSub[v]; !ok {
			if _, ok := sub.Translate(roadnet.VertexPosition(v)); ok {
				t.Fatalf("translated position at missing vertex %d", v)
			}
			return
		}
	}
	t.Skip("subnetwork covered the whole graph")
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func BenchmarkBuild(b *testing.B) {
	g, err := roadnet.RandomPlanarNetwork(2000, testBounds, 0.5, 0.3, 13)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(14))
	sites := rng.Perm(2000)[:200]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(g, sites); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNetKNN(b *testing.B) {
	g, err := roadnet.RandomPlanarNetwork(2000, testBounds, 0.5, 0.3, 15)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(16))
	sites := rng.Perm(2000)[:200]
	d, err := Build(g, sites)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.KNN(roadnet.VertexPosition(i%2000), 8)
	}
}
