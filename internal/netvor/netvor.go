// Package netvor implements the network Voronoi diagram used by Section IV
// of the paper: data objects sit on road-network vertices, every network
// vertex is assigned to its nearest object (by network distance), and two
// objects are network Voronoi neighbors when their cells touch. The package
// also extracts the Theorem-2 subnetwork — the part of the network covered
// by the Voronoi cells of a set of objects — on which kNN validation can
// run instead of the full graph, and provides incremental network
// expansion (INE-style) kNN from arbitrary on-edge positions.
package netvor

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"repro/internal/roadnet"
)

// Diagram is the network Voronoi diagram of a set of sites (vertex ids
// carrying data objects) over a road network.
type Diagram struct {
	g     *roadnet.Graph
	sites []int

	isSite []bool
	owner  []int     // nearest site of each vertex (-1 if unreachable)
	dist   []float64 // distance from each vertex to its owner

	neighbors map[int][]int // site -> sorted neighboring sites
}

// Build computes the network Voronoi diagram of the given site vertices.
// Ties in vertex ownership break toward the lower site id, which makes the
// diagram deterministic; cells are nonempty because every site owns itself.
func Build(g *roadnet.Graph, sites []int) (*Diagram, error) {
	if len(sites) == 0 {
		return nil, fmt.Errorf("netvor: no sites")
	}
	n := g.NumVertices()
	d := &Diagram{
		g:      g,
		sites:  append([]int(nil), sites...),
		isSite: make([]bool, n),
		owner:  make([]int, n),
		dist:   make([]float64, n),
	}
	sort.Ints(d.sites)
	for _, s := range d.sites {
		if s < 0 || s >= n {
			return nil, fmt.Errorf("netvor: site %d out of range", s)
		}
		if d.isSite[s] {
			return nil, fmt.Errorf("netvor: duplicate site %d", s)
		}
		d.isSite[s] = true
	}
	for i := range d.owner {
		d.owner[i] = -1
		d.dist[i] = math.Inf(1)
	}

	// Multi-source Dijkstra carrying the owning site with each label.
	h := &ownerHeap{}
	for _, s := range d.sites {
		heap.Push(h, ownerItem{v: s, d: 0, site: s})
	}
	for h.Len() > 0 {
		it := heap.Pop(h).(ownerItem)
		if it.d > d.dist[it.v] || (it.d == d.dist[it.v] && d.owner[it.v] != -1 && d.owner[it.v] <= it.site) {
			continue
		}
		d.dist[it.v] = it.d
		d.owner[it.v] = it.site
		for _, u := range d.g.AdjacentVertices(it.v) {
			w, _ := d.g.EdgeWeight(it.v, u)
			nd := it.d + w
			if nd < d.dist[u] || (nd == d.dist[u] && it.site < d.owner[u]) {
				heap.Push(h, ownerItem{v: u, d: nd, site: it.site})
			}
		}
	}

	// Voronoi adjacency: two cells touch when some edge has endpoints with
	// different owners (the boundary point lies on that edge).
	adj := make(map[int]map[int]bool, len(d.sites))
	for _, s := range d.sites {
		adj[s] = make(map[int]bool)
	}
	g.Edges(func(u, v int, w float64) {
		a, b := d.owner[u], d.owner[v]
		if a != b && a != -1 && b != -1 {
			adj[a][b] = true
			adj[b][a] = true
		}
	})
	d.neighbors = make(map[int][]int, len(d.sites))
	for s, m := range adj {
		ns := make([]int, 0, len(m))
		for u := range m {
			ns = append(ns, u)
		}
		sort.Ints(ns)
		d.neighbors[s] = ns
	}
	return d, nil
}

// ownerItem is a Dijkstra label carrying the site that would own the
// vertex if this label wins.
type ownerItem struct {
	v    int
	d    float64
	site int
}

type ownerHeap []ownerItem

func (h ownerHeap) Len() int { return len(h) }
func (h ownerHeap) Less(i, j int) bool {
	if h[i].d != h[j].d {
		return h[i].d < h[j].d
	}
	return h[i].site < h[j].site
}
func (h ownerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *ownerHeap) Push(x any)   { *h = append(*h, x.(ownerItem)) }
func (h *ownerHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Graph returns the underlying road network.
func (d *Diagram) Graph() *roadnet.Graph { return d.g }

// Sites returns the sorted site vertex ids.
func (d *Diagram) Sites() []int { return d.sites }

// Len returns the number of data objects (sites); it makes the diagram an
// index.Backend alongside the plane VoR-tree.
func (d *Diagram) Len() int { return len(d.sites) }

// Contains reports whether object id is a site, mirroring the plane-index
// method of the same name.
func (d *Diagram) Contains(id int) bool { return d.IsSite(id) }

// IsSite reports whether vertex v carries a data object.
func (d *Diagram) IsSite(v int) bool { return v >= 0 && v < len(d.isSite) && d.isSite[v] }

// Owner returns the site owning vertex v and the network distance to it.
func (d *Diagram) Owner(v int) (site int, dist float64) { return d.owner[v], d.dist[v] }

// Neighbors returns the network Voronoi neighbor set of site s (Definition
// 3 transplanted to road networks), sorted by id.
func (d *Diagram) Neighbors(s int) ([]int, error) {
	ns, ok := d.neighbors[s]
	if !ok {
		return nil, fmt.Errorf("netvor: %d is not a site", s)
	}
	return ns, nil
}

// INS returns the influential neighbor set I(knn) of Definition 4 in the
// network setting: the union of the network Voronoi neighbor sets of the
// sites in knn, minus knn. Sorted by id.
func (d *Diagram) INS(knn []int) ([]int, error) {
	inKNN := make(map[int]bool, len(knn))
	for _, s := range knn {
		inKNN[s] = true
	}
	seen := make(map[int]bool)
	var out []int
	for _, s := range knn {
		ns, err := d.Neighbors(s)
		if err != nil {
			return nil, err
		}
		for _, u := range ns {
			if !inKNN[u] && !seen[u] {
				seen[u] = true
				out = append(out, u)
			}
		}
	}
	sort.Ints(out)
	return out, nil
}

// KNN returns the k nearest sites to the given network position in
// ascending network-distance order, by incremental network expansion
// (Dijkstra that stops after k sites are settled).
func (d *Diagram) KNN(pos roadnet.Position, k int) []int {
	ids, _ := d.KNNWithDistances(pos, k)
	return ids
}

// KNNWithDistances is KNN returning the matching network distances too.
func (d *Diagram) KNNWithDistances(pos roadnet.Position, k int) ([]int, []float64) {
	ids, ds, _ := d.KNNWithDistancesCounted(pos, k)
	return ids, ds
}

// KNNWithDistancesCounted is KNNWithDistances additionally returning the
// number of edge relaxations this search performed — exact per call even
// under concurrent searches on the shared network, unlike a before/after
// diff of the graph's global counter (which is still charged too).
func (d *Diagram) KNNWithDistancesCounted(pos roadnet.Position, k int) ([]int, []float64, int) {
	if k <= 0 {
		return nil, nil, 0
	}
	dist := make(map[int]float64, 64)
	h := &roadPQ{}
	for _, s := range pos.Sources(d.g) {
		if cur, ok := dist[s.V]; !ok || s.D < cur {
			dist[s.V] = s.D
			heap.Push(h, roadPQItem{s.V, s.D})
		}
	}
	done := make(map[int]bool, 64)
	var ids []int
	var ds []float64
	relaxed := 0
	for h.Len() > 0 && len(ids) < k {
		it := heap.Pop(h).(roadPQItem)
		if done[it.v] {
			continue
		}
		done[it.v] = true
		if d.isSite[it.v] {
			ids = append(ids, it.v)
			ds = append(ds, it.d)
			if len(ids) == k {
				break
			}
		}
		for _, u := range d.g.AdjacentVertices(it.v) {
			relaxed++
			w, _ := d.g.EdgeWeight(it.v, u)
			nd := it.d + w
			if cur, ok := dist[u]; !ok || nd < cur {
				dist[u] = nd
				heap.Push(h, roadPQItem{u, nd})
			}
		}
	}
	d.g.AddRelaxations(relaxed)
	return ids, ds, relaxed
}

type roadPQItem struct {
	v int
	d float64
}

type roadPQ []roadPQItem

func (h roadPQ) Len() int { return len(h) }
func (h roadPQ) Less(i, j int) bool {
	if h[i].d != h[j].d {
		return h[i].d < h[j].d
	}
	return h[i].v < h[j].v
}
func (h roadPQ) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *roadPQ) Push(x any)   { *h = append(*h, x.(roadPQItem)) }
func (h *roadPQ) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Subnetwork is the Theorem-2 search space: the part of the road network
// covered by the Voronoi cells of a chosen site set, materialized as its
// own Graph with vertex id translation maps.
type Subnetwork struct {
	G      *roadnet.Graph
	ToSub  map[int]int // full-network vertex id -> subnetwork id
	ToFull []int       // subnetwork id -> full-network id
}

// Subnetwork extracts the union of the Voronoi cells of the given sites:
// all vertices owned by one of them plus every edge with at least one
// endpoint inside (boundary edges are kept whole, which keeps the search
// space a superset of the exact cell union and preserves Theorem 2's
// distance guarantee).
func (d *Diagram) Subnetwork(sites []int) *Subnetwork {
	want := make(map[int]bool, len(sites))
	for _, s := range sites {
		want[s] = true
	}
	sub := &Subnetwork{G: roadnet.NewGraph(), ToSub: make(map[int]int)}
	addVertex := func(v int) int {
		if id, ok := sub.ToSub[v]; ok {
			return id
		}
		id := sub.G.AddVertex(d.g.Point(v))
		sub.ToSub[v] = id
		sub.ToFull = append(sub.ToFull, v)
		return id
	}
	d.g.Edges(func(u, v int, w float64) {
		if want[d.owner[u]] || want[d.owner[v]] {
			su, sv := addVertex(u), addVertex(v)
			if err := sub.G.AddEdge(su, sv, w); err != nil {
				panic(fmt.Sprintf("netvor: subnetwork edge: %v", err))
			}
		}
	})
	// Isolated sites (possible only in degenerate graphs) still get a
	// vertex so distance queries can resolve them.
	for s := range want {
		addVertex(s)
	}
	return sub
}

// Translate converts a full-network position into the subnetwork, or
// ok=false when the position's edge is not part of the subnetwork.
func (s *Subnetwork) Translate(pos roadnet.Position) (roadnet.Position, bool) {
	if v, ok := pos.AtVertex(); ok {
		sv, ok := s.ToSub[v]
		if !ok {
			return roadnet.Position{}, false
		}
		return roadnet.VertexPosition(sv), true
	}
	su, ok := s.ToSub[pos.U]
	if !ok {
		return roadnet.Position{}, false
	}
	sv, ok := s.ToSub[pos.V]
	if !ok {
		return roadnet.Position{}, false
	}
	if _, ok := s.G.EdgeWeight(su, sv); !ok {
		return roadnet.Position{}, false
	}
	return roadnet.Position{U: su, V: sv, T: pos.T}, true
}

// KNNSites returns the k nearest of the given sites to pos, computed
// entirely on the subnetwork, together with their subnetwork distances.
// Results are full-network vertex ids. This is the Theorem-2 validation
// primitive: if the answer (as a set) equals the current kNN set, the kNN
// set is valid on the full network; subnetwork distances to non-kNN guard
// objects may exceed their full-network values, so only the set comparison
// is meaningful.
func (s *Subnetwork) KNNSites(pos roadnet.Position, sites []int, k int) ([]int, []float64) {
	if k <= 0 {
		return nil, nil
	}
	spos, ok := s.Translate(pos)
	if !ok {
		return nil, nil
	}
	want := make(map[int]bool, len(sites))
	for _, site := range sites {
		if sv, ok := s.ToSub[site]; ok {
			want[sv] = true
		}
	}
	dist := make(map[int]float64, 64)
	h := &roadPQ{}
	for _, src := range spos.Sources(s.G) {
		if cur, ok := dist[src.V]; !ok || src.D < cur {
			dist[src.V] = src.D
			heap.Push(h, roadPQItem{src.V, src.D})
		}
	}
	done := make(map[int]bool, 64)
	var ids []int
	var ds []float64
	relaxed := 0
	for h.Len() > 0 && len(ids) < k {
		it := heap.Pop(h).(roadPQItem)
		if done[it.v] {
			continue
		}
		done[it.v] = true
		if want[it.v] {
			ids = append(ids, s.ToFull[it.v])
			ds = append(ds, it.d)
			if len(ids) == k {
				break
			}
		}
		for _, u := range s.G.AdjacentVertices(it.v) {
			relaxed++
			w, _ := s.G.EdgeWeight(it.v, u)
			nd := it.d + w
			if cur, ok := dist[u]; !ok || nd < cur {
				dist[u] = nd
				heap.Push(h, roadPQItem{u, nd})
			}
		}
	}
	s.G.AddRelaxations(relaxed)
	return ids, ds
}

// DistancesToSites returns the network distance from pos to each given
// site, computed on the subnetwork. Because the subnetwork omits edges
// outside the guard cells, these are upper bounds on the full-network
// distances (exact for the current kNN members while the kNN set is
// valid). Sites missing from the subnetwork report +Inf.
func (s *Subnetwork) DistancesToSites(pos roadnet.Position, sites []int) []float64 {
	out := make([]float64, len(sites))
	spos, ok := s.Translate(pos)
	if !ok {
		for i := range out {
			out[i] = math.Inf(1)
		}
		return out
	}
	dist := s.G.ShortestDistances(spos.Sources(s.G), -1)
	for i, site := range sites {
		if sv, ok := s.ToSub[site]; ok {
			out[i] = dist[sv]
		} else {
			out[i] = math.Inf(1)
		}
	}
	return out
}
