// Package netvor implements the network Voronoi diagram used by Section IV
// of the paper: data objects sit on road-network vertices, every network
// vertex is assigned to its nearest object (by network distance), and two
// objects are network Voronoi neighbors when their cells touch. The package
// also extracts the Theorem-2 subnetwork — the part of the network covered
// by the Voronoi cells of a set of objects — on which kNN validation can
// run instead of the full graph, and provides incremental network
// expansion (INE-style) kNN from arbitrary on-edge positions.
//
// The diagram is an online structure with the same publication lifecycle
// as the plane VoR-tree: Insert/Remove mutate the site set incrementally
// (relabeling only the vertices whose ownership actually changes), Branch
// hands out a new mutable version by copy-on-write over the shortest-path
// label pages (freezing the receiver, whose reads stay race-free forever),
// and Clone is the deep-copy fallback. Cell adjacency is maintained
// incrementally through per-pair edge-support counts, so a mutation's cost
// is proportional to the territory it moves, not to the network size.
//
// Searches run over the graph's packed CSR view with dense epoch-stamped
// scratch and are pruned by the graph's ALT landmarks: the diagram keeps a
// projection of its site set onto the landmark axes, maintained exactly
// across Insert and conservatively (superset intervals) across Remove, so
// a pruned search always returns exactly what plain Dijkstra would — see
// OracleKNNWithDistances for the unpruned oracle the tests compare against.
package netvor

import (
	"cmp"
	"errors"
	"fmt"
	"math"
	"slices"
	"sort"
	"sync/atomic"

	"repro/internal/roadnet"
)

// Errors returned by diagram mutations.
var (
	// ErrFrozen is returned by mutations on a diagram frozen by Branch;
	// a published snapshot stays immutable forever.
	ErrFrozen = errors.New("netvor: diagram frozen by Branch")
	// ErrSiteExists is returned when inserting a vertex that already
	// carries a data object.
	ErrSiteExists = errors.New("netvor: site already exists")
	// ErrUnknownSite is returned when removing a vertex that carries no
	// data object.
	ErrUnknownSite = errors.New("netvor: unknown site")
	// ErrLastSite is returned when removing the only remaining site; the
	// diagram of an empty site set is undefined.
	ErrLastSite = errors.New("netvor: cannot remove the last site")
)

// pageSize is the label-page granularity: Branch copies the page table
// (O(vertices/pageSize)) and mutations copy only the pages whose labels
// they rewrite.
const pageSize = 256

// labelPage holds the owner/dist labels of one run of pageSize vertices.
// Pages are immutable once shared between versions; writers copy first.
type labelPage struct {
	owner []int
	dist  []float64
}

// adjPageSize is the adjacency-page granularity: small enough that a
// mutation's copy-on-write footprint stays a few KB, large enough that
// Branch's page-table copy stays short.
const adjPageSize = 64

// adjEntry is one vertex's slot in the adjacency table. For a site it
// holds the sorted neighbor sites and, parallel to them, the number of
// edges supporting each adjacency (the count that lets adjacency update
// incrementally as territory moves). Slices are immutable once installed:
// every change writes fresh ones, so entries shared across versions never
// change underneath their readers.
type adjEntry struct {
	sites  []int
	counts []int
}

// adjPage holds the adjacency entries of one run of adjPageSize vertices.
type adjPage struct {
	entries []adjEntry
}

// siteProj is the projection of the diagram's site set onto its landmark
// axes: per landmark, the [lo,hi] interval of landmark distances over the
// sites. The pruned searches lower-bound the distance to the nearest site
// through these intervals (roadnet.ALTBound). exact records whether the
// intervals are over precisely the current site set: Insert widens them
// exactly, Remove only flags them stale — intervals over a SUPERSET of
// the sites are still admissible (wider intervals only weaken the bound),
// so a stale projection can cost pruning power but never a wrong answer.
// The next search lazily rebuilds an exact one (see altProj).
type siteProj struct {
	lo, hi []float64
	exact  bool
}

// relabel records one vertex's previous owner during an Insert claim —
// the dense replacement for the old map[int]int mutation log.
type relabel struct {
	v, old int32
}

// mutScratch is reusable working memory for diagram mutations: the owner
// frontier heap, the Insert relabel log, and the Remove cell/DFS buffers.
// One scratch is shared down a Branch lineage (only the unfrozen head
// mutates, and the store serializes mutations), so steady-state site
// churn allocates nothing here.
type mutScratch struct {
	oh        ownerHeap4
	relabeled []relabel
	cell      []int32
	stack     []int32
}

// Diagram is the network Voronoi diagram of a set of sites (vertex ids
// carrying data objects) over a road network.
type Diagram struct {
	g     *roadnet.Graph
	sites []int // sorted site vertex ids; owned by this version

	// Copy-on-write label tables: owner (nearest site of each vertex, -1
	// if unreachable) and dist (distance from each vertex to its owner).
	pages  []*labelPage
	shared []bool // page i is shared with another version; copy before write
	copied int    // pages copied or created through this version

	// Copy-on-write adjacency table, indexed by site vertex id: each
	// site's sorted network Voronoi neighbors plus per-neighbor edge
	// supports. Paged like the label tables so Branch never pays O(sites).
	adj       []*adjPage
	adjShared []bool

	// ALT state: the graph's landmark set as captured at Build, the site
	// projection onto it, and the lineage-shared lazy-rebuild counter.
	lm           *roadnet.Landmarks
	proj         atomic.Pointer[siteProj]
	projRebuilds *atomic.Uint64

	mut *mutScratch // shared down the Branch lineage; see mutScratch

	frozen bool
}

// Build computes the network Voronoi diagram of the given site vertices.
// Ties in vertex ownership break toward the lower site id, which makes the
// diagram deterministic; cells are nonempty because every site owns itself.
func Build(g *roadnet.Graph, sites []int) (*Diagram, error) {
	if len(sites) == 0 {
		return nil, fmt.Errorf("netvor: no sites")
	}
	n := g.NumVertices()
	d := &Diagram{
		g:     g,
		sites: append([]int(nil), sites...),
	}
	d.initPages(n)
	sort.Ints(d.sites)
	for i, s := range d.sites {
		if s < 0 || s >= n {
			return nil, fmt.Errorf("netvor: site %d out of range", s)
		}
		if i > 0 && d.sites[i-1] == s {
			return nil, fmt.Errorf("netvor: duplicate site %d", s)
		}
	}

	// Multi-source Dijkstra carrying the owning site with each label.
	c := g.CSR()
	var h ownerHeap4
	for _, s := range d.sites {
		h.push(ownerItem{v: int32(s), d: 0, site: int32(s)})
	}
	for len(h) > 0 {
		it := h.pop()
		o, dd := d.label(int(it.v))
		if it.d > dd || (it.d == dd && o != -1 && int32(o) <= it.site) {
			continue
		}
		d.setLabel(int(it.v), int(it.site), it.d)
		for e := c.Off[it.v]; e < c.Off[it.v+1]; e++ {
			u := c.To[e]
			nd := it.d + c.W[e]
			uo, ud := d.label(int(u))
			if nd < ud || (nd == ud && int(it.site) < uo) {
				h.push(ownerItem{v: u, d: nd, site: it.site})
			}
		}
	}

	// Voronoi adjacency: two cells touch when some edge has endpoints with
	// different owners (the boundary point lies on that edge).
	g.Edges(func(u, v int, w float64) {
		a, _ := d.label(u)
		b, _ := d.label(v)
		d.incPair(a, b)
	})

	d.lm = g.Landmarks()
	d.proj.Store(d.buildSiteProj())
	d.projRebuilds = new(atomic.Uint64)
	return d, nil
}

// buildSiteProj computes the exact projection of the current site set.
func (d *Diagram) buildSiteProj() *siteProj {
	lo, hi := d.lm.Project(d.sites, nil, nil)
	return &siteProj{lo: lo, hi: hi, exact: true}
}

// altProj returns a projection of the site set usable for pruning,
// lazily rebuilding an exact one when a Remove left it stale. The rebuild
// races benignly under concurrent reads of a frozen version: every racer
// computes the identical projection from the immutable site set.
func (d *Diagram) altProj() *siteProj {
	if p := d.proj.Load(); p != nil && p.exact {
		return p
	}
	p := d.buildSiteProj()
	d.proj.Store(p)
	if d.projRebuilds != nil {
		d.projRebuilds.Add(1)
	}
	return p
}

// widenProj extends an exact projection with the new site v — min/max
// against v's landmark distances — keeping it exact without a rebuild.
func (d *Diagram) widenProj(v int) {
	p := d.proj.Load()
	if p == nil || !p.exact || d.lm == nil || len(p.lo) != d.lm.Count() {
		return
	}
	np := &siteProj{
		lo:    append([]float64(nil), p.lo...),
		hi:    append([]float64(nil), p.hi...),
		exact: true,
	}
	for l := 0; l < d.lm.Count(); l++ {
		dv := d.lm.DistRow(l)[v]
		if dv < np.lo[l] {
			np.lo[l] = dv
		}
		if dv > np.hi[l] {
			np.hi[l] = dv
		}
	}
	d.proj.Store(np)
}

// ALTStats reports the ALT instrumentation: the landmark count and the
// number of lazy exact-projection rebuilds performed across this
// diagram's Branch lineage.
func (d *Diagram) ALTStats() (landmarks int, projRebuilds uint64) {
	if d.lm != nil {
		landmarks = d.lm.Count()
	}
	if d.projRebuilds != nil {
		projRebuilds = d.projRebuilds.Load()
	}
	return landmarks, projRebuilds
}

// mutSc returns the lineage's mutation scratch, creating it lazily.
func (d *Diagram) mutSc() *mutScratch {
	if d.mut == nil {
		d.mut = &mutScratch{}
	}
	return d.mut
}

// initPages allocates fresh, unshared label pages covering n vertices,
// every label set to (unreachable, +Inf).
func (d *Diagram) initPages(n int) {
	np := (n + pageSize - 1) / pageSize
	d.pages = make([]*labelPage, np)
	d.shared = make([]bool, np)
	for i := range d.pages {
		lo := i * pageSize
		hi := min(lo+pageSize, n)
		pg := &labelPage{owner: make([]int, hi-lo), dist: make([]float64, hi-lo)}
		for j := range pg.owner {
			pg.owner[j] = -1
			pg.dist[j] = math.Inf(1)
		}
		d.pages[i] = pg
	}
	d.copied = np
	na := (n + adjPageSize - 1) / adjPageSize
	d.adj = make([]*adjPage, na)
	d.adjShared = make([]bool, na)
	for i := range d.adj {
		lo := i * adjPageSize
		hi := min(lo+adjPageSize, n)
		d.adj[i] = &adjPage{entries: make([]adjEntry, hi-lo)}
	}
}

// adjAt returns vertex v's adjacency entry for reading.
func (d *Diagram) adjAt(v int) *adjEntry {
	return &d.adj[v/adjPageSize].entries[v%adjPageSize]
}

// writableAdj returns vertex v's adjacency entry for writing, copying the
// page (shallow — entry slices stay shared until rewritten) when it is
// shared with another version.
func (d *Diagram) writableAdj(v int) *adjEntry {
	pi := v / adjPageSize
	if d.adjShared[pi] {
		d.adj[pi] = &adjPage{entries: append([]adjEntry(nil), d.adj[pi].entries...)}
		d.adjShared[pi] = false
	}
	return &d.adj[pi].entries[v%adjPageSize]
}

// label returns vertex v's (owner, dist).
func (d *Diagram) label(v int) (int, float64) {
	pg := d.pages[v/pageSize]
	return pg.owner[v%pageSize], pg.dist[v%pageSize]
}

// setLabel writes vertex v's (owner, dist), copying the page first when it
// is shared with another version.
func (d *Diagram) setLabel(v int, owner int, dist float64) {
	pi := v / pageSize
	if d.shared[pi] {
		old := d.pages[pi]
		pg := &labelPage{
			owner: append([]int(nil), old.owner...),
			dist:  append([]float64(nil), old.dist...),
		}
		d.pages[pi] = pg
		d.shared[pi] = false
		d.copied++
	}
	pg := d.pages[pi]
	pg.owner[v%pageSize] = owner
	pg.dist[v%pageSize] = dist
}

// Branch returns a new mutable version of the diagram by copy-on-write:
// the label page table is copied (O(vertices/pageSize)), pages themselves
// are shared until written, and the site/adjacency tables are copied at
// their own (site-proportional) size. The receiver is frozen — reads stay
// valid and race-free forever, mutations are rejected with ErrFrozen —
// which is exactly the lifecycle of a published index snapshot. The child
// shares no writer state with the parent (the mutation scratch is shared,
// but only the unfrozen head of a lineage ever touches it), so abandoning
// it mid-mutation can never corrupt the published version.
func (d *Diagram) Branch() *Diagram {
	d.frozen = true
	child := &Diagram{
		g:            d.g,
		sites:        append([]int(nil), d.sites...),
		pages:        append([]*labelPage(nil), d.pages...),
		shared:       make([]bool, len(d.pages)),
		adj:          append([]*adjPage(nil), d.adj...),
		adjShared:    make([]bool, len(d.adj)),
		lm:           d.lm,
		projRebuilds: d.projRebuilds,
		mut:          d.mut,
	}
	child.proj.Store(d.proj.Load())
	for i := range child.shared {
		child.shared[i] = true
	}
	for i := range child.adjShared {
		child.adjShared[i] = true
	}
	return child
}

// Clone returns a deep, unfrozen copy sharing nothing but the road network
// itself — the fallback publication path mirroring vortree.Index.Clone.
func (d *Diagram) Clone() *Diagram {
	c := &Diagram{
		g:            d.g,
		sites:        append([]int(nil), d.sites...),
		pages:        make([]*labelPage, len(d.pages)),
		shared:       make([]bool, len(d.pages)),
		copied:       len(d.pages),
		adj:          make([]*adjPage, len(d.adj)),
		adjShared:    make([]bool, len(d.adj)),
		lm:           d.lm,
		projRebuilds: new(atomic.Uint64),
	}
	c.proj.Store(d.proj.Load())
	for i, pg := range d.pages {
		c.pages[i] = &labelPage{
			owner: append([]int(nil), pg.owner...),
			dist:  append([]float64(nil), pg.dist...),
		}
	}
	for i, pg := range d.adj {
		entries := make([]adjEntry, len(pg.entries))
		for j, e := range pg.entries {
			entries[j] = adjEntry{
				sites:  append([]int(nil), e.sites...),
				counts: append([]int(nil), e.counts...),
			}
		}
		c.adj[i] = &adjPage{entries: entries}
	}
	return c
}

// ShareStats reports the structural-sharing instrumentation of the label
// tables: the pages copied or created through this version since it was
// branched, and the total page count. 1 - copied/total is the fraction of
// shortest-path labels the latest epoch shares with its predecessor.
func (d *Diagram) ShareStats() (copied, total int) { return d.copied, len(d.pages) }

// incPair adds one edge of support between the cells of sites a and b,
// installing the Voronoi adjacency when the first supporting edge appears.
func (d *Diagram) incPair(a, b int) {
	if a == b || a == -1 || b == -1 {
		return
	}
	d.addSupport(a, b)
	d.addSupport(b, a)
}

// decPair removes one edge of support between the cells of sites a and b,
// dropping the adjacency when the last supporting edge goes.
func (d *Diagram) decPair(a, b int) {
	if a == b || a == -1 || b == -1 {
		return
	}
	d.dropSupport(a, b)
	d.dropSupport(b, a)
}

// addSupport records one more edge supporting t in s's neighbor list.
// Entry slices are rewritten, never mutated: shared copies held by other
// versions (or captured in mutation logs) never change underneath their
// readers.
func (d *Diagram) addSupport(s, t int) {
	e := d.writableAdj(s)
	i := sort.SearchInts(e.sites, t)
	if i < len(e.sites) && e.sites[i] == t {
		counts := append([]int(nil), e.counts...)
		counts[i]++
		e.counts = counts
		return
	}
	sites := make([]int, 0, len(e.sites)+1)
	sites = append(sites, e.sites[:i]...)
	sites = append(sites, t)
	sites = append(sites, e.sites[i:]...)
	counts := make([]int, 0, len(e.counts)+1)
	counts = append(counts, e.counts[:i]...)
	counts = append(counts, 1)
	counts = append(counts, e.counts[i:]...)
	e.sites, e.counts = sites, counts
}

// dropSupport removes one edge supporting t in s's neighbor list,
// dropping the adjacency when the last supporting edge goes.
func (d *Diagram) dropSupport(s, t int) {
	e := d.writableAdj(s)
	i := sort.SearchInts(e.sites, t)
	if i >= len(e.sites) || e.sites[i] != t {
		return
	}
	if e.counts[i] > 1 {
		counts := append([]int(nil), e.counts...)
		counts[i]--
		e.counts = counts
		return
	}
	sites := make([]int, 0, len(e.sites)-1)
	sites = append(sites, e.sites[:i]...)
	sites = append(sites, e.sites[i+1:]...)
	counts := make([]int, 0, len(e.counts)-1)
	counts = append(counts, e.counts[:i]...)
	counts = append(counts, e.counts[i+1:]...)
	e.sites, e.counts = sites, counts
}

// insertSorted returns a fresh sorted slice with x added.
func insertSorted(ns []int, x int) []int {
	i := sort.SearchInts(ns, x)
	out := make([]int, 0, len(ns)+1)
	out = append(out, ns[:i]...)
	out = append(out, x)
	return append(out, ns[i:]...)
}

// removeSorted returns a fresh sorted slice with x removed.
func removeSorted(ns []int, x int) []int {
	i := sort.SearchInts(ns, x)
	if i >= len(ns) || ns[i] != x {
		return ns
	}
	out := make([]int, 0, len(ns)-1)
	out = append(out, ns[:i]...)
	return append(out, ns[i+1:]...)
}

// Insert adds a data object at vertex v and repairs the diagram
// incrementally: one Dijkstra from v claims exactly the territory the new
// cell wins (plus a frontier ring of failed relaxations), and the
// adjacency supports of the relabeled vertices' incident edges move to the
// new owner. Cost is proportional to the new cell's size, not the network.
func (d *Diagram) Insert(v int) error {
	if d.frozen {
		return ErrFrozen
	}
	if v < 0 || v >= d.g.NumVertices() {
		return fmt.Errorf("netvor: site %d out of range", v)
	}
	if d.IsSite(v) {
		return fmt.Errorf("%w: %d", ErrSiteExists, v)
	}

	// Claim Dijkstra: labels all carry site v. mut.relabeled logs each
	// relabeled vertex's previous owner; a vertex is accepted at most once
	// (pushes require strict improvement or a strictly better tie), so the
	// log holds each vertex exactly once.
	c := d.g.CSR()
	mut := d.mutSc()
	mut.oh = mut.oh[:0]
	mut.relabeled = mut.relabeled[:0]
	mut.oh.push(ownerItem{v: int32(v), d: 0, site: int32(v)})
	for len(mut.oh) > 0 {
		it := mut.oh.pop()
		o, dd := d.label(int(it.v))
		if !(it.d < dd || (it.d == dd && v < o)) {
			continue
		}
		mut.relabeled = append(mut.relabeled, relabel{v: it.v, old: int32(o)})
		d.setLabel(int(it.v), v, it.d)
		for e := c.Off[it.v]; e < c.Off[it.v+1]; e++ {
			u := c.To[e]
			nd := it.d + c.W[e]
			uo, ud := d.label(int(u))
			if nd < ud || (nd == ud && v < uo) {
				mut.oh.push(ownerItem{v: u, d: nd, site: int32(v)})
			}
		}
	}

	// Move the adjacency support of every edge touching relabeled
	// territory from the old owners to v. Post-claim, owner(x) == v is
	// exactly "x was relabeled" (v owned nothing before), so membership
	// reads off the label table and old owners come from the sorted log.
	slices.SortFunc(mut.relabeled, func(a, b relabel) int { return cmp.Compare(a.v, b.v) })
	for _, r := range mut.relabeled {
		ou := int(r.old)
		for e := c.Off[r.v]; e < c.Off[r.v+1]; e++ {
			x := c.To[e]
			if xo, _ := d.label(int(x)); xo == v {
				if r.v < x {
					i, _ := slices.BinarySearchFunc(mut.relabeled, x, func(a relabel, t int32) int { return cmp.Compare(a.v, t) })
					d.decPair(ou, int(mut.relabeled[i].old))
				}
				continue
			} else {
				d.decPair(ou, xo)
				d.incPair(v, xo)
			}
		}
	}
	d.sites = insertSorted(d.sites, v)
	d.widenProj(v)
	return nil
}

// Remove deletes the data object at vertex s and repairs the diagram
// incrementally: the orphaned cell is collected (it is connected, because
// every vertex's shortest-path predecessor shares its owner), its labels
// reset, and a multi-source Dijkstra seeded from the cell's boundary
// redistributes the territory among the surviving neighbors. Cost is
// proportional to the removed cell, not the network.
func (d *Diagram) Remove(s int) error {
	if d.frozen {
		return ErrFrozen
	}
	if !d.IsSite(s) {
		return fmt.Errorf("%w: %d", ErrUnknownSite, s)
	}
	if len(d.sites) == 1 {
		return ErrLastSite
	}

	// Collect the cell by DFS over s-owned vertices, resetting each label
	// to (unreachable, +Inf) as it is discovered — the reset doubles as
	// the visited mark, so no membership set is needed.
	c := d.g.CSR()
	mut := d.mutSc()
	mut.cell = append(mut.cell[:0], int32(s))
	mut.stack = append(mut.stack[:0], int32(s))
	d.setLabel(s, -1, math.Inf(1))
	for len(mut.stack) > 0 {
		u := mut.stack[len(mut.stack)-1]
		mut.stack = mut.stack[:len(mut.stack)-1]
		for e := c.Off[u]; e < c.Off[u+1]; e++ {
			x := c.To[e]
			if o, _ := d.label(int(x)); o == s {
				d.setLabel(int(x), -1, math.Inf(1))
				mut.cell = append(mut.cell, x)
				mut.stack = append(mut.stack, x)
			}
		}
	}
	slices.Sort(mut.cell)

	// Seed the repair from every boundary edge: a surviving neighbor's
	// exact label plus the crossing edge. In-cell neighbors now read
	// (-1, +Inf) and so seed nothing. The repair frontier never escapes
	// the hole on its own: outside labels are already optimal (with the
	// min-site tie-break) with respect to the surviving sites, so the
	// push test below rejects every outward relaxation.
	mut.oh = mut.oh[:0]
	for _, u := range mut.cell {
		for e := c.Off[u]; e < c.Off[u+1]; e++ {
			x := c.To[e]
			if xo, xd := d.label(int(x)); xo != -1 {
				mut.oh.push(ownerItem{v: u, d: xd + c.W[e], site: int32(xo)})
			}
		}
	}
	for len(mut.oh) > 0 {
		it := mut.oh.pop()
		o, dd := d.label(int(it.v))
		if !(it.d < dd || (it.d == dd && int(it.site) < o)) {
			continue
		}
		d.setLabel(int(it.v), int(it.site), it.d)
		for e := c.Off[it.v]; e < c.Off[it.v+1]; e++ {
			u := c.To[e]
			nd := it.d + c.W[e]
			uo, ud := d.label(int(u))
			if nd < ud || (nd == ud && int(it.site) < uo) {
				mut.oh.push(ownerItem{v: u, d: nd, site: it.site})
			}
		}
	}

	// Move the adjacency support of the cell's edges to the new owners.
	// Pre-removal, edges inside the cell carried no support (both ends s)
	// and boundary edges supported (s, outside-owner). Cell membership is
	// a binary search in the sorted cell list.
	for _, u := range mut.cell {
		uo, _ := d.label(int(u))
		for e := c.Off[u]; e < c.Off[u+1]; e++ {
			x := c.To[e]
			xo, _ := d.label(int(x))
			if _, inCell := slices.BinarySearch(mut.cell, x); inCell {
				if u < x {
					d.incPair(uo, xo)
				}
				continue
			}
			d.decPair(s, xo)
			d.incPair(uo, xo)
		}
	}
	if e := d.adjAt(s); len(e.sites) != 0 {
		return fmt.Errorf("netvor: remove %d left dangling adjacency %v", s, e.sites)
	}
	d.sites = removeSorted(d.sites, s)
	// The projection may now be wider than the site set. That is still
	// admissible (superset intervals), so flag it for a lazy rebuild
	// instead of paying for one on every remove.
	if p := d.proj.Load(); p != nil && p.exact {
		d.proj.Store(&siteProj{lo: p.lo, hi: p.hi, exact: false})
	}
	return nil
}

// ownerItem is a Dijkstra label carrying the site that would own the
// vertex if this label wins.
type ownerItem struct {
	d    float64
	v    int32
	site int32
}

// ownerHeap4 is a hand-rolled 4-ary min-heap over owner labels, ordered by
// (distance, then site id) — the tie order that makes lower site ids win
// contested territory deterministically. Like roadnet's heap4 it avoids
// container/heap's per-push boxing allocation.
type ownerHeap4 []ownerItem

func (h ownerHeap4) less(i, j int) bool {
	if h[i].d != h[j].d {
		return h[i].d < h[j].d
	}
	return h[i].site < h[j].site
}

func (h *ownerHeap4) push(it ownerItem) {
	s := append(*h, it)
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !s.less(i, p) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
	*h = s
}

func (h *ownerHeap4) pop() ownerItem {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	*h = s
	i := 0
	for {
		first := 4*i + 1
		if first >= len(s) {
			break
		}
		m := first
		end := first + 4
		if end > len(s) {
			end = len(s)
		}
		for c := first + 1; c < end; c++ {
			if s.less(c, m) {
				m = c
			}
		}
		if !s.less(m, i) {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return top
}

// Graph returns the underlying road network.
func (d *Diagram) Graph() *roadnet.Graph { return d.g }

// Sites returns the sorted site vertex ids. The slice is shared; callers
// must not modify it.
func (d *Diagram) Sites() []int { return d.sites }

// Len returns the number of data objects (sites); it makes the diagram an
// index.Backend alongside the plane VoR-tree.
func (d *Diagram) Len() int { return len(d.sites) }

// Contains reports whether object id is a site, mirroring the plane-index
// method of the same name.
func (d *Diagram) Contains(id int) bool { return d.IsSite(id) }

// IsSite reports whether vertex v carries a data object. A site always
// owns itself at distance 0, so site membership reads off the label table.
func (d *Diagram) IsSite(v int) bool {
	if v < 0 || v >= d.g.NumVertices() {
		return false
	}
	o, _ := d.label(v)
	return o == v
}

// Owner returns the site owning vertex v and the network distance to it.
func (d *Diagram) Owner(v int) (site int, dist float64) { return d.label(v) }

// Neighbors returns the network Voronoi neighbor set of site s (Definition
// 3 transplanted to road networks), sorted by id. The returned slice is
// immutable — later mutations install fresh lists rather than rewriting it.
func (d *Diagram) Neighbors(s int) ([]int, error) {
	if !d.IsSite(s) {
		return nil, fmt.Errorf("netvor: %d is not a site", s)
	}
	if ns := d.adjAt(s).sites; ns != nil {
		return ns, nil
	}
	return []int{}, nil // an isolated cell has no neighbors, not no entry
}

// AppendNeighbors is Neighbors appending onto dst — the allocation-free
// form mirroring voronoi.Diagram.AppendNeighbors.
func (d *Diagram) AppendNeighbors(s int, dst []int) ([]int, error) {
	if !d.IsSite(s) {
		return dst, fmt.Errorf("netvor: %d is not a site", s)
	}
	return append(dst, d.adjAt(s).sites...), nil
}

// INS returns the influential neighbor set I(knn) of Definition 4 in the
// network setting: the union of the network Voronoi neighbor sets of the
// sites in knn, minus knn. Sorted by id.
func (d *Diagram) INS(knn []int) ([]int, error) {
	var sc SearchScratch
	return d.AppendINS(knn, nil, &sc)
}

// AppendINS is INS appending onto dst with caller-supplied scratch.
func (d *Diagram) AppendINS(knn []int, dst []int, sc *SearchScratch) ([]int, error) {
	road := &sc.road
	road.MarkBegin(d.g.NumVertices())
	for _, s := range knn {
		road.SetMark(int32(s), 1)
	}
	start := len(dst)
	for _, s := range knn {
		if !d.IsSite(s) {
			return dst[:start], fmt.Errorf("netvor: %d is not a site", s)
		}
		for _, u := range d.adjAt(s).sites {
			if road.Mark(int32(u)) == 0 {
				road.SetMark(int32(u), 2)
				dst = append(dst, u)
			}
		}
	}
	sort.Ints(dst[start:])
	return dst, nil
}

// KNN returns the k nearest sites to the given network position in
// ascending network-distance order, by incremental network expansion
// (Dijkstra that stops after k sites are settled).
func (d *Diagram) KNN(pos roadnet.Position, k int) []int {
	ids, _ := d.KNNWithDistances(pos, k)
	return ids
}

// KNNWithDistances is KNN returning the matching network distances too.
func (d *Diagram) KNNWithDistances(pos roadnet.Position, k int) ([]int, []float64) {
	ids, ds, _ := d.KNNWithDistancesCounted(pos, k)
	return ids, ds
}

// KNNWithDistancesCounted is KNNWithDistances additionally returning the
// number of edge relaxations this search performed — exact per call even
// under concurrent searches on the shared network, unlike a before/after
// diff of the graph's global counter (which is still charged too).
func (d *Diagram) KNNWithDistancesCounted(pos roadnet.Position, k int) ([]int, []float64, int) {
	var sc SearchScratch
	return d.AppendKNN(pos, k, nil, nil, &sc)
}

// OracleKNNWithDistances is KNNWithDistances computed by plain Dijkstra
// with no ALT pruning — the oracle path the differential tests compare
// the pruned searches against. Because the ALT heuristic is consistent
// and zero at every site, the pruned search settles sites in the exact
// same order with the exact same distances; this method exists to prove
// that, not to be faster.
func (d *Diagram) OracleKNNWithDistances(pos roadnet.Position, k int) ([]int, []float64) {
	var sc SearchScratch
	ids, ds, _ := d.appendKNN(pos, k, nil, nil, &sc, false)
	return ids, ds
}

// SearchScratch is reusable per-caller working memory for the network
// searches: the dense epoch-stamped search state (frontier heap, tentative
// distances, mark set) plus the ALT bound evaluator and a traversal stack.
// The zero value is ready to use; a scratch serves any number of
// sequential searches against any diagram version but must not be shared
// across goroutines. The serving layer keeps one per shard, which removes
// every per-update allocation from the network kNN path — the road twin of
// vortree.SearchScratch.
type SearchScratch struct {
	road  roadnet.SearchScratch
	bnd   roadnet.ALTBound
	stack []int32
}

// AppendKNN is KNNWithDistancesCounted appending ids onto dst (and, when
// ds is non-nil or appended-to, distances onto ds) with caller-supplied
// scratch — the allocation-free form the serving hot path uses. The
// expansion is ALT-pruned; results are identical to the plain-Dijkstra
// oracle (see OracleKNNWithDistances).
func (d *Diagram) AppendKNN(pos roadnet.Position, k int, dst []int, ds []float64, sc *SearchScratch) ([]int, []float64, int) {
	return d.appendKNN(pos, k, dst, ds, sc, true)
}

// appendKNN runs the incremental network expansion, A*-guided by the ALT
// site bound when useALT is set. Lazy deletion needs no settled set:
// pushes happen only on strict tentative-distance improvement, so a
// popped entry is current iff its distance still matches the table.
func (d *Diagram) appendKNN(pos roadnet.Position, k int, dst []int, ds []float64, sc *SearchScratch, useALT bool) ([]int, []float64, int) {
	if k <= 0 {
		return dst, ds, 0
	}
	g := d.g
	n := g.NumVertices()
	c := g.CSR()
	road := &sc.road
	road.Begin(n)
	bnd := &sc.bnd
	bnd.Clear()
	if useALT {
		p := d.altProj()
		bnd.Bind(d.lm, p.lo, p.hi, int32(pos.U))
	}
	seed := func(v int, dd float64) {
		if v < 0 || v >= n {
			return
		}
		sv := int32(v)
		if road.TryImprove(sv, dd) {
			road.Push(dd+bnd.Bound(sv), dd, sv)
		}
	}
	if v, ok := pos.AtVertex(); ok {
		seed(v, 0)
	} else if w, ok := g.EdgeWeight(pos.U, pos.V); ok {
		seed(pos.U, pos.T*w)
		seed(pos.V, (1-pos.T)*w)
	}
	need := len(dst) + k
	relaxed := 0
	for {
		_, dd, v, ok := road.Pop()
		if !ok {
			break
		}
		if dd > road.DistAt(v) {
			continue
		}
		if d.IsSite(int(v)) {
			dst = append(dst, int(v))
			ds = append(ds, dd)
			if len(dst) == need {
				break
			}
		}
		for e := c.Off[v]; e < c.Off[v+1]; e++ {
			relaxed++
			u := c.To[e]
			nd := dd + c.W[e]
			if road.TryImprove(u, nd) {
				road.Push(nd+bnd.Bound(u), nd, u)
			}
		}
	}
	g.AddRelaxations(relaxed)
	return dst, ds, relaxed
}

// Subnetwork is the Theorem-2 search space: the part of the road network
// covered by the Voronoi cells of a chosen site set, materialized as its
// own Graph with vertex id translation maps plus the ALT state needed to
// prune searches on it (landmark distances stay in the full-network
// metric, which lower-bounds the subnetwork metric).
type Subnetwork struct {
	G      *roadnet.Graph
	ToSub  map[int]int // full-network vertex id -> subnetwork id
	ToFull []int       // subnetwork id -> full-network id

	full32 []int32 // ToFull as int32, for allocation-free bound lookups

	// ALT pruning state captured at extraction: the diagram's landmarks
	// and the projection of the extraction site set onto them. Searches
	// for any SUBSET of the extraction sites stay admissible under it.
	lm             *roadnet.Landmarks
	projLo, projHi []float64

	// extSites is the exact slice passed to SubnetworkInto and isSite the
	// per-subnetwork-vertex membership of that set. When AppendKNNSites is
	// handed the identical slice (the steady-state validation path always
	// re-asks about the extraction set) the cached membership replaces the
	// per-query map lookups. The caller must not mutate the slice between
	// extraction and queries, per the package's slice-ownership contract.
	extSites []int
	isSite   []bool
}

// Subnetwork extracts the union of the Voronoi cells of the given sites:
// all vertices owned by one of them plus every edge with at least one
// endpoint inside (boundary edges are kept whole, which keeps the search
// space a superset of the exact cell union and preserves Theorem 2's
// distance guarantee).
func (d *Diagram) Subnetwork(sites []int) *Subnetwork {
	var sc SearchScratch
	return d.SubnetworkInto(sites, nil, &sc)
}

// intern maps full-network vertex v into the subnetwork, creating its
// subnetwork vertex on first sight.
func (s *Subnetwork) intern(d *Diagram, v int32) int {
	if id, ok := s.ToSub[int(v)]; ok {
		return id
	}
	id := s.G.AddVertex(d.g.Point(int(v)))
	s.ToSub[int(v)] = id
	s.ToFull = append(s.ToFull, int(v))
	s.full32 = append(s.full32, v)
	return id
}

// Mark bits of the SubnetworkInto cell walk.
const (
	snWant    = 1 << 0 // vertex is one of the wanted sites
	snVisited = 1 << 1 // vertex already interned / queued by the walk
)

// SubnetworkInto is Subnetwork reusing a previously returned Subnetwork's
// storage (pass nil to allocate a fresh one) and caller-supplied scratch —
// the form the query layer uses so periodic recomputes stop paying the
// extraction allocations. Instead of scanning every network edge, it
// walks each wanted cell outward from its site (cells are connected:
// every vertex's shortest-path predecessor shares its owner), visiting
// only the extracted region plus its one-edge boundary ring. Subnetwork
// vertex ids are assigned in walk order, so two extractions of the same
// region are equal as graphs but may number vertices differently; callers
// hold no contract on the numbering.
func (d *Diagram) SubnetworkInto(sites []int, sub *Subnetwork, sc *SearchScratch) *Subnetwork {
	if sub == nil {
		sub = &Subnetwork{G: roadnet.NewGraph(), ToSub: make(map[int]int, len(sites)*8)}
	} else {
		sub.G.Reset()
		clear(sub.ToSub)
		sub.ToFull = sub.ToFull[:0]
		sub.full32 = sub.full32[:0]
	}
	c := d.g.CSR()
	road := &sc.road
	road.MarkBegin(d.g.NumVertices())
	for _, s := range sites {
		road.SetMark(int32(s), snWant)
	}
	stack := sc.stack[:0]
	for _, s := range sites {
		sv := int32(s)
		if road.Mark(sv)&snVisited != 0 {
			continue
		}
		road.SetMark(sv, road.Mark(sv)|snVisited)
		sub.intern(d, sv)
		if o, _ := d.label(s); o != s {
			continue // not actually a site of this diagram; keep the lone vertex
		}
		stack = append(stack, sv)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			su := sub.intern(d, u)
			for e := c.Off[u]; e < c.Off[u+1]; e++ {
				x := c.To[e]
				xo, _ := d.label(int(x))
				inside := xo >= 0 && road.Mark(int32(xo))&snWant != 0
				if inside {
					if road.Mark(x)&snVisited == 0 {
						road.SetMark(x, road.Mark(x)|snVisited)
						stack = append(stack, x)
					}
					if u >= x {
						continue // interior edges added once, from the lower endpoint
					}
				}
				sx := sub.intern(d, x)
				// AddEdgeWeight, not AddEdge: the latter treats weight 0
				// as "use the Euclidean length", which would silently
				// rewrite explicit zero-weight edges.
				if err := sub.G.AddEdgeWeight(su, sx, c.W[e]); err != nil {
					panic(fmt.Sprintf("netvor: subnetwork edge: %v", err))
				}
			}
		}
	}
	sc.stack = stack
	sub.lm = d.lm
	if sub.lm != nil {
		sub.projLo, sub.projHi = sub.lm.Project(sites, sub.projLo[:0], sub.projHi[:0])
	}
	sub.extSites = sites
	sub.isSite = slices.Grow(sub.isSite[:0], len(sub.ToFull))[:len(sub.ToFull)]
	clear(sub.isSite)
	for _, s := range sites {
		if sv, ok := sub.ToSub[s]; ok {
			sub.isSite[sv] = true
		}
	}
	return sub
}

// Translate converts a full-network position into the subnetwork, or
// ok=false when the position's edge is not part of the subnetwork.
func (s *Subnetwork) Translate(pos roadnet.Position) (roadnet.Position, bool) {
	if v, ok := pos.AtVertex(); ok {
		sv, ok := s.ToSub[v]
		if !ok {
			return roadnet.Position{}, false
		}
		return roadnet.VertexPosition(sv), true
	}
	su, ok := s.ToSub[pos.U]
	if !ok {
		return roadnet.Position{}, false
	}
	sv, ok := s.ToSub[pos.V]
	if !ok {
		return roadnet.Position{}, false
	}
	if _, ok := s.G.EdgeWeight(su, sv); !ok {
		return roadnet.Position{}, false
	}
	return roadnet.Position{U: su, V: sv, T: pos.T}, true
}

// KNNSites returns the k nearest of the given sites to pos, computed
// entirely on the subnetwork, together with their subnetwork distances.
// Results are full-network vertex ids. This is the Theorem-2 validation
// primitive: if the answer (as a set) equals the current kNN set, the kNN
// set is valid on the full network; subnetwork distances to non-kNN guard
// objects may exceed their full-network values, so only the set comparison
// is meaningful.
func (s *Subnetwork) KNNSites(pos roadnet.Position, sites []int, k int) ([]int, []float64) {
	var sc SearchScratch
	return s.AppendKNNSites(pos, sites, k, nil, nil, &sc)
}

// AppendKNNSites is KNNSites appending ids onto dst and distances onto ds
// with caller-supplied scratch — the allocation-free form the per-update
// validation path uses. The expansion is ALT-pruned through the
// extraction-time projection: full-network landmark distances lower-bound
// subnetwork distances (the subnetwork has a subset of the edges), and
// the given sites must be a subset of the extraction sites, so the bound
// stays admissible and the answer matches plain Dijkstra exactly.
func (s *Subnetwork) AppendKNNSites(pos roadnet.Position, sites []int, k int, dst []int, ds []float64, sc *SearchScratch) ([]int, []float64) {
	if k <= 0 {
		return dst, ds
	}
	spos, ok := s.Translate(pos)
	if !ok {
		return dst, ds
	}
	g := s.G
	n := g.NumVertices()
	c := g.CSR()
	road := &sc.road
	// The steady-state caller re-asks about the extraction set itself, so
	// the cached membership vector answers "is this a wanted site" without
	// per-query map lookups; any other slice falls back to mark bits.
	cached := len(sites) == len(s.extSites) &&
		(len(sites) == 0 || &sites[0] == &s.extSites[0])
	if !cached {
		road.MarkBegin(n)
		for _, site := range sites {
			if sv, ok := s.ToSub[site]; ok {
				road.SetMark(int32(sv), 1)
			}
		}
	}
	road.Begin(n)
	bnd := &sc.bnd
	bnd.Clear()
	if s.lm != nil {
		bnd.Bind(s.lm, s.projLo, s.projHi, int32(s.ToFull[spos.U]))
	}
	seed := func(v int, dd float64) {
		sv := int32(v)
		if road.TryImprove(sv, dd) {
			road.Push(dd+bnd.Bound(s.full32[sv]), dd, sv)
		}
	}
	if v, ok := spos.AtVertex(); ok {
		seed(v, 0)
	} else if w, ok := g.EdgeWeight(spos.U, spos.V); ok {
		seed(spos.U, spos.T*w)
		seed(spos.V, (1-spos.T)*w)
	}
	need := len(dst) + k
	relaxed := 0
	for {
		_, dd, v, ok := road.Pop()
		if !ok {
			break
		}
		if dd > road.DistAt(v) {
			continue
		}
		if (cached && s.isSite[v]) || (!cached && road.Mark(v) != 0) {
			dst = append(dst, s.ToFull[v])
			ds = append(ds, dd)
			if len(dst) == need {
				break
			}
		}
		for e := c.Off[v]; e < c.Off[v+1]; e++ {
			relaxed++
			u := c.To[e]
			nd := dd + c.W[e]
			if road.TryImprove(u, nd) {
				road.Push(nd+bnd.Bound(s.full32[u]), nd, u)
			}
		}
	}
	g.AddRelaxations(relaxed)
	return dst, ds
}

// DistancesToSites returns the network distance from pos to each given
// site, computed on the subnetwork. Because the subnetwork omits edges
// outside the guard cells, these are upper bounds on the full-network
// distances (exact for the current kNN members while the kNN set is
// valid). Sites missing from the subnetwork report +Inf.
func (s *Subnetwork) DistancesToSites(pos roadnet.Position, sites []int) []float64 {
	out := make([]float64, len(sites))
	spos, ok := s.Translate(pos)
	if !ok {
		for i := range out {
			out[i] = math.Inf(1)
		}
		return out
	}
	dist := s.G.ShortestDistances(spos.Sources(s.G), -1)
	for i, site := range sites {
		if sv, ok := s.ToSub[site]; ok {
			out[i] = dist[sv]
		} else {
			out[i] = math.Inf(1)
		}
	}
	return out
}
