// Package netvor implements the network Voronoi diagram used by Section IV
// of the paper: data objects sit on road-network vertices, every network
// vertex is assigned to its nearest object (by network distance), and two
// objects are network Voronoi neighbors when their cells touch. The package
// also extracts the Theorem-2 subnetwork — the part of the network covered
// by the Voronoi cells of a set of objects — on which kNN validation can
// run instead of the full graph, and provides incremental network
// expansion (INE-style) kNN from arbitrary on-edge positions.
//
// The diagram is an online structure with the same publication lifecycle
// as the plane VoR-tree: Insert/Remove mutate the site set incrementally
// (relabeling only the vertices whose ownership actually changes), Branch
// hands out a new mutable version by copy-on-write over the shortest-path
// label pages (freezing the receiver, whose reads stay race-free forever),
// and Clone is the deep-copy fallback. Cell adjacency is maintained
// incrementally through per-pair edge-support counts, so a mutation's cost
// is proportional to the territory it moves, not to the network size.
package netvor

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/roadnet"
)

// Errors returned by diagram mutations.
var (
	// ErrFrozen is returned by mutations on a diagram frozen by Branch;
	// a published snapshot stays immutable forever.
	ErrFrozen = errors.New("netvor: diagram frozen by Branch")
	// ErrSiteExists is returned when inserting a vertex that already
	// carries a data object.
	ErrSiteExists = errors.New("netvor: site already exists")
	// ErrUnknownSite is returned when removing a vertex that carries no
	// data object.
	ErrUnknownSite = errors.New("netvor: unknown site")
	// ErrLastSite is returned when removing the only remaining site; the
	// diagram of an empty site set is undefined.
	ErrLastSite = errors.New("netvor: cannot remove the last site")
)

// pageSize is the label-page granularity: Branch copies the page table
// (O(vertices/pageSize)) and mutations copy only the pages whose labels
// they rewrite.
const pageSize = 256

// labelPage holds the owner/dist labels of one run of pageSize vertices.
// Pages are immutable once shared between versions; writers copy first.
type labelPage struct {
	owner []int
	dist  []float64
}

// adjPageSize is the adjacency-page granularity: small enough that a
// mutation's copy-on-write footprint stays a few KB, large enough that
// Branch's page-table copy stays short.
const adjPageSize = 64

// adjEntry is one vertex's slot in the adjacency table. For a site it
// holds the sorted neighbor sites and, parallel to them, the number of
// edges supporting each adjacency (the count that lets adjacency update
// incrementally as territory moves). Slices are immutable once installed:
// every change writes fresh ones, so entries shared across versions never
// change underneath their readers.
type adjEntry struct {
	sites  []int
	counts []int
}

// adjPage holds the adjacency entries of one run of adjPageSize vertices.
type adjPage struct {
	entries []adjEntry
}

// Diagram is the network Voronoi diagram of a set of sites (vertex ids
// carrying data objects) over a road network.
type Diagram struct {
	g     *roadnet.Graph
	sites []int // sorted site vertex ids; owned by this version

	// Copy-on-write label tables: owner (nearest site of each vertex, -1
	// if unreachable) and dist (distance from each vertex to its owner).
	pages  []*labelPage
	shared []bool // page i is shared with another version; copy before write
	copied int    // pages copied or created through this version

	// Copy-on-write adjacency table, indexed by site vertex id: each
	// site's sorted network Voronoi neighbors plus per-neighbor edge
	// supports. Paged like the label tables so Branch never pays O(sites).
	adj       []*adjPage
	adjShared []bool

	frozen bool
}

// Build computes the network Voronoi diagram of the given site vertices.
// Ties in vertex ownership break toward the lower site id, which makes the
// diagram deterministic; cells are nonempty because every site owns itself.
func Build(g *roadnet.Graph, sites []int) (*Diagram, error) {
	if len(sites) == 0 {
		return nil, fmt.Errorf("netvor: no sites")
	}
	n := g.NumVertices()
	d := &Diagram{
		g:     g,
		sites: append([]int(nil), sites...),
	}
	d.initPages(n)
	sort.Ints(d.sites)
	for i, s := range d.sites {
		if s < 0 || s >= n {
			return nil, fmt.Errorf("netvor: site %d out of range", s)
		}
		if i > 0 && d.sites[i-1] == s {
			return nil, fmt.Errorf("netvor: duplicate site %d", s)
		}
	}

	// Multi-source Dijkstra carrying the owning site with each label.
	h := &ownerHeap{}
	for _, s := range d.sites {
		heap.Push(h, ownerItem{v: s, d: 0, site: s})
	}
	for h.Len() > 0 {
		it := heap.Pop(h).(ownerItem)
		o, dd := d.label(it.v)
		if it.d > dd || (it.d == dd && o != -1 && o <= it.site) {
			continue
		}
		d.setLabel(it.v, it.site, it.d)
		d.g.VisitEdgesFrom(it.v, func(u int, w float64) {
			nd := it.d + w
			uo, ud := d.label(u)
			if nd < ud || (nd == ud && it.site < uo) {
				heap.Push(h, ownerItem{v: u, d: nd, site: it.site})
			}
		})
	}

	// Voronoi adjacency: two cells touch when some edge has endpoints with
	// different owners (the boundary point lies on that edge).
	g.Edges(func(u, v int, w float64) {
		a, _ := d.label(u)
		b, _ := d.label(v)
		d.incPair(a, b)
	})
	return d, nil
}

// initPages allocates fresh, unshared label pages covering n vertices,
// every label set to (unreachable, +Inf).
func (d *Diagram) initPages(n int) {
	np := (n + pageSize - 1) / pageSize
	d.pages = make([]*labelPage, np)
	d.shared = make([]bool, np)
	for i := range d.pages {
		lo := i * pageSize
		hi := min(lo+pageSize, n)
		pg := &labelPage{owner: make([]int, hi-lo), dist: make([]float64, hi-lo)}
		for j := range pg.owner {
			pg.owner[j] = -1
			pg.dist[j] = math.Inf(1)
		}
		d.pages[i] = pg
	}
	d.copied = np
	na := (n + adjPageSize - 1) / adjPageSize
	d.adj = make([]*adjPage, na)
	d.adjShared = make([]bool, na)
	for i := range d.adj {
		lo := i * adjPageSize
		hi := min(lo+adjPageSize, n)
		d.adj[i] = &adjPage{entries: make([]adjEntry, hi-lo)}
	}
}

// adjAt returns vertex v's adjacency entry for reading.
func (d *Diagram) adjAt(v int) *adjEntry {
	return &d.adj[v/adjPageSize].entries[v%adjPageSize]
}

// writableAdj returns vertex v's adjacency entry for writing, copying the
// page (shallow — entry slices stay shared until rewritten) when it is
// shared with another version.
func (d *Diagram) writableAdj(v int) *adjEntry {
	pi := v / adjPageSize
	if d.adjShared[pi] {
		d.adj[pi] = &adjPage{entries: append([]adjEntry(nil), d.adj[pi].entries...)}
		d.adjShared[pi] = false
	}
	return &d.adj[pi].entries[v%adjPageSize]
}

// label returns vertex v's (owner, dist).
func (d *Diagram) label(v int) (int, float64) {
	pg := d.pages[v/pageSize]
	return pg.owner[v%pageSize], pg.dist[v%pageSize]
}

// setLabel writes vertex v's (owner, dist), copying the page first when it
// is shared with another version.
func (d *Diagram) setLabel(v int, owner int, dist float64) {
	pi := v / pageSize
	if d.shared[pi] {
		old := d.pages[pi]
		pg := &labelPage{
			owner: append([]int(nil), old.owner...),
			dist:  append([]float64(nil), old.dist...),
		}
		d.pages[pi] = pg
		d.shared[pi] = false
		d.copied++
	}
	pg := d.pages[pi]
	pg.owner[v%pageSize] = owner
	pg.dist[v%pageSize] = dist
}

// Branch returns a new mutable version of the diagram by copy-on-write:
// the label page table is copied (O(vertices/pageSize)), pages themselves
// are shared until written, and the site/adjacency tables are copied at
// their own (site-proportional) size. The receiver is frozen — reads stay
// valid and race-free forever, mutations are rejected with ErrFrozen —
// which is exactly the lifecycle of a published index snapshot. The child
// shares no writer state with the parent, so abandoning it mid-mutation
// can never corrupt the published version.
func (d *Diagram) Branch() *Diagram {
	d.frozen = true
	child := &Diagram{
		g:         d.g,
		sites:     append([]int(nil), d.sites...),
		pages:     append([]*labelPage(nil), d.pages...),
		shared:    make([]bool, len(d.pages)),
		adj:       append([]*adjPage(nil), d.adj...),
		adjShared: make([]bool, len(d.adj)),
	}
	for i := range child.shared {
		child.shared[i] = true
	}
	for i := range child.adjShared {
		child.adjShared[i] = true
	}
	return child
}

// Clone returns a deep, unfrozen copy sharing nothing but the road network
// itself — the fallback publication path mirroring vortree.Index.Clone.
func (d *Diagram) Clone() *Diagram {
	c := &Diagram{
		g:         d.g,
		sites:     append([]int(nil), d.sites...),
		pages:     make([]*labelPage, len(d.pages)),
		shared:    make([]bool, len(d.pages)),
		copied:    len(d.pages),
		adj:       make([]*adjPage, len(d.adj)),
		adjShared: make([]bool, len(d.adj)),
	}
	for i, pg := range d.pages {
		c.pages[i] = &labelPage{
			owner: append([]int(nil), pg.owner...),
			dist:  append([]float64(nil), pg.dist...),
		}
	}
	for i, pg := range d.adj {
		entries := make([]adjEntry, len(pg.entries))
		for j, e := range pg.entries {
			entries[j] = adjEntry{
				sites:  append([]int(nil), e.sites...),
				counts: append([]int(nil), e.counts...),
			}
		}
		c.adj[i] = &adjPage{entries: entries}
	}
	return c
}

// ShareStats reports the structural-sharing instrumentation of the label
// tables: the pages copied or created through this version since it was
// branched, and the total page count. 1 - copied/total is the fraction of
// shortest-path labels the latest epoch shares with its predecessor.
func (d *Diagram) ShareStats() (copied, total int) { return d.copied, len(d.pages) }

// incPair adds one edge of support between the cells of sites a and b,
// installing the Voronoi adjacency when the first supporting edge appears.
func (d *Diagram) incPair(a, b int) {
	if a == b || a == -1 || b == -1 {
		return
	}
	d.addSupport(a, b)
	d.addSupport(b, a)
}

// decPair removes one edge of support between the cells of sites a and b,
// dropping the adjacency when the last supporting edge goes.
func (d *Diagram) decPair(a, b int) {
	if a == b || a == -1 || b == -1 {
		return
	}
	d.dropSupport(a, b)
	d.dropSupport(b, a)
}

// addSupport records one more edge supporting t in s's neighbor list.
// Entry slices are rewritten, never mutated: shared copies held by other
// versions (or captured in mutation logs) never change underneath their
// readers.
func (d *Diagram) addSupport(s, t int) {
	e := d.writableAdj(s)
	i := sort.SearchInts(e.sites, t)
	if i < len(e.sites) && e.sites[i] == t {
		counts := append([]int(nil), e.counts...)
		counts[i]++
		e.counts = counts
		return
	}
	sites := make([]int, 0, len(e.sites)+1)
	sites = append(sites, e.sites[:i]...)
	sites = append(sites, t)
	sites = append(sites, e.sites[i:]...)
	counts := make([]int, 0, len(e.counts)+1)
	counts = append(counts, e.counts[:i]...)
	counts = append(counts, 1)
	counts = append(counts, e.counts[i:]...)
	e.sites, e.counts = sites, counts
}

// dropSupport removes one edge supporting t in s's neighbor list,
// dropping the adjacency when the last supporting edge goes.
func (d *Diagram) dropSupport(s, t int) {
	e := d.writableAdj(s)
	i := sort.SearchInts(e.sites, t)
	if i >= len(e.sites) || e.sites[i] != t {
		return
	}
	if e.counts[i] > 1 {
		counts := append([]int(nil), e.counts...)
		counts[i]--
		e.counts = counts
		return
	}
	sites := make([]int, 0, len(e.sites)-1)
	sites = append(sites, e.sites[:i]...)
	sites = append(sites, e.sites[i+1:]...)
	counts := make([]int, 0, len(e.counts)-1)
	counts = append(counts, e.counts[:i]...)
	counts = append(counts, e.counts[i+1:]...)
	e.sites, e.counts = sites, counts
}

// insertSorted returns a fresh sorted slice with x added.
func insertSorted(ns []int, x int) []int {
	i := sort.SearchInts(ns, x)
	out := make([]int, 0, len(ns)+1)
	out = append(out, ns[:i]...)
	out = append(out, x)
	return append(out, ns[i:]...)
}

// removeSorted returns a fresh sorted slice with x removed.
func removeSorted(ns []int, x int) []int {
	i := sort.SearchInts(ns, x)
	if i >= len(ns) || ns[i] != x {
		return ns
	}
	out := make([]int, 0, len(ns)-1)
	out = append(out, ns[:i]...)
	return append(out, ns[i+1:]...)
}

// Insert adds a data object at vertex v and repairs the diagram
// incrementally: one Dijkstra from v claims exactly the territory the new
// cell wins (plus a frontier ring of failed relaxations), and the
// adjacency supports of the relabeled vertices' incident edges move to the
// new owner. Cost is proportional to the new cell's size, not the network.
func (d *Diagram) Insert(v int) error {
	if d.frozen {
		return ErrFrozen
	}
	if v < 0 || v >= d.g.NumVertices() {
		return fmt.Errorf("netvor: site %d out of range", v)
	}
	if d.IsSite(v) {
		return fmt.Errorf("%w: %d", ErrSiteExists, v)
	}

	// Claim Dijkstra: labels all carry site v, so the plain distance heap
	// suffices. old records each relabeled vertex's previous owner once.
	old := make(map[int]int)
	h := &roadPQ{}
	heap.Push(h, roadPQItem{v, 0})
	for h.Len() > 0 {
		it := heap.Pop(h).(roadPQItem)
		o, dd := d.label(it.v)
		if !(it.d < dd || (it.d == dd && v < o)) {
			continue
		}
		if _, seen := old[it.v]; !seen {
			old[it.v] = o
		}
		d.setLabel(it.v, v, it.d)
		d.g.VisitEdgesFrom(it.v, func(u int, w float64) {
			nd := it.d + w
			uo, ud := d.label(u)
			if nd < ud || (nd == ud && v < uo) {
				heap.Push(h, roadPQItem{u, nd})
			}
		})
	}

	// Move the adjacency support of every edge touching relabeled
	// territory from the old owners to v. Edges inside the claimed region
	// are processed once (u < x) and contribute nothing new (both ends now
	// belong to v).
	for u, ou := range old {
		d.g.VisitEdgesFrom(u, func(x int, w float64) {
			if ox, relabeled := old[x]; relabeled {
				if u < x {
					d.decPair(ou, ox)
				}
				return
			}
			xo, _ := d.label(x)
			d.decPair(ou, xo)
			d.incPair(v, xo)
		})
	}
	d.sites = insertSorted(d.sites, v)
	return nil
}

// Remove deletes the data object at vertex s and repairs the diagram
// incrementally: the orphaned cell is collected (it is connected, because
// every vertex's shortest-path predecessor shares its owner), its labels
// reset, and a multi-source Dijkstra seeded from the cell's boundary
// redistributes the territory among the surviving neighbors. Cost is
// proportional to the removed cell, not the network.
func (d *Diagram) Remove(s int) error {
	if d.frozen {
		return ErrFrozen
	}
	if !d.IsSite(s) {
		return fmt.Errorf("%w: %d", ErrUnknownSite, s)
	}
	if len(d.sites) == 1 {
		return ErrLastSite
	}

	// Collect the cell by DFS over s-owned vertices.
	cellSet := map[int]bool{s: true}
	cell := []int{s}
	for stack := []int{s}; len(stack) > 0; {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		d.g.VisitEdgesFrom(u, func(x int, w float64) {
			if cellSet[x] {
				return
			}
			if o, _ := d.label(x); o == s {
				cellSet[x] = true
				cell = append(cell, x)
				stack = append(stack, x)
			}
		})
	}

	// Reset the hole, then seed the repair from every boundary edge: a
	// surviving neighbor's exact label plus the crossing edge. Labels
	// propagate only within the hole; outside labels are already optimal
	// with respect to the surviving sites.
	for _, u := range cell {
		d.setLabel(u, -1, math.Inf(1))
	}
	h := &ownerHeap{}
	for _, u := range cell {
		d.g.VisitEdgesFrom(u, func(x int, w float64) {
			if cellSet[x] {
				return
			}
			if xo, xd := d.label(x); xo != -1 {
				heap.Push(h, ownerItem{v: u, d: xd + w, site: xo})
			}
		})
	}
	for h.Len() > 0 {
		it := heap.Pop(h).(ownerItem)
		o, dd := d.label(it.v)
		if !(it.d < dd || (it.d == dd && it.site < o)) {
			continue
		}
		d.setLabel(it.v, it.site, it.d)
		d.g.VisitEdgesFrom(it.v, func(u int, w float64) {
			if !cellSet[u] {
				return
			}
			nd := it.d + w
			uo, ud := d.label(u)
			if nd < ud || (nd == ud && it.site < uo) {
				heap.Push(h, ownerItem{v: u, d: nd, site: it.site})
			}
		})
	}

	// Move the adjacency support of the cell's edges to the new owners.
	// Pre-removal, edges inside the cell carried no support (both ends s)
	// and boundary edges supported (s, outside-owner).
	for _, u := range cell {
		uo, _ := d.label(u)
		d.g.VisitEdgesFrom(u, func(x int, w float64) {
			if cellSet[x] {
				if u < x {
					xo, _ := d.label(x)
					d.incPair(uo, xo)
				}
				return
			}
			xo, _ := d.label(x)
			d.decPair(s, xo)
			d.incPair(uo, xo)
		})
	}
	if e := d.adjAt(s); len(e.sites) != 0 {
		return fmt.Errorf("netvor: remove %d left dangling adjacency %v", s, e.sites)
	}
	d.sites = removeSorted(d.sites, s)
	return nil
}

// ownerItem is a Dijkstra label carrying the site that would own the
// vertex if this label wins.
type ownerItem struct {
	v    int
	d    float64
	site int
}

type ownerHeap []ownerItem

func (h ownerHeap) Len() int { return len(h) }
func (h ownerHeap) Less(i, j int) bool {
	if h[i].d != h[j].d {
		return h[i].d < h[j].d
	}
	return h[i].site < h[j].site
}
func (h ownerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *ownerHeap) Push(x any)   { *h = append(*h, x.(ownerItem)) }
func (h *ownerHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Graph returns the underlying road network.
func (d *Diagram) Graph() *roadnet.Graph { return d.g }

// Sites returns the sorted site vertex ids. The slice is shared; callers
// must not modify it.
func (d *Diagram) Sites() []int { return d.sites }

// Len returns the number of data objects (sites); it makes the diagram an
// index.Backend alongside the plane VoR-tree.
func (d *Diagram) Len() int { return len(d.sites) }

// Contains reports whether object id is a site, mirroring the plane-index
// method of the same name.
func (d *Diagram) Contains(id int) bool { return d.IsSite(id) }

// IsSite reports whether vertex v carries a data object. A site always
// owns itself at distance 0, so site membership reads off the label table.
func (d *Diagram) IsSite(v int) bool {
	if v < 0 || v >= d.g.NumVertices() {
		return false
	}
	o, _ := d.label(v)
	return o == v
}

// Owner returns the site owning vertex v and the network distance to it.
func (d *Diagram) Owner(v int) (site int, dist float64) { return d.label(v) }

// Neighbors returns the network Voronoi neighbor set of site s (Definition
// 3 transplanted to road networks), sorted by id. The returned slice is
// immutable — later mutations install fresh lists rather than rewriting it.
func (d *Diagram) Neighbors(s int) ([]int, error) {
	if !d.IsSite(s) {
		return nil, fmt.Errorf("netvor: %d is not a site", s)
	}
	if ns := d.adjAt(s).sites; ns != nil {
		return ns, nil
	}
	return []int{}, nil // an isolated cell has no neighbors, not no entry
}

// AppendNeighbors is Neighbors appending onto dst — the allocation-free
// form mirroring voronoi.Diagram.AppendNeighbors.
func (d *Diagram) AppendNeighbors(s int, dst []int) ([]int, error) {
	if !d.IsSite(s) {
		return dst, fmt.Errorf("netvor: %d is not a site", s)
	}
	return append(dst, d.adjAt(s).sites...), nil
}

// INS returns the influential neighbor set I(knn) of Definition 4 in the
// network setting: the union of the network Voronoi neighbor sets of the
// sites in knn, minus knn. Sorted by id.
func (d *Diagram) INS(knn []int) ([]int, error) {
	var sc SearchScratch
	return d.AppendINS(knn, nil, &sc)
}

// AppendINS is INS appending onto dst with caller-supplied scratch.
func (d *Diagram) AppendINS(knn []int, dst []int, sc *SearchScratch) ([]int, error) {
	sc.resetSets()
	for _, s := range knn {
		sc.want[s] = true
	}
	start := len(dst)
	for _, s := range knn {
		if !d.IsSite(s) {
			return dst[:start], fmt.Errorf("netvor: %d is not a site", s)
		}
		for _, u := range d.adjAt(s).sites {
			if !sc.want[u] && !sc.done[u] {
				sc.done[u] = true
				dst = append(dst, u)
			}
		}
	}
	sort.Ints(dst[start:])
	return dst, nil
}

// KNN returns the k nearest sites to the given network position in
// ascending network-distance order, by incremental network expansion
// (Dijkstra that stops after k sites are settled).
func (d *Diagram) KNN(pos roadnet.Position, k int) []int {
	ids, _ := d.KNNWithDistances(pos, k)
	return ids
}

// KNNWithDistances is KNN returning the matching network distances too.
func (d *Diagram) KNNWithDistances(pos roadnet.Position, k int) ([]int, []float64) {
	ids, ds, _ := d.KNNWithDistancesCounted(pos, k)
	return ids, ds
}

// KNNWithDistancesCounted is KNNWithDistances additionally returning the
// number of edge relaxations this search performed — exact per call even
// under concurrent searches on the shared network, unlike a before/after
// diff of the graph's global counter (which is still charged too).
func (d *Diagram) KNNWithDistancesCounted(pos roadnet.Position, k int) ([]int, []float64, int) {
	var sc SearchScratch
	return d.AppendKNN(pos, k, nil, nil, &sc)
}

// SearchScratch is reusable per-caller working memory for the network
// searches: the Dijkstra frontier heap, the tentative-distance and settled
// sets of the expansion, and the membership sets of guard-restricted
// searches. The zero value is ready to use; a scratch serves any number of
// sequential searches against any diagram version but must not be shared
// across goroutines. The query layer keeps one per session, which removes
// every per-update allocation from the network kNN path — the road twin of
// vortree.SearchScratch.
type SearchScratch struct {
	h    posHeap
	dist map[int]float64
	done map[int]bool
	want map[int]bool
}

func (sc *SearchScratch) resetSearch() {
	sc.h = sc.h[:0]
	if sc.dist == nil {
		sc.dist = make(map[int]float64, 64)
		sc.done = make(map[int]bool, 64)
	} else {
		clear(sc.dist)
		clear(sc.done)
	}
}

func (sc *SearchScratch) resetSets() {
	if sc.want == nil {
		sc.want = make(map[int]bool, 16)
		if sc.done == nil {
			sc.done = make(map[int]bool, 64)
		}
	} else {
		clear(sc.want)
	}
	clear(sc.done)
}

// AppendKNN is KNNWithDistancesCounted appending ids onto dst (and, when
// ds is non-nil or appended-to, distances onto ds) with caller-supplied
// scratch — the allocation-free form the serving hot path uses.
func (d *Diagram) AppendKNN(pos roadnet.Position, k int, dst []int, ds []float64, sc *SearchScratch) ([]int, []float64, int) {
	if k <= 0 {
		return dst, ds, 0
	}
	sc.resetSearch()
	for _, s := range pos.Sources(d.g) {
		if cur, ok := sc.dist[s.V]; !ok || s.D < cur {
			sc.dist[s.V] = s.D
			sc.h.push(roadPQItem{s.V, s.D})
		}
	}
	need := len(dst) + k
	relaxed := 0
	for len(sc.h) > 0 && len(dst) < need {
		it := sc.h.pop()
		if sc.done[it.v] {
			continue
		}
		sc.done[it.v] = true
		if d.IsSite(it.v) {
			dst = append(dst, it.v)
			ds = append(ds, it.d)
			if len(dst) == need {
				break
			}
		}
		d.g.VisitEdgesFrom(it.v, func(u int, w float64) {
			relaxed++
			nd := it.d + w
			if cur, ok := sc.dist[u]; !ok || nd < cur {
				sc.dist[u] = nd
				sc.h.push(roadPQItem{u, nd})
			}
		})
	}
	d.g.AddRelaxations(relaxed)
	return dst, ds, relaxed
}

type roadPQItem struct {
	v int
	d float64
}

type roadPQ []roadPQItem

func (h roadPQ) Len() int { return len(h) }
func (h roadPQ) Less(i, j int) bool {
	if h[i].d != h[j].d {
		return h[i].d < h[j].d
	}
	return h[i].v < h[j].v
}
func (h roadPQ) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *roadPQ) Push(x any)   { *h = append(*h, x.(roadPQItem)) }
func (h *roadPQ) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// posHeap is a hand-rolled binary min-heap over Dijkstra labels;
// container/heap would box every pushed item, one allocation per edge
// relaxation. Ordering matches roadPQ (distance, then vertex id).
type posHeap []roadPQItem

func (h posHeap) less(i, j int) bool {
	if h[i].d != h[j].d {
		return h[i].d < h[j].d
	}
	return h[i].v < h[j].v
}

func (h *posHeap) push(e roadPQItem) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *posHeap) pop() roadPQItem {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	*h = s[:last]
	s = s[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(s) && s.less(l, smallest) {
			smallest = l
		}
		if r < len(s) && s.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
	return top
}

// Subnetwork is the Theorem-2 search space: the part of the road network
// covered by the Voronoi cells of a chosen site set, materialized as its
// own Graph with vertex id translation maps.
type Subnetwork struct {
	G      *roadnet.Graph
	ToSub  map[int]int // full-network vertex id -> subnetwork id
	ToFull []int       // subnetwork id -> full-network id
}

// Subnetwork extracts the union of the Voronoi cells of the given sites:
// all vertices owned by one of them plus every edge with at least one
// endpoint inside (boundary edges are kept whole, which keeps the search
// space a superset of the exact cell union and preserves Theorem 2's
// distance guarantee).
func (d *Diagram) Subnetwork(sites []int) *Subnetwork {
	want := make(map[int]bool, len(sites))
	for _, s := range sites {
		want[s] = true
	}
	sub := &Subnetwork{G: roadnet.NewGraph(), ToSub: make(map[int]int)}
	addVertex := func(v int) int {
		if id, ok := sub.ToSub[v]; ok {
			return id
		}
		id := sub.G.AddVertex(d.g.Point(v))
		sub.ToSub[v] = id
		sub.ToFull = append(sub.ToFull, v)
		return id
	}
	d.g.Edges(func(u, v int, w float64) {
		uo, _ := d.label(u)
		vo, _ := d.label(v)
		if want[uo] || want[vo] {
			su, sv := addVertex(u), addVertex(v)
			if err := sub.G.AddEdge(su, sv, w); err != nil {
				panic(fmt.Sprintf("netvor: subnetwork edge: %v", err))
			}
		}
	})
	// Isolated sites (possible only in degenerate graphs) still get a
	// vertex so distance queries can resolve them.
	for s := range want {
		addVertex(s)
	}
	return sub
}

// Translate converts a full-network position into the subnetwork, or
// ok=false when the position's edge is not part of the subnetwork.
func (s *Subnetwork) Translate(pos roadnet.Position) (roadnet.Position, bool) {
	if v, ok := pos.AtVertex(); ok {
		sv, ok := s.ToSub[v]
		if !ok {
			return roadnet.Position{}, false
		}
		return roadnet.VertexPosition(sv), true
	}
	su, ok := s.ToSub[pos.U]
	if !ok {
		return roadnet.Position{}, false
	}
	sv, ok := s.ToSub[pos.V]
	if !ok {
		return roadnet.Position{}, false
	}
	if _, ok := s.G.EdgeWeight(su, sv); !ok {
		return roadnet.Position{}, false
	}
	return roadnet.Position{U: su, V: sv, T: pos.T}, true
}

// KNNSites returns the k nearest of the given sites to pos, computed
// entirely on the subnetwork, together with their subnetwork distances.
// Results are full-network vertex ids. This is the Theorem-2 validation
// primitive: if the answer (as a set) equals the current kNN set, the kNN
// set is valid on the full network; subnetwork distances to non-kNN guard
// objects may exceed their full-network values, so only the set comparison
// is meaningful.
func (s *Subnetwork) KNNSites(pos roadnet.Position, sites []int, k int) ([]int, []float64) {
	var sc SearchScratch
	return s.AppendKNNSites(pos, sites, k, nil, nil, &sc)
}

// AppendKNNSites is KNNSites appending ids onto dst and distances onto ds
// with caller-supplied scratch — the allocation-free form the per-update
// validation path uses.
func (s *Subnetwork) AppendKNNSites(pos roadnet.Position, sites []int, k int, dst []int, ds []float64, sc *SearchScratch) ([]int, []float64) {
	if k <= 0 {
		return dst, ds
	}
	spos, ok := s.Translate(pos)
	if !ok {
		return dst, ds
	}
	sc.resetSearch()
	if sc.want == nil {
		sc.want = make(map[int]bool, len(sites))
	} else {
		clear(sc.want)
	}
	for _, site := range sites {
		if sv, ok := s.ToSub[site]; ok {
			sc.want[sv] = true
		}
	}
	for _, src := range spos.Sources(s.G) {
		if cur, ok := sc.dist[src.V]; !ok || src.D < cur {
			sc.dist[src.V] = src.D
			sc.h.push(roadPQItem{src.V, src.D})
		}
	}
	need := len(dst) + k
	relaxed := 0
	for len(sc.h) > 0 && len(dst) < need {
		it := sc.h.pop()
		if sc.done[it.v] {
			continue
		}
		sc.done[it.v] = true
		if sc.want[it.v] {
			dst = append(dst, s.ToFull[it.v])
			ds = append(ds, it.d)
			if len(dst) == need {
				break
			}
		}
		s.G.VisitEdgesFrom(it.v, func(u int, w float64) {
			relaxed++
			nd := it.d + w
			if cur, ok := sc.dist[u]; !ok || nd < cur {
				sc.dist[u] = nd
				sc.h.push(roadPQItem{u, nd})
			}
		})
	}
	s.G.AddRelaxations(relaxed)
	return dst, ds
}

// DistancesToSites returns the network distance from pos to each given
// site, computed on the subnetwork. Because the subnetwork omits edges
// outside the guard cells, these are upper bounds on the full-network
// distances (exact for the current kNN members while the kNN set is
// valid). Sites missing from the subnetwork report +Inf.
func (s *Subnetwork) DistancesToSites(pos roadnet.Position, sites []int) []float64 {
	out := make([]float64, len(sites))
	spos, ok := s.Translate(pos)
	if !ok {
		for i := range out {
			out[i] = math.Inf(1)
		}
		return out
	}
	dist := s.G.ShortestDistances(spos.Sources(s.G), -1)
	for i, site := range sites {
		if sv, ok := s.ToSub[site]; ok {
			out[i] = dist[sv]
		} else {
			out[i] = math.Inf(1)
		}
	}
	return out
}
