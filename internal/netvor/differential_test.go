package netvor

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/roadnet"
)

// diffGraph builds the random planar road network the differential tests
// mutate sites on.
func diffGraph(t *testing.T, n int, seed int64) *roadnet.Graph {
	t.Helper()
	g, err := roadnet.RandomPlanarNetwork(n, geom.NewRect(geom.Pt(0, 0), geom.Pt(1000, 1000)), 0.5, 0.3, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// checkAgainstRebuild compares the incrementally maintained diagram to a
// fresh Build over the same site set: per-vertex owner/dist labels,
// per-site neighbor lists, the site list, and kNN answers from a few
// probe positions must all match exactly (both use the same lower-site-id
// tie break, so equality is exact, not approximate).
func checkAgainstRebuild(t *testing.T, step int, d *Diagram, g *roadnet.Graph, probes []roadnet.Position) {
	t.Helper()
	ref, err := Build(g, d.Sites())
	if err != nil {
		t.Fatalf("step %d: rebuild: %v", step, err)
	}
	if !sameIntSlice(d.Sites(), ref.Sites()) {
		t.Fatalf("step %d: sites %v, rebuild says %v", step, d.Sites(), ref.Sites())
	}
	for v := 0; v < g.NumVertices(); v++ {
		go1, gd1 := d.Owner(v)
		go2, gd2 := ref.Owner(v)
		if go1 != go2 || gd1 != gd2 {
			t.Fatalf("step %d: owner(%d) = (%d, %g), rebuild says (%d, %g)", step, v, go1, gd1, go2, gd2)
		}
	}
	for _, s := range d.Sites() {
		ns, err := d.Neighbors(s)
		if err != nil {
			t.Fatalf("step %d: neighbors(%d): %v", step, s, err)
		}
		want, err := ref.Neighbors(s)
		if err != nil {
			t.Fatalf("step %d: rebuild neighbors(%d): %v", step, s, err)
		}
		if !sameIntSlice(ns, want) {
			t.Fatalf("step %d: neighbors(%d) = %v, rebuild says %v", step, s, ns, want)
		}
	}
	for _, pos := range probes {
		got, gotDS := d.KNNWithDistances(pos, 4)
		want, wantDS := ref.KNNWithDistances(pos, 4)
		if !sameIntSlice(got, want) {
			t.Fatalf("step %d: KNN(%v) = %v, rebuild says %v", step, pos, got, want)
		}
		for i := range gotDS {
			if gotDS[i] != wantDS[i] {
				t.Fatalf("step %d: KNN(%v) dist[%d] = %g, rebuild says %g", step, pos, i, gotDS[i], wantDS[i])
			}
		}
	}
}

func sameIntSlice(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDifferentialSiteMutations drives a random site insert/delete
// sequence through the incrementally maintained diagram and checks, at
// every step, that its full state equals a diagram rebuilt from scratch —
// the network twin of the rtree differential property test.
func TestDifferentialSiteMutations(t *testing.T) {
	const (
		vertices = 300
		steps    = 150
	)
	g := diffGraph(t, vertices, 7)
	rng := rand.New(rand.NewSource(99))

	initial := rng.Perm(vertices)[:12]
	d, err := Build(g, initial)
	if err != nil {
		t.Fatal(err)
	}
	probes := []roadnet.Position{
		roadnet.VertexPosition(rng.Intn(vertices)),
		roadnet.VertexPosition(rng.Intn(vertices)),
		roadnet.VertexPosition(rng.Intn(vertices)),
	}

	for step := 0; step < steps; step++ {
		if d.Len() > 4 && rng.Intn(3) == 0 {
			victim := d.Sites()[rng.Intn(d.Len())]
			if err := d.Remove(victim); err != nil {
				t.Fatalf("step %d: remove %d: %v", step, victim, err)
			}
		} else {
			v := rng.Intn(vertices)
			for d.IsSite(v) {
				v = rng.Intn(vertices)
			}
			if err := d.Insert(v); err != nil {
				t.Fatalf("step %d: insert %d: %v", step, v, err)
			}
		}
		checkAgainstRebuild(t, step, d, g, probes)
	}
}

// TestDifferentialBranchChain mutates through a chain of Branch versions
// (the store's publication path) while concurrent readers hammer every
// pinned predecessor, letting -race prove the page sharing is write-free
// and the frozen versions provably never change.
func TestDifferentialBranchChain(t *testing.T) {
	const (
		vertices = 250
		epochs   = 60
	)
	g := diffGraph(t, vertices, 11)
	rng := rand.New(rand.NewSource(5))
	d, err := Build(g, rng.Perm(vertices)[:10])
	if err != nil {
		t.Fatal(err)
	}
	probes := []roadnet.Position{
		roadnet.VertexPosition(3),
		roadnet.VertexPosition(vertices / 2),
		roadnet.VertexPosition(vertices - 1),
	}
	answers := func(d *Diagram) [][]int {
		out := make([][]int, len(probes))
		for i, pos := range probes {
			out[i] = d.KNN(pos, 3)
		}
		return out
	}

	type pin struct {
		d    *Diagram
		want [][]int
	}
	var pins []pin
	var wg sync.WaitGroup
	stop := make(chan struct{})
	defer func() {
		close(stop)
		wg.Wait()
	}()

	cur := d
	for e := 0; e < epochs; e++ {
		pinned := cur
		pins = append(pins, pin{d: pinned, want: answers(pinned)})
		wg.Add(1)
		go func(p *Diagram, pos roadnet.Position) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					p.KNN(pos, 3)
					p.INS(p.Sites()[:2])
				}
			}
		}(pinned, probes[e%len(probes)])

		cur = cur.Branch()
		if err := pinned.Insert(0); err != ErrFrozen {
			t.Fatalf("epoch %d: mutating a frozen diagram returned %v, want ErrFrozen", e, err)
		}
		// A couple of mutations per epoch, mirroring a store batch.
		for m := 0; m < 2; m++ {
			if cur.Len() > 4 && rng.Intn(3) == 0 {
				if err := cur.Remove(cur.Sites()[rng.Intn(cur.Len())]); err != nil {
					t.Fatalf("epoch %d: %v", e, err)
				}
			} else {
				v := rng.Intn(vertices)
				for cur.IsSite(v) {
					v = rng.Intn(vertices)
				}
				if err := cur.Insert(v); err != nil {
					t.Fatalf("epoch %d: %v", e, err)
				}
			}
		}
		checkAgainstRebuild(t, e, cur, g, probes)
	}

	// Every pinned version must be provably unchanged by the mutations
	// that came after it.
	for i, p := range pins {
		got := answers(p.d)
		for j := range got {
			if !sameIntSlice(got[j], p.want[j]) {
				t.Fatalf("pinned version %d changed: probe %d = %v, was %v", i, j, got[j], p.want[j])
			}
		}
	}
}

// TestBranchIsSublinear sanity-checks the copy-on-write accounting: a
// fresh branch has copied no label pages, and a single site mutation
// copies only the pages its relabeled territory touches.
func TestBranchIsSublinear(t *testing.T) {
	g, err := roadnet.GridNetwork(64, 64, geom.NewRect(geom.Pt(0, 0), geom.Pt(1000, 1000)), 0.2, 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	sites := rng.Perm(g.NumVertices())[:64]
	d, err := Build(g, sites)
	if err != nil {
		t.Fatal(err)
	}
	b := d.Branch()
	if copied, _ := b.ShareStats(); copied != 0 {
		t.Fatalf("fresh branch copied %d pages, want 0", copied)
	}
	v := 0
	for b.IsSite(v) {
		v++
	}
	if err := b.Insert(v); err != nil {
		t.Fatal(err)
	}
	if copied, total := b.ShareStats(); copied == 0 || copied == total {
		t.Fatalf("one insert after branch copied %d of %d pages; want a strict subset", copied, total)
	}
	// Clone rebuilds everything and shares nothing.
	c := d.Clone()
	if err := c.Insert(v); err != nil {
		t.Fatal(err)
	}
	if o1, _ := d.Owner(v); o1 == v {
		t.Fatal("clone mutation leaked into the original")
	}
	// Sorted site lists survive churn (the sorted-insert bookkeeping).
	if !sort.IntsAreSorted(b.Sites()) {
		t.Fatalf("branch sites not sorted: %v", b.Sites())
	}
}
