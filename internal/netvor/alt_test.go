package netvor

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/roadnet"
)

// altProbes returns a deterministic mix of vertex and on-edge positions
// covering the graph.
func altProbes(g *roadnet.Graph, rng *rand.Rand, count int) []roadnet.Position {
	var probes []roadnet.Position
	for len(probes) < count {
		v := rng.Intn(g.NumVertices())
		if rng.Intn(2) == 0 {
			probes = append(probes, roadnet.VertexPosition(v))
			continue
		}
		nb := g.AdjacentVertices(v)
		if len(nb) == 0 {
			continue
		}
		u := nb[rng.Intn(len(nb))]
		probes = append(probes, roadnet.Position{U: v, V: u, T: 0.25 + 0.5*rng.Float64()})
	}
	return probes
}

// checkALTMatchesOracle compares the ALT-pruned kNN against the plain
// Dijkstra oracle for several k on every probe: ids AND distances must be
// bit-identical (both searches settle ties by vertex id, so even the
// output order matches).
func checkALTMatchesOracle(t *testing.T, d *Diagram, probes []roadnet.Position) {
	t.Helper()
	for pi, pos := range probes {
		for _, k := range []int{1, 3, d.Len(), d.Len() + 2} {
			got, gotDS := d.KNNWithDistances(pos, k)
			want, wantDS := d.OracleKNNWithDistances(pos, k)
			if len(got) != len(want) {
				t.Fatalf("probe %d k=%d: ALT found %d sites %v, oracle %d %v",
					pi, k, len(got), got, len(want), want)
			}
			for i := range got {
				if got[i] != want[i] || gotDS[i] != wantDS[i] {
					t.Fatalf("probe %d k=%d: ALT[%d] = (%d, %g), oracle (%d, %g)",
						pi, k, i, got[i], gotDS[i], want[i], wantDS[i])
				}
			}
		}
	}
}

// TestALTKNNMatchesOracleRandom is the headline differential test: on
// randomized planar road networks with randomized site sets, the
// ALT-pruned expansion must return exactly what unpruned Dijkstra
// returns, through site churn that exercises both the widened-projection
// (Insert) and stale-projection (Remove) paths.
func TestALTKNNMatchesOracleRandom(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		g := diffGraph(t, 150+20*trial, int64(trial))
		perm := rng.Perm(g.NumVertices())
		sites := append([]int(nil), perm[:12]...)
		d, err := Build(g, sites)
		if err != nil {
			t.Fatal(err)
		}
		probes := altProbes(g, rng, 12)
		checkALTMatchesOracle(t, d, probes)
		for step := 0; step < 10; step++ {
			if step%2 == 0 {
				if err := d.Insert(perm[12+step]); err != nil {
					t.Fatal(err)
				}
			} else {
				cur := d.Sites()
				if err := d.Remove(cur[rng.Intn(len(cur))]); err != nil {
					t.Fatal(err)
				}
			}
			checkALTMatchesOracle(t, d, probes)
		}
	}
}

// TestALTKNNDisconnectedAndZeroWeight pins the two adversarial graph
// shapes the dense/ALT machinery must not trip over: components no
// landmark subset can see across (Inf distances must prune, not poison,
// the bound) and zero-weight edges (equal-key pops must still settle in
// oracle order).
func TestALTKNNDisconnectedAndZeroWeight(t *testing.T) {
	g := roadnet.NewGraph()
	rng := rand.New(rand.NewSource(9))
	// Two disjoint 4x4 grids, the second with a sprinkling of zero-weight
	// edges (explicitly zero via AddEdgeWeight, which preserves them).
	var comp [2][]int
	for c := 0; c < 2; c++ {
		off := float64(c) * 500
		for i := 0; i < 16; i++ {
			comp[c] = append(comp[c], g.AddVertex(geom.Pt(float64(i%4)*10+off, float64(i/4)*10)))
		}
		for i := 0; i < 16; i++ {
			w := 0.0 // AddEdge: Euclidean
			if c == 1 && rng.Intn(3) == 0 {
				if i%4 < 3 {
					if err := g.AddEdgeWeight(comp[c][i], comp[c][i+1], 0); err != nil {
						t.Fatal(err)
					}
				}
				if i/4 < 3 {
					if err := g.AddEdgeWeight(comp[c][i], comp[c][i+4], 0); err != nil {
						t.Fatal(err)
					}
				}
				continue
			}
			if i%4 < 3 {
				if err := g.AddEdge(comp[c][i], comp[c][i+1], w); err != nil {
					t.Fatal(err)
				}
			}
			if i/4 < 3 {
				if err := g.AddEdge(comp[c][i], comp[c][i+4], w); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	sites := []int{comp[0][0], comp[0][15], comp[1][5], comp[1][10]}
	d, err := Build(g, sites)
	if err != nil {
		t.Fatal(err)
	}
	probes := []roadnet.Position{
		roadnet.VertexPosition(comp[0][7]),
		roadnet.VertexPosition(comp[1][0]),
		{U: comp[0][1], V: comp[0][2], T: 0.5},
		{U: comp[1][14], V: comp[1][15], T: 0.3},
	}
	// k beyond the component's site count: the search must stop at the
	// component boundary and report only the reachable sites, like the
	// oracle does.
	checkALTMatchesOracle(t, d, probes)
	if err := d.Remove(comp[1][5]); err != nil {
		t.Fatal(err)
	}
	if err := d.Insert(comp[1][6]); err != nil {
		t.Fatal(err)
	}
	checkALTMatchesOracle(t, d, probes)
}

// TestFrozenProjectionSafety pins the epoch-staleness contract: a frozen
// (conservatively wide) projection from an earlier site epoch must never
// change an answer — only how hard the search prunes — and the lazy
// rebuild must fire exactly when a Remove leaves the projection inexact.
func TestFrozenProjectionSafety(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := diffGraph(t, 200, 5)
	perm := rng.Perm(g.NumVertices())
	d, err := Build(g, perm[:16])
	if err != nil {
		t.Fatal(err)
	}
	probes := altProbes(g, rng, 10)

	// Capture the epoch-0 projection, then shrink the site set. The old
	// projection is over a superset of the surviving sites — admissible by
	// the Project contract, just weaker.
	frozen := d.altProj()
	for i := 0; i < 4; i++ {
		if err := d.Remove(d.Sites()[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Freeze: force the stale superset projection in as if it were
	// current, suppressing the lazy rebuild.
	d.proj.Store(&siteProj{lo: frozen.lo, hi: frozen.hi, exact: true})
	_, rebuilds0 := d.ALTStats()
	checkALTMatchesOracle(t, d, probes)
	if _, r := d.ALTStats(); r != rebuilds0 {
		t.Fatalf("frozen projection rebuilt anyway (%d -> %d)", rebuilds0, r)
	}

	// Thaw: flag it stale; the next pruned query rebuilds exactly once and
	// the answers stay identical.
	d.proj.Store(&siteProj{lo: frozen.lo, hi: frozen.hi, exact: false})
	checkALTMatchesOracle(t, d, probes)
	if _, r := d.ALTStats(); r != rebuilds0+1 {
		t.Fatalf("stale projection rebuilt %d times, want exactly 1", r-rebuilds0)
	}
}

// subEdges canonicalizes a subnetwork's edge multiset in full-network ids.
func subEdges(t *testing.T, s *Subnetwork) [][3]float64 {
	t.Helper()
	var out [][3]float64
	c := s.G.CSR()
	for v := 0; v < s.G.NumVertices(); v++ {
		for e := c.Off[v]; e < c.Off[v+1]; e++ {
			u := int(c.To[e])
			if v > u {
				continue
			}
			a, b := float64(s.ToFull[v]), float64(s.ToFull[u])
			if a > b {
				a, b = b, a
			}
			out = append(out, [3]float64{a, b, c.W[e]})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		if out[i][1] != out[j][1] {
			return out[i][1] < out[j][1]
		}
		return out[i][2] < out[j][2]
	})
	return out
}

// TestSubnetworkIntoReuseEquivalence proves the buffer-reusing extraction
// is indistinguishable from a fresh one across changing site sets: same
// vertex set, same edge multiset, and identical kNN answers.
func TestSubnetworkIntoReuseEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := diffGraph(t, 250, 21)
	perm := rng.Perm(g.NumVertices())
	d, err := Build(g, perm[:20])
	if err != nil {
		t.Fatal(err)
	}
	var reused *Subnetwork
	var sc SearchScratch
	for round := 0; round < 8; round++ {
		sites := d.Sites()
		guard := append([]int(nil), sites[rng.Intn(4):4+rng.Intn(len(sites)-4)]...)
		reused = d.SubnetworkInto(guard, reused, &sc)
		fresh := d.Subnetwork(guard)

		wantV := append([]int(nil), fresh.ToFull...)
		gotV := append([]int(nil), reused.ToFull...)
		sort.Ints(wantV)
		sort.Ints(gotV)
		if !sameIntSlice(gotV, wantV) {
			t.Fatalf("round %d: vertex sets differ: %v vs %v", round, gotV, wantV)
		}
		if ge, we := subEdges(t, reused), subEdges(t, fresh); len(ge) != len(we) {
			t.Fatalf("round %d: edge counts differ: %d vs %d", round, len(ge), len(we))
		} else {
			for i := range ge {
				if ge[i] != we[i] {
					t.Fatalf("round %d: edge %d differs: %v vs %v", round, i, ge[i], we[i])
				}
			}
		}
		for _, full := range guard {
			pos := roadnet.VertexPosition(full)
			a, ads := reused.KNNSites(pos, guard, 3)
			b, bds := fresh.KNNSites(pos, guard, 3)
			if !sameIntSlice(a, b) {
				t.Fatalf("round %d: KNNSites(%d) = %v, fresh says %v", round, full, a, b)
			}
			for i := range ads {
				if ads[i] != bds[i] {
					t.Fatalf("round %d: KNNSites(%d) dist[%d] = %g, fresh says %g", round, full, i, ads[i], bds[i])
				}
			}
		}
		// Churn the diagram between rounds so extraction sees fresh cells.
		if err := d.Remove(sites[rng.Intn(len(sites))]); err != nil {
			t.Fatal(err)
		}
		if err := d.Insert(perm[20+round]); err != nil {
			t.Fatal(err)
		}
	}
}

// TestAppendKNNSitesAllocFree pins the steady-state serving contract: a
// warmed subnetwork query with caller-supplied scratch and buffers
// performs zero allocations per call.
func TestAppendKNNSitesAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := diffGraph(t, 200, 31)
	perm := rng.Perm(g.NumVertices())
	d, err := Build(g, perm[:16])
	if err != nil {
		t.Fatal(err)
	}
	guard := append([]int(nil), d.Sites()[:8]...)
	var sc SearchScratch
	sub := d.SubnetworkInto(guard, nil, &sc)
	pos := roadnet.VertexPosition(guard[0])
	ids := make([]int, 0, 16)
	ds := make([]float64, 0, 16)
	ids, ds = sub.AppendKNNSites(pos, guard, 3, ids[:0], ds[:0], &sc) // warm
	if len(ids) != 3 {
		t.Fatalf("warmup returned %d sites", len(ids))
	}
	allocs := testing.AllocsPerRun(100, func() {
		ids, ds = sub.AppendKNNSites(pos, guard, 3, ids[:0], ds[:0], &sc)
	})
	_ = ds
	if allocs != 0 {
		t.Fatalf("AppendKNNSites allocates %.1f per call, want 0", allocs)
	}
}
