package experiments

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/index"
	"repro/internal/trajectory"
	"repro/internal/workload"
)

// EngineBenchResult is the serving-engine benchmark record written to
// BENCH_engine.json by `bench -exp ENGINE`. It tracks the three numbers
// the snapshot architecture is accountable for across PRs: tail update
// latency, allocation rate on the serving path, and resident index memory
// (which must stay O(objects), independent of the shard count).
type EngineBenchResult struct {
	Shards   int `json:"shards"`
	Sessions int `json:"sessions"`
	Objects  int `json:"objects"`
	K        int `json:"k"`

	Steps       int     `json:"steps"`
	DataUpdates int     `json:"data_updates"`
	Updates     uint64  `json:"updates"`
	UpdatesSec  float64 `json:"updates_per_sec"`

	P50UpdateUS float64 `json:"p50_update_us"`
	P95UpdateUS float64 `json:"p95_update_us"`
	P99UpdateUS float64 `json:"p99_update_us"`

	AllocsPerUpdate    float64 `json:"allocs_per_update"`
	ResidentIndexBytes uint64  `json:"resident_index_bytes"`
	SnapshotsLive      int     `json:"snapshots_live"`
	RecomputePct       float64 `json:"recompute_pct"`

	// EpochPublishUS is the mean wall time of publishing one data-update
	// epoch during the run. SharedNodeRatio is the fraction of plane index
	// nodes the latest epoch shares with its predecessor (path-copying
	// publication; a full clone would be 0). The sublinearity probe times
	// one single-insert epoch against stores of Objects/8 and Objects
	// objects: with path copying PublishScalingX8 stays far below the 8x
	// a deep-clone publication pays.
	EpochPublishUS   float64 `json:"epoch_publish_us"`
	SharedNodeRatio  float64 `json:"shared_node_ratio"`
	PublishUSSmall   float64 `json:"publish_us_small"`
	PublishUSLarge   float64 `json:"publish_us_large"`
	PublishScalingX8 float64 `json:"publish_scaling_x8"`
}

// String renders the result as a short table for the harness output.
func (r EngineBenchResult) String() string {
	return fmt.Sprintf(
		"ENGINE shards=%d sessions=%d objects=%d steps=%d churn=%d\n"+
			"       updates=%d rate=%.0f/s p50=%.1fus p95=%.1fus p99=%.1fus\n"+
			"       allocs/update=%.1f index_bytes=%d snapshots=%d recompute=%.2f%%\n"+
			"       publish=%.1fus shared_nodes=%.1f%% scaling_x8=%.2f (%.1fus -> %.1fus)",
		r.Shards, r.Sessions, r.Objects, r.Steps, r.DataUpdates,
		r.Updates, r.UpdatesSec, r.P50UpdateUS, r.P95UpdateUS, r.P99UpdateUS,
		r.AllocsPerUpdate, r.ResidentIndexBytes, r.SnapshotsLive, r.RecomputePct,
		r.EpochPublishUS, 100*r.SharedNodeRatio, r.PublishScalingX8, r.PublishUSSmall, r.PublishUSLarge)
}

// publishProbeUS builds a store of n objects and returns the mean wall
// time (µs) of a single-mutation epoch publication over rounds
// insert+remove pairs.
func publishProbeUS(n, rounds int, seed int64) (float64, error) {
	st, err := index.NewStore(index.Config{Bounds: Bounds, Objects: workload.Uniform(n, Bounds, seed)})
	if err != nil {
		return 0, err
	}
	defer st.Close()
	for i := 0; i < rounds/4; i++ { // warm up the page tables and the branch chain
		id, err := st.Insert(geom.Pt(float64((i*29)%9973)+1, float64((i*31)%9941)+1))
		if err != nil {
			return 0, err
		}
		if err := st.Remove(id); err != nil {
			return 0, err
		}
	}
	pubs0, total0 := st.PublishStats()
	for i := 0; i < rounds; i++ {
		id, err := st.Insert(geom.Pt(float64((i*131)%9973)+1, float64((i*373)%9941)+1))
		if err != nil {
			return 0, err
		}
		if err := st.Remove(id); err != nil {
			return 0, err
		}
	}
	pubs, total := st.PublishStats()
	return float64((total - total0).Nanoseconds()) / 1e3 / float64(pubs-pubs0), nil
}

// EngineBench drives the serving engine with a closed-loop batched
// workload (random-waypoint sessions, periodic object churn) and measures
// the serving trajectory numbers. Scale divides sessions and steps.
func EngineBench(cfg Config) (EngineBenchResult, error) {
	const (
		objects  = 20000
		k        = 5
		rho      = 1.6
		shards   = 8
		batchLen = 64
	)
	sessions := 2000
	steps := 120
	if cfg.Scale > 1 {
		sessions /= cfg.Scale
		steps /= cfg.Scale
	}

	pts := workload.Uniform(objects, Bounds, cfg.seed(42))
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	e, err := engine.New(engine.Config{Shards: shards, Bounds: Bounds, Objects: pts})
	if err != nil {
		return EngineBenchResult{}, err
	}
	defer e.Close()
	runtime.GC()
	var afterBuild runtime.MemStats
	runtime.ReadMemStats(&afterBuild)
	indexBytes := afterBuild.HeapAlloc - before.HeapAlloc

	sids := make([]engine.SessionID, sessions)
	trajs := make([][]geom.Point, sessions)
	for i := range sids {
		sid, err := e.CreateSession(k, rho)
		if err != nil {
			return EngineBenchResult{}, err
		}
		sids[i] = sid
		trajs[i] = trajectory.RandomWaypoint(Bounds, steps, 8, cfg.seed(int64(i)))
	}

	var mallocsBefore runtime.MemStats
	runtime.ReadMemStats(&mallocsBefore)
	start := time.Now()
	churn := 0
	var inserted []int
	for s := 0; s < steps; s++ {
		// Object churn: one data update every four steps.
		if s%4 == 1 {
			if len(inserted) > 8 {
				if err := e.RemoveObject(inserted[0]); err != nil {
					return EngineBenchResult{}, err
				}
				inserted = inserted[1:]
			} else {
				id, err := e.InsertObject(geom.Pt(float64((s*131)%10000), float64((s*373)%10000)))
				if err != nil {
					return EngineBenchResult{}, err
				}
				inserted = append(inserted, id)
			}
			churn++
		}
		for lo := 0; lo < sessions; lo += batchLen {
			hi := min(lo+batchLen, sessions)
			batch := make([]engine.LocationUpdate, hi-lo)
			for i := lo; i < hi; i++ {
				batch[i-lo] = engine.LocationUpdate{Session: sids[i], Pos: trajs[i][s]}
			}
			results, err := e.UpdateBatch(batch)
			if err != nil {
				return EngineBenchResult{}, err
			}
			for _, r := range results {
				if r.Err != nil {
					return EngineBenchResult{}, r.Err
				}
			}
		}
	}
	elapsed := time.Since(start)
	var mallocsAfter runtime.MemStats
	runtime.ReadMemStats(&mallocsAfter)

	st, err := e.Stats()
	if err != nil {
		return EngineBenchResult{}, err
	}
	// Publication sublinearity probe: one single-insert epoch against an
	// 8x smaller and the full-size object set.
	pubSmall, err := publishProbeUS(objects/8, 64, cfg.seed(43))
	if err != nil {
		return EngineBenchResult{}, err
	}
	pubLarge, err := publishProbeUS(objects, 64, cfg.seed(44))
	if err != nil {
		return EngineBenchResult{}, err
	}
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	res := EngineBenchResult{
		Shards:             st.Shards,
		Sessions:           sessions,
		Objects:            objects,
		K:                  k,
		Steps:              steps,
		DataUpdates:        churn,
		Updates:            st.Updates,
		UpdatesSec:         float64(st.Updates) / elapsed.Seconds(),
		P50UpdateUS:        us(st.Latency.P50),
		P95UpdateUS:        us(st.Latency.P95),
		P99UpdateUS:        us(st.Latency.P99),
		AllocsPerUpdate:    float64(mallocsAfter.Mallocs-mallocsBefore.Mallocs) / float64(max(int(st.Updates), 1)),
		ResidentIndexBytes: indexBytes,
		SnapshotsLive:      st.Snapshots,
		RecomputePct:       100 * float64(st.Counters.Recomputations) / float64(max(st.Counters.Timestamps, 1)),
		EpochPublishUS:     st.EpochPublishUS,
		PublishUSSmall:     pubSmall,
		PublishUSLarge:     pubLarge,
	}
	if pubSmall > 0 {
		res.PublishScalingX8 = pubLarge / pubSmall
	}
	if st.IndexNodes > 0 {
		res.SharedNodeRatio = 1 - float64(st.IndexNodesCopied)/float64(st.IndexNodes)
	}
	return res, nil
}
