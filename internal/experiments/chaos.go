package experiments

import (
	"context"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/index"
	"repro/internal/wal"
	"repro/internal/workload"
)

// ChaosBenchResult is the fault-injection record written to
// BENCH_chaos.json by `bench -exp CHAOS`. It is not a throughput number:
// it proves the degradation ladder end to end — persistent fsync failure
// flips the engine into read-only degraded mode (writes rejected, reads
// error-free), healing the disk brings writes back via the WAL's probe,
// overload sheds at the shard queue high watermark, expired deadlines
// drop at the shard, and a crash after all of it still recovers to an
// equivalent store. benchguard -kind chaos gates the invariants.
type ChaosBenchResult struct {
	Rounds   int `json:"rounds"`
	Sessions int `json:"sessions"`
	Objects  int `json:"objects"`

	// Degrade/heal round trips driven by a persistent injected fsync
	// failure: how long until the manager flipped to degraded (worst
	// round), and how long from disarming the fault until a write
	// succeeded again (worst round, includes the probe interval).
	TimeToDegradeMaxMS float64 `json:"time_to_degrade_max_ms"`
	TimeToRecoverMaxMS float64 `json:"time_to_recover_max_ms"`

	// Write-path accounting across every degrade/heal round plus the
	// transient disk-full round: attempts, rejections (degraded or
	// injected), successes after heal.
	WritesAttempted int `json:"writes_attempted"`
	WritesRejected  int `json:"writes_rejected"`
	WritesOK        int `json:"writes_ok"`

	// Location updates served while the WAL was degraded; the read path
	// must stay error-free (the core degraded-mode invariant).
	ReadsDuringDegraded      int `json:"reads_during_degraded"`
	ReadErrorsDuringDegraded int `json:"read_errors_during_degraded"`

	// Overload/deadline phases: entries shed by admission control under a
	// slow shard (ShedRate = shed fraction of attempted entries) and
	// entries dropped because their deadline expired before apply.
	ShedRate     float64 `json:"shed_rate"`
	QueueShed    uint64  `json:"queue_shed"`
	ExpiredDrops uint64  `json:"expired_drops"`

	// Failpoint fire counts, proving each fault actually triggered.
	FsyncErrFires     uint64 `json:"fsync_err_fires"`
	DiskFullFires     uint64 `json:"disk_full_fires"`
	PublishDelayFires uint64 `json:"publish_delay_fires"`

	// Recovered is the final verdict: after every fault round a crash
	// (manager abandoned without Close) and a cold reopen produced a
	// store whose kNN probe matches the pre-crash result.
	Recovered bool `json:"recovered"`
}

// String renders the result as a short table for the harness output.
func (r ChaosBenchResult) String() string {
	return fmt.Sprintf(
		"CHAOS  rounds=%d sessions=%d objects=%d\n"+
			"       degrade<=%.1fms recover<=%.1fms writes: %d attempted / %d rejected / %d ok\n"+
			"       degraded reads: %d (%d errors)  shed=%d (rate %.2f)  expired=%d\n"+
			"       fires: fsync_err=%d disk_full=%d publish_delay=%d  recovered=%v",
		r.Rounds, r.Sessions, r.Objects,
		r.TimeToDegradeMaxMS, r.TimeToRecoverMaxMS, r.WritesAttempted, r.WritesRejected, r.WritesOK,
		r.ReadsDuringDegraded, r.ReadErrorsDuringDegraded, r.QueueShed, r.ShedRate, r.ExpiredDrops,
		r.FsyncErrFires, r.DiskFullFires, r.PublishDelayFires, r.Recovered)
}

// knnProbe runs one location update on a fresh session and returns the
// sorted kNN ids — the equivalence fingerprint for crash recovery.
func knnProbe(e *engine.Engine, at geom.Point) ([]int, error) {
	sid, err := e.CreateSession(5, 1.6)
	if err != nil {
		return nil, err
	}
	defer e.CloseSession(sid)
	results, err := e.UpdateBatch([]engine.LocationUpdate{{Session: sid, Pos: at}})
	if err != nil {
		return nil, err
	}
	if results[0].Err != nil {
		return nil, results[0].Err
	}
	knn := append([]int(nil), results[0].KNN...)
	sort.Ints(knn)
	return knn, nil
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ChaosBench drives the full engine + WAL stack through an injected
// fault schedule. Phases:
//
//  1. Degrade/heal rounds: arm wal.fsync.err persistently, hammer object
//     writes until the manager flips degraded (time-to-degrade), serve
//     location updates while degraded (must be error-free), disarm, and
//     poll writes until the heal probe restores them (time-to-recover).
//  2. A transient wal.disk.full burst (bounded count) that must clear
//     without degrading permanently.
//  3. A store.publish.delay round: durable writes with a stretched
//     epoch publication — reads keep serving the previous snapshot.
//  4. Overload: a deliberately slow shard (shard.apply.delay) with a
//     tiny mailbox and concurrent update batches; admission control must
//     shed rather than queue without bound.
//  5. Deadline: update batches under a ~1ms context deadline against the
//     slow shard; expired batches are dropped, counted, not applied.
//  6. Crash by abandonment, cold reopen, kNN-probe equivalence.
//
// Scale divides the round count.
func ChaosBench(cfg Config) (ChaosBenchResult, error) {
	const (
		objects  = 4000
		sessions = 64
	)
	rounds := 4
	if cfg.Scale > 1 {
		rounds = max(2, rounds/cfg.Scale)
	}
	fault.DisarmAll()
	defer fault.DisarmAll()

	dir, err := os.MkdirTemp("", "insq-chaos-*")
	if err != nil {
		return ChaosBenchResult{}, err
	}
	defer os.RemoveAll(dir)

	pts := workload.Uniform(objects, Bounds, cfg.seed(42))
	mgr, err := wal.Open(index.Config{Bounds: Bounds, Objects: pts}, wal.Options{
		Dir:             dir,
		Sync:            wal.SyncAlways,
		CheckpointEvery: 1 << 60, // recovery must ride the WAL tail, not a checkpoint
		DegradeAfter:    2,
		ProbeEvery:      20 * time.Millisecond,
	})
	if err != nil {
		return ChaosBenchResult{}, err
	}
	e, err := engine.New(engine.Config{Shards: 4, Bounds: Bounds, WAL: mgr})
	if err != nil {
		return ChaosBenchResult{}, err
	}

	sids := make([]engine.SessionID, sessions)
	for i := range sids {
		if sids[i], err = e.CreateSession(5, 1.6); err != nil {
			return ChaosBenchResult{}, err
		}
	}
	readBatch := func(step int) error {
		batch := make([]engine.LocationUpdate, len(sids))
		for i, sid := range sids {
			batch[i] = engine.LocationUpdate{
				Session: sid,
				Pos:     geom.Pt(float64((step*131+i*37)%9973)+1, float64((step*373+i*59)%9941)+1),
			}
		}
		results, err := e.UpdateBatch(batch)
		if err != nil {
			return err
		}
		for _, r := range results {
			if r.Err != nil {
				return r.Err
			}
		}
		return nil
	}
	writeAt := func(i int) geom.Point {
		return geom.Pt(float64((i*131)%9973)+1, float64((i*373)%9941)+1)
	}

	res := ChaosBenchResult{Rounds: rounds, Sessions: sessions, Objects: objects}
	var inserted []int
	wseq := 0
	tryWrite := func() error {
		res.WritesAttempted++
		id, err := e.InsertObject(writeAt(wseq))
		wseq++
		if err != nil {
			res.WritesRejected++
			return err
		}
		res.WritesOK++
		inserted = append(inserted, id)
		return nil
	}

	// Phase 1: degrade/heal rounds under persistent fsync failure.
	for round := 0; round < rounds; round++ {
		fault.WALFsyncErr.Arm(fault.Spec{})
		degradeStart := time.Now()
		for !e.Degraded() {
			tryWrite()
			if time.Since(degradeStart) > 10*time.Second {
				return res, fmt.Errorf("chaos: round %d: engine never degraded", round)
			}
		}
		res.TimeToDegradeMaxMS = maxf(res.TimeToDegradeMaxMS,
			float64(time.Since(degradeStart).Nanoseconds())/1e6)

		// Degraded mode: writes fail fast, reads keep serving.
		if err := tryWrite(); err == nil {
			return res, fmt.Errorf("chaos: round %d: write succeeded while degraded", round)
		}
		for step := 0; step < 8; step++ {
			res.ReadsDuringDegraded += sessions
			if err := readBatch(round*100 + step); err != nil {
				res.ReadErrorsDuringDegraded++
			}
		}

		// Heal: disarm the fault and poll until the probe restores writes.
		fault.WALFsyncErr.Disarm()
		healStart := time.Now()
		for {
			if err := tryWrite(); err == nil {
				break
			}
			if time.Since(healStart) > 10*time.Second {
				return res, fmt.Errorf("chaos: round %d: engine never healed", round)
			}
			time.Sleep(2 * time.Millisecond)
		}
		res.TimeToRecoverMaxMS = maxf(res.TimeToRecoverMaxMS,
			float64(time.Since(healStart).Nanoseconds())/1e6)
	}

	// Phase 2: a bounded disk-full burst. DegradeAfter=2 means the engine
	// may flip degraded mid-burst; once the count is exhausted the probe
	// heals it without any disarm — the fault self-clears.
	fault.WALDiskFull.Arm(fault.Spec{Count: 3})
	healStart := time.Now()
	for {
		if err := tryWrite(); err == nil && !e.Degraded() {
			break
		}
		if time.Since(healStart) > 10*time.Second {
			return res, fmt.Errorf("chaos: disk-full burst never cleared")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Phase 3: stretched epoch publication. The write is durable before
	// the delay, and concurrent reads serve the previous snapshot.
	fault.StorePublishDelay.Arm(fault.Spec{Delay: 5 * time.Millisecond, Count: 4})
	for i := 0; i < 4; i++ {
		if err := tryWrite(); err != nil {
			return res, fmt.Errorf("chaos: write under publish delay: %w", err)
		}
		if err := readBatch(1000 + i); err != nil {
			return res, fmt.Errorf("chaos: read under publish delay: %w", err)
		}
	}
	fault.StorePublishDelay.Disarm()

	res.FsyncErrFires = fault.WALFsyncErr.Fires()
	res.DiskFullFires = fault.WALDiskFull.Fires()
	res.PublishDelayFires = fault.StorePublishDelay.Fires()

	// Record the pre-crash fingerprint, then crash: abandon the manager
	// without Close. fsync=always means every acknowledged write is on
	// disk, so the reopened store must match the probe exactly.
	probeAt := geom.Pt(5000, 5000)
	preCrash, err := knnProbe(e, probeAt)
	if err != nil {
		return res, err
	}
	mgr.Store().Close() // crash: no manager Close, no final checkpoint
	e.Close()

	mgr2, err := wal.Open(index.Config{Bounds: Bounds}, wal.Options{Dir: dir, Sync: wal.SyncAlways})
	if err != nil {
		return res, fmt.Errorf("chaos: reopen after crash: %w", err)
	}
	e2, err := engine.New(engine.Config{Shards: 4, Bounds: Bounds, WAL: mgr2})
	if err != nil {
		return res, err
	}
	postCrash, err := knnProbe(e2, probeAt)
	if err != nil {
		return res, err
	}
	res.Recovered = equalInts(preCrash, postCrash)
	if err := mgr2.Close(); err != nil {
		return res, err
	}
	e2.Close()
	mgr2.Store().Close()

	// Phases 4-5 run on a dedicated WAL-free engine: one shard with a
	// tiny mailbox and an injected per-batch apply delay, so admission
	// control and deadline drops trigger deterministically.
	oe, err := engine.New(engine.Config{
		Shards:       1,
		Bounds:       Bounds,
		Objects:      workload.Uniform(512, Bounds, cfg.seed(7)),
		MailboxDepth: 4,
	})
	if err != nil {
		return res, err
	}
	defer oe.Close()
	osids := make([]engine.SessionID, 16)
	for i := range osids {
		if osids[i], err = oe.CreateSession(5, 1.6); err != nil {
			return res, err
		}
	}
	fault.ShardApplyDelay.Arm(fault.Spec{Delay: 2 * time.Millisecond})

	var attempted atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				batch := []engine.LocationUpdate{{
					Session: osids[w],
					Pos:     geom.Pt(float64((w*97+i*13)%9973)+1, float64((w*61+i*29)%9941)+1),
				}}
				attempted.Add(1)
				oe.UpdateBatch(batch) // ErrOverloaded expected under pressure
			}
		}(w)
	}
	wg.Wait()

	// Deadline phase: pin the worker with a slow occupier batch, then
	// enqueue a batch whose deadline expires while it waits in the
	// mailbox — the shard must drop it without applying.
	fault.ShardApplyDelay.Arm(fault.Spec{Delay: 20 * time.Millisecond})
	for i := 0; i < 4; i++ {
		occupied := make(chan struct{})
		go func() {
			defer close(occupied)
			oe.UpdateBatch([]engine.LocationUpdate{{Session: osids[1], Pos: geom.Pt(200, 200)}})
		}()
		time.Sleep(2 * time.Millisecond) // let the worker dequeue the occupier
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
		oe.UpdateBatchCtx(ctx, []engine.LocationUpdate{{Session: osids[0], Pos: geom.Pt(100, 100)}})
		cancel()
		<-occupied
	}
	fault.ShardApplyDelay.Disarm()

	ost, err := oe.Stats()
	if err != nil {
		return res, err
	}
	res.QueueShed = ost.Shed
	res.ExpiredDrops = ost.Expired
	if n := attempted.Load(); n > 0 {
		res.ShedRate = float64(ost.Shed) / float64(n)
	}
	if res.QueueShed == 0 {
		return res, fmt.Errorf("chaos: overload phase shed nothing (mailbox never filled)")
	}
	if res.ExpiredDrops == 0 {
		return res, fmt.Errorf("chaos: deadline phase expired nothing")
	}
	return res, nil
}
