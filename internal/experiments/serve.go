package experiments

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/api"
	insqclient "repro/internal/client"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/server"
	"repro/internal/workload"
)

// ServeBenchResult is the wire-protocol A/B record written to
// BENCH_serve.json by `bench -exp SERVE`. It boots a real insqd serving
// stack (HTTP mux + binary ingest) in-process and drives the identical
// location-update workload through both ingestion paths: one JSON
// request per batch versus the binary streaming protocol on persistent
// /v1/ingest connections. Both rates come from the same process on the
// same engine, so the speedup — the number benchguard gates — is
// machine-consistent by construction.
type ServeBenchResult struct {
	Sessions int     `json:"sessions"`
	Objects  int     `json:"objects"`
	Batch    int     `json:"batch"`
	Streams  int     `json:"streams"`
	Workers  int     `json:"workers"`
	Reps     int     `json:"reps"`
	RepMS    float64 `json:"rep_ms"`

	JSONRequests      uint64  `json:"json_requests"`
	JSONUpdatesPerSec float64 `json:"json_updates_per_sec"`
	JSONRTTP50US      float64 `json:"json_rtt_p50_us"`
	JSONRTTP95US      float64 `json:"json_rtt_p95_us"`

	BinaryFrames        uint64  `json:"binary_frames"`
	BinaryUpdatesPerSec float64 `json:"binary_updates_per_sec"`
	BinaryRTTP50US      float64 `json:"binary_rtt_p50_us"`
	BinaryRTTP95US      float64 `json:"binary_rtt_p95_us"`

	// Speedup is binary over JSON throughput on the identical workload.
	Speedup float64 `json:"speedup"`

	// Server-side ingest pump counters for the binary phase (from
	// /v1/stats): how many frames the coalescing pump merged away, and the
	// wire cost per update.
	FramesTotal      uint64  `json:"frames_total"`
	CoalescedBatches uint64  `json:"coalesced_batches"`
	CoalesceFactor   float64 `json:"coalesce_factor"`
	BytesInPerUpdate float64 `json:"bytes_in_per_update"`

	// Healthy-path admission rejections. Nothing in this workload should
	// trip shed or deadline control, so benchguard gates both at zero.
	ShedJSON   uint64 `json:"shed_json"`
	ShedBinary uint64 `json:"shed_binary"`
}

// String renders the result as a short table for the harness output.
func (r ServeBenchResult) String() string {
	return fmt.Sprintf(
		"SERVE sessions=%d objects=%d batch=%d streams=%d workers=%d reps=%d rep=%.0fms\n"+
			"      json:   %8.0f updates/s  requests=%-8d rtt p50=%.0fus p95=%.0fus  shed=%d\n"+
			"      binary: %8.0f updates/s  frames=%-8d   rtt p50=%.0fus p95=%.0fus  shed=%d\n"+
			"      speedup=%.2fx coalesce=%.2fx (coalesced=%d/%d) bytes_in/update=%.1f",
		r.Sessions, r.Objects, r.Batch, r.Streams, r.Workers, r.Reps, r.RepMS,
		r.JSONUpdatesPerSec, r.JSONRequests, r.JSONRTTP50US, r.JSONRTTP95US, r.ShedJSON,
		r.BinaryUpdatesPerSec, r.BinaryFrames, r.BinaryRTTP50US, r.BinaryRTTP95US, r.ShedBinary,
		r.Speedup, r.CoalesceFactor, r.CoalescedBatches, r.FramesTotal, r.BytesInPerUpdate)
}

// serveWorker owns a disjoint slice of sessions and walks them through
// small jittered location batches — the per-request shape of a mobile
// fleet pushing position fixes, where the wire overhead dominates the
// engine work and the protocol choice actually shows.
type serveWorker struct {
	sids    []uint64
	pos     []geom.Point
	rng     *rand.Rand
	cursor  int
	entries []api.UpdateEntry

	ops     uint64
	updates uint64
	shed    uint64
	rtts    []time.Duration
}

func (w *serveWorker) next(bounds geom.Rect, batch int) []api.UpdateEntry {
	w.entries = w.entries[:0]
	for i := 0; i < batch; i++ {
		j := w.cursor % len(w.sids)
		w.cursor++
		p := w.pos[j]
		p.X += (w.rng.Float64() - 0.5) * 10
		p.Y += (w.rng.Float64() - 0.5) * 10
		if !bounds.Contains(p) {
			p = geom.Pt(bounds.Max.X/2, bounds.Max.Y/2)
		}
		w.pos[j] = p
		w.entries = append(w.entries, api.UpdateEntry{Session: w.sids[j], X: p.X, Y: p.Y})
	}
	return w.entries
}

// ServeBench measures the SERVE record: JSON-per-request vs binary
// streaming ingest against an in-process insqd serving stack. Reps
// alternate the phase order so neither path systematically benefits from
// warm-up or drift; totals accumulate across reps and the rates divide
// by measured wall time per phase.
func ServeBench(cfg Config) (ServeBenchResult, error) {
	const (
		objects = 20000
		k       = 5
		rho     = 1.6
		shards  = 8
		batch   = 4 // entries per request/frame: the wire-bound shape
		streams = 4 // persistent binary connections
		depth   = 8 // concurrent batches in flight per stream
		reps    = 3
	)
	sessions := 2048
	repDur := 1200 * time.Millisecond
	if cfg.Scale > 1 {
		sessions /= cfg.Scale
		repDur /= time.Duration(cfg.Scale)
		if repDur < 300*time.Millisecond {
			repDur = 300 * time.Millisecond
		}
	}
	workers := streams * depth // same offered concurrency on both paths

	e, err := engine.New(engine.Config{
		Shards:  shards,
		Bounds:  Bounds,
		Objects: workload.Uniform(objects, Bounds, cfg.seed(42)),
	})
	if err != nil {
		return ServeBenchResult{}, err
	}
	defer e.Close()

	hs := server.New(e, server.Options{CoalesceWindow: time.Millisecond})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return ServeBenchResult{}, err
	}
	httpSrv := &http.Server{Handler: hs.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	// Sessions are created on the engine directly (session setup is not
	// under test) and placed once so both phases move a warm fleet.
	rng := rand.New(rand.NewSource(cfg.seed(7)))
	sids := make([]uint64, sessions)
	pos := make([]geom.Point, sessions)
	place := make([]engine.LocationUpdate, sessions)
	for i := range sids {
		sid, err := e.CreateSession(k, rho)
		if err != nil {
			return ServeBenchResult{}, err
		}
		sids[i] = uint64(sid)
		pos[i] = geom.Pt(rng.Float64()*Bounds.Max.X, rng.Float64()*Bounds.Max.Y)
		place[i] = engine.LocationUpdate{Session: sid, Pos: pos[i]}
	}
	if _, err := e.UpdateBatch(place); err != nil {
		return ServeBenchResult{}, err
	}

	// Two worker fleets over the same session partition, one per phase,
	// so each phase's position walk stays self-consistent across reps.
	newFleet := func(seed int64) []*serveWorker {
		fleet := make([]*serveWorker, workers)
		per := sessions / workers
		for i := range fleet {
			lo, hi := i*per, (i+1)*per
			if i == workers-1 {
				hi = sessions
			}
			fleet[i] = &serveWorker{
				sids: sids[lo:hi],
				pos:  append([]geom.Point(nil), pos[lo:hi]...),
				rng:  rand.New(rand.NewSource(seed + int64(i))),
			}
		}
		return fleet
	}
	jsonFleet := newFleet(cfg.seed(1000))
	binFleet := newFleet(cfg.seed(2000))

	cl := insqclient.New(base, insqclient.Options{Retries: -1})

	// The binary connections persist across reps — connection reuse is
	// half the protocol's point.
	ctx := context.Background()
	conns := make([]*insqclient.Ingest, streams)
	for i := range conns {
		in, err := cl.DialIngest(ctx, 0)
		if err != nil {
			return ServeBenchResult{}, fmt.Errorf("dial ingest: %w", err)
		}
		conns[i] = in
		defer in.Close()
	}

	runPhase := func(fleet []*serveWorker, do func(w *serveWorker, i int, entries []api.UpdateEntry) error) (time.Duration, error) {
		var wg sync.WaitGroup
		errs := make(chan error, workers)
		deadline := time.Now().Add(repDur)
		t0 := time.Now()
		for i, w := range fleet {
			wg.Add(1)
			go func(w *serveWorker, i int) {
				defer wg.Done()
				for time.Now().Before(deadline) {
					entries := w.next(Bounds, batch)
					if err := do(w, i, entries); err != nil {
						errs <- err
						return
					}
				}
			}(w, i)
		}
		wg.Wait()
		elapsed := time.Since(t0)
		select {
		case err := <-errs:
			return 0, err
		default:
		}
		return elapsed, nil
	}

	jsonBatch := func(w *serveWorker, _ int, entries []api.UpdateEntry) error {
		t0 := time.Now()
		resp, err := cl.Update(entries)
		rtt := time.Since(t0)
		if err != nil {
			var apiErr *insqclient.APIError
			if errors.As(err, &apiErr) && apiErr.Transient() {
				w.shed++
				return nil
			}
			return err
		}
		w.ops++
		w.updates += uint64(len(resp.Results))
		w.rtts = append(w.rtts, rtt)
		return nil
	}
	binBatch := func(w *serveWorker, i int, entries []api.UpdateEntry) error {
		in := conns[i%streams]
		t0 := time.Now()
		ack, err := in.Call(api.IngestBatch{Updates: entries})
		rtt := time.Since(t0)
		if err != nil {
			return err
		}
		switch ack.Code {
		case api.CodeOK:
			w.ops++
			w.updates += uint64(ack.Applied)
			w.rtts = append(w.rtts, rtt)
			return nil
		case api.CodeOverloaded, api.CodeDegraded, api.CodeUnavailable:
			w.shed++
			return nil
		default:
			return fmt.Errorf("ingest ack %s: %s", ack.Code, ack.Message)
		}
	}

	var jsonElapsed, binElapsed time.Duration
	for rep := 0; rep < reps; rep++ {
		phases := []func() (time.Duration, error){
			func() (time.Duration, error) { return runPhase(jsonFleet, jsonBatch) },
			func() (time.Duration, error) { return runPhase(binFleet, binBatch) },
		}
		into := []*time.Duration{&jsonElapsed, &binElapsed}
		if rep%2 == 1 { // alternate order to cancel drift
			phases[0], phases[1] = phases[1], phases[0]
			into[0], into[1] = into[1], into[0]
		}
		for p, run := range phases {
			d, err := run()
			if err != nil {
				return ServeBenchResult{}, err
			}
			*into[p] += d
		}
	}

	sum := func(fleet []*serveWorker) (ops, updates, shed uint64, hist pushHist) {
		for _, w := range fleet {
			ops += w.ops
			updates += w.updates
			shed += w.shed
			for _, d := range w.rtts {
				hist.add(d)
			}
		}
		return
	}
	jsonOps, jsonUpdates, jsonShed, jsonHist := sum(jsonFleet)
	binOps, binUpdates, binShed, binHist := sum(binFleet)

	st, err := cl.Stats()
	if err != nil {
		return ServeBenchResult{}, err
	}

	res := ServeBenchResult{
		Sessions: sessions,
		Objects:  objects,
		Batch:    batch,
		Streams:  streams,
		Workers:  workers,
		Reps:     reps,
		RepMS:    float64(repDur.Milliseconds()),

		JSONRequests:      jsonOps,
		JSONUpdatesPerSec: float64(jsonUpdates) / jsonElapsed.Seconds(),
		JSONRTTP50US:      jsonHist.quantileUS(0.50),
		JSONRTTP95US:      jsonHist.quantileUS(0.95),

		BinaryFrames:        binOps,
		BinaryUpdatesPerSec: float64(binUpdates) / binElapsed.Seconds(),
		BinaryRTTP50US:      binHist.quantileUS(0.50),
		BinaryRTTP95US:      binHist.quantileUS(0.95),

		ShedJSON:   jsonShed,
		ShedBinary: binShed,
	}
	if res.JSONUpdatesPerSec > 0 {
		res.Speedup = res.BinaryUpdatesPerSec / res.JSONUpdatesPerSec
	}
	if st.Ingest != nil {
		res.FramesTotal = st.Ingest.FramesTotal
		res.CoalescedBatches = st.Ingest.CoalescedBatches
		res.CoalesceFactor = st.Ingest.CoalesceFactor
		if binUpdates > 0 {
			res.BytesInPerUpdate = float64(st.Ingest.BytesIn) / float64(binUpdates)
		}
	}
	return res, nil
}
