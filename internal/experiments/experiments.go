// Package experiments defines the reproduction experiments E1–E11 listed in
// DESIGN.md: each function builds its workload, runs the competing
// processors, and returns printable rows. cmd/bench prints them and the
// root-level benchmark suite wraps them in testing.B targets, so the tables
// in EXPERIMENTS.md regenerate from exactly this code.
package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/netvor"
	"repro/internal/roadnet"
	"repro/internal/sim"
	"repro/internal/trajectory"
	"repro/internal/vortree"
	"repro/internal/workload"
)

// Bounds is the data space every Euclidean experiment uses.
var Bounds = geom.NewRect(geom.Pt(0, 0), geom.Pt(10000, 10000))

// Row is one line of an experiment table.
type Row struct {
	Experiment string  // e.g. "E4"
	Processor  string  // e.g. "ins"
	Param      string  // swept parameter, e.g. "k=8"
	Steps      int     // timestamps simulated
	Recomps    int     // recomputation (communication) events
	Shipped    int     // objects shipped to the client
	USPerStep  float64 // microseconds per timestamp
	Extra      string  // experiment-specific column
}

// String renders the row for the harness output.
func (r Row) String() string {
	return fmt.Sprintf("%-4s %-10s %-26s steps=%-6d recomp=%-6d shipped=%-8d us/step=%-9.2f %s",
		r.Experiment, r.Param, r.Processor, r.Steps, r.Recomps, r.Shipped, r.USPerStep, r.Extra)
}

func reportRow(exp, param string, rep sim.Report, extra string) Row {
	return Row{
		Experiment: exp,
		Processor:  rep.Name,
		Param:      param,
		Steps:      rep.Steps,
		Recomps:    rep.Counters.Recomputations,
		Shipped:    rep.Counters.ObjectsShipped,
		USPerStep:  rep.PerStepMicros(),
		Extra:      extra,
	}
}

// Scale shrinks workload sizes for quick runs (1 = paper-scale defaults,
// larger values divide step counts). The benchmark suite uses Scale=4 so
// `go test -bench=.` stays tractable.
type Config struct {
	Scale int
	// Seed offsets every workload seed (datasets, trajectories, churn
	// RNGs) so reruns can probe seed sensitivity; 0 reproduces the
	// canonical published tables. The E1/E2 paper-figure fixtures are
	// seed-independent by construction.
	Seed int64
	// Vertices overrides the NETWORK benchmark's road-network size (the
	// street grid is ⌈√Vertices⌉ on a side; site density is held fixed so
	// cell sizes — and with them the per-update search work — stay
	// comparable across sizes). 0 keeps the canonical 4096-vertex grid.
	Vertices int
}

// seed derives a workload seed from its canonical base and the run's
// Seed offset.
func (c Config) seed(base int64) int64 { return base + c.Seed }

func (c Config) steps(n int) int {
	if c.Scale <= 1 {
		return n
	}
	return n / c.Scale
}

// planeIndex builds the shared Euclidean workload.
func planeIndex(n int, seed int64) (*vortree.Index, error) {
	ix, _, err := vortree.Build(Bounds, 16, workload.Uniform(n, Bounds, seed))
	return ix, err
}

// E4E5 sweeps k and reports recomputations, shipped objects (E4) and
// processing time per step (E5) for INS and the baselines.
func E4E5(cfg Config) ([]Row, error) {
	ix, err := planeIndex(10000, cfg.seed(4))
	if err != nil {
		return nil, err
	}
	steps := cfg.steps(4000)
	traj := trajectory.RandomWaypoint(Bounds, steps, 8, cfg.seed(44))
	var rows []Row
	for _, k := range []int{1, 2, 4, 8, 16, 32} {
		param := fmt.Sprintf("k=%d", k)
		procs, err := planeProcessors(ix, k, 1.6, 4)
		if err != nil {
			return nil, err
		}
		for _, p := range procs {
			rep, err := sim.RunPlane(p, traj, nil)
			if err != nil {
				return nil, fmt.Errorf("E4 %s %s: %w", param, p.Name(), err)
			}
			rows = append(rows, reportRow("E4", param, rep, ""))
		}
	}
	return rows, nil
}

// planeProcessors builds the standard competitor set. The exact order-k
// cell construction is O(k·n) per recomputation — the construction
// overhead the paper criticizes — and becomes minutes-per-run beyond k=8
// at n=10000, so larger k switch to the INS-assisted construction (the
// output names the variant); its recomputation *frequency* is identical,
// only the construction cost column becomes a lower bound.
func planeProcessors(ix *vortree.Index, k int, rho float64, x int) ([]sim.PlaneProcessor, error) {
	ins, err := core.NewPlaneQuery(ix, k, rho)
	if err != nil {
		return nil, err
	}
	vstar, err := baseline.NewVStarPlane(ix, k, x)
	if err != nil {
		return nil, err
	}
	cell, err := baseline.NewOrderKCellPlane(ix, k, k > 8)
	if err != nil {
		return nil, err
	}
	naive, err := baseline.NewNaivePlane(ix, k)
	if err != nil {
		return nil, err
	}
	return []sim.PlaneProcessor{ins, vstar, cell, naive}, nil
}

// E6 sweeps the prefetch ratio ρ and reports the communication /
// recomputation trade-off it balances.
func E6(cfg Config) ([]Row, error) {
	ix, err := planeIndex(10000, cfg.seed(6))
	if err != nil {
		return nil, err
	}
	steps := cfg.steps(6000)
	traj := trajectory.RandomWaypoint(Bounds, steps, 8, cfg.seed(66))
	var rows []Row
	for _, rho := range []float64{1.0, 1.2, 1.6, 2.0, 3.0} {
		q, err := core.NewPlaneQuery(ix, 8, rho)
		if err != nil {
			return nil, err
		}
		rep, err := sim.RunPlane(q, traj, nil)
		if err != nil {
			return nil, fmt.Errorf("E6 rho=%g: %w", rho, err)
		}
		extra := fmt.Sprintf("shipped/recomp=%.1f",
			float64(rep.Counters.ObjectsShipped)/float64(max(1, rep.Counters.Recomputations)))
		rows = append(rows, reportRow("E6", fmt.Sprintf("rho=%.1f", rho), rep, extra))
	}
	return rows, nil
}

// E7 sweeps the dataset size. The exact order-k cell baseline is capped at
// 10k objects (its construction is quadratic-ish in practice beyond that —
// which is itself the finding).
func E7(cfg Config) ([]Row, error) {
	steps := cfg.steps(3000)
	var rows []Row
	sizes := []int{1000, 5000, 10000, 50000, 100000}
	if cfg.Scale > 1 {
		sizes = []int{1000, 5000, 10000, 50000}
	}
	for _, n := range sizes {
		ix, err := planeIndex(n, cfg.seed(int64(n)))
		if err != nil {
			return nil, err
		}
		traj := trajectory.RandomWaypoint(Bounds, steps, 8, cfg.seed(int64(n)+7))
		param := fmt.Sprintf("n=%d", n)
		ins, err := core.NewPlaneQuery(ix, 8, 1.6)
		if err != nil {
			return nil, err
		}
		vstar, err := baseline.NewVStarPlane(ix, 8, 4)
		if err != nil {
			return nil, err
		}
		naive, err := baseline.NewNaivePlane(ix, 8)
		if err != nil {
			return nil, err
		}
		procs := []sim.PlaneProcessor{ins, vstar, naive}
		if n <= 10000 {
			cell, err := baseline.NewOrderKCellPlane(ix, 8, false)
			if err != nil {
				return nil, err
			}
			procs = append(procs, cell)
		}
		for _, p := range procs {
			rep, err := sim.RunPlane(p, traj, nil)
			if err != nil {
				return nil, fmt.Errorf("E7 %s %s: %w", param, p.Name(), err)
			}
			rows = append(rows, reportRow("E7", param, rep, ""))
		}
	}
	return rows, nil
}

// E8E9 runs the road-network comparison (E8) including the Theorem-2
// ablation (E9): the same INS logic with validation on the full network.
func E8E9(cfg Config) ([]Row, error) {
	netBounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(20000, 20000))
	g, err := roadnet.GridNetwork(64, 64, netBounds, 0.25, 0.3, cfg.seed(8))
	if err != nil {
		return nil, err
	}
	sites := pickSites(g.NumVertices(), 400, cfg.seed(88))
	d, err := netvor.Build(g, sites)
	if err != nil {
		return nil, err
	}
	routeLen := float64(cfg.steps(400000))
	route, err := roadnet.RandomWalkRoute(g, 0, routeLen, cfg.seed(89))
	if err != nil {
		return nil, err
	}
	const stepLen = 40
	var rows []Row
	for _, k := range []int{1, 2, 4, 8, 16} {
		param := fmt.Sprintf("k=%d", k)
		insQ, err := core.NewNetworkQuery(d, k, 1.6)
		if err != nil {
			return nil, err
		}
		fullQ, err := baseline.NewFullNetworkINS(d, k, 1.6)
		if err != nil {
			return nil, err
		}
		naiveQ, err := baseline.NewNaiveNetwork(d, k)
		if err != nil {
			return nil, err
		}
		for _, p := range []sim.NetworkProcessor{insQ, fullQ, naiveQ} {
			rep, err := sim.RunNetwork(p, route, stepLen, nil)
			if err != nil {
				return nil, fmt.Errorf("E8 %s %s: %w", param, p.Name(), err)
			}
			extra := fmt.Sprintf("relax/step=%.0f",
				float64(rep.Counters.EdgeRelaxations)/float64(max(1, rep.Steps)))
			rows = append(rows, reportRow("E8", param, rep, extra))
		}
	}
	return rows, nil
}

func pickSites(nVerts, nSites int, seed int64) []int {
	// Deterministic site sample without importing math/rand at every call
	// site: a simple LCG-shuffled prefix.
	perm := make([]int, nVerts)
	for i := range perm {
		perm[i] = i
	}
	state := uint64(seed)*6364136223846793005 + 1442695040888963407
	for i := nVerts - 1; i > 0; i-- {
		state = state*6364136223846793005 + 1442695040888963407
		j := int(state % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	if nSites > nVerts {
		nSites = nVerts
	}
	out := append([]int(nil), perm[:nSites]...)
	sort.Ints(out)
	return out
}

// E11 sweeps the data-update rate during a moving query.
func E11(cfg Config) ([]Row, error) {
	steps := cfg.steps(3000)
	var rows []Row
	for _, updatesPer100 := range []int{0, 1, 5, 10} {
		ix, err := planeIndex(10000, cfg.seed(11))
		if err != nil {
			return nil, err
		}
		q, err := core.NewPlaneQuery(ix, 8, 1.6)
		if err != nil {
			return nil, err
		}
		traj := trajectory.RandomWaypoint(Bounds, steps, 8, cfg.seed(111))
		state := uint64(12345 + cfg.Seed)
		rnd := func(n int) int {
			// Use the high bits: the low bits of an LCG cycle with tiny
			// periods (bit 0 alternates every call).
			state = state*6364136223846793005 + 1442695040888963407
			return int((state >> 33) % uint64(n))
		}
		rep, err := runPlaneWithUpdates(q, traj, updatesPer100, rnd)
		if err != nil {
			return nil, fmt.Errorf("E11 u=%d: %w", updatesPer100, err)
		}
		rows = append(rows, reportRow("E11", fmt.Sprintf("upd/100=%d", updatesPer100), rep, ""))
	}
	return rows, nil
}

// runPlaneWithUpdates drives the query manually so object inserts/removes
// can be interleaved with location updates.
func runPlaneWithUpdates(q *core.PlaneQuery, traj []geom.Point, updatesPer100 int,
	rnd func(int) int) (sim.Report, error) {
	interval := 0
	if updatesPer100 > 0 {
		interval = 100 / updatesPer100
	}
	var inserted []int
	start := time.Now()
	for step, pos := range traj {
		if _, err := q.Update(pos); err != nil {
			return sim.Report{}, err
		}
		if interval > 0 && step%interval == interval/2 {
			if rnd(2) == 0 || len(inserted) == 0 {
				// Insert near the query half the time so updates actually
				// intersect the guard sets; far inserts exercise the
				// cheap no-refresh path.
				p := geom.Pt(
					Bounds.Min.X+float64(rnd(10000)),
					Bounds.Min.Y+float64(rnd(10000)))
				if rnd(2) == 0 {
					p = geom.Pt(
						clampTo(pos.X+float64(rnd(400))-200, Bounds.Min.X, Bounds.Max.X),
						clampTo(pos.Y+float64(rnd(400))-200, Bounds.Min.Y, Bounds.Max.Y))
				}
				id, err := q.InsertObject(p)
				if err != nil {
					return sim.Report{}, err
				}
				inserted = append(inserted, id)
			} else {
				i := rnd(len(inserted))
				if err := q.RemoveObject(inserted[i]); err != nil {
					return sim.Report{}, err
				}
				inserted = append(inserted[:i], inserted[i+1:]...)
			}
		}
	}
	return sim.Report{
		Name:     "ins+updates",
		Steps:    len(traj),
		Duration: time.Since(start),
		Counters: *q.Metrics(),
	}, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func clampTo(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
