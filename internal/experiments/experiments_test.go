package experiments

import (
	"strings"
	"testing"
)

// The experiment suite at a heavy scale divisor doubles as an integration
// test: every experiment must run end to end and produce coherent rows.

func TestE1(t *testing.T) {
	rows, err := E1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows", len(rows))
	}
	// The fixture must reproduce the paper's sets exactly.
	if !strings.Contains(rows[0].Extra, "MIS=[3 5 10 12]") {
		t.Errorf("E1 row does not reproduce Figure 1's MIS: %s", rows[0].Extra)
	}
	if !strings.Contains(rows[0].Extra, "3NN=[7 6 4]") && !strings.Contains(rows[0].Extra, "3NN=[4 6 7]") {
		t.Errorf("E1 row does not reproduce Figure 1's 3NN: %s", rows[0].Extra)
	}
}

func TestE2(t *testing.T) {
	rows, err := E2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || !strings.Contains(rows[0].Extra, "INS=") {
		t.Fatalf("unexpected E2 rows: %+v", rows)
	}
}

func TestE3(t *testing.T) {
	rows, err := E3(Config{Scale: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Steps == 0 {
		t.Fatalf("unexpected E3 rows: %+v", rows)
	}
}

func TestE4E5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	rows, err := E4E5(Config{Scale: 40})
	if err != nil {
		t.Fatal(err)
	}
	// Find ins and naive at k=8 and check the paper's headline shape.
	recomp := map[string]int{}
	for _, r := range rows {
		if r.Param == "k=8" {
			recomp[r.Processor] = r.Recomps
		}
	}
	if recomp["ins"] >= recomp["naive"] {
		t.Errorf("ins recomputed %d, naive %d; INS must recompute less", recomp["ins"], recomp["naive"])
	}
	if recomp["naive"] == 0 {
		t.Error("naive recomputations missing")
	}
}

func TestE6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	rows, err := E6(Config{Scale: 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(rows))
	}
	// Larger rho must not increase recomputations.
	if rows[len(rows)-1].Recomps > rows[0].Recomps {
		t.Errorf("rho=3.0 recomputed %d > rho=1.0 %d", rows[len(rows)-1].Recomps, rows[0].Recomps)
	}
}

func TestE8E9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	rows, err := E8E9(Config{Scale: 100})
	if err != nil {
		t.Fatal(err)
	}
	byProc := map[string]Row{}
	for _, r := range rows {
		if r.Param == "k=4" {
			byProc[r.Processor] = r
		}
	}
	ins, ok1 := byProc["ins-network"]
	naive, ok2 := byProc["naive-network"]
	if !ok1 || !ok2 {
		t.Fatalf("missing processors in rows: %+v", rows)
	}
	if ins.Recomps >= naive.Recomps {
		t.Errorf("network INS recomputed %d, naive %d", ins.Recomps, naive.Recomps)
	}
}

func TestE11(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	rows, err := E11(Config{Scale: 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	if _, err := AblationRerank(Config{Scale: 40}); err != nil {
		t.Fatal(err)
	}
	if _, err := AblationVorTree(Config{Scale: 40}); err != nil {
		t.Fatal(err)
	}
	if _, err := AblationOrderKConstruction(Config{Scale: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRowString(t *testing.T) {
	r := Row{Experiment: "E4", Processor: "ins", Param: "k=8", Steps: 100, Recomps: 7}
	s := r.String()
	for _, want := range []string{"E4", "ins", "k=8", "recomp=7"} {
		if !strings.Contains(s, want) {
			t.Errorf("row %q missing %q", s, want)
		}
	}
}
