package experiments

import (
	"fmt"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/netvor"
	"repro/internal/roadnet"
	"repro/internal/sim"
	"repro/internal/trajectory"
	"repro/internal/voronoi"
	"repro/internal/vortree"
	"repro/internal/workload"
)

// Fig1Points is the Figure 1 configuration: twelve objects p1..p12 (index
// i holds p_{i+1}) whose order-3 Voronoi structure around Fig1Q matches the
// paper's figure: 3NN = {p4, p6, p7}, MIS = {p3, p5, p10, p12}, and six
// neighboring order-3 cells labeled (6,7,12), (3,6,7), (3,4,7), (4,5,7),
// (4,7,10), (6,7,10).
var Fig1Points = []geom.Point{
	{X: 15.770759, Y: 80.855149}, // p1
	{X: 87.565839, Y: 27.022628}, // p2
	{X: 18.620682, Y: 31.596452}, // p3
	{X: 26.198834, Y: 63.848004}, // p4
	{X: 15.132619, Y: 35.645693}, // p5
	{X: 46.591356, Y: 32.984624}, // p6
	{X: 42.450423, Y: 40.626163}, // p7
	{X: 86.705380, Y: 85.629398}, // p8
	{X: 24.708641, Y: 18.263631}, // p9
	{X: 43.446181, Y: 77.920094}, // p10
	{X: 82.651417, Y: 11.966606}, // p11
	{X: 80.862036, Y: 52.013293}, // p12
}

// Fig1Q is the query location for the Figure 1 configuration.
var Fig1Q = geom.Pt(50, 50)

// Fig1Bounds is the data space of the Figure 1 configuration.
var Fig1Bounds = geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))

// E1 reproduces Figure 1: it computes the 3NN set, INS and MIS on the
// fixture and reports them in the paper's 1-based labels.
func E1() ([]Row, error) {
	d, _, err := voronoi.Build(Fig1Bounds, Fig1Points)
	if err != nil {
		return nil, err
	}
	knn := d.KNN(Fig1Q, 3)
	ins, err := d.INS(knn)
	if err != nil {
		return nil, err
	}
	mis, err := d.MIS(knn, ins)
	if err != nil {
		return nil, err
	}
	return []Row{
		{Experiment: "E1", Processor: "fig1", Param: "k=3",
			Extra: fmt.Sprintf("3NN=%v INS=%v MIS=%v (paper: 3NN={4,6,7} MIS={3,5,10,12})",
				labels(knn), labels(ins), labels(mis))},
	}, nil
}

func labels(ids []int) []int {
	out := make([]int, len(ids))
	for i, id := range ids {
		out[i] = id + 1
	}
	return out
}

// E2 reproduces the Figure 2 scenario: an order-2 query on a small road
// network, reporting the kNN set, its network INS, and checking MIS ⊆ INS
// via Theorem 1.
func E2() ([]Row, error) {
	g, err := roadnet.RandomPlanarNetwork(40, Bounds, 0.5, 0.2, 102)
	if err != nil {
		return nil, err
	}
	sites := pickSites(40, 12, 103)
	d, err := netvor.Build(g, sites)
	if err != nil {
		return nil, err
	}
	pos := roadnet.VertexPosition(sites[4])
	knn := d.KNN(pos, 2)
	ins, err := d.INS(knn)
	if err != nil {
		return nil, err
	}
	return []Row{
		{Experiment: "E2", Processor: "fig2", Param: "k=2",
			Extra: fmt.Sprintf("kNN=%v INS=%v (Theorem 1: every possible single-swap entrant is in INS)", knn, ins)},
	}, nil
}

// E3 reproduces the Figure 4 scenario quantitatively: it runs a k=5,
// ρ=1.6 query across a 200-object space and reports how often the kNN set
// was invalidated (the moment the green circle escapes the red circle) and
// how many of those invalidations were repaired locally vs. recomputed.
func E3(cfg Config) ([]Row, error) {
	ix, _, err := vortree.Build(Fig1Bounds,
		16, workload.Uniform(200, Fig1Bounds, cfg.seed(14)))
	if err != nil {
		return nil, err
	}
	q, err := core.NewPlaneQuery(ix, 5, 1.6)
	if err != nil {
		return nil, err
	}
	traj := trajectory.RandomWaypoint(Fig1Bounds, cfg.steps(4000), 0.5, cfg.seed(15))
	rep, err := sim.RunPlane(q, traj, nil)
	if err != nil {
		return nil, err
	}
	m := rep.Counters
	extra := fmt.Sprintf("invalidations=%d locally-repaired=%d recomputed=%d",
		m.Invalidations, m.Invalidations-(m.Recomputations-1), m.Recomputations-1)
	return []Row{reportRow("E3", "k=5,rho=1.6", rep, extra)}, nil
}

// AblationRerank measures what the local re-rank path (update cases
// (i)/(ii)) is worth by disabling it.
func AblationRerank(cfg Config) ([]Row, error) {
	ix, err := planeIndex(10000, cfg.seed(21))
	if err != nil {
		return nil, err
	}
	traj := trajectory.RandomWaypoint(Bounds, cfg.steps(4000), 8, cfg.seed(121))
	var rows []Row
	for _, disable := range []bool{false, true} {
		q, err := core.NewPlaneQuery(ix, 8, 1.6)
		if err != nil {
			return nil, err
		}
		q.SetDisableLocalRerank(disable)
		rep, err := sim.RunPlane(q, traj, nil)
		if err != nil {
			return nil, err
		}
		if disable {
			rep.Name = "ins-norerank"
		}
		rows = append(rows, reportRow("A1", "k=8", rep, ""))
	}
	return rows, nil
}

// AblationVorTree compares computing R with the VoR-tree (one best-first
// descent + Voronoi expansion) against plain best-first R-tree kNN.
func AblationVorTree(cfg Config) ([]Row, error) {
	ix, err := planeIndex(50000, cfg.seed(22))
	if err != nil {
		return nil, err
	}
	traj := trajectory.RandomWaypoint(Bounds, cfg.steps(2000), 50, cfg.seed(122))
	tree := ix.Tree()
	var rows []Row
	run := func(name string, knn func(geom.Point, int) []int) Row {
		start := nowMicros()
		visitsBefore := tree.NodeVisits()
		for _, p := range traj {
			knn(p, 13) // ⌊1.6·8⌋
		}
		elapsed := nowMicros() - start
		return Row{
			Experiment: "A2", Processor: name, Param: "k'=13",
			Steps:     len(traj),
			USPerStep: float64(elapsed) / float64(len(traj)),
			Extra:     fmt.Sprintf("nodevisits=%d", tree.NodeVisits()-visitsBefore),
		}
	}
	rows = append(rows, run("vortree-knn", func(p geom.Point, k int) []int { return ix.KNN(p, k) }))
	rows = append(rows, run("rtree-knn", func(p geom.Point, k int) []int {
		items := tree.KNN(p, k)
		out := make([]int, len(items))
		for i, it := range items {
			out[i] = it.ID
		}
		return out
	}))
	return rows, nil
}

// AblationOrderKConstruction compares order-k cell construction against all
// outsiders (references [2]/[6]) vs. against INS candidates only.
func AblationOrderKConstruction(cfg Config) ([]Row, error) {
	ix, err := planeIndex(10000, cfg.seed(23))
	if err != nil {
		return nil, err
	}
	traj := trajectory.RandomWaypoint(Bounds, cfg.steps(2000), 8, cfg.seed(123))
	var rows []Row
	for _, assisted := range []bool{false, true} {
		q, err := baseline.NewOrderKCellPlane(ix, 8, assisted)
		if err != nil {
			return nil, err
		}
		rep, err := sim.RunPlane(q, traj, nil)
		if err != nil {
			return nil, err
		}
		rows = append(rows, reportRow("A3", "k=8", rep, ""))
	}
	return rows, nil
}

func nowMicros() int64 { return time.Now().UnixMicro() }

// E12 reproduces the introduction's argument against precomputing order-k
// Voronoi cells ("unpractical due to the rapid increase in the number of
// order-k Voronoi cells as k increases"): enumerate the full order-k
// diagram for growing k and report cell counts and construction time,
// then compare the precomputed processor's steady-state step cost against
// INS (which needs no precomputation at all).
func E12(cfg Config) ([]Row, error) {
	n := 2000
	if cfg.Scale > 1 {
		n = 1000
	}
	ix, err := planeIndex(n, cfg.seed(12))
	if err != nil {
		return nil, err
	}
	traj := trajectory.RandomWaypoint(Bounds, cfg.steps(2000), 8, cfg.seed(112))
	var rows []Row
	for _, k := range []int{1, 2, 4, 8} {
		pre, err := baseline.NewPrecomputedOrderKPlane(ix, k)
		if err != nil {
			return nil, err
		}
		rep, err := sim.RunPlane(pre, traj, nil)
		if err != nil {
			return nil, fmt.Errorf("E12 k=%d: %w", k, err)
		}
		extra := fmt.Sprintf("cells=%d build=%s", pre.NumCells, pre.BuildTime.Round(time.Millisecond))
		rows = append(rows, reportRow("E12", fmt.Sprintf("k=%d", k), rep, extra))

		ins, err := core.NewPlaneQuery(ix, k, 1.6)
		if err != nil {
			return nil, err
		}
		insRep, err := sim.RunPlane(ins, traj, nil)
		if err != nil {
			return nil, err
		}
		rows = append(rows, reportRow("E12", fmt.Sprintf("k=%d", k), insRep, "cells=0 build=0s"))
	}
	return rows, nil
}
