package experiments

import (
	"fmt"
	"os"
	"time"

	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/index"
	"repro/internal/trajectory"
	"repro/internal/wal"
	"repro/internal/workload"
)

// DurabilityBenchResult is the durability benchmark record written to
// BENCH_wal.json by `bench -exp WAL`. It is self-contained: the same
// process measures the serving rate with and without the write-ahead log,
// so benchguard gates the WAL overhead as a ratio inside one record
// instead of across machines, plus the two absolute costs durability
// adds — the per-batch append and the crash-recovery boot.
type DurabilityBenchResult struct {
	Sessions    int    `json:"sessions"`
	Objects     int    `json:"objects"`
	Steps       int    `json:"steps"`
	DataUpdates int    `json:"data_updates"`
	Policy      string `json:"policy"`

	// BaseUpdatesSec is the serving rate without durability;
	// UpdatesSec the rate with the WAL attached under Policy. The
	// overhead ratio between them is what benchguard -kind wal gates.
	BaseUpdatesSec float64 `json:"base_updates_per_sec"`
	UpdatesSec     float64 `json:"updates_per_sec"`
	OverheadPct    float64 `json:"overhead_pct"`

	// ApplyUSBase / ApplyUSWAL are the mean wall costs of one
	// object-churn batch against a direct store, without and with the
	// log — the isolated append overhead.
	ApplyUSBase float64 `json:"apply_us_base"`
	ApplyUSWAL  float64 `json:"apply_us_wal"`

	AppendedBatches uint64  `json:"appended_batches"`
	AppendedBytes   uint64  `json:"appended_bytes"`
	Fsyncs          uint64  `json:"fsyncs"`
	FsyncMeanUS     float64 `json:"fsync_mean_us"`

	// The crash-recovery probe: batches logged under fsync=always, the
	// manager abandoned (no final checkpoint), and the directory
	// reopened — RecoveryMS is the full boot path (checkpoint load +
	// index rebuild + WAL replay).
	RecoveryObjects   int     `json:"recovery_objects"`
	ReplayedBatches   uint64  `json:"recovery_replayed_batches"`
	ReplayedMutations uint64  `json:"recovery_replayed_mutations"`
	CheckpointBytes   uint64  `json:"checkpoint_bytes"`
	RecoveryMS        float64 `json:"recovery_ms"`
}

// String renders the result as a short table for the harness output.
func (r DurabilityBenchResult) String() string {
	return fmt.Sprintf(
		"WAL    sessions=%d objects=%d steps=%d churn=%d policy=%s\n"+
			"       rate=%.0f/s base=%.0f/s overhead=%.1f%% apply=%.1fus (base %.1fus)\n"+
			"       appended=%d batches / %d bytes, fsyncs=%d (mean %.1fus)\n"+
			"       recovery: %.1fms for %d objects + %d replayed batches (ckpt %d bytes)",
		r.Sessions, r.Objects, r.Steps, r.DataUpdates, r.Policy,
		r.UpdatesSec, r.BaseUpdatesSec, r.OverheadPct, r.ApplyUSWAL, r.ApplyUSBase,
		r.AppendedBatches, r.AppendedBytes, r.Fsyncs, r.FsyncMeanUS,
		r.RecoveryMS, r.RecoveryObjects, r.ReplayedBatches, r.CheckpointBytes)
}

// servingRate drives the EngineBench serving loop (batched random-waypoint
// sessions, object churn every fourth step) against e and returns the
// update rate and churn count.
func servingRate(e *engine.Engine, sessions, steps int, seed int64) (rate float64, churn int, err error) {
	const (
		k        = 5
		rho      = 1.6
		batchLen = 64
	)
	sids := make([]engine.SessionID, sessions)
	trajs := make([][]geom.Point, sessions)
	for i := range sids {
		sid, err := e.CreateSession(k, rho)
		if err != nil {
			return 0, 0, err
		}
		sids[i] = sid
		trajs[i] = trajectory.RandomWaypoint(Bounds, steps, 8, seed+int64(i))
	}
	var inserted []int
	start := time.Now()
	for s := 0; s < steps; s++ {
		if s%4 == 1 {
			if len(inserted) > 8 {
				if err := e.RemoveObject(inserted[0]); err != nil {
					return 0, 0, err
				}
				inserted = inserted[1:]
			} else {
				id, err := e.InsertObject(geom.Pt(float64((s*131)%10000), float64((s*373)%10000)))
				if err != nil {
					return 0, 0, err
				}
				inserted = append(inserted, id)
			}
			churn++
		}
		for lo := 0; lo < sessions; lo += batchLen {
			hi := min(lo+batchLen, sessions)
			batch := make([]engine.LocationUpdate, hi-lo)
			for i := lo; i < hi; i++ {
				batch[i-lo] = engine.LocationUpdate{Session: sids[i], Pos: trajs[i][s]}
			}
			results, err := e.UpdateBatch(batch)
			if err != nil {
				return 0, 0, err
			}
			for _, r := range results {
				if r.Err != nil {
					return 0, 0, r.Err
				}
			}
		}
	}
	elapsed := time.Since(start)
	st, err := e.Stats()
	if err != nil {
		return 0, 0, err
	}
	return float64(st.Updates) / elapsed.Seconds(), churn, nil
}

// applyChurnUS measures the mean wall cost of one single-mutation churn
// batch (insert+remove pairs) against st.
func applyChurnUS(st *index.Store, rounds int) (float64, error) {
	for i := 0; i < rounds/4; i++ { // warm the branch chain (and the log's page cache)
		id, err := st.Insert(geom.Pt(float64((i*29)%9973)+1, float64((i*31)%9941)+1))
		if err != nil {
			return 0, err
		}
		if err := st.Remove(id); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	for i := 0; i < rounds; i++ {
		id, err := st.Insert(geom.Pt(float64((i*131)%9973)+1, float64((i*373)%9941)+1))
		if err != nil {
			return 0, err
		}
		if err := st.Remove(id); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(start).Nanoseconds()) / 1e3 / float64(2*rounds), nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// DurabilityBench measures what durability costs the serving stack:
// EngineBench's closed-loop workload with and without a WAL under the
// recommended fsync=interval policy, the isolated append cost on the
// batch-apply path, and a crash-recovery probe (fsync=always, manager
// abandoned without a final checkpoint, directory reopened cold). Scale
// divides sessions, steps and the replayed batch count.
func DurabilityBench(cfg Config) (DurabilityBenchResult, error) {
	const objects = 20000
	sessions := 2000
	steps := 120
	replayBatches := 4000
	if cfg.Scale > 1 {
		sessions /= cfg.Scale
		steps /= cfg.Scale
		replayBatches /= cfg.Scale
	}
	pts := workload.Uniform(objects, Bounds, cfg.seed(42))

	// Serving rates with and without the log, interleaved over two
	// repetitions keeping the best of each: the WAL never touches the
	// session-update read path, so the true overhead is small and a
	// single cold run (page faults, CPU frequency ramp) would drown it.
	var baseRate, rate float64
	var churn int
	var ws wal.Stats
	var walApplyUS float64
	for rep := 0; rep < 3; rep++ {
		e, err := engine.New(engine.Config{Shards: 8, Bounds: Bounds, Objects: pts})
		if err != nil {
			return DurabilityBenchResult{}, err
		}
		r, _, err := servingRate(e, sessions, steps, cfg.seed(0))
		e.Close()
		if err != nil {
			return DurabilityBenchResult{}, err
		}
		baseRate = maxf(baseRate, r)

		dir, err := os.MkdirTemp("", "insq-walbench-*")
		if err != nil {
			return DurabilityBenchResult{}, err
		}
		mgr, err := wal.Open(index.Config{Bounds: Bounds, Objects: pts},
			wal.Options{Dir: dir, Sync: wal.SyncInterval})
		if err != nil {
			os.RemoveAll(dir)
			return DurabilityBenchResult{}, err
		}
		e, err = engine.New(engine.Config{Shards: 8, Bounds: Bounds, WAL: mgr})
		if err != nil {
			os.RemoveAll(dir)
			return DurabilityBenchResult{}, err
		}
		r, c, err := servingRate(e, sessions, steps, cfg.seed(0))
		if err != nil {
			e.Close()
			os.RemoveAll(dir)
			return DurabilityBenchResult{}, err
		}
		rate = maxf(rate, r)
		churn = c
		walApplyUS, err = applyChurnUS(mgr.Store(), 256)
		if err != nil {
			e.Close()
			os.RemoveAll(dir)
			return DurabilityBenchResult{}, err
		}
		ws = mgr.Stats()
		if err := mgr.Close(); err != nil {
			os.RemoveAll(dir)
			return DurabilityBenchResult{}, err
		}
		e.Close()
		os.RemoveAll(dir)
	}

	// The isolated apply cost without a log, same store shape.
	st, err := index.NewStore(index.Config{Bounds: Bounds, Objects: pts})
	if err != nil {
		return DurabilityBenchResult{}, err
	}
	baseApplyUS, err := applyChurnUS(st, 256)
	st.Close()
	if err != nil {
		return DurabilityBenchResult{}, err
	}

	res := DurabilityBenchResult{
		Sessions:        sessions,
		Objects:         objects,
		Steps:           steps,
		DataUpdates:     churn,
		Policy:          string(wal.SyncInterval),
		BaseUpdatesSec:  baseRate,
		UpdatesSec:      rate,
		ApplyUSBase:     baseApplyUS,
		ApplyUSWAL:      walApplyUS,
		AppendedBatches: ws.AppendedBatches,
		AppendedBytes:   ws.AppendedBytes,
		Fsyncs:          ws.Fsyncs,
	}
	if baseRate > 0 {
		res.OverheadPct = 100 * (1 - rate/baseRate)
	}
	if ws.Fsyncs > 0 {
		res.FsyncMeanUS = float64(ws.FsyncTotal.Nanoseconds()) / 1e3 / float64(ws.Fsyncs)
	}

	// Crash-recovery probe: fsync=always means every batch is on disk the
	// moment Apply returns, so abandoning the manager without Close is a
	// faithful SIGKILL — no final checkpoint, the WAL tail alone carries
	// the tail of the history.
	rdir, err := os.MkdirTemp("", "insq-walrecover-*")
	if err != nil {
		return DurabilityBenchResult{}, err
	}
	defer os.RemoveAll(rdir)
	probeObjects := workload.Uniform(objects/2, Bounds, cfg.seed(45))
	rmgr, err := wal.Open(index.Config{Bounds: Bounds, Objects: probeObjects},
		wal.Options{Dir: rdir, Sync: wal.SyncAlways, CheckpointEvery: 1 << 60})
	if err != nil {
		return DurabilityBenchResult{}, err
	}
	for i := 0; i < replayBatches/2; i++ {
		id, err := rmgr.Store().Insert(geom.Pt(float64((i*131)%9973)+1, float64((i*373)%9941)+1))
		if err != nil {
			return DurabilityBenchResult{}, err
		}
		if err := rmgr.Store().Remove(id); err != nil {
			return DurabilityBenchResult{}, err
		}
	}
	rmgr.Store().Close() // crash: no manager Close, no final checkpoint

	start := time.Now()
	rmgr2, err := wal.Open(index.Config{Bounds: Bounds, Network: nil},
		wal.Options{Dir: rdir, Sync: wal.SyncAlways})
	if err != nil {
		return DurabilityBenchResult{}, err
	}
	recovery := time.Since(start)
	rws := rmgr2.Stats()
	res.RecoveryObjects = objects / 2
	res.ReplayedBatches = rws.ReplayedBatches
	res.ReplayedMutations = rws.ReplayedMutations
	res.CheckpointBytes = rws.CheckpointBytes
	res.RecoveryMS = float64(recovery.Nanoseconds()) / 1e6
	if err := rmgr2.Close(); err != nil {
		return DurabilityBenchResult{}, err
	}
	rmgr2.Store().Close()
	return res, nil
}
