package experiments

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/workload"
)

// ObsBenchResult is the observability benchmark record written to
// BENCH_obs.json by `bench -exp OBS`. Like the WAL record it is
// self-contained: the same process measures the serving rate with the
// full pipeline instrumented (registry, stage histograms, slow-op
// thresholds armed but never tripping) and with the noop nil pipeline,
// so benchguard -kind obs gates the instrumentation overhead as a ratio
// inside one record.
type ObsBenchResult struct {
	Sessions    int `json:"sessions"`
	Objects     int `json:"objects"`
	Steps       int `json:"steps"`
	DataUpdates int `json:"data_updates"`

	// BaseUpdatesSec is the serving rate with a nil pipeline (every
	// instrumentation site one branch); UpdatesSec with metrics on.
	BaseUpdatesSec float64 `json:"base_updates_per_sec"`
	UpdatesSec     float64 `json:"updates_per_sec"`
	OverheadPct    float64 `json:"overhead_pct"`

	// StageSamples is how many apply-stage observations the run recorded
	// (one per session update) — evidence the instrumented run actually
	// instrumented. ScrapeUS/ExpositionBytes cost one full /metrics
	// render of the loaded registry.
	StageSamples    uint64  `json:"stage_samples"`
	ScrapeUS        float64 `json:"scrape_us"`
	ExpositionBytes int     `json:"exposition_bytes"`
}

// String renders the result as a short table for the harness output.
func (r ObsBenchResult) String() string {
	return fmt.Sprintf(
		"OBS    sessions=%d objects=%d steps=%d churn=%d\n"+
			"       rate=%.0f/s base=%.0f/s overhead=%.1f%%\n"+
			"       stage samples=%d, scrape=%.0fus for %d bytes",
		r.Sessions, r.Objects, r.Steps, r.DataUpdates,
		r.UpdatesSec, r.BaseUpdatesSec, r.OverheadPct,
		r.StageSamples, r.ScrapeUS, r.ExpositionBytes)
}

// ObsBench measures what full pipeline observability costs the serving
// stack: EngineBench's closed-loop workload against a nil (noop)
// pipeline and against a live registry with stage histograms, engine
// gauges, runtime metrics and armed slow-op thresholds — the exact
// insqd -metrics=true wiring. Interleaved best-of repetitions, like the
// WAL bench: the expected overhead is a few atomic adds per update, far
// below single-run noise. Scale divides sessions and steps.
func ObsBench(cfg Config) (ObsBenchResult, error) {
	const objects = 20000
	sessions := 2000
	steps := 120
	if cfg.Scale > 1 {
		sessions /= cfg.Scale
		steps /= cfg.Scale
	}
	pts := workload.Uniform(objects, Bounds, cfg.seed(42))

	var baseRate, rate float64
	var churn int
	var pipe *obs.Pipeline
	var expo strings.Builder
	var scrape time.Duration
	for rep := 0; rep < 3; rep++ {
		e, err := engine.New(engine.Config{Shards: 8, Bounds: Bounds, Objects: pts})
		if err != nil {
			return ObsBenchResult{}, err
		}
		r, _, err := servingRate(e, sessions, steps, cfg.seed(0))
		e.Close()
		if err != nil {
			return ObsBenchResult{}, err
		}
		baseRate = maxf(baseRate, r)

		// Production thresholds: armed (so the comparisons run) but far
		// above any real batch, fsync or publish in this workload.
		reg := obs.NewRegistry()
		obs.RegisterRuntimeMetrics(reg)
		slow := obs.NewSlowLog(slog.New(slog.NewTextHandler(io.Discard, nil)),
			obs.Thresholds{Batch: time.Second, Fsync: time.Second, Publish: time.Second})
		pipe = obs.NewPipeline(reg, slow)
		e, err = engine.New(engine.Config{Shards: 8, Bounds: Bounds, Objects: pts, Obs: pipe})
		if err != nil {
			return ObsBenchResult{}, err
		}
		r, c, err := servingRate(e, sessions, steps, cfg.seed(0))
		if err != nil {
			e.Close()
			return ObsBenchResult{}, err
		}
		rate = maxf(rate, r)
		churn = c
		// One full exposition render while the engine is still live (the
		// gauges read its shards and snapshot): the scrape cost a
		// Prometheus poller pays against a busy server.
		if rep == 2 {
			expo.Reset()
			start := time.Now()
			if err := pipe.Registry().WritePrometheus(&expo); err != nil {
				e.Close()
				return ObsBenchResult{}, err
			}
			scrape = time.Since(start)
		}
		e.Close()
	}

	res := ObsBenchResult{
		Sessions:        sessions,
		Objects:         objects,
		Steps:           steps,
		DataUpdates:     churn,
		BaseUpdatesSec:  baseRate,
		UpdatesSec:      rate,
		StageSamples:    pipe.StageCount(obs.StageApply),
		ScrapeUS:        float64(scrape.Nanoseconds()) / 1e3,
		ExpositionBytes: expo.Len(),
	}
	if baseRate > 0 {
		res.OverheadPct = 100 * (1 - rate/baseRate)
	}
	return res, nil
}
