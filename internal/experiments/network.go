package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/roadnet"
	"repro/internal/workload"
)

// NetworkBenchResult is the road-network serving benchmark record written
// to BENCH_network.json by `bench -exp NETWORK`. It tracks the numbers
// network serving parity is accountable for across PRs: update throughput
// and tail latency of network sessions, the allocation rate of the
// network serving path, and the copy-on-write publication cost of site
// mutations (which must stay sublinear in the network size, mirroring the
// plane side's path-copying guarantees).
type NetworkBenchResult struct {
	Shards   int `json:"shards"`
	Sessions int `json:"sessions"`
	Vertices int `json:"vertices"`
	Edges    int `json:"edges"`
	Sites    int `json:"sites"`
	K        int `json:"k"`

	Steps       int     `json:"steps"`
	DataUpdates int     `json:"data_updates"`
	Updates     uint64  `json:"updates"`
	UpdatesSec  float64 `json:"updates_per_sec"`

	P50UpdateUS float64 `json:"p50_update_us"`
	P95UpdateUS float64 `json:"p95_update_us"`
	P99UpdateUS float64 `json:"p99_update_us"`

	AllocsPerUpdate float64 `json:"allocs_per_update"`
	SnapshotsLive   int     `json:"snapshots_live"`
	RecomputePct    float64 `json:"recompute_pct"`

	// RelaxationsPerUpdate is the mean number of Dijkstra edge relaxations
	// one location update costs — the work metric the ALT pruning layer is
	// accountable for. ALTLandmarks is the landmark count behind that
	// pruning (0 would mean the searches ran unpruned).
	RelaxationsPerUpdate float64 `json:"relaxations_per_update"`
	ALTLandmarks         int     `json:"alt_landmarks"`

	// EpochPublishUS is the mean wall time of publishing one site-mutation
	// epoch during the run. SharedPageRatio is the fraction of
	// shortest-path label pages the latest epoch shares with its
	// predecessor (copy-on-write publication; a deep clone would be 0).
	// The sublinearity probe times one single-site epoch against networks
	// of Vertices/8 and Vertices vertices: with page sharing and
	// incremental repair PublishScalingX8 stays far below the 8x a
	// rebuild-the-diagram publication would pay.
	EpochPublishUS   float64 `json:"epoch_publish_us"`
	SharedPageRatio  float64 `json:"shared_page_ratio"`
	PublishUSSmall   float64 `json:"publish_us_small"`
	PublishUSLarge   float64 `json:"publish_us_large"`
	PublishScalingX8 float64 `json:"publish_scaling_x8"`
}

// String renders the result as a short table for the harness output.
func (r NetworkBenchResult) String() string {
	return fmt.Sprintf(
		"NETWORK shards=%d sessions=%d vertices=%d sites=%d steps=%d churn=%d\n"+
			"        updates=%d rate=%.0f/s p50=%.1fus p95=%.1fus p99=%.1fus\n"+
			"        allocs/update=%.1f relaxations/update=%.1f landmarks=%d snapshots=%d recompute=%.2f%%\n"+
			"        publish=%.1fus shared_pages=%.1f%% scaling_x8=%.2f (%.1fus -> %.1fus)",
		r.Shards, r.Sessions, r.Vertices, r.Sites, r.Steps, r.DataUpdates,
		r.Updates, r.UpdatesSec, r.P50UpdateUS, r.P95UpdateUS, r.P99UpdateUS,
		r.AllocsPerUpdate, r.RelaxationsPerUpdate, r.ALTLandmarks, r.SnapshotsLive, r.RecomputePct,
		r.EpochPublishUS, 100*r.SharedPageRatio, r.PublishScalingX8, r.PublishUSSmall, r.PublishUSLarge)
}

// networkPublishProbeUS builds a network store over a grid×grid street
// network and returns the mean wall time (µs) of a single-site epoch
// publication over rounds insert+remove pairs.
func networkPublishProbeUS(grid, nSites, rounds int, seed int64) (float64, error) {
	g, err := workload.Network(grid, Bounds, seed)
	if err != nil {
		return 0, err
	}
	sites, err := workload.NetworkSites(g, nSites, seed+1)
	if err != nil {
		return 0, err
	}
	st, err := index.NewStore(index.Config{Network: g, NetworkSites: sites})
	if err != nil {
		return 0, err
	}
	defer st.Close()
	taken := make(map[int]bool, nSites)
	for _, s := range sites {
		taken[s] = true
	}
	rng := rand.New(rand.NewSource(seed + 2))
	freeVertex := func() int {
		v := rng.Intn(g.NumVertices())
		for taken[v] {
			v = rng.Intn(g.NumVertices())
		}
		return v
	}
	churn := func(rounds int) error {
		for i := 0; i < rounds; i++ {
			v := freeVertex()
			if err := st.InsertSite(v); err != nil {
				return err
			}
			if err := st.RemoveSite(v); err != nil {
				return err
			}
		}
		return nil
	}
	if err := churn(rounds / 4); err != nil { // warm the branch chain
		return 0, err
	}
	pubs0, total0 := st.PublishStats()
	if err := churn(rounds); err != nil {
		return 0, err
	}
	pubs, total := st.PublishStats()
	return float64((total - total0).Nanoseconds()) / 1e3 / float64(pubs-pubs0), nil
}

// NetworkBench drives the serving engine with a closed-loop batched
// road-network workload (random-walk sessions on a synthetic street grid,
// periodic site churn) and measures the network serving trajectory
// numbers — the road twin of EngineBench. Scale divides sessions and
// steps.
func NetworkBench(cfg Config) (NetworkBenchResult, error) {
	const (
		k        = 5
		rho      = 1.6
		shards   = 8
		batchLen = 64
	)
	// The street grid is ⌈√Vertices⌉ on a side (canonically 64 → 4096
	// vertices); site density is held at the canonical 600/4096 so cells —
	// and with them the per-update search work — stay comparable as the
	// -vertices override sweeps graph size.
	grid := 64
	if cfg.Vertices > 0 {
		grid = int(math.Ceil(math.Sqrt(float64(cfg.Vertices))))
		if grid < 8 {
			grid = 8
		}
	}
	nSites := grid * grid * 600 / 4096
	if nSites < 64 {
		nSites = 64
	}
	// Scale divides sessions only. Dividing steps as well would shrink the
	// measured window into noise territory (tens of milliseconds at scale
	// 4), and the steady-state rate is what the record gates on — a short
	// window turns scheduler jitter into benchguard false positives.
	sessions := 800
	steps := 100
	if cfg.Scale > 1 {
		sessions /= cfg.Scale
	}

	// Publication sublinearity probe first, before the engine's sessions
	// and trajectories occupy the heap (GC assists under a large live heap
	// would otherwise bleed into the measured epoch cost): one single-site
	// epoch against an 8x smaller and the full-size street network (site
	// density held fixed).
	smallGrid := grid / 3 // (64/3)^2 ≈ 64^2/8 vertices
	pubSmall, err := networkPublishProbeUS(smallGrid, nSites/8, 64, cfg.seed(44))
	if err != nil {
		return NetworkBenchResult{}, err
	}
	pubLarge, err := networkPublishProbeUS(grid, nSites, 64, cfg.seed(45))
	if err != nil {
		return NetworkBenchResult{}, err
	}

	g, err := workload.Network(grid, Bounds, cfg.seed(42))
	if err != nil {
		return NetworkBenchResult{}, err
	}
	sites, err := workload.NetworkSites(g, nSites, cfg.seed(43))
	if err != nil {
		return NetworkBenchResult{}, err
	}
	e, err := engine.New(engine.Config{Shards: shards, Network: g, NetworkSites: sites})
	if err != nil {
		return NetworkBenchResult{}, err
	}
	defer e.Close()

	rng := rand.New(rand.NewSource(cfg.seed(7)))
	sids := make([]engine.SessionID, sessions)
	trajs := make([][]roadnet.Position, sessions)
	for i := range sids {
		sid, err := e.CreateNetworkSession(k, rho)
		if err != nil {
			return NetworkBenchResult{}, err
		}
		sids[i] = sid
		route, err := roadnet.RandomWalkRoute(g, rng.Intn(g.NumVertices()), float64(steps)*25, cfg.seed(int64(i)))
		if err != nil {
			return NetworkBenchResult{}, err
		}
		pos := make([]roadnet.Position, steps)
		for s := range pos {
			pos[s] = route.PositionAt(float64(s) * 25)
		}
		trajs[i] = pos
	}

	taken := make(map[int]bool, len(sites))
	for _, s := range sites {
		taken[s] = true
	}
	var inserted []int

	// Warm every session with its first location update (which always
	// recomputes: the session has no prior state) so the measured window
	// reports the steady-state serving rate — the number a long-running
	// deployment sees — rather than charging each session's one-time
	// buffer warmup to the per-update averages.
	for lo := 0; lo < sessions; lo += batchLen {
		hi := min(lo+batchLen, sessions)
		batch := make([]engine.NetworkLocationUpdate, hi-lo)
		for i := lo; i < hi; i++ {
			batch[i-lo] = engine.NetworkLocationUpdate{Session: sids[i], Pos: trajs[i][0]}
		}
		results, err := e.UpdateNetworkBatch(batch)
		if err != nil {
			return NetworkBenchResult{}, err
		}
		for _, r := range results {
			if r.Err != nil {
				return NetworkBenchResult{}, r.Err
			}
		}
	}
	st0, err := e.Stats()
	if err != nil {
		return NetworkBenchResult{}, err
	}

	var mallocsBefore runtime.MemStats
	runtime.ReadMemStats(&mallocsBefore)
	start := time.Now()
	churn := 0
	for s := 1; s < steps; s++ {
		// Site churn: one data update every four steps.
		if s%4 == 1 {
			if len(inserted) > 8 {
				v := inserted[0]
				inserted = inserted[1:]
				if err := e.RemoveNetworkObject(v); err != nil {
					return NetworkBenchResult{}, err
				}
				delete(taken, v)
			} else {
				v := rng.Intn(g.NumVertices())
				for taken[v] {
					v = rng.Intn(g.NumVertices())
				}
				if _, err := e.InsertNetworkObject(v); err != nil {
					return NetworkBenchResult{}, err
				}
				taken[v] = true
				inserted = append(inserted, v)
			}
			churn++
		}
		for lo := 0; lo < sessions; lo += batchLen {
			hi := min(lo+batchLen, sessions)
			batch := make([]engine.NetworkLocationUpdate, hi-lo)
			for i := lo; i < hi; i++ {
				batch[i-lo] = engine.NetworkLocationUpdate{Session: sids[i], Pos: trajs[i][s]}
			}
			results, err := e.UpdateNetworkBatch(batch)
			if err != nil {
				return NetworkBenchResult{}, err
			}
			for _, r := range results {
				if r.Err != nil {
					return NetworkBenchResult{}, r.Err
				}
			}
		}
	}
	elapsed := time.Since(start)
	var mallocsAfter runtime.MemStats
	runtime.ReadMemStats(&mallocsAfter)

	st, err := e.Stats()
	if err != nil {
		return NetworkBenchResult{}, err
	}
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	// All per-update averages are deltas over the measured window so the
	// warmup round above is excluded.
	measured := st.Updates - st0.Updates
	steady := st.Counters.Timestamps - st0.Counters.Timestamps
	res := NetworkBenchResult{
		Shards:          st.Shards,
		Sessions:        sessions,
		Vertices:        g.NumVertices(),
		Edges:           g.NumEdges(),
		Sites:           st.NetworkObjects,
		K:               k,
		Steps:           steps,
		DataUpdates:     churn,
		Updates:         measured,
		UpdatesSec:      float64(measured) / elapsed.Seconds(),
		P50UpdateUS:     us(st.Latency.P50),
		P95UpdateUS:     us(st.Latency.P95),
		P99UpdateUS:     us(st.Latency.P99),
		AllocsPerUpdate: float64(mallocsAfter.Mallocs-mallocsBefore.Mallocs) / float64(max(int(measured), 1)),
		SnapshotsLive:   st.Snapshots,
		RecomputePct: 100 * float64(st.Counters.Recomputations-st0.Counters.Recomputations) /
			float64(max(steady, 1)),
		RelaxationsPerUpdate: float64(st.Counters.EdgeRelaxations-st0.Counters.EdgeRelaxations) /
			float64(max(steady, 1)),
		ALTLandmarks:   st.NetLandmarks,
		EpochPublishUS: st.EpochPublishUS,
		PublishUSSmall: pubSmall,
		PublishUSLarge: pubLarge,
	}
	if pubSmall > 0 {
		res.PublishScalingX8 = pubLarge / pubSmall
	}
	if st.NetPages > 0 {
		res.SharedPageRatio = 1 - float64(st.NetPagesCopied)/float64(st.NetPages)
	}
	return res, nil
}
