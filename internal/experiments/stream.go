package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/stream"
	"repro/internal/workload"
)

// StreamBenchResult is the continuous-query push benchmark record written
// to BENCH_stream.json by `bench -exp STREAM`. It tracks the numbers the
// stream subsystem is accountable for across PRs: insert-to-push latency
// (how fast a data update reaches a subscriber as a kNN delta), and the
// coalesce/drop behavior that keeps slow consumers from growing memory.
type StreamBenchResult struct {
	Shards      int `json:"shards"`
	Sessions    int `json:"sessions"`
	Objects     int `json:"objects"`
	K           int `json:"k"`
	DataUpdates int `json:"data_updates"`

	PushEvents uint64  `json:"push_events"`
	PushP50US  float64 `json:"push_p50_us"`
	PushP95US  float64 `json:"push_p95_us"`
	PushP99US  float64 `json:"push_p99_us"`
	PushMeanUS float64 `json:"push_mean_us"`

	// Published counts events the engine handed to the broker. Delivered,
	// Coalesced and Dropped are the HEALTHY subscriber's counters only: the
	// deliberately stalled probe below is accounted separately, so these
	// reflect what a draining consumer actually experiences (Dropped should
	// be 0 on a healthy path).
	Published   uint64  `json:"published"`
	Delivered   uint64  `json:"delivered"`
	Coalesced   uint64  `json:"coalesced"`
	Dropped     uint64  `json:"dropped"`
	CoalescePct float64 `json:"coalesce_pct"`
	// The stall probe: a subscriber that never drains and must be bounded
	// by its queue capacity, with the overflow absorbed by coalesces and
	// drops. Its drops are expected and say nothing about healthy-path
	// delivery.
	StallDropped   uint64 `json:"stall_probe_dropped"`
	StallCoalesced uint64 `json:"stall_probe_coalesced"`
	SlowPending    int    `json:"slow_pending"`
	SlowCapacity   int    `json:"slow_capacity"`
}

// String renders the result as a short table for the harness output.
func (r StreamBenchResult) String() string {
	return fmt.Sprintf(
		"STREAM shards=%d sessions=%d objects=%d churn=%d\n"+
			"       push events=%d p50=%.1fus p95=%.1fus p99=%.1fus mean=%.1fus\n"+
			"       published=%d delivered=%d coalesced=%d (%.2f%%) dropped=%d\n"+
			"       stall probe: dropped=%d coalesced=%d pending=%d/%d",
		r.Shards, r.Sessions, r.Objects, r.DataUpdates,
		r.PushEvents, r.PushP50US, r.PushP95US, r.PushP99US, r.PushMeanUS,
		r.Published, r.Delivered, r.Coalesced, r.CoalescePct, r.Dropped,
		r.StallDropped, r.StallCoalesced, r.SlowPending, r.SlowCapacity)
}

// StreamBench drives the push subsystem: sessions spread over the data
// space, all watched by one draining subscriber (whose deliveries are
// timed against the inserts that caused them) and one deliberately
// stalled subscriber with a tiny queue (which must coalesce/drop instead
// of growing). Object churn then races the fan-out. Scale divides the
// session count and churn volume.
func StreamBench(cfg Config) (StreamBenchResult, error) {
	const (
		objects = 10000
		k       = 5
		rho     = 1.6
		shards  = 8
		slowCap = 8
	)
	sessions := 1000
	churn := 400
	if cfg.Scale > 1 {
		sessions /= cfg.Scale
		churn /= cfg.Scale
	}

	e, err := engine.New(engine.Config{Shards: shards, Bounds: Bounds, Objects: workload.Uniform(objects, Bounds, cfg.seed(42))})
	if err != nil {
		return StreamBenchResult{}, err
	}
	defer e.Close()

	rng := rand.New(rand.NewSource(cfg.seed(7)))
	pos := make([]geom.Point, sessions)
	batch := make([]engine.LocationUpdate, sessions)
	for i := range batch {
		sid, err := e.CreateSession(k, rho)
		if err != nil {
			return StreamBenchResult{}, err
		}
		pos[i] = geom.Pt(rng.Float64()*Bounds.Max.X, rng.Float64()*Bounds.Max.Y)
		batch[i] = engine.LocationUpdate{Session: sid, Pos: pos[i]}
	}
	if _, err := e.UpdateBatch(batch); err != nil {
		return StreamBenchResult{}, err
	}

	// The measured subscriber drains promptly and matches Added object ids
	// back to insert times.
	fast := e.Stream().Subscribe(0)
	// The stalled subscriber never drains: its queue must stay at slowCap
	// while the overflow counters absorb the rest.
	slow := e.Stream().Subscribe(slowCap)
	defer fast.Close()
	defer slow.Close()

	var (
		mu      sync.Mutex
		sent    = make(map[int]time.Time)
		samples []time.Duration
		events  uint64
	)
	consumed := make(chan struct{})
	go func() {
		defer close(consumed)
		for {
			select {
			case <-fast.Done():
				return
			case <-fast.Wake():
				for ev, ok := fast.Next(); ok; ev, ok = fast.Next() {
					if ev.Cause != stream.CauseData {
						continue
					}
					now := time.Now()
					mu.Lock()
					events++
					for _, id := range ev.Added {
						if t0, ok := sent[id]; ok {
							samples = append(samples, now.Sub(t0))
							delete(sent, id)
						}
					}
					mu.Unlock()
				}
			}
		}
	}()

	// Churn: inserts next to random sessions (guaranteed to enter a
	// watched kNN) alternating with removals that keep the object count
	// stable. Mutations are lightly paced so the record measures
	// insert-to-push latency rather than the queueing delay of a saturated
	// copy-on-write publisher (the ENGINE record covers mutation
	// throughput).
	var inserted []int
	for i := 0; i < churn; i++ {
		time.Sleep(time.Millisecond)
		if len(inserted) > 32 {
			id := inserted[0]
			inserted = inserted[1:]
			if err := e.RemoveObject(id); err != nil {
				return StreamBenchResult{}, err
			}
			continue
		}
		at := pos[rng.Intn(sessions)]
		p := geom.Pt(at.X+rng.Float64(), at.Y+rng.Float64())
		if !Bounds.Contains(p) {
			p = geom.Pt(Bounds.Max.X/2, Bounds.Max.Y/2)
		}
		t0 := time.Now()
		id, err := e.InsertObject(p)
		if err != nil {
			return StreamBenchResult{}, err
		}
		mu.Lock()
		sent[id] = t0
		mu.Unlock()
		inserted = append(inserted, id)
	}

	// Let the tail of the fan-out land, then detach the consumer.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		outstanding := len(sent)
		mu.Unlock()
		if outstanding == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	slowPending := slow.Pending()
	fast.Close()
	<-consumed

	st, err := e.Stats()
	if err != nil {
		return StreamBenchResult{}, err
	}
	var hist pushHist
	for _, d := range samples {
		hist.add(d)
	}
	res := StreamBenchResult{
		Shards:      shards,
		Sessions:    sessions,
		Objects:     objects,
		K:           k,
		DataUpdates: int(st.Epoch),
		PushEvents:  events,
		PushP50US:   hist.quantileUS(0.50),
		PushP95US:   hist.quantileUS(0.95),
		PushP99US:   hist.quantileUS(0.99),
		PushMeanUS:  hist.meanUS(),
		Published:   st.Stream.Published,
		// Healthy-path counters come from the draining subscriber; the
		// stall probe's expected drops are reported under stall_probe_*.
		Delivered:      fast.Delivered(),
		Coalesced:      fast.Coalesced(),
		Dropped:        fast.Dropped(),
		StallDropped:   slow.Dropped(),
		StallCoalesced: slow.Coalesced(),
		SlowPending:    slowPending,
		SlowCapacity:   slowCap,
	}
	if res.Published > 0 {
		res.CoalescePct = 100 * float64(res.Coalesced) / float64(res.Published)
	}
	return res, nil
}

// pushHist is an exact-sample latency summary (the push sample count is
// small enough to keep them all, unlike the serving-path histogram).
type pushHist struct {
	d []time.Duration
}

func (h *pushHist) add(d time.Duration) { h.d = append(h.d, d) }

func (h *pushHist) quantileUS(q float64) float64 {
	if len(h.d) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), h.d...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q * float64(len(s)-1))
	return float64(s[idx].Nanoseconds()) / 1e3
}

func (h *pushHist) meanUS() float64 {
	if len(h.d) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range h.d {
		sum += d
	}
	return float64(sum.Nanoseconds()) / 1e3 / float64(len(h.d))
}
