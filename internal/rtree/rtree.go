// Package rtree implements an in-memory R-tree over 2D points with
// Guttman's quadratic split, best-first (incremental) k-nearest-neighbor
// search, range queries, and deletion with tree condensation. It is the
// index substrate under the VoR-tree (package vortree), which the INSQ
// system uses to seed kNN computation, mirroring reference [7] of the
// paper.
//
// The tree is persistent with path copying: every mutation copies only the
// root-to-leaf spine it touches and shares all untouched nodes with earlier
// versions. Clone is therefore O(1) — it hands out a new handle on the same
// node graph — and the copy-on-write index snapshot store publishes a new
// epoch in time proportional to the mutation batch, not the object count.
// An ownership token makes repeated mutations through the same handle
// mutate already-copied nodes in place, so bulk builds pay the spine copy
// only once per node, not once per insert.
package rtree

import (
	"fmt"
	"sync/atomic"

	"repro/internal/geom"
)

// DefaultMaxEntries is the default node fanout (M). Minimum occupancy is
// M/2 as in Guttman's original design.
const DefaultMaxEntries = 16

// Item is a point payload stored in the tree. ID is caller-chosen and must
// be unique; the tree never interprets it.
type Item struct {
	ID int
	P  geom.Point
}

// owner is an identity token: nodes carry the token of the tree handle that
// created (or copied) them, and only that handle may mutate them in place.
// Clone issues fresh tokens to both handles, so mutations on either side
// path-copy any node still shared with the other.
type owner struct{ _ byte }

type node struct {
	own      *owner
	rect     geom.Rect
	children []*node // nil at leaves
	items    []Item  // nil at internal nodes
}

func (n *node) leaf() bool { return n.children == nil }

func (n *node) entries() int {
	if n.leaf() {
		return len(n.items)
	}
	return len(n.children)
}

func (n *node) recomputeRect() {
	if n.leaf() {
		if len(n.items) == 0 {
			n.rect = geom.Rect{}
			return
		}
		r := geom.Rect{Min: n.items[0].P, Max: n.items[0].P}
		for _, it := range n.items[1:] {
			r = r.ExpandPoint(it.P)
		}
		n.rect = r
		return
	}
	r := n.children[0].rect
	for _, c := range n.children[1:] {
		r = r.Expand(c.rect)
	}
	n.rect = r
}

// Tree is an R-tree handle over a (possibly shared) persistent node graph.
// The zero value is not usable; call New. A Tree is safe for concurrent
// readers; mutations require external serialization and must go through
// exactly one handle per version (the snapshot store's contract).
type Tree struct {
	// own, nodes and copied are atomic because Clone retires the
	// receiver's ownership token (and zeroes its copy counter) while the
	// receiver — a published, frozen snapshot — may be concurrently read,
	// including by the share-stats instrumentation. Mutations still
	// require external serialization.
	own    atomic.Pointer[owner]
	root   *node
	size   int
	max    int          // max entries per node (M)
	min    int          // min entries per node (m = M/2)
	nodes  atomic.Int64 // total nodes reachable from root (bookkept incrementally)
	copied atomic.Int64 // nodes copied or created since the last Clone

	// visits counts nodes touched by search operations since the last
	// ResetStats. It stands in for page I/O in the experiments. Atomic so
	// that read-only searches on a tree shared across goroutines (an
	// immutable index snapshot) stay race-free.
	visits atomic.Int64
}

// NodeVisits returns the number of nodes touched by search operations
// since the last ResetStats. Under concurrent readers the total is exact
// but before/after deltas taken by one reader may include visits charged
// by others.
func (t *Tree) NodeVisits() int { return int(t.visits.Load()) }

// New returns an empty tree with the given maximum node fanout; fanout < 4
// is raised to 4. Use DefaultMaxEntries when in doubt.
func New(maxEntries int) *Tree {
	if maxEntries < 4 {
		maxEntries = 4
	}
	t := &Tree{
		max: maxEntries,
		min: maxEntries / 2,
	}
	t.own.Store(new(owner))
	t.root = t.newLeaf()
	return t
}

// Len returns the number of stored items.
func (t *Tree) Len() int { return t.size }

// NodeCount returns the number of nodes in this version of the tree.
func (t *Tree) NodeCount() int { return int(t.nodes.Load()) }

// CopiedNodes returns the number of nodes copied or freshly created through
// this handle since it was issued (by New or Clone). Together with
// NodeCount it measures structural sharing: after a Clone-plus-mutation,
// NodeCount-CopiedNodes nodes are shared with the previous version.
func (t *Tree) CopiedNodes() int { return int(t.copied.Load()) }

// ResetStats zeroes the NodeVisits counter.
func (t *Tree) ResetStats() { t.visits.Store(0) }

// Clone returns a new handle on the same node graph with a zeroed visit
// counter, in O(1): no nodes are copied. Both handles then mutate with path
// copying — each copies only the root-to-leaf spines it touches and shares
// everything else — so the index snapshot store publishes the next epoch
// without duplicating the index. Clone itself issues fresh ownership tokens
// to both sides; it must not race with a mutation of the receiver.
func (t *Tree) Clone() *Tree {
	t.own.Store(new(owner))
	t.copied.Store(0)
	c := &Tree{root: t.root, size: t.size, max: t.max, min: t.min}
	c.own.Store(new(owner))
	c.nodes.Store(t.nodes.Load())
	return c
}

// newLeaf allocates an empty leaf owned by t.
func (t *Tree) newLeaf() *node {
	t.nodes.Add(1)
	t.copied.Add(1)
	return &node{own: t.own.Load(), items: []Item{}}
}

// newInternal allocates an internal node owned by t.
func (t *Tree) newInternal(children []*node) *node {
	t.nodes.Add(1)
	t.copied.Add(1)
	n := &node{own: t.own.Load(), children: children}
	n.recomputeRect()
	return n
}

// mutable returns n if this handle already owns it, otherwise a shallow
// copy (fresh entry slice, shared grandchildren) owned by t — the path-copy
// step. Callers must re-link the returned node into their own copy of the
// parent.
func (t *Tree) mutable(n *node) *node {
	own := t.own.Load()
	if n.own == own {
		return n
	}
	t.copied.Add(1)
	cp := &node{own: own, rect: n.rect}
	if n.leaf() {
		cp.items = append(make([]Item, 0, len(n.items)+1), n.items...)
	} else {
		cp.children = append(make([]*node, 0, len(n.children)+1), n.children...)
	}
	return cp
}

// Insert adds an item. Duplicate points are allowed; duplicate IDs are the
// caller's responsibility.
func (t *Tree) Insert(it Item) {
	root, sib := t.insert(t.root, it)
	if sib != nil {
		root = t.newInternal([]*node{root, sib})
	}
	t.root = root
	t.size++
}

// insert adds it under n, path-copying the spine. It returns the (possibly
// copied) replacement for n and, when n overflowed, the split-off sibling.
func (t *Tree) insert(n *node, it Item) (*node, *node) {
	n = t.mutable(n)
	if n.leaf() {
		n.items = append(n.items, it)
		n.rect = leafAdjust(n, it.P)
		if len(n.items) > t.max {
			return n, t.splitLeaf(n)
		}
		return n, nil
	}
	i := chooseChild(n, it.P)
	child, sib := t.insert(n.children[i], it)
	n.children[i] = child
	n.rect = n.rect.Expand(child.rect)
	if sib != nil {
		n.children = append(n.children, sib)
		n.rect = n.rect.Expand(sib.rect)
		if len(n.children) > t.max {
			return n, t.splitInternal(n)
		}
	}
	return n, nil
}

func leafAdjust(n *node, p geom.Point) geom.Rect {
	if len(n.items) == 1 {
		return geom.Rect{Min: p, Max: p}
	}
	return n.rect.ExpandPoint(p)
}

// chooseChild picks the child needing least enlargement to cover p
// (ties by smaller area), Guttman's ChooseLeaf step.
func chooseChild(n *node, p geom.Point) int {
	pr := geom.Rect{Min: p, Max: p}
	best := 0
	bestEnl := n.children[0].rect.EnlargementArea(pr)
	for i, c := range n.children[1:] {
		enl := c.rect.EnlargementArea(pr)
		if enl < bestEnl || (enl == bestEnl && c.rect.Area() < n.children[best].rect.Area()) {
			best, bestEnl = i+1, enl
		}
	}
	return best
}

// splitLeaf performs Guttman's quadratic split on an overfull leaf (owned
// by t), leaving half the entries in n and returning a new sibling with the
// rest.
func (t *Tree) splitLeaf(n *node) *node {
	items := n.items
	seedA, seedB := pickSeedsItems(items)
	groupA := []Item{items[seedA]}
	groupB := []Item{items[seedB]}
	rectA := geom.Rect{Min: items[seedA].P, Max: items[seedA].P}
	rectB := geom.Rect{Min: items[seedB].P, Max: items[seedB].P}
	rest := make([]Item, 0, len(items)-2)
	for i, it := range items {
		if i != seedA && i != seedB {
			rest = append(rest, it)
		}
	}
	for len(rest) > 0 {
		// Force assignment when one group must take all remaining entries
		// to reach minimum occupancy.
		if len(groupA)+len(rest) == t.min {
			for _, it := range rest {
				groupA = append(groupA, it)
				rectA = rectA.ExpandPoint(it.P)
			}
			break
		}
		if len(groupB)+len(rest) == t.min {
			for _, it := range rest {
				groupB = append(groupB, it)
				rectB = rectB.ExpandPoint(it.P)
			}
			break
		}
		// pickNext: entry with maximum preference difference.
		bestIdx, bestDiff, toA := 0, -1.0, true
		for i, it := range rest {
			dA := rectA.EnlargementArea(geom.Rect{Min: it.P, Max: it.P})
			dB := rectB.EnlargementArea(geom.Rect{Min: it.P, Max: it.P})
			diff := dA - dB
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				bestDiff, bestIdx = diff, i
				toA = dA < dB || (dA == dB && rectA.Area() < rectB.Area())
			}
		}
		it := rest[bestIdx]
		rest = append(rest[:bestIdx], rest[bestIdx+1:]...)
		if toA {
			groupA = append(groupA, it)
			rectA = rectA.ExpandPoint(it.P)
		} else {
			groupB = append(groupB, it)
			rectB = rectB.ExpandPoint(it.P)
		}
	}
	n.items = groupA
	n.recomputeRect()
	t.nodes.Add(1)
	t.copied.Add(1)
	sib := &node{own: t.own.Load(), items: groupB}
	sib.recomputeRect()
	return sib
}

// splitInternal is splitLeaf for an overfull internal node owned by t.
func (t *Tree) splitInternal(n *node) *node {
	children := n.children
	seedA, seedB := pickSeedsNodes(children)
	groupA := []*node{children[seedA]}
	groupB := []*node{children[seedB]}
	rectA, rectB := children[seedA].rect, children[seedB].rect
	rest := make([]*node, 0, len(children)-2)
	for i, c := range children {
		if i != seedA && i != seedB {
			rest = append(rest, c)
		}
	}
	for len(rest) > 0 {
		if len(groupA)+len(rest) == t.min {
			for _, c := range rest {
				groupA = append(groupA, c)
				rectA = rectA.Expand(c.rect)
			}
			break
		}
		if len(groupB)+len(rest) == t.min {
			for _, c := range rest {
				groupB = append(groupB, c)
				rectB = rectB.Expand(c.rect)
			}
			break
		}
		bestIdx, bestDiff, toA := 0, -1.0, true
		for i, c := range rest {
			dA := rectA.EnlargementArea(c.rect)
			dB := rectB.EnlargementArea(c.rect)
			diff := dA - dB
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				bestDiff, bestIdx = diff, i
				toA = dA < dB || (dA == dB && rectA.Area() < rectB.Area())
			}
		}
		c := rest[bestIdx]
		rest = append(rest[:bestIdx], rest[bestIdx+1:]...)
		if toA {
			groupA = append(groupA, c)
			rectA = rectA.Expand(c.rect)
		} else {
			groupB = append(groupB, c)
			rectB = rectB.Expand(c.rect)
		}
	}
	n.children = groupA
	n.recomputeRect()
	t.nodes.Add(1)
	t.copied.Add(1)
	sib := &node{own: t.own.Load(), children: groupB}
	sib.recomputeRect()
	return sib
}

func pickSeedsItems(items []Item) (int, int) {
	worst, si, sj := -1.0, 0, 1
	for i := 0; i < len(items); i++ {
		for j := i + 1; j < len(items); j++ {
			r := geom.RectOf(items[i].P, items[j].P)
			if d := r.Area(); d > worst {
				worst, si, sj = d, i, j
			}
		}
	}
	return si, sj
}

func pickSeedsNodes(nodes []*node) (int, int) {
	worst, si, sj := -1.0, 0, 1
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			d := nodes[i].rect.Expand(nodes[j].rect).Area() -
				nodes[i].rect.Area() - nodes[j].rect.Area()
			if d > worst {
				worst, si, sj = d, i, j
			}
		}
	}
	return si, sj
}

// Delete removes the item with the given id at point p (the point is used
// to find the leaf efficiently). It returns false when no such item exists.
// Underfull nodes are condensed: their remaining entries are reinserted.
// Like Insert, deletion path-copies the touched spine, leaving earlier
// versions intact.
func (t *Tree) Delete(id int, p geom.Point) bool {
	var orphanItems []Item
	var orphanNodes []*node
	root, found := t.delete(t.root, id, p, &orphanItems, &orphanNodes)
	if !found {
		return false
	}
	t.root = root
	t.size--
	// Shrink the root while it has a single internal child.
	for !t.root.leaf() && len(t.root.children) == 1 {
		t.root = t.root.children[0]
		t.nodes.Add(-1)
	}
	if !t.root.leaf() && len(t.root.children) == 0 {
		t.nodes.Add(-1)
		t.root = t.newLeaf()
	}
	// Reinsert orphans. They are still counted in t.size, so compensate
	// for the increment Insert performs.
	for _, it := range orphanItems {
		t.Insert(it)
		t.size--
	}
	for _, on := range orphanNodes {
		t.reinsertSubtree(on)
	}
	return true
}

// delete removes the item from the subtree at n. It returns the (possibly
// copied) replacement for n and whether the item was found; underfull
// children are dissolved into the orphan lists for reinsertion (Guttman's
// CondenseTree). Until the item is found nothing is copied, so a miss
// leaves the tree untouched.
func (t *Tree) delete(n *node, id int, p geom.Point, orphanItems *[]Item, orphanNodes *[]*node) (*node, bool) {
	if n.leaf() {
		for i, it := range n.items {
			if it.ID == id {
				n = t.mutable(n)
				n.items = append(n.items[:i], n.items[i+1:]...)
				n.recomputeRect()
				return n, true
			}
		}
		return n, false
	}
	for i, c := range n.children {
		if !c.rect.Contains(p) {
			continue
		}
		nc, found := t.delete(c, id, p, orphanItems, orphanNodes)
		if !found {
			continue
		}
		n = t.mutable(n)
		if nc.entries() < t.min {
			// Condense: dissolve the underfull child; its entries are
			// reinserted by Delete once the spine is rebuilt.
			if nc.leaf() {
				*orphanItems = append(*orphanItems, nc.items...)
			} else {
				*orphanNodes = append(*orphanNodes, nc.children...)
			}
			t.nodes.Add(-1)
			n.children = append(n.children[:i], n.children[i+1:]...)
		} else {
			n.children[i] = nc
		}
		n.recomputeRect()
		return n, true
	}
	return n, false
}

// reinsertSubtree dissolves an orphaned subtree, reinserting its items at
// leaf level (their node structure is discarded).
func (t *Tree) reinsertSubtree(n *node) {
	t.nodes.Add(-1)
	if n.leaf() {
		for _, it := range n.items {
			t.Insert(it)
			t.size--
		}
		return
	}
	for _, c := range n.children {
		t.reinsertSubtree(c)
	}
}

// Search returns the ids of all items inside r (boundary inclusive).
func (t *Tree) Search(r geom.Rect) []int {
	var out []int
	t.search(t.root, r, &out)
	return out
}

func (t *Tree) search(n *node, r geom.Rect, out *[]int) {
	t.visits.Add(1)
	if n.leaf() {
		for _, it := range n.items {
			if r.Contains(it.P) {
				*out = append(*out, it.ID)
			}
		}
		return
	}
	for _, c := range n.children {
		if c.rect.Intersects(r) {
			t.search(c, r, out)
		}
	}
}

// KNN returns the k nearest items to q in ascending distance order using
// best-first traversal (Hjaltason & Samet). Ties break by id.
func (t *Tree) KNN(q geom.Point, k int) []Item {
	items, _ := t.KNNWithVisits(q, k)
	return items
}

// KNNWithVisits is KNN returning the number of nodes this search visited.
// Unlike a before/after diff of NodeVisits, the count is exact even when
// other goroutines search the tree concurrently (shared index snapshots);
// the visits are still charged to the global counter too.
func (t *Tree) KNNWithVisits(q geom.Point, k int) ([]Item, int) {
	if k <= 0 || t.size == 0 {
		return nil, 0
	}
	out := make([]Item, 0, k)
	var it KNNIterator
	it.Reset(t, q)
	for len(out) < k {
		item, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, item)
	}
	return out, it.Visited()
}

// KNNIterator yields items in ascending distance from a query point, one
// at a time. The VoR-tree and the prefetch logic of the INS algorithm use
// it to extend a kNN set incrementally without restarting the search. The
// zero value is usable via Reset, which also lets callers reuse one
// iterator (and its heap memory) across searches — the allocation-free
// serving path keeps one per query session.
type KNNIterator struct {
	t      *Tree
	q      geom.Point
	pq     knnHeap
	visits int
}

// Visited returns the number of nodes this iterator has touched.
func (it *KNNIterator) Visited() int { return it.visits }

// NewKNNIterator starts an incremental nearest-neighbor scan from q.
func (t *Tree) NewKNNIterator(q geom.Point) *KNNIterator {
	it := &KNNIterator{}
	it.Reset(t, q)
	return it
}

// Reset rewinds the iterator to a fresh scan of t from q, reusing its
// internal heap memory. The abandoned frontier is zeroed first: its node
// pointers would otherwise keep subtrees of superseded snapshot versions
// reachable for the lifetime of a long-lived per-session scratch.
func (it *KNNIterator) Reset(t *Tree, q geom.Point) {
	it.t, it.q = t, q
	clear(it.pq)
	it.pq = it.pq[:0]
	it.visits = 0
	it.pq.push(knnEntry{node: t.root, d2: t.root.rect.Dist2Point(q)})
}

// Next returns the next-nearest item, or ok=false when exhausted.
func (it *KNNIterator) Next() (Item, bool) {
	for len(it.pq) > 0 {
		e := it.pq.pop()
		if e.node == nil {
			return e.item, true
		}
		it.visits++
		it.t.visits.Add(1)
		n := e.node
		if n.leaf() {
			for _, item := range n.items {
				it.pq.push(knnEntry{item: item, d2: it.q.Dist2(item.P)})
			}
			continue
		}
		for _, c := range n.children {
			it.pq.push(knnEntry{node: c, d2: c.rect.Dist2Point(it.q)})
		}
	}
	return Item{}, false
}

type knnEntry struct {
	node *node // nil for item entries
	item Item
	d2   float64
}

// knnHeap is a hand-rolled binary min-heap. container/heap would box every
// knnEntry into an interface value on Push — one allocation per touched
// entry — which dominated the kNN allocation profile.
type knnHeap []knnEntry

func (h knnHeap) less(i, j int) bool {
	if h[i].d2 != h[j].d2 {
		return h[i].d2 < h[j].d2
	}
	// Prefer resolving items before nodes at equal distance so results are
	// deterministic; then break ties by id.
	if (h[i].node == nil) != (h[j].node == nil) {
		return h[i].node == nil
	}
	return h[i].item.ID < h[j].item.ID
}

func (h *knnHeap) push(e knnEntry) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *knnHeap) pop() knnEntry {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s[last] = knnEntry{} // drop node/item references from the spare slot
	s = s[:last]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(s) && s.less(l, smallest) {
			smallest = l
		}
		if r < len(s) && s.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
	return top
}

// checkInvariants validates structural invariants; tests call it via the
// exported CheckInvariants.
func (t *Tree) checkInvariants(n *node, depth int, leafDepth *int, nodes *int) error {
	*nodes++
	if n.leaf() {
		if *leafDepth == -1 {
			*leafDepth = depth
		} else if *leafDepth != depth {
			return fmt.Errorf("rtree: leaves at different depths (%d vs %d)", *leafDepth, depth)
		}
		for _, it := range n.items {
			if !n.rect.Contains(it.P) {
				return fmt.Errorf("rtree: item %d outside leaf rect", it.ID)
			}
		}
		return nil
	}
	for _, c := range n.children {
		if !n.rect.ContainsRect(c.rect) {
			return fmt.Errorf("rtree: child rect escapes parent")
		}
		if err := t.checkInvariants(c, depth+1, leafDepth, nodes); err != nil {
			return err
		}
	}
	return nil
}

// CheckInvariants verifies the structural invariants of the tree: uniform
// leaf depth, containment of child rectangles, and the incremental node
// count against a full traversal. It is exported for tests and costs a
// full traversal.
func (t *Tree) CheckInvariants() error {
	ld := -1
	nodes := 0
	if err := t.checkInvariants(t.root, 0, &ld, &nodes); err != nil {
		return err
	}
	if nodes != int(t.nodes.Load()) {
		return fmt.Errorf("rtree: node count drifted: counted %d, bookkept %d", nodes, t.nodes.Load())
	}
	return nil
}
