// Package rtree implements an in-memory R-tree over 2D points with
// Guttman's quadratic split, best-first (incremental) k-nearest-neighbor
// search, range queries, and deletion with tree condensation. It is the
// index substrate under the VoR-tree (package vortree), which the INSQ
// system uses to seed kNN computation, mirroring reference [7] of the
// paper.
package rtree

import (
	"container/heap"
	"fmt"
	"sync/atomic"

	"repro/internal/geom"
)

// DefaultMaxEntries is the default node fanout (M). Minimum occupancy is
// M/2 as in Guttman's original design.
const DefaultMaxEntries = 16

// Item is a point payload stored in the tree. ID is caller-chosen and must
// be unique; the tree never interprets it.
type Item struct {
	ID int
	P  geom.Point
}

type node struct {
	rect     geom.Rect
	children []*node // nil at leaves
	items    []Item  // nil at internal nodes
	parent   *node
}

func (n *node) leaf() bool { return n.children == nil }

func (n *node) recomputeRect() {
	if n.leaf() {
		if len(n.items) == 0 {
			n.rect = geom.Rect{}
			return
		}
		r := geom.Rect{Min: n.items[0].P, Max: n.items[0].P}
		for _, it := range n.items[1:] {
			r = r.ExpandPoint(it.P)
		}
		n.rect = r
		return
	}
	r := n.children[0].rect
	for _, c := range n.children[1:] {
		r = r.Expand(c.rect)
	}
	n.rect = r
}

// Tree is an R-tree over 2D points. The zero value is not usable; call New.
type Tree struct {
	root *node
	size int
	max  int // max entries per node (M)
	min  int // min entries per node (m = M/2)

	// visits counts nodes touched by search operations since the last
	// ResetStats. It stands in for page I/O in the experiments. Atomic so
	// that read-only searches on a tree shared across goroutines (an
	// immutable index snapshot) stay race-free.
	visits atomic.Int64
}

// NodeVisits returns the number of nodes touched by search operations
// since the last ResetStats. Under concurrent readers the total is exact
// but before/after deltas taken by one reader may include visits charged
// by others.
func (t *Tree) NodeVisits() int { return int(t.visits.Load()) }

// New returns an empty tree with the given maximum node fanout; fanout < 4
// is raised to 4. Use DefaultMaxEntries when in doubt.
func New(maxEntries int) *Tree {
	if maxEntries < 4 {
		maxEntries = 4
	}
	return &Tree{
		root: &node{items: []Item{}},
		max:  maxEntries,
		min:  maxEntries / 2,
	}
}

// Len returns the number of stored items.
func (t *Tree) Len() int { return t.size }

// ResetStats zeroes the NodeVisits counter.
func (t *Tree) ResetStats() { t.visits.Store(0) }

// Clone returns a deep copy of the tree with a zeroed visit counter. The
// index snapshot store uses it to build the next copy-on-write snapshot
// without touching the published one.
func (t *Tree) Clone() *Tree {
	c := &Tree{size: t.size, max: t.max, min: t.min}
	c.root = cloneNode(t.root, nil)
	return c
}

func cloneNode(n *node, parent *node) *node {
	cp := &node{rect: n.rect, parent: parent}
	if n.leaf() {
		cp.items = append([]Item{}, n.items...)
		return cp
	}
	cp.children = make([]*node, len(n.children))
	for i, ch := range n.children {
		cp.children[i] = cloneNode(ch, cp)
	}
	return cp
}

// Insert adds an item. Duplicate points are allowed; duplicate IDs are the
// caller's responsibility.
func (t *Tree) Insert(it Item) {
	leaf := t.chooseLeaf(t.root, it.P)
	leaf.items = append(leaf.items, it)
	leaf.rect = leafAdjust(leaf, it.P)
	t.size++
	t.splitUpward(leaf)
	t.adjustUpward(leaf.parent)
}

func leafAdjust(n *node, p geom.Point) geom.Rect {
	if len(n.items) == 1 {
		return geom.Rect{Min: p, Max: p}
	}
	return n.rect.ExpandPoint(p)
}

func (t *Tree) chooseLeaf(n *node, p geom.Point) *node {
	for !n.leaf() {
		best := n.children[0]
		pr := geom.Rect{Min: p, Max: p}
		bestEnl := best.rect.EnlargementArea(pr)
		for _, c := range n.children[1:] {
			enl := c.rect.EnlargementArea(pr)
			if enl < bestEnl || (enl == bestEnl && c.rect.Area() < best.rect.Area()) {
				best, bestEnl = c, enl
			}
		}
		n = best
	}
	return n
}

// splitUpward splits n if overfull and propagates splits to the root.
func (t *Tree) splitUpward(n *node) {
	for n != nil && n.overfull(t.max) {
		sibling := t.split(n)
		parent := n.parent
		if parent == nil {
			newRoot := &node{children: []*node{n, sibling}}
			n.parent, sibling.parent = newRoot, newRoot
			newRoot.recomputeRect()
			t.root = newRoot
			return
		}
		sibling.parent = parent
		parent.children = append(parent.children, sibling)
		parent.recomputeRect()
		n = parent
	}
}

func (n *node) overfull(max int) bool {
	if n.leaf() {
		return len(n.items) > max
	}
	return len(n.children) > max
}

// adjustUpward refreshes bounding rectangles from n to the root.
func (t *Tree) adjustUpward(n *node) {
	for n != nil {
		n.recomputeRect()
		n = n.parent
	}
}

// split performs Guttman's quadratic split on an overfull node, leaving
// half the entries in n and returning a new sibling with the rest.
func (t *Tree) split(n *node) *node {
	if n.leaf() {
		return t.splitLeaf(n)
	}
	return t.splitInternal(n)
}

func (t *Tree) splitLeaf(n *node) *node {
	items := n.items
	seedA, seedB := pickSeedsItems(items)
	groupA := []Item{items[seedA]}
	groupB := []Item{items[seedB]}
	rectA := geom.Rect{Min: items[seedA].P, Max: items[seedA].P}
	rectB := geom.Rect{Min: items[seedB].P, Max: items[seedB].P}
	rest := make([]Item, 0, len(items)-2)
	for i, it := range items {
		if i != seedA && i != seedB {
			rest = append(rest, it)
		}
	}
	for len(rest) > 0 {
		// Force assignment when one group must take all remaining entries
		// to reach minimum occupancy.
		if len(groupA)+len(rest) == t.min {
			for _, it := range rest {
				groupA = append(groupA, it)
				rectA = rectA.ExpandPoint(it.P)
			}
			break
		}
		if len(groupB)+len(rest) == t.min {
			for _, it := range rest {
				groupB = append(groupB, it)
				rectB = rectB.ExpandPoint(it.P)
			}
			break
		}
		// pickNext: entry with maximum preference difference.
		bestIdx, bestDiff, toA := 0, -1.0, true
		for i, it := range rest {
			dA := rectA.EnlargementArea(geom.Rect{Min: it.P, Max: it.P})
			dB := rectB.EnlargementArea(geom.Rect{Min: it.P, Max: it.P})
			diff := dA - dB
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				bestDiff, bestIdx = diff, i
				toA = dA < dB || (dA == dB && rectA.Area() < rectB.Area())
			}
		}
		it := rest[bestIdx]
		rest = append(rest[:bestIdx], rest[bestIdx+1:]...)
		if toA {
			groupA = append(groupA, it)
			rectA = rectA.ExpandPoint(it.P)
		} else {
			groupB = append(groupB, it)
			rectB = rectB.ExpandPoint(it.P)
		}
	}
	n.items = groupA
	n.recomputeRect()
	sib := &node{items: groupB}
	sib.recomputeRect()
	return sib
}

func (t *Tree) splitInternal(n *node) *node {
	children := n.children
	seedA, seedB := pickSeedsNodes(children)
	groupA := []*node{children[seedA]}
	groupB := []*node{children[seedB]}
	rectA, rectB := children[seedA].rect, children[seedB].rect
	rest := make([]*node, 0, len(children)-2)
	for i, c := range children {
		if i != seedA && i != seedB {
			rest = append(rest, c)
		}
	}
	for len(rest) > 0 {
		if len(groupA)+len(rest) == t.min {
			for _, c := range rest {
				groupA = append(groupA, c)
				rectA = rectA.Expand(c.rect)
			}
			break
		}
		if len(groupB)+len(rest) == t.min {
			for _, c := range rest {
				groupB = append(groupB, c)
				rectB = rectB.Expand(c.rect)
			}
			break
		}
		bestIdx, bestDiff, toA := 0, -1.0, true
		for i, c := range rest {
			dA := rectA.EnlargementArea(c.rect)
			dB := rectB.EnlargementArea(c.rect)
			diff := dA - dB
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				bestDiff, bestIdx = diff, i
				toA = dA < dB || (dA == dB && rectA.Area() < rectB.Area())
			}
		}
		c := rest[bestIdx]
		rest = append(rest[:bestIdx], rest[bestIdx+1:]...)
		if toA {
			groupA = append(groupA, c)
			rectA = rectA.Expand(c.rect)
		} else {
			groupB = append(groupB, c)
			rectB = rectB.Expand(c.rect)
		}
	}
	n.children = groupA
	sib := &node{children: groupB}
	for _, c := range groupA {
		c.parent = n
	}
	for _, c := range groupB {
		c.parent = sib
	}
	n.recomputeRect()
	sib.recomputeRect()
	return sib
}

func pickSeedsItems(items []Item) (int, int) {
	worst, si, sj := -1.0, 0, 1
	for i := 0; i < len(items); i++ {
		for j := i + 1; j < len(items); j++ {
			r := geom.RectOf(items[i].P, items[j].P)
			if d := r.Area(); d > worst {
				worst, si, sj = d, i, j
			}
		}
	}
	return si, sj
}

func pickSeedsNodes(nodes []*node) (int, int) {
	worst, si, sj := -1.0, 0, 1
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			d := nodes[i].rect.Expand(nodes[j].rect).Area() -
				nodes[i].rect.Area() - nodes[j].rect.Area()
			if d > worst {
				worst, si, sj = d, i, j
			}
		}
	}
	return si, sj
}

// Delete removes the item with the given id at point p (the point is used
// to find the leaf efficiently). It returns false when no such item exists.
// Underfull nodes are condensed: their remaining entries are reinserted.
func (t *Tree) Delete(id int, p geom.Point) bool {
	leaf := t.findLeaf(t.root, id, p)
	if leaf == nil {
		return false
	}
	for i, it := range leaf.items {
		if it.ID == id {
			leaf.items = append(leaf.items[:i], leaf.items[i+1:]...)
			break
		}
	}
	t.size--
	t.condense(leaf)
	return true
}

func (t *Tree) findLeaf(n *node, id int, p geom.Point) *node {
	if !n.rect.Contains(p) && t.size > 0 && n != t.root {
		return nil
	}
	if n.leaf() {
		for _, it := range n.items {
			if it.ID == id {
				return n
			}
		}
		return nil
	}
	for _, c := range n.children {
		if c.rect.Contains(p) {
			if l := t.findLeaf(c, id, p); l != nil {
				return l
			}
		}
	}
	return nil
}

func (t *Tree) condense(n *node) {
	var orphanItems []Item
	var orphanNodes []*node
	for n.parent != nil {
		parent := n.parent
		under := false
		if n.leaf() {
			under = len(n.items) < t.min
		} else {
			under = len(n.children) < t.min
		}
		if under {
			for i, c := range parent.children {
				if c == n {
					parent.children = append(parent.children[:i], parent.children[i+1:]...)
					break
				}
			}
			if n.leaf() {
				orphanItems = append(orphanItems, n.items...)
			} else {
				orphanNodes = append(orphanNodes, n.children...)
			}
		} else {
			n.recomputeRect()
		}
		n = parent
	}
	n.recomputeRect()
	// Shrink the root if it has a single internal child.
	for !t.root.leaf() && len(t.root.children) == 1 {
		t.root = t.root.children[0]
		t.root.parent = nil
	}
	if !t.root.leaf() && len(t.root.children) == 0 {
		t.root = &node{items: []Item{}}
	}
	// Reinsert orphans. They are still counted in t.size, so compensate
	// for the increment Insert performs.
	for _, it := range orphanItems {
		t.Insert(it)
		t.size--
	}
	for _, on := range orphanNodes {
		t.reinsertSubtree(on)
	}
}

func (t *Tree) reinsertSubtree(n *node) {
	if n.leaf() {
		for _, it := range n.items {
			t.Insert(it)
			t.size--
		}
		return
	}
	for _, c := range n.children {
		t.reinsertSubtree(c)
	}
}

// Search returns the ids of all items inside r (boundary inclusive).
func (t *Tree) Search(r geom.Rect) []int {
	var out []int
	t.search(t.root, r, &out)
	return out
}

func (t *Tree) search(n *node, r geom.Rect, out *[]int) {
	t.visits.Add(1)
	if n.leaf() {
		for _, it := range n.items {
			if r.Contains(it.P) {
				*out = append(*out, it.ID)
			}
		}
		return
	}
	for _, c := range n.children {
		if c.rect.Intersects(r) {
			t.search(c, r, out)
		}
	}
}

// KNN returns the k nearest items to q in ascending distance order using
// best-first traversal (Hjaltason & Samet). Ties break by id.
func (t *Tree) KNN(q geom.Point, k int) []Item {
	items, _ := t.KNNWithVisits(q, k)
	return items
}

// KNNWithVisits is KNN returning the number of nodes this search visited.
// Unlike a before/after diff of NodeVisits, the count is exact even when
// other goroutines search the tree concurrently (shared index snapshots);
// the visits are still charged to the global counter too.
func (t *Tree) KNNWithVisits(q geom.Point, k int) ([]Item, int) {
	if k <= 0 || t.size == 0 {
		return nil, 0
	}
	out := make([]Item, 0, k)
	it := t.NewKNNIterator(q)
	for len(out) < k {
		item, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, item)
	}
	return out, it.Visited()
}

// KNNIterator yields items in ascending distance from a query point, one
// at a time. The VoR-tree and the prefetch logic of the INS algorithm use
// it to extend a kNN set incrementally without restarting the search.
type KNNIterator struct {
	t      *Tree
	q      geom.Point
	pq     knnHeap
	visits int
}

// Visited returns the number of nodes this iterator has touched.
func (it *KNNIterator) Visited() int { return it.visits }

// NewKNNIterator starts an incremental nearest-neighbor scan from q.
func (t *Tree) NewKNNIterator(q geom.Point) *KNNIterator {
	it := &KNNIterator{t: t, q: q}
	heap.Push(&it.pq, knnEntry{node: t.root, d2: t.root.rect.Dist2Point(q)})
	return it
}

// Next returns the next-nearest item, or ok=false when exhausted.
func (it *KNNIterator) Next() (Item, bool) {
	for it.pq.Len() > 0 {
		e := heap.Pop(&it.pq).(knnEntry)
		if e.node == nil {
			return e.item, true
		}
		it.visits++
		it.t.visits.Add(1)
		n := e.node
		if n.leaf() {
			for _, item := range n.items {
				heap.Push(&it.pq, knnEntry{item: item, d2: it.q.Dist2(item.P)})
			}
			continue
		}
		for _, c := range n.children {
			heap.Push(&it.pq, knnEntry{node: c, d2: c.rect.Dist2Point(it.q)})
		}
	}
	return Item{}, false
}

type knnEntry struct {
	node *node // nil for item entries
	item Item
	d2   float64
}

type knnHeap []knnEntry

func (h knnHeap) Len() int { return len(h) }
func (h knnHeap) Less(i, j int) bool {
	if h[i].d2 != h[j].d2 {
		return h[i].d2 < h[j].d2
	}
	// Prefer resolving items before nodes at equal distance so results are
	// deterministic; then break ties by id.
	if (h[i].node == nil) != (h[j].node == nil) {
		return h[i].node == nil
	}
	return h[i].item.ID < h[j].item.ID
}
func (h knnHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *knnHeap) Push(x any)   { *h = append(*h, x.(knnEntry)) }
func (h *knnHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// checkInvariants validates structural invariants; tests call it via the
// exported CheckInvariants.
func (t *Tree) checkInvariants(n *node, depth int, leafDepth *int) error {
	if n.leaf() {
		if *leafDepth == -1 {
			*leafDepth = depth
		} else if *leafDepth != depth {
			return fmt.Errorf("rtree: leaves at different depths (%d vs %d)", *leafDepth, depth)
		}
		for _, it := range n.items {
			if !n.rect.Contains(it.P) {
				return fmt.Errorf("rtree: item %d outside leaf rect", it.ID)
			}
		}
		return nil
	}
	for _, c := range n.children {
		if c.parent != n {
			return fmt.Errorf("rtree: broken parent pointer")
		}
		if !n.rect.ContainsRect(c.rect) {
			return fmt.Errorf("rtree: child rect escapes parent")
		}
		if err := t.checkInvariants(c, depth+1, leafDepth); err != nil {
			return err
		}
	}
	return nil
}

// CheckInvariants verifies the structural invariants of the tree: uniform
// leaf depth, containment of child rectangles, and parent pointers. It is
// exported for tests and costs a full traversal.
func (t *Tree) CheckInvariants() error {
	ld := -1
	return t.checkInvariants(t.root, 0, &ld)
}
