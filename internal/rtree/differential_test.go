package rtree

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/geom"
)

// buildReference builds a fresh tree from scratch over the live items in
// insertion-id order — the oracle the incrementally mutated, path-copying
// tree is compared against.
func buildReference(items map[int]geom.Point, fanout int) *Tree {
	ref := New(fanout)
	ids := make([]int, 0, len(items))
	for id := range items {
		ids = append(ids, id)
	}
	// Deterministic build order (map iteration is random).
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if ids[j] < ids[i] {
				ids[i], ids[j] = ids[j], ids[i]
			}
		}
	}
	for _, id := range ids {
		ref.Insert(Item{ID: id, P: items[id]})
	}
	return ref
}

func knnIDs(t *Tree, q geom.Point, k int) []int {
	items := t.KNN(q, k)
	out := make([]int, len(items))
	for i, it := range items {
		out[i] = it.ID
	}
	return out
}

func sameIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDifferentialPathCopy drives a random mutation sequence through the
// persistent tree and checks, at every step, that (1) its kNN answers are
// identical to a tree rebuilt from scratch over the same live set, (2) the
// structural invariants (incl. the node-count bookkeeping) hold, and (3)
// every snapshot pinned along the way still answers exactly as it did when
// it was pinned — while concurrent readers hammer the pinned snapshots to
// let -race prove the sharing is write-free.
func TestDifferentialPathCopy(t *testing.T) {
	const (
		steps  = 400
		probeN = 5
		k      = 8
		fanout = 8
	)
	rng := rand.New(rand.NewSource(31))
	probes := make([]geom.Point, probeN)
	for i := range probes {
		probes[i] = geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
	}

	tr := New(fanout)
	live := make(map[int]geom.Point)
	nextID := 0

	type pin struct {
		tree    *Tree
		answers [][]int
	}
	var pins []pin
	var wg sync.WaitGroup
	stop := make(chan struct{})
	defer func() {
		close(stop)
		wg.Wait()
	}()

	snapshot := func(tree *Tree) [][]int {
		out := make([][]int, probeN)
		for i, q := range probes {
			out[i] = knnIDs(tree, q, k)
		}
		return out
	}

	for step := 0; step < steps; step++ {
		if len(live) > 0 && rng.Intn(3) == 0 {
			// Delete a random live item.
			ids := make([]int, 0, len(live))
			for id := range live {
				ids = append(ids, id)
			}
			victim := ids[rng.Intn(len(ids))]
			if !tr.Delete(victim, live[victim]) {
				t.Fatalf("step %d: delete of live id %d failed", step, victim)
			}
			delete(live, victim)
		} else {
			p := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
			tr.Insert(Item{ID: nextID, P: p})
			live[nextID] = p
			nextID++
		}

		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if tr.Len() != len(live) {
			t.Fatalf("step %d: Len = %d, want %d", step, tr.Len(), len(live))
		}
		ref := buildReference(live, fanout)
		for _, q := range probes {
			got, want := knnIDs(tr, q, k), knnIDs(ref, q, k)
			if !sameIDs(got, want) {
				t.Fatalf("step %d: kNN(%v) = %v, rebuilt-from-scratch says %v", step, q, got, want)
			}
		}

		// Pin a snapshot every 40 steps and keep a reader hammering it.
		if step%40 == 20 {
			pinned := tr.Clone()
			pins = append(pins, pin{tree: pinned, answers: snapshot(pinned)})
			wg.Add(1)
			go func(p *Tree, q geom.Point) {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
						p.KNN(q, k)
						p.Search(geom.NewRect(geom.Pt(100, 100), geom.Pt(900, 900)))
					}
				}
			}(pinned, probes[rng.Intn(probeN)])
		}
	}

	// Every pinned snapshot must be provably unchanged by the mutations
	// that came after it.
	for i, p := range pins {
		if err := p.tree.CheckInvariants(); err != nil {
			t.Fatalf("pinned snapshot %d: %v", i, err)
		}
		for j, q := range probes {
			if got := knnIDs(p.tree, q, k); !sameIDs(got, p.answers[j]) {
				t.Fatalf("pinned snapshot %d changed: kNN(%v) = %v, was %v", i, q, got, p.answers[j])
			}
		}
	}
}

// TestCloneIsConstantTime sanity-checks that Clone copies no nodes: the
// clone's copied-node counter starts at zero and the first mutation copies
// only a spine, not the tree.
func TestCloneIsConstantTime(t *testing.T) {
	tr := New(16)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10000; i++ {
		tr.Insert(Item{ID: i, P: geom.Pt(rng.Float64()*1000, rng.Float64()*1000)})
	}
	c := tr.Clone()
	if c.CopiedNodes() != 0 {
		t.Fatalf("fresh clone copied %d nodes, want 0", c.CopiedNodes())
	}
	c.Insert(Item{ID: 10000, P: geom.Pt(500, 500)})
	if copied, total := c.CopiedNodes(), c.NodeCount(); copied > total/10 {
		t.Fatalf("one insert after clone copied %d of %d nodes; want a spine", copied, total)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
