package rtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func randomItems(n int, seed int64) []Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{ID: i, P: geom.Pt(rng.Float64()*1000, rng.Float64()*1000)}
	}
	return items
}

func buildTree(t testing.TB, items []Item, fanout int) *Tree {
	t.Helper()
	tr := New(fanout)
	for _, it := range items {
		tr.Insert(it)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return tr
}

func bruteKNN(items []Item, q geom.Point, k int) []int {
	idx := make([]int, len(items))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		da, db := q.Dist2(items[idx[a]].P), q.Dist2(items[idx[b]].P)
		if da != db {
			return da < db
		}
		return items[idx[a]].ID < items[idx[b]].ID
	})
	if k > len(idx) {
		k = len(idx)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = items[idx[i]].ID
	}
	return out
}

func TestInsertAndLen(t *testing.T) {
	items := randomItems(500, 1)
	tr := buildTree(t, items, DefaultMaxEntries)
	if tr.Len() != 500 {
		t.Fatalf("Len = %d, want 500", tr.Len())
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	items := randomItems(400, 2)
	tr := buildTree(t, items, 8)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		a := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		b := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		r := geom.NewRect(a, b)
		got := tr.Search(r)
		var want []int
		for _, it := range items {
			if r.Contains(it.P) {
				want = append(want, it.ID)
			}
		}
		sort.Ints(got)
		sort.Ints(want)
		if len(got) != len(want) {
			t.Fatalf("Search(%v): %d results, want %d", r, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("Search(%v) = %v, want %v", r, got, want)
			}
		}
	}
}

func TestKNNMatchesBruteForce(t *testing.T) {
	for _, fanout := range []int{4, 8, 32} {
		items := randomItems(300, 4)
		tr := buildTree(t, items, fanout)
		rng := rand.New(rand.NewSource(5))
		for trial := 0; trial < 60; trial++ {
			q := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
			for _, k := range []int{1, 5, 20} {
				got := tr.KNN(q, k)
				want := bruteKNN(items, q, k)
				if len(got) != len(want) {
					t.Fatalf("fanout %d: KNN returned %d, want %d", fanout, len(got), len(want))
				}
				for i := range got {
					// Compare by distance (ties may reorder ids).
					gd := q.Dist2(got[i].P)
					wd := q.Dist2(items[want[i]].P)
					if gd != wd {
						t.Fatalf("fanout %d KNN(%v,%d)[%d] dist %g, want %g",
							fanout, q, k, i, gd, wd)
					}
				}
			}
		}
	}
}

func TestKNNIteratorIsSorted(t *testing.T) {
	items := randomItems(200, 6)
	tr := buildTree(t, items, 8)
	q := geom.Pt(321, 654)
	it := tr.NewKNNIterator(q)
	prev := -1.0
	count := 0
	for {
		item, ok := it.Next()
		if !ok {
			break
		}
		d := q.Dist2(item.P)
		if d < prev {
			t.Fatalf("iterator out of order: %g after %g", d, prev)
		}
		prev = d
		count++
	}
	if count != 200 {
		t.Fatalf("iterator yielded %d items, want 200", count)
	}
}

func TestKNNEdgeCases(t *testing.T) {
	tr := New(DefaultMaxEntries)
	if got := tr.KNN(geom.Pt(0, 0), 5); got != nil {
		t.Errorf("KNN on empty tree = %v, want nil", got)
	}
	tr.Insert(Item{ID: 1, P: geom.Pt(3, 4)})
	if got := tr.KNN(geom.Pt(0, 0), 0); got != nil {
		t.Errorf("KNN k=0 = %v, want nil", got)
	}
	got := tr.KNN(geom.Pt(0, 0), 10)
	if len(got) != 1 || got[0].ID != 1 {
		t.Errorf("KNN k>n = %v, want the single item", got)
	}
}

func TestDelete(t *testing.T) {
	items := randomItems(300, 7)
	tr := buildTree(t, items, 8)
	rng := rand.New(rand.NewSource(8))
	perm := rng.Perm(len(items))
	for i, pi := range perm {
		it := items[pi]
		if !tr.Delete(it.ID, it.P) {
			t.Fatalf("Delete(%d) failed", it.ID)
		}
		if tr.Len() != len(items)-i-1 {
			t.Fatalf("Len = %d after %d deletes", tr.Len(), i+1)
		}
		if i%25 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d deletes: %v", i+1, err)
			}
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
	if tr.Delete(999, geom.Pt(1, 1)) {
		t.Error("Delete on empty tree returned true")
	}
}

func TestDeleteKeepsKNNCorrect(t *testing.T) {
	items := randomItems(250, 9)
	tr := buildTree(t, items, 8)
	rng := rand.New(rand.NewSource(10))
	live := append([]Item(nil), items...)
	for step := 0; step < 150; step++ {
		i := rng.Intn(len(live))
		if !tr.Delete(live[i].ID, live[i].P) {
			t.Fatalf("delete %d failed", live[i].ID)
		}
		live = append(live[:i], live[i+1:]...)
		q := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		got := tr.KNN(q, 5)
		want := bruteKNN(live, q, 5)
		if len(got) != len(want) {
			t.Fatalf("step %d: KNN size %d, want %d", step, len(got), len(want))
		}
		for j := range got {
			if q.Dist2(got[j].P) != q.Dist2(live[indexOf(live, want[j])].P) {
				t.Fatalf("step %d: KNN mismatch", step)
			}
		}
	}
}

func indexOf(items []Item, id int) int {
	for i, it := range items {
		if it.ID == id {
			return i
		}
	}
	return -1
}

func TestDeleteNonexistent(t *testing.T) {
	items := randomItems(50, 11)
	tr := buildTree(t, items, 8)
	if tr.Delete(9999, geom.Pt(500, 500)) {
		t.Error("deleting unknown id returned true")
	}
	if tr.Len() != 50 {
		t.Errorf("Len changed to %d", tr.Len())
	}
}

func TestDuplicatePointsAllowed(t *testing.T) {
	tr := New(4)
	p := geom.Pt(5, 5)
	for i := 0; i < 20; i++ {
		tr.Insert(Item{ID: i, P: p})
	}
	if tr.Len() != 20 {
		t.Fatalf("Len = %d, want 20", tr.Len())
	}
	got := tr.KNN(p, 20)
	if len(got) != 20 {
		t.Fatalf("KNN returned %d, want 20", len(got))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyInsertSearch(t *testing.T) {
	err := quick.Check(func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%100 + 5
		items := randomItems(n, seed)
		tr := New(6)
		for _, it := range items {
			tr.Insert(it)
		}
		if tr.CheckInvariants() != nil || tr.Len() != n {
			return false
		}
		all := tr.Search(geom.NewRect(geom.Pt(-1, -1), geom.Pt(1001, 1001)))
		return len(all) == n
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Error(err)
	}
}

func TestNodeVisitsCounted(t *testing.T) {
	items := randomItems(1000, 12)
	tr := buildTree(t, items, 8)
	tr.ResetStats()
	tr.KNN(geom.Pt(500, 500), 10)
	if tr.NodeVisits() == 0 {
		t.Error("KNN did not count node visits")
	}
	tr.ResetStats()
	if tr.NodeVisits() != 0 {
		t.Error("ResetStats did not zero the counter")
	}
}

func BenchmarkInsert(b *testing.B) {
	items := randomItems(b.N, 13)
	tr := New(DefaultMaxEntries)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(items[i])
	}
}

func BenchmarkKNN10k(b *testing.B) {
	items := randomItems(10000, 14)
	tr := New(DefaultMaxEntries)
	for _, it := range items {
		tr.Insert(it)
	}
	rng := rand.New(rand.NewSource(15))
	qs := make([]geom.Point, 256)
	for i := range qs {
		qs[i] = geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.KNN(qs[i%len(qs)], 8)
	}
}
